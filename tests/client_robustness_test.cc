// Robustness of the moving-object client against out-of-order, duplicate
// and stale protocol messages — conditions a real wireless deployment
// produces routinely.

#include <gtest/gtest.h>

#include "mobieyes/net/message.h"
#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::Point;
using geo::Vec2;
using net::MakeMessage;
using net::QueryInfo;
using test::MiniDeployment;
using test::ObjectSpec;

QueryInfo InfoFor(MiniDeployment& deployment, QueryId qid) {
  const auto* entry = deployment.server().FindQuery(qid);
  EXPECT_NE(entry, nullptr);
  const auto* focal = deployment.server().FindFocal(entry->focal_oid);
  EXPECT_NE(focal, nullptr);
  QueryInfo info;
  info.qid = entry->qid;
  info.focal_oid = entry->focal_oid;
  info.focal = focal->state;
  info.region = entry->region;
  info.filter_threshold = entry->filter_threshold;
  info.mon_region = entry->mon_region;
  info.focal_max_speed = focal->max_speed;
  return info;
}

TEST(ClientRobustnessTest, DuplicateInstallBroadcastIsIdempotent) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  ASSERT_EQ(deployment.client(1).lqt_size(), 1u);

  net::QueryInstallBroadcast duplicate;
  duplicate.queries.push_back(InfoFor(deployment, *qid));
  deployment.client(1).OnDownlink(MakeMessage(duplicate));
  deployment.client(1).OnDownlink(MakeMessage(duplicate));
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(ClientRobustnessTest, VelocityBroadcastForUnknownFocalIsIgnored) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  net::VelocityChangeBroadcast broadcast;
  broadcast.focal_oid = 999;  // never installed
  broadcast.state = net::FocalState{Point{1, 1}, Vec2{1, 1}, 0.0};
  deployment.client(0).OnDownlink(MakeMessage(broadcast));
  EXPECT_EQ(deployment.client(0).lqt_size(), 0u);
}

TEST(ClientRobustnessTest, UpdateBroadcastForUninstalledQueryInstallsIfDue) {
  // A QueryUpdateBroadcast can be the first a client hears of a query (it
  // entered the union region exactly as the focal moved). It must install.
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());

  net::QueryUpdateBroadcast update;
  update.queries.push_back(InfoFor(deployment, *qid));
  // Forget the entry first to simulate the missed install.
  net::QueryRemoveBroadcast forget;
  forget.qids.push_back(*qid);
  deployment.client(1).OnDownlink(MakeMessage(forget));
  ASSERT_EQ(deployment.client(1).lqt_size(), 0u);
  deployment.client(1).OnDownlink(MakeMessage(update));
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(ClientRobustnessTest, RemoveBroadcastForUnknownQueryIsIgnored) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  net::QueryRemoveBroadcast remove;
  remove.qids = {123, 456};
  deployment.client(0).OnDownlink(MakeMessage(remove));  // no crash
  EXPECT_EQ(deployment.client(0).lqt_size(), 0u);
}

TEST(ClientRobustnessTest, UplinkTypesOnDownlinkAreIgnored) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  // A confused medium delivers an uplink-only payload to a client.
  deployment.client(0).OnDownlink(
      MakeMessage(net::CellChangeReport{0, {0, 0}, {1, 1}}));
  deployment.client(0).OnDownlink(
      MakeMessage(net::PositionReport{0, Point{1, 1}}));
  EXPECT_EQ(deployment.client(0).lqt_size(), 0u);
  EXPECT_FALSE(deployment.client(0).has_mq());
}

TEST(ClientRobustnessTest, InstallOutsideMonitoringRegionIsRejected) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{5, 5}}});
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  // Deliver the install directly to the far-away client: its cell is not
  // covered, so it must discard the message (paper §3.3).
  net::QueryInstallBroadcast broadcast;
  broadcast.queries.push_back(InfoFor(deployment, *qid));
  deployment.client(1).OnDownlink(MakeMessage(broadcast));
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
}

TEST(ClientRobustnessTest, RepeatedFocalNotificationsAreStable) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  deployment.client(0).OnDownlink(MakeMessage(net::FocalNotification{0, 5}));
  EXPECT_TRUE(deployment.client(0).has_mq());
  deployment.client(0).OnDownlink(MakeMessage(net::FocalNotification{0, 6}));
  EXPECT_TRUE(deployment.client(0).has_mq());
  deployment.client(0).OnDownlink(
      MakeMessage(net::FocalNotification{0, kInvalidQueryId}));
  EXPECT_FALSE(deployment.client(0).has_mq());
}

TEST(ClientRobustnessTest, AckForUnknownSequenceIsIgnored) {
  core::MobiEyesOptions options;
  options.enable_reliable_uplink = true;
  MiniDeployment deployment({ObjectSpec(Point{55, 55})}, options);
  // A stray (or very late) ack must not crash or disturb tracking state.
  deployment.client(0).OnDownlink(MakeMessage(net::UplinkAck{0, 99}));
  EXPECT_EQ(deployment.client(0).pending_uplinks(), 0u);
}

TEST(ClientRobustnessTest, AckWithoutReliableUplinkIsIgnored) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  deployment.client(0).OnDownlink(MakeMessage(net::UplinkAck{0, 1}));
  EXPECT_EQ(deployment.client(0).pending_uplinks(), 0u);
  EXPECT_EQ(deployment.client(0).lqt_size(), 0u);
}

TEST(ClientRobustnessTest, ReconcileRequestOnDownlinkIsIgnored) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  net::LqtReconcileRequest request;
  request.oid = 0;
  request.known_qids = {1, 2};
  deployment.client(0).OnDownlink(MakeMessage(request));  // uplink-only type
  EXPECT_EQ(deployment.client(0).lqt_size(), 0u);
}

TEST(ClientRobustnessTest, ServerIgnoresUnknownUplinks) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  // Reports referencing unknown objects/queries must not corrupt state.
  deployment.server().OnUplink(
      9, MakeMessage(net::VelocityChangeReport{
             9, net::FocalState{Point{1, 1}, Vec2{}, 0.0}}));
  deployment.server().OnUplink(
      9, MakeMessage(net::CellChangeReport{9, {0, 0}, {1, 1}}));
  net::ResultBitmapReport report;
  report.oid = 9;
  report.qids = {77};
  report.bitmap = 1;
  deployment.server().OnUplink(9, MakeMessage(report));
  EXPECT_EQ(deployment.server().query_count(), 0u);
  // Downlink-only types on the uplink are ignored too.
  deployment.server().OnUplink(
      9, MakeMessage(net::FocalNotification{9, 1}));
  EXPECT_EQ(deployment.server().FindFocal(9), nullptr);
}

}  // namespace
}  // namespace mobieyes::core
