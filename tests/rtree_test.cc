#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/rtree/rstar_tree.h"

namespace mobieyes::rtree {
namespace {

using geo::Point;
using geo::Rect;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  std::vector<uint64_t> out;
  tree.SearchIntersects(Rect{0, 0, 100, 100}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, SingleInsertAndSearch) {
  RStarTree tree;
  tree.Insert(Rect{1, 1, 2, 2}, 7);
  EXPECT_EQ(tree.size(), 1u);
  std::vector<uint64_t> out;
  tree.SearchIntersects(Rect{0, 0, 10, 10}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
  out.clear();
  tree.SearchIntersects(Rect{5, 5, 1, 1}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, PointEntriesAndPointSearch) {
  RStarTree tree;
  for (uint64_t k = 0; k < 10; ++k) {
    double x = static_cast<double>(k);
    tree.Insert(Rect{x, x, 0, 0}, k);
  }
  std::vector<uint64_t> out;
  tree.SearchContainsPoint(Point{3, 3}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(RStarTreeTest, SplitsKeepAllEntriesSearchable) {
  RStarTree tree;
  const int n = 200;  // forces several levels with max_entries=16
  for (int k = 0; k < n; ++k) {
    double x = (k % 20) * 5.0;
    double y = (k / 20) * 5.0;
    tree.Insert(Rect{x, y, 1.0, 1.0}, static_cast<uint64_t>(k));
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_GT(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();

  std::vector<uint64_t> out;
  tree.SearchIntersects(Rect{-10, -10, 1000, 1000}, &out);
  EXPECT_EQ(Sorted(out).size(), static_cast<size_t>(n));
}

TEST(RStarTreeTest, RangeSearchReturnsExactlyIntersecting) {
  RStarTree tree;
  // 10x10 lattice of unit squares at even coordinates (disjoint).
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      tree.Insert(Rect{i * 2.0, j * 2.0, 1.0, 1.0},
                  static_cast<uint64_t>(i * 10 + j));
    }
  }
  std::vector<uint64_t> out;
  // Query covering squares with i in {1,2} and j in {1,2}.
  tree.SearchIntersects(Rect{2.0, 2.0, 3.0, 3.0}, &out);
  EXPECT_EQ(Sorted(out), (std::vector<uint64_t>{11, 12, 21, 22}));
}

TEST(RStarTreeTest, DeleteRemovesExactlyOneEntry) {
  RStarTree tree;
  tree.Insert(Rect{0, 0, 1, 1}, 1);
  tree.Insert(Rect{0, 0, 1, 1}, 1);  // duplicate allowed
  ASSERT_EQ(tree.size(), 2u);
  ASSERT_TRUE(tree.Delete(Rect{0, 0, 1, 1}, 1).ok());
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_TRUE(tree.Delete(Rect{0, 0, 1, 1}, 1).ok());
  EXPECT_TRUE(tree.empty());
}

TEST(RStarTreeTest, DeleteMissingEntryIsNotFound) {
  RStarTree tree;
  tree.Insert(Rect{0, 0, 1, 1}, 1);
  EXPECT_EQ(tree.Delete(Rect{0, 0, 1, 1}, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(Rect{5, 5, 1, 1}, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, UpdateMovesEntry) {
  RStarTree tree;
  tree.Insert(Rect{0, 0, 0, 0}, 42);
  ASSERT_TRUE(tree.Update(Rect{0, 0, 0, 0}, Rect{50, 50, 0, 0}, 42).ok());
  std::vector<uint64_t> out;
  tree.SearchContainsPoint(Point{0, 0}, &out);
  EXPECT_TRUE(out.empty());
  tree.SearchContainsPoint(Point{50, 50}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
}

TEST(RStarTreeTest, DeleteDownToEmptyAndRefill) {
  RStarTree tree;
  Rng rng(41);
  std::vector<Rect> rects;
  for (uint64_t k = 0; k < 100; ++k) {
    Rect r{rng.NextDouble(0, 90), rng.NextDouble(0, 90), rng.NextDouble(0, 5),
           rng.NextDouble(0, 5)};
    rects.push_back(r);
    tree.Insert(r, k);
  }
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Delete(rects[k], k).ok()) << "k=" << k;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "k=" << k;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  // The tree remains usable after draining.
  tree.Insert(Rect{1, 1, 1, 1}, 7);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, VisitIntersectsEarlyStop) {
  RStarTree tree;
  for (uint64_t k = 0; k < 50; ++k) {
    tree.Insert(Rect{static_cast<double>(k), 0, 0.5, 0.5}, k);
  }
  int visits = 0;
  tree.VisitIntersects(Rect{-1, -1, 100, 100},
                       [&](const Rect&, uint64_t) {
                         ++visits;
                         return visits < 5;
                       });
  EXPECT_EQ(visits, 5);
}

TEST(RStarTreeTest, MoveConstructionPreservesContents) {
  RStarTree tree;
  for (uint64_t k = 0; k < 30; ++k) {
    tree.Insert(Rect{static_cast<double>(k), 0, 1, 1}, k);
  }
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 30u);
  std::vector<uint64_t> out;
  moved.SearchIntersects(Rect{0, 0, 100, 100}, &out);
  EXPECT_EQ(out.size(), 30u);
}

TEST(RStarTreeTest, SmallMaxEntriesStillValid) {
  RStarTree::Options options;
  options.max_entries = 4;
  RStarTree tree(options);
  for (uint64_t k = 0; k < 64; ++k) {
    tree.Insert(Rect{static_cast<double>(k % 8), static_cast<double>(k / 8),
                     0.5, 0.5},
                k);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint64_t> out;
  tree.SearchIntersects(Rect{0, 0, 10, 10}, &out);
  EXPECT_EQ(out.size(), 64u);
}

}  // namespace
}  // namespace mobieyes::rtree
