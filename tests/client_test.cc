#include <gtest/gtest.h>

#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

TEST(ClientTest, TargetFlipReportedOnEntry) {
  MiniDeployment deployment({
      {Point{55, 55}},                   // focal
      {Point{62, 55}, Vec2{-0.1, 0.0}},  // approaching target
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(deployment.client(1).IsTargetOf(*qid), std::optional<bool>(false));

  deployment.Tick();  // x=59: inside radius 4
  EXPECT_EQ(deployment.client(1).IsTargetOf(*qid), std::optional<bool>(true));
  EXPECT_TRUE(deployment.server().QueryResult(*qid)->contains(1));
}

TEST(ClientTest, NoReportWithoutChange) {
  MiniDeployment deployment({
      {Point{55, 55}},  // focal, stationary
      {Point{57, 55}},  // target, stationary inside region
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.Tick();  // first evaluation: flips to target, one report
  uint64_t uplinks_after_first = deployment.network().stats().uplink_messages;
  deployment.TickN(5);  // nothing changes: no further reports
  EXPECT_EQ(deployment.network().stats().uplink_messages,
            uplinks_after_first);
}

TEST(ClientTest, FilterBlocksInstallation) {
  MiniDeployment deployment({
      {Point{55, 55}},                 // focal
      {Point{57, 55}, {}, 1.0, 0.9},   // attr 0.9 > threshold 0.5
      {Point{53, 55}, {}, 1.0, 0.3},   // attr 0.3 <= 0.5
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 0.5);
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
  EXPECT_EQ(deployment.client(2).lqt_size(), 1u);
  deployment.Tick();
  auto result = deployment.server().QueryResult(*qid);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contains(1));
  EXPECT_TRUE(result->contains(2));
}

TEST(ClientTest, DeadReckoningSuppressesRedundantReports) {
  // A focal object moving with a constant velocity vector never drifts from
  // its own prediction, so it sends no velocity-change reports.
  MiniDeployment deployment({
      {Point{20, 20}, Vec2{0.05, 0.0}},  // focal, constant velocity
      {Point{23, 20}, Vec2{0.05, 0.0}},  // target moving in lockstep
  });
  auto qid = deployment.server().InstallQuery(0, 5.0, 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.Tick();  // initial flip report from object 1
  uint64_t uplinks = deployment.network().stats().uplink_messages;
  deployment.TickN(3);  // constant motion, no cell crossing before x=30
  EXPECT_EQ(deployment.network().stats().uplink_messages, uplinks);
}

TEST(ClientTest, DeadReckoningFiresOnVelocityChange) {
  MiniDeployment deployment({
      {Point{25, 25}},  // focal, initially stationary
      {Point{28, 25}},
  });
  ASSERT_TRUE(deployment.server().InstallQuery(0, 5.0, 1.0).ok());
  deployment.Tick();
  uint64_t uplinks = deployment.network().stats().uplink_messages;

  // Kick the focal: 0.05 mi/s * 30 s = 1.5 miles of drift > Δ = 0.2.
  deployment.world().SetObjectState(0, deployment.world().object(0).pos,
                                    Vec2{0.05, 0.0});
  deployment.Tick();
  EXPECT_GT(deployment.network().stats().uplink_messages, uplinks);
  const auto* focal = deployment.server().FindFocal(0);
  ASSERT_NE(focal, nullptr);
  EXPECT_DOUBLE_EQ(focal->state.vel.x, 0.05);
}

TEST(ClientTest, PredictionKeepsResultExactUnderConstantVelocity) {
  // Target evaluates against the *predicted* focal position; with constant
  // focal velocity the prediction is exact, so containment matches ground
  // truth each step.
  MiniDeployment deployment({
      {Point{20, 50}, Vec2{0.05, 0.0}},  // focal moving right
      {Point{26, 50}},                   // stationary object in its path
  });
  auto qid = deployment.server().InstallQuery(0, 3.0, 1.0);
  ASSERT_TRUE(qid.ok());

  deployment.Tick();  // focal at 21.5, distance 4.5 > 3
  EXPECT_FALSE(deployment.server().QueryResult(*qid)->contains(1));
  deployment.TickN(2);  // focal at 24.5, distance 1.5 <= 3
  EXPECT_TRUE(deployment.server().QueryResult(*qid)->contains(1));
  deployment.TickN(4);  // focal at 30.5 — crossed a cell; still 4.5 > 3
  EXPECT_FALSE(deployment.server().QueryResult(*qid)->contains(1));
}

TEST(ClientTest, LeavingMonitoringRegionDropsAndReports) {
  MiniDeployment deployment({
      {Point{55, 55}},                  // focal
      {Point{56, 55}, Vec2{0.2, 0.0}},  // target speeding away
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  // Force an immediate in-region evaluation so the object is a target.
  deployment.client(1).OnTick();
  ASSERT_TRUE(deployment.server().QueryResult(*qid)->contains(1));

  // 0.2 mi/s * 30 s = 6 miles per tick; after 3 ticks x=74, cell (7,5) —
  // outside the monitoring region columns [4,6].
  deployment.TickN(3);
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
  EXPECT_FALSE(deployment.server().QueryResult(*qid)->contains(1));
}

TEST(ClientTest, ReenteringRegionReinstallsEagerly) {
  MiniDeployment deployment({
      {Point{55, 55}},                   // focal
      {Point{75, 55}, Vec2{-0.15, 0.0}},  // sweeping through the region
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);

  deployment.Tick();  // x=70.5, cell (7,5): still outside
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
  deployment.Tick();  // x=66, cell (6,5): inside region -> installed
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
  deployment.TickN(2);  // x=57: inside the circle
  EXPECT_TRUE(deployment.server().QueryResult(*qid)->contains(1));
}

TEST(ClientTest, BoundaryContainmentIsInclusive) {
  MiniDeployment deployment({
      {Point{50, 50}},
      {Point{54, 50}},  // exactly on the radius-4 boundary
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.client(1).OnTick();
  EXPECT_EQ(deployment.client(1).IsTargetOf(*qid), std::optional<bool>(true));
}

TEST(ClientTest, IsTargetOfUnknownQueryIsNullopt) {
  MiniDeployment deployment({ObjectSpec(Point{50, 50})});
  EXPECT_EQ(deployment.client(0).IsTargetOf(99), std::nullopt);
}

TEST(ClientTest, ProcessingCountersTrackEvaluations) {
  MiniDeployment deployment({
      {Point{55, 55}},
      {Point{57, 55}},
  });
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  deployment.TickN(4);
  EXPECT_EQ(deployment.client(1).queries_evaluated(), 4u);
  EXPECT_GT(deployment.client(1).processing_seconds(), 0.0);
  deployment.client(1).ResetCounters();
  EXPECT_EQ(deployment.client(1).queries_evaluated(), 0u);
  EXPECT_EQ(deployment.client(1).processing_seconds(), 0.0);
}

}  // namespace
}  // namespace mobieyes::core
