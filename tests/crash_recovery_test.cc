// Crash recovery (DESIGN.md §9): the durable Snapshot store, server
// checkpoint/WAL restore, client cold restarts, and the kill/restart fault
// events in the simulation — including the recovery-equivalence contract
// (a zero-downtime crash+restore run is byte-identical to an uninterrupted
// one) and the thread-count determinism of WAL replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mobieyes/core/server.h"
#include "mobieyes/core/snapshot.h"
#include "mobieyes/net/message.h"
#include "mobieyes/sim/simulation.h"
#include "test_harness.h"

namespace mobieyes {
namespace {

net::Message VelocityMessage(ObjectId oid, double vx, uint32_t seq) {
  net::VelocityChangeReport report;
  report.oid = oid;
  report.state.pos = {10.0 + vx, 20.0};
  report.state.vel = {vx, 0.5};
  report.state.tm = 30.0;
  net::Message message = net::MakeMessage(report);
  message.seq = seq;
  return message;
}

// --- Snapshot store ---------------------------------------------------------

TEST(SnapshotTest, WalDropsNewestRecordsAtCapacity) {
  core::Snapshot store;
  store.wal_limit = 3;
  for (uint32_t k = 0; k < 5; ++k) {
    store.Append(1, VelocityMessage(1, 0.1 * k, k + 1));
  }
  ASSERT_EQ(store.wal.size(), 3u);
  EXPECT_EQ(store.wal_dropped, 2u);
  // The *prefix* survives: dropping the newest keeps the log replayable.
  EXPECT_EQ(store.wal[0].message.seq, 1u);
  EXPECT_EQ(store.wal[2].message.seq, 3u);

  store.Install({0xAA, 0xBB});
  EXPECT_TRUE(store.wal.empty());
  EXPECT_EQ(store.wal_dropped, 0u);
  EXPECT_EQ(store.checkpoint.size(), 2u);
}

TEST(SnapshotTest, SerializeParseRoundTrip) {
  core::Snapshot store;
  store.wal_limit = 7;
  store.checkpoint = {1, 2, 3, 4, 5};
  store.Append(3, VelocityMessage(3, 0.25, 42));
  net::CellChangeReport cell;
  cell.oid = 9;
  cell.prev_cell = {1, 2};
  cell.new_cell = {2, 2};
  store.Append(9, net::MakeMessage(cell));
  store.wal_dropped = 11;

  auto parsed = core::Snapshot::Parse(store.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->checkpoint, store.checkpoint);
  EXPECT_EQ(parsed->wal_limit, 7u);
  EXPECT_EQ(parsed->wal_dropped, 11u);
  ASSERT_EQ(parsed->wal.size(), 2u);
  EXPECT_EQ(parsed->wal[0].from, 3);
  // The envelope seq is not part of the wire body; the store must carry it
  // explicitly or replay would bypass the server's dedup path.
  EXPECT_EQ(parsed->wal[0].message.seq, 42u);
  const auto& report =
      std::get<net::VelocityChangeReport>(parsed->wal[0].message.payload);
  EXPECT_EQ(report.oid, 3);
  EXPECT_DOUBLE_EQ(report.state.vel.x, 0.25);
  EXPECT_EQ(parsed->wal[1].from, 9);
  EXPECT_EQ(parsed->wal[1].message.type, net::MessageType::kCellChangeReport);
}

TEST(SnapshotTest, ParseRejectsEveryTruncation) {
  core::Snapshot store;
  store.checkpoint = {9, 8, 7};
  store.Append(2, VelocityMessage(2, 0.5, 7));
  std::vector<uint8_t> buffer = store.Serialize();
  for (size_t len = 0; len < buffer.size(); ++len) {
    std::vector<uint8_t> truncated(buffer.begin(), buffer.begin() + len);
    auto parsed = core::Snapshot::Parse(truncated);
    EXPECT_FALSE(parsed.ok()) << "accepted truncation to " << len << " bytes";
  }
}

TEST(SnapshotTest, ParseRejectsBadMagicVersionAndTrailingBytes) {
  core::Snapshot store;
  store.checkpoint = {1};
  std::vector<uint8_t> buffer = store.Serialize();

  std::vector<uint8_t> bad_magic = buffer;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(core::Snapshot::Parse(bad_magic).ok());

  std::vector<uint8_t> bad_version = buffer;
  bad_version[4] ^= 0xFF;
  EXPECT_FALSE(core::Snapshot::Parse(bad_version).ok());

  std::vector<uint8_t> trailing = buffer;
  trailing.push_back(0);
  EXPECT_FALSE(core::Snapshot::Parse(trailing).ok());
}

// A crash while the store file itself was being written leaves a
// zero-length or header-truncated buffer. Each short-read mode must come
// back as its own InvalidArgument — not a misleading "bad magic" from
// zero-filled reads, and never a crash.
TEST(SnapshotTest, ParseRejectsZeroLengthStore) {
  auto parsed = core::Snapshot::Parse({});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("empty store"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SnapshotTest, ParseRejectsStoreTruncatedAtHeader) {
  core::Snapshot store;
  store.checkpoint = {1, 2, 3};
  std::vector<uint8_t> buffer = store.Serialize();
  // Every prefix strictly inside the fixed header (magic, version,
  // reserved, image size = 16 bytes).
  for (size_t len = 1; len < 16; ++len) {
    std::vector<uint8_t> truncated(buffer.begin(), buffer.begin() + len);
    auto parsed = core::Snapshot::Parse(truncated);
    ASSERT_FALSE(parsed.ok()) << "accepted " << len << "-byte header";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("truncated at header"),
              std::string::npos)
        << parsed.status().ToString();
  }
}

// --- Server checkpoint / restore -------------------------------------------

core::MobiEyesOptions HardenedTestOptions() {
  return core::HardenedOptions(core::MobiEyesOptions{}, /*time_step=*/30.0,
                               /*lease_ticks=*/16);
}

// Restoring checkpoint + WAL on a fresh server must reproduce the crashed
// server's protocol state: SQT rows, result sets, FOT kinematics and the
// dedup rings (checked indirectly through QueryResult equality).
TEST(ServerRestoreTest, RestoreReproducesServerState) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 12; ++k) {
    specs.push_back(test::ObjectSpec({5.0 + 7.0 * k, 40.0},
                                     {0.02 * (k % 5), 0.01 * (k % 3)},
                                     /*max_speed_in=*/0.05));
  }
  core::MobiEyesOptions options = HardenedTestOptions();
  test::MiniDeployment d(specs, options);
  core::Snapshot store;
  store.wal_limit = 4096;
  d.server().set_durable_store(&store);

  ASSERT_TRUE(d.server().InstallQuery(0, 15.0, 0.5).ok());
  ASSERT_TRUE(d.server().InstallQuery(4, 10.0, 0.5).ok());
  d.TickN(3);
  d.server().Checkpoint();
  ASSERT_TRUE(d.server().InstallQuery(7, 12.0, 0.5).ok());
  d.TickN(5);  // uplinks since the checkpoint land in the WAL
  ASSERT_GT(store.wal.size(), 0u);

  core::MobiEyesServer restored(d.grid(), d.layout(), d.bmap(), d.network(),
                                options);
  size_t replayed = 0;
  Status status = restored.Restore(store, &replayed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(replayed, store.wal.size());

  EXPECT_EQ(restored.query_count(), d.server().query_count());
  // The clock is not WAL-logged: the restored server lags at the last
  // image's time until its first AdvanceTime.
  EXPECT_LE(restored.now(), d.server().now());
  for (QueryId qid = 0; qid < 3; ++qid) {
    const core::MobiEyesServer::SqtEntry* live = d.server().FindQuery(qid);
    const core::MobiEyesServer::SqtEntry* back = restored.FindQuery(qid);
    ASSERT_NE(live, nullptr);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->focal_oid, live->focal_oid);
    EXPECT_EQ(back->curr_cell.i, live->curr_cell.i);
    EXPECT_EQ(back->curr_cell.j, live->curr_cell.j);
    EXPECT_EQ(back->mon_region.i_lo, live->mon_region.i_lo);
    EXPECT_EQ(back->mon_region.i_hi, live->mon_region.i_hi);
    EXPECT_EQ(back->mon_region.j_lo, live->mon_region.j_lo);
    EXPECT_EQ(back->mon_region.j_hi, live->mon_region.j_hi);
    EXPECT_DOUBLE_EQ(back->expires_at, live->expires_at);
    EXPECT_DOUBLE_EQ(back->lease_renew_at, live->lease_renew_at);
    EXPECT_EQ(back->result, live->result);
    const core::MobiEyesServer::FotEntry* live_focal =
        d.server().FindFocal(live->focal_oid);
    const core::MobiEyesServer::FotEntry* back_focal =
        restored.FindFocal(live->focal_oid);
    ASSERT_NE(live_focal, nullptr);
    ASSERT_NE(back_focal, nullptr);
    EXPECT_DOUBLE_EQ(back_focal->state.pos.x, live_focal->state.pos.x);
    EXPECT_DOUBLE_EQ(back_focal->state.vel.x, live_focal->state.vel.x);
    EXPECT_DOUBLE_EQ(back_focal->state.tm, live_focal->state.tm);
    EXPECT_EQ(back_focal->queries, live_focal->queries);
  }
}

// A corrupt checkpoint image must fail cleanly (Status, not a crash or an
// out-of-bounds RQI write), whatever byte it is cut at.
TEST(ServerRestoreTest, RestoreRejectsTruncatedImages) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 6; ++k) {
    specs.push_back(test::ObjectSpec({10.0 + 12.0 * k, 55.0}));
  }
  core::MobiEyesOptions options = HardenedTestOptions();
  test::MiniDeployment d(specs, options);
  core::Snapshot store;
  d.server().set_durable_store(&store);
  ASSERT_TRUE(d.server().InstallQuery(1, 14.0, 0.5).ok());
  d.TickN(2);
  d.server().Checkpoint();
  ASSERT_FALSE(store.checkpoint.empty());

  const std::vector<uint8_t> image = store.checkpoint;
  // Truncation to zero bytes is "no checkpoint at all": a legal cold
  // restore, not corruption.
  {
    core::Snapshot empty;
    core::MobiEyesServer fresh(d.grid(), d.layout(), d.bmap(), d.network(),
                               options);
    EXPECT_TRUE(fresh.Restore(empty).ok());
    EXPECT_EQ(fresh.query_count(), 0u);
  }
  for (size_t len = 1; len < image.size(); ++len) {
    core::Snapshot corrupt;
    corrupt.checkpoint.assign(image.begin(), image.begin() + len);
    core::MobiEyesServer fresh(d.grid(), d.layout(), d.bmap(), d.network(),
                               options);
    EXPECT_FALSE(fresh.Restore(corrupt).ok())
        << "accepted image truncated to " << len << " bytes";
  }
  core::Snapshot bad_magic;
  bad_magic.checkpoint = image;
  bad_magic.checkpoint[0] ^= 0xFF;
  core::MobiEyesServer fresh(d.grid(), d.layout(), d.bmap(), d.network(),
                             options);
  EXPECT_FALSE(fresh.Restore(bad_magic).ok());
}

// --- Simulation-level recovery ---------------------------------------------

sim::SimulationConfig SmallCrashConfig() {
  sim::SimulationConfig config;
  config.params.num_objects = 300;
  config.params.num_queries = 40;
  config.params.velocity_changes_per_step = 40;
  config.params.area_square_miles = 10000.0;  // 100 x 100
  config.params.seed = 11;
  config.mode = sim::SimMode::kMobiEyesEager;
  config.measure_error = true;
  config.warmup_steps = 2;
  config.mobieyes =
      core::HardenedOptions(config.mobieyes, config.params.time_step);
  config.obs.enable_metrics = true;
  config.obs.sample_stride = 1;
  return config;
}

std::string RunAndReport(const sim::SimulationConfig& config, int steps,
                         sim::RunMetrics* metrics_out,
                         std::vector<std::set<ObjectId>>* results_out) {
  auto simulation = sim::Simulation::Make(config);
  EXPECT_TRUE(simulation.ok()) << simulation.status().ToString();
  if (!simulation.ok()) return {};
  (*simulation)->Run(steps);
  if (metrics_out != nullptr) *metrics_out = (*simulation)->metrics();
  if (results_out != nullptr) {
    for (QueryId qid : (*simulation)->installed_queries()) {
      auto result = (*simulation)->server()->QueryResult(qid);
      EXPECT_TRUE(result.ok());
      results_out->push_back(result.ok()
                                 ? std::set<ObjectId>(result->begin(),
                                                      result->end())
                                 : std::set<ObjectId>{});
    }
  }
  return (*simulation)->ObservabilityJson(/*include_timing=*/false);
}

// The recovery-equivalence contract: at drop 0, a run that crashes and
// restores the server within the same step (zero downtime) must be
// indistinguishable — byte-identical deterministic report, identical final
// query results — from a run that never crashed.
TEST(SimulationCrashTest, InstantRestoreIsByteIdenticalToUninterruptedRun) {
  sim::SimulationConfig plain = SmallCrashConfig();
  // Activate the fault layer without any reachable fault so both runs route
  // through FaultyNetwork and register the identical metrics counter set
  // (net.fault.*); otherwise the JSON key sets differ trivially.
  plain.faults.forced_restart_oid = 0;
  plain.faults.forced_restart_step = 1 << 20;
  sim::SimulationConfig crashed = SmallCrashConfig();
  crashed.faults.forced_restart_oid = 0;
  crashed.faults.forced_restart_step = 1 << 20;
  crashed.faults.server_crash_step = 6;
  crashed.faults.server_recovery_steps = 0;
  crashed.checkpoint_stride = 1;

  sim::RunMetrics plain_metrics;
  sim::RunMetrics crash_metrics;
  std::vector<std::set<ObjectId>> plain_results;
  std::vector<std::set<ObjectId>> crash_results;
  std::string plain_json = RunAndReport(plain, 10, &plain_metrics,
                                        &plain_results);
  std::string crash_json = RunAndReport(crashed, 10, &crash_metrics,
                                        &crash_results);

  EXPECT_EQ(crash_metrics.server_crashes, 1);
  EXPECT_FALSE(plain_json.empty());
  EXPECT_EQ(plain_json, crash_json);
  EXPECT_EQ(plain_results, crash_results);
  EXPECT_EQ(plain_metrics.network.uplink_messages,
            crash_metrics.network.uplink_messages);
  EXPECT_EQ(plain_metrics.network.downlink_messages,
            crash_metrics.network.downlink_messages);
  EXPECT_EQ(plain_metrics.agreement_sum, crash_metrics.agreement_sum);
}

// A crash with real downtime loses the in-flight traffic of the dark window
// (counted as undeliverable, not dropped), and the restored server must
// reconverge with the oracle at drop 0.
TEST(SimulationCrashTest, ReconvergesAfterDowntime) {
  sim::SimulationConfig config = SmallCrashConfig();
  config.faults.server_crash_step = 8;
  config.faults.server_recovery_steps = 3;
  config.checkpoint_stride = 4;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(30);
  sim::RunMetrics metrics = (*simulation)->metrics();
  EXPECT_EQ(metrics.server_crashes, 1);
  EXPECT_GE(metrics.checkpoints_taken, 2);
  // Uplinks sent into the dark window are undeliverable-by-reason, never
  // silently folded into the drop counters.
  using Reason = net::NetworkStats::UndeliverableReason;
  EXPECT_GT(metrics.network.undeliverable_by_reason[static_cast<size_t>(
                Reason::kServerDown)],
            0u);
  EXPECT_EQ(metrics.network.uplink_dropped, 0u);
  EXPECT_GE((*simulation)->CurrentAccuracy().agreement, 0.95);
}

// Recovery still works when the crash happens under 10% message loss: the
// protocol ends near the accuracy an uninterrupted lossy run achieves.
TEST(SimulationCrashTest, RecoversUnderMessageLoss) {
  sim::SimulationConfig config = SmallCrashConfig();
  config.faults.uplink_drop_rate = 0.1;
  config.faults.downlink_drop_rate = 0.1;
  config.faults.server_crash_step = 8;
  config.faults.server_recovery_steps = 3;
  config.checkpoint_stride = 4;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(30);
  EXPECT_EQ((*simulation)->metrics().server_crashes, 1);
  EXPECT_GE((*simulation)->CurrentAccuracy().agreement, 0.85);
}

// Lifecycle matching discipline under fire (DESIGN.md §12): with drops,
// duplicates, client cold-restarts and a server crash all active, every
// stamp must be accounted for — resolved, cancelled or still pending at
// export — never silently leaked, and duplicate terminal events must not
// inflate the resolved counts past the stamped ones.
TEST(SimulationCrashTest, LifecycleAccountingSurvivesFaultsAndCrash) {
  sim::SimulationConfig config = SmallCrashConfig();
  config.faults.uplink_drop_rate = 0.15;
  config.faults.downlink_drop_rate = 0.15;
  config.faults.duplicate_rate = 0.1;
  config.faults.client_restart_rate = 0.02;
  config.faults.server_crash_step = 8;
  config.faults.server_recovery_steps = 2;
  config.checkpoint_stride = 4;
  config.obs.enable_lifecycle = true;
  config.obs.enable_heatmap = true;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(24);
  const obs::LifecycleTracker* lifecycle = (*simulation)->lifecycle();
  ASSERT_NE(lifecycle, nullptr);
  for (int k = 0; k < obs::LifecycleTracker::kNumKinds; ++k) {
    const auto kind = static_cast<obs::LifecycleTracker::Kind>(k);
    EXPECT_EQ(lifecycle->stamped(kind),
              lifecycle->resolved(kind) + lifecycle->cancelled(kind) +
                  lifecycle->pending(kind))
        << obs::LifecycleTracker::KindName(kind);
    EXPECT_LE(lifecycle->resolved(kind), lifecycle->stamped(kind))
        << obs::LifecycleTracker::KindName(kind);
  }
  // The run exercised real rounds, and the crash kinds both fired and
  // closed: the server restored and the protocol reconverged.
  EXPECT_GT(lifecycle->resolved(obs::LifecycleTracker::kUplinkRoundTrip), 0u);
  EXPECT_GT(lifecycle->resolved(obs::LifecycleTracker::kUplinkAck), 0u);
  EXPECT_EQ(lifecycle->resolved(obs::LifecycleTracker::kCrashRestore), 1u);
  // Reconvergence either completed (resolved) or is still honestly pending
  // under this fault pressure; the stamp fired either way.
  EXPECT_EQ(lifecycle->stamped(obs::LifecycleTracker::kCrashReconverge), 1u);
  // The drop/dup pressure is real: some rounds were retried or cancelled.
  EXPECT_GT(lifecycle->restamped(obs::LifecycleTracker::kUplinkAck) +
                lifecycle->cancelled(obs::LifecycleTracker::kUplinkAck),
            0u);
  // Heat maps stayed coherent across the crash/restore re-wiring: charges
  // landed both before and after the restore.
  const obs::HeatMap* heatmap = (*simulation)->heatmap();
  ASSERT_NE(heatmap, nullptr);
  EXPECT_GT(heatmap->ChannelSum(obs::HeatMap::kUplinks), 0u);
  EXPECT_GT(heatmap->ChannelSum(obs::HeatMap::kResidency), 0u);
}

// A cold-restarted client rebuilds its LQT through the reconciliation path:
// after a few post-restart steps it matches the LQT of the same client in
// an undisturbed twin run.
TEST(SimulationCrashTest, ClientRestartRebuildsLqt) {
  constexpr ObjectId kRestarted = 5;
  sim::SimulationConfig twin = SmallCrashConfig();
  sim::SimulationConfig restart = SmallCrashConfig();
  restart.faults.forced_restart_oid = kRestarted;
  restart.faults.forced_restart_step = 8;

  auto twin_sim = sim::Simulation::Make(twin);
  auto restart_sim = sim::Simulation::Make(restart);
  ASSERT_TRUE(twin_sim.ok());
  ASSERT_TRUE(restart_sim.ok());
  (*twin_sim)->Run(30);
  (*restart_sim)->Run(30);
  EXPECT_EQ((*restart_sim)->metrics().client_restarts, 1);

  auto qids = [](core::MobiEyesClient* client) {
    std::set<QueryId> out;
    for (const auto& entry : client->lqt()) out.insert(entry.qid);
    return out;
  };
  std::set<QueryId> twin_qids = qids((*twin_sim)->client(kRestarted));
  std::set<QueryId> restart_qids = qids((*restart_sim)->client(kRestarted));
  EXPECT_FALSE(twin_qids.empty());
  EXPECT_EQ(restart_qids, twin_qids);
  EXPECT_EQ((*restart_sim)->client(kRestarted)->has_mq(),
            (*twin_sim)->client(kRestarted)->has_mq());
}

// When the WAL overflows (tiny budget, sparse checkpoints) the restore is
// stale by design; leases + reconciliation must still close the gap.
TEST(SimulationCrashTest, WalOverflowStillConverges) {
  sim::SimulationConfig config = SmallCrashConfig();
  config.faults.server_crash_step = 10;
  config.faults.server_recovery_steps = 2;
  config.checkpoint_stride = 0;  // baseline checkpoint only
  config.wal_limit = 16;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(40);
  sim::RunMetrics metrics = (*simulation)->metrics();
  EXPECT_EQ(metrics.server_crashes, 1);
  EXPECT_GT(metrics.wal_records_dropped, 0u);
  EXPECT_EQ(metrics.wal_records_replayed, 16u);
  EXPECT_GE((*simulation)->CurrentAccuracy().agreement, 0.95);
}

// WAL replay is part of the sweep determinism contract: crash-recovery
// cells must produce byte-identical deterministic reports for any worker
// count.
TEST(SimulationCrashTest, WalReplayIsThreadCountInvariant) {
  std::vector<bench::SweepJob> jobs;
  for (int stride : {1, 4}) {
    bench::SweepJob job;
    job.params.num_objects = 200;
    job.params.num_queries = 20;
    job.params.velocity_changes_per_step = 20;
    job.params.area_square_miles = 10000.0;
    job.params.seed = 23;
    job.mode = sim::SimMode::kMobiEyesEager;
    job.options.steps = 16;
    job.options.warmup_steps = 2;
    job.options.measure_error = true;
    job.options.checkpoint_stride = stride;
    job.options.wal_limit = 64;
    job.faults.plan.server_crash_step = 8;
    job.faults.plan.server_recovery_steps = 2;
    job.faults.plan.client_restart_rate = 0.01;
    job.faults.harden = true;
    jobs.push_back(job);
  }
  bench::SweepObsOptions obs;
  obs.metrics = true;
  obs.sample_stride = 1;
  std::vector<bench::SweepCellResult> serial =
      bench::RunSweepObserved(jobs, 1, obs);
  std::vector<bench::SweepCellResult> parallel =
      bench::RunSweepObserved(jobs, 4, obs);
  ASSERT_EQ(serial.size(), jobs.size());
  for (size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(serial[k].metrics.server_crashes, 1) << "job " << k;
    EXPECT_EQ(serial[k].metrics.wal_records_replayed,
              parallel[k].metrics.wal_records_replayed)
        << "job " << k;
    EXPECT_EQ(serial[k].metrics.client_restarts,
              parallel[k].metrics.client_restarts)
        << "job " << k;
    EXPECT_FALSE(serial[k].metrics_json.empty()) << "job " << k;
    EXPECT_EQ(serial[k].metrics_json, parallel[k].metrics_json)
        << "job " << k;
  }
}

}  // namespace
}  // namespace mobieyes
