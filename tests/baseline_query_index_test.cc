#include <gtest/gtest.h>

#include "mobieyes/baseline/query_index.h"
#include "mobieyes/common/random.h"

namespace mobieyes::baseline {
namespace {

using geo::Point;

TEST(QueryIndexTest, DifferentialUpdateOnObjectReport) {
  std::vector<double> attrs = {0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {90, 90}};
  QueryIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 1.0});

  processor.OnPositionReport(1, Point{52, 50});
  EXPECT_TRUE(processor.QueryResult(1)->contains(1));
  processor.OnPositionReport(1, Point{80, 50});
  EXPECT_FALSE(processor.QueryResult(1)->contains(1));
}

TEST(QueryIndexTest, FilterAndFocalExclusion) {
  std::vector<double> attrs = {0.0, 0.9};
  std::vector<Point> positions = {{50, 50}, {51, 50}};
  QueryIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 0.5});
  processor.OnPositionReport(1, Point{52, 50});  // attr 0.9 > 0.5
  EXPECT_TRUE(processor.QueryResult(1)->empty());
  processor.OnPositionReport(0, Point{50, 50});  // focal itself
  EXPECT_TRUE(processor.QueryResult(1)->empty());
}

TEST(QueryIndexTest, FocalReportMovesIndexedRegion) {
  std::vector<double> attrs = {0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {60, 50}};
  QueryIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 1.0});
  // Object 1 reports while out of range.
  processor.OnPositionReport(1, Point{60, 50});
  EXPECT_FALSE(processor.QueryResult(1)->contains(1));
  // The focal moves next to it; object 1's next report lands inside.
  processor.OnPositionReport(0, Point{58, 50});
  processor.OnPositionReport(1, Point{60, 50});
  EXPECT_TRUE(processor.QueryResult(1)->contains(1));
}

TEST(QueryIndexTest, StaleResultsUntilObjectReports) {
  // The documented weakness of the query-index scheme: results only refresh
  // when the affected object reports again.
  std::vector<double> attrs = {0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {52, 50}};
  QueryIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 1.0});
  processor.OnPositionReport(1, Point{52, 50});
  ASSERT_TRUE(processor.QueryResult(1)->contains(1));
  // The focal teleports away; object 1 has not reported since.
  processor.OnPositionReport(0, Point{10, 10});
  EXPECT_TRUE(processor.QueryResult(1)->contains(1));  // stale by design
  processor.OnPositionReport(1, Point{52, 50});
  EXPECT_FALSE(processor.QueryResult(1)->contains(1));
}

TEST(QueryIndexTest, MatchesBruteForceUnderFullReporting) {
  // When every object reports every round (the naive feed used by the
  // server-load experiments), results must equal brute force.
  Rng rng(211);
  const int n = 200;
  std::vector<double> attrs;
  std::vector<Point> positions;
  for (int k = 0; k < n; ++k) {
    attrs.push_back(rng.NextDouble());
    positions.push_back({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
  }
  QueryIndexProcessor processor(attrs, positions);
  std::vector<CentralQuery> queries;
  for (QueryId q = 0; q < 8; ++q) {
    CentralQuery query{q, static_cast<ObjectId>(rng.NextUint64(n)),
                       rng.NextDouble(3, 12), 0.75};
    queries.push_back(query);
    processor.AddQuery(query);
  }

  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < n; ++k) {
      positions[k] = Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    }
    // Every object reports its new position (focal moves are folded in).
    for (int k = 0; k < n; ++k) {
      processor.OnPositionReport(k, positions[k]);
    }
    // One more full pass so objects that reported before a focal moved are
    // refreshed against the final query regions.
    for (int k = 0; k < n; ++k) {
      processor.OnPositionReport(k, positions[k]);
    }
    for (const auto& query : queries) {
      std::unordered_set<ObjectId> brute;
      Point focal = positions[query.focal_oid];
      for (int k = 0; k < n; ++k) {
        if (k != query.focal_oid &&
            geo::Distance(positions[k], focal) <= query.radius &&
            attrs[k] <= query.filter_threshold) {
          brute.insert(k);
        }
      }
      ASSERT_EQ(*processor.QueryResult(query.qid), brute)
          << "round " << round << " query " << query.qid;
    }
  }
  EXPECT_TRUE(processor.index().CheckInvariants().ok());
}

TEST(QueryIndexTest, MultipleQueriesPerFocal) {
  std::vector<double> attrs = {0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {53, 50}};
  QueryIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 2.0, 1.0});
  processor.AddQuery(CentralQuery{2, 0, 5.0, 1.0});
  processor.OnPositionReport(1, Point{53, 50});
  EXPECT_FALSE(processor.QueryResult(1)->contains(1));  // dist 3 > 2
  EXPECT_TRUE(processor.QueryResult(2)->contains(1));   // dist 3 <= 5
}

}  // namespace
}  // namespace mobieyes::baseline
