#include <gtest/gtest.h>

#include <set>

#include "mobieyes/common/random.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/bmap.h"

namespace mobieyes::net {
namespace {

using geo::CellCoord;
using geo::CellRange;
using geo::Grid;
using geo::Rect;

TEST(BaseStationLayoutTest, RejectsBadArguments) {
  EXPECT_FALSE(BaseStationLayout::Make(Rect{0, 0, 100, 100}, 0.0).ok());
  EXPECT_FALSE(BaseStationLayout::Make(Rect{0, 0, 0, 100}, 10.0).ok());
}

TEST(BaseStationLayoutTest, LatticeCoversUniverse) {
  auto layout = BaseStationLayout::Make(Rect{0, 0, 100, 100}, 10.0);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->stations().size(), 100u);
  // Coverage circle circumscribes the lattice square (with a tiny padding
  // against floating-point corner rounding).
  EXPECT_NEAR(layout->stations()[0].coverage.radius, 10.0 / std::sqrt(2.0),
              1e-6);
  EXPECT_GE(layout->stations()[0].coverage.radius, 10.0 / std::sqrt(2.0));
  // Corner points of the lattice square are inside the closed circle.
  EXPECT_TRUE(layout->stations()[0].coverage.Contains(geo::Point{0, 0}));
  EXPECT_TRUE(layout->stations()[0].coverage.Contains(geo::Point{10, 10}));
  // The station's own lattice square is covered (corners sit exactly on
  // the circumscribing circle, so test just inside them to avoid relying
  // on floating-point rounding at the boundary).
  const BaseStation& first = layout->station(0);
  EXPECT_TRUE(first.coverage.Contains(geo::Point{0.01, 0.01}));
  EXPECT_TRUE(first.coverage.Contains(geo::Point{9.99, 9.99}));
  EXPECT_TRUE(first.coverage.Contains(geo::Point{5, 5}));
}

TEST(BaseStationLayoutTest, StationIdsAreDense) {
  auto layout = BaseStationLayout::Make(Rect{0, 0, 50, 30}, 10.0);
  ASSERT_TRUE(layout.ok());
  ASSERT_EQ(layout->stations().size(), 15u);
  for (size_t k = 0; k < layout->stations().size(); ++k) {
    EXPECT_EQ(layout->stations()[k].id, static_cast<BaseStationId>(k));
  }
}

class BmapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto grid = Grid::Make(Rect{0, 0, 100, 100}, 5.0);
    ASSERT_TRUE(grid.ok());
    grid_ = std::make_unique<Grid>(*grid);
    auto layout = BaseStationLayout::Make(Rect{0, 0, 100, 100}, 10.0);
    ASSERT_TRUE(layout.ok());
    layout_ = std::make_unique<BaseStationLayout>(*layout);
    auto bmap = Bmap::Make(*grid_, *layout_);
    ASSERT_TRUE(bmap.ok());
    bmap_ = std::make_unique<Bmap>(*bmap);
  }

  std::unique_ptr<Grid> grid_;
  std::unique_ptr<BaseStationLayout> layout_;
  std::unique_ptr<Bmap> bmap_;
};

TEST_F(BmapTest, EveryCellHasAtLeastOneStation) {
  for (int32_t j = 0; j < grid_->rows(); ++j) {
    for (int32_t i = 0; i < grid_->columns(); ++i) {
      EXPECT_FALSE(bmap_->StationsForCell(CellCoord{i, j}).empty());
    }
  }
}

TEST_F(BmapTest, StationsForCellActuallyIntersect) {
  for (int32_t j = 0; j < grid_->rows(); ++j) {
    for (int32_t i = 0; i < grid_->columns(); ++i) {
      Rect cell_rect = grid_->CellRect(CellCoord{i, j});
      for (BaseStationId sid : bmap_->StationsForCell(CellCoord{i, j})) {
        EXPECT_TRUE(layout_->station(sid).coverage.Intersects(cell_rect));
      }
    }
  }
}

TEST_F(BmapTest, MinimalCoverCoversEveryRegionCell) {
  CellRange region{2, 8, 3, 9};
  std::vector<BaseStationId> cover = bmap_->MinimalCover(region);
  ASSERT_FALSE(cover.empty());
  region.ForEach([&](int32_t i, int32_t j) {
    bool covered = false;
    for (BaseStationId sid : cover) {
      const auto& stations = bmap_->StationsForCell(CellCoord{i, j});
      if (std::find(stations.begin(), stations.end(), sid) !=
          stations.end()) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "cell (" << i << "," << j << ") uncovered";
  });
}

TEST_F(BmapTest, MinimalCoverOfEmptyRegionIsEmpty) {
  EXPECT_TRUE(bmap_->MinimalCover(CellRange{}).empty());
}

TEST_F(BmapTest, SingleCellNeedsOneStation) {
  std::vector<BaseStationId> cover =
      bmap_->MinimalCover(CellRange{4, 4, 4, 4});
  EXPECT_EQ(cover.size(), 1u);
}

TEST_F(BmapTest, CoverIsNoLargerThanRegionCellCount) {
  CellRange region{0, 19, 0, 19};  // the whole grid
  std::vector<BaseStationId> cover = bmap_->MinimalCover(region);
  EXPECT_LE(cover.size(), layout_->stations().size());
  EXPECT_GE(cover.size(), 1u);
}

TEST_F(BmapTest, CoverIsDeterministic) {
  CellRange region{1, 6, 1, 6};
  EXPECT_EQ(bmap_->MinimalCover(region), bmap_->MinimalCover(region));
}

// Area soundness: every point of the region must be inside at least one
// selected station's coverage circle, or objects would miss broadcasts.
TEST_F(BmapTest, CoverIsAreaSound) {
  mobieyes::Rng rng(401);
  for (int trial = 0; trial < 50; ++trial) {
    auto i_lo = static_cast<int32_t>(rng.NextUint64(15));
    auto j_lo = static_cast<int32_t>(rng.NextUint64(15));
    CellRange region{i_lo,
                     i_lo + static_cast<int32_t>(rng.NextUint64(5)),
                     j_lo,
                     j_lo + static_cast<int32_t>(rng.NextUint64(5))};
    region.i_hi = std::min(region.i_hi, grid_->columns() - 1);
    region.j_hi = std::min(region.j_hi, grid_->rows() - 1);
    std::vector<BaseStationId> cover = bmap_->MinimalCover(region);

    Rect low = grid_->CellRect(CellCoord{region.i_lo, region.j_lo});
    Rect high = grid_->CellRect(CellCoord{region.i_hi, region.j_hi});
    Rect rect = Rect::Union(low, high);
    for (int sample = 0; sample < 200; ++sample) {
      geo::Point p{rng.NextDouble(rect.lx, rect.hx()),
                   rng.NextDouble(rect.ly, rect.hy())};
      bool covered = false;
      for (BaseStationId sid : cover) {
        if (layout_->station(sid).coverage.Contains(p)) {
          covered = true;
          break;
        }
      }
      ASSERT_TRUE(covered) << "uncovered point (" << p.x << ", " << p.y
                           << ") in trial " << trial;
    }
  }
}

// The Fig 4 mechanism: broadcast fan-out grows with the monitoring region
// (i.e. with alpha), since covers scale with region area.
TEST_F(BmapTest, CoverGrowsWithRegionArea) {
  size_t small = bmap_->MinimalCover(CellRange{5, 6, 5, 6}).size();
  size_t medium = bmap_->MinimalCover(CellRange{3, 9, 3, 9}).size();
  size_t large = bmap_->MinimalCover(CellRange{0, 18, 0, 18}).size();
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
}

TEST(BmapStandaloneTest, LargeStationsShrinkCover) {
  auto grid = Grid::Make(Rect{0, 0, 100, 100}, 5.0);
  ASSERT_TRUE(grid.ok());
  auto small = BaseStationLayout::Make(Rect{0, 0, 100, 100}, 5.0);
  auto large = BaseStationLayout::Make(Rect{0, 0, 100, 100}, 50.0);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto bmap_small = Bmap::Make(*grid, *small);
  auto bmap_large = Bmap::Make(*grid, *large);
  ASSERT_TRUE(bmap_small.ok());
  ASSERT_TRUE(bmap_large.ok());
  geo::CellRange region{4, 9, 4, 9};
  // Bigger base stations cover the same region with fewer broadcasts — the
  // mechanism behind Fig. 8.
  EXPECT_LT(bmap_large->MinimalCover(region).size(),
            bmap_small->MinimalCover(region).size());
}

}  // namespace
}  // namespace mobieyes::net
