#include <gtest/gtest.h>

#include "mobieyes/baseline/object_index.h"
#include "mobieyes/common/random.h"

namespace mobieyes::baseline {
namespace {

using geo::Point;

TEST(ObjectIndexTest, EvaluatesRangeQueryExactly) {
  std::vector<double> attrs = {0.0, 0.0, 0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {52, 50}, {58, 50}, {50, 53}};
  ObjectIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 1.0});
  processor.EvaluateAllQueries();
  const auto* result = processor.QueryResult(1);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(result->contains(1));
  EXPECT_TRUE(result->contains(3));
}

TEST(ObjectIndexTest, ExcludesFocalAndFiltered) {
  std::vector<double> attrs = {0.0, 0.9, 0.1};
  std::vector<Point> positions = {{50, 50}, {51, 50}, {52, 50}};
  ObjectIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 0.5});
  processor.EvaluateAllQueries();
  const auto* result = processor.QueryResult(1);
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->contains(0));  // focal excluded
  EXPECT_FALSE(result->contains(1));  // attr 0.9 > 0.5
  EXPECT_TRUE(result->contains(2));
}

TEST(ObjectIndexTest, PositionReportsMoveObjects) {
  std::vector<double> attrs = {0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {90, 90}};
  ObjectIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 1.0});
  processor.EvaluateAllQueries();
  EXPECT_TRUE(processor.QueryResult(1)->empty());

  processor.OnPositionReport(1, Point{52, 50});
  processor.EvaluateAllQueries();
  EXPECT_TRUE(processor.QueryResult(1)->contains(1));
}

TEST(ObjectIndexTest, FocalMovementMovesQueryRegion) {
  std::vector<double> attrs = {0.0, 0.0};
  std::vector<Point> positions = {{50, 50}, {60, 50}};
  ObjectIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{1, 0, 5.0, 1.0});
  processor.EvaluateAllQueries();
  EXPECT_FALSE(processor.QueryResult(1)->contains(1));
  processor.OnPositionReport(0, Point{57, 50});
  processor.EvaluateAllQueries();
  EXPECT_TRUE(processor.QueryResult(1)->contains(1));
}

TEST(ObjectIndexTest, MatchesBruteForceUnderRandomMotion) {
  Rng rng(201);
  const int n = 300;
  std::vector<double> attrs;
  std::vector<Point> positions;
  for (int k = 0; k < n; ++k) {
    attrs.push_back(rng.NextDouble());
    positions.push_back({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
  }
  ObjectIndexProcessor processor(attrs, positions);
  std::vector<CentralQuery> queries;
  for (QueryId q = 0; q < 10; ++q) {
    CentralQuery query{q, static_cast<ObjectId>(rng.NextUint64(n)),
                       rng.NextDouble(2, 10), 0.75};
    queries.push_back(query);
    processor.AddQuery(query);
  }

  for (int round = 0; round < 5; ++round) {
    // Random subset of objects moves.
    for (int move = 0; move < 100; ++move) {
      auto oid = static_cast<ObjectId>(rng.NextUint64(n));
      Point pos{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
      positions[oid] = pos;
      processor.OnPositionReport(oid, pos);
    }
    processor.EvaluateAllQueries();
    for (const auto& query : queries) {
      std::unordered_set<ObjectId> brute;
      Point focal = positions[query.focal_oid];
      for (int k = 0; k < n; ++k) {
        if (k != query.focal_oid &&
            geo::Distance(positions[k], focal) <= query.radius &&
            attrs[k] <= query.filter_threshold) {
          brute.insert(k);
        }
      }
      ASSERT_EQ(*processor.QueryResult(query.qid), brute)
          << "round " << round << " query " << query.qid;
    }
  }
  EXPECT_TRUE(processor.index().CheckInvariants().ok());
}

TEST(ObjectIndexTest, LoadTimerAccumulates) {
  std::vector<double> attrs(100, 0.0);
  std::vector<Point> positions(100, Point{50, 50});
  ObjectIndexProcessor processor(attrs, positions);
  processor.AddQuery(CentralQuery{0, 0, 5.0, 1.0});
  for (int k = 0; k < 100; ++k) {
    processor.OnPositionReport(k % 100, Point{1.0 * (k % 90), 50});
    processor.EvaluateAllQueries();
  }
  EXPECT_GT(processor.load_seconds(), 0.0);
  processor.ResetLoadTimer();
  EXPECT_EQ(processor.load_seconds(), 0.0);
}

}  // namespace
}  // namespace mobieyes::baseline
