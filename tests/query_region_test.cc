// Tests for general query region shapes (§2.3: "a rectangle, or a circle,
// or any other closed shape description"): geometry of QueryRegion plus the
// end-to-end protocol behavior of rectangular moving queries.

#include <gtest/gtest.h>

#include "mobieyes/geo/query_region.h"
#include "mobieyes/sim/oracle.h"
#include "test_harness.h"

namespace mobieyes {
namespace {

using geo::Point;
using geo::QueryRegion;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

// --- Geometry ----------------------------------------------------------------

TEST(QueryRegionTest, CircleContainment) {
  QueryRegion circle = QueryRegion::MakeCircle(5.0);
  EXPECT_TRUE(circle.valid());
  EXPECT_TRUE(circle.Contains(Point{0, 0}, Point{3, 4}));    // on boundary
  EXPECT_FALSE(circle.Contains(Point{0, 0}, Point{3.1, 4.1}));
  EXPECT_TRUE(circle.Contains(Point{10, 10}, Point{13, 14}));  // translated
}

TEST(QueryRegionTest, RectangleContainment) {
  QueryRegion rect = QueryRegion::MakeRectangle(6.0, 2.0);
  EXPECT_TRUE(rect.valid());
  EXPECT_TRUE(rect.Contains(Point{0, 0}, Point{3, 1}));     // corner, closed
  EXPECT_TRUE(rect.Contains(Point{0, 0}, Point{-3, -1}));
  EXPECT_FALSE(rect.Contains(Point{0, 0}, Point{3.01, 0}));
  EXPECT_FALSE(rect.Contains(Point{0, 0}, Point{0, 1.01}));
  // Wide but short: a point inside the circumscribing circle yet outside
  // the rectangle.
  EXPECT_FALSE(rect.Contains(Point{0, 0}, Point{0, 2.5}));
}

TEST(QueryRegionTest, ReachAndMaxReach) {
  QueryRegion circle = QueryRegion::MakeCircle(5.0);
  EXPECT_DOUBLE_EQ(circle.ReachX(), 5.0);
  EXPECT_DOUBLE_EQ(circle.ReachY(), 5.0);
  EXPECT_DOUBLE_EQ(circle.MaxReach(), 5.0);

  QueryRegion rect = QueryRegion::MakeRectangle(6.0, 8.0);
  EXPECT_DOUBLE_EQ(rect.ReachX(), 3.0);
  EXPECT_DOUBLE_EQ(rect.ReachY(), 4.0);
  EXPECT_DOUBLE_EQ(rect.MaxReach(), 5.0);  // 3-4-5 half diagonal
}

TEST(QueryRegionTest, Validity) {
  EXPECT_FALSE(QueryRegion::MakeCircle(0.0).valid());
  EXPECT_FALSE(QueryRegion::MakeCircle(-1.0).valid());
  EXPECT_FALSE(QueryRegion::MakeRectangle(0.0, 5.0).valid());
  EXPECT_FALSE(QueryRegion::MakeRectangle(5.0, -1.0).valid());
  EXPECT_TRUE(QueryRegion::MakeRectangle(0.1, 0.1).valid());
}

// --- Protocol with rectangular regions ---------------------------------------

TEST(RectQueryTest, ServerRejectsInvalidRegion) {
  MiniDeployment deployment({ObjectSpec(Point{50, 50})});
  EXPECT_FALSE(deployment.server()
                   .InstallQuery(0, QueryRegion::MakeRectangle(0.0, 4.0), 1.0)
                   .ok());
}

TEST(RectQueryTest, AnisotropicMonitoringRegion) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  // 24 miles wide, 2 miles tall: reaches 12 miles in x (beyond the
  // neighbor cells at alpha = 10) but only 1 mile in y.
  auto qid = deployment.server().InstallQuery(
      0, QueryRegion::MakeRectangle(24.0, 2.0), 1.0);
  ASSERT_TRUE(qid.ok());
  const auto* entry = deployment.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->mon_region.i_lo, 3);  // columns 3..7
  EXPECT_EQ(entry->mon_region.i_hi, 7);
  EXPECT_EQ(entry->mon_region.j_lo, 4);  // rows 4..6 only
  EXPECT_EQ(entry->mon_region.j_hi, 6);
}

TEST(RectQueryTest, ContainmentFollowsRectangleNotCircle) {
  MiniDeployment deployment({
      {Point{55, 55}},  // focal
      {Point{59, 55}},  // 4 east: inside the wide rectangle
      {Point{55, 59}},  // 4 north: outside (rect is short)
  });
  auto qid = deployment.server().InstallQuery(
      0, QueryRegion::MakeRectangle(10.0, 2.0), 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.Tick();
  auto result = deployment.server().QueryResult(*qid);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contains(1));
  EXPECT_FALSE(result->contains(2));
}

TEST(RectQueryTest, TracksOracleUnderConstantMotion) {
  std::vector<ObjectSpec> specs = {
      {Point{40, 50}, Vec2{0.02, 0.0}},   // focal
      {Point{50, 50}, Vec2{-0.02, 0.0}},  // closing in along x
      {Point{42, 56}, Vec2{0.0, -0.01}},  // approaching from the north
      {Point{46, 47}, Vec2{0.01, 0.01}},
  };
  MiniDeployment deployment(specs);
  QueryRegion region = QueryRegion::MakeRectangle(8.0, 4.0);
  auto qid = deployment.server().InstallQuery(0, region, 1.0);
  ASSERT_TRUE(qid.ok());
  sim::ExactOracle oracle(deployment.world());
  for (int step = 0; step < 12; ++step) {
    deployment.Tick();
    auto exact = oracle.Evaluate(0, region, 1.0);
    auto reported = deployment.server().QueryResult(*qid);
    ASSERT_TRUE(reported.ok());
    ASSERT_EQ(*reported, exact) << "step " << step;
  }
}

TEST(RectQueryTest, MixedShapeGroupStaysCorrect) {
  // A circle and a rectangle bound to the same focal object: grouping must
  // not let the circumscribing-radius short-circuit corrupt the rectangle's
  // exact containment.
  MiniDeployment deployment({
      {Point{55, 55}},  // focal
      {Point{55, 58}},  // 3 north: inside circle(4), outside rect 10x2
  });
  auto circle_qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  auto rect_qid = deployment.server().InstallQuery(
      0, QueryRegion::MakeRectangle(10.0, 2.0), 1.0);
  ASSERT_TRUE(circle_qid.ok());
  ASSERT_TRUE(rect_qid.ok());
  deployment.Tick();
  EXPECT_TRUE(deployment.server().QueryResult(*circle_qid)->contains(1));
  EXPECT_FALSE(deployment.server().QueryResult(*rect_qid)->contains(1));
}

TEST(RectQueryTest, SafePeriodSoundForRectangles) {
  std::vector<ObjectSpec> specs = {
      {Point{30, 50}, Vec2{0.05, 0.0}, 0.05},
      {Point{60, 50}, Vec2{-0.05, 0.0}, 0.05},
  };
  core::MobiEyesOptions with_sp;
  with_sp.enable_safe_period = true;
  MiniDeployment safe(specs, with_sp, /*alpha=*/50.0);
  MiniDeployment plain(specs, {}, /*alpha=*/50.0);
  QueryRegion region = QueryRegion::MakeRectangle(8.0, 3.0);
  auto qid_safe = safe.server().InstallQuery(0, region, 1.0);
  auto qid_plain = plain.server().InstallQuery(0, region, 1.0);
  ASSERT_TRUE(qid_safe.ok());
  ASSERT_TRUE(qid_plain.ok());
  for (int step = 0; step < 12; ++step) {
    safe.Tick();
    plain.Tick();
    ASSERT_EQ(safe.server().QueryResult(*qid_safe)->contains(1),
              plain.server().QueryResult(*qid_plain)->contains(1))
        << "step " << step;
  }
  EXPECT_GT(safe.client(1).safe_period_skips(), 0u);
}

}  // namespace
}  // namespace mobieyes
