// Tests for the safe-period optimization (§4.2): objects far from a query's
// region skip evaluations for the worst-case closing time, without ever
// missing a containment change.

#include <gtest/gtest.h>

#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

core::MobiEyesOptions WithSafePeriod(bool enabled) {
  core::MobiEyesOptions options;
  options.enable_safe_period = enabled;
  return options;
}

TEST(SafePeriodTest, FarObjectSkipsEvaluations) {
  // Object 18 miles from the focal, radius 4, both slow (0.01 mi/s): the
  // worst-case closing time is (18 - 4 - 0.2) / 0.02 = 690 s = 23 steps.
  MiniDeployment deployment(
      {
          {Point{50, 50}, Vec2{}, 0.01},
          {Point{68, 50}, Vec2{}, 0.01},
      },
      WithSafePeriod(true), /*alpha=*/30.0);
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  deployment.TickN(10);
  // One real evaluation (the first), the rest skipped.
  EXPECT_EQ(deployment.client(1).queries_evaluated(), 1u);
  EXPECT_EQ(deployment.client(1).safe_period_skips(), 9u);
}

TEST(SafePeriodTest, NearObjectEvaluatesEveryStep) {
  MiniDeployment deployment(
      {
          {Point{50, 50}, Vec2{}, 0.1},
          {Point{53, 50}, Vec2{}, 0.1},  // inside the region
      },
      WithSafePeriod(true), /*alpha=*/30.0);
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  deployment.TickN(5);
  EXPECT_EQ(deployment.client(1).queries_evaluated(), 5u);
  EXPECT_EQ(deployment.client(1).safe_period_skips(), 0u);
}

TEST(SafePeriodTest, NeverMissesContainmentChange) {
  // Adversarial case: both objects close head-on at their maximum speeds —
  // exactly the worst case the safe period assumes.
  MiniDeployment deployment(
      {
          {Point{40, 50}, Vec2{0.05, 0.0}, 0.05},   // focal at max speed
          {Point{70, 50}, Vec2{-0.05, 0.0}, 0.05},  // target at max speed
      },
      WithSafePeriod(true), /*alpha=*/50.0);
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());

  MiniDeployment baseline(
      {
          {Point{40, 50}, Vec2{0.05, 0.0}, 0.05},
          {Point{70, 50}, Vec2{-0.05, 0.0}, 0.05},
      },
      WithSafePeriod(false), /*alpha=*/50.0);
  auto baseline_qid = baseline.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(baseline_qid.ok());

  // Gap shrinks 3 miles/step from 30; it first dips under radius 4 within
  // 9 steps. Safe-period runs must agree with exhaustive evaluation at
  // every step.
  for (int step = 0; step < 12; ++step) {
    deployment.Tick();
    baseline.Tick();
    ASSERT_EQ(deployment.server().QueryResult(*qid)->contains(1),
              baseline.server().QueryResult(*baseline_qid)->contains(1))
        << "divergence at step " << step;
  }
  EXPECT_GT(deployment.client(1).safe_period_skips(), 0u);
  EXPECT_LT(deployment.client(1).queries_evaluated(),
            baseline.client(1).queries_evaluated());
}

TEST(SafePeriodTest, StationaryObjectsSkipForever) {
  MiniDeployment deployment(
      {
          {Point{20, 20}, Vec2{}, 0.0},  // zero max speed: can never move
          {Point{40, 20}, Vec2{}, 0.0},
      },
      WithSafePeriod(true), /*alpha=*/30.0);
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  deployment.TickN(20);
  // With zero closing speed the safe period is unbounded: one initial
  // evaluation, then skips.
  EXPECT_EQ(deployment.client(1).queries_evaluated(), 1u);
  EXPECT_EQ(deployment.client(1).safe_period_skips(), 19u);
}

TEST(SafePeriodTest, DisabledMeansNoSkips) {
  MiniDeployment deployment(
      {
          {Point{20, 20}, Vec2{}, 0.01},
          {Point{80, 80}, Vec2{}, 0.01},
      },
      WithSafePeriod(false), /*alpha=*/100.0);
  ASSERT_TRUE(deployment.server().InstallQuery(0, 2.0, 1.0).ok());
  deployment.TickN(10);
  EXPECT_EQ(deployment.client(1).safe_period_skips(), 0u);
  EXPECT_EQ(deployment.client(1).queries_evaluated(), 10u);
}

TEST(SafePeriodTest, VelocityBroadcastDoesNotInvalidateSafety) {
  // The focal changes direction repeatedly; the safe period is based on
  // maximum speeds, so results must still match a no-safe-period run.
  std::vector<ObjectSpec> specs = {
      {Point{30, 50}, Vec2{0.03, 0.0}, 0.05},
      {Point{60, 50}, Vec2{-0.02, 0.01}, 0.05},
  };
  MiniDeployment with_sp(specs, WithSafePeriod(true), /*alpha=*/50.0);
  MiniDeployment without_sp(specs, WithSafePeriod(false), /*alpha=*/50.0);
  auto qid_a = with_sp.server().InstallQuery(0, 5.0, 1.0);
  auto qid_b = without_sp.server().InstallQuery(0, 5.0, 1.0);
  ASSERT_TRUE(qid_a.ok());
  ASSERT_TRUE(qid_b.ok());
  for (int step = 0; step < 15; ++step) {
    if (step == 5) {
      // Sudden direction change of the focal (within max speed).
      with_sp.world().SetObjectState(0, with_sp.world().object(0).pos,
                                     Vec2{0.05, 0.0});
      without_sp.world().SetObjectState(0, without_sp.world().object(0).pos,
                                        Vec2{0.05, 0.0});
    }
    with_sp.Tick();
    without_sp.Tick();
    ASSERT_EQ(with_sp.server().QueryResult(*qid_a)->contains(1),
              without_sp.server().QueryResult(*qid_b)->contains(1))
        << "divergence at step " << step;
  }
}

}  // namespace
}  // namespace mobieyes::core
