#include <gtest/gtest.h>

#include <set>

#include "mobieyes/common/random.h"
#include "mobieyes/mobility/motion_model.h"
#include "mobieyes/mobility/world.h"

namespace mobieyes::mobility {
namespace {

using geo::CellCoord;
using geo::Circle;
using geo::Grid;
using geo::Point;
using geo::Rect;
using geo::Vec2;

Grid MakeGrid() {
  auto grid = Grid::Make(Rect{0, 0, 100, 100}, 10.0);
  EXPECT_TRUE(grid.ok());
  return *grid;
}

ObjectState MakeObject(ObjectId oid, Point pos, Vec2 vel = {},
                       double max_speed = 1.0) {
  ObjectState object;
  object.oid = oid;
  object.pos = pos;
  object.vel = vel;
  object.max_speed = max_speed;
  return object;
}

// --- Motion model -----------------------------------------------------------

TEST(MotionModelTest, RandomizeVelocityRespectsMaxSpeed) {
  Rng rng(43);
  ObjectState object = MakeObject(0, Point{50, 50}, {}, 2.5);
  for (int k = 0; k < 1000; ++k) {
    RandomVelocityModel::RandomizeVelocity(object, rng);
    EXPECT_LE(object.vel.Norm(), 2.5 + 1e-12);
  }
}

TEST(MotionModelTest, RandomizeVelocityCoversAllDirections) {
  Rng rng(47);
  ObjectState object = MakeObject(0, Point{50, 50}, {}, 1.0);
  int quadrant_hits[4] = {0, 0, 0, 0};
  for (int k = 0; k < 1000; ++k) {
    RandomVelocityModel::RandomizeVelocity(object, rng);
    int quadrant = (object.vel.x >= 0 ? 0 : 1) + (object.vel.y >= 0 ? 0 : 2);
    ++quadrant_hits[quadrant];
  }
  for (int count : quadrant_hits) EXPECT_GT(count, 150);
}

TEST(MotionModelTest, AdvanceMovesLinearly) {
  ObjectState object = MakeObject(0, Point{10, 10}, Vec2{1.0, 0.5});
  RandomVelocityModel::Advance(object, 2.0, Rect{0, 0, 100, 100});
  EXPECT_DOUBLE_EQ(object.pos.x, 12.0);
  EXPECT_DOUBLE_EQ(object.pos.y, 11.0);
}

TEST(MotionModelTest, AdvanceReflectsAtBorder) {
  ObjectState object = MakeObject(0, Point{1, 50}, Vec2{-2.0, 0.0});
  RandomVelocityModel::Advance(object, 1.0, Rect{0, 0, 100, 100});
  EXPECT_DOUBLE_EQ(object.pos.x, 1.0);  // bounced off x=0
  EXPECT_DOUBLE_EQ(object.vel.x, 2.0);  // velocity flipped
}

TEST(MotionModelTest, AdvanceReflectsAtCorner) {
  ObjectState object = MakeObject(0, Point{99, 99}, Vec2{2.0, 3.0});
  RandomVelocityModel::Advance(object, 1.0, Rect{0, 0, 100, 100});
  EXPECT_DOUBLE_EQ(object.pos.x, 99.0);
  EXPECT_DOUBLE_EQ(object.pos.y, 98.0);
  EXPECT_DOUBLE_EQ(object.vel.x, -2.0);
  EXPECT_DOUBLE_EQ(object.vel.y, -3.0);
}

TEST(MotionModelTest, ObjectStaysInsideUniverseUnderLongSimulation) {
  Rng rng(53);
  Rect universe{0, 0, 100, 100};
  ObjectState object = MakeObject(0, Point{50, 50}, {}, 3.0);
  for (int step = 0; step < 5000; ++step) {
    if (step % 10 == 0) RandomVelocityModel::RandomizeVelocity(object, rng);
    RandomVelocityModel::Advance(object, 30.0, universe);
    ASSERT_TRUE(universe.Contains(object.pos)) << "escaped at step " << step;
  }
}

// --- World ------------------------------------------------------------------

TEST(WorldTest, MakeRejectsSparseIds) {
  Grid grid = MakeGrid();
  std::vector<ObjectState> objects = {MakeObject(5, Point{1, 1})};
  EXPECT_FALSE(World::Make(grid, objects).ok());
}

TEST(WorldTest, MakeRejectsOutOfUniversePositions) {
  Grid grid = MakeGrid();
  std::vector<ObjectState> objects = {MakeObject(0, Point{500, 1})};
  EXPECT_FALSE(World::Make(grid, objects).ok());
}

TEST(WorldTest, AssignsInitialCells) {
  Grid grid = MakeGrid();
  auto world = World::Make(
      grid, {MakeObject(0, Point{5, 5}), MakeObject(1, Point{95, 95})});
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->object(0).cell, (CellCoord{0, 0}));
  EXPECT_EQ(world->object(1).cell, (CellCoord{9, 9}));
}

TEST(WorldTest, StepAdvancesTimeAndPositions) {
  Grid grid = MakeGrid();
  auto world = World::Make(
      grid, {MakeObject(0, Point{50, 50}, Vec2{0.1, 0.0})});
  ASSERT_TRUE(world.ok());
  Rng rng(59);
  world->Step(30.0, 0, rng);
  EXPECT_DOUBLE_EQ(world->now(), 30.0);
  EXPECT_EQ(world->step_count(), 1);
  EXPECT_DOUBLE_EQ(world->object(0).pos.x, 53.0);
}

TEST(WorldTest, StepUpdatesCellIndex) {
  Grid grid = MakeGrid();
  auto world = World::Make(
      grid, {MakeObject(0, Point{9.5, 5}, Vec2{0.1, 0.0})});
  ASSERT_TRUE(world.ok());
  Rng rng(61);
  world->Step(30.0, 0, rng);  // moves 3 miles: crosses into cell (1, 0)
  EXPECT_EQ(world->object(0).cell, (CellCoord{1, 0}));
  std::set<ObjectId> in_new_cell;
  world->ForEachObjectInCell(CellCoord{1, 0},
                             [&](ObjectId oid) { in_new_cell.insert(oid); });
  EXPECT_TRUE(in_new_cell.contains(0));
  std::set<ObjectId> in_old_cell;
  world->ForEachObjectInCell(CellCoord{0, 0},
                             [&](ObjectId oid) { in_old_cell.insert(oid); });
  EXPECT_FALSE(in_old_cell.contains(0));
}

TEST(WorldTest, VelocityChangesHitExactCount) {
  Grid grid = MakeGrid();
  std::vector<ObjectState> objects;
  for (int k = 0; k < 100; ++k) {
    objects.push_back(MakeObject(k, Point{50, 50}, Vec2{}, 1.0));
  }
  auto world = World::Make(grid, std::move(objects));
  ASSERT_TRUE(world.ok());
  Rng rng(67);
  world->Step(30.0, 40, rng);
  int moving = 0;
  for (size_t oid = 0; oid < world->object_count(); ++oid) {
    if (world->velocity(static_cast<ObjectId>(oid)).Norm() > 0.0) ++moving;
  }
  // All objects started with zero velocity; exactly 40 were re-drawn (a
  // freshly drawn speed is almost surely nonzero).
  EXPECT_EQ(moving, 40);
}

TEST(WorldTest, ForEachObjectInCircleMatchesBruteForce) {
  Grid grid = MakeGrid();
  Rng rng(71);
  std::vector<ObjectState> objects;
  for (int k = 0; k < 500; ++k) {
    objects.push_back(MakeObject(
        k, Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)}));
  }
  auto world = World::Make(grid, std::move(objects));
  ASSERT_TRUE(world.ok());

  for (int trial = 0; trial < 50; ++trial) {
    Circle circle{Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)},
                  rng.NextDouble(1, 25)};
    std::set<ObjectId> via_index;
    world->ForEachObjectInCircle(circle,
                                 [&](ObjectId oid) { via_index.insert(oid); });
    std::set<ObjectId> brute;
    for (size_t oid = 0; oid < world->object_count(); ++oid) {
      if (circle.Contains(world->position(static_cast<ObjectId>(oid)))) {
        brute.insert(static_cast<ObjectId>(oid));
      }
    }
    ASSERT_EQ(via_index, brute);
  }
}

TEST(WorldTest, CoverageQueryIsCellGranular) {
  Grid grid = MakeGrid();
  // Object at (12, 5): cell (1, 0) spans [10,20)x[0,10).
  auto world = World::Make(grid, {MakeObject(0, Point{12, 5})});
  ASSERT_TRUE(world.ok());

  // Circle overlapping cell (1,0) but not containing the object's point:
  // cell-granular coverage still reports the object...
  Circle touching{Point{21, 5}, 2.0};
  std::set<ObjectId> covered;
  world->ForEachObjectUnderCoverage(touching,
                                    [&](ObjectId oid) { covered.insert(oid); });
  EXPECT_TRUE(covered.contains(0));
  // ...while the exact point query does not.
  covered.clear();
  world->ForEachObjectInCircle(touching,
                               [&](ObjectId oid) { covered.insert(oid); });
  EXPECT_FALSE(covered.contains(0));

  // A circle away from the object's cell reports nothing either way.
  Circle far{Point{55, 55}, 3.0};
  covered.clear();
  world->ForEachObjectUnderCoverage(far,
                                    [&](ObjectId oid) { covered.insert(oid); });
  EXPECT_TRUE(covered.empty());
}

TEST(WorldTest, SetObjectStateReindexes) {
  Grid grid = MakeGrid();
  auto world = World::Make(grid, {MakeObject(0, Point{5, 5})});
  ASSERT_TRUE(world.ok());
  world->SetObjectState(0, Point{95, 95}, Vec2{1, 1});
  EXPECT_EQ(world->object(0).cell, (CellCoord{9, 9}));
  std::set<ObjectId> found;
  world->ForEachObjectInCell(CellCoord{9, 9},
                             [&](ObjectId oid) { found.insert(oid); });
  EXPECT_TRUE(found.contains(0));
}

TEST(WorldTest, DeterministicGivenSeed) {
  Grid grid = MakeGrid();
  auto make = [&] {
    std::vector<ObjectState> objects;
    for (int k = 0; k < 50; ++k) {
      objects.push_back(MakeObject(k, Point{50, 50}, Vec2{}, 2.0));
    }
    auto world = World::Make(grid, std::move(objects));
    EXPECT_TRUE(world.ok());
    return std::make_unique<World>(std::move(*world));
  };
  auto world_a = make();
  auto world_b = make();
  Rng rng_a(73);
  Rng rng_b(73);
  for (int step = 0; step < 20; ++step) {
    world_a->Step(30.0, 10, rng_a);
    world_b->Step(30.0, 10, rng_b);
  }
  for (size_t oid = 0; oid < 50; ++oid) {
    EXPECT_EQ(world_a->object(oid).pos, world_b->object(oid).pos);
  }
}

}  // namespace
}  // namespace mobieyes::mobility
