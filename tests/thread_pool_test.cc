#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "mobieyes/common/thread_pool.h"

namespace mobieyes {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> pending;
  for (int k = 0; k < 100; ++k) {
    pending.push_back(pool.Submit([&done] { ++done; }));
  }
  for (auto& future : pending) future.get();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, PendingTasksDrainBeforeDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int k = 0; k < 50; ++k) {
      pool.Submit([&done] { ++done; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 50);
}

class ParallelForTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr int64_t kBegin = 3;
  constexpr int64_t kEnd = 997;
  std::vector<std::atomic<int>> visits(kEnd);
  pool.ParallelFor(kBegin, kEnd, [&](int64_t index) {
    ASSERT_GE(index, kBegin);
    ASSERT_LT(index, kEnd);
    ++visits[static_cast<size_t>(index)];
  });
  for (int64_t k = 0; k < kEnd; ++k) {
    EXPECT_EQ(visits[static_cast<size_t>(k)].load(), k < kBegin ? 0 : 1)
        << "index " << k;
  }
}

TEST_P(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(GetParam());
  std::atomic<int> visits{0};
  pool.ParallelFor(5, 5, [&](int64_t) { ++visits; });
  EXPECT_EQ(visits.load(), 0);
  pool.ParallelFor(7, 6, [&](int64_t) { ++visits; });
  EXPECT_EQ(visits.load(), 0);
  pool.ParallelFor(7, 8, [&](int64_t index) {
    EXPECT_EQ(index, 7);
    ++visits;
  });
  EXPECT_EQ(visits.load(), 1);
}

TEST_P(ParallelForTest, RethrowsTaskException) {
  ThreadPool pool(GetParam());
  std::atomic<int> visits{0};
  EXPECT_THROW(pool.ParallelFor(0, 64,
                                [&](int64_t index) {
                                  ++visits;
                                  if (index == 13) {
                                    throw std::runtime_error("lane failed");
                                  }
                                }),
               std::runtime_error);
  // The throwing lane stops at the throw; the others finish before
  // ParallelFor returns, so no visit can land after this line.
  const int settled = visits.load();
  EXPECT_GE(settled, 14);  // index 13 was reached
  EXPECT_LE(settled, 64);
  EXPECT_EQ(settled, visits.load());
  // The failure must not poison the pool for later calls.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 32, [&](int64_t) { ++after; });
  EXPECT_EQ(after.load(), 32);
}

INSTANTIATE_TEST_SUITE_P(Widths, ParallelForTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "Threads" + std::to_string(info.param);
                         });

TEST(ThreadPoolTest, ParallelForMoreLanesThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.ParallelFor(0, 3, [&](int64_t index) {
    ++visits[static_cast<size_t>(index)];
  });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace mobieyes
