#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mobieyes/net/base_station.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"
#include "mobieyes/obs/metrics_registry.h"

namespace mobieyes::net {
namespace {

Message Ping() { return MakeMessage(PositionVelocityRequest{1}); }

TEST(NetworkTest, UplinkReachesServerAndCounts) {
  WirelessNetwork network;
  ObjectId seen_from = kInvalidObjectId;
  MessageType seen_type{};
  network.set_server_handler([&](ObjectId from, const Message& message) {
    seen_from = from;
    seen_type = message.type;
  });
  network.SendUplink(5, MakeMessage(CellChangeReport{5, {0, 0}, {1, 0}}));
  EXPECT_EQ(seen_from, 5);
  EXPECT_EQ(seen_type, MessageType::kCellChangeReport);
  EXPECT_EQ(network.stats().uplink_messages, 1u);
  EXPECT_EQ(network.stats().downlink_messages, 0u);
  EXPECT_GT(network.stats().uplink_bytes, 0u);
  EXPECT_EQ(network.stats().tx_bytes_per_object.at(5),
            network.stats().uplink_bytes);
}

TEST(NetworkTest, DownlinkReachesOnlyTarget) {
  WirelessNetwork network;
  int deliveries_to_1 = 0;
  int deliveries_to_2 = 0;
  network.RegisterClient(1, [&](const Message&) { ++deliveries_to_1; });
  network.RegisterClient(2, [&](const Message&) { ++deliveries_to_2; });
  network.SendDownlinkTo(1, Ping());
  EXPECT_EQ(deliveries_to_1, 1);
  EXPECT_EQ(deliveries_to_2, 0);
  EXPECT_EQ(network.stats().downlink_messages, 1u);
  EXPECT_EQ(network.stats().broadcast_messages, 0u);
}

TEST(NetworkTest, BroadcastReachesObjectsInCoverage) {
  WirelessNetwork network;
  // Objects 0,1 inside coverage; 2 outside.
  std::vector<geo::Point> positions = {{1, 1}, {2, 2}, {50, 50}};
  network.set_coverage_query(
      [&](const geo::Circle& circle, const std::function<void(ObjectId)>& fn) {
        for (size_t oid = 0; oid < positions.size(); ++oid) {
          if (circle.Contains(positions[oid])) fn(static_cast<ObjectId>(oid));
        }
      });
  std::vector<int> deliveries(3, 0);
  for (ObjectId oid = 0; oid < 3; ++oid) {
    network.RegisterClient(oid,
                           [&deliveries, oid](const Message&) {
                             ++deliveries[oid];
                           });
  }
  BaseStation station{0, geo::Circle{geo::Point{0, 0}, 5.0}};
  network.Broadcast(station, Ping());
  EXPECT_EQ(deliveries[0], 1);
  EXPECT_EQ(deliveries[1], 1);
  EXPECT_EQ(deliveries[2], 0);
  // One broadcast = one downlink message on the medium, two receptions.
  EXPECT_EQ(network.stats().downlink_messages, 1u);
  EXPECT_EQ(network.stats().broadcast_messages, 1u);
  EXPECT_EQ(network.stats().broadcast_receptions, 2u);
  EXPECT_TRUE(network.stats().rx_bytes_per_object.contains(0));
  EXPECT_TRUE(network.stats().rx_bytes_per_object.contains(1));
  EXPECT_FALSE(network.stats().rx_bytes_per_object.contains(2));
}

TEST(NetworkTest, ReentrantDeliveryIsSafe) {
  WirelessNetwork network;
  // The client replies with an uplink from inside the downlink handler.
  int server_receipts = 0;
  network.set_server_handler(
      [&](ObjectId, const Message&) { ++server_receipts; });
  network.RegisterClient(1, [&](const Message& message) {
    if (message.type == MessageType::kPositionVelocityRequest) {
      network.SendUplink(1, MakeMessage(PositionVelocityReport{}));
    }
  });
  network.SendDownlinkTo(1, Ping());
  EXPECT_EQ(server_receipts, 1);
  EXPECT_EQ(network.stats().uplink_messages, 1u);
  EXPECT_EQ(network.stats().downlink_messages, 1u);
}

TEST(NetworkTest, ResetStatsClearsEverything) {
  WirelessNetwork network;
  network.SendUplink(1, Ping());
  network.ResetStats();
  EXPECT_EQ(network.stats().total_messages(), 0u);
  EXPECT_TRUE(network.stats().tx_bytes_per_object.empty());
}

TEST(NetworkTest, PerObjectTrackingCanBeDisabled) {
  WirelessNetwork network;
  network.set_track_per_object_bytes(false);
  network.SendUplink(1, Ping());
  EXPECT_EQ(network.stats().uplink_messages, 1u);
  EXPECT_TRUE(network.stats().tx_bytes_per_object.empty());
}

TEST(NetworkTest, ObserverSeesEveryTransmission) {
  WirelessNetwork network;
  network.set_coverage_query(
      [](const geo::Circle&, const std::function<void(ObjectId)>& fn) {
        fn(7);
      });
  network.RegisterClient(7, [](const Message&) {});

  MessageHistogram histogram;
  std::vector<Direction> directions;
  std::vector<int64_t> parties;
  network.set_observer(
      [&](Direction direction, int64_t party, const Message& message) {
        directions.push_back(direction);
        parties.push_back(party);
        histogram.Record(message);
      });

  network.SendUplink(3, MakeMessage(CellChangeReport{3, {0, 0}, {1, 0}}));
  network.SendDownlinkTo(7, Ping());
  BaseStation station{42, geo::Circle{geo::Point{0, 0}, 5.0}};
  network.Broadcast(station, MakeMessage(QueryRemoveBroadcast{{1}}));

  ASSERT_EQ(directions.size(), 3u);
  EXPECT_EQ(directions[0], Direction::kUplink);
  EXPECT_EQ(parties[0], 3);
  EXPECT_EQ(directions[1], Direction::kDownlink);
  EXPECT_EQ(parties[1], 7);
  EXPECT_EQ(directions[2], Direction::kBroadcast);
  EXPECT_EQ(parties[2], 42);

  EXPECT_EQ(histogram.TotalMessages(), 3u);
  EXPECT_EQ(histogram.rows.at(MessageType::kCellChangeReport).messages, 1u);
  EXPECT_GT(histogram.rows.at(MessageType::kQueryRemoveBroadcast).bytes, 0u);
}

TEST(NetworkTest, UnregisteredRecipientDropsSilently) {
  WirelessNetwork network;
  network.SendDownlinkTo(99, Ping());  // no client registered: no crash
  EXPECT_EQ(network.stats().downlink_messages, 1u);
}

TEST(NetworkTest, PerTypeCountersSumToTotalMessages) {
  WirelessNetwork network;
  network.set_coverage_query(
      [](const geo::Circle&, const std::function<void(ObjectId)>& fn) {
        fn(7);
      });
  network.RegisterClient(7, [](const Message&) {});
  network.SendUplink(3, MakeMessage(CellChangeReport{3, {0, 0}, {1, 0}}));
  network.SendUplink(3, MakeMessage(VelocityChangeReport{}));
  network.SendDownlinkTo(7, Ping());
  BaseStation station{42, geo::Circle{geo::Point{0, 0}, 5.0}};
  network.Broadcast(station, MakeMessage(QueryRemoveBroadcast{{1}}));

  const NetworkStats& stats = network.stats();
  uint64_t by_type = std::accumulate(stats.messages_by_type.begin(),
                                     stats.messages_by_type.end(), uint64_t{0});
  EXPECT_EQ(by_type, stats.total_messages());
  EXPECT_EQ(by_type, 4u);
  EXPECT_EQ(stats.messages_by_type[static_cast<size_t>(
                MessageType::kCellChangeReport)],
            1u);
  EXPECT_EQ(stats.messages_by_type[static_cast<size_t>(
                MessageType::kVelocityChangeReport)],
            1u);
  EXPECT_EQ(stats.messages_by_type[static_cast<size_t>(
                MessageType::kQueryRemoveBroadcast)],
            1u);
}

TEST(NetworkStatsTest, MergeAccumulatesEveryField) {
  WirelessNetwork a;
  a.SendUplink(1, MakeMessage(CellChangeReport{1, {0, 0}, {1, 0}}));
  WirelessNetwork b;
  b.set_coverage_query(
      [](const geo::Circle&, const std::function<void(ObjectId)>& fn) {
        fn(1);
        fn(2);
      });
  b.RegisterClient(1, [](const Message&) {});
  b.RegisterClient(2, [](const Message&) {});
  b.SendDownlinkTo(1, Ping());
  BaseStation station{0, geo::Circle{geo::Point{0, 0}, 5.0}};
  b.Broadcast(station, Ping());

  NetworkStats merged;
  merged += a.stats();
  merged += b.stats();
  EXPECT_EQ(merged.uplink_messages, 1u);
  EXPECT_EQ(merged.downlink_messages, 2u);
  EXPECT_EQ(merged.broadcast_messages, 1u);
  EXPECT_EQ(merged.broadcast_receptions, 2u);
  EXPECT_EQ(merged.uplink_bytes, a.stats().uplink_bytes);
  EXPECT_EQ(merged.downlink_bytes, b.stats().downlink_bytes);
  EXPECT_EQ(merged.total_messages(),
            a.stats().total_messages() + b.stats().total_messages());
  uint64_t by_type =
      std::accumulate(merged.messages_by_type.begin(),
                      merged.messages_by_type.end(), uint64_t{0});
  EXPECT_EQ(by_type, merged.total_messages());
  // Per-object byte maps merge additively too: object 1 transmitted in `a`
  // and received in `b`.
  EXPECT_EQ(merged.tx_bytes_per_object.at(1), a.stats().uplink_bytes);
  EXPECT_TRUE(merged.rx_bytes_per_object.contains(1));
  EXPECT_TRUE(merged.rx_bytes_per_object.contains(2));
}

TEST(NetworkTest, AttachedRegistryCountersMatchStats) {
  obs::MetricsRegistry registry;
  WirelessNetwork network;
  network.AttachMetrics(&registry);
  network.set_coverage_query(
      [](const geo::Circle&, const std::function<void(ObjectId)>& fn) {
        fn(7);
      });
  network.RegisterClient(7, [](const Message&) {});
  network.SendUplink(3, MakeMessage(CellChangeReport{3, {0, 0}, {1, 0}}));
  network.SendDownlinkTo(7, Ping());
  BaseStation station{42, geo::Circle{geo::Point{0, 0}, 5.0}};
  network.Broadcast(station, MakeMessage(QueryRemoveBroadcast{{1}}));

  EXPECT_EQ(registry.GetCounter("net.msgs.uplink.CellChangeReport")->value(),
            1u);
  EXPECT_EQ(
      registry.GetCounter("net.msgs.downlink.PositionVelocityRequest")->value(),
      1u);
  EXPECT_EQ(
      registry.GetCounter("net.msgs.broadcast.QueryRemoveBroadcast")->value(),
      1u);
  EXPECT_EQ(registry.GetCounter("net.broadcast_receptions")->value(), 1u);
  // Every message on the medium lands in exactly one direction bucket, so
  // the registry's per-type counters sum to the stats total.
  uint64_t registry_total = 0;
  for (const char* direction : {"uplink", "downlink", "broadcast"}) {
    for (size_t t = 0; t < kNumMessageTypes; ++t) {
      std::string name = std::string("net.msgs.") + direction + "." +
                         MessageTypeName(static_cast<MessageType>(t));
      registry_total += registry.GetCounter(name)->value();
    }
  }
  EXPECT_EQ(registry_total, network.stats().total_messages());
  // The byte histogram saw one observation per message.
  EXPECT_EQ(registry.GetHistogram("net.message_bytes", {})->count(), 3u);
}

}  // namespace
}  // namespace mobieyes::net
