// RunSweep must produce the same table no matter how many workers execute
// it: every cell is an independent simulation seeded from its own params,
// and results are collected by job index. These tests pin that contract by
// comparing every counting (wall-clock-free) metric between a strictly
// serial sweep and a multi-threaded sweep of the same jobs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.h"

namespace mobieyes::bench {
namespace {

std::vector<SweepJob> SmallSweep() {
  std::vector<SweepJob> jobs;
  RunOptions options;
  options.steps = 4;
  options.warmup_steps = 1;
  options.measure_error = true;
  for (double alpha : {5.0, 10.0}) {
    for (sim::SimMode mode :
         {sim::SimMode::kMobiEyesEager, sim::SimMode::kMobiEyesLazy,
          sim::SimMode::kNaive, sim::SimMode::kCentralOptimal}) {
      SweepJob job;
      job.params.num_objects = 200;
      job.params.num_queries = 20;
      job.params.velocity_changes_per_step = 20;
      job.params.area_square_miles = 10000.0;  // 100 x 100
      job.params.alpha = alpha;
      job.params.base_station_side = 20.0;
      job.params.seed = 7 + static_cast<uint64_t>(alpha);
      job.mode = mode;
      job.options = options;
      jobs.push_back(job);
    }
  }
  return jobs;
}

// The deterministic (seed-only) portion of RunMetrics: everything except
// the stopwatch-based fields, which measure host wall time and jitter even
// between two serial runs.
void ExpectDeterministicFieldsEqual(const sim::RunMetrics& a,
                                    const sim::RunMetrics& b,
                                    const std::string& context) {
  EXPECT_EQ(a.steps, b.steps) << context;
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds) << context;
  EXPECT_EQ(a.objects, b.objects) << context;
  EXPECT_EQ(a.network.uplink_messages, b.network.uplink_messages) << context;
  EXPECT_EQ(a.network.downlink_messages, b.network.downlink_messages)
      << context;
  EXPECT_EQ(a.network.broadcast_messages, b.network.broadcast_messages)
      << context;
  EXPECT_EQ(a.network.uplink_bytes, b.network.uplink_bytes) << context;
  EXPECT_EQ(a.network.downlink_bytes, b.network.downlink_bytes) << context;
  EXPECT_EQ(a.network.broadcast_receptions, b.network.broadcast_receptions)
      << context;
  EXPECT_EQ(a.lqt_size_sum, b.lqt_size_sum) << context;
  EXPECT_EQ(a.error_sum, b.error_sum) << context;
  EXPECT_EQ(a.spurious_sum, b.spurious_sum) << context;
  EXPECT_EQ(a.agreement_sum, b.agreement_sum) << context;
  EXPECT_EQ(a.error_samples, b.error_samples) << context;
  EXPECT_EQ(a.queries_evaluated, b.queries_evaluated) << context;
  EXPECT_EQ(a.safe_period_skips, b.safe_period_skips) << context;
  EXPECT_EQ(a.network.uplink_dropped, b.network.uplink_dropped) << context;
  EXPECT_EQ(a.network.downlink_dropped, b.network.downlink_dropped) << context;
  EXPECT_EQ(a.network.broadcast_dropped, b.network.broadcast_dropped)
      << context;
  EXPECT_EQ(a.network.delayed_messages, b.network.delayed_messages) << context;
  EXPECT_EQ(a.network.duplicated_messages, b.network.duplicated_messages)
      << context;
  EXPECT_EQ(a.network.disconnect_events, b.network.disconnect_events)
      << context;
}

TEST(SweepDeterminismTest, SerialAndParallelSweepsAgree) {
  std::vector<SweepJob> jobs = SmallSweep();
  std::vector<sim::RunMetrics> serial = RunSweep(jobs, 1);
  std::vector<sim::RunMetrics> parallel = RunSweep(jobs, 4);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (size_t k = 0; k < jobs.size(); ++k) {
    ExpectDeterministicFieldsEqual(
        serial[k], parallel[k],
        "job " + std::to_string(k) + " (" + sim::SimModeName(jobs[k].mode) +
            ")");
    // The cells do real work; a zero-message result would mean a silently
    // failed setup rather than a determinism win.
    EXPECT_GT(serial[k].network.total_messages(), 0u);
  }
}

TEST(SweepDeterminismTest, RepeatedParallelSweepsAgree) {
  std::vector<SweepJob> jobs = SmallSweep();
  std::vector<sim::RunMetrics> first = RunSweep(jobs, 4);
  std::vector<sim::RunMetrics> second = RunSweep(jobs, 4);
  for (size_t k = 0; k < jobs.size(); ++k) {
    ExpectDeterministicFieldsEqual(first[k], second[k],
                                   "job " + std::to_string(k));
  }
}

// Fault injection is seeded like everything else, so faulty cells (base and
// hardened alike) must also be thread-count invariant — drops, delays and
// disconnects included.
TEST(SweepDeterminismTest, FaultySweepsAreThreadCountInvariant) {
  std::vector<SweepJob> jobs = SmallSweep();
  for (size_t k = 0; k < jobs.size(); ++k) {
    if (jobs[k].mode != sim::SimMode::kMobiEyesEager &&
        jobs[k].mode != sim::SimMode::kMobiEyesLazy) {
      continue;  // fault plans target the MobiEyes protocol paths
    }
    jobs[k].faults.plan.uplink_drop_rate = 0.15;
    jobs[k].faults.plan.downlink_drop_rate = 0.15;
    jobs[k].faults.plan.delay_rate = 0.1;
    jobs[k].faults.plan.max_delay_steps = 2;
    jobs[k].faults.plan.duplicate_rate = 0.05;
    jobs[k].faults.plan.disconnect_rate = 0.2;
    jobs[k].faults.plan.disconnect_period_steps = 4;
    jobs[k].faults.plan.disconnect_duration_steps = 1;
    jobs[k].faults.harden = k % 2 == 0;
  }
  std::vector<sim::RunMetrics> serial = RunSweep(jobs, 1);
  std::vector<sim::RunMetrics> parallel = RunSweep(jobs, 4);
  bool saw_faults = false;
  for (size_t k = 0; k < jobs.size(); ++k) {
    ExpectDeterministicFieldsEqual(
        serial[k], parallel[k],
        "faulty job " + std::to_string(k) + " (" +
            sim::SimModeName(jobs[k].mode) + ")");
    saw_faults = saw_faults || serial[k].network.total_dropped() > 0;
  }
  EXPECT_TRUE(saw_faults);
}

// The observability report is part of the determinism contract: the
// deterministic export excludes wall-clock instruments, so the JSON string
// for every cell must be byte-identical between a serial and a parallel
// sweep (this is what makes --metrics-json reproducible).
TEST(SweepDeterminismTest, MetricsReportsAreThreadCountInvariant) {
  std::vector<SweepJob> jobs = SmallSweep();
  SweepObsOptions obs;
  obs.metrics = true;
  obs.sample_stride = 1;
  std::vector<SweepCellResult> serial = RunSweepObserved(jobs, 1, obs);
  std::vector<SweepCellResult> parallel = RunSweepObserved(jobs, 4, obs);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (size_t k = 0; k < jobs.size(); ++k) {
    const std::string context = "job " + std::to_string(k) + " (" +
                                sim::SimModeName(jobs[k].mode) + ")";
    ExpectDeterministicFieldsEqual(serial[k].metrics, parallel[k].metrics,
                                   context);
    EXPECT_FALSE(serial[k].metrics_json.empty()) << context;
    EXPECT_EQ(serial[k].metrics_json, parallel[k].metrics_json) << context;
    // A real report, not a stub: it carries per-type message counters and a
    // per-step series.
    EXPECT_NE(serial[k].metrics_json.find("net.msgs."), std::string::npos)
        << context;
    EXPECT_NE(serial[k].metrics_json.find("uplink_msgs"), std::string::npos)
        << context;
  }
}

// Turning observability on must not perturb the simulation itself: the
// counting metrics are identical with and without metrics/trace enabled.
TEST(SweepDeterminismTest, ObservabilityDoesNotPerturbResults) {
  std::vector<SweepJob> jobs = SmallSweep();
  SweepObsOptions off;
  SweepObsOptions on;
  on.metrics = true;
  on.trace = true;
  on.sample_stride = 2;
  std::vector<SweepCellResult> plain = RunSweepObserved(jobs, 2, off);
  std::vector<SweepCellResult> observed = RunSweepObserved(jobs, 2, on);
  for (size_t k = 0; k < jobs.size(); ++k) {
    ExpectDeterministicFieldsEqual(plain[k].metrics, observed[k].metrics,
                                   "job " + std::to_string(k));
    EXPECT_TRUE(plain[k].metrics_json.empty());
    EXPECT_TRUE(plain[k].trace_events.empty());
    EXPECT_FALSE(observed[k].trace_events.empty());
    // Cells are tagged with their job index as the trace pid.
    EXPECT_EQ(observed[k].trace_events.front().pid, static_cast<int32_t>(k));
  }
}

// MobiEyes-only jobs (the sharded server exists only in MobiEyes modes)
// with the hardened protocol and fault pressure, so the comparison covers
// dedup rings, leases and reconciliation across shard layouts too.
std::vector<SweepJob> ShardedSweep(int num_shards,
                                   core::ShardPartition partition,
                                   int shard_threads) {
  std::vector<SweepJob> jobs;
  for (SweepJob& job : SmallSweep()) {
    if (job.mode != sim::SimMode::kMobiEyesEager &&
        job.mode != sim::SimMode::kMobiEyesLazy) {
      continue;
    }
    job.mobieyes.sharding.num_shards = num_shards;
    job.mobieyes.sharding.partition = partition;
    job.options.shard_threads = shard_threads;
    job.options.checkpoint_stride = 2;  // exercise parallel chunk encoding
    job.faults.plan.uplink_drop_rate = 0.1;
    job.faults.plan.downlink_drop_rate = 0.1;
    job.faults.harden = true;
    jobs.push_back(job);
  }
  return jobs;
}

// The tentpole contract (DESIGN.md §10): the shard count is invisible. For
// any --shards value and either partition policy, every deterministic
// metric, the full timing-free observability report, the oracle-accuracy
// sums and the final per-query result sets must be byte-identical to the
// single-shard (monolith) run.
TEST(SweepDeterminismTest, ShardCountIsObservablyInvisible) {
  SweepObsOptions obs;
  obs.metrics = true;
  obs.sample_stride = 1;
  obs.capture_results = true;
  std::vector<SweepCellResult> mono = RunSweepObserved(
      ShardedSweep(1, core::ShardPartition::kRowBand, 1), 2, obs);
  ASSERT_FALSE(mono.empty());
  struct Layout {
    int shards;
    core::ShardPartition partition;
    const char* name;
  };
  for (const Layout& layout :
       {Layout{2, core::ShardPartition::kRowBand, "rowband x2"},
        Layout{4, core::ShardPartition::kRowBand, "rowband x4"},
        Layout{8, core::ShardPartition::kRowBand, "rowband x8"},
        Layout{4, core::ShardPartition::kHash, "hash x4"}}) {
    std::vector<SweepCellResult> sharded = RunSweepObserved(
        ShardedSweep(layout.shards, layout.partition, 1), 2, obs);
    ASSERT_EQ(sharded.size(), mono.size());
    uint64_t handoffs = 0;
    for (size_t k = 0; k < mono.size(); ++k) {
      const std::string context =
          std::string(layout.name) + " job " + std::to_string(k);
      ExpectDeterministicFieldsEqual(mono[k].metrics, sharded[k].metrics,
                                     context);
      EXPECT_EQ(mono[k].metrics_json, sharded[k].metrics_json) << context;
      EXPECT_EQ(mono[k].query_results, sharded[k].query_results) << context;
      EXPECT_FALSE(sharded[k].query_results.empty()) << context;
      EXPECT_EQ(mono[k].metrics.network.inter_shard_messages, 0u) << context;
      handoffs += sharded[k].metrics.network.inter_shard_handoffs;
    }
    // The equivalence must be earned: focal objects do cross partition
    // boundaries under every multi-shard layout of this workload.
    EXPECT_GT(handoffs, 0u) << layout.name;
  }
}

// The SoA world's span index orders each cell's objects canonically
// (ascending oid), as a pure function of current positions rather than of
// insertion/migration history. This run-to-run byte comparison of the full
// observability report and the per-query result sets would catch any
// history- or address-dependent ordering leaking out of the new layout —
// note RepeatedParallelSweepsAgree above only compares counter fields.
TEST(SweepDeterminismTest, RepeatedObservedRunsAreByteIdentical) {
  SweepObsOptions obs;
  obs.metrics = true;
  obs.sample_stride = 1;
  obs.capture_results = true;
  std::vector<SweepJob> jobs =
      ShardedSweep(2, core::ShardPartition::kRowBand, 2);
  std::vector<SweepCellResult> first = RunSweepObserved(jobs, 2, obs);
  std::vector<SweepCellResult> second = RunSweepObserved(jobs, 2, obs);
  ASSERT_EQ(first.size(), second.size());
  for (size_t k = 0; k < first.size(); ++k) {
    const std::string context = "observed job " + std::to_string(k);
    EXPECT_FALSE(first[k].metrics_json.empty()) << context;
    EXPECT_EQ(first[k].metrics_json, second[k].metrics_json) << context;
    EXPECT_EQ(first[k].query_results, second[k].query_results) << context;
    EXPECT_FALSE(first[k].query_results.empty()) << context;
  }
}

// The second-generation observability exports obey the same contract
// (DESIGN.md §12): heat maps accumulate integer windows per shard and merge
// in fixed shard order, and lifecycle latencies are measured on the virtual
// step clock, so both deterministic exports must be byte-identical across
// every shard count x thread count layout.
TEST(SweepDeterminismTest, HeatMapAndLifecycleAreLayoutInvariant) {
  SweepObsOptions obs;
  obs.metrics = true;
  obs.sample_stride = 1;
  obs.heatmap = true;
  obs.lifecycle = true;
  std::vector<SweepCellResult> mono = RunSweepObserved(
      ShardedSweep(1, core::ShardPartition::kRowBand, 1), 1, obs);
  ASSERT_FALSE(mono.empty());
  for (size_t k = 0; k < mono.size(); ++k) {
    EXPECT_FALSE(mono[k].heatmap_json.empty());
    // The deterministic flavor carries the partition-invariant channels and
    // omits the layout-dependent one.
    EXPECT_NE(mono[k].heatmap_json.find("\"uplinks\""), std::string::npos);
    EXPECT_NE(mono[k].heatmap_json.find("\"residency\""), std::string::npos);
    EXPECT_EQ(mono[k].heatmap_json.find("\"handoffs\""), std::string::npos);
    // Lifecycle tables ride inside the observability report.
    EXPECT_NE(mono[k].metrics_json.find("\"lifecycle\""), std::string::npos);
    EXPECT_NE(mono[k].metrics_json.find("uplink_round_trip"),
              std::string::npos);
    EXPECT_EQ(mono[k].metrics_json.find("\"handoff\""), std::string::npos);
  }
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      if (shards == 1 && threads == 1) continue;  // the baseline itself
      std::vector<SweepCellResult> layout = RunSweepObserved(
          ShardedSweep(shards, core::ShardPartition::kRowBand, threads),
          threads, obs);
      ASSERT_EQ(layout.size(), mono.size());
      for (size_t k = 0; k < mono.size(); ++k) {
        const std::string context = "shards=" + std::to_string(shards) +
                                    " threads=" + std::to_string(threads) +
                                    " job " + std::to_string(k);
        EXPECT_EQ(mono[k].heatmap_json, layout[k].heatmap_json) << context;
        EXPECT_EQ(mono[k].metrics_json, layout[k].metrics_json) << context;
      }
    }
  }
}

// At a fixed shard count, neither the sweep's cell-level worker count nor
// the server's own shard_threads pool may leak into results: the step-phase
// scans collect into per-shard buffers that merge in shard order.
TEST(SweepDeterminismTest, ShardedSweepsAreThreadCountInvariant) {
  SweepObsOptions obs;
  obs.metrics = true;
  obs.sample_stride = 1;
  obs.capture_results = true;
  std::vector<SweepCellResult> serial = RunSweepObserved(
      ShardedSweep(4, core::ShardPartition::kRowBand, 1), 1, obs);
  std::vector<SweepCellResult> parallel = RunSweepObserved(
      ShardedSweep(4, core::ShardPartition::kRowBand, 4), 4, obs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t k = 0; k < serial.size(); ++k) {
    const std::string context = "sharded job " + std::to_string(k);
    ExpectDeterministicFieldsEqual(serial[k].metrics, parallel[k].metrics,
                                   context);
    EXPECT_EQ(serial[k].metrics_json, parallel[k].metrics_json) << context;
    EXPECT_EQ(serial[k].query_results, parallel[k].query_results) << context;
  }
}

}  // namespace
}  // namespace mobieyes::bench
