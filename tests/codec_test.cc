#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <set>

#include "mobieyes/common/random.h"
#include "mobieyes/net/codec.h"
#include "mobieyes/net/framing.h"

namespace mobieyes::net {
namespace {

FocalState SomeState() {
  FocalState state;
  state.pos = geo::Point{12.5, -3.75};
  state.vel = geo::Vec2{0.025, -0.0125};
  state.tm = 1234.5;
  return state;
}

QueryInfo SomeInfo(QueryId qid, const FocalState& focal = SomeState()) {
  QueryInfo info;
  info.qid = qid;
  info.focal_oid = 42;
  info.focal = focal;
  info.region = geo::QueryRegion::MakeCircle(5.25);
  info.filter_threshold = 0.75;
  info.mon_region = geo::CellRange{3, 7, 2, 6};
  info.focal_max_speed = 0.0694;
  return info;
}

void ExpectStateEq(const FocalState& a, const FocalState& b) {
  EXPECT_EQ(a.pos, b.pos);
  EXPECT_EQ(a.vel, b.vel);
  EXPECT_DOUBLE_EQ(a.tm, b.tm);
}

void ExpectInfoEq(const QueryInfo& a, const QueryInfo& b) {
  EXPECT_EQ(a.qid, b.qid);
  EXPECT_EQ(a.focal_oid, b.focal_oid);
  ExpectStateEq(a.focal, b.focal);
  EXPECT_EQ(a.region, b.region);
  EXPECT_DOUBLE_EQ(a.filter_threshold, b.filter_threshold);
  EXPECT_EQ(a.mon_region, b.mon_region);
  EXPECT_DOUBLE_EQ(a.focal_max_speed, b.focal_max_speed);
}

// Round-trips a message and returns the decoded payload.
template <typename T>
T RoundTrip(const T& payload) {
  Message message = MakeMessage(payload);
  std::vector<uint8_t> wire = MessageCodec::Encode(message);
  // The documented size model must equal the real encoding, byte for byte.
  EXPECT_EQ(wire.size(), WireSizeBytes(message))
      << MessageTypeName(message.type);
  auto decoded = MessageCodec::Decode(wire);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, message.type);
  return std::get<T>(decoded->payload);
}

TEST(CodecTest, QueryInstallRequestRoundTrip) {
  QueryInstallRequest p{17, geo::QueryRegion::MakeCircle(4.5), 0.75};
  QueryInstallRequest q = RoundTrip(p);
  EXPECT_EQ(q.oid, 17);
  EXPECT_EQ(q.region, geo::QueryRegion::MakeCircle(4.5));
  EXPECT_DOUBLE_EQ(q.filter_threshold, 0.75);
}

TEST(CodecTest, RectangularRegionRoundTrip) {
  QueryInstallRequest p{18, geo::QueryRegion::MakeRectangle(6.0, 3.0), 0.5};
  QueryInstallRequest q = RoundTrip(p);
  EXPECT_EQ(q.region.shape, geo::QueryRegion::Shape::kRectangle);
  EXPECT_DOUBLE_EQ(q.region.half_w, 3.0);
  EXPECT_DOUBLE_EQ(q.region.half_h, 1.5);

  QueryInfo info = SomeInfo(3);
  info.region = geo::QueryRegion::MakeRectangle(2.0, 8.0);
  QueryInstallBroadcast broadcast;
  broadcast.queries.push_back(info);
  QueryInstallBroadcast round = RoundTrip(broadcast);
  ASSERT_EQ(round.queries.size(), 1u);
  EXPECT_EQ(round.queries[0].region, info.region);
}

TEST(CodecTest, PositionReportRoundTrip) {
  PositionReport p{9, geo::Point{1.5, 2.5}};
  PositionReport q = RoundTrip(p);
  EXPECT_EQ(q.oid, 9);
  EXPECT_EQ(q.pos, (geo::Point{1.5, 2.5}));
}

TEST(CodecTest, PositionVelocityReportRoundTrip) {
  PositionVelocityReport p{3, SomeState(), 0.07};
  PositionVelocityReport q = RoundTrip(p);
  EXPECT_EQ(q.oid, 3);
  ExpectStateEq(q.state, SomeState());
  EXPECT_DOUBLE_EQ(q.max_speed, 0.07);
}

TEST(CodecTest, VelocityChangeReportRoundTrip) {
  VelocityChangeReport p{5, SomeState()};
  VelocityChangeReport q = RoundTrip(p);
  EXPECT_EQ(q.oid, 5);
  ExpectStateEq(q.state, SomeState());
}

TEST(CodecTest, CellChangeReportRoundTrip) {
  CellChangeReport p{8, geo::CellCoord{1, 2}, geo::CellCoord{3, 4}};
  CellChangeReport q = RoundTrip(p);
  EXPECT_EQ(q.oid, 8);
  EXPECT_EQ(q.prev_cell, (geo::CellCoord{1, 2}));
  EXPECT_EQ(q.new_cell, (geo::CellCoord{3, 4}));
}

TEST(CodecTest, ResultBitmapReportRoundTrip) {
  ResultBitmapReport p;
  p.oid = 11;
  for (QueryId qid = 100; qid < 110; ++qid) p.qids.push_back(qid);
  p.bitmap = 0b1010110011;
  ResultBitmapReport q = RoundTrip(p);
  EXPECT_EQ(q.oid, 11);
  EXPECT_EQ(q.qids, p.qids);
  EXPECT_EQ(q.bitmap, p.bitmap);
}

TEST(CodecTest, ResultBitmapReportEmptyAndFull) {
  ResultBitmapReport empty;
  empty.oid = 1;
  EXPECT_TRUE(RoundTrip(empty).qids.empty());

  ResultBitmapReport full;
  full.oid = 2;
  for (QueryId qid = 0; qid < 64; ++qid) full.qids.push_back(qid);
  full.bitmap = ~uint64_t{0};
  ResultBitmapReport q = RoundTrip(full);
  EXPECT_EQ(q.qids.size(), 64u);
  EXPECT_EQ(q.bitmap, ~uint64_t{0});
}

TEST(CodecTest, FocalNotificationRoundTrip) {
  FocalNotification p{6, kInvalidQueryId};
  FocalNotification q = RoundTrip(p);
  EXPECT_EQ(q.oid, 6);
  EXPECT_EQ(q.qid, kInvalidQueryId);
}

TEST(CodecTest, PositionVelocityRequestRoundTrip) {
  EXPECT_EQ(RoundTrip(PositionVelocityRequest{21}).oid, 21);
}

TEST(CodecTest, QueryInstallBroadcastRoundTrip) {
  QueryInstallBroadcast p;
  p.queries.push_back(SomeInfo(1));
  p.queries.push_back(SomeInfo(2));
  QueryInstallBroadcast q = RoundTrip(p);
  ASSERT_EQ(q.queries.size(), 2u);
  ExpectInfoEq(q.queries[0], p.queries[0]);
  ExpectInfoEq(q.queries[1], p.queries[1]);
}

TEST(CodecTest, EagerVelocityChangeBroadcastRoundTrip) {
  VelocityChangeBroadcast p;
  p.focal_oid = 42;
  p.state = SomeState();
  VelocityChangeBroadcast q = RoundTrip(p);
  EXPECT_EQ(q.focal_oid, 42);
  EXPECT_FALSE(q.carries_query_info);
  EXPECT_TRUE(q.queries.empty());
}

TEST(CodecTest, LazyVelocityChangeBroadcastSharesKinematics) {
  VelocityChangeBroadcast p;
  p.focal_oid = 42;
  p.state = SomeState();
  p.carries_query_info = true;
  // In the protocol the carried queries' focal state always equals the
  // broadcast state (BuildQueryInfo reads the just-updated FOT), which is
  // what lets the encoding carry the kinematics once.
  p.queries.push_back(SomeInfo(7, p.state));
  p.queries.push_back(SomeInfo(8, p.state));
  VelocityChangeBroadcast q = RoundTrip(p);
  ASSERT_TRUE(q.carries_query_info);
  ASSERT_EQ(q.queries.size(), 2u);
  ExpectInfoEq(q.queries[0], p.queries[0]);
  ExpectInfoEq(q.queries[1], p.queries[1]);
}

TEST(CodecTest, QueryUpdateBroadcastRoundTrip) {
  QueryUpdateBroadcast p;
  p.queries.push_back(SomeInfo(5));
  QueryUpdateBroadcast q = RoundTrip(p);
  ASSERT_EQ(q.queries.size(), 1u);
  ExpectInfoEq(q.queries[0], p.queries[0]);
}

TEST(CodecTest, QueryRemoveBroadcastRoundTrip) {
  QueryRemoveBroadcast p;
  p.qids = {4, 5, 6};
  EXPECT_EQ(RoundTrip(p).qids, p.qids);
}

TEST(CodecTest, NewQueriesNotificationRoundTrip) {
  NewQueriesNotification p;
  p.oid = 77;
  p.queries.push_back(SomeInfo(9));
  NewQueriesNotification q = RoundTrip(p);
  EXPECT_EQ(q.oid, 77);
  ASSERT_EQ(q.queries.size(), 1u);
  ExpectInfoEq(q.queries[0], p.queries[0]);
}

// --- Corruption handling -----------------------------------------------------

TEST(CodecTest, DecodeRejectsShortBuffer) {
  std::vector<uint8_t> tiny(8, 0);
  EXPECT_FALSE(MessageCodec::Decode(tiny).ok());
}

TEST(CodecTest, DecodeRejectsBadMagic) {
  std::vector<uint8_t> wire =
      MessageCodec::Encode(MakeMessage(PositionVelocityRequest{1}));
  wire[0] ^= 0xFF;
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

TEST(CodecTest, DecodeRejectsUnknownType) {
  std::vector<uint8_t> wire =
      MessageCodec::Encode(MakeMessage(PositionVelocityRequest{1}));
  wire[4] = 0xEE;  // type byte
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

TEST(CodecTest, DecodeRejectsTruncatedBody) {
  std::vector<uint8_t> wire =
      MessageCodec::Encode(MakeMessage(VelocityChangeReport{1, SomeState()}));
  wire.pop_back();
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

TEST(CodecTest, DecodeRejectsTrailingBytes) {
  std::vector<uint8_t> wire =
      MessageCodec::Encode(MakeMessage(PositionVelocityRequest{1}));
  wire.push_back(0);
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

// Fuzz: random single-byte corruptions of valid messages must never crash
// or mis-size the decoder — it either rejects the buffer or produces some
// well-formed message.
TEST(CodecTest, DecodeSurvivesRandomCorruption) {
  Rng rng(601);
  std::vector<Message> corpus;
  corpus.push_back(MakeMessage(PositionReport{1, geo::Point{2, 3}}));
  corpus.push_back(MakeMessage(VelocityChangeReport{4, SomeState()}));
  QueryInstallBroadcast broadcast;
  broadcast.queries.push_back(SomeInfo(1));
  broadcast.queries.push_back(SomeInfo(2));
  corpus.push_back(MakeMessage(broadcast));
  ResultBitmapReport report;
  report.oid = 9;
  report.qids = {10, 11, 12};
  report.bitmap = 5;
  corpus.push_back(MakeMessage(report));

  for (const Message& message : corpus) {
    std::vector<uint8_t> wire = MessageCodec::Encode(message);
    for (int trial = 0; trial < 500; ++trial) {
      std::vector<uint8_t> mutated = wire;
      size_t pos = rng.NextUint64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextUint64(255));
      auto decoded = MessageCodec::Decode(mutated);  // must not crash
      (void)decoded;
    }
    // Random truncations as well.
    for (size_t len = 0; len < wire.size(); ++len) {
      std::vector<uint8_t> truncated(wire.begin(), wire.begin() + len);
      EXPECT_FALSE(MessageCodec::Decode(truncated).ok());
    }
  }
}

TEST(CodecTest, DecodeRejectsRandomGarbage) {
  Rng rng(602);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng.NextUint64(128));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextUint64(256));
    }
    auto decoded = MessageCodec::Decode(garbage);
    // A random buffer essentially never carries the magic number.
    EXPECT_FALSE(decoded.ok());
  }
}

TEST(CodecTest, DecodeRejectsCountBodyMismatch) {
  QueryRemoveBroadcast p;
  p.qids = {1, 2, 3};
  std::vector<uint8_t> wire = MessageCodec::Encode(MakeMessage(p));
  wire[6] = 5;  // count field low byte: claims 5 ids, body has 3
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

TEST(CodecTest, LqtReconcileRequestRoundTripsColdStartFlag) {
  LqtReconcileRequest p;
  p.oid = 13;
  p.cell = geo::CellCoord{4, 6};
  p.known_qids = {2, 5, 9};
  p.target_qids = {5};
  for (bool cold : {false, true}) {
    p.cold_start = cold;
    Message message = MakeMessage(p);
    std::vector<uint8_t> wire = MessageCodec::Encode(message);
    // The flag rides in the header flags byte: no body-size change.
    EXPECT_EQ(wire.size(), WireSizeBytes(message));
    auto decoded = MessageCodec::Decode(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const auto& q = std::get<LqtReconcileRequest>(decoded->payload);
    EXPECT_EQ(q.cold_start, cold);
    EXPECT_EQ(q.known_qids, p.known_qids);
    EXPECT_EQ(q.target_qids, p.target_qids);
  }
}

TEST(CodecTest, DecodeRejectsBadRegionShapeTag) {
  std::vector<uint8_t> wire = MessageCodec::Encode(
      MakeMessage(QueryInstallRequest{3, geo::QueryRegion::MakeCircle(2.0),
                                      0.5}));
  // Body layout: i64 oid, then the region starting with its shape tag.
  wire[16 + 8] = 7;  // neither kCircle (0) nor kRectangle (1)
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

TEST(CodecTest, DecodeRejectsOversizedBitmapCount) {
  ResultBitmapReport p;
  p.oid = 4;
  p.qids = {1, 2, 3};
  p.bitmap = 0b101;
  std::vector<uint8_t> wire = MessageCodec::Encode(MakeMessage(p));
  wire[6] = 200;  // bitmap reports carry at most 64 qids
  EXPECT_FALSE(MessageCodec::Decode(wire).ok());
}

// One representative of every message type: the decoder must reject every
// truncation of every type (no assert, no crash) and survive arbitrary
// single-byte mutations.
std::vector<Message> FullCorpus() {
  std::vector<Message> corpus;
  corpus.push_back(MakeMessage(
      QueryInstallRequest{1, geo::QueryRegion::MakeCircle(3.0), 0.5}));
  corpus.push_back(MakeMessage(PositionReport{2, geo::Point{1, 2}}));
  corpus.push_back(MakeMessage(PositionVelocityReport{3, SomeState(), 0.1}));
  corpus.push_back(MakeMessage(VelocityChangeReport{4, SomeState()}));
  corpus.push_back(MakeMessage(
      CellChangeReport{5, geo::CellCoord{0, 1}, geo::CellCoord{1, 1}}));
  ResultBitmapReport bitmap;
  bitmap.oid = 6;
  bitmap.qids = {7, 8};
  bitmap.bitmap = 0b10;
  corpus.push_back(MakeMessage(bitmap));
  corpus.push_back(MakeMessage(FocalNotification{7, 1}));
  corpus.push_back(MakeMessage(PositionVelocityRequest{8}));
  QueryInstallBroadcast install;
  install.queries.push_back(SomeInfo(1));
  corpus.push_back(MakeMessage(install));
  VelocityChangeBroadcast velocity;
  velocity.focal_oid = 9;
  velocity.state = SomeState();
  velocity.carries_query_info = true;
  velocity.queries.push_back(SomeInfo(2, velocity.state));
  corpus.push_back(MakeMessage(velocity));
  QueryUpdateBroadcast update;
  update.queries.push_back(SomeInfo(3));
  corpus.push_back(MakeMessage(update));
  QueryRemoveBroadcast remove;
  remove.qids = {4, 5};
  corpus.push_back(MakeMessage(remove));
  NewQueriesNotification notification;
  notification.oid = 10;
  notification.queries.push_back(SomeInfo(6));
  corpus.push_back(MakeMessage(notification));
  corpus.push_back(MakeMessage(UplinkAck{11, 42}));
  LqtReconcileRequest reconcile;
  reconcile.oid = 12;
  reconcile.cell = geo::CellCoord{2, 3};
  reconcile.known_qids = {1, 2};
  reconcile.target_qids = {2};
  reconcile.cold_start = true;
  corpus.push_back(MakeMessage(reconcile));
  ShardHandoff handoff;
  handoff.from_shard = 0;
  handoff.to_shard = 3;
  handoff.oid = 13;
  handoff.state = SomeState();
  handoff.max_speed = 0.2;
  handoff.cell = geo::CellCoord{4, 5};
  ShardQueryState qstate;
  qstate.qid = 14;
  qstate.focal_oid = 13;
  qstate.region = geo::QueryRegion::MakeCircle(2.0);
  qstate.filter_threshold = 0.75;
  qstate.curr_cell = geo::CellCoord{4, 5};
  qstate.mon_region = geo::CellRange{3, 5, 4, 6};
  qstate.expires_at = 120.0;
  qstate.lease_renew_at = 60.0;
  qstate.result = {20, 21};
  handoff.queries.push_back(qstate);
  corpus.push_back(MakeMessage(handoff));
  return corpus;
}

TEST(CodecTest, EveryMessageTypeRejectsTruncationAndSurvivesMutation) {
  std::vector<Message> corpus = FullCorpus();
  ASSERT_EQ(corpus.size(), kNumMessageTypes);
  std::set<MessageType> seen;
  Rng rng(603);
  for (const Message& message : corpus) {
    seen.insert(message.type);
    std::vector<uint8_t> wire = MessageCodec::Encode(message);
    for (size_t len = 0; len < wire.size(); ++len) {
      std::vector<uint8_t> truncated(wire.begin(), wire.begin() + len);
      EXPECT_FALSE(MessageCodec::Decode(truncated).ok())
          << MessageTypeName(message.type) << " accepted a truncation to "
          << len << " bytes";
    }
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint8_t> mutated = wire;
      size_t pos = rng.NextUint64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextUint64(255));
      auto decoded = MessageCodec::Decode(mutated);  // must not crash
      (void)decoded;
    }
  }
  EXPECT_EQ(seen.size(), kNumMessageTypes);
}

// ---------------------------------------------------------------------------
// Backplane frame decoding (DESIGN.md §13): hostile byte streams against the
// incremental FrameDecoder. Every case is a raw stream plus the frames and
// stats it must produce, and every stream is decoded twice more — fed one
// byte at a time and in 3-byte chunks — to prove the split points of a TCP
// read never change the result.

std::vector<uint8_t> EncodeTestFrame(FrameKind kind, uint8_t shard,
                                     int64_t step,
                                     const std::vector<uint8_t>& payload) {
  Frame frame;
  frame.kind = kind;
  frame.shard = shard;
  frame.step = step;
  frame.payload = payload;
  std::vector<uint8_t> out;
  EncodeFrame(frame, &out);
  return out;
}

// A 24-byte v2 header claiming `payload_len` bytes of payload (none
// appended), with arbitrary version/kind/checksum bytes — for bad-version,
// oversized-length, bad-kind and checksum-mismatch cases.
std::vector<uint8_t> RawHeader(uint8_t kind, uint32_t payload_len,
                               uint8_t version = kFrameVersion,
                               uint32_t payload_crc = 0) {
  std::vector<uint8_t> out;
  for (int k = 0; k < 4; ++k) {
    out.push_back(static_cast<uint8_t>(kFrameMagic >> (8 * k)));
  }
  out.push_back(version);
  out.push_back(kind);
  out.push_back(0);  // shard
  out.push_back(0);  // flags
  for (int k = 0; k < 8; ++k) out.push_back(0);  // step
  for (int k = 0; k < 4; ++k) {
    out.push_back(static_cast<uint8_t>(payload_len >> (8 * k)));
  }
  for (int k = 0; k < 4; ++k) {
    out.push_back(static_cast<uint8_t>(payload_crc >> (8 * k)));
  }
  return out;
}

std::vector<uint8_t> Concat(std::initializer_list<std::vector<uint8_t>> parts) {
  std::vector<uint8_t> out;
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

struct HostileStreamCase {
  const char* name;
  std::vector<uint8_t> stream;
  size_t expect_frames;
  uint64_t expect_resync_min;  // at least this much garbage skipped
  uint64_t expect_oversized;
  uint64_t expect_bad_kind;
  size_t expect_pending;  // bytes still buffered after the full stream
  uint64_t expect_bad_version = 0;
  uint64_t expect_checksum_min = 0;  // at least this many payload-crc hits
};

std::vector<Frame> FeedAll(const std::vector<uint8_t>& stream,
                           size_t chunk, FrameDecoder* decoder) {
  std::vector<Frame> frames;
  for (size_t pos = 0; pos < stream.size(); pos += chunk) {
    size_t n = std::min(chunk, stream.size() - pos);
    decoder->Feed(stream.data() + pos, n, &frames);
  }
  return frames;
}

TEST(FramingTest, HostileByteStreams) {
  const std::vector<uint8_t> good =
      EncodeTestFrame(FrameKind::kStepBatch, 2, 41, {1, 2, 3, 4, 5});
  const std::vector<uint8_t> good2 =
      EncodeTestFrame(FrameKind::kHeartbeatAck, 3, 42, {});
  const std::vector<uint8_t> garbage = {0x00, 0xff, 0x4d, 0x6f,
                                        0x42, 0x00, 0x7f};
  // Truncated copy of `good`: header + 2 of 5 payload bytes.
  const std::vector<uint8_t> truncated(
      good.begin(), good.begin() + kFrameHeaderBytes + 2);
  // Copies of `good` with a corrupted payload byte / corrupted stored
  // checksum: the header parses, the payload arrives, and the FNV-1a check
  // must reject the frame (one byte consumed, resync hunts on).
  std::vector<uint8_t> bad_payload = good;
  bad_payload[kFrameHeaderBytes + 2] ^= 0x40;
  std::vector<uint8_t> bad_crc = good;
  bad_crc[kFrameHeaderBytes - 1] ^= 0x01;

  std::vector<HostileStreamCase> cases = {
      {"single frame", good, 1, 0, 0, 0, 0},
      {"two frames back to back", Concat({good, good2}), 2, 0, 0, 0, 0},
      {"garbage prefix resync", Concat({garbage, good}), 1, garbage.size(),
       0, 0, 0},
      {"garbage between frames", Concat({good, garbage, good2}), 2,
       garbage.size(), 0, 0, 0},
      {"oversized length prefix then frame",
       Concat({RawHeader(4, kMaxFramePayload + 1), good}), 1, 1, 1, 0, 0},
      {"bad kind then frame",
       Concat({RawHeader(200, 4), good}), 1, 1, 0, 1, 0},
      {"bad kind zero-length",
       Concat({RawHeader(static_cast<uint8_t>(FrameKind::kNumFrameKinds), 0),
               good2}),
       1, 1, 0, 1, 0},
      {"stale version v1 then frame",
       Concat({RawHeader(4, 4, /*version=*/1), good}), 1, 1, 0, 0, 0,
       /*bad_version=*/1},
      {"future version then frame",
       Concat({RawHeader(4, 4, /*version=*/0x7f), good}), 1, 1, 0, 0, 0,
       /*bad_version=*/1},
      {"corrupted payload byte then frame",
       Concat({bad_payload, good2}), 1, 1, 0, 0, 0, 0,
       /*checksum_min=*/1},
      {"corrupted stored checksum then frame",
       Concat({bad_crc, good2}), 1, 1, 0, 0, 0, 0, /*checksum_min=*/1},
      {"zero-length frame with bad checksum",
       Concat({RawHeader(4, 0, kFrameVersion, /*payload_crc=*/0), good}), 1,
       1, 0, 0, 0, 0, /*checksum_min=*/1},
      {"truncated frame stays pending", truncated, 0, 0, 0, 0,
       truncated.size()},
      {"frame then truncated tail", Concat({good, truncated}), 1, 0, 0, 0,
       truncated.size()},
      // Exactly one header's worth so the skip fires at the same point for
      // every chunking (the decoder hunts only once a full header could
      // be buffered).
      {"pure garbage no magic", std::vector<uint8_t>(kFrameHeaderBytes, 0xaa),
       0, kFrameHeaderBytes, 0, 0, 0},
      {"lone magic waits for header",
       {0x46, 0x42, 0x6f, 0x4d}, 0, 0, 0, 0, 4},
  };

  for (const HostileStreamCase& c : cases) {
    SCOPED_TRACE(c.name);
    for (size_t chunk : {c.stream.size(), size_t{1}, size_t{3}}) {
      if (chunk == 0) continue;
      SCOPED_TRACE("chunk=" + std::to_string(chunk));
      FrameDecoder decoder;
      std::vector<Frame> frames = FeedAll(c.stream, chunk, &decoder);
      EXPECT_EQ(frames.size(), c.expect_frames);
      EXPECT_GE(decoder.stats().resync_bytes, c.expect_resync_min);
      EXPECT_EQ(decoder.stats().oversized, c.expect_oversized);
      EXPECT_EQ(decoder.stats().bad_kind, c.expect_bad_kind);
      EXPECT_EQ(decoder.stats().bad_version, c.expect_bad_version);
      EXPECT_GE(decoder.stats().checksum_mismatch, c.expect_checksum_min);
      EXPECT_EQ(decoder.pending_bytes(), c.expect_pending);
      EXPECT_EQ(decoder.stats().frames, c.expect_frames);
    }
  }
}

TEST(FramingTest, DecodedFramesSurviveSplitsIntact) {
  // The payload carries every byte value so a resync bug that eats payload
  // bytes (e.g. a payload containing the magic) cannot hide.
  std::vector<uint8_t> payload;
  for (int k = 0; k < 256; ++k) payload.push_back(static_cast<uint8_t>(k));
  for (int k = 0; k < 4; ++k) {
    payload.push_back(static_cast<uint8_t>(kFrameMagic >> (8 * k)));
  }
  const std::vector<uint8_t> wire =
      EncodeTestFrame(FrameKind::kStateSync, 7, 123456789, payload);
  for (size_t chunk = 1; chunk <= wire.size(); ++chunk) {
    FrameDecoder decoder;
    std::vector<Frame> frames = FeedAll(wire, chunk, &decoder);
    ASSERT_EQ(frames.size(), 1u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].kind, FrameKind::kStateSync);
    EXPECT_EQ(frames[0].shard, 7);
    EXPECT_EQ(frames[0].step, 123456789);
    EXPECT_EQ(frames[0].payload, payload);
    EXPECT_EQ(decoder.pending_bytes(), 0u);
  }
}

TEST(FramingTest, RandomCorruptionNeverCrashesOrHangs) {
  Rng rng(907);
  std::vector<uint8_t> stream;
  for (int frame = 0; frame < 8; ++frame) {
    std::vector<uint8_t> payload(rng.NextUint64(64));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextUint64(256));
    auto wire = EncodeTestFrame(
        static_cast<FrameKind>(rng.NextUint64(
            static_cast<uint64_t>(FrameKind::kNumFrameKinds))),
        static_cast<uint8_t>(frame), frame, payload);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = stream;
    for (int flips = 0; flips < 4; ++flips) {
      size_t pos = rng.NextUint64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextUint64(255));
    }
    FrameDecoder decoder;
    std::vector<Frame> frames;
    decoder.Feed(mutated.data(), mutated.size(), &frames);
    // Whatever survived, the decoder must account for every input byte.
    EXPECT_LE(decoder.pending_bytes(), mutated.size());
    for (const Frame& f : frames) {
      EXPECT_LT(static_cast<int>(f.kind),
                static_cast<int>(FrameKind::kNumFrameKinds));
      EXPECT_LE(f.payload.size(), kMaxFramePayload);
    }
  }
}

}  // namespace
}  // namespace mobieyes::net
