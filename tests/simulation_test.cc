#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "mobieyes/sim/simulation.h"

namespace mobieyes::sim {
namespace {

SimulationConfig SmallConfig(SimMode mode) {
  SimulationConfig config;
  config.mode = mode;
  config.params.num_objects = 300;
  config.params.num_queries = 30;
  config.params.velocity_changes_per_step = 30;
  config.params.area_square_miles = 10000.0;  // 100 x 100
  config.params.alpha = 10.0;
  config.params.base_station_side = 20.0;
  config.params.seed = 99;
  config.warmup_steps = 2;
  return config;
}

TEST(SimulationTest, MakeValidatesParams) {
  SimulationConfig config = SmallConfig(SimMode::kMobiEyesEager);
  config.params.alpha = -1.0;
  EXPECT_FALSE(Simulation::Make(config).ok());
}

class SimulationModeTest : public ::testing::TestWithParam<SimMode> {};

TEST_P(SimulationModeTest, RunsAndAccumulatesMetrics) {
  auto simulation = Simulation::Make(SmallConfig(GetParam()));
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(5);
  RunMetrics metrics = (*simulation)->metrics();
  EXPECT_EQ(metrics.steps, 5);
  EXPECT_DOUBLE_EQ(metrics.simulated_seconds, 150.0);
  EXPECT_EQ(metrics.objects, 300);
  EXPECT_GT(metrics.network.total_messages(), 0u);
  EXPECT_GT(metrics.MessagesPerSecond(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SimulationModeTest,
    ::testing::Values(SimMode::kMobiEyesEager, SimMode::kMobiEyesLazy,
                      SimMode::kObjectIndex, SimMode::kQueryIndex,
                      SimMode::kNaive, SimMode::kCentralOptimal),
    [](const auto& info) {
      std::string name = SimModeName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(SimulationTest, MobiEyesModesPopulateServerAndClients) {
  auto simulation = Simulation::Make(SmallConfig(SimMode::kMobiEyesEager));
  ASSERT_TRUE(simulation.ok());
  EXPECT_NE((*simulation)->server(), nullptr);
  EXPECT_NE((*simulation)->client(0), nullptr);
  EXPECT_EQ((*simulation)->object_index(), nullptr);
  EXPECT_EQ((*simulation)->installed_queries().size(), 30u);
  EXPECT_EQ((*simulation)->server()->query_count(), 30u);
}

TEST(SimulationTest, BaselineModesPopulateProcessors) {
  auto object_index =
      Simulation::Make(SmallConfig(SimMode::kObjectIndex));
  ASSERT_TRUE(object_index.ok());
  EXPECT_NE((*object_index)->object_index(), nullptr);
  EXPECT_EQ((*object_index)->server(), nullptr);

  auto query_index = Simulation::Make(SmallConfig(SimMode::kQueryIndex));
  ASSERT_TRUE(query_index.ok());
  EXPECT_NE((*query_index)->query_index(), nullptr);
}

TEST(SimulationTest, ServerLoadMeasuredPerMode) {
  for (SimMode mode : {SimMode::kMobiEyesEager, SimMode::kObjectIndex,
                       SimMode::kQueryIndex}) {
    auto simulation = Simulation::Make(SmallConfig(mode));
    ASSERT_TRUE(simulation.ok());
    (*simulation)->Run(3);
    EXPECT_GT((*simulation)->metrics().server_seconds, 0.0)
        << SimModeName(mode);
  }
}

TEST(SimulationTest, NaiveSendsOneUplinkPerMovingObjectPerStep) {
  auto simulation = Simulation::Make(SmallConfig(SimMode::kNaive));
  ASSERT_TRUE(simulation.ok());
  (*simulation)->Run(4);
  RunMetrics metrics = (*simulation)->metrics();
  // Every object has a nonzero velocity after workload generation, so each
  // sends exactly one position report per step.
  EXPECT_EQ(metrics.network.uplink_messages, 4u * 300u);
  EXPECT_EQ(metrics.network.downlink_messages, 0u);
}

TEST(SimulationTest, CentralOptimalSendsFewerUplinksThanNaive) {
  auto naive = Simulation::Make(SmallConfig(SimMode::kNaive));
  auto central = Simulation::Make(SmallConfig(SimMode::kCentralOptimal));
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(central.ok());
  (*naive)->Run(5);
  (*central)->Run(5);
  EXPECT_LT((*central)->metrics().network.uplink_messages,
            (*naive)->metrics().network.uplink_messages);
}

TEST(SimulationTest, LqtSizesOnlyTrackedForMobiEyes) {
  auto mobieyes = Simulation::Make(SmallConfig(SimMode::kMobiEyesEager));
  ASSERT_TRUE(mobieyes.ok());
  (*mobieyes)->Run(3);
  EXPECT_GT((*mobieyes)->metrics().AverageLqtSize(), 0.0);

  auto naive = Simulation::Make(SmallConfig(SimMode::kNaive));
  ASSERT_TRUE(naive.ok());
  (*naive)->Run(3);
  EXPECT_EQ((*naive)->metrics().AverageLqtSize(), 0.0);
}

TEST(SimulationTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](SimMode mode) {
    auto simulation = Simulation::Make(SmallConfig(mode));
    EXPECT_TRUE(simulation.ok());
    (*simulation)->Run(5);
    return (*simulation)->metrics();
  };
  RunMetrics a = run(SimMode::kMobiEyesEager);
  RunMetrics b = run(SimMode::kMobiEyesEager);
  EXPECT_EQ(a.network.uplink_messages, b.network.uplink_messages);
  EXPECT_EQ(a.network.downlink_messages, b.network.downlink_messages);
  EXPECT_EQ(a.lqt_size_sum, b.lqt_size_sum);
}

TEST(SimulationTest, ErrorMeasurementProducesSamples) {
  SimulationConfig config = SmallConfig(SimMode::kMobiEyesLazy);
  config.measure_error = true;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok());
  (*simulation)->Run(4);
  RunMetrics metrics = (*simulation)->metrics();
  EXPECT_EQ(metrics.error_samples, 4);
  EXPECT_GE(metrics.AverageError(), 0.0);
  EXPECT_LE(metrics.AverageError(), 1.0);
}

TEST(SimulationTest, PowerMetricRequiresByteTracking) {
  SimulationConfig config = SmallConfig(SimMode::kMobiEyesEager);
  config.track_per_object_bytes = true;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok());
  (*simulation)->Run(3);
  net::RadioEnergyModel radio;
  EXPECT_GT((*simulation)->metrics().AveragePowerMilliwatts(radio), 0.0);
}

TEST(SimulationTest, WarmupStepsExcludedFromMetrics) {
  SimulationConfig config = SmallConfig(SimMode::kNaive);
  config.warmup_steps = 5;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok());
  EXPECT_EQ((*simulation)->metrics().steps, 0);
  EXPECT_EQ((*simulation)->metrics().network.total_messages(), 0u);
  (*simulation)->Run(2);
  EXPECT_EQ((*simulation)->metrics().steps, 2);
  EXPECT_EQ((*simulation)->metrics().network.uplink_messages, 2u * 300u);
}

}  // namespace
}  // namespace mobieyes::sim
