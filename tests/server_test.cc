#include <gtest/gtest.h>

#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::CellCoord;
using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

TEST(ServerTest, InstallQueryPopulatesServerState) {
  MiniDeployment deployment({
      {Point{55, 55}},  // focal
      {Point{57, 55}},  // inside region & monitoring region
      {Point{5, 5}},    // far away
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  const auto* entry = deployment.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->focal_oid, 0);
  EXPECT_EQ(entry->region, geo::QueryRegion::MakeCircle(4.0));
  EXPECT_EQ(entry->curr_cell, (CellCoord{5, 5}));
  // Radius 4 < alpha 10: the 3x3 block around the focal cell.
  EXPECT_EQ(entry->mon_region.CellCount(), 9);

  const auto* focal = deployment.server().FindFocal(0);
  ASSERT_NE(focal, nullptr);
  EXPECT_EQ(focal->queries.size(), 1u);
  EXPECT_DOUBLE_EQ(focal->state.pos.x, 55.0);

  // RQI registered over the monitoring region.
  EXPECT_EQ(deployment.server().rqi().QueriesForCell(CellCoord{5, 5}).size(),
            1u);
  EXPECT_TRUE(
      deployment.server().rqi().QueriesForCell(CellCoord{0, 0}).empty());
}

TEST(ServerTest, InstallQuerySetsClientState) {
  MiniDeployment deployment({
      {Point{55, 55}},
      {Point{57, 55}},
      {Point{5, 5}},
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  EXPECT_TRUE(deployment.client(0).has_mq());
  // Nearby object installed the query; distant object did not; the focal
  // object never monitors its own query.
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
  EXPECT_EQ(deployment.client(2).lqt_size(), 0u);
  EXPECT_EQ(deployment.client(0).lqt_size(), 0u);
}

TEST(ServerTest, InstallQueryRejectsNonPositiveRadius) {
  MiniDeployment deployment({ObjectSpec(Point{50, 50})});
  EXPECT_FALSE(deployment.server().InstallQuery(0, 0.0, 1.0).ok());
  EXPECT_FALSE(deployment.server().InstallQuery(0, -2.0, 1.0).ok());
}

TEST(ServerTest, InstallQueryForUnknownObjectFails) {
  MiniDeployment deployment({ObjectSpec(Point{50, 50})});
  // Object 9 does not exist, so the position request goes unanswered.
  auto qid = deployment.server().InstallQuery(9, 4.0, 1.0);
  EXPECT_EQ(qid.status().code(), StatusCode::kNotFound);
}

TEST(ServerTest, SecondQuerySameFocalSkipsPositionRequest) {
  MiniDeployment deployment({{Point{50, 50}}, {Point{52, 50}}});
  ASSERT_TRUE(deployment.server().InstallQuery(0, 3.0, 1.0).ok());
  uint64_t downlinks_before = deployment.network().stats().downlink_messages;
  uint64_t uplinks_before = deployment.network().stats().uplink_messages;
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  // No PositionVelocityRequest round trip this time: only the focal
  // notification and the install broadcast go out.
  EXPECT_EQ(deployment.network().stats().uplink_messages, uplinks_before);
  EXPECT_GE(deployment.network().stats().downlink_messages,
            downlinks_before + 2);
  const auto* focal = deployment.server().FindFocal(0);
  ASSERT_NE(focal, nullptr);
  EXPECT_EQ(focal->queries.size(), 2u);
}

TEST(ServerTest, ResultMaintainedDifferentially) {
  MiniDeployment deployment({
      {Point{55, 55}},                      // focal, stationary
      {Point{57, 55}, Vec2{0.01, 0.0}},     // target drifting away
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());

  deployment.Tick();  // object 1 at 57.3: inside radius 4
  auto result = deployment.server().QueryResult(*qid);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contains(1));

  // Drift out of the region: 57 + 0.01*30*k > 59 after ~7 steps.
  deployment.TickN(10);
  result = deployment.server().QueryResult(*qid);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contains(1));
}

TEST(ServerTest, QueryResultUnknownIdIsNotFound) {
  MiniDeployment deployment({ObjectSpec(Point{50, 50})});
  EXPECT_EQ(deployment.server().QueryResult(123).status().code(),
            StatusCode::kNotFound);
}

TEST(ServerTest, RemoveQueryClearsServerAndClients) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  ASSERT_EQ(deployment.client(1).lqt_size(), 1u);

  ASSERT_TRUE(deployment.server().RemoveQuery(*qid).ok());
  EXPECT_EQ(deployment.server().FindQuery(*qid), nullptr);
  EXPECT_EQ(deployment.server().FindFocal(0), nullptr);
  EXPECT_FALSE(deployment.client(0).has_mq());
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
  EXPECT_TRUE(
      deployment.server().rqi().QueriesForCell(CellCoord{5, 5}).empty());
  EXPECT_EQ(deployment.server().RemoveQuery(*qid).code(),
            StatusCode::kNotFound);
}

TEST(ServerTest, VelocityChangeRelayedToMonitoringRegion) {
  MiniDeployment deployment({
      {Point{55, 55}, Vec2{0.0, 0.0}},  // focal
      {Point{65, 55}},                  // inside monitoring region
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());

  // Give the focal a velocity kick; after one tick it drifts 3 miles from
  // the predicted (stationary) position, beyond Δ = 0.2.
  deployment.world().SetObjectState(0, Point{55, 55}, Vec2{0.1, 0.0});
  deployment.Tick();

  // The server's FOT reflects the new vector...
  const auto* focal = deployment.server().FindFocal(0);
  ASSERT_NE(focal, nullptr);
  EXPECT_DOUBLE_EQ(focal->state.vel.x, 0.1);
  // ...and so does the monitoring object's LQT entry.
  const auto& lqt = deployment.client(1).lqt();
  ASSERT_EQ(lqt.size(), 1u);
  EXPECT_DOUBLE_EQ(lqt[0].focal.vel.x, 0.1);
}

TEST(ServerTest, FocalCellChangeMovesMonitoringRegion) {
  MiniDeployment deployment({
      {Point{58, 55}, Vec2{0.1, 0.0}},  // focal moving right, crosses x=60
      {Point{45, 55}},                  // behind: leaves the region
      {Point{75, 55}},                  // ahead: enters the region
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
  EXPECT_EQ(deployment.client(2).lqt_size(), 0u);

  deployment.Tick();  // focal reaches x=61: cell (6,5)

  const auto* entry = deployment.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->curr_cell, (CellCoord{6, 5}));
  EXPECT_EQ(entry->mon_region.i_lo, 5);
  EXPECT_EQ(entry->mon_region.i_hi, 7);
  // Object behind lost the query; the one ahead installed it.
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
  EXPECT_EQ(deployment.client(2).lqt_size(), 1u);
}

TEST(ServerTest, NonFocalCellChangeGetsNewQueriesEagerly) {
  MiniDeployment deployment({
      {Point{55, 55}},                   // focal, stationary
      {Point{72, 55}, Vec2{-0.1, 0.0}},  // approaching from outside
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);

  deployment.Tick();  // object 1 at x=69: cell (6,5), inside the region
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(ServerTest, ServerLoadTimerAccumulates) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  deployment.TickN(3);
  EXPECT_GT(deployment.server().load_seconds(), 0.0);
  deployment.server().ResetLoadTimer();
  EXPECT_EQ(deployment.server().load_seconds(), 0.0);
}

TEST(ServerTest, MultipleQueriesDistinctIds) {
  MiniDeployment deployment({{Point{50, 50}}, {Point{20, 20}}});
  auto qid_a = deployment.server().InstallQuery(0, 3.0, 1.0);
  auto qid_b = deployment.server().InstallQuery(1, 3.0, 1.0);
  auto qid_c = deployment.server().InstallQuery(0, 5.0, 0.5);
  ASSERT_TRUE(qid_a.ok());
  ASSERT_TRUE(qid_b.ok());
  ASSERT_TRUE(qid_c.ok());
  EXPECT_NE(*qid_a, *qid_b);
  EXPECT_NE(*qid_a, *qid_c);
  EXPECT_EQ(deployment.server().query_count(), 3u);
}

}  // namespace
}  // namespace mobieyes::core
