// Unit tests for the observability layer: MetricsRegistry instrument
// semantics, StepSampler striding and ring wraparound, and TraceRecorder
// output. The trace/metrics JSON is validated by parsing it back with a
// minimal recursive-descent JSON parser defined below, so a malformed
// escape or trailing comma fails the test rather than Perfetto.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/obs/heatmap.h"
#include "mobieyes/obs/lifecycle.h"
#include "mobieyes/obs/metrics_registry.h"
#include "mobieyes/obs/step_sampler.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, literals). Enough
// to round-trip everything the obs layer emits; strict about syntax.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Returns nullptr (and sets error()) on malformed input or trailing junk.
  std::unique_ptr<JsonValue> Parse() {
    auto value = std::make_unique<JsonValue>();
    if (!ParseValue(value.get())) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            pos_ += 4;  // decoded value not needed by these tests
            out->push_back('?');
            break;
          }
          default: return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    size_t consumed = 0;
    try {
      out->number = std::stod(text_.substr(pos_), &consumed);
    } catch (...) {
      return Fail("bad value");
    }
    if (consumed == 0) return Fail("bad value");
    out->kind = JsonValue::Kind::kNumber;
    pos_ += consumed;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

std::unique_ptr<JsonValue> ParseJsonOrDie(const std::string& text) {
  JsonParser parser(text);
  auto value = parser.Parse();
  EXPECT_NE(value, nullptr) << parser.error() << "\nin: " << text;
  return value;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("events");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(registry.GetCounter("events"), counter);

  Gauge* gauge = registry.GetGauge("load");
  gauge->Set(1.5);
  gauge->Set(2.5);
  EXPECT_EQ(gauge->value(), 2.5);

  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);  // handle survives Reset
  EXPECT_EQ(gauge->value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndOverflow) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (bounds are inclusive)
  histogram.Observe(7.0);    // bucket 1
  histogram.Observe(1000.0); // overflow
  ASSERT_EQ(histogram.counts().size(), 4u);
  EXPECT_EQ(histogram.counts()[0], 2u);
  EXPECT_EQ(histogram.counts()[1], 1u);
  EXPECT_EQ(histogram.counts()[2], 0u);
  EXPECT_EQ(histogram.counts()[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 1008.5);
}

TEST(MetricsRegistryTest, ExponentialBoundsGrow) {
  std::vector<double> bounds = ExponentialBounds(10.0, 4.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{10.0, 40.0, 160.0, 640.0}));
}

TEST(MetricsRegistryTest, JsonIsValidAndFiltersTimingInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("b.gauge")->Set(0.25);
  registry.GetHistogram("c.hist", {1.0, 2.0})->Observe(1.5);
  registry.GetHistogram("d.wall_micros", {10.0}, /*timing=*/true)
      ->Observe(123.0);

  auto full = ParseJsonOrDie(registry.ToJson(/*include_timing=*/true));
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->object.at("counters").object.at("a.count").number, 3.0);
  EXPECT_EQ(full->object.at("gauges").object.at("b.gauge").number, 0.25);
  EXPECT_TRUE(full->object.at("histograms").object.contains("d.wall_micros"));
  const JsonValue& hist = full->object.at("histograms").object.at("c.hist");
  EXPECT_EQ(hist.object.at("count").number, 1.0);
  EXPECT_EQ(hist.object.at("counts").array.size(), 3u);  // 2 bounds + overflow

  auto deterministic =
      ParseJsonOrDie(registry.ToJson(/*include_timing=*/false));
  ASSERT_NE(deterministic, nullptr);
  EXPECT_TRUE(deterministic->object.at("histograms").object.contains("c.hist"));
  EXPECT_FALSE(
      deterministic->object.at("histograms").object.contains("d.wall_micros"));
}

// ---------------------------------------------------------------------------
// StepSampler

TEST(StepSamplerTest, StrideSelectsEveryNthStep) {
  StepSampler sampler({{"x"}}, /*stride=*/3, /*capacity=*/16);
  std::vector<int64_t> sampled;
  for (int64_t step = 0; step < 10; ++step) {
    if (sampler.ShouldSample(step)) {
      sampler.Record(step, {static_cast<double>(step)});
      sampled.push_back(step);
    }
  }
  EXPECT_EQ(sampled, (std::vector<int64_t>{0, 3, 6, 9}));
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_recorded(), 4u);

  StepSampler off({{"x"}}, /*stride=*/0, /*capacity=*/16);
  for (int64_t step = 0; step < 10; ++step) {
    EXPECT_FALSE(off.ShouldSample(step));
  }
}

TEST(StepSamplerTest, RingKeepsMostRecentWindow) {
  StepSampler sampler({{"x"}}, /*stride=*/1, /*capacity=*/4);
  for (int64_t step = 0; step < 10; ++step) {
    sampler.Record(step, {static_cast<double>(step * step)});
  }
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_recorded(), 10u);
  std::vector<StepSampler::Row> rows = sampler.rows();
  ASSERT_EQ(rows.size(), 4u);
  // Oldest surviving row first: steps 6..9.
  for (size_t k = 0; k < rows.size(); ++k) {
    int64_t step = static_cast<int64_t>(6 + k);
    EXPECT_EQ(rows[k].step, step);
    EXPECT_EQ(rows[k].values[0], static_cast<double>(step * step));
  }
}

TEST(StepSamplerTest, JsonSeriesMatchRowsAndFilterTiming) {
  StepSampler sampler({{"det"}, {"wall_us", /*timing=*/true}}, /*stride=*/1,
                      /*capacity=*/8);
  sampler.Record(0, {1.0, 100.0});
  sampler.Record(1, {2.0, 200.0});

  auto full = ParseJsonOrDie(sampler.ToJson(/*include_timing=*/true));
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->object.at("total_recorded").number, 2.0);
  EXPECT_EQ(full->object.at("columns").array.size(), 2u);
  EXPECT_EQ(full->object.at("series").object.at("wall_us").array[1].number,
            200.0);

  auto deterministic = ParseJsonOrDie(sampler.ToJson(/*include_timing=*/false));
  ASSERT_NE(deterministic, nullptr);
  EXPECT_EQ(deterministic->object.at("columns").array.size(), 1u);
  EXPECT_FALSE(deterministic->object.at("series").object.contains("wall_us"));
  const JsonValue& det = deterministic->object.at("series").object.at("det");
  ASSERT_EQ(det.array.size(), 2u);
  EXPECT_EQ(det.array[0].number, 1.0);
  EXPECT_EQ(det.array[1].number, 2.0);

  // CSV keeps every column and emits header + one line per row.
  std::string csv = sampler.ToCsv();
  EXPECT_NE(csv.find("step,det,wall_us"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorderTest, EmitsValidChromeTraceJson) {
  TraceRecorder recorder;
  {
    TRACE_SPAN(&recorder, "outer");
    TRACE_SPAN(&recorder, "inner");
  }
  recorder.AddComplete("manual", "net", 10, 5);
  ASSERT_EQ(recorder.events().size(), 3u);

  auto trace = ParseJsonOrDie(
      TraceRecorder::ToJson(recorder.events(), {"cell zero"}));
  ASSERT_NE(trace, nullptr);
  const JsonValue& events = trace->object.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  // 3 spans + 1 process_name metadata event for pid 0.
  ASSERT_EQ(events.array.size(), 4u);
  bool saw_metadata = false;
  for (const JsonValue& event : events.array) {
    const std::string& ph = event.object.at("ph").string;
    if (ph == "M") {
      saw_metadata = true;
      EXPECT_EQ(event.object.at("name").string, "process_name");
      EXPECT_EQ(event.object.at("args").object.at("name").string, "cell zero");
      continue;
    }
    EXPECT_EQ(ph, "X");
    EXPECT_TRUE(event.object.contains("ts"));
    EXPECT_TRUE(event.object.contains("dur"));
    EXPECT_TRUE(event.object.contains("pid"));
    EXPECT_TRUE(event.object.contains("tid"));
  }
  EXPECT_TRUE(saw_metadata);
  // Metadata first, then spans in completion order: the inner span closed
  // before the outer one, so it was recorded first.
  EXPECT_EQ(events.array[1].object.at("name").string, "inner");
  EXPECT_EQ(events.array[2].object.at("name").string, "outer");
  EXPECT_LE(events.array[1].object.at("ts").number +
                events.array[1].object.at("dur").number,
            events.array[2].object.at("ts").number +
                events.array[2].object.at("dur").number + 1);
}

TEST(TraceRecorderTest, NullRecorderIsNoOpAndSetPidRestamps) {
  { TRACE_SPAN(static_cast<TraceRecorder*>(nullptr), "ignored"); }

  TraceRecorder recorder;
  recorder.AddComplete("before", "sim", 0, 1);
  recorder.SetPid(7);
  recorder.AddComplete("after", "sim", 2, 1);
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].pid, 7);  // restamped retroactively
  EXPECT_EQ(recorder.events()[1].pid, 7);

  std::vector<TraceEvent> taken = recorder.TakeEvents();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(recorder.events().empty());
}

// ---------------------------------------------------------------------------
// HeatMap

TEST(HeatMapTest, ShardMergeMatchesMonolithicCharges) {
  // The same charges, split across two shard maps vs applied to one map
  // directly, must merge to identical windows (the §12 determinism
  // contract: integer window addition commutes across partitions).
  HeatMap mono(4, 4);
  HeatMap shard0(4, 4);
  HeatMap shard1(4, 4);
  for (int k = 0; k < 10; ++k) {
    int32_t i = k % 4;
    int32_t j = (k * 3) % 4;
    mono.Add(HeatMap::kUplinks, i, j);
    (k % 2 == 0 ? shard0 : shard1).Add(HeatMap::kUplinks, i, j);
  }
  HeatMap merged(4, 4);
  merged.MergeWindowFrom(shard0);
  merged.MergeWindowFrom(shard1);
  for (int32_t j = 0; j < 4; ++j) {
    for (int32_t i = 0; i < 4; ++i) {
      EXPECT_EQ(merged.window(HeatMap::kUplinks, i, j),
                mono.window(HeatMap::kUplinks, i, j));
      // MergeWindowFrom drains the shard windows.
      EXPECT_EQ(shard0.window(HeatMap::kUplinks, i, j), 0u);
      EXPECT_EQ(shard1.window(HeatMap::kUplinks, i, j), 0u);
    }
  }
  EXPECT_EQ(merged.ChannelSum(HeatMap::kUplinks), 10u);
}

TEST(HeatMapTest, RollWindowFoldsIntoTotalsAndDecayedView) {
  HeatMap map(2, 2);
  map.Add(HeatMap::kResidency, 0, 0, 8);
  map.RollWindow(0.5);
  EXPECT_EQ(map.rolls(), 1u);
  EXPECT_EQ(map.window(HeatMap::kResidency, 0, 0), 0u);  // window cleared
  EXPECT_EQ(map.total(HeatMap::kResidency, 0, 0), 8u);
  EXPECT_EQ(map.decayed(HeatMap::kResidency, 0, 0), 8.0);

  map.Add(HeatMap::kResidency, 0, 0, 2);
  map.RollWindow(0.5);
  EXPECT_EQ(map.total(HeatMap::kResidency, 0, 0), 10u);
  EXPECT_EQ(map.decayed(HeatMap::kResidency, 0, 0), 8.0 * 0.5 + 2.0);

  map.Reset();
  EXPECT_EQ(map.rolls(), 0u);
  EXPECT_EQ(map.total(HeatMap::kResidency, 0, 0), 0u);
  EXPECT_EQ(map.decayed(HeatMap::kResidency, 0, 0), 0.0);
}

TEST(HeatMapTest, JsonExcludesLayoutDependentChannels) {
  HeatMap map(2, 3);
  map.Add(HeatMap::kUplinks, 1, 0, 4);
  map.Add(HeatMap::kHandoffs, 2, 1, 7);

  auto full = ParseJsonOrDie(map.ToJson(/*include_layout_dependent=*/true));
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->object.at("rows").number, 2.0);
  EXPECT_EQ(full->object.at("cols").number, 3.0);
  const JsonValue& channels = full->object.at("channels");
  EXPECT_TRUE(channels.object.contains("handoffs"));
  const JsonValue& uplinks = channels.object.at("uplinks");
  ASSERT_EQ(uplinks.object.at("window").array.size(), 6u);
  EXPECT_EQ(uplinks.object.at("window").array[1].number, 4.0);  // flat 0*3+1

  auto det = ParseJsonOrDie(map.ToJson(/*include_layout_dependent=*/false));
  ASSERT_NE(det, nullptr);
  EXPECT_FALSE(det->object.at("channels").object.contains("handoffs"));
  EXPECT_TRUE(det->object.at("channels").object.contains("uplinks"));
}

TEST(HeatMapTest, AsciiAndCsvRenderNonEmptyCells) {
  HeatMap map(2, 2);
  map.Add(HeatMap::kInstalls, 0, 0, 9);
  map.Add(HeatMap::kInstalls, 1, 1, 1);
  std::string ascii = map.ToAscii(HeatMap::kInstalls);
  EXPECT_EQ(ascii[0], '9');  // brightest cell
  EXPECT_NE(ascii.find('.'), std::string::npos);  // empty cells

  std::string csv = map.ToCsv();
  EXPECT_NE(csv.find("installs,0,0,0,9,0"), std::string::npos);
  EXPECT_NE(csv.find("installs,1,1,0,1,0"), std::string::npos);
  // Empty cells are omitted: header + 2 data lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

// ---------------------------------------------------------------------------
// LifecycleTracker

TEST(LifecycleTrackerTest, StampResolveRecordsStepLatency) {
  LifecycleTracker tracker;
  tracker.set_step(2);
  tracker.Stamp(LifecycleTracker::kUplinkAck, 42);
  tracker.set_step(5);
  EXPECT_TRUE(tracker.ResolveIfPending(LifecycleTracker::kUplinkAck, 42));
  EXPECT_EQ(tracker.resolved(LifecycleTracker::kUplinkAck), 1u);
  EXPECT_EQ(tracker.latency_sum(LifecycleTracker::kUplinkAck), 3u);
  EXPECT_EQ(tracker.pending(LifecycleTracker::kUplinkAck), 0u);
  // Bucket for latency 3 with bounds {0,1,2,4,...}: first bound >= 3.
  ASSERT_EQ(tracker.counts(LifecycleTracker::kUplinkAck).size(),
            tracker.bounds().size() + 1);
  uint64_t recorded = 0;
  for (uint64_t c : tracker.counts(LifecycleTracker::kUplinkAck)) {
    recorded += c;
  }
  EXPECT_EQ(recorded, 1u);
}

TEST(LifecycleTrackerTest, DuplicateResolveIsNoOp) {
  LifecycleTracker tracker;
  tracker.Stamp(LifecycleTracker::kUplinkRoundTrip, 7);
  EXPECT_TRUE(tracker.ResolveIfPending(LifecycleTracker::kUplinkRoundTrip, 7));
  // A retransmitted terminal event finds no pending stamp.
  EXPECT_FALSE(tracker.ResolveIfPending(LifecycleTracker::kUplinkRoundTrip, 7));
  EXPECT_EQ(tracker.resolved(LifecycleTracker::kUplinkRoundTrip), 1u);
}

TEST(LifecycleTrackerTest, RestampKeepsOriginalStamp) {
  LifecycleTracker tracker;
  tracker.set_step(1);
  tracker.Stamp(LifecycleTracker::kUplinkAck, 9);
  tracker.set_step(3);
  tracker.Stamp(LifecycleTracker::kUplinkAck, 9);  // retry, same round
  EXPECT_EQ(tracker.restamped(LifecycleTracker::kUplinkAck), 1u);
  tracker.set_step(4);
  EXPECT_TRUE(tracker.ResolveIfPending(LifecycleTracker::kUplinkAck, 9));
  // Latency measured from the original stamp, not the retry.
  EXPECT_EQ(tracker.latency_sum(LifecycleTracker::kUplinkAck), 3u);
}

TEST(LifecycleTrackerTest, DropCancelsWithoutRecording) {
  LifecycleTracker tracker;
  tracker.Stamp(LifecycleTracker::kInstallFirstResult, 5);
  tracker.Drop(LifecycleTracker::kInstallFirstResult, 5);
  EXPECT_EQ(tracker.cancelled(LifecycleTracker::kInstallFirstResult), 1u);
  EXPECT_FALSE(
      tracker.ResolveIfPending(LifecycleTracker::kInstallFirstResult, 5));
  EXPECT_EQ(tracker.resolved(LifecycleTracker::kInstallFirstResult), 0u);
  EXPECT_EQ(tracker.pending(LifecycleTracker::kInstallFirstResult), 0u);
  // Dropping an absent key counts nothing.
  tracker.Drop(LifecycleTracker::kInstallFirstResult, 6);
  EXPECT_EQ(tracker.cancelled(LifecycleTracker::kInstallFirstResult), 1u);
}

TEST(LifecycleTrackerTest, JsonCountsPendingAndFiltersLayoutDependent) {
  LifecycleTracker tracker;
  tracker.set_step(1);
  tracker.Stamp(LifecycleTracker::kUplinkAck, 1);  // left pending
  tracker.Stamp(LifecycleTracker::kHandoff, 2);
  tracker.ResolveIfPending(LifecycleTracker::kHandoff, 2);

  auto full = ParseJsonOrDie(tracker.ToJson(/*include_layout_dependent=*/true));
  ASSERT_NE(full, nullptr);
  const JsonValue& kinds = full->object.at("kinds");
  EXPECT_EQ(kinds.object.at("uplink_ack").object.at("pending").number, 1.0);
  EXPECT_TRUE(kinds.object.contains("handoff"));

  auto det = ParseJsonOrDie(tracker.ToJson(/*include_layout_dependent=*/false));
  ASSERT_NE(det, nullptr);
  EXPECT_FALSE(det->object.at("kinds").object.contains("handoff"));
  EXPECT_TRUE(det->object.at("kinds").object.contains("uplink_round_trip"));

  tracker.Reset();
  EXPECT_EQ(tracker.pending(LifecycleTracker::kUplinkAck), 0u);
  EXPECT_EQ(tracker.resolved(LifecycleTracker::kHandoff), 0u);
}

}  // namespace
}  // namespace mobieyes::obs
