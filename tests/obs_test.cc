// Unit tests for the observability layer: MetricsRegistry instrument
// semantics, StepSampler striding and ring wraparound, and TraceRecorder
// output. The trace/metrics JSON is validated by parsing it back with a
// minimal recursive-descent JSON parser defined below, so a malformed
// escape or trailing comma fails the test rather than Perfetto.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/obs/metrics_registry.h"
#include "mobieyes/obs/step_sampler.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, literals). Enough
// to round-trip everything the obs layer emits; strict about syntax.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Returns nullptr (and sets error()) on malformed input or trailing junk.
  std::unique_ptr<JsonValue> Parse() {
    auto value = std::make_unique<JsonValue>();
    if (!ParseValue(value.get())) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            pos_ += 4;  // decoded value not needed by these tests
            out->push_back('?');
            break;
          }
          default: return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    size_t consumed = 0;
    try {
      out->number = std::stod(text_.substr(pos_), &consumed);
    } catch (...) {
      return Fail("bad value");
    }
    if (consumed == 0) return Fail("bad value");
    out->kind = JsonValue::Kind::kNumber;
    pos_ += consumed;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

std::unique_ptr<JsonValue> ParseJsonOrDie(const std::string& text) {
  JsonParser parser(text);
  auto value = parser.Parse();
  EXPECT_NE(value, nullptr) << parser.error() << "\nin: " << text;
  return value;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("events");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(registry.GetCounter("events"), counter);

  Gauge* gauge = registry.GetGauge("load");
  gauge->Set(1.5);
  gauge->Set(2.5);
  EXPECT_EQ(gauge->value(), 2.5);

  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);  // handle survives Reset
  EXPECT_EQ(gauge->value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndOverflow) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (bounds are inclusive)
  histogram.Observe(7.0);    // bucket 1
  histogram.Observe(1000.0); // overflow
  ASSERT_EQ(histogram.counts().size(), 4u);
  EXPECT_EQ(histogram.counts()[0], 2u);
  EXPECT_EQ(histogram.counts()[1], 1u);
  EXPECT_EQ(histogram.counts()[2], 0u);
  EXPECT_EQ(histogram.counts()[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 1008.5);
}

TEST(MetricsRegistryTest, ExponentialBoundsGrow) {
  std::vector<double> bounds = ExponentialBounds(10.0, 4.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{10.0, 40.0, 160.0, 640.0}));
}

TEST(MetricsRegistryTest, JsonIsValidAndFiltersTimingInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("b.gauge")->Set(0.25);
  registry.GetHistogram("c.hist", {1.0, 2.0})->Observe(1.5);
  registry.GetHistogram("d.wall_micros", {10.0}, /*timing=*/true)
      ->Observe(123.0);

  auto full = ParseJsonOrDie(registry.ToJson(/*include_timing=*/true));
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->object.at("counters").object.at("a.count").number, 3.0);
  EXPECT_EQ(full->object.at("gauges").object.at("b.gauge").number, 0.25);
  EXPECT_TRUE(full->object.at("histograms").object.contains("d.wall_micros"));
  const JsonValue& hist = full->object.at("histograms").object.at("c.hist");
  EXPECT_EQ(hist.object.at("count").number, 1.0);
  EXPECT_EQ(hist.object.at("counts").array.size(), 3u);  // 2 bounds + overflow

  auto deterministic =
      ParseJsonOrDie(registry.ToJson(/*include_timing=*/false));
  ASSERT_NE(deterministic, nullptr);
  EXPECT_TRUE(deterministic->object.at("histograms").object.contains("c.hist"));
  EXPECT_FALSE(
      deterministic->object.at("histograms").object.contains("d.wall_micros"));
}

// ---------------------------------------------------------------------------
// StepSampler

TEST(StepSamplerTest, StrideSelectsEveryNthStep) {
  StepSampler sampler({{"x"}}, /*stride=*/3, /*capacity=*/16);
  std::vector<int64_t> sampled;
  for (int64_t step = 0; step < 10; ++step) {
    if (sampler.ShouldSample(step)) {
      sampler.Record(step, {static_cast<double>(step)});
      sampled.push_back(step);
    }
  }
  EXPECT_EQ(sampled, (std::vector<int64_t>{0, 3, 6, 9}));
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_recorded(), 4u);

  StepSampler off({{"x"}}, /*stride=*/0, /*capacity=*/16);
  for (int64_t step = 0; step < 10; ++step) {
    EXPECT_FALSE(off.ShouldSample(step));
  }
}

TEST(StepSamplerTest, RingKeepsMostRecentWindow) {
  StepSampler sampler({{"x"}}, /*stride=*/1, /*capacity=*/4);
  for (int64_t step = 0; step < 10; ++step) {
    sampler.Record(step, {static_cast<double>(step * step)});
  }
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_recorded(), 10u);
  std::vector<StepSampler::Row> rows = sampler.rows();
  ASSERT_EQ(rows.size(), 4u);
  // Oldest surviving row first: steps 6..9.
  for (size_t k = 0; k < rows.size(); ++k) {
    int64_t step = static_cast<int64_t>(6 + k);
    EXPECT_EQ(rows[k].step, step);
    EXPECT_EQ(rows[k].values[0], static_cast<double>(step * step));
  }
}

TEST(StepSamplerTest, JsonSeriesMatchRowsAndFilterTiming) {
  StepSampler sampler({{"det"}, {"wall_us", /*timing=*/true}}, /*stride=*/1,
                      /*capacity=*/8);
  sampler.Record(0, {1.0, 100.0});
  sampler.Record(1, {2.0, 200.0});

  auto full = ParseJsonOrDie(sampler.ToJson(/*include_timing=*/true));
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->object.at("total_recorded").number, 2.0);
  EXPECT_EQ(full->object.at("columns").array.size(), 2u);
  EXPECT_EQ(full->object.at("series").object.at("wall_us").array[1].number,
            200.0);

  auto deterministic = ParseJsonOrDie(sampler.ToJson(/*include_timing=*/false));
  ASSERT_NE(deterministic, nullptr);
  EXPECT_EQ(deterministic->object.at("columns").array.size(), 1u);
  EXPECT_FALSE(deterministic->object.at("series").object.contains("wall_us"));
  const JsonValue& det = deterministic->object.at("series").object.at("det");
  ASSERT_EQ(det.array.size(), 2u);
  EXPECT_EQ(det.array[0].number, 1.0);
  EXPECT_EQ(det.array[1].number, 2.0);

  // CSV keeps every column and emits header + one line per row.
  std::string csv = sampler.ToCsv();
  EXPECT_NE(csv.find("step,det,wall_us"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorderTest, EmitsValidChromeTraceJson) {
  TraceRecorder recorder;
  {
    TRACE_SPAN(&recorder, "outer");
    TRACE_SPAN(&recorder, "inner");
  }
  recorder.AddComplete("manual", "net", 10, 5);
  ASSERT_EQ(recorder.events().size(), 3u);

  auto trace = ParseJsonOrDie(
      TraceRecorder::ToJson(recorder.events(), {"cell zero"}));
  ASSERT_NE(trace, nullptr);
  const JsonValue& events = trace->object.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  // 3 spans + 1 process_name metadata event for pid 0.
  ASSERT_EQ(events.array.size(), 4u);
  bool saw_metadata = false;
  for (const JsonValue& event : events.array) {
    const std::string& ph = event.object.at("ph").string;
    if (ph == "M") {
      saw_metadata = true;
      EXPECT_EQ(event.object.at("name").string, "process_name");
      EXPECT_EQ(event.object.at("args").object.at("name").string, "cell zero");
      continue;
    }
    EXPECT_EQ(ph, "X");
    EXPECT_TRUE(event.object.contains("ts"));
    EXPECT_TRUE(event.object.contains("dur"));
    EXPECT_TRUE(event.object.contains("pid"));
    EXPECT_TRUE(event.object.contains("tid"));
  }
  EXPECT_TRUE(saw_metadata);
  // Metadata first, then spans in completion order: the inner span closed
  // before the outer one, so it was recorded first.
  EXPECT_EQ(events.array[1].object.at("name").string, "inner");
  EXPECT_EQ(events.array[2].object.at("name").string, "outer");
  EXPECT_LE(events.array[1].object.at("ts").number +
                events.array[1].object.at("dur").number,
            events.array[2].object.at("ts").number +
                events.array[2].object.at("dur").number + 1);
}

TEST(TraceRecorderTest, NullRecorderIsNoOpAndSetPidRestamps) {
  { TRACE_SPAN(static_cast<TraceRecorder*>(nullptr), "ignored"); }

  TraceRecorder recorder;
  recorder.AddComplete("before", "sim", 0, 1);
  recorder.SetPid(7);
  recorder.AddComplete("after", "sim", 2, 1);
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].pid, 7);  // restamped retroactively
  EXPECT_EQ(recorder.events()[1].pid, 7);

  std::vector<TraceEvent> taken = recorder.TakeEvents();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(recorder.events().empty());
}

}  // namespace
}  // namespace mobieyes::obs
