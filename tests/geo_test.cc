#include <gtest/gtest.h>

#include <cmath>

#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/point.h"
#include "mobieyes/geo/rect.h"

namespace mobieyes::geo {
namespace {

// --- Point / Vec2 -----------------------------------------------------------

TEST(PointTest, Arithmetic) {
  Point p{1.0, 2.0};
  Vec2 v{0.5, -1.0};
  Point q = p + v;
  EXPECT_DOUBLE_EQ(q.x, 1.5);
  EXPECT_DOUBLE_EQ(q.y, 1.0);
  Vec2 d = q - p;
  EXPECT_DOUBLE_EQ(d.x, 0.5);
  EXPECT_DOUBLE_EQ(d.y, -1.0);
}

TEST(PointTest, VectorScaling) {
  Vec2 v{3.0, 4.0};
  Vec2 w = v * 2.0;
  EXPECT_DOUBLE_EQ(w.x, 6.0);
  EXPECT_DOUBLE_EQ(w.y, 8.0);
  Vec2 u = 0.5 * v;
  EXPECT_DOUBLE_EQ(u.x, 1.5);
  EXPECT_DOUBLE_EQ(u.Norm(), 2.5);
}

TEST(PointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(Point{0, 0}, Point{3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance(Point{1, 1}, Point{1, 1}), 0.0);
}

// --- Rect -------------------------------------------------------------------

TEST(RectTest, BasicAccessors) {
  Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.hx(), 4.0);
  EXPECT_DOUBLE_EQ(r.hy(), 6.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_DOUBLE_EQ(r.Center().x, 2.5);
  EXPECT_DOUBLE_EQ(r.Center().y, 4.0);
}

TEST(RectTest, ContainsPointIsClosed) {
  Rect r{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));    // boundary included
  EXPECT_TRUE(r.Contains(Point{10, 10}));  // boundary included
  EXPECT_FALSE(r.Contains(Point{10.001, 5}));
  EXPECT_FALSE(r.Contains(Point{-0.001, 5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.Contains(Rect{1, 1, 2, 2}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect{9, 9, 2, 2}));
}

TEST(RectTest, IntersectsIsSymmetricAndClosed) {
  Rect a{0, 0, 5, 5};
  Rect b{5, 5, 5, 5};  // shares exactly one corner point
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  Rect c{5.001, 5.001, 1, 1};
  EXPECT_FALSE(a.Intersects(c));
}

TEST(RectTest, UnionCoversBoth) {
  Rect u = Rect::Union(Rect{0, 0, 1, 1}, Rect{5, 5, 1, 1});
  EXPECT_TRUE(u.Contains(Rect{0, 0, 1, 1}));
  EXPECT_TRUE(u.Contains(Rect{5, 5, 1, 1}));
  EXPECT_DOUBLE_EQ(u.Area(), 36.0);
}

TEST(RectTest, FromCornersNormalizesOrder) {
  Rect r = Rect::FromCorners(Point{5, 1}, Point{2, 7});
  EXPECT_DOUBLE_EQ(r.lx, 2.0);
  EXPECT_DOUBLE_EQ(r.ly, 1.0);
  EXPECT_DOUBLE_EQ(r.w, 3.0);
  EXPECT_DOUBLE_EQ(r.h, 6.0);
}

TEST(RectTest, IntersectionArea) {
  EXPECT_DOUBLE_EQ(IntersectionArea(Rect{0, 0, 4, 4}, Rect{2, 2, 4, 4}), 4.0);
  EXPECT_DOUBLE_EQ(IntersectionArea(Rect{0, 0, 1, 1}, Rect{2, 2, 1, 1}), 0.0);
  // Touching edges have zero-area intersection.
  EXPECT_DOUBLE_EQ(IntersectionArea(Rect{0, 0, 2, 2}, Rect{2, 0, 2, 2}), 0.0);
}

TEST(RectTest, Enlargement) {
  Rect base{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(Enlargement(base, Rect{1, 1, 1, 1}), 0.0);  // contained
  EXPECT_DOUBLE_EQ(Enlargement(base, Rect{0, 0, 4, 2}), 4.0);
}

TEST(RectTest, MinDistanceToPoint) {
  Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(MinDistance(r, Point{1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(MinDistance(r, Point{5, 1}), 3.0);   // right of
  EXPECT_DOUBLE_EQ(MinDistance(r, Point{5, 6}), 5.0);   // diagonal 3-4-5
}

// --- Circle -----------------------------------------------------------------

TEST(CircleTest, ContainsIsClosed) {
  Circle c{Point{0, 0}, 5.0};
  EXPECT_TRUE(c.Contains(Point{3, 4}));   // exactly on boundary
  EXPECT_TRUE(c.Contains(Point{0, 0}));
  EXPECT_FALSE(c.Contains(Point{3.01, 4.01}));
}

TEST(CircleTest, BoundingRectIsTight) {
  Circle c{Point{2, 3}, 1.5};
  Rect bb = c.BoundingRect();
  EXPECT_DOUBLE_EQ(bb.lx, 0.5);
  EXPECT_DOUBLE_EQ(bb.ly, 1.5);
  EXPECT_DOUBLE_EQ(bb.w, 3.0);
  EXPECT_DOUBLE_EQ(bb.h, 3.0);
}

TEST(CircleTest, IntersectsRect) {
  Circle c{Point{0, 0}, 1.0};
  EXPECT_TRUE(c.Intersects(Rect{-0.5, -0.5, 1.0, 1.0}));  // center inside
  EXPECT_TRUE(c.Intersects(Rect{0.9, -0.1, 1.0, 0.2}));   // edge overlap
  EXPECT_FALSE(c.Intersects(Rect{2, 2, 1, 1}));
  // Corner case: rect corner just outside the radius along the diagonal.
  EXPECT_FALSE(c.Intersects(Rect{0.8, 0.8, 1, 1}));
  EXPECT_TRUE(c.Intersects(Rect{0.7, 0.7, 1, 1}));
}

TEST(CircleTest, IntersectsRectContainingCircle) {
  Circle c{Point{5, 5}, 1.0};
  EXPECT_TRUE(c.Intersects(Rect{0, 0, 10, 10}));
}

}  // namespace
}  // namespace mobieyes::geo
