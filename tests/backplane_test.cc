// Shard backplane (DESIGN.md §13): framing, the socket link, the step-batch
// and state-sync codecs, and end-to-end process-transport runs against real
// mobieyes_shardd daemons. The daemon-backed tests skip (not fail) when the
// binary is not discoverable, so the suite still passes on a stripped
// install tree.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/core/options.h"
#include "mobieyes/core/server.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/core/shard_daemon.h"
#include "mobieyes/core/shard_supervisor.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/backplane.h"
#include "mobieyes/net/framing.h"
#include "mobieyes/sim/simulation.h"

namespace mobieyes {
namespace {

using core::ServerShard;
using core::ShardMap;
using core::ShardSupervisor;
using core::StepBatchBuilder;
using net::Frame;
using net::FrameDecoder;
using net::FrameKind;
using net::PeerLink;

TEST(Framing, RoundTrip) {
  Frame frame;
  frame.kind = FrameKind::kStepBatch;
  frame.shard = 3;
  frame.flags = 7;
  frame.step = 42;
  frame.payload = {1, 2, 3, 4, 5};

  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + frame.payload.size());

  FrameDecoder decoder;
  std::vector<Frame> out;
  decoder.Feed(wire.data(), wire.size(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, FrameKind::kStepBatch);
  EXPECT_EQ(out[0].shard, 3);
  EXPECT_EQ(out[0].flags, 7);
  EXPECT_EQ(out[0].step, 42);
  EXPECT_EQ(out[0].payload, frame.payload);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

// --- PeerLink over a socketpair ---------------------------------------------

Frame TestFrame(FrameKind kind, int64_t step, size_t payload_bytes) {
  Frame frame;
  frame.kind = kind;
  frame.step = step;
  frame.payload.assign(payload_bytes,
                       static_cast<uint8_t>(step & 0xff));
  return frame;
}

TEST(PeerLinkTest, SendReceiveAndEof) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  PeerLink a;
  PeerLink b;
  a.Adopt(sv[0]);
  b.Adopt(sv[1]);

  for (int64_t step = 0; step < 3; ++step) {
    ASSERT_TRUE(a.Send(TestFrame(FrameKind::kStepBatch, step, 100),
                       /*max_queue_bytes=*/1u << 20));
  }
  std::vector<Frame> received;
  // Non-blocking on both ends: flush and drain until all three arrive.
  for (int spin = 0; spin < 1000 && received.size() < 3; ++spin) {
    ASSERT_TRUE(a.Flush());
    ASSERT_TRUE(b.Receive(&received));
  }
  ASSERT_EQ(received.size(), 3u);
  for (int64_t step = 0; step < 3; ++step) {
    EXPECT_EQ(received[static_cast<size_t>(step)].step, step);
    EXPECT_EQ(received[static_cast<size_t>(step)].payload.size(), 100u);
  }
  EXPECT_EQ(a.stats().frames_sent, 3u);
  EXPECT_EQ(b.stats().frames_received, 3u);
  EXPECT_EQ(b.stats().bytes_received, a.stats().bytes_sent);

  // EOF: closing one end must surface as Receive() == false, link closed.
  a.Close();
  bool alive = true;
  for (int spin = 0; spin < 1000 && alive; ++spin) {
    alive = b.Receive(&received);
  }
  EXPECT_FALSE(alive);
  EXPECT_FALSE(b.connected());
}

TEST(PeerLinkTest, BoundedQueueDropsWhenPeerStalls) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  PeerLink a;
  a.Adopt(sv[0]);  // sv[1] never read: the kernel buffer eventually fills

  const size_t kQueueCap = 64u << 10;
  bool dropped = false;
  for (int k = 0; k < 256 && !dropped; ++k) {
    dropped = !a.Send(TestFrame(FrameKind::kStateSync, k, 256u << 10),
                      kQueueCap);
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(a.stats().send_drops, 0u);
  // The queue never exceeds the cap: that is the non-blocking guarantee.
  EXPECT_LE(a.queued_bytes(),
            kQueueCap + net::kFrameHeaderBytes + (256u << 10));
  a.Close();
  close(sv[1]);
}

// --- Step-batch and state-sync codecs ---------------------------------------

struct ShardPair {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  core::ShardingOptions options;
  std::unique_ptr<ShardMap> map;
  std::unique_ptr<ServerShard> authority;
  std::unique_ptr<ServerShard> replica;

  explicit ShardPair(int shards = 2) {
    options.num_shards = shards;
    map = std::make_unique<ShardMap>(grid, options);
    authority = std::make_unique<ServerShard>(0, grid, *map);
    replica = std::make_unique<ServerShard>(0, grid, *map);
  }
};

TEST(StepBatchTest, RqiOpsReplicate) {
  ShardPair pair;
  StepBatchBuilder builder;
  EXPECT_TRUE(builder.empty());

  geo::CellRange r1{1, 3, 0, 2};
  geo::CellRange r2{4, 6, 4, 6};
  pair.authority->RqiAdd(7, r1);
  pair.authority->RqiAdd(8, r2);
  builder.RqiOp(true, 7, r1);
  builder.RqiOp(true, 8, r2);
  EXPECT_EQ(builder.op_count(), 2u);

  std::vector<uint8_t> payload = builder.Finish();
  EXPECT_TRUE(builder.empty());
  uint32_t applied = 0;
  ASSERT_TRUE(core::ApplyStepBatch(payload.data(), payload.size(),
                                   pair.replica.get(), &applied)
                  .ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(pair.replica->StateDigest(), pair.authority->StateDigest());

  // Removal must re-converge the digest too.
  pair.authority->RqiRemove(7, r1);
  builder.RqiOp(false, 7, r1);
  payload = builder.Finish();
  ASSERT_TRUE(core::ApplyStepBatch(payload.data(), payload.size(),
                                   pair.replica.get(), nullptr)
                  .ok());
  EXPECT_EQ(pair.replica->StateDigest(), pair.authority->StateDigest());
}

TEST(StepBatchTest, MalformedBatchFailsCleanly) {
  ShardPair pair;
  // A count prefix promising more ops than the bytes deliver.
  std::vector<uint8_t> bogus = {0xff, 0xff, 0x00, 0x00, 0x03};
  uint32_t applied = 0;
  EXPECT_FALSE(core::ApplyStepBatch(bogus.data(), bogus.size(),
                                    pair.replica.get(), &applied)
                   .ok());
  // Truncations of a valid batch must also fail, never crash.
  StepBatchBuilder builder;
  builder.RqiOp(true, 11, geo::CellRange{0, 2, 0, 2});
  builder.Extract(42);
  std::vector<uint8_t> payload = builder.Finish();
  for (size_t len = 0; len < payload.size(); ++len) {
    core::ApplyStepBatch(payload.data(), len, pair.replica.get(), nullptr)
        .ok();  // outcome length-dependent; must not crash
  }
}

TEST(StateSyncTest, RoundTripPreservesDigest) {
  ShardPair pair;
  pair.authority->RqiAdd(1, geo::CellRange{0, 9, 0, 9});
  pair.authority->RqiAdd(2, geo::CellRange{2, 4, 2, 4});
  pair.authority->RqiAdd(3, geo::CellRange{5, 5, 5, 5});

  std::vector<uint8_t> image;
  pair.authority->EncodeStateSync(&image);
  ASSERT_FALSE(image.empty());
  ASSERT_TRUE(pair.replica->LoadStateSync(image.data(), image.size()).ok());
  EXPECT_EQ(pair.replica->StateDigest(), pair.authority->StateDigest());

  // The loaded RQI slice answers cell lookups identically on owned cells.
  for (int32_t y = 0; y < 10; ++y) {
    for (int32_t x = 0; x < 10; ++x) {
      geo::CellCoord cell{x, y};
      if (!pair.authority->OwnsCell(cell)) continue;
      EXPECT_EQ(pair.replica->QueriesForCell(cell),
                pair.authority->QueriesForCell(cell));
    }
  }

  // Truncations must fail the load, never crash or half-apply silently.
  for (size_t len = 0; len < image.size(); len += 7) {
    ServerShard fresh(0, pair.grid, *pair.map);
    EXPECT_FALSE(fresh.LoadStateSync(image.data(), len).ok());
  }
}

// --- End-to-end over real daemons -------------------------------------------

sim::SimulationConfig ProcessConfig(int shards) {
  sim::SimulationConfig config;
  config.params.num_objects = 1200;
  config.params.num_queries = 80;
  config.params.velocity_changes_per_step = 120;
  config.mode = sim::SimMode::kMobiEyesEager;
  config.warmup_steps = 2;
  config.mobieyes =
      core::HardenedOptions(config.mobieyes, config.params.time_step);
  config.mobieyes.sharding.num_shards = shards;
  return config;
}

std::vector<std::vector<ObjectId>> ResultsOf(sim::Simulation* simulation) {
  std::vector<std::vector<ObjectId>> results;
  core::MobiEyesServer* server = simulation->server();
  for (QueryId qid : simulation->installed_queries()) {
    std::vector<ObjectId> sorted;
    const core::MobiEyesServer::SqtEntry* entry =
        server == nullptr ? nullptr : server->FindQuery(qid);
    if (entry != nullptr) {
      sorted.assign(entry->result.begin(), entry->result.end());
      std::sort(sorted.begin(), sorted.end());
    }
    results.push_back(std::move(sorted));
  }
  return results;
}

TEST(ProcessTransportTest, MatchesInProcessByteForByte) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  sim::SimulationConfig inproc = ProcessConfig(4);
  inproc.obs.enable_heatmap = true;
  sim::SimulationConfig process = inproc;
  process.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;

  auto a = sim::Simulation::Make(inproc);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = sim::Simulation::Make(process);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_NE((*b)->supervisor(), nullptr);
  EXPECT_EQ((*a)->supervisor(), nullptr);

  (*a)->Run(10);
  (*b)->Run(10);

  // The transport mirrors, it never decides: deterministic exports and the
  // final result sets must be byte-identical to the in-process run.
  EXPECT_EQ((*a)->ObservabilityJson(/*include_timing=*/false),
            (*b)->ObservabilityJson(/*include_timing=*/false));
  ASSERT_NE((*a)->heatmap(), nullptr);
  ASSERT_NE((*b)->heatmap(), nullptr);
  EXPECT_EQ((*a)->heatmap()->ToJson(/*include_layout_dependent=*/false),
            (*b)->heatmap()->ToJson(/*include_layout_dependent=*/false));
  EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));

  // Every replica kept pace: acks verified, no timeouts, no mismatches.
  sim::RunMetrics metrics = (*b)->metrics();
  EXPECT_GT(metrics.backplane_frames_sent, 0);
  EXPECT_GT(metrics.backplane_rtt_samples, 0);
  EXPECT_EQ(metrics.backplane_digest_mismatches, 0);
  EXPECT_EQ(metrics.backplane_rpc_timeouts, 0);
  EXPECT_EQ(metrics.shard_restarts, 0);
}

TEST(ProcessTransportTest, KilledDaemonRejoinsAndReconverges) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  sim::SimulationConfig config = ProcessConfig(4);
  config.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
  config.measure_error = true;
  config.checkpoint_stride = 4;
  config.shard_kill_step = 8;
  config.shard_kill_index = 1;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(20);

  sim::RunMetrics metrics = (*simulation)->metrics();
  EXPECT_GE(metrics.shard_restarts, 1);
  EXPECT_EQ(metrics.backplane_digest_mismatches, 0);
  // Degraded mode queued the dead shard's uplinks and drained every one.
  EXPECT_GT(metrics.uplinks_deferred, 0);
  EXPECT_EQ(metrics.uplinks_dropped, 0);
  EXPECT_EQ(metrics.uplinks_drained, metrics.uplinks_deferred);
  EXPECT_GE((*simulation)->CurrentAccuracy().agreement, 0.95);

  // After the run the backplane settles: every daemon up, queues empty.
  ASSERT_NE((*simulation)->supervisor(), nullptr);
  // The rejoin took one state sync beyond the four initial handshakes (log
  // replay on top is workload-dependent: the log is empty when no RQI op
  // touched the shard since the last checkpoint capture).
  EXPECT_GE((*simulation)->supervisor()->stats().syncs_sent, 5u);
  EXPECT_TRUE((*simulation)->supervisor()->Quiesce(5000).ok());
  EXPECT_TRUE((*simulation)->supervisor()->AllAvailable());
  EXPECT_EQ((*simulation)->supervisor()->down_shards(), 0);
}

}  // namespace
}  // namespace mobieyes
