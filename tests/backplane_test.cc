// Shard backplane (DESIGN.md §13): framing, the socket link, the step-batch
// and state-sync codecs, and end-to-end process-transport runs against real
// mobieyes_shardd daemons. The daemon-backed tests skip (not fail) when the
// binary is not discoverable, so the suite still passes on a stripped
// install tree.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "mobieyes/common/random.h"

#include "mobieyes/core/options.h"
#include "mobieyes/core/server.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/core/shard_daemon.h"
#include "mobieyes/core/shard_supervisor.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/backplane.h"
#include "mobieyes/net/framing.h"
#include "mobieyes/sim/simulation.h"

namespace mobieyes {
namespace {

using core::ServerShard;
using core::ShardMap;
using core::ShardSupervisor;
using core::StepBatchBuilder;
using net::Frame;
using net::FrameDecoder;
using net::FrameKind;
using net::PeerLink;

TEST(Framing, RoundTrip) {
  Frame frame;
  frame.kind = FrameKind::kStepBatch;
  frame.shard = 3;
  frame.flags = 7;
  frame.step = 42;
  frame.payload = {1, 2, 3, 4, 5};

  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + frame.payload.size());

  FrameDecoder decoder;
  std::vector<Frame> out;
  decoder.Feed(wire.data(), wire.size(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, FrameKind::kStepBatch);
  EXPECT_EQ(out[0].shard, 3);
  EXPECT_EQ(out[0].flags, 7);
  EXPECT_EQ(out[0].step, 42);
  EXPECT_EQ(out[0].payload, frame.payload);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(Framing, ChecksumRejectsCorruptedPayload) {
  Frame frame;
  frame.kind = FrameKind::kStepBatch;
  frame.step = 7;
  frame.payload = {10, 20, 30, 40};
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);

  // Pristine wire decodes; the same wire with one payload bit flipped must
  // be rejected by the FNV-1a payload checksum, not delivered corrupted.
  std::vector<uint8_t> corrupted = wire;
  corrupted[net::kFrameHeaderBytes + 1] ^= 0x08;
  FrameDecoder decoder;
  std::vector<Frame> out;
  decoder.Feed(corrupted.data(), corrupted.size(), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(decoder.stats().checksum_mismatch, 1u);
  // The stream recovers: the pristine copy decodes after the bad one.
  decoder.Feed(wire.data(), wire.size(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, frame.payload);
}

// --- Backplane addresses and chaos specs ------------------------------------

TEST(BackplaneAddressTest, RejectsOverlongUdsPath) {
  // One byte past sizeof(sockaddr_un::sun_path) (terminator included) must
  // fail with a clear error, never a silent truncation to a wrong socket.
  const std::string path = "/tmp/" + std::string(sizeof(sockaddr_un{}.sun_path), 'x');
  net::Backplane backplane;
  Status st = backplane.Listen("uds:" + path);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("too long"), std::string::npos)
      << st.ToString();
  int fd = -1;
  st = net::BackplaneConnect("uds:" + path, /*timeout_ms=*/0,
                             /*retry_sleep_ms=*/0, &fd);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("too long"), std::string::npos)
      << st.ToString();
}

TEST(BackplaneFaultSpecTest, ParsesEveryField) {
  net::BackplaneFaultPlan plan;
  ASSERT_TRUE(net::ParseBackplaneFaultSpec(
                  "drop=0.1,delay=0.2:3,trunc=0.05,flip=0.01,kill=8:1,"
                  "kill=12:0,seed=9",
                  &plan)
                  .ok());
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_rate, 0.2);
  EXPECT_EQ(plan.max_delay_steps, 3);
  EXPECT_DOUBLE_EQ(plan.truncate_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.flip_rate, 0.01);
  ASSERT_EQ(plan.kills.size(), 2u);
  EXPECT_EQ(plan.kills[0], (std::pair<int64_t, int>{8, 1}));
  EXPECT_EQ(plan.kills[1], (std::pair<int64_t, int>{12, 0}));
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_TRUE(plan.active());

  net::BackplaneFaultPlan empty;
  EXPECT_FALSE(empty.active());
}

TEST(BackplaneFaultSpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"drop=1.5", "drop=-0.1", "delay=0.2:0", "bogus=1", "kill=5",
        "kill=-1:0", "kill=5:-1", "drop", "=0.1"}) {
    net::BackplaneFaultPlan plan;
    EXPECT_FALSE(net::ParseBackplaneFaultSpec(spec, &plan).ok())
        << "accepted: " << spec;
  }
}

// --- Respawn backoff ---------------------------------------------------------

TEST(RespawnBackoffTest, StaysWithinBoundsAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    for (int attempts = 1; attempts <= 24; ++attempts) {
      int64_t steps =
          ShardSupervisor::RespawnBackoffSteps(attempts, /*base_steps=*/2,
                                               /*max_steps=*/16, &rng);
      EXPECT_GE(steps, 2) << "seed=" << seed << " attempts=" << attempts;
      EXPECT_LE(steps, 16) << "seed=" << seed << " attempts=" << attempts;
    }
  }
  // Degenerate configs: max below base collapses to base, and the first
  // attempt with jitter still cannot exceed the cap.
  Rng rng(3);
  for (int attempts = 1; attempts <= 8; ++attempts) {
    EXPECT_EQ(ShardSupervisor::RespawnBackoffSteps(attempts, 4, 1, &rng), 4);
    EXPECT_EQ(ShardSupervisor::RespawnBackoffSteps(attempts, 1, 1, &rng), 1);
  }
}

// --- PeerLink over a socketpair ---------------------------------------------

Frame TestFrame(FrameKind kind, int64_t step, size_t payload_bytes) {
  Frame frame;
  frame.kind = kind;
  frame.step = step;
  frame.payload.assign(payload_bytes,
                       static_cast<uint8_t>(step & 0xff));
  return frame;
}

TEST(PeerLinkTest, SendReceiveAndEof) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  PeerLink a;
  PeerLink b;
  a.Adopt(sv[0]);
  b.Adopt(sv[1]);

  for (int64_t step = 0; step < 3; ++step) {
    ASSERT_TRUE(a.Send(TestFrame(FrameKind::kStepBatch, step, 100),
                       /*max_queue_bytes=*/1u << 20));
  }
  std::vector<Frame> received;
  // Non-blocking on both ends: flush and drain until all three arrive.
  for (int spin = 0; spin < 1000 && received.size() < 3; ++spin) {
    ASSERT_TRUE(a.Flush());
    ASSERT_TRUE(b.Receive(&received));
  }
  ASSERT_EQ(received.size(), 3u);
  for (int64_t step = 0; step < 3; ++step) {
    EXPECT_EQ(received[static_cast<size_t>(step)].step, step);
    EXPECT_EQ(received[static_cast<size_t>(step)].payload.size(), 100u);
  }
  EXPECT_EQ(a.stats().frames_sent, 3u);
  EXPECT_EQ(b.stats().frames_received, 3u);
  EXPECT_EQ(b.stats().bytes_received, a.stats().bytes_sent);

  // EOF: closing one end must surface as Receive() == false, link closed.
  a.Close();
  bool alive = true;
  for (int spin = 0; spin < 1000 && alive; ++spin) {
    alive = b.Receive(&received);
  }
  EXPECT_FALSE(alive);
  EXPECT_FALSE(b.connected());
}

TEST(PeerLinkTest, BoundedQueueDropsWhenPeerStalls) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  PeerLink a;
  a.Adopt(sv[0]);  // sv[1] never read: the kernel buffer eventually fills

  const size_t kQueueCap = 64u << 10;
  bool dropped = false;
  for (int k = 0; k < 256 && !dropped; ++k) {
    dropped = !a.Send(TestFrame(FrameKind::kStateSync, k, 256u << 10),
                      kQueueCap);
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(a.stats().send_drops, 0u);
  // The queue never exceeds the cap: that is the non-blocking guarantee.
  EXPECT_LE(a.queued_bytes(),
            kQueueCap + net::kFrameHeaderBytes + (256u << 10));
  a.Close();
  close(sv[1]);
}

// --- Step-batch and state-sync codecs ---------------------------------------

struct ShardPair {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  core::ShardingOptions options;
  std::unique_ptr<ShardMap> map;
  std::unique_ptr<ServerShard> authority;
  std::unique_ptr<ServerShard> replica;

  explicit ShardPair(int shards = 2) {
    options.num_shards = shards;
    map = std::make_unique<ShardMap>(grid, options);
    authority = std::make_unique<ServerShard>(0, grid, *map);
    replica = std::make_unique<ServerShard>(0, grid, *map);
  }
};

TEST(StepBatchTest, RqiOpsReplicate) {
  ShardPair pair;
  StepBatchBuilder builder;
  EXPECT_TRUE(builder.empty());

  geo::CellRange r1{1, 3, 0, 2};
  geo::CellRange r2{4, 6, 4, 6};
  pair.authority->RqiAdd(7, r1);
  pair.authority->RqiAdd(8, r2);
  builder.RqiOp(true, 7, r1);
  builder.RqiOp(true, 8, r2);
  EXPECT_EQ(builder.op_count(), 2u);

  std::vector<uint8_t> payload = builder.Finish();
  EXPECT_TRUE(builder.empty());
  uint32_t applied = 0;
  ASSERT_TRUE(core::ApplyStepBatch(payload.data(), payload.size(),
                                   pair.replica.get(), &applied)
                  .ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(pair.replica->StateDigest(), pair.authority->StateDigest());

  // Removal must re-converge the digest too.
  pair.authority->RqiRemove(7, r1);
  builder.RqiOp(false, 7, r1);
  payload = builder.Finish();
  ASSERT_TRUE(core::ApplyStepBatch(payload.data(), payload.size(),
                                   pair.replica.get(), nullptr)
                  .ok());
  EXPECT_EQ(pair.replica->StateDigest(), pair.authority->StateDigest());
}

TEST(StepBatchTest, MalformedBatchFailsCleanly) {
  ShardPair pair;
  // A count prefix promising more ops than the bytes deliver.
  std::vector<uint8_t> bogus = {0xff, 0xff, 0x00, 0x00, 0x03};
  uint32_t applied = 0;
  EXPECT_FALSE(core::ApplyStepBatch(bogus.data(), bogus.size(),
                                    pair.replica.get(), &applied)
                   .ok());
  // Truncations of a valid batch must also fail, never crash.
  StepBatchBuilder builder;
  builder.RqiOp(true, 11, geo::CellRange{0, 2, 0, 2});
  builder.Extract(42);
  std::vector<uint8_t> payload = builder.Finish();
  for (size_t len = 0; len < payload.size(); ++len) {
    core::ApplyStepBatch(payload.data(), len, pair.replica.get(), nullptr)
        .ok();  // outcome length-dependent; must not crash
  }
}

TEST(StepBatchTest, PartitionAndRqiRowOpsReplicate) {
  ShardPair pair;
  const geo::CellCoord moved{2, 1};  // shard 0's band under the 2-way split
  const int32_t flat = static_cast<int32_t>(pair.grid.FlatIndex(moved));
  ASSERT_EQ(pair.map->ShardOf(moved), 0);

  // Seed a row on the authority, mirror it, then migrate the cell: the
  // partition update advances the shared map's epoch and the row-move ops
  // hand the slice over explicitly.
  pair.authority->RqiAdd(7, geo::CellRange{2, 2, 1, 1});
  StepBatchBuilder builder;

  // Opcode 4 needs a live map: without one the batch must fail, not crash.
  builder.PartitionUpdate(1, {{flat, 1}});
  std::vector<uint8_t> partition_only = builder.Finish();
  uint32_t applied = 0;
  EXPECT_FALSE(core::ApplyStepBatch(partition_only.data(),
                                    partition_only.size(),
                                    pair.replica.get(), &applied)
                   .ok());
  EXPECT_EQ(pair.map->epoch(), 0u);

  builder.RqiOp(true, 7, geo::CellRange{2, 2, 1, 1});
  builder.PartitionUpdate(1, {{flat, 1}});
  builder.RqiRowSet({3, 3}, {11, 12, 13});
  builder.RqiRowClear({2, 1});
  EXPECT_EQ(builder.op_count(), 4u);
  std::vector<uint8_t> payload = builder.Finish();
  ASSERT_TRUE(core::ApplyStepBatch(payload.data(), payload.size(),
                                   pair.replica.get(), &applied,
                                   pair.map.get())
                  .ok());
  EXPECT_EQ(applied, 4u);
  EXPECT_EQ(pair.map->epoch(), 1u);
  EXPECT_EQ(pair.map->ShardOf(moved), 1);
  EXPECT_EQ(pair.replica->QueriesForCell({3, 3}),
            (std::vector<QueryId>{11, 12, 13}));
  EXPECT_TRUE(pair.replica->QueriesForCell({2, 1}).empty());

  // A partition update that does not advance the epoch is refused.
  builder.PartitionUpdate(1, {{flat, 0}});
  payload = builder.Finish();
  EXPECT_FALSE(core::ApplyStepBatch(payload.data(), payload.size(),
                                    pair.replica.get(), nullptr,
                                    pair.map.get())
                   .ok());
  EXPECT_EQ(pair.map->epoch(), 1u);
}

TEST(StepBatchTest, TruncatedPartitionOpsFailCleanly) {
  ShardPair pair;
  StepBatchBuilder builder;
  builder.PartitionUpdate(1, {{0, 1}, {5, 1}});
  builder.RqiRowSet({1, 1}, {3, 4});
  builder.RqiRowClear({0, 0});
  std::vector<uint8_t> payload = builder.Finish();
  for (size_t len = 0; len < payload.size(); ++len) {
    core::ApplyStepBatch(payload.data(), len, pair.replica.get(), nullptr,
                         pair.map.get())
        .ok();  // outcome length-dependent; must not crash
  }
}

TEST(ShardConfigCodecTest, EpochTailRoundTripsAndEpochZeroStaysLegacy) {
  core::ShardConfig config;
  config.universe = geo::Rect{0, 0, 100, 100};
  config.alpha = 10.0;
  config.sharding.num_shards = 4;

  // Epoch 0: no tail on the wire (the pre-epoch format, byte for byte).
  std::vector<uint8_t> legacy;
  core::EncodeShardConfig(config, &legacy);
  core::ShardConfig back;
  ASSERT_TRUE(
      core::DecodeShardConfig(legacy.data(), legacy.size(), &back).ok());
  EXPECT_EQ(back.epoch, 0u);
  EXPECT_TRUE(back.owners.empty());

  // Epoch > 0 appends the tail after the legacy fields; everything before
  // it is unchanged.
  config.epoch = 7;
  config.owners.assign(100, 0);
  for (size_t f = 50; f < 100; ++f) config.owners[f] = 3;
  std::vector<uint8_t> tailed;
  core::EncodeShardConfig(config, &tailed);
  ASSERT_GT(tailed.size(), legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), tailed.begin()));
  ASSERT_TRUE(
      core::DecodeShardConfig(tailed.data(), tailed.size(), &back).ok());
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.owners, config.owners);

  // A truncated tail must fail the decode, never half-apply.
  for (size_t len = legacy.size() + 1; len < tailed.size(); ++len) {
    core::ShardConfig scratch;
    EXPECT_FALSE(
        core::DecodeShardConfig(tailed.data(), len, &scratch).ok())
        << "len " << len;
  }
}

TEST(StateSyncTest, RoundTripPreservesDigest) {
  ShardPair pair;
  pair.authority->RqiAdd(1, geo::CellRange{0, 9, 0, 9});
  pair.authority->RqiAdd(2, geo::CellRange{2, 4, 2, 4});
  pair.authority->RqiAdd(3, geo::CellRange{5, 5, 5, 5});

  std::vector<uint8_t> image;
  pair.authority->EncodeStateSync(&image);
  ASSERT_FALSE(image.empty());
  ASSERT_TRUE(pair.replica->LoadStateSync(image.data(), image.size()).ok());
  EXPECT_EQ(pair.replica->StateDigest(), pair.authority->StateDigest());

  // The loaded RQI slice answers cell lookups identically on owned cells.
  for (int32_t y = 0; y < 10; ++y) {
    for (int32_t x = 0; x < 10; ++x) {
      geo::CellCoord cell{x, y};
      if (!pair.authority->OwnsCell(cell)) continue;
      EXPECT_EQ(pair.replica->QueriesForCell(cell),
                pair.authority->QueriesForCell(cell));
    }
  }

  // Truncations must fail the load, never crash or half-apply silently.
  for (size_t len = 0; len < image.size(); len += 7) {
    ServerShard fresh(0, pair.grid, *pair.map);
    EXPECT_FALSE(fresh.LoadStateSync(image.data(), len).ok());
  }
}

// --- End-to-end over real daemons -------------------------------------------

sim::SimulationConfig ProcessConfig(int shards) {
  sim::SimulationConfig config;
  config.params.num_objects = 1200;
  config.params.num_queries = 80;
  config.params.velocity_changes_per_step = 120;
  config.mode = sim::SimMode::kMobiEyesEager;
  config.warmup_steps = 2;
  config.mobieyes =
      core::HardenedOptions(config.mobieyes, config.params.time_step);
  config.mobieyes.sharding.num_shards = shards;
  return config;
}

std::vector<std::vector<ObjectId>> ResultsOf(sim::Simulation* simulation) {
  std::vector<std::vector<ObjectId>> results;
  core::MobiEyesServer* server = simulation->server();
  for (QueryId qid : simulation->installed_queries()) {
    std::vector<ObjectId> sorted;
    const core::MobiEyesServer::SqtEntry* entry =
        server == nullptr ? nullptr : server->FindQuery(qid);
    if (entry != nullptr) {
      sorted.assign(entry->result.begin(), entry->result.end());
      std::sort(sorted.begin(), sorted.end());
    }
    results.push_back(std::move(sorted));
  }
  return results;
}

TEST(ProcessTransportTest, MatchesInProcessByteForByte) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  sim::SimulationConfig inproc = ProcessConfig(4);
  inproc.obs.enable_heatmap = true;
  sim::SimulationConfig process = inproc;
  process.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;

  auto a = sim::Simulation::Make(inproc);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = sim::Simulation::Make(process);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_NE((*b)->supervisor(), nullptr);
  EXPECT_EQ((*a)->supervisor(), nullptr);

  (*a)->Run(10);
  (*b)->Run(10);

  // The transport mirrors, it never decides: deterministic exports and the
  // final result sets must be byte-identical to the in-process run.
  EXPECT_EQ((*a)->ObservabilityJson(/*include_timing=*/false),
            (*b)->ObservabilityJson(/*include_timing=*/false));
  ASSERT_NE((*a)->heatmap(), nullptr);
  ASSERT_NE((*b)->heatmap(), nullptr);
  EXPECT_EQ((*a)->heatmap()->ToJson(/*include_layout_dependent=*/false),
            (*b)->heatmap()->ToJson(/*include_layout_dependent=*/false));
  EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));

  // Every replica kept pace: acks verified, no timeouts, no mismatches.
  sim::RunMetrics metrics = (*b)->metrics();
  EXPECT_GT(metrics.backplane_frames_sent, 0);
  EXPECT_GT(metrics.backplane_rtt_samples, 0);
  EXPECT_EQ(metrics.backplane_digest_mismatches, 0);
  EXPECT_EQ(metrics.backplane_rpc_timeouts, 0);
  EXPECT_EQ(metrics.shard_restarts, 0);
}

TEST(ProcessTransportTest, KilledDaemonRejoinsAndReconverges) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  sim::SimulationConfig config = ProcessConfig(4);
  config.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
  config.measure_error = true;
  config.checkpoint_stride = 4;
  config.shard_kill_step = 8;
  config.shard_kill_index = 1;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(20);

  sim::RunMetrics metrics = (*simulation)->metrics();
  EXPECT_GE(metrics.shard_restarts, 1);
  EXPECT_EQ(metrics.backplane_digest_mismatches, 0);
  // Degraded mode queued the dead shard's uplinks and drained every one.
  EXPECT_GT(metrics.uplinks_deferred, 0);
  EXPECT_EQ(metrics.uplinks_dropped, 0);
  EXPECT_EQ(metrics.uplinks_drained, metrics.uplinks_deferred);
  EXPECT_GE((*simulation)->CurrentAccuracy().agreement, 0.95);

  // After the run the backplane settles: every daemon up, queues empty.
  ASSERT_NE((*simulation)->supervisor(), nullptr);
  // The rejoin took one state sync beyond the four initial handshakes (log
  // replay on top is workload-dependent: the log is empty when no RQI op
  // touched the shard since the last checkpoint capture).
  EXPECT_GE((*simulation)->supervisor()->stats().syncs_sent, 5u);
  EXPECT_TRUE((*simulation)->supervisor()->Quiesce(5000).ok());
  EXPECT_TRUE((*simulation)->supervisor()->AllAvailable());
  EXPECT_EQ((*simulation)->supervisor()->down_shards(), 0);
}

TEST(ProcessTransportTest, KillShardOnDeadShardIsANoOp) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  sim::SimulationConfig config = ProcessConfig(2);
  config.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(4);

  ShardSupervisor* supervisor = (*simulation)->supervisor();
  ASSERT_NE(supervisor, nullptr);
  ASSERT_TRUE(supervisor->Quiesce(5000).ok());
  supervisor->KillShard(1);
  EXPECT_EQ(supervisor->down_shards(), 1);
  const core::SupervisorStats after_first = supervisor->stats();
  // Killing an already-dead shard must change nothing: no signal, no second
  // death bookkeeping, no crash.
  supervisor->KillShard(1);
  supervisor->KillShard(1);
  EXPECT_EQ(supervisor->down_shards(), 1);
  EXPECT_EQ(supervisor->stats().restarts, after_first.restarts);
  EXPECT_EQ(supervisor->stats().failovers, after_first.failovers);
  // Out-of-range shard indexes are ignored too.
  supervisor->KillShard(-1);
  supervisor->KillShard(99);
  EXPECT_EQ(supervisor->down_shards(), 1);
}

// --- Authority mode (DESIGN.md §14) -----------------------------------------

sim::SimulationConfig AuthorityConfig(int shards) {
  sim::SimulationConfig config = ProcessConfig(shards);
  config.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
  config.shard_authority = true;
  return config;
}

TEST(AuthorityModeTest, MatchesInProcessByteForByte) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  // The acceptance bar: two shard counts, fault-free, and the daemons —
  // not the mirror — answered the scans.
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    sim::SimulationConfig inproc = ProcessConfig(shards);
    inproc.obs.enable_heatmap = true;
    sim::SimulationConfig authority = AuthorityConfig(shards);
    authority.obs.enable_heatmap = true;

    auto a = sim::Simulation::Make(inproc);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    auto b = sim::Simulation::Make(authority);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    (*a)->Run(10);
    (*b)->Run(10);

    EXPECT_EQ((*a)->ObservabilityJson(/*include_timing=*/false),
              (*b)->ObservabilityJson(/*include_timing=*/false));
    EXPECT_EQ((*a)->heatmap()->ToJson(/*include_layout_dependent=*/false),
              (*b)->heatmap()->ToJson(/*include_layout_dependent=*/false));
    EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));

    sim::RunMetrics metrics = (*b)->metrics();
    EXPECT_GT(metrics.backplane_scans_remote, 0u);
    EXPECT_GT(metrics.backplane_scan_rtt_samples, 0u);
    EXPECT_EQ(metrics.backplane_digest_mismatches, 0u);
    EXPECT_EQ(metrics.backplane_failovers, 0u);
    // Every shard got its clean initial cutover to daemon authority.
    EXPECT_GE(metrics.backplane_cutovers,
              static_cast<uint64_t>(shards));
    // Authority mode never defers an uplink: the mirror absorbs outages.
    EXPECT_EQ(metrics.uplinks_deferred, 0u);
    EXPECT_EQ(metrics.uplinks_dropped, 0u);
  }
}

TEST(AuthorityModeTest, SigkillFailsOverSameStepWithoutDroppingUplinks) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  // Reference run: same seed, in-process. The SIGKILLed authority run must
  // still produce these exact result sets — failover to the warm mirror is
  // invisible to the query pipeline.
  sim::SimulationConfig inproc = ProcessConfig(4);
  inproc.measure_error = true;
  auto a = sim::Simulation::Make(inproc);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  (*a)->Run(20);

  sim::SimulationConfig config = AuthorityConfig(4);
  config.measure_error = true;
  config.checkpoint_stride = 4;
  config.shard_kill_step = 8;
  config.shard_kill_index = 1;
  auto b = sim::Simulation::Make(config);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  (*b)->Run(20);

  EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));

  sim::RunMetrics metrics = (*b)->metrics();
  // The death was noticed and authority revoked mid-step (failover), the
  // daemon respawned, resynced and took authority back (cutover beyond the
  // four initial grants).
  EXPECT_GE(metrics.backplane_failovers, 1u);
  EXPECT_GE(metrics.shard_restarts, 1);
  EXPECT_GE(metrics.backplane_cutovers, 5u);
  // The mirror served scans while the daemon was gone; the daemons served
  // scans before and after.
  EXPECT_GT(metrics.backplane_scans_local, 0u);
  EXPECT_GT(metrics.backplane_scans_remote, 0u);
  // No step blocked on the dead daemon: zero deferred, zero dropped.
  EXPECT_EQ(metrics.uplinks_deferred, 0u);
  EXPECT_EQ(metrics.uplinks_dropped, 0u);
  EXPECT_GE((*b)->CurrentAccuracy().agreement, 0.95);

  ASSERT_NE((*b)->supervisor(), nullptr);
  EXPECT_TRUE((*b)->supervisor()->Quiesce(5000).ok());
  EXPECT_TRUE((*b)->supervisor()->AllAvailable());
}

TEST(AuthorityModeTest, ChaosRunReconvergesWithoutLosingUplinks) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  sim::SimulationConfig inproc = ProcessConfig(4);
  inproc.measure_error = true;
  auto a = sim::Simulation::Make(inproc);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  (*a)->Run(20);

  sim::SimulationConfig config = AuthorityConfig(4);
  config.measure_error = true;
  config.checkpoint_stride = 4;
  ASSERT_TRUE(net::ParseBackplaneFaultSpec(
                  "drop=0.1,delay=0.15:2,trunc=0.03,flip=0.03,kill=10:2,"
                  "seed=5",
                  &config.backplane_fault)
                  .ok());
  auto b = sim::Simulation::Make(config);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  (*b)->Run(20);

  // Chaos corrupts the backplane, never the answer: result sets identical
  // to the untouched in-process run, full oracle agreement, and not one
  // uplink lost.
  EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));
  sim::RunMetrics metrics = (*b)->metrics();
  EXPECT_GT(metrics.backplane_chaos_frames, 0u);
  EXPECT_EQ(metrics.backplane_chaos_kills, 1u);
  EXPECT_EQ(metrics.uplinks_dropped, 0u);
  EXPECT_EQ(metrics.uplinks_deferred, 0u);
  EXPECT_GE((*b)->CurrentAccuracy().agreement, 0.95);

  // The backplane itself settles after the storm.
  ASSERT_NE((*b)->supervisor(), nullptr);
  EXPECT_TRUE((*b)->supervisor()->Quiesce(5000).ok());
  EXPECT_TRUE((*b)->supervisor()->AllAvailable());
}

// --- Online rebalancing over the backplane (DESIGN.md §15) -------------------

sim::SimulationConfig RebalancedConfig(int shards) {
  sim::SimulationConfig config = ProcessConfig(shards);
  config.params.object_distribution = sim::ObjectDistribution::kHotspot;
  config.mobieyes.sharding.rebalance_stride = 2;
  config.mobieyes.sharding.rebalance_threshold = 1.05;
  config.mobieyes.sharding.rebalance_max_moves = 8;
  return config;
}

TEST(RebalanceTransportTest, RebalancedProcessRunMatchesInProcess) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  // Partition updates, row moves and epoch-stamped acks ride the real
  // backplane; the daemons must track every epoch without a single resync.
  sim::SimulationConfig inproc = RebalancedConfig(4);
  inproc.obs.enable_heatmap = true;
  sim::SimulationConfig process = inproc;
  process.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;

  auto a = sim::Simulation::Make(inproc);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = sim::Simulation::Make(process);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  (*a)->Run(12);
  (*b)->Run(12);

  sim::RunMetrics metrics = (*b)->metrics();
  ASSERT_GT(metrics.rebalance_events, 0u) << "workload never rebalanced";
  EXPECT_EQ(metrics.rebalance_epoch, (*a)->metrics().rebalance_epoch);
  EXPECT_EQ((*a)->ObservabilityJson(/*include_timing=*/false),
            (*b)->ObservabilityJson(/*include_timing=*/false));
  EXPECT_EQ((*a)->heatmap()->ToJson(/*include_layout_dependent=*/false),
            (*b)->heatmap()->ToJson(/*include_layout_dependent=*/false));
  EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));
  EXPECT_EQ(metrics.backplane_digest_mismatches, 0);
  EXPECT_EQ(metrics.backplane_rpc_timeouts, 0);
  EXPECT_EQ(metrics.shard_restarts, 0);
}

TEST(RebalanceTransportTest, RebalancedAuthorityRunMatchesInProcess) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  // Authority mode on top: scans carry the live epoch and a daemon never
  // answers for a cell it no longer owns, so the merged rows stay exact
  // across every epoch advance.
  sim::SimulationConfig inproc = RebalancedConfig(4);
  sim::SimulationConfig authority = RebalancedConfig(4);
  authority.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
  authority.shard_authority = true;

  auto a = sim::Simulation::Make(inproc);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = sim::Simulation::Make(authority);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  (*a)->Run(12);
  (*b)->Run(12);

  sim::RunMetrics metrics = (*b)->metrics();
  ASSERT_GT(metrics.rebalance_events, 0u) << "workload never rebalanced";
  EXPECT_GT(metrics.backplane_scans_remote, 0u);
  EXPECT_EQ(ResultsOf((*a).get()), ResultsOf((*b).get()));
  EXPECT_EQ(metrics.uplinks_deferred, 0u);
  EXPECT_EQ(metrics.uplinks_dropped, 0u);
}

TEST(RebalanceTransportTest, SigkillDuringMigrationReconverges) {
  if (ShardSupervisor::FindShardd("").empty()) {
    GTEST_SKIP() << "mobieyes_shardd not found";
  }
  // SIGKILL a daemon on a migration step (stride 2 puts a planning point on
  // every even step): the pending partition update is frame-logged while
  // the daemon is down and the rejoin replays it on top of the
  // capture-time-epoch config, so the fleet reconverges on the live epoch.
  sim::SimulationConfig config = RebalancedConfig(4);
  config.shard_transport = sim::SimulationConfig::ShardTransport::kProcess;
  config.measure_error = true;
  config.checkpoint_stride = 4;
  config.shard_kill_step = 8;
  config.shard_kill_index = 1;

  auto simulation = sim::Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(20);

  sim::RunMetrics metrics = (*simulation)->metrics();
  ASSERT_GT(metrics.rebalance_events, 0u) << "workload never rebalanced";
  EXPECT_GE(metrics.shard_restarts, 1);
  EXPECT_EQ(metrics.uplinks_dropped, 0);
  EXPECT_EQ(metrics.uplinks_drained, metrics.uplinks_deferred);
  EXPECT_GE((*simulation)->CurrentAccuracy().agreement, 0.95);

  // The fleet settles on one epoch: every daemon back up and in sync.
  ASSERT_NE((*simulation)->supervisor(), nullptr);
  EXPECT_TRUE((*simulation)->supervisor()->Quiesce(5000).ok());
  EXPECT_TRUE((*simulation)->supervisor()->AllAvailable());
  EXPECT_EQ((*simulation)->supervisor()->down_shards(), 0);
}

}  // namespace
}  // namespace mobieyes
