// Tests for time-bounded queries: the paper's example MQs carry durations
// ("within 5 miles ... during next 2 hours"), so queries can self-expire.

#include <gtest/gtest.h>

#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

TEST(QueryLifetimeTest, DefaultQueriesNeverExpire) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.TickN(50);
  EXPECT_NE(deployment.server().FindQuery(*qid), nullptr);
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(QueryLifetimeTest, QueryExpiresAfterDuration) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  // 90 seconds = 3 ticks of 30 s.
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0, 90.0);
  ASSERT_TRUE(qid.ok());
  const auto* entry = deployment.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->expires_at, 90.0);

  deployment.TickN(2);  // t = 60: still live
  EXPECT_NE(deployment.server().FindQuery(*qid), nullptr);
  EXPECT_TRUE(deployment.client(0).has_mq());

  deployment.Tick();  // t = 90: expires
  EXPECT_EQ(deployment.server().FindQuery(*qid), nullptr);
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
  EXPECT_FALSE(deployment.client(0).has_mq());
  EXPECT_EQ(deployment.server().query_count(), 0u);
}

TEST(QueryLifetimeTest, ExpiryIsRelativeToInstallTime) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  deployment.TickN(2);  // server clock at t = 60
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0, 60.0);
  ASSERT_TRUE(qid.ok());
  const auto* entry = deployment.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->expires_at, 120.0);
  deployment.Tick();  // t = 90
  EXPECT_NE(deployment.server().FindQuery(*qid), nullptr);
  deployment.Tick();  // t = 120: gone
  EXPECT_EQ(deployment.server().FindQuery(*qid), nullptr);
}

TEST(QueryLifetimeTest, MixedLifetimesExpireIndependently) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  auto short_qid = deployment.server().InstallQuery(0, 4.0, 1.0, 30.0);
  auto long_qid = deployment.server().InstallQuery(0, 3.0, 1.0, 120.0);
  auto forever_qid = deployment.server().InstallQuery(0, 2.0, 1.0);
  ASSERT_TRUE(short_qid.ok());
  ASSERT_TRUE(long_qid.ok());
  ASSERT_TRUE(forever_qid.ok());
  ASSERT_EQ(deployment.client(1).lqt_size(), 3u);

  deployment.Tick();  // t = 30: short query gone
  EXPECT_EQ(deployment.server().FindQuery(*short_qid), nullptr);
  EXPECT_NE(deployment.server().FindQuery(*long_qid), nullptr);
  EXPECT_EQ(deployment.client(1).lqt_size(), 2u);
  // The focal still has live queries: hasMQ stays set.
  EXPECT_TRUE(deployment.client(0).has_mq());

  deployment.TickN(3);  // t = 120: long query gone too
  EXPECT_EQ(deployment.server().FindQuery(*long_qid), nullptr);
  EXPECT_NE(deployment.server().FindQuery(*forever_qid), nullptr);
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
  EXPECT_TRUE(deployment.client(0).has_mq());
}

TEST(QueryLifetimeTest, RejectsNonPositiveDuration) {
  MiniDeployment deployment({ObjectSpec(Point{55, 55})});
  EXPECT_FALSE(deployment.server().InstallQuery(0, 4.0, 1.0, 0.0).ok());
  EXPECT_FALSE(deployment.server().InstallQuery(0, 4.0, 1.0, -5.0).ok());
}

TEST(QueryLifetimeTest, ExpiredQueryResultStopsUpdating) {
  MiniDeployment deployment({
      {Point{55, 55}},
      {Point{62, 55}, Vec2{-0.1, 0.0}},  // would become a target at t ~ 30
  });
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0, 30.0);
  ASSERT_TRUE(qid.ok());
  deployment.Tick();  // expires exactly as the object would enter
  EXPECT_EQ(deployment.server().QueryResult(*qid).status().code(),
            StatusCode::kNotFound);
  // No stale LQT entries can resurrect the query.
  deployment.TickN(2);
  EXPECT_EQ(deployment.server().query_count(), 0u);
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
}

}  // namespace
}  // namespace mobieyes::core
