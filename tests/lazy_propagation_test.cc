// Tests for lazy query propagation (§3.5): non-focal objects stay silent on
// cell crossings and pick up missed queries from expanded velocity-change
// broadcasts, trading result freshness for uplink traffic.

#include <gtest/gtest.h>

#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

core::MobiEyesOptions Lazy() {
  core::MobiEyesOptions options;
  options.propagation = core::PropagationMode::kLazy;
  return options;
}

core::MobiEyesOptions Eager() { return core::MobiEyesOptions{}; }

TEST(LazyPropagationTest, NonFocalCellCrossingSendsNoUplink) {
  std::vector<ObjectSpec> specs = {
      {Point{15, 85}, Vec2{0.1, 0.0}},  // plain object crossing cells
  };
  MiniDeployment lazy(specs, Lazy());
  MiniDeployment eager(specs, Eager());
  lazy.TickN(3);   // crosses x=20, x=25... (alpha=10: crossing at 20, 30)
  eager.TickN(3);
  EXPECT_EQ(lazy.network().stats().uplink_messages, 0u);
  EXPECT_GT(eager.network().stats().uplink_messages, 0u);
}

TEST(LazyPropagationTest, FocalStillReportsCellCrossings) {
  MiniDeployment deployment(
      {
          {Point{18, 50}, Vec2{0.1, 0.0}},  // focal crossing x=20
          {Point{22, 50}},
      },
      Lazy());
  auto qid = deployment.server().InstallQuery(0, 3.0, 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.Tick();  // focal at 21: crossed into cell (2,5)
  const auto* entry = deployment.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->curr_cell, (geo::CellCoord{2, 5}));
}

TEST(LazyPropagationTest, MissedQueryInstalledOnVelocityBroadcast) {
  MiniDeployment deployment(
      {
          {Point{55, 55}},                   // focal
          {Point{75, 55}, Vec2{-0.2, 0.0}},  // enters region silently
      },
      Lazy());
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);

  deployment.Tick();  // object at 69: cell (6,5), inside region — but lazy:
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);  // not installed yet

  // The focal changes velocity; the expanded broadcast reaches the region
  // and the object finally installs the query.
  deployment.world().SetObjectState(0, Point{55, 55}, Vec2{0.01, 0.0});
  deployment.Tick();
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(LazyPropagationTest, MissedQueryInstalledOnFocalCellChange) {
  MiniDeployment deployment(
      {
          {Point{58, 55}, Vec2{0.1, 0.0}},   // focal, crosses x=60
          {Point{75, 55}, Vec2{-0.2, 0.0}},  // enters region silently
      },
      Lazy());
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  deployment.Tick();
  // Focal crossed into cell (6,5): the QueryUpdateBroadcast over the union
  // region lets the newcomer install.
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(LazyPropagationTest, LazyResultsEventuallyAgreeWithEager) {
  std::vector<ObjectSpec> specs = {
      {Point{50, 50}, Vec2{0.02, 0.0}},
      {Point{56, 50}, Vec2{-0.02, 0.0}},
      {Point{44, 50}, Vec2{0.01, 0.01}},
  };
  MiniDeployment lazy(specs, Lazy());
  MiniDeployment eager(specs, Eager());
  auto qid_lazy = lazy.server().InstallQuery(0, 5.0, 1.0);
  auto qid_eager = eager.server().InstallQuery(0, 5.0, 1.0);
  ASSERT_TRUE(qid_lazy.ok());
  ASSERT_TRUE(qid_eager.ok());
  // No cell crossings away from queries here, so lazy matches eager.
  for (int step = 0; step < 8; ++step) {
    lazy.Tick();
    eager.Tick();
    ASSERT_EQ(*lazy.server().QueryResult(*qid_lazy),
              *eager.server().QueryResult(*qid_eager))
        << "step " << step;
  }
}

TEST(LazyPropagationTest, LazyCanTransientlyMissTargets) {
  // A fast object sweeps into the query region between focal updates: under
  // lazy propagation it is invisible to the query until the next broadcast,
  // which is exactly the Fig. 2 error source.
  MiniDeployment lazy(
      {
          {Point{55, 55}},                   // focal, stationary
          {Point{78, 55}, Vec2{-0.25, 0.0}},  // 7.5 miles/step
      },
      Lazy());
  auto qid = lazy.server().InstallQuery(0, 6.0, 1.0);
  ASSERT_TRUE(qid.ok());

  lazy.TickN(3);  // object at 55.5: well inside radius 6
  EXPECT_DOUBLE_EQ(lazy.world().object(1).pos.x, 55.5);
  // ...but it never installed the query, so the result misses it.
  EXPECT_EQ(lazy.client(1).lqt_size(), 0u);
  EXPECT_FALSE(lazy.server().QueryResult(*qid)->contains(1));
}

TEST(LazyPropagationTest, UplinkSavingsVsEager) {
  // Many plain objects crossing cells: lazy eliminates their reports.
  std::vector<ObjectSpec> specs;
  specs.push_back({Point{50, 50}});  // focal, stationary
  for (int k = 0; k < 20; ++k) {
    specs.push_back(
        {Point{5.0 + 4.0 * k, 15.0}, Vec2{0.1, 0.0}});  // cross cells often
  }
  MiniDeployment lazy(specs, Lazy());
  MiniDeployment eager(specs, Eager());
  ASSERT_TRUE(lazy.server().InstallQuery(0, 3.0, 1.0).ok());
  ASSERT_TRUE(eager.server().InstallQuery(0, 3.0, 1.0).ok());
  lazy.network().ResetStats();
  eager.network().ResetStats();
  lazy.TickN(5);
  eager.TickN(5);
  EXPECT_LT(lazy.network().stats().uplink_messages,
            eager.network().stats().uplink_messages);
}

}  // namespace
}  // namespace mobieyes::core
