#include <gtest/gtest.h>

#include "mobieyes/sim/oracle.h"

namespace mobieyes::sim {
namespace {

using geo::Grid;
using geo::Point;
using geo::Rect;
using mobility::ObjectState;
using mobility::World;

std::unique_ptr<World> MakeWorld(const Grid& grid,
                                 std::vector<ObjectState> objects) {
  auto world = World::Make(grid, std::move(objects));
  EXPECT_TRUE(world.ok());
  return std::make_unique<World>(std::move(*world));
}

ObjectState Obj(ObjectId oid, double x, double y, double attr = 0.0) {
  ObjectState object;
  object.oid = oid;
  object.pos = Point{x, y};
  object.attr = attr;
  return object;
}

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto grid = Grid::Make(Rect{0, 0, 100, 100}, 10.0);
    ASSERT_TRUE(grid.ok());
    grid_ = std::make_unique<Grid>(*grid);
  }
  std::unique_ptr<Grid> grid_;
};

TEST_F(OracleTest, FindsObjectsInsideRadius) {
  auto world = MakeWorld(
      *grid_, {Obj(0, 50, 50), Obj(1, 52, 50), Obj(2, 58, 50),
               Obj(3, 50, 54)});
  ExactOracle oracle(*world);
  auto result = oracle.Evaluate(0, 5.0, 1.0);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.contains(1));
  EXPECT_TRUE(result.contains(3));
  EXPECT_FALSE(result.contains(2));  // 8 miles away
}

TEST_F(OracleTest, ExcludesFocalObjectItself) {
  auto world = MakeWorld(*grid_, {Obj(0, 50, 50), Obj(1, 51, 50)});
  ExactOracle oracle(*world);
  auto result = oracle.Evaluate(0, 5.0, 1.0);
  EXPECT_FALSE(result.contains(0));
  EXPECT_TRUE(result.contains(1));
}

TEST_F(OracleTest, AppliesFilterThreshold) {
  auto world = MakeWorld(*grid_, {Obj(0, 50, 50), Obj(1, 51, 50, 0.9),
                                  Obj(2, 52, 50, 0.2)});
  ExactOracle oracle(*world);
  auto result = oracle.Evaluate(0, 5.0, 0.5);
  EXPECT_FALSE(result.contains(1));  // attr 0.9 > 0.5
  EXPECT_TRUE(result.contains(2));
}

TEST_F(OracleTest, BoundaryIsInclusive) {
  auto world = MakeWorld(*grid_, {Obj(0, 50, 50), Obj(1, 55, 50)});
  ExactOracle oracle(*world);
  EXPECT_TRUE(oracle.Evaluate(0, 5.0, 1.0).contains(1));
  EXPECT_FALSE(oracle.Evaluate(0, 4.999, 1.0).contains(1));
}

TEST_F(OracleTest, TracksMovingWorld) {
  auto world =
      MakeWorld(*grid_, {Obj(0, 50, 50), Obj(1, 80, 50)});
  ExactOracle oracle(*world);
  EXPECT_TRUE(oracle.Evaluate(0, 5.0, 1.0).empty());
  world->SetObjectState(1, Point{53, 50}, {});
  EXPECT_TRUE(oracle.Evaluate(0, 5.0, 1.0).contains(1));
}

TEST(MissingFractionTest, EmptyExactIsZeroError) {
  EXPECT_EQ(
      ExactOracle::MissingFraction(std::unordered_set<ObjectId>{}, {}), 0.0);
  EXPECT_EQ(
      ExactOracle::MissingFraction(std::unordered_set<ObjectId>{}, {1, 2}),
      0.0);
  EXPECT_EQ(
      ExactOracle::MissingFraction(std::vector<ObjectId>{}, {1, 2}), 0.0);
}

TEST(MissingFractionTest, CountsMissingIds) {
  std::unordered_set<ObjectId> exact = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ExactOracle::MissingFraction(exact, {1, 2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(ExactOracle::MissingFraction(exact, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(ExactOracle::MissingFraction(exact, {}), 1.0);
}

TEST(MissingFractionTest, ExtraReportedIdsDoNotReduceError) {
  std::unordered_set<ObjectId> exact = {1, 2};
  // False positives are not part of the paper's error metric.
  EXPECT_DOUBLE_EQ(ExactOracle::MissingFraction(exact, {1, 5, 6, 7}), 0.5);
}

}  // namespace
}  // namespace mobieyes::sim
