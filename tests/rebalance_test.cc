// Online rebalancing (DESIGN.md §15): the deterministic planner, the
// versioned ShardMap, the assignment run-length codec, the live-migration
// equivalence contract (a rebalanced sharded server stays observably
// identical to the monolith), and checkpoint/restore of a rebalanced
// partition — same-count round trips and N→M re-homing under the restored
// epoch.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mobieyes/core/rebalance.h"
#include "mobieyes/core/server.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/core/snapshot.h"
#include "test_harness.h"

namespace mobieyes {
namespace {

using core::CellMove;
using core::PlanRebalance;
using core::ShardMap;
using core::ShardingOptions;

// Sharded options with rebalancing on: plan every `stride` steps, act when
// the hottest shard is 1.01x the mean, move up to 16 cells per event.
core::MobiEyesOptions RebalancingOptions(int num_shards, int stride = 1) {
  core::MobiEyesOptions options;
  options.sharding.num_shards = num_shards;
  options.sharding.rebalance_stride = stride;
  options.sharding.rebalance_threshold = 1.01;
  options.sharding.rebalance_max_moves = 16;
  return options;
}

// --- Planner -----------------------------------------------------------------

TEST(RebalancePlannerTest, BalancedLoadPlansNothing) {
  // 4 cells, 2 shards, equal halves: already balanced at any threshold > 1.
  std::vector<int32_t> owners = {0, 0, 1, 1};
  std::vector<uint64_t> load = {5, 5, 5, 5};
  EXPECT_TRUE(PlanRebalance(owners, load, 2, 1.2, 8).empty());
  EXPECT_TRUE(PlanRebalance(owners, load, 2, 1.01, 8).empty());
}

TEST(RebalancePlannerTest, MovesHottestCellToColdestShard) {
  // Shard 0 carries everything; the plan sheds its hottest cell to shard 1
  // and stops as soon as the hot shard is back within threshold: moving
  // cell 1 (load 40) leaves 35 vs 40, under 1.2x the mean of 37.5.
  std::vector<int32_t> owners = {0, 0, 0, 0, 1, 1};
  std::vector<uint64_t> load = {10, 40, 20, 5, 0, 0};
  std::vector<CellMove> moves = PlanRebalance(owners, load, 2, 1.2, 8);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0], (CellMove{1, 1}));
}

TEST(RebalancePlannerTest, RespectsMoveBudget) {
  std::vector<int32_t> owners = {0, 0, 0, 0, 0, 1};
  std::vector<uint64_t> load = {9, 8, 7, 6, 5, 0};
  std::vector<CellMove> moves = PlanRebalance(owners, load, 2, 1.01, 2);
  EXPECT_EQ(moves.size(), 2u);
}

TEST(RebalancePlannerTest, ZeroAndUnattributableLoadPlanNothing) {
  std::vector<int32_t> owners = {0, 0, 1, 1};
  EXPECT_TRUE(PlanRebalance(owners, {0, 0, 0, 0}, 2, 1.2, 8).empty());
  // Mismatched vector sizes are refused rather than read out of bounds.
  EXPECT_TRUE(PlanRebalance(owners, {1, 2, 3}, 2, 1.2, 8).empty());
  EXPECT_TRUE(PlanRebalance(owners, {1, 2, 3, 4}, 1, 1.2, 8).empty());
}

TEST(RebalancePlannerTest, ReplanningAfterApplyIsStable) {
  // Applying a plan and re-planning against the same load window must not
  // oscillate the cells back: the strict gap-narrowing rule converges.
  std::vector<int32_t> owners = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<uint64_t> load = {12, 9, 3, 1, 0, 0, 0, 0};
  std::vector<CellMove> first = PlanRebalance(owners, load, 2, 1.05, 8);
  ASSERT_FALSE(first.empty());
  for (const CellMove& move : first) {
    owners[static_cast<size_t>(move.flat)] = move.to_shard;
  }
  std::vector<CellMove> second = PlanRebalance(owners, load, 2, 1.05, 8);
  for (const CellMove& move : second) {
    // Nothing moves back to shard 0 undoing the first plan.
    EXPECT_NE(move.to_shard, 0) << "flat " << move.flat;
  }
}

TEST(RebalancePlannerTest, TiesBreakByLowestFlatIndexAndShardId) {
  // Equal cell loads: the lower flat index moves. Equal shard loads: the
  // lower shard id receives. Both keep the plan order-independent.
  std::vector<int32_t> owners = {0, 0, 0, 1, 2, 2};
  std::vector<uint64_t> load = {6, 6, 6, 0, 0, 0};
  std::vector<CellMove> moves = PlanRebalance(owners, load, 3, 1.01, 1);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0], (CellMove{0, 1}));
}

// --- Spec parsing ------------------------------------------------------------

TEST(RebalanceSpecTest, ParsesAndValidates) {
  ShardingOptions sharding;
  ASSERT_TRUE(core::ParseRebalanceSpec("8:1.2:16", &sharding).ok());
  EXPECT_EQ(sharding.rebalance_stride, 8);
  EXPECT_DOUBLE_EQ(sharding.rebalance_threshold, 1.2);
  EXPECT_EQ(sharding.rebalance_max_moves, 16);

  sharding.rebalance_stride = 4;
  ASSERT_TRUE(core::ParseRebalanceSpec("off", &sharding).ok());
  EXPECT_EQ(sharding.rebalance_stride, 0);

  for (const char* bad : {"x", "0:1.2:8", "4:1.0:8", "4:1.2:0", "4:1.2:8:9",
                          "4:1.2", "4:1.2:8x"}) {
    EXPECT_FALSE(core::ParseRebalanceSpec(bad, &sharding).ok()) << bad;
  }
}

// --- Versioned ShardMap ------------------------------------------------------

TEST(ShardMapEpochTest, SeedAssignmentSurvivesEpochRoundTrip) {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  ShardingOptions options;
  options.num_shards = 4;
  ShardMap map(grid, options);
  EXPECT_EQ(map.epoch(), 0u);

  std::vector<int32_t> seed;
  map.AssignmentSnapshot(&seed);
  ASSERT_EQ(seed.size(), static_cast<size_t>(map.cell_count()));

  // An explicit table equal to the seed answers identically at epoch > 0.
  ASSERT_TRUE(map.SetAssignment(3, seed).ok());
  EXPECT_EQ(map.epoch(), 3u);
  for (int32_t j = 0; j < grid.rows(); ++j) {
    for (int32_t i = 0; i < grid.columns(); ++i) {
      EXPECT_EQ(map.ShardOf({i, j}), map.SeedOwner(grid.FlatIndex({i, j})));
    }
  }

  // Empty owners = seed reset while keeping the epoch (N→M restores).
  ASSERT_TRUE(map.SetAssignment(5, {}).ok());
  EXPECT_EQ(map.epoch(), 5u);
  std::vector<int32_t> after;
  map.AssignmentSnapshot(&after);
  EXPECT_EQ(after, seed);
}

TEST(ShardMapEpochTest, RejectsMalformedAssignmentsAndStaleEpochs) {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  ShardingOptions options;
  options.num_shards = 4;
  ShardMap map(grid, options);

  // Wrong size and out-of-range owners are refused.
  EXPECT_FALSE(map.SetAssignment(1, {0, 1, 2}).ok());
  std::vector<int32_t> bad(static_cast<size_t>(map.cell_count()), 0);
  bad[7] = 4;  // num_shards is 4
  EXPECT_FALSE(map.SetAssignment(1, bad).ok());
  bad[7] = -1;
  EXPECT_FALSE(map.SetAssignment(1, bad).ok());
  EXPECT_EQ(map.epoch(), 0u);

  // Moves must advance the epoch and stay in range.
  ASSERT_TRUE(map.ApplyMoves(1, {{0, 3}}).ok());
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.ShardOf({0, 0}), 3);
  EXPECT_FALSE(map.ApplyMoves(1, {{1, 2}}).ok());  // not greater
  EXPECT_FALSE(map.ApplyMoves(0, {{1, 2}}).ok());
  EXPECT_FALSE(map.ApplyMoves(2, {{-1, 2}}).ok());  // flat out of range
  EXPECT_FALSE(map.ApplyMoves(2, {{0, 4}}).ok());   // shard out of range
  EXPECT_EQ(map.epoch(), 1u);
}

TEST(AssignmentCodecTest, RoundTripsAndRejectsTruncation) {
  // Runs of mixed lengths, including a long tail.
  std::vector<int32_t> owners;
  for (int k = 0; k < 10; ++k) owners.push_back(k % 3);
  for (int k = 0; k < 50; ++k) owners.push_back(2);
  std::vector<uint8_t> bytes;
  core::EncodeAssignment(owners, &bytes);
  // RLE: far fewer bytes than one word per cell.
  EXPECT_LT(bytes.size(), owners.size() * 4);

  std::vector<int32_t> back;
  size_t consumed = 0;
  ASSERT_TRUE(core::DecodeAssignment(bytes.data(), bytes.size(), 3, &back,
                                     &consumed)
                  .ok());
  EXPECT_EQ(back, owners);
  EXPECT_EQ(consumed, bytes.size());

  // Every strict prefix fails cleanly.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<int32_t> scratch;
    size_t n = 0;
    EXPECT_FALSE(
        core::DecodeAssignment(bytes.data(), cut, 3, &scratch, &n).ok())
        << "prefix " << cut;
  }
  // Owner ids outside [0, num_shards) are refused at decode time.
  std::vector<int32_t> scratch;
  EXPECT_FALSE(core::DecodeAssignment(bytes.data(), bytes.size(), 2, &scratch,
                                      &consumed)
                   .ok());
}

// --- Live migration equivalence ----------------------------------------------

// Everything piles onto shard 0's row band, rebalancing fires repeatedly,
// and the sharded server must stay observably identical to a monolith twin:
// result sets, order-sensitive RQI rows, wireless traffic, and the
// co-location invariant under the rebalanced map.
TEST(RebalanceMigrationTest, RebalancedShardedServerMatchesMonolith) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 12; ++k) {
    // Low y: all of shard 0's band under the 4-way row-band split. Slow
    // upward drift keeps some churn without leaving the hot band quickly.
    specs.push_back(test::ObjectSpec({5.0 + 7.5 * k, 4.0 + (k % 3)},
                                     {0.0, 0.005 * (k % 4)},
                                     /*max_speed_in=*/0.1));
  }
  core::MobiEyesOptions mono_options;
  test::MiniDeployment mono(specs, mono_options);
  test::MiniDeployment sharded(specs, RebalancingOptions(4));
  for (ObjectId oid = 0; oid < 6; ++oid) {
    ASSERT_TRUE(mono.server().InstallQuery(oid, 12.0, 0.5).ok());
    ASSERT_TRUE(sharded.server().InstallQuery(oid, 12.0, 0.5).ok());
  }

  core::ShardRouter& router = sharded.server().router();
  for (int step = 0; step < 20; ++step) {
    mono.Tick();
    sharded.Tick();
    router.MaybeRebalance(step);

    for (QueryId qid = 0; qid < 6; ++qid) {
      const core::SqtEntry* a = mono.server().FindQuery(qid);
      const core::SqtEntry* b = sharded.server().FindQuery(qid);
      ASSERT_NE(a, nullptr) << "step " << step;
      ASSERT_NE(b, nullptr) << "step " << step;
      EXPECT_EQ(b->result, a->result) << "step " << step << " qid " << qid;

      // Co-location under the *current* (possibly rebalanced) map.
      const core::FotEntry* focal = sharded.server().FindFocal(b->focal_oid);
      ASSERT_NE(focal, nullptr);
      int home = router.ShardOfFocal(b->focal_oid);
      EXPECT_EQ(home, router.shard_map().ShardOf(focal->cell))
          << "step " << step;
      EXPECT_EQ(router.ShardOfQuery(qid), home) << "step " << step;
    }
    // RQI rows, order included, through the rebalanced ownership.
    const geo::Grid& grid = mono.grid();
    for (int32_t j = 0; j < grid.rows(); ++j) {
      for (int32_t i = 0; i < grid.columns(); ++i) {
        ASSERT_EQ(router.QueriesForCell({i, j}),
                  mono.server().rqi().QueriesForCell({i, j}))
            << "step " << step << " cell (" << i << ", " << j << ")";
      }
    }
    EXPECT_EQ(sharded.network().stats().uplink_bytes,
              mono.network().stats().uplink_bytes)
        << "step " << step;
    EXPECT_EQ(sharded.network().stats().downlink_bytes,
              mono.network().stats().downlink_bytes)
        << "step " << step;
  }

  // The skewed workload really drove rebalances and migrations.
  const core::ShardRouter::RebalanceStats& stats = router.rebalance_stats();
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.cells_moved, 0u);
  EXPECT_GT(router.shard_map().epoch(), 0u);
}

TEST(RebalanceMigrationTest, DisabledRebalancingNeverTouchesThePartition) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 8; ++k) {
    specs.push_back(test::ObjectSpec({10.0 + 10.0 * k, 5.0}, {0.0, 0.01},
                                     /*max_speed_in=*/0.1));
  }
  core::MobiEyesOptions options;
  options.sharding.num_shards = 4;  // rebalance_stride stays 0
  test::MiniDeployment d(specs, options);
  for (ObjectId oid = 0; oid < 4; ++oid) {
    ASSERT_TRUE(d.server().InstallQuery(oid, 10.0, 0.5).ok());
  }
  core::ShardRouter& router = d.server().router();
  for (int step = 0; step < 10; ++step) {
    d.Tick();
    router.MaybeRebalance(step);
  }
  EXPECT_EQ(router.shard_map().epoch(), 0u);
  EXPECT_EQ(router.rebalance_stats().events, 0u);
}

// --- Checkpoint/restore of a rebalanced partition ----------------------------

// Drives a skewed deployment until the epoch advances, checkpoints, and
// returns the store (plus the live deployment through *live for state
// comparison).
void DriveRebalancedDeployment(test::MiniDeployment* d,
                               core::Snapshot* store) {
  d->server().set_durable_store(store);
  for (ObjectId oid = 0; oid < 5; ++oid) {
    ASSERT_TRUE(d->server().InstallQuery(oid, 12.0, 0.5).ok());
  }
  core::ShardRouter& router = d->server().router();
  for (int step = 0; step < 12; ++step) {
    d->Tick();
    router.MaybeRebalance(step);
  }
  ASSERT_GT(router.shard_map().epoch(), 0u)
      << "workload failed to trigger a rebalance";
  d->server().Checkpoint();
  ASSERT_FALSE(store->checkpoint.empty());
}

std::vector<test::ObjectSpec> SkewedSpecs() {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 10; ++k) {
    specs.push_back(test::ObjectSpec({5.0 + 9.0 * k, 3.0 + (k % 4)},
                                     {0.0, 0.004 * (k % 3)},
                                     /*max_speed_in=*/0.1));
  }
  return specs;
}

TEST(RebalanceCheckpointTest, RoundTripRestoresEpochAndAssignment) {
  std::vector<test::ObjectSpec> specs = SkewedSpecs();
  test::MiniDeployment d(specs, RebalancingOptions(4));
  core::Snapshot store;
  DriveRebalancedDeployment(&d, &store);
  const ShardMap& live_map = d.server().router().shard_map();
  std::vector<int32_t> live_owners;
  live_map.AssignmentSnapshot(&live_owners);

  // Same shard count: epoch AND explicit owner table come back verbatim.
  core::MobiEyesServer restored(d.grid(), d.layout(), d.bmap(), d.network(),
                                RebalancingOptions(4));
  ASSERT_TRUE(restored.Restore(store).ok());
  const ShardMap& back_map = restored.router().shard_map();
  EXPECT_EQ(back_map.epoch(), live_map.epoch());
  std::vector<int32_t> back_owners;
  back_map.AssignmentSnapshot(&back_owners);
  EXPECT_EQ(back_owners, live_owners);

  // State re-homed under the restored assignment, queries intact.
  EXPECT_EQ(restored.query_count(), d.server().query_count());
  const core::ShardRouter& router = restored.router();
  for (QueryId qid = 0; qid < 5; ++qid) {
    const core::SqtEntry* live = d.server().FindQuery(qid);
    const core::SqtEntry* back = restored.FindQuery(qid);
    ASSERT_NE(live, nullptr);
    ASSERT_NE(back, nullptr) << "qid " << qid;
    EXPECT_EQ(back->result, live->result) << "qid " << qid;
    const core::FotEntry* focal = restored.FindFocal(back->focal_oid);
    ASSERT_NE(focal, nullptr);
    int home = router.ShardOfFocal(back->focal_oid);
    EXPECT_EQ(home, back_map.ShardOf(focal->cell)) << "qid " << qid;
    EXPECT_EQ(router.ShardOfQuery(qid), home) << "qid " << qid;
  }
  const geo::Grid& grid = d.grid();
  for (int32_t j = 0; j < grid.rows(); ++j) {
    for (int32_t i = 0; i < grid.columns(); ++i) {
      EXPECT_EQ(router.QueriesForCell({i, j}),
                d.server().router().QueriesForCell({i, j}))
          << "cell (" << i << ", " << j << ")";
    }
  }
}

TEST(RebalanceCheckpointTest, NtoMRestoreRehomesUnderRestoredEpoch) {
  std::vector<test::ObjectSpec> specs = SkewedSpecs();
  test::MiniDeployment d(specs, RebalancingOptions(4));
  core::Snapshot store;
  DriveRebalancedDeployment(&d, &store);
  const uint64_t live_epoch = d.server().router().shard_map().epoch();

  for (int restore_shards : {1, 2, 8}) {
    // The stored owner table indexes 4 shards; a different deployment falls
    // back to its own seed partition but keeps the epoch counter, so later
    // rebalances keep advancing it monotonically.
    core::MobiEyesServer restored(d.grid(), d.layout(), d.bmap(), d.network(),
                                  RebalancingOptions(restore_shards));
    ASSERT_TRUE(restored.Restore(store).ok()) << restore_shards << " shards";
    const ShardMap& map = restored.router().shard_map();
    EXPECT_EQ(map.epoch(), live_epoch) << restore_shards << " shards";
    std::vector<int32_t> owners;
    map.AssignmentSnapshot(&owners);
    for (size_t f = 0; f < owners.size(); ++f) {
      EXPECT_EQ(owners[f], map.SeedOwner(static_cast<int64_t>(f)))
          << restore_shards << " shards, flat " << f;
    }

    EXPECT_EQ(restored.query_count(), d.server().query_count());
    const core::ShardRouter& router = restored.router();
    for (QueryId qid = 0; qid < 5; ++qid) {
      const core::SqtEntry* live = d.server().FindQuery(qid);
      const core::SqtEntry* back = restored.FindQuery(qid);
      ASSERT_NE(live, nullptr);
      ASSERT_NE(back, nullptr) << restore_shards << " shards, qid " << qid;
      EXPECT_EQ(back->result, live->result)
          << restore_shards << " shards, qid " << qid;
      const core::FotEntry* focal = restored.FindFocal(back->focal_oid);
      ASSERT_NE(focal, nullptr);
      int home = router.ShardOfFocal(back->focal_oid);
      EXPECT_EQ(home, map.ShardOf(focal->cell));
      EXPECT_EQ(router.ShardOfQuery(qid), home);
    }
    // And the restored deployment keeps serving and rebalancing.
    core::MobiEyesServer* server = &restored;
    server->AdvanceTime(d.world().now() + 30.0);
    server->router().MaybeRebalance(0);
    EXPECT_GE(server->router().shard_map().epoch(), live_epoch);
  }
}

TEST(RebalanceCheckpointTest, EpochZeroCheckpointStaysVersionOne) {
  // With rebalancing off the image must remain byte-identical to the
  // pre-epoch format: same workload, rebalancing on but never triggered
  // (stride larger than the run) vs plain sharding.
  std::vector<test::ObjectSpec> specs = SkewedSpecs();
  std::vector<std::vector<uint8_t>> images;
  for (int variant = 0; variant < 2; ++variant) {
    core::MobiEyesOptions options;
    options.sharding.num_shards = 4;
    if (variant == 1) {
      options.sharding.rebalance_stride = 1000;  // enabled, never fires
      options.sharding.rebalance_threshold = 1.2;
      options.sharding.rebalance_max_moves = 4;
    }
    test::MiniDeployment d(specs, options);
    core::Snapshot store;
    d.server().set_durable_store(&store);
    for (ObjectId oid = 0; oid < 4; ++oid) {
      ASSERT_TRUE(d.server().InstallQuery(oid, 12.0, 0.5).ok());
    }
    core::ShardRouter& router = d.server().router();
    for (int step = 0; step < 8; ++step) {
      d.Tick();
      router.MaybeRebalance(step);
    }
    EXPECT_EQ(router.shard_map().epoch(), 0u);
    d.server().Checkpoint();
    images.push_back(store.checkpoint);
  }
  EXPECT_EQ(images[1], images[0]);
}

}  // namespace
}  // namespace mobieyes
