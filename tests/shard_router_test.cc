// Server sharding (DESIGN.md §10): the ShardMap partition function, the
// boundary-walk ownership handoff, the monolith-equivalence contract of the
// ShardRouter, and multi-shard checkpoint/restore (including restoring into
// a deployment with a different shard count).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mobieyes/core/server.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/core/snapshot.h"
#include "test_harness.h"

namespace mobieyes {
namespace {

using core::ShardMap;
using core::ShardPartition;
using core::ShardingOptions;

core::MobiEyesOptions ShardedOptions(int num_shards,
                                     ShardPartition partition =
                                         ShardPartition::kRowBand) {
  core::MobiEyesOptions options;
  options.sharding.num_shards = num_shards;
  options.sharding.partition = partition;
  return options;
}

// --- ShardMap ----------------------------------------------------------------

TEST(ShardMapTest, RowBandPartitionCoversEveryCellExactlyOnce) {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  for (int n : {1, 2, 3, 4, 8, 64}) {
    ShardingOptions options;
    options.num_shards = n;
    ShardMap map(grid, options);
    std::vector<int64_t> owned(static_cast<size_t>(n), 0);
    for (int32_t j = 0; j < grid.rows(); ++j) {
      for (int32_t i = 0; i < grid.columns(); ++i) {
        int s = map.ShardOf({i, j});
        ASSERT_GE(s, 0);
        ASSERT_LT(s, n);
        ++owned[static_cast<size_t>(s)];
        // Row bands: ownership depends on j only.
        EXPECT_EQ(s, map.ShardOf({0, j}));
      }
    }
    // More shards than rows leaves trailing shards empty; every other shard
    // owns at least one full row.
    int64_t total = 0;
    for (int64_t count : owned) total += count;
    EXPECT_EQ(total,
              static_cast<int64_t>(grid.rows()) * grid.columns());
  }
}

TEST(ShardMapTest, ShardsIntersectingIsExactForRowBands) {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  ShardingOptions options;
  options.num_shards = 4;
  ShardMap map(grid, options);
  for (int32_t j_lo = 0; j_lo < grid.rows(); j_lo += 2) {
    for (int32_t j_hi = j_lo; j_hi < grid.rows(); j_hi += 3) {
      geo::CellRange range{0, grid.columns() - 1, j_lo, j_hi};
      std::vector<int> shards = map.ShardsIntersecting(range);
      // Exactly the shards owning at least one cell, ascending, no dups.
      std::vector<bool> expected(4, false);
      range.ForEach(
          [&](int32_t i, int32_t j) { expected[map.ShardOf({i, j})] = true; });
      std::vector<int> want;
      for (int s = 0; s < 4; ++s) {
        if (expected[s]) want.push_back(s);
      }
      EXPECT_EQ(shards, want) << "rows [" << j_lo << ", " << j_hi << "]";
    }
  }
}

TEST(ShardMapTest, ShardsIntersectingCoversHashPartition) {
  geo::Grid grid = *geo::Grid::Make(geo::Rect{0, 0, 100, 100}, 10.0);
  ShardingOptions options;
  options.num_shards = 5;
  options.partition = ShardPartition::kHash;
  ShardMap map(grid, options);
  geo::CellRange range{1, 4, 2, 5};
  std::vector<int> shards = map.ShardsIntersecting(range);
  // Every owner of a cell in the range must be reported (a miss would lose
  // RQI registrations); the walked result must also stay sorted and unique.
  std::vector<bool> reported(5, false);
  for (int s : shards) reported[static_cast<size_t>(s)] = true;
  range.ForEach([&](int32_t i, int32_t j) {
    EXPECT_TRUE(reported[static_cast<size_t>(map.ShardOf({i, j}))]);
  });
  for (size_t k = 1; k < shards.size(); ++k) {
    EXPECT_LT(shards[k - 1], shards[k]);
  }
}

// --- Boundary-walk handoff property -----------------------------------------

// Objects that keep their focal role while marching straight through every
// row band of the grid. The sharded server must (a) migrate ownership with
// explicit handoffs, (b) keep each focal co-located with its queries, and
// (c) stay observably identical to a monolith twin fed the same workload —
// result sets, RQI rows, and wireless traffic included.
TEST(ShardRouterTest, BoundaryWalkKeepsShardedServerEquivalentToMonolith) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 10; ++k) {
    // March up in y (the row/j axis) so row-band boundaries are crossed
    // repeatedly; a few slower objects serve as non-focal targets.
    double vy = k < 5 ? 0.08 : 0.01;
    specs.push_back(test::ObjectSpec({10.0 + 9.0 * k, 5.0 + 3.0 * k},
                                     {0.0, vy},
                                     /*max_speed_in=*/0.1));
  }
  test::MiniDeployment mono(specs, ShardedOptions(1));
  test::MiniDeployment sharded(specs, ShardedOptions(4));
  const core::ShardRouter& router = sharded.server().router();
  ASSERT_EQ(router.num_shards(), 4);

  for (ObjectId oid = 0; oid < 5; ++oid) {
    ASSERT_TRUE(mono.server().InstallQuery(oid, 12.0, 0.5).ok());
    ASSERT_TRUE(sharded.server().InstallQuery(oid, 12.0, 0.5).ok());
  }

  auto expect_equivalent = [&](const std::string& context) {
    ASSERT_EQ(sharded.server().query_count(), mono.server().query_count())
        << context;
    for (QueryId qid = 0; qid < 5; ++qid) {
      const core::SqtEntry* a = mono.server().FindQuery(qid);
      const core::SqtEntry* b = sharded.server().FindQuery(qid);
      ASSERT_NE(a, nullptr) << context;
      ASSERT_NE(b, nullptr) << context;
      EXPECT_EQ(b->result, a->result) << context << " qid " << qid;
      EXPECT_EQ(b->curr_cell.i, a->curr_cell.i) << context;
      EXPECT_EQ(b->curr_cell.j, a->curr_cell.j) << context;
      EXPECT_EQ(b->mon_region.j_lo, a->mon_region.j_lo) << context;
      EXPECT_EQ(b->mon_region.j_hi, a->mon_region.j_hi) << context;

      // Co-location invariant: the query, its focal's FOT row and the
      // focal's home index all agree, and the home is the focal's cell's
      // owner.
      const core::FotEntry* focal = sharded.server().FindFocal(b->focal_oid);
      ASSERT_NE(focal, nullptr) << context;
      int home = router.ShardOfFocal(b->focal_oid);
      EXPECT_EQ(home, router.shard_map().ShardOf(focal->cell)) << context;
      EXPECT_EQ(router.ShardOfQuery(qid), home) << context;
      EXPECT_NE(router.shard(home).FindQuery(qid), nullptr) << context;
    }
    // RQI row equality on every cell: the sharded slices, read through the
    // router, must reproduce the monolith's rows element-for-element (order
    // included — broadcast order depends on it).
    const geo::Grid& grid = mono.grid();
    for (int32_t j = 0; j < grid.rows(); ++j) {
      for (int32_t i = 0; i < grid.columns(); ++i) {
        EXPECT_EQ(router.QueriesForCell({i, j}),
                  mono.server().rqi().QueriesForCell({i, j}))
            << context << " cell (" << i << ", " << j << ")";
      }
    }
    // The wireless byte streams match: clients cannot tell the deployments
    // apart.
    EXPECT_EQ(sharded.network().stats().uplink_bytes,
              mono.network().stats().uplink_bytes)
        << context;
    EXPECT_EQ(sharded.network().stats().downlink_bytes,
              mono.network().stats().downlink_bytes)
        << context;
    EXPECT_EQ(sharded.network().stats().broadcast_receptions,
              mono.network().stats().broadcast_receptions)
        << context;
  };

  expect_equivalent("after install");
  for (int step = 0; step < 25; ++step) {
    mono.Tick();
    sharded.Tick();
    expect_equivalent("step " + std::to_string(step));
  }

  // The walk really crossed partition boundaries: ownership moved, via
  // backplane handoffs, and those handoffs stayed off the wireless medium.
  const core::ShardRouter::BackplaneStats& backplane = router.backplane();
  EXPECT_GT(backplane.handoffs, 0u);
  EXPECT_GT(backplane.bytes, 0u);
  uint64_t handoffs_in = 0;
  uint64_t handoffs_out = 0;
  for (int s = 0; s < router.num_shards(); ++s) {
    handoffs_in += router.shard(s).stats().handoffs_in;
    handoffs_out += router.shard(s).stats().handoffs_out;
  }
  EXPECT_EQ(handoffs_in, backplane.handoffs);
  EXPECT_EQ(handoffs_out, backplane.handoffs);
  // The monolith's backplane is silent by definition.
  EXPECT_EQ(mono.server().router().backplane().messages, 0u);
}

// The hash partition scatters neighboring cells across shards, so nearly
// every cell change is a boundary crossing; the equivalence must hold there
// too (this exercises the multi-shard RQI fan-out much harder).
TEST(ShardRouterTest, HashPartitionWalkMatchesMonolith) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 8; ++k) {
    specs.push_back(test::ObjectSpec({12.0 + 10.0 * k, 10.0},
                                     {0.03 * (k % 3), 0.06},
                                     /*max_speed_in=*/0.1));
  }
  test::MiniDeployment mono(specs, ShardedOptions(1));
  test::MiniDeployment sharded(
      specs, ShardedOptions(3, ShardPartition::kHash));
  for (ObjectId oid = 0; oid < 4; ++oid) {
    ASSERT_TRUE(mono.server().InstallQuery(oid, 10.0, 0.5).ok());
    ASSERT_TRUE(sharded.server().InstallQuery(oid, 10.0, 0.5).ok());
  }
  mono.TickN(20);
  sharded.TickN(20);
  for (QueryId qid = 0; qid < 4; ++qid) {
    const core::SqtEntry* a = mono.server().FindQuery(qid);
    const core::SqtEntry* b = sharded.server().FindQuery(qid);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->result, a->result) << "qid " << qid;
  }
  EXPECT_EQ(sharded.network().stats().downlink_bytes,
            mono.network().stats().downlink_bytes);
  EXPECT_GT(sharded.server().router().backplane().handoffs, 0u);
}

// --- Multi-shard checkpoint/restore ------------------------------------------

// The checkpoint image is shard-count-independent: per-shard sorted chunks
// k-way merge into the same global sorted layout the monolith writes, so
// identical logical state yields identical bytes whatever the shard count.
TEST(ShardRouterTest, CheckpointImageIsByteIdenticalAcrossShardCounts) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 8; ++k) {
    specs.push_back(test::ObjectSpec({8.0 + 11.0 * k, 20.0 + 6.0 * k},
                                     {0.0, 0.07},
                                     /*max_speed_in=*/0.1));
  }
  std::vector<std::vector<uint8_t>> images;
  for (int shards : {1, 2, 4}) {
    test::MiniDeployment d(specs, ShardedOptions(shards));
    core::Snapshot store;
    d.server().set_durable_store(&store);
    for (ObjectId oid = 0; oid < 4; ++oid) {
      ASSERT_TRUE(d.server().InstallQuery(oid, 12.0, 0.5).ok());
    }
    d.TickN(12);
    d.server().Checkpoint();
    ASSERT_FALSE(store.checkpoint.empty());
    images.push_back(store.checkpoint);
  }
  EXPECT_EQ(images[1], images[0]);
  EXPECT_EQ(images[2], images[0]);
}

// A store written by an N-shard server restores into an M-shard server:
// entries re-home under the restoring deployment's shard map and the
// co-location invariant holds afterwards.
TEST(ShardRouterTest, MultiShardRestoreRehomesAcrossShardCounts) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 10; ++k) {
    specs.push_back(test::ObjectSpec({6.0 + 9.0 * k, 15.0 + 7.0 * k},
                                     {0.02, 0.05},
                                     /*max_speed_in=*/0.1));
  }
  core::MobiEyesOptions live_options = ShardedOptions(4);
  test::MiniDeployment d(specs, live_options);
  core::Snapshot store;
  store.wal_limit = 4096;
  d.server().set_durable_store(&store);
  for (ObjectId oid = 0; oid < 5; ++oid) {
    ASSERT_TRUE(d.server().InstallQuery(oid, 12.0, 0.5).ok());
  }
  d.TickN(6);
  d.server().Checkpoint();
  d.TickN(6);  // post-checkpoint uplinks land in the WAL
  ASSERT_GT(store.wal.size(), 0u);
  ASSERT_GT(d.server().router().backplane().handoffs, 0u);

  for (int restore_shards : {1, 2, 4, 8}) {
    core::MobiEyesServer restored(d.grid(), d.layout(), d.bmap(), d.network(),
                                  ShardedOptions(restore_shards));
    size_t replayed = 0;
    Status status = restored.Restore(store, &replayed);
    ASSERT_TRUE(status.ok())
        << restore_shards << " shards: " << status.ToString();
    EXPECT_EQ(replayed, store.wal.size());
    EXPECT_EQ(restored.query_count(), d.server().query_count())
        << restore_shards << " shards";
    const core::ShardRouter& router = restored.router();
    for (QueryId qid = 0; qid < 5; ++qid) {
      const core::SqtEntry* live = d.server().FindQuery(qid);
      const core::SqtEntry* back = restored.FindQuery(qid);
      ASSERT_NE(live, nullptr);
      ASSERT_NE(back, nullptr) << restore_shards << " shards, qid " << qid;
      EXPECT_EQ(back->result, live->result)
          << restore_shards << " shards, qid " << qid;
      EXPECT_EQ(back->curr_cell.j, live->curr_cell.j);
      // Re-homed co-location under the *restoring* map.
      const core::FotEntry* focal = restored.FindFocal(back->focal_oid);
      ASSERT_NE(focal, nullptr);
      int home = router.ShardOfFocal(back->focal_oid);
      EXPECT_EQ(home, router.shard_map().ShardOf(focal->cell));
      EXPECT_EQ(router.ShardOfQuery(qid), home);
    }
    // RQI rows rebuild identically whatever the restoring shard count.
    const geo::Grid& grid = d.grid();
    for (int32_t j = 0; j < grid.rows(); ++j) {
      for (int32_t i = 0; i < grid.columns(); ++i) {
        EXPECT_EQ(router.QueriesForCell({i, j}),
                  d.server().router().QueriesForCell({i, j}))
            << restore_shards << " shards, cell (" << i << ", " << j << ")";
      }
    }
  }
}

// A restored multi-shard deployment keeps serving: post-restore ticks keep
// it in lockstep with the crashed-then-restored monolith equivalent.
TEST(ShardRouterTest, MultiShardServerResumesAfterRestore) {
  std::vector<test::ObjectSpec> specs;
  for (int k = 0; k < 8; ++k) {
    specs.push_back(test::ObjectSpec({10.0 + 10.0 * k, 30.0},
                                     {0.0, 0.06},
                                     /*max_speed_in=*/0.1));
  }
  test::MiniDeployment d(specs, ShardedOptions(4));
  core::Snapshot store;
  d.server().set_durable_store(&store);
  for (ObjectId oid = 0; oid < 4; ++oid) {
    ASSERT_TRUE(d.server().InstallQuery(oid, 12.0, 0.5).ok());
  }
  d.TickN(5);
  d.server().Checkpoint();
  d.TickN(3);

  core::MobiEyesServer restored(d.grid(), d.layout(), d.bmap(), d.network(),
                                ShardedOptions(2));
  ASSERT_TRUE(restored.Restore(store).ok());
  restored.set_durable_store(&store);
  // The restored server answers exactly like the live one it replaced.
  for (QueryId qid = 0; qid < 4; ++qid) {
    auto live = d.server().QueryResult(qid);
    auto back = restored.QueryResult(qid);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, *live) << "qid " << qid;
  }
  // And it can advance time / expire / checkpoint without the old shards.
  restored.AdvanceTime(d.world().now() + 30.0);
  restored.Checkpoint();
  EXPECT_FALSE(store.checkpoint.empty());
}

}  // namespace
}  // namespace mobieyes