// Fault-injection network layer and protocol hardening: deterministic
// drops/delays/duplicates/outages/disconnects, the ack+retry uplink path,
// soft-state lease re-broadcasts, reconciliation after disconnects, and the
// end-to-end accuracy-under-loss guarantee the hardened protocol ships.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mobieyes/net/fault_injection.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"
#include "mobieyes/sim/simulation.h"
#include "test_harness.h"

namespace mobieyes::net {
namespace {

using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

uint64_t DroppedOfType(const NetworkStats& stats, MessageType type) {
  return stats.dropped_by_type[static_cast<size_t>(type)];
}

// --- FaultyNetwork unit behavior --------------------------------------------

TEST(FaultInjectionTest, InactivePlanInjectsNothing) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.uplink_drop_rate = 0.5;
  EXPECT_TRUE(plan.active());
}

TEST(FaultInjectionTest, FaultsStartOnlyAfterFirstAdvanceStep) {
  FaultPlan plan;
  plan.uplink_drop_rate = 1.0;
  FaultyNetwork network(plan);
  int server_heard = 0;
  network.set_server_handler(
      [&](ObjectId, const Message&) { ++server_heard; });

  // Before the clock starts (setup time) everything passes through.
  network.SendUplink(0, MakeMessage(PositionReport{0, Point{1, 1}}));
  EXPECT_EQ(server_heard, 1);
  EXPECT_EQ(network.stats().uplink_dropped, 0u);

  network.AdvanceStep(0);
  network.SendUplink(0, MakeMessage(PositionReport{0, Point{1, 1}}));
  EXPECT_EQ(server_heard, 1);
  EXPECT_EQ(network.stats().uplink_dropped, 1u);
  // Dropped messages never reached the medium.
  EXPECT_EQ(network.stats().uplink_messages, 1u);
  EXPECT_EQ(DroppedOfType(network.stats(), MessageType::kPositionReport), 1u);
}

TEST(FaultInjectionTest, DelayDefersDeliveryUntilDueStep) {
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.max_delay_steps = 1;  // every message is delayed by exactly one step
  FaultyNetwork network(plan);
  int received = 0;
  network.RegisterClient(7, [&](const Message&) { ++received; });
  network.AdvanceStep(0);

  EXPECT_TRUE(network.SendDownlinkTo(7, MakeMessage(FocalNotification{7, 1})));
  EXPECT_EQ(received, 0);  // in flight
  network.AdvanceStep(1);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.stats().delayed_messages, 1u);
  EXPECT_EQ(network.stats().downlink_messages, 1u);
}

TEST(FaultInjectionTest, DuplicateDeliversTwice) {
  FaultPlan plan;
  plan.duplicate_rate = 1.0;
  FaultyNetwork network(plan);
  int received = 0;
  network.RegisterClient(3, [&](const Message&) { ++received; });
  network.AdvanceStep(0);

  network.SendDownlinkTo(3, MakeMessage(FocalNotification{3, 1}));
  EXPECT_EQ(received, 2);
  EXPECT_EQ(network.stats().duplicated_messages, 1u);
  // Both copies count as transmissions on the medium.
  EXPECT_EQ(network.stats().downlink_messages, 2u);
}

TEST(FaultInjectionTest, OutageSilencesBroadcastsWhole) {
  FaultPlan plan;
  plan.outage_period_steps = 1;  // duration == period: permanently dark
  plan.outage_duration_steps = 1;
  FaultyNetwork network(plan);
  int received = 0;
  network.RegisterClient(0, [&](const Message&) { ++received; });
  network.set_coverage_query(
      [](const geo::Circle&, const std::function<void(ObjectId)>& fn) {
        fn(0);
      });
  BaseStation station{0, geo::Circle{Point{50, 50}, 30.0}};
  network.AdvanceStep(0);
  EXPECT_TRUE(network.InOutage(0, 0));

  network.Broadcast(station, MakeMessage(QueryRemoveBroadcast{{1}}));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().broadcast_dropped, 1u);
  EXPECT_EQ(network.stats().broadcast_messages, 0u);
  EXPECT_EQ(network.stats().broadcast_receptions, 0u);
}

TEST(FaultInjectionTest, ForcedDisconnectWindowCutsBothDirections) {
  FaultPlan plan;
  plan.forced_disconnect_oid = 4;
  plan.forced_disconnect_from = 1;
  plan.forced_disconnect_until = 3;
  FaultyNetwork network(plan);
  int uplinks = 0;
  int downlinks = 0;
  network.set_server_handler([&](ObjectId, const Message&) { ++uplinks; });
  network.RegisterClient(4, [&](const Message&) { ++downlinks; });

  EXPECT_FALSE(network.IsDisconnected(4, 0));
  EXPECT_TRUE(network.IsDisconnected(4, 1));
  EXPECT_TRUE(network.IsDisconnected(4, 2));
  EXPECT_FALSE(network.IsDisconnected(4, 3));
  EXPECT_FALSE(network.IsDisconnected(5, 1));  // other objects unaffected

  network.AdvanceStep(1);
  network.SendUplink(4, MakeMessage(PositionReport{4, Point{1, 1}}));
  EXPECT_FALSE(network.SendDownlinkTo(4, MakeMessage(FocalNotification{4, 1})));
  EXPECT_EQ(uplinks, 0);
  EXPECT_EQ(downlinks, 0);
  EXPECT_EQ(network.stats().uplink_dropped, 1u);
  // A downlink into a disconnected endpoint is a dead-endpoint loss, kept
  // apart from the injected link drops.
  EXPECT_EQ(network.stats().downlink_dropped, 0u);
  EXPECT_EQ(network.stats().undeliverable_by_reason[static_cast<size_t>(
                NetworkStats::UndeliverableReason::kReceiverDisconnected)],
            1u);
  EXPECT_GE(network.stats().disconnect_events, 1u);

  network.AdvanceStep(3);  // window over
  network.SendUplink(4, MakeMessage(PositionReport{4, Point{1, 1}}));
  EXPECT_TRUE(network.SendDownlinkTo(4, MakeMessage(FocalNotification{4, 1})));
  EXPECT_EQ(uplinks, 1);
  EXPECT_EQ(downlinks, 1);
}

TEST(FaultInjectionTest, UndeliverableDownlinkReturnsFalseAndCounts) {
  WirelessNetwork network;  // plain network: a routing failure, not a fault
  EXPECT_FALSE(network.SendDownlinkTo(9, MakeMessage(FocalNotification{9, 1})));
  EXPECT_EQ(network.stats().undeliverable_downlinks, 1u);
  // The transmission itself still happened and is counted.
  EXPECT_EQ(network.stats().downlink_messages, 1u);

  int received = 0;
  network.RegisterClient(9, [&](const Message&) { ++received; });
  EXPECT_TRUE(network.SendDownlinkTo(9, MakeMessage(FocalNotification{9, 1})));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.stats().undeliverable_downlinks, 1u);
}

// --- Determinism ------------------------------------------------------------

// A FaultyNetwork whose plan can fire but never does must leave traffic
// exactly as the plain network would: same deliveries, same stats, no
// spurious fault accounting.
TEST(FaultInjectionTest, HarmlessPlanMatchesPlainNetworkExactly) {
  FaultPlan harmless;
  harmless.forced_disconnect_oid = 0;
  harmless.forced_disconnect_from = 1000;  // never reached in this test
  harmless.forced_disconnect_until = 1001;
  ASSERT_TRUE(harmless.active());

  std::vector<ObjectSpec> specs = {{Point{55, 55}, Vec2{0.05, 0}},
                                   {Point{57, 55}},
                                   {Point{35, 55}, Vec2{-0.05, 0}}};
  MiniDeployment plain(specs);
  MiniDeployment faulted(specs, {}, 10.0, 20.0, harmless);
  ASSERT_NE(faulted.faulty_network(), nullptr);

  ASSERT_TRUE(plain.server().InstallQuery(0, 4.0, 1.0).ok());
  ASSERT_TRUE(faulted.server().InstallQuery(0, 4.0, 1.0).ok());
  plain.TickN(6);
  faulted.TickN(6);

  const NetworkStats& a = plain.network().stats();
  const NetworkStats& b = faulted.network().stats();
  EXPECT_EQ(a.uplink_messages, b.uplink_messages);
  EXPECT_EQ(a.downlink_messages, b.downlink_messages);
  EXPECT_EQ(a.broadcast_messages, b.broadcast_messages);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.broadcast_receptions, b.broadcast_receptions);
  EXPECT_EQ(b.total_dropped(), 0u);
  EXPECT_EQ(b.delayed_messages, 0u);
  EXPECT_EQ(b.duplicated_messages, 0u);
  for (size_t k = 0; k < specs.size(); ++k) {
    EXPECT_EQ(plain.client(static_cast<ObjectId>(k)).lqt_size(),
              faulted.client(static_cast<ObjectId>(k)).lqt_size());
  }
}

TEST(FaultInjectionTest, SameSeedSameFaults) {
  FaultPlan plan;
  plan.seed = 99;
  plan.uplink_drop_rate = 0.3;
  plan.downlink_drop_rate = 0.3;
  plan.delay_rate = 0.2;
  plan.max_delay_steps = 2;
  plan.duplicate_rate = 0.1;

  std::vector<ObjectSpec> specs = {{Point{55, 55}, Vec2{0.05, 0}},
                                   {Point{57, 55}},
                                   {Point{53, 55}, Vec2{0.03, 0.03}}};
  auto run = [&specs, &plan]() {
    MiniDeployment deployment(specs, {}, 10.0, 20.0, plan);
    EXPECT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
    deployment.TickN(10);
    return deployment.network().stats();
  };
  NetworkStats first = run();
  NetworkStats second = run();
  EXPECT_EQ(first.uplink_messages, second.uplink_messages);
  EXPECT_EQ(first.downlink_messages, second.downlink_messages);
  EXPECT_EQ(first.uplink_dropped, second.uplink_dropped);
  EXPECT_EQ(first.downlink_dropped, second.downlink_dropped);
  EXPECT_EQ(first.broadcast_dropped, second.broadcast_dropped);
  EXPECT_EQ(first.delayed_messages, second.delayed_messages);
  EXPECT_EQ(first.duplicated_messages, second.duplicated_messages);
  EXPECT_GT(first.total_dropped(), 0u);  // the plan actually fired
}

// --- Protocol hardening -----------------------------------------------------

TEST(FaultInjectionTest, ReliableUplinkAcksClearPendingInline) {
  core::MobiEyesOptions options;
  options.enable_reliable_uplink = true;
  // One object crossing a cell boundary; the fault-free ack round trip is
  // synchronous, so nothing stays pending.
  MiniDeployment deployment({{Point{15, 55}, Vec2{0.1, 0}}}, options);
  deployment.TickN(2);  // crosses x=20 on the second tick
  EXPECT_GT(deployment.network()
                .stats()
                .messages_by_type[static_cast<size_t>(
                    MessageType::kCellChangeReport)],
            0u);
  EXPECT_GT(deployment.network()
                .stats()
                .messages_by_type[static_cast<size_t>(MessageType::kUplinkAck)],
            0u);
  EXPECT_EQ(deployment.client(0).pending_uplinks(), 0u);
}

TEST(FaultInjectionTest, RetryAttemptsAreBoundedByBudget) {
  core::MobiEyesOptions options;
  options.enable_reliable_uplink = true;
  options.uplink_max_retries = 2;
  options.uplink_retry_backoff_ticks = 1;
  FaultPlan plan;
  plan.uplink_drop_rate = 1.0;  // the server never hears anything
  MiniDeployment deployment({{Point{15, 55}, Vec2{0.1, 0}}}, options, 10.0,
                            20.0, plan);

  deployment.TickN(2);  // crossing reported (and dropped) on the second tick
  ASSERT_EQ(deployment.client(0).pending_uplinks(), 1u);
  ASSERT_EQ(DroppedOfType(deployment.network().stats(),
                          MessageType::kCellChangeReport),
            1u);
  // Freeze the world (dt = 0) so only the retry clock advances: with
  // exponential backoff the budget of 2 retries is spent, then the entry is
  // abandoned — never more than 1 + uplink_max_retries transmissions.
  for (int k = 0; k < 10; ++k) deployment.Tick(0.0);
  EXPECT_EQ(DroppedOfType(deployment.network().stats(),
                          MessageType::kCellChangeReport),
            3u);
  EXPECT_EQ(deployment.client(0).pending_uplinks(), 0u);
}

TEST(FaultInjectionTest, ServerDedupsRetransmittedUplinks) {
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}});
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());

  Message first = MakeMessage(
      VelocityChangeReport{0, FocalState{Point{60, 60}, Vec2{}, 1.0}});
  first.seq = 42;
  deployment.server().OnUplink(0, first);
  ASSERT_NE(deployment.server().FindFocal(0), nullptr);
  EXPECT_EQ(deployment.server().FindFocal(0)->state.pos.x, 60.0);

  // A duplicate of seq 42 carrying fresher data must still be ignored (the
  // dedup window is per-sequence, not per-payload)...
  Message duplicate = MakeMessage(
      VelocityChangeReport{0, FocalState{Point{70, 70}, Vec2{}, 2.0}});
  duplicate.seq = 42;
  deployment.server().OnUplink(0, duplicate);
  EXPECT_EQ(deployment.server().FindFocal(0)->state.pos.x, 60.0);

  // ...while the same payload under a fresh sequence number applies.
  Message fresh = MakeMessage(
      VelocityChangeReport{0, FocalState{Point{70, 70}, Vec2{}, 2.0}});
  fresh.seq = 43;
  deployment.server().OnUplink(0, fresh);
  EXPECT_EQ(deployment.server().FindFocal(0)->state.pos.x, 70.0);
}

TEST(FaultInjectionTest, LeaseRebroadcastRecoversLostInstall) {
  core::MobiEyesOptions options;
  options.lease_duration = 60.0;  // two 30s ticks
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}}, options);
  auto qid = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  ASSERT_EQ(deployment.client(1).lqt_size(), 1u);

  // Simulate a lost install: wipe the entry behind the server's back.
  QueryRemoveBroadcast forget;
  forget.qids.push_back(*qid);
  deployment.client(1).OnDownlink(MakeMessage(forget));
  ASSERT_EQ(deployment.client(1).lqt_size(), 0u);

  // Within at most two lease periods the server's soft-state re-broadcast
  // reinstalls the query without any client-side action.
  deployment.TickN(5);
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
}

TEST(FaultInjectionTest, LeaseExpiryDropsUnrefreshedEntry) {
  // Deployment A (no leases) donates a valid install broadcast; deployment
  // B's server never learns of the query, so nothing ever refreshes it and
  // B's client must expire it after 2x the lease.
  MiniDeployment donor({{Point{55, 55}}, {Point{57, 55}}});
  auto qid = donor.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid.ok());
  const auto* entry = donor.server().FindQuery(*qid);
  ASSERT_NE(entry, nullptr);
  const auto* focal = donor.server().FindFocal(entry->focal_oid);
  ASSERT_NE(focal, nullptr);
  QueryInfo info;
  info.qid = entry->qid;
  info.focal_oid = entry->focal_oid;
  info.focal = focal->state;
  info.region = entry->region;
  info.filter_threshold = entry->filter_threshold;
  info.mon_region = entry->mon_region;
  info.focal_max_speed = focal->max_speed;

  core::MobiEyesOptions options;
  options.lease_duration = 30.0;  // one tick; expiry after two
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}}, options);
  QueryInstallBroadcast install;
  install.queries.push_back(info);
  deployment.client(1).OnDownlink(MakeMessage(install));
  ASSERT_EQ(deployment.client(1).lqt_size(), 1u);

  deployment.TickN(4);
  EXPECT_EQ(deployment.client(1).lqt_size(), 0u);
}

TEST(FaultInjectionTest, ReconciliationRebuildsLqtAfterReconnect) {
  core::MobiEyesOptions options;
  options.reconcile_period_ticks = 2;
  FaultPlan plan;
  plan.forced_disconnect_oid = 1;
  plan.forced_disconnect_from = 0;
  plan.forced_disconnect_until = 3;
  MiniDeployment deployment({{Point{55, 55}}, {Point{57, 55}}}, options, 10.0,
                            20.0, plan);

  // Start the fault clock, then install while object 1 is unreachable: it
  // misses the install broadcast entirely.
  deployment.Tick();
  ASSERT_TRUE(deployment.faulty_network()->IsDisconnected(1, 0));
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  ASSERT_EQ(deployment.client(1).lqt_size(), 0u);

  // After the window closes, the next reconciliation round trip repairs the
  // LQT from the server's RQI.
  deployment.TickN(5);
  ASSERT_FALSE(
      deployment.faulty_network()->IsDisconnected(1, deployment.step() - 1));
  EXPECT_EQ(deployment.client(1).lqt_size(), 1u);
  EXPECT_GT(deployment.network().stats().messages_by_type[static_cast<size_t>(
                MessageType::kLqtReconcileRequest)],
            0u);
}

// --- Accuracy under loss (acceptance) ---------------------------------------

sim::RunMetrics RunLossy(double drop, bool harden) {
  sim::SimulationConfig config;
  config.params.num_objects = 800;
  config.params.num_queries = 80;
  config.params.velocity_changes_per_step = 80;
  config.params.seed = 11;
  config.measure_error = true;
  config.faults.uplink_drop_rate = drop;
  config.faults.downlink_drop_rate = drop;
  if (harden) {
    config.mobieyes =
        core::HardenedOptions(config.mobieyes, config.params.time_step);
  }
  auto simulation = sim::Simulation::Make(config);
  EXPECT_TRUE(simulation.ok());
  (*simulation)->Run(16);
  return (*simulation)->metrics();
}

TEST(FaultInjectionTest,
     HardenedProtocolHolds95PercentAgreementAt10PercentDrop) {
  sim::RunMetrics base = RunLossy(0.1, /*harden=*/false);
  sim::RunMetrics hardened = RunLossy(0.1, /*harden=*/true);
  EXPECT_GT(base.network.total_dropped(), 0u);
  EXPECT_GE(hardened.AverageAgreement(), 0.95);
  EXPECT_GE(hardened.AverageAgreement(), base.AverageAgreement());
}

// --- Process-death events (crash recovery) ----------------------------------

TEST(FaultInjectionTest, ServerDownSwallowsUplinksAsUndeliverable) {
  FaultPlan plan;
  plan.server_crash_step = 5;  // any crash plan activates the fault layer
  FaultyNetwork network(plan);
  int uplinks = 0;
  network.set_server_handler([&](ObjectId, const Message&) { ++uplinks; });
  network.AdvanceStep(0);

  network.set_server_down(true);
  network.SendUplink(1, MakeMessage(PositionReport{1, Point{1, 1}}));
  EXPECT_EQ(uplinks, 0);
  EXPECT_EQ(network.stats().uplink_dropped, 0u);
  EXPECT_EQ(DroppedOfType(network.stats(), MessageType::kPositionReport), 0u);
  EXPECT_EQ(network.stats().undeliverable_by_reason[static_cast<size_t>(
                NetworkStats::UndeliverableReason::kServerDown)],
            1u);

  network.set_server_down(false);
  network.SendUplink(1, MakeMessage(PositionReport{1, Point{1, 1}}));
  EXPECT_EQ(uplinks, 1);
}

TEST(FaultInjectionTest, ForcedClientRestartFiresExactlyOnce) {
  FaultPlan plan;
  plan.forced_restart_oid = 3;
  plan.forced_restart_step = 7;
  FaultyNetwork network(plan);
  for (int64_t step = 0; step < 12; ++step) {
    for (ObjectId oid = 0; oid < 6; ++oid) {
      bool restart = network.ShouldRestartClient(oid, step);
      EXPECT_EQ(restart, oid == 3 && step == 7)
          << "oid " << oid << " step " << step;
    }
  }
}

TEST(FaultInjectionTest, RandomClientRestartsAreSeededAndRateBounded) {
  FaultPlan plan;
  plan.client_restart_rate = 0.25;
  plan.seed = 99;
  FaultyNetwork a(plan);
  FaultyNetwork b(plan);
  int restarts = 0;
  const int kObjects = 40;
  const int kSteps = 50;
  for (int64_t step = 0; step < kSteps; ++step) {
    for (ObjectId oid = 0; oid < kObjects; ++oid) {
      bool restart = a.ShouldRestartClient(oid, step);
      // Stateless hash: two networks with the same plan agree exactly.
      EXPECT_EQ(restart, b.ShouldRestartClient(oid, step));
      restarts += restart ? 1 : 0;
    }
  }
  double rate =
      static_cast<double>(restarts) / (kObjects * kSteps);
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.35);
}

}  // namespace
}  // namespace mobieyes::net
