#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/stopwatch.h"
#include "mobieyes/common/units.h"

namespace mobieyes {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("no such query");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such query");
  EXPECT_EQ(status.ToString(), "NotFound: no such query");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::InvalidArgument("bad"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    MOBIEYES_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int k = 0; k < 10000; ++k) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BoundedUintRespectsBound) {
  Rng rng(9);
  for (int k = 0; k < 10000; ++k) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUintCoversAllResidues) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int k = 0; k < 5000; ++k) {
    ++counts[rng.NextUint64(5)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 800);  // roughly uniform: expectation 1000
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, RangeDoubleWithinBounds) {
  Rng rng(13);
  for (int k = 0; k < 1000; ++k) {
    double v = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int k = 0; k < n; ++k) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParametersShiftsAndScales) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int k = 0; k < n; ++k) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) {
    if (rng.NextBernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent_a(5);
  Rng parent_b(5);
  Rng child_a = parent_a.Fork();
  Rng child_b = parent_b.Fork();
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64());
  }
}

// --- ZipfSampler ------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(5, 0.8);
  double total = 0.0;
  for (int k = 0; k < 5; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  ZipfSampler zipf(10, 0.8);
  for (int k = 1; k < 10; ++k) {
    EXPECT_LT(zipf.pmf(k), zipf.pmf(k - 1));
  }
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  ZipfSampler zipf(5, 0.8);
  EXPECT_EQ(zipf.pmf(-1), 0.0);
  EXPECT_EQ(zipf.pmf(5), 0.0);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfSampler zipf(5, 0.8);
  Rng rng(29);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int k = 0; k < n; ++k) ++counts[zipf.Sample(rng)];
  for (int k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 0.25, 1e-12);
  }
}

// --- Units ------------------------------------------------------------------

TEST(UnitsTest, MphRoundTrips) {
  EXPECT_DOUBLE_EQ(MphToMilesPerSecond(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(MilesPerSecondToMph(MphToMilesPerSecond(123.4)), 123.4);
}

// --- Stopwatch / ReentrantTimer --------------------------------------------

TEST(StopwatchTest, AccumulatesElapsedTime) {
  Stopwatch watch;
  watch.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Stop();
  EXPECT_GT(watch.total_seconds(), 0.003);
  watch.Reset();
  EXPECT_EQ(watch.total_seconds(), 0.0);
}

TEST(ReentrantTimerTest, NestedEntriesCountOnce) {
  ReentrantTimer timer;
  timer.Enter();
  timer.Enter();  // nested: must not restart the clock
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Exit();
  timer.Exit();
  double once = timer.total_seconds();
  EXPECT_GT(once, 0.003);
  EXPECT_LT(once, 1.0);
}

TEST(ReentrantTimerTest, TimedSectionGuards) {
  ReentrantTimer timer;
  {
    TimedSection outer(timer);
    TimedSection inner(timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(timer.total_seconds(), 0.001);
}

}  // namespace
}  // namespace mobieyes
