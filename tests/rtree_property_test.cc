// Property-based tests: the R*-tree is compared against a brute-force list
// model under randomized workloads of mixed inserts, deletes and updates,
// across several node capacities (parameterized suite).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/rtree/rstar_tree.h"

namespace mobieyes::rtree {
namespace {

using geo::Point;
using geo::Rect;

struct ModelEntry {
  Rect rect;
  uint64_t id;
};

// Brute-force reference model.
class ListModel {
 public:
  void Insert(const Rect& rect, uint64_t id) { entries_.push_back({rect, id}); }

  bool Delete(const Rect& rect, uint64_t id) {
    for (size_t k = 0; k < entries_.size(); ++k) {
      if (entries_[k].id == id && entries_[k].rect == rect) {
        entries_.erase(entries_.begin() + k);
        return true;
      }
    }
    return false;
  }

  std::vector<uint64_t> Search(const Rect& query) const {
    std::vector<uint64_t> out;
    for (const auto& entry : entries_) {
      if (entry.rect.Intersects(query)) out.push_back(entry.id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  size_t size() const { return entries_.size(); }
  const std::vector<ModelEntry>& entries() const { return entries_; }

 private:
  std::vector<ModelEntry> entries_;
};

Rect RandomRect(Rng& rng) {
  return Rect{rng.NextDouble(0, 95), rng.NextDouble(0, 95),
              rng.NextDouble(0, 5), rng.NextDouble(0, 5)};
}

class RStarTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RStarTreePropertyTest, MatchesListModelUnderRandomWorkload) {
  RStarTree::Options options;
  options.max_entries = GetParam();
  RStarTree tree(options);
  ListModel model;
  Rng rng(1000 + GetParam());

  uint64_t next_id = 0;
  for (int op = 0; op < 3000; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.55 || model.size() == 0) {
      Rect r = RandomRect(rng);
      tree.Insert(r, next_id);
      model.Insert(r, next_id);
      ++next_id;
    } else if (dice < 0.8) {
      // Delete a random existing entry.
      const auto& entry =
          model.entries()[rng.NextUint64(model.entries().size())];
      Rect rect = entry.rect;
      uint64_t id = entry.id;
      ASSERT_TRUE(tree.Delete(rect, id).ok());
      ASSERT_TRUE(model.Delete(rect, id));
    } else {
      // Update (move) a random entry.
      const auto& entry =
          model.entries()[rng.NextUint64(model.entries().size())];
      Rect old_rect = entry.rect;
      uint64_t id = entry.id;
      Rect new_rect = RandomRect(rng);
      ASSERT_TRUE(tree.Update(old_rect, new_rect, id).ok());
      ASSERT_TRUE(model.Delete(old_rect, id));
      model.Insert(new_rect, id);
    }

    ASSERT_EQ(tree.size(), model.size());
    if (op % 100 == 99) {
      Status invariants = tree.CheckInvariants();
      ASSERT_TRUE(invariants.ok()) << invariants.ToString();
      // Cross-check three random range queries.
      for (int q = 0; q < 3; ++q) {
        Rect query{rng.NextDouble(-5, 90), rng.NextDouble(-5, 90),
                   rng.NextDouble(0, 30), rng.NextDouble(0, 30)};
        std::vector<uint64_t> got;
        tree.SearchIntersects(query, &got);
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, model.Search(query));
      }
    }
  }
}

TEST_P(RStarTreePropertyTest, PointQueriesMatchModel) {
  RStarTree::Options options;
  options.max_entries = GetParam();
  RStarTree tree(options);
  ListModel model;
  Rng rng(2000 + GetParam());

  for (uint64_t k = 0; k < 500; ++k) {
    Rect r = RandomRect(rng);
    tree.Insert(r, k);
    model.Insert(r, k);
  }
  for (int q = 0; q < 200; ++q) {
    Point p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    std::vector<uint64_t> got;
    tree.SearchContainsPoint(p, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, model.Search(Rect{p.x, p.y, 0, 0}));
  }
}

TEST_P(RStarTreePropertyTest, HeightStaysLogarithmic) {
  RStarTree::Options options;
  options.max_entries = GetParam();
  RStarTree tree(options);
  Rng rng(3000 + GetParam());
  const int n = 2000;
  for (uint64_t k = 0; k < n; ++k) {
    tree.Insert(RandomRect(rng), k);
  }
  // ceil(log_m(n)) with minimum fill m = max(2, 0.4 * M) is a safe bound.
  int min_fill = std::max(2, static_cast<int>(options.max_entries * 0.4));
  int bound = 2;
  for (int cap = min_fill; cap < n; cap *= min_fill) ++bound;
  EXPECT_LE(tree.height(), bound);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(NodeCapacities, RStarTreePropertyTest,
                         ::testing::Values(4, 8, 16, 32),
                         [](const auto& info) {
                           return "Max" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mobieyes::rtree
