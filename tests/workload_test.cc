#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mobieyes/sim/workload.h"

namespace mobieyes::sim {
namespace {

TEST(SimulationParamsTest, DefaultsMatchTable1) {
  SimulationParams params;
  EXPECT_DOUBLE_EQ(params.time_step, 30.0);
  EXPECT_DOUBLE_EQ(params.alpha, 5.0);
  EXPECT_EQ(params.num_objects, 10000);
  EXPECT_EQ(params.num_queries, 1000);
  EXPECT_EQ(params.velocity_changes_per_step, 1000);
  EXPECT_DOUBLE_EQ(params.area_square_miles, 100000.0);
  EXPECT_DOUBLE_EQ(params.base_station_side, 10.0);
  EXPECT_DOUBLE_EQ(params.query_selectivity, 0.75);
  EXPECT_EQ(params.query_radius_means,
            (std::vector<Miles>{3.0, 2.0, 1.0, 4.0, 5.0}));
  EXPECT_EQ(params.max_speeds_mph,
            (std::vector<double>{100.0, 50.0, 150.0, 200.0, 250.0}));
  EXPECT_DOUBLE_EQ(params.zipf_theta, 0.8);
  EXPECT_TRUE(params.Validate().ok());
}

TEST(SimulationParamsTest, SideIsSqrtOfArea) {
  SimulationParams params;
  EXPECT_NEAR(params.side(), 316.2278, 1e-3);
  geo::Rect universe = params.universe();
  EXPECT_DOUBLE_EQ(universe.Area(), 100000.0);
}

TEST(SimulationParamsTest, ValidateCatchesBadValues) {
  SimulationParams params;
  params.alpha = -1;
  EXPECT_FALSE(params.Validate().ok());
  params = SimulationParams{};
  params.num_objects = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = SimulationParams{};
  params.query_selectivity = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params = SimulationParams{};
  params.time_step = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = SimulationParams{};
  params.radius_factor = 0;
  EXPECT_FALSE(params.Validate().ok());
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : rng_(101) {
    params_.num_objects = 2000;
    params_.num_queries = 300;
    workload_ = GenerateWorkload(params_, rng_);
  }
  SimulationParams params_;
  Rng rng_;
  Workload workload_;
};

TEST_F(WorkloadTest, GeneratesRequestedCounts) {
  EXPECT_EQ(workload_.objects.size(), 2000u);
  EXPECT_EQ(workload_.queries.size(), 300u);
}

TEST_F(WorkloadTest, ObjectsHaveDenseIdsAndValidState) {
  geo::Rect universe = params_.universe();
  for (size_t k = 0; k < workload_.objects.size(); ++k) {
    const auto& object = workload_.objects[k];
    EXPECT_EQ(object.oid, static_cast<ObjectId>(k));
    EXPECT_TRUE(universe.Contains(object.pos));
    EXPECT_GE(object.attr, 0.0);
    EXPECT_LT(object.attr, 1.0);
    EXPECT_GT(object.max_speed, 0.0);
    EXPECT_LE(object.vel.Norm(), object.max_speed + 1e-12);
  }
}

TEST_F(WorkloadTest, MaxSpeedsComeFromTable1List) {
  std::set<double> speeds;
  for (const auto& object : workload_.objects) {
    speeds.insert(MilesPerSecondToMph(object.max_speed));
  }
  for (double mph : speeds) {
    bool in_list = false;
    for (double allowed : params_.max_speeds_mph) {
      if (std::abs(mph - allowed) < 1e-9) in_list = true;
    }
    EXPECT_TRUE(in_list) << mph;
  }
  // Zipf(0.8) over {100, 50, ...}: 100 mph must be the most common cap.
  int count_100 = 0;
  for (const auto& object : workload_.objects) {
    if (std::abs(MilesPerSecondToMph(object.max_speed) - 100.0) < 1e-9) {
      ++count_100;
    }
  }
  EXPECT_GT(count_100, 2000 / 4);
}

TEST_F(WorkloadTest, QueriesReferenceValidFocalsWithSelectivity) {
  for (const auto& query : workload_.queries) {
    EXPECT_GE(query.focal_oid, 0);
    EXPECT_LT(query.focal_oid, 2000);
    EXPECT_TRUE(query.region.valid());
    EXPECT_EQ(query.region.shape, geo::QueryRegion::Shape::kCircle);
    EXPECT_DOUBLE_EQ(query.filter_threshold, 0.75);
  }
}

TEST_F(WorkloadTest, RadiusDistributionCentersOnZipfMeans) {
  double sum = 0.0;
  for (const auto& query : workload_.queries) sum += query.region.radius;
  double mean = sum / workload_.queries.size();
  // Expected mean = sum over zipf pmf of the means in {3,2,1,4,5} (~2.7);
  // allow generous sampling slack.
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 3.5);
}

TEST_F(WorkloadTest, RadiusFactorScalesRadii) {
  SimulationParams scaled = params_;
  scaled.radius_factor = 2.0;
  Rng rng(101);  // same seed: identical draws before scaling
  Workload doubled = GenerateWorkload(scaled, rng);
  ASSERT_EQ(doubled.queries.size(), workload_.queries.size());
  for (size_t k = 0; k < doubled.queries.size(); ++k) {
    EXPECT_NEAR(doubled.queries[k].region.radius,
                2.0 * workload_.queries[k].region.radius,
                1e-9);
  }
}

TEST_F(WorkloadTest, DeterministicGivenSeed) {
  Rng rng(101);
  Workload again = GenerateWorkload(params_, rng);
  ASSERT_EQ(again.objects.size(), workload_.objects.size());
  for (size_t k = 0; k < again.objects.size(); ++k) {
    EXPECT_EQ(again.objects[k].pos, workload_.objects[k].pos);
  }
  for (size_t k = 0; k < again.queries.size(); ++k) {
    EXPECT_EQ(again.queries[k].focal_oid, workload_.queries[k].focal_oid);
    EXPECT_DOUBLE_EQ(again.queries[k].region.radius,
                     workload_.queries[k].region.radius);
  }
}

TEST(WorkloadHotspotTest, ValidatesHotspotParameters) {
  SimulationParams params;
  params.object_distribution = ObjectDistribution::kHotspot;
  EXPECT_TRUE(params.Validate().ok());
  params.num_hotspots = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = SimulationParams{};
  params.object_distribution = ObjectDistribution::kHotspot;
  params.hotspot_weight = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params.hotspot_weight = 0.8;
  params.hotspot_sigma_fraction = 0.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(WorkloadHotspotTest, HotspotPositionsAreSkewed) {
  SimulationParams uniform;
  uniform.num_objects = 4000;
  uniform.num_queries = 0;
  SimulationParams hotspot = uniform;
  hotspot.object_distribution = ObjectDistribution::kHotspot;
  hotspot.num_hotspots = 3;
  hotspot.hotspot_weight = 0.9;

  Rng rng_a(7);
  Rng rng_b(7);
  Workload flat = GenerateWorkload(uniform, rng_a);
  Workload skewed = GenerateWorkload(hotspot, rng_b);

  // Skew measure: occupancy of a coarse grid. The hotspot population must
  // concentrate far more objects into its busiest bucket.
  auto max_bucket = [&](const Workload& workload) {
    std::vector<int> counts(100, 0);
    double side = uniform.side();
    for (const auto& object : workload.objects) {
      int i = std::min(9, static_cast<int>(object.pos.x / side * 10));
      int j = std::min(9, static_cast<int>(object.pos.y / side * 10));
      ++counts[j * 10 + i];
    }
    return *std::max_element(counts.begin(), counts.end());
  };
  EXPECT_GT(max_bucket(skewed), 2 * max_bucket(flat));

  // Positions stay inside the universe despite the gaussian tails.
  geo::Rect universe = hotspot.universe();
  for (const auto& object : skewed.objects) {
    EXPECT_TRUE(universe.Contains(object.pos));
  }
}

TEST(WorkloadHotspotTest, ZeroWeightDegeneratesToUniform) {
  SimulationParams params;
  params.num_objects = 100;
  params.num_queries = 10;
  params.object_distribution = ObjectDistribution::kHotspot;
  params.hotspot_weight = 0.0;
  Rng rng(11);
  Workload workload = GenerateWorkload(params, rng);
  EXPECT_EQ(workload.objects.size(), 100u);  // draws fine, no hotspot pulls
}

TEST(WorkloadEdgeTest, RadiiAreClampedPositive) {
  SimulationParams params;
  params.num_objects = 10;
  params.num_queries = 2000;
  params.query_radius_means = {0.05};  // Normal tail would go negative
  Rng rng(103);
  Workload workload = GenerateWorkload(params, rng);
  for (const auto& query : workload.queries) {
    EXPECT_GE(query.region.radius, 0.1);
  }
}

}  // namespace
}  // namespace mobieyes::sim
