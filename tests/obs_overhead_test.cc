// Overhead guard for the observability layer. The contract in DESIGN.md is
// that disabled instrumentation is nearly free: a TRACE_SPAN against a null
// recorder is one pointer test per scope, and a simulation built with
// ObservabilityOptions all off takes the exact pre-obs hot path. This test
// pins that with wall-clock measurements, so a future "just take the mutex
// in Increment" change fails loudly.
//
// Methodology: interleave the two variants A/B/A/B... and compare the
// minimum per-rep time of each. Minimum-of-reps is robust against one-sided
// noise (scheduler preemption only ever makes a rep slower), and the
// interleaving cancels slow drift (thermal, frequency scaling). The
// threshold is 5% as stated in the issue; the real disabled overhead is a
// predicted-not-taken branch, far below measurement noise on this workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::obs {
namespace {

using geo::Grid;
using geo::Point;
using geo::Rect;
using mobility::ObjectState;
using mobility::World;

constexpr double kSide = 316.227766;  // Table 1 area, 100000 sq miles
constexpr int kObjects = 20000;
constexpr int kReps = 7;
constexpr int kStepsPerRep = 4;

World MakeWorld(const Grid& grid, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectState> objects;
  objects.reserve(kObjects);
  for (int k = 0; k < kObjects; ++k) {
    ObjectState object;
    object.oid = static_cast<ObjectId>(k);
    object.pos = Point{rng.NextDouble(0, kSide), rng.NextDouble(0, kSide)};
    object.max_speed = rng.NextDouble(0.01, 0.07);
    object.vel = {rng.NextDouble(-0.05, 0.05), rng.NextDouble(-0.05, 0.05)};
    objects.push_back(object);
  }
  return *World::Make(grid, std::move(objects));
}

// Minimum time of one rep (kStepsPerRep world steps), in nanoseconds.
// `trace` is null for the disabled variant — the same pointer shape the
// simulation uses when ObservabilityOptions are off.
double MinRepNanos(World& world, Rng& rng, TraceRecorder* trace) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    if (trace != nullptr) trace->Clear();  // don't grow across reps
    Clock::time_point start = Clock::now();
    for (int step = 0; step < kStepsPerRep; ++step) {
      TRACE_SPAN(trace, "world.step");
      world.Step(30.0, kObjects / 10, rng);
    }
    double nanos = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    best = std::min(best, nanos);
  }
  return best;
}

TEST(ObsOverheadTest, DisabledTraceSpanCostsUnderFivePercent) {
  Grid grid = *Grid::Make(Rect{0, 0, kSide, kSide}, 5.0);
  World plain_world = MakeWorld(grid, 1);
  World traced_world = MakeWorld(grid, 1);
  Rng plain_rng(2);
  Rng traced_rng(2);

  // Warm both variants once (page faults, cache) before measuring.
  MinRepNanos(plain_world, plain_rng, nullptr);
  MinRepNanos(traced_world, traced_rng, nullptr);

  // Interleaved min-of-reps: alternate variants so drift hits both.
  double plain_best = 1e300;
  double disabled_best = 1e300;
  for (int round = 0; round < 3; ++round) {
    plain_best =
        std::min(plain_best, MinRepNanos(plain_world, plain_rng, nullptr));
    TraceRecorder* null_recorder = nullptr;
    disabled_best = std::min(
        disabled_best, MinRepNanos(traced_world, traced_rng, null_recorder));
  }

  // Both loops compile the TRACE_SPAN; the "plain" one differs only in
  // having a literal nullptr the compiler can fold away entirely, so this
  // compares folded-out vs runtime-checked — the cost a caller pays for
  // keeping instrumentation compiled in but switched off.
  EXPECT_LT(disabled_best, plain_best * 1.05)
      << "disabled TRACE_SPAN overhead above 5%: plain=" << plain_best
      << "ns vs disabled=" << disabled_best << "ns";
  // Sanity: the measurement itself did real work.
  EXPECT_GT(plain_best, 0.0);
}

TEST(ObsOverheadTest, EnabledTraceSpanRecordsWithoutDistortion) {
  Grid grid = *Grid::Make(Rect{0, 0, kSide, kSide}, 5.0);
  World world = MakeWorld(grid, 1);
  Rng rng(2);
  TraceRecorder recorder;
  double enabled_best = MinRepNanos(world, rng, &recorder);
  EXPECT_GT(enabled_best, 0.0);
  // Cleared after each rep; the last rep's spans remain.
  EXPECT_EQ(recorder.events().size(), static_cast<size_t>(kStepsPerRep));
  for (const TraceEvent& event : recorder.events()) {
    EXPECT_STREQ(event.name, "world.step");
  }
}

}  // namespace
}  // namespace mobieyes::obs
