#ifndef MOBIEYES_TESTS_TEST_HARNESS_H_
#define MOBIEYES_TESTS_TEST_HARNESS_H_

// Shared fixture for protocol-level tests: a small fully-wired MobiEyes
// deployment (grid, base stations, world, network, server, one client per
// object) with hand-placed objects and a deterministic step driver.

#include <memory>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/core/client.h"
#include "mobieyes/core/options.h"
#include "mobieyes/core/server.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/fault_injection.h"
#include "mobieyes/net/network.h"

namespace mobieyes::test {

struct ObjectSpec {
  // NOLINTNEXTLINE(google-explicit-constructor): terse test setup.
  ObjectSpec(geo::Point pos_in, geo::Vec2 vel_in = {},
             double max_speed_in = 1.0, double attr_in = 0.0)
      : pos(pos_in), vel(vel_in), max_speed(max_speed_in), attr(attr_in) {}

  geo::Point pos;
  geo::Vec2 vel;
  double max_speed;  // miles/second
  double attr;       // satisfies any filter by default
};

// A miniature deployment over a 100x100 universe with alpha = 10 and base
// station side 20 (overridable). Objects get dense ids in spec order. An
// active FaultPlan swaps in a net::FaultyNetwork; Tick drives its fault
// clock, so (as in the full simulation) setup traffic is unfaulted and
// faults start with the first tick.
class MiniDeployment {
 public:
  explicit MiniDeployment(const std::vector<ObjectSpec>& specs,
                          core::MobiEyesOptions options = {},
                          double alpha = 10.0,
                          double base_station_side = 20.0,
                          net::FaultPlan faults = {})
      : rng_(7) {
    geo::Rect universe{0, 0, 100, 100};
    grid_ = std::make_unique<geo::Grid>(*geo::Grid::Make(universe, alpha));
    layout_ = std::make_unique<net::BaseStationLayout>(
        *net::BaseStationLayout::Make(universe, base_station_side));
    bmap_ = std::make_unique<net::Bmap>(*net::Bmap::Make(*grid_, *layout_));

    std::vector<mobility::ObjectState> objects;
    for (size_t k = 0; k < specs.size(); ++k) {
      mobility::ObjectState object;
      object.oid = static_cast<ObjectId>(k);
      object.pos = specs[k].pos;
      object.vel = specs[k].vel;
      object.max_speed = specs[k].max_speed;
      object.attr = specs[k].attr;
      objects.push_back(object);
    }
    world_ = std::make_unique<mobility::World>(
        *mobility::World::Make(*grid_, std::move(objects)));

    if (faults.active()) {
      auto faulty = std::make_unique<net::FaultyNetwork>(faults);
      faulty_ = faulty.get();
      network_ = std::move(faulty);
    } else {
      network_ = std::make_unique<net::WirelessNetwork>();
    }
    network_->set_coverage_query(
        [this](const geo::Circle& circle,
               const std::function<void(ObjectId)>& fn) {
          world_->ForEachObjectInCircle(circle, fn);
        });

    server_ = std::make_unique<core::MobiEyesServer>(*grid_, *layout_, *bmap_,
                                                     *network_, options);
    network_->set_server_handler(
        [this](ObjectId from, const net::Message& message) {
          server_->OnUplink(from, message);
        });

    for (size_t k = 0; k < specs.size(); ++k) {
      clients_.push_back(std::make_unique<core::MobiEyesClient>(
          *world_, static_cast<ObjectId>(k), *network_, options));
      core::MobiEyesClient* client = clients_.back().get();
      network_->RegisterClient(static_cast<ObjectId>(k),
                               [client](const net::Message& message) {
                                 client->OnDownlink(message);
                               });
    }
  }

  // One simulation step: advance the world (no random velocity re-draws so
  // tests stay deterministic) and run every client's per-step logic.
  void Tick(Seconds dt = 30.0) {
    world_->Step(dt, /*velocity_changes=*/0, rng_);
    if (faulty_ != nullptr) faulty_->AdvanceStep(step_++);
    server_->AdvanceTime(world_->now());
    for (auto& client : clients_) client->OnTick();
  }

  void TickN(int steps, Seconds dt = 30.0) {
    for (int k = 0; k < steps; ++k) Tick(dt);
  }

  geo::Grid& grid() { return *grid_; }
  net::BaseStationLayout& layout() { return *layout_; }
  net::Bmap& bmap() { return *bmap_; }
  mobility::World& world() { return *world_; }
  net::WirelessNetwork& network() { return *network_; }
  // Null unless the deployment was built with an active FaultPlan.
  net::FaultyNetwork* faulty_network() { return faulty_; }
  int64_t step() const { return step_; }
  core::MobiEyesServer& server() { return *server_; }
  core::MobiEyesClient& client(ObjectId oid) {
    return *clients_[static_cast<size_t>(oid)];
  }

 private:
  Rng rng_;
  net::FaultyNetwork* faulty_ = nullptr;  // alias of network_ when faulted
  int64_t step_ = 0;
  std::unique_ptr<geo::Grid> grid_;
  std::unique_ptr<net::BaseStationLayout> layout_;
  std::unique_ptr<net::Bmap> bmap_;
  std::unique_ptr<mobility::World> world_;
  std::unique_ptr<net::WirelessNetwork> network_;
  std::unique_ptr<core::MobiEyesServer> server_;
  std::vector<std::unique_ptr<core::MobiEyesClient>> clients_;
};

}  // namespace mobieyes::test

#endif  // MOBIEYES_TESTS_TEST_HARNESS_H_
