#include <gtest/gtest.h>

#include "mobieyes/net/message.h"

namespace mobieyes::net {
namespace {

TEST(MessageTest, MakeMessageDeducesType) {
  EXPECT_EQ(MakeMessage(QueryInstallRequest{}).type,
            MessageType::kQueryInstallRequest);
  EXPECT_EQ(MakeMessage(PositionReport{}).type, MessageType::kPositionReport);
  EXPECT_EQ(MakeMessage(PositionVelocityReport{}).type,
            MessageType::kPositionVelocityReport);
  EXPECT_EQ(MakeMessage(VelocityChangeReport{}).type,
            MessageType::kVelocityChangeReport);
  EXPECT_EQ(MakeMessage(CellChangeReport{}).type,
            MessageType::kCellChangeReport);
  EXPECT_EQ(MakeMessage(ResultBitmapReport{}).type,
            MessageType::kResultBitmapReport);
  EXPECT_EQ(MakeMessage(FocalNotification{}).type,
            MessageType::kFocalNotification);
  EXPECT_EQ(MakeMessage(PositionVelocityRequest{}).type,
            MessageType::kPositionVelocityRequest);
  EXPECT_EQ(MakeMessage(QueryInstallBroadcast{}).type,
            MessageType::kQueryInstallBroadcast);
  EXPECT_EQ(MakeMessage(VelocityChangeBroadcast{}).type,
            MessageType::kVelocityChangeBroadcast);
  EXPECT_EQ(MakeMessage(QueryUpdateBroadcast{}).type,
            MessageType::kQueryUpdateBroadcast);
  EXPECT_EQ(MakeMessage(QueryRemoveBroadcast{}).type,
            MessageType::kQueryRemoveBroadcast);
  EXPECT_EQ(MakeMessage(NewQueriesNotification{}).type,
            MessageType::kNewQueriesNotification);
}

TEST(MessageTest, FixedSizePayloads) {
  EXPECT_EQ(WireSizeBytes(MakeMessage(PositionReport{})),
            kHeaderBytes + kIdBytes + kPointBytes);
  EXPECT_EQ(WireSizeBytes(MakeMessage(VelocityChangeReport{})),
            kHeaderBytes + kIdBytes + kFocalStateBytes);
  EXPECT_EQ(WireSizeBytes(MakeMessage(CellChangeReport{})),
            kHeaderBytes + kIdBytes + 2 * kCellBytes);
  EXPECT_EQ(WireSizeBytes(MakeMessage(FocalNotification{})),
            kHeaderBytes + 2 * kIdBytes);
  EXPECT_EQ(WireSizeBytes(MakeMessage(PositionVelocityRequest{})),
            kHeaderBytes + kIdBytes);
}

TEST(MessageTest, BroadcastSizeScalesWithQueryCount) {
  QueryInstallBroadcast broadcast;
  size_t empty = WireSizeBytes(MakeMessage(broadcast));
  broadcast.queries.resize(3);
  size_t three = WireSizeBytes(MakeMessage(broadcast));
  EXPECT_EQ(three - empty, 3 * kQueryInfoBytes);
}

TEST(MessageTest, ResultBitmapRoundsBitsUpToBytes) {
  ResultBitmapReport report;
  report.qids.resize(1);
  size_t one = WireSizeBytes(MakeMessage(report));
  EXPECT_EQ(one, kHeaderBytes + kIdBytes + kIdBytes + 1);
  report.qids.resize(8);
  EXPECT_EQ(WireSizeBytes(MakeMessage(report)),
            kHeaderBytes + kIdBytes + 8 * kIdBytes + 1);
  report.qids.resize(9);
  EXPECT_EQ(WireSizeBytes(MakeMessage(report)),
            kHeaderBytes + kIdBytes + 9 * kIdBytes + 2);
}

TEST(MessageTest, LazyVelocityBroadcastCarriesQueryInfoOnce) {
  VelocityChangeBroadcast eager;
  size_t eager_size = WireSizeBytes(MakeMessage(eager));
  EXPECT_EQ(eager_size, kHeaderBytes + kIdBytes + kFocalStateBytes);

  VelocityChangeBroadcast lazy;
  lazy.carries_query_info = true;
  lazy.queries.resize(2);
  // The focal kinematics are shared: each query adds only its static part.
  EXPECT_EQ(WireSizeBytes(MakeMessage(lazy)),
            eager_size + 2 * (kQueryInfoBytes - kFocalStateBytes));
}

TEST(MessageTest, PredictPositionExtrapolatesLinearly) {
  FocalState state;
  state.pos = geo::Point{10.0, 20.0};
  state.vel = geo::Vec2{1.0, -2.0};
  state.tm = 100.0;
  geo::Point predicted = state.PredictPosition(103.0);
  EXPECT_DOUBLE_EQ(predicted.x, 13.0);
  EXPECT_DOUBLE_EQ(predicted.y, 14.0);
  // At the recording time the prediction is the recorded position.
  geo::Point same = state.PredictPosition(100.0);
  EXPECT_DOUBLE_EQ(same.x, 10.0);
  EXPECT_DOUBLE_EQ(same.y, 20.0);
}

TEST(MessageTest, TypeNamesAreDistinct) {
  EXPECT_STREQ(MessageTypeName(MessageType::kPositionReport),
               "PositionReport");
  EXPECT_STREQ(MessageTypeName(MessageType::kQueryInstallBroadcast),
               "QueryInstallBroadcast");
  EXPECT_STRNE(MessageTypeName(MessageType::kCellChangeReport),
               MessageTypeName(MessageType::kVelocityChangeReport));
}

}  // namespace
}  // namespace mobieyes::net
