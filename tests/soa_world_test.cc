// Tests pinning the data-oriented World rewrite (DESIGN.md §11): the SoA
// state plus CSR cell spans must be bit-for-bit equivalent to the
// straightforward array-of-structs simulation it replaced, and the span
// index must stay a canonical partition of the object set under churn.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/geo/query_region.h"
#include "mobieyes/mobility/motion_model.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/sim/oracle.h"

namespace {

using mobieyes::ObjectId;
using mobieyes::Rng;
using mobieyes::Seconds;
using mobieyes::geo::CellCoord;
using mobieyes::geo::Circle;
using mobieyes::geo::Grid;
using mobieyes::geo::Point;
using mobieyes::geo::QueryRegion;
using mobieyes::geo::Rect;
using mobieyes::geo::Vec2;
using mobieyes::mobility::ObjectState;
using mobieyes::mobility::RandomVelocityModel;
using mobieyes::mobility::World;
using mobieyes::sim::ExactOracle;

constexpr double kSide = 100.0;

Grid MakeGrid() { return *Grid::Make(Rect{0, 0, kSide, kSide}, 10.0); }

std::vector<ObjectState> MakeObjects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectState> objects;
  objects.reserve(n);
  for (int k = 0; k < n; ++k) {
    ObjectState object;
    object.oid = static_cast<ObjectId>(k);
    object.pos = Point{rng.NextDouble(0, kSide), rng.NextDouble(0, kSide)};
    object.vel = {rng.NextDouble(-2, 2), rng.NextDouble(-2, 2)};
    object.max_speed = rng.NextDouble(0.5, 3.0);
    object.attr = rng.NextDouble(0, 1);
    objects.push_back(object);
  }
  return objects;
}

// Array-of-structs reference simulation: the pre-SoA World::Step semantics,
// re-implemented over plain ObjectState structs with the exact same RNG
// consumption order (partial Fisher-Yates over a persistent identity
// buffer, then angle/speed per redraw, then a reflecting advance).
class AosReference {
 public:
  AosReference(const Grid& grid, std::vector<ObjectState> objects)
      : grid_(&grid), objects_(std::move(objects)) {
    pick_buffer_.reserve(objects_.size());
    for (size_t k = 0; k < objects_.size(); ++k) {
      pick_buffer_.push_back(static_cast<ObjectId>(k));
    }
  }

  void Step(Seconds dt, int velocity_changes, Rng& rng) {
    const auto n = static_cast<uint64_t>(objects_.size());
    const auto changes = static_cast<uint64_t>(
        std::min<int64_t>(velocity_changes, static_cast<int64_t>(n)));
    for (uint64_t k = 0; k < changes; ++k) {
      uint64_t pick = k + rng.NextUint64(n - k);
      std::swap(pick_buffer_[k], pick_buffer_[pick]);
      RandomizeVelocity(objects_[static_cast<size_t>(pick_buffer_[k])], rng);
    }
    for (ObjectState& object : objects_) {
      RandomVelocityModel::Advance(object, dt, grid_->universe());
      object.cell = grid_->CellOf(object.pos);
    }
  }

  const std::vector<ObjectState>& objects() const { return objects_; }

 private:
  static void RandomizeVelocity(ObjectState& object, Rng& rng) {
    RandomVelocityModel::RandomizeVelocity(object, rng);
  }

  const Grid* grid_;
  std::vector<ObjectState> objects_;
  std::vector<ObjectId> pick_buffer_;
};

// The SoA world and the AoS reference must stay bit-identical — positions,
// velocities and cells compared with operator== on doubles, not a
// tolerance — across many steps of mixed motion and velocity churn.
TEST(SoaWorldTest, BitIdenticalToAosReferenceAcrossSteps) {
  Grid grid = MakeGrid();
  const int n = 400;
  std::vector<ObjectState> initial = MakeObjects(n, 11);
  auto world = World::Make(grid, initial);
  ASSERT_TRUE(world.ok());
  AosReference reference(grid, initial);

  Rng world_rng(23);
  Rng reference_rng(23);
  for (int step = 0; step < 60; ++step) {
    world->Step(1.5, n / 8, world_rng);
    reference.Step(1.5, n / 8, reference_rng);
    for (int k = 0; k < n; ++k) {
      const auto oid = static_cast<ObjectId>(k);
      const ObjectState& expected = reference.objects()[k];
      const Point pos = world->position(oid);
      const Vec2 vel = world->velocity(oid);
      ASSERT_EQ(pos.x, expected.pos.x) << "step " << step << " oid " << k;
      ASSERT_EQ(pos.y, expected.pos.y) << "step " << step << " oid " << k;
      ASSERT_EQ(vel.x, expected.vel.x) << "step " << step << " oid " << k;
      ASSERT_EQ(vel.y, expected.vel.y) << "step " << step << " oid " << k;
      const CellCoord cell = world->cell(oid);
      ASSERT_EQ(cell.i, expected.cell.i);
      ASSERT_EQ(cell.j, expected.cell.j);
    }
  }
}

// ForEachObjectInCircle over the span index must agree with a brute-force
// scan of the AoS reference state, every step (the equivalence above plus
// identical Contains arithmetic makes this exact, not approximate).
TEST(SoaWorldTest, CircleVisitorMatchesAosBruteForceEveryStep) {
  Grid grid = MakeGrid();
  const int n = 300;
  std::vector<ObjectState> initial = MakeObjects(n, 31);
  auto world = World::Make(grid, initial);
  ASSERT_TRUE(world.ok());
  AosReference reference(grid, initial);

  Rng world_rng(37);
  Rng reference_rng(37);
  Rng probe_rng(41);
  for (int step = 0; step < 30; ++step) {
    world->Step(1.0, n / 10, world_rng);
    reference.Step(1.0, n / 10, reference_rng);
    Circle circle{Point{probe_rng.NextDouble(0, kSide),
                        probe_rng.NextDouble(0, kSide)},
                  probe_rng.NextDouble(3, 30)};
    std::set<ObjectId> via_spans;
    world->ForEachObjectInCircle(
        circle, [&](ObjectId oid) { via_spans.insert(oid); });
    std::set<ObjectId> brute;
    for (const ObjectState& object : reference.objects()) {
      if (circle.Contains(object.pos)) brute.insert(object.oid);
    }
    ASSERT_EQ(via_spans, brute) << "step " << step;
  }
}

// The batched cell-major oracle pass must return, per query, exactly the
// bytes the per-query path returns: same ids, same order.
TEST(SoaWorldTest, BatchedOracleMatchesPerQueryEvaluation) {
  Grid grid = MakeGrid();
  const int n = 500;
  auto world = World::Make(grid, MakeObjects(n, 47));
  ASSERT_TRUE(world.ok());
  ExactOracle oracle(*world);

  std::vector<ExactOracle::BatchQuery> queries;
  Rng rng(53);
  for (int q = 0; q < 24; ++q) {
    ExactOracle::BatchQuery query;
    query.focal_oid = static_cast<ObjectId>(rng.NextUint64(n));
    query.region = (q % 3 == 0)
                       ? QueryRegion::MakeRectangle(rng.NextDouble(4, 30),
                                                    rng.NextDouble(4, 30))
                       : QueryRegion::MakeCircle(rng.NextDouble(2, 20));
    query.filter_threshold = (q % 4 == 0) ? rng.NextDouble(0.2, 0.9) : 1.0;
    queries.push_back(query);
  }

  std::vector<std::vector<ObjectId>> batched;
  oracle.EvaluateAllInto(queries, &batched);
  ASSERT_EQ(batched.size(), queries.size());
  std::vector<ObjectId> single;
  for (size_t q = 0; q < queries.size(); ++q) {
    oracle.EvaluateInto(queries[q].focal_oid, queries[q].region,
                        queries[q].filter_threshold, &single);
    ASSERT_EQ(batched[q], single) << "query " << q;
  }
}

void CheckSpanInvariants(const World& world) {
  const Grid& grid = world.grid();
  const std::vector<uint32_t>& offsets = world.cell_span_offsets();
  const std::vector<uint32_t>& items = world.cell_span_items();
  const auto cells = static_cast<size_t>(grid.CellCount());
  const size_t n = world.object_count();

  // CSR shape: cells + 1 offsets, monotone, covering exactly n items.
  ASSERT_EQ(offsets.size(), cells + 1);
  ASSERT_EQ(offsets.front(), 0u);
  ASSERT_EQ(offsets.back(), n);
  ASSERT_EQ(items.size(), n);

  std::vector<bool> seen(n, false);
  for (size_t flat = 0; flat < cells; ++flat) {
    ASSERT_LE(offsets[flat], offsets[flat + 1]);
    for (uint32_t k = offsets[flat]; k < offsets[flat + 1]; ++k) {
      const uint32_t oid = items[k];
      ASSERT_LT(oid, n);
      // Partition: each object appears exactly once, in its own cell's span.
      ASSERT_FALSE(seen[oid]);
      seen[oid] = true;
      const auto flat_of_oid = static_cast<size_t>(
          grid.FlatIndex(world.cell(static_cast<ObjectId>(oid))));
      ASSERT_EQ(flat_of_oid, flat);
      ASSERT_EQ(static_cast<size_t>(grid.FlatIndex(
                    grid.CellOf(world.position(static_cast<ObjectId>(oid))))),
                flat);
      // Canonical order: ascending oid within each span.
      if (k > offsets[flat]) {
        ASSERT_LT(items[k - 1], oid);
      }
    }
  }
}

// The span index must remain a canonical (cell, ascending oid) partition of
// all objects through heavy migration churn and through SetObjectState
// teleports.
TEST(SoaWorldTest, CellSpansStayCanonicalUnderChurn) {
  Grid grid = MakeGrid();
  const int n = 600;
  auto world = World::Make(grid, MakeObjects(n, 59));
  ASSERT_TRUE(world.ok());
  CheckSpanInvariants(*world);

  Rng rng(61);
  for (int step = 0; step < 40; ++step) {
    // dt large enough that many objects cross cells each step.
    world->Step(4.0, n / 5, rng);
    CheckSpanInvariants(*world);
  }

  // Teleport a few objects across the universe (forced single migrations).
  for (int k = 0; k < 10; ++k) {
    const auto oid = static_cast<ObjectId>(rng.NextUint64(n));
    world->SetObjectState(
        oid, Point{rng.NextDouble(0, kSide), rng.NextDouble(0, kSide)},
        Vec2{0.0, 0.0});
    CheckSpanInvariants(*world);
  }
}

}  // namespace
