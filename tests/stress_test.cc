// Scale / soak tests: larger populations and longer horizons than the unit
// tests, with end-state invariant checks. Kept to a few seconds of runtime.

#include <gtest/gtest.h>

#include "mobieyes/sim/simulation.h"

namespace mobieyes {
namespace {

using sim::SimMode;
using sim::Simulation;
using sim::SimulationConfig;

TEST(StressTest, LargeEagerDeploymentStaysConsistent) {
  SimulationConfig config;
  config.mode = SimMode::kMobiEyesEager;
  config.params.num_objects = 5000;
  config.params.num_queries = 500;
  config.params.velocity_changes_per_step = 500;
  config.params.seed = 777;
  config.measure_error = false;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  Simulation& sim = **simulation;
  sim.Run(15);

  // Spot-check protocol invariants over the full population at the end.
  for (size_t oid = 0; oid < sim.world().object_count(); ++oid) {
    const auto& me = sim.world().object(static_cast<ObjectId>(oid));
    for (const auto& entry : sim.client(static_cast<ObjectId>(oid))->lqt()) {
      ASSERT_TRUE(entry.mon_region.Contains(me.cell));
      ASSERT_NE(sim.server()->FindQuery(entry.qid), nullptr);
    }
  }
  // Accuracy after 15 steps of churn stays tight under EQP.
  EXPECT_LT(sim.CurrentResultError(), 0.08);
  EXPECT_GT(sim.metrics().network.total_messages(), 0u);
}

TEST(StressTest, LongLazyRunRemainsBounded) {
  SimulationConfig config;
  config.mode = SimMode::kMobiEyesLazy;
  config.params.num_objects = 1500;
  config.params.num_queries = 150;
  config.params.velocity_changes_per_step = 150;
  config.params.area_square_miles = 40000.0;
  config.params.seed = 778;
  config.measure_error = true;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok());
  (*simulation)->Run(100);  // 50 simulated minutes
  sim::RunMetrics metrics = (*simulation)->metrics();
  // Lazy propagation must not accumulate error over time.
  EXPECT_LT(metrics.AverageError(), 0.3);
  // LQT sizes stay bounded (no leak of stale entries).
  EXPECT_LT(metrics.AverageLqtSize(), 20.0);
}

TEST(StressTest, HotspotWorkloadRunsAllModes) {
  for (SimMode mode : {SimMode::kMobiEyesEager, SimMode::kObjectIndex,
                       SimMode::kQueryIndex}) {
    SimulationConfig config;
    config.mode = mode;
    config.params.num_objects = 1000;
    config.params.num_queries = 100;
    config.params.velocity_changes_per_step = 100;
    config.params.object_distribution = sim::ObjectDistribution::kHotspot;
    config.params.seed = 779;
    auto simulation = Simulation::Make(config);
    ASSERT_TRUE(simulation.ok()) << sim::SimModeName(mode);
    (*simulation)->Run(5);
    EXPECT_GT((*simulation)->metrics().network.total_messages(), 0u);
  }
}

TEST(StressTest, MixedShapeWorkloadStaysAccurate) {
  SimulationConfig config;
  config.mode = SimMode::kMobiEyesEager;
  config.params.num_objects = 1200;
  config.params.num_queries = 120;
  config.params.velocity_changes_per_step = 120;
  config.params.rect_query_fraction = 0.5;  // half rectangles, half circles
  config.params.seed = 781;
  config.measure_error = true;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(12);
  EXPECT_LT((*simulation)->metrics().AverageError(), 0.1);
}

TEST(StressTest, BaselinesRejectRectangularQueries) {
  SimulationConfig config;
  config.mode = SimMode::kObjectIndex;
  config.params.num_objects = 100;
  config.params.num_queries = 20;
  config.params.rect_query_fraction = 1.0;
  auto simulation = Simulation::Make(config);
  EXPECT_FALSE(simulation.ok());
  EXPECT_EQ(simulation.status().code(), StatusCode::kInvalidArgument);
}

TEST(StressTest, ManyQueriesPerFocalGroupingSoak) {
  // Extreme skew: 40 queries all bound to a handful of focal objects.
  SimulationConfig config;
  config.mode = SimMode::kMobiEyesEager;
  config.params.num_objects = 50;  // tiny pool: heavy grouping
  config.params.num_queries = 40;
  config.params.velocity_changes_per_step = 10;
  config.params.area_square_miles = 2500.0;
  config.params.seed = 780;
  config.measure_error = true;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok());
  (*simulation)->Run(30);
  EXPECT_LT((*simulation)->metrics().AverageError(), 0.15);
}

}  // namespace
}  // namespace mobieyes
