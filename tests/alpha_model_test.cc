#include <gtest/gtest.h>

#include "mobieyes/common/units.h"
#include "mobieyes/sim/alpha_model.h"

namespace mobieyes::sim {
namespace {

TEST(AlphaModelTest, DerivedWorkloadStatistics) {
  SimulationParams params;
  AlphaCostModel model(params);
  // Zipf(0.8)-weighted mean of {100,50,150,200,250} mph is ~118 mph; mean
  // speed is half of that (uniform draw in [0, cap]).
  EXPECT_GT(model.mean_speed(), MphToMilesPerSecond(40.0));
  EXPECT_LT(model.mean_speed(), MphToMilesPerSecond(90.0));
  // Zipf-weighted mean of {3,2,1,4,5} is between the extremes.
  EXPECT_GT(model.mean_radius(), 1.0);
  EXPECT_LT(model.mean_radius(), 5.0);
  // 1000 picks from 10000 objects: ~951 distinct.
  EXPECT_NEAR(model.expected_distinct_focals(), 951.0, 5.0);
}

TEST(AlphaModelTest, CrossingRateFallsWithAlpha) {
  AlphaCostModel model(SimulationParams{});
  double tiny = model.CellCrossingsPerObjectPerStep(0.5);
  double mid = model.CellCrossingsPerObjectPerStep(5.0);
  double large = model.CellCrossingsPerObjectPerStep(16.0);
  EXPECT_GT(tiny, mid);
  EXPECT_GT(mid, large);
  EXPECT_LE(tiny, 1.0);  // capped at one report per step
  EXPECT_GT(large, 0.0);
}

TEST(AlphaModelTest, BroadcastFanoutGrowsWithAlpha) {
  AlphaCostModel model(SimulationParams{});
  EXPECT_LT(model.BroadcastsPerRegionEvent(2.0),
            model.BroadcastsPerRegionEvent(16.0));
  EXPECT_GE(model.BroadcastsPerRegionEvent(0.5), 1.0);
}

TEST(AlphaModelTest, CostIsUShapedInAlpha) {
  AlphaCostModel model(SimulationParams{});
  double at_half = model.MessagesPerSecond(0.5);
  double optimum = model.MessagesPerSecond(model.OptimalAlpha());
  double at_16 = model.MessagesPerSecond(16.0);
  EXPECT_LT(optimum, at_half);
  EXPECT_LT(optimum, at_16);
}

TEST(AlphaModelTest, OptimalAlphaInPapersSweetSpot) {
  // The paper reports alpha in [4, 6] as ideal for the Table 1 defaults
  // (Fig. 4); the analytic reconstruction should land nearby.
  AlphaCostModel model(SimulationParams{});
  Miles optimum = model.OptimalAlpha(0.5, 16.0);
  EXPECT_GT(optimum, 2.0);
  EXPECT_LT(optimum, 10.0);
}

TEST(AlphaModelTest, MoreQueriesRaiseCostEverywhere) {
  SimulationParams small;
  small.num_queries = 100;
  SimulationParams large;
  large.num_queries = 1000;
  AlphaCostModel few(small);
  AlphaCostModel many(large);
  for (double alpha : {1.0, 4.0, 8.0, 16.0}) {
    EXPECT_LT(few.MessagesPerSecond(alpha), many.MessagesPerSecond(alpha))
        << "alpha " << alpha;
  }
}

TEST(AlphaModelTest, FasterObjectsShiftOptimumUp) {
  // Faster objects cross cells more often, pushing the optimum toward
  // larger cells.
  SimulationParams slow;
  slow.max_speeds_mph = {30.0};
  SimulationParams fast;
  fast.max_speeds_mph = {250.0};
  EXPECT_LT(AlphaCostModel(slow).OptimalAlpha(),
            AlphaCostModel(fast).OptimalAlpha());
}

TEST(AlphaModelTest, UplinkDominatedBySmallAlpha) {
  AlphaCostModel model(SimulationParams{});
  // At tiny alpha the uplink (cell crossings) dominates; at huge alpha the
  // downlink (broadcast fanout) does.
  EXPECT_GT(model.UplinkPerSecond(0.5), model.DownlinkPerSecond(0.5) * 0.5);
  EXPECT_GT(model.DownlinkPerSecond(16.0), model.UplinkPerSecond(16.0));
}

}  // namespace
}  // namespace mobieyes::sim
