// End-to-end integration tests: the full distributed protocol against the
// exact oracle, and cross-scheme result agreement on identical workloads.

#include <gtest/gtest.h>

#include "mobieyes/sim/simulation.h"
#include "test_harness.h"

namespace mobieyes {
namespace {

using geo::Point;
using geo::Vec2;
using sim::RunMetrics;
using sim::SimMode;
using sim::Simulation;
using sim::SimulationConfig;
using test::MiniDeployment;
using test::ObjectSpec;

SimulationConfig Config(SimMode mode, uint64_t seed = 4242) {
  SimulationConfig config;
  config.mode = mode;
  config.params.num_objects = 400;
  config.params.num_queries = 40;
  config.params.velocity_changes_per_step = 40;
  config.params.area_square_miles = 10000.0;
  config.params.alpha = 10.0;
  config.params.base_station_side = 20.0;
  config.params.seed = seed;
  config.measure_error = true;
  return config;
}

TEST(IntegrationTest, EagerResultsTrackOracleClosely) {
  auto simulation = Simulation::Make(Config(SimMode::kMobiEyesEager));
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  (*simulation)->Run(10);
  RunMetrics metrics = (*simulation)->metrics();
  // Eager propagation with dead reckoning: only Δ-bounded prediction error
  // remains, so the average missing fraction stays small.
  EXPECT_LT(metrics.AverageError(), 0.06) << "error " << metrics.AverageError();
}

TEST(IntegrationTest, LazyErrorIsBoundedAndAboveEager) {
  auto eager = Simulation::Make(Config(SimMode::kMobiEyesEager));
  auto lazy = Simulation::Make(Config(SimMode::kMobiEyesLazy));
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  (*eager)->Run(10);
  (*lazy)->Run(10);
  double eager_error = (*eager)->metrics().AverageError();
  double lazy_error = (*lazy)->metrics().AverageError();
  EXPECT_LE(eager_error, lazy_error + 1e-9);
  EXPECT_LE(lazy_error, 0.5);  // lazy trades accuracy, but stays useful
}

TEST(IntegrationTest, LazyUsesFewerUplinksThanEager) {
  auto eager = Simulation::Make(Config(SimMode::kMobiEyesEager));
  auto lazy = Simulation::Make(Config(SimMode::kMobiEyesLazy));
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  (*eager)->Run(10);
  (*lazy)->Run(10);
  EXPECT_LT((*lazy)->metrics().network.uplink_messages,
            (*eager)->metrics().network.uplink_messages);
}

TEST(IntegrationTest, ObjectIndexMatchesOracleEveryStep) {
  auto simulation = Simulation::Make(Config(SimMode::kObjectIndex));
  ASSERT_TRUE(simulation.ok());
  // The object index re-evaluates all queries from fresh positions each
  // step, so it matches the oracle exactly.
  (*simulation)->Run(5);
  EXPECT_DOUBLE_EQ((*simulation)->metrics().AverageError(), 0.0);
}

TEST(IntegrationTest, MobiEyesServerLoadBelowCentralizedBaselines) {
  auto mobieyes = Simulation::Make(Config(SimMode::kMobiEyesEager));
  auto object_index = Simulation::Make(Config(SimMode::kObjectIndex));
  ASSERT_TRUE(mobieyes.ok());
  ASSERT_TRUE(object_index.ok());
  (*mobieyes)->Run(8);
  (*object_index)->Run(8);
  // The headline claim (Fig. 1): distributed processing slashes server load.
  EXPECT_LT((*mobieyes)->metrics().server_seconds,
            (*object_index)->metrics().server_seconds);
}

TEST(IntegrationTest, SafePeriodReducesEvaluationsWithoutAccuracyLoss) {
  SimulationConfig with_sp = Config(SimMode::kMobiEyesEager);
  with_sp.mobieyes.enable_safe_period = true;
  SimulationConfig without_sp = Config(SimMode::kMobiEyesEager);

  auto sim_with = Simulation::Make(with_sp);
  auto sim_without = Simulation::Make(without_sp);
  ASSERT_TRUE(sim_with.ok());
  ASSERT_TRUE(sim_without.ok());
  (*sim_with)->Run(10);
  (*sim_without)->Run(10);

  EXPECT_LT((*sim_with)->metrics().queries_evaluated,
            (*sim_without)->metrics().queries_evaluated);
  EXPECT_GT((*sim_with)->metrics().safe_period_skips, 0u);
  // Accuracy is preserved up to the Δ slack.
  EXPECT_LT((*sim_with)->metrics().AverageError(),
            (*sim_without)->metrics().AverageError() + 0.05);
}

// A controlled multi-query, multi-object scenario driven tick by tick,
// cross-checked against the oracle at every step.
TEST(IntegrationTest, MiniDeploymentTracksOracleExactlyUnderConstantMotion) {
  std::vector<ObjectSpec> specs;
  // Focal objects.
  specs.push_back({Point{30, 30}, Vec2{0.02, 0.01}});
  specs.push_back({Point{70, 70}, Vec2{-0.02, 0.0}});
  // Bystanders with varied trajectories (constant velocity: predictions
  // are exact, so the protocol must match the oracle exactly after each
  // tick).
  specs.push_back({Point{34, 30}, Vec2{-0.01, 0.01}});
  specs.push_back({Point{66, 70}, Vec2{0.02, 0.0}});
  specs.push_back({Point{50, 50}, Vec2{0.015, 0.015}});
  specs.push_back({Point{28, 33}, Vec2{0.02, -0.01}});

  MiniDeployment deployment(specs);
  sim::ExactOracle oracle(deployment.world());
  std::vector<QueryId> qids;
  qids.push_back(*deployment.server().InstallQuery(0, 6.0, 1.0));
  qids.push_back(*deployment.server().InstallQuery(1, 5.0, 1.0));
  std::vector<std::pair<ObjectId, Miles>> query_defs = {{0, 6.0}, {1, 5.0}};

  for (int step = 0; step < 15; ++step) {
    deployment.Tick();
    for (size_t k = 0; k < qids.size(); ++k) {
      auto exact = oracle.Evaluate(query_defs[k].first, query_defs[k].second,
                                   1.0);
      auto reported = deployment.server().QueryResult(qids[k]);
      ASSERT_TRUE(reported.ok());
      ASSERT_EQ(*reported, exact) << "step " << step << " query " << k;
    }
  }
}

TEST(IntegrationTest, GroupingDoesNotChangeSimulationResults) {
  SimulationConfig grouped = Config(SimMode::kMobiEyesEager);
  grouped.mobieyes.enable_query_grouping = true;
  SimulationConfig ungrouped = Config(SimMode::kMobiEyesEager);
  ungrouped.mobieyes.enable_query_grouping = false;

  auto sim_grouped = Simulation::Make(grouped);
  auto sim_ungrouped = Simulation::Make(ungrouped);
  ASSERT_TRUE(sim_grouped.ok());
  ASSERT_TRUE(sim_ungrouped.ok());
  (*sim_grouped)->Run(8);
  (*sim_ungrouped)->Run(8);
  // Identical error trajectories: grouping is purely an optimization.
  EXPECT_DOUBLE_EQ((*sim_grouped)->metrics().AverageError(),
                   (*sim_ungrouped)->metrics().AverageError());
}

TEST(IntegrationTest, UplinkShareShrinksUnderMobiEyes) {
  auto naive = Simulation::Make(Config(SimMode::kNaive));
  auto lazy = Simulation::Make(Config(SimMode::kMobiEyesLazy));
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(lazy.ok());
  (*naive)->Run(8);
  (*lazy)->Run(8);
  // Fig. 6: LQP cuts uplink traffic by orders of magnitude vs naive.
  EXPECT_LT((*lazy)->metrics().network.uplink_messages * 5,
            (*naive)->metrics().network.uplink_messages);
}

}  // namespace
}  // namespace mobieyes
