#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/rtree/rstar_tree.h"

namespace mobieyes::rtree {
namespace {

using geo::Point;
using geo::Rect;

TEST(KnnTest, EmptyTreeAndNonPositiveK) {
  RStarTree tree;
  std::vector<uint64_t> out;
  tree.SearchKNearest(Point{0, 0}, 3, &out);
  EXPECT_TRUE(out.empty());
  tree.Insert(Rect{1, 1, 0, 0}, 1);
  tree.SearchKNearest(Point{0, 0}, 0, &out);
  EXPECT_TRUE(out.empty());
  tree.SearchKNearest(Point{0, 0}, -2, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KnnTest, ReturnsNearestFirst) {
  RStarTree tree;
  tree.Insert(Rect{10, 0, 0, 0}, 1);
  tree.Insert(Rect{5, 0, 0, 0}, 2);
  tree.Insert(Rect{20, 0, 0, 0}, 3);
  tree.Insert(Rect{1, 0, 0, 0}, 4);
  std::vector<uint64_t> out;
  tree.SearchKNearest(Point{0, 0}, 3, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{4, 2, 1}));
}

TEST(KnnTest, KLargerThanTreeReturnsAll) {
  RStarTree tree;
  for (uint64_t k = 0; k < 5; ++k) {
    tree.Insert(Rect{static_cast<double>(k), 0, 0, 0}, k);
  }
  std::vector<uint64_t> out;
  tree.SearchKNearest(Point{0, 0}, 100, &out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(KnnTest, PointInsideRectangleHasDistanceZero) {
  RStarTree tree;
  tree.Insert(Rect{0, 0, 10, 10}, 1);   // query point inside
  tree.Insert(Rect{20, 20, 1, 1}, 2);
  std::vector<uint64_t> out;
  tree.SearchKNearest(Point{5, 5}, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(KnnTest, MatchesBruteForceOnRandomPoints) {
  Rng rng(301);
  RStarTree tree;
  std::vector<Point> points;
  for (uint64_t k = 0; k < 500; ++k) {
    Point p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    points.push_back(p);
    tree.Insert(Rect{p.x, p.y, 0, 0}, k);
  }
  for (int trial = 0; trial < 50; ++trial) {
    Point q{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    std::vector<uint64_t> got;
    tree.SearchKNearest(q, 10, &got);
    ASSERT_EQ(got.size(), 10u);

    std::vector<uint64_t> ids(points.size());
    for (size_t k = 0; k < ids.size(); ++k) ids[k] = k;
    std::sort(ids.begin(), ids.end(), [&](uint64_t a, uint64_t b) {
      return geo::SquaredDistance(points[a], q) <
             geo::SquaredDistance(points[b], q);
    });
    // Distances must agree rank by rank (ids may tie, so compare distances).
    for (int k = 0; k < 10; ++k) {
      EXPECT_NEAR(geo::Distance(points[got[k]], q),
                  geo::Distance(points[ids[k]], q), 1e-12)
          << "rank " << k;
    }
  }
}

TEST(KnnTest, DistancesAreNonDecreasing) {
  Rng rng(302);
  RStarTree tree;
  std::vector<Point> points;
  for (uint64_t k = 0; k < 300; ++k) {
    Point p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    points.push_back(p);
    tree.Insert(Rect{p.x, p.y, 0, 0}, k);
  }
  Point q{50, 50};
  std::vector<uint64_t> out;
  tree.SearchKNearest(q, 300, &out);
  ASSERT_EQ(out.size(), 300u);
  for (size_t k = 1; k < out.size(); ++k) {
    EXPECT_LE(geo::Distance(points[out[k - 1]], q),
              geo::Distance(points[out[k]], q) + 1e-12);
  }
}

}  // namespace
}  // namespace mobieyes::rtree
