// Tests for the query grouping optimization (§4.1): groupable queries (same
// focal object) share velocity-change broadcasts and report results through
// per-group bitmaps; evaluation short-circuits smaller radii when the object
// is outside a larger one.

#include <gtest/gtest.h>

#include "test_harness.h"

namespace mobieyes::core {
namespace {

using geo::Point;
using geo::Vec2;
using test::MiniDeployment;
using test::ObjectSpec;

core::MobiEyesOptions WithGrouping(bool enabled) {
  core::MobiEyesOptions options;
  options.enable_query_grouping = enabled;
  return options;
}

TEST(GroupingTest, MatchingRegionsShareOneVelocityBroadcast) {
  // Three queries on the same focal with radii mapping to the same
  // monitoring region (all < alpha = 10 -> same 3x3 block).
  std::vector<ObjectSpec> specs = {
      {Point{55, 55}},  // focal
      {Point{58, 55}},  // monitoring object
  };
  MiniDeployment grouped(specs, WithGrouping(true));
  MiniDeployment ungrouped(specs, WithGrouping(false));
  for (auto* deployment : {&grouped, &ungrouped}) {
    ASSERT_TRUE(deployment->server().InstallQuery(0, 2.0, 1.0).ok());
    ASSERT_TRUE(deployment->server().InstallQuery(0, 3.0, 1.0).ok());
    ASSERT_TRUE(deployment->server().InstallQuery(0, 4.0, 1.0).ok());
    deployment->network().ResetStats();
    // Trigger a significant velocity change on the focal.
    deployment->world().SetObjectState(0, Point{55, 55}, Vec2{0.05, 0.0});
    deployment->Tick();
  }
  // Grouped: one broadcast per (focal, monitoring region) pair; ungrouped:
  // one per query.
  EXPECT_LT(grouped.network().stats().broadcast_messages,
            ungrouped.network().stats().broadcast_messages);
  EXPECT_GE(ungrouped.network().stats().broadcast_messages, 3u);
}

TEST(GroupingTest, BitmapReportCarriesWholeGroup) {
  MiniDeployment deployment({
      {Point{55, 55}},  // focal
      {Point{58, 55}},  // object: distance 3
  });
  auto qid_small = deployment.server().InstallQuery(0, 2.0, 1.0);
  auto qid_large = deployment.server().InstallQuery(0, 4.0, 1.0);
  ASSERT_TRUE(qid_small.ok());
  ASSERT_TRUE(qid_large.ok());

  deployment.client(1).OnTick();  // evaluate at distance 3
  // Inside radius 4, outside radius 2 — one grouped report fixed both.
  EXPECT_TRUE(deployment.server().QueryResult(*qid_large)->contains(1));
  EXPECT_FALSE(deployment.server().QueryResult(*qid_small)->contains(1));
}

TEST(GroupingTest, GroupedAndUngroupedResultsAgree) {
  std::vector<ObjectSpec> specs = {
      {Point{50, 50}, Vec2{0.02, 0.01}},
      {Point{53, 50}, Vec2{-0.02, 0.0}},
      {Point{47, 52}, Vec2{0.0, -0.03}},
      {Point{58, 45}, Vec2{-0.01, 0.02}},
  };
  MiniDeployment grouped(specs, WithGrouping(true));
  MiniDeployment ungrouped(specs, WithGrouping(false));
  std::vector<QueryId> qids_grouped;
  std::vector<QueryId> qids_ungrouped;
  for (double radius : {2.0, 3.5, 5.0}) {
    qids_grouped.push_back(*grouped.server().InstallQuery(0, radius, 1.0));
    qids_ungrouped.push_back(
        *ungrouped.server().InstallQuery(0, radius, 1.0));
  }
  for (int step = 0; step < 12; ++step) {
    grouped.Tick();
    ungrouped.Tick();
    for (size_t k = 0; k < qids_grouped.size(); ++k) {
      auto result_grouped = grouped.server().QueryResult(qids_grouped[k]);
      auto result_ungrouped =
          ungrouped.server().QueryResult(qids_ungrouped[k]);
      ASSERT_TRUE(result_grouped.ok());
      ASSERT_TRUE(result_ungrouped.ok());
      ASSERT_EQ(*result_grouped, *result_ungrouped)
          << "step " << step << " query " << k;
    }
  }
}

TEST(GroupingTest, LqtKeepsGroupsSortedByRadiusDescending) {
  MiniDeployment deployment({
      {Point{55, 55}},  // focal A
      {Point{45, 55}},  // focal B
      {Point{52, 55}},  // object monitoring both
  });
  ASSERT_TRUE(deployment.server().InstallQuery(0, 2.0, 1.0).ok());
  ASSERT_TRUE(deployment.server().InstallQuery(1, 5.0, 1.0).ok());
  ASSERT_TRUE(deployment.server().InstallQuery(0, 4.0, 1.0).ok());
  ASSERT_TRUE(deployment.server().InstallQuery(1, 3.0, 1.0).ok());

  const auto& lqt = deployment.client(2).lqt();
  ASSERT_EQ(lqt.size(), 4u);
  for (size_t k = 1; k < lqt.size(); ++k) {
    if (lqt[k].focal_oid == lqt[k - 1].focal_oid) {
      EXPECT_LE(lqt[k].region.MaxReach(), lqt[k - 1].region.MaxReach());
    } else {
      EXPECT_GT(lqt[k].focal_oid, lqt[k - 1].focal_oid);
    }
  }
}

TEST(GroupingTest, SkewedQueryDistributionStillCorrect) {
  // Many queries on one focal object (the skew §4.1 targets).
  MiniDeployment deployment({
      {Point{55, 55}},
      {Point{57, 55}},
  });
  std::vector<QueryId> qids;
  for (int k = 0; k < 10; ++k) {
    auto qid = deployment.server().InstallQuery(0, 1.0 + 0.5 * k, 1.0);
    ASSERT_TRUE(qid.ok());
    qids.push_back(*qid);
  }
  deployment.Tick();
  // Object 1 is 2 miles away: exactly queries with radius >= 2 contain it.
  for (int k = 0; k < 10; ++k) {
    double radius = 1.0 + 0.5 * k;
    EXPECT_EQ(deployment.server().QueryResult(qids[k])->contains(1),
              radius >= 2.0)
        << "radius " << radius;
  }
}

}  // namespace
}  // namespace mobieyes::core
