// System-level property tests: invariants of the distributed protocol that
// must hold at every step of a randomized simulation, across parameter
// settings (TEST_P over alpha and propagation mode).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "mobieyes/sim/simulation.h"

namespace mobieyes {
namespace {

using sim::SimMode;
using sim::Simulation;
using sim::SimulationConfig;

class ProtocolPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, SimMode>> {
 protected:
  SimulationConfig Config() const {
    SimulationConfig config;
    config.mode = std::get<1>(GetParam());
    config.params.alpha = std::get<0>(GetParam());
    config.params.num_objects = 250;
    config.params.num_queries = 25;
    config.params.velocity_changes_per_step = 25;
    config.params.area_square_miles = 10000.0;
    config.params.base_station_side = 20.0;
    config.params.seed = 31337;
    return config;
  }
};

// Every LQT entry of every client must (a) belong to a live query, (b) have
// a monitoring region that covers the client's current grid cell, (c) be
// installed only on objects satisfying the filter, and (d) never be the
// client's own query.
TEST_P(ProtocolPropertyTest, LqtEntriesAreExactlyJustified) {
  auto simulation = Simulation::Make(Config());
  ASSERT_TRUE(simulation.ok()) << simulation.status().ToString();
  Simulation& sim = **simulation;
  for (int round = 0; round < 6; ++round) {
    sim.Run(2);
    for (size_t oid = 0; oid < sim.world().object_count(); ++oid) {
      const auto& me = sim.world().object(static_cast<ObjectId>(oid));
      const auto* client = sim.client(static_cast<ObjectId>(oid));
      ASSERT_NE(client, nullptr);
      for (const auto& entry : client->lqt()) {
        const auto* sqt = sim.server()->FindQuery(entry.qid);
        ASSERT_NE(sqt, nullptr) << "LQT references dead query " << entry.qid;
        EXPECT_TRUE(entry.mon_region.Contains(me.cell))
            << "object " << oid << " keeps query " << entry.qid
            << " outside its monitoring region";
        EXPECT_LE(me.attr, entry.filter_threshold);
        EXPECT_NE(sqt->focal_oid, static_cast<ObjectId>(oid));
      }
    }
  }
}

// Under eager propagation the client-side monitoring regions must agree
// with the server's SQT for every installed entry (the server is the
// source of truth for region geometry).
TEST_P(ProtocolPropertyTest, ClientRegionsMatchServerUnderEager) {
  if (std::get<1>(GetParam()) != SimMode::kMobiEyesEager) {
    GTEST_SKIP() << "lazy propagation tolerates stale regions by design";
  }
  auto simulation = Simulation::Make(Config());
  ASSERT_TRUE(simulation.ok());
  Simulation& sim = **simulation;
  sim.Run(10);
  for (size_t oid = 0; oid < sim.world().object_count(); ++oid) {
    const auto* client = sim.client(static_cast<ObjectId>(oid));
    for (const auto& entry : client->lqt()) {
      const auto* sqt = sim.server()->FindQuery(entry.qid);
      ASSERT_NE(sqt, nullptr);
      EXPECT_EQ(entry.mon_region, sqt->mon_region)
          << "object " << oid << " query " << entry.qid;
    }
  }
}

// Reported result members always satisfy the query filter and are never
// the focal object (false members would violate user-visible semantics even
// transiently).
TEST_P(ProtocolPropertyTest, ResultsRespectFilterAndSelfExclusion) {
  auto simulation = Simulation::Make(Config());
  ASSERT_TRUE(simulation.ok());
  Simulation& sim = **simulation;
  for (int round = 0; round < 5; ++round) {
    sim.Run(2);
    for (size_t k = 0; k < sim.installed_queries().size(); ++k) {
      const auto& spec = sim.query_specs()[k];
      auto result = sim.server()->QueryResult(sim.installed_queries()[k]);
      ASSERT_TRUE(result.ok());
      for (ObjectId member : *result) {
        EXPECT_NE(member, spec.focal_oid);
        EXPECT_LE(sim.world().object(member).attr, spec.filter_threshold);
      }
    }
  }
}

// Under eager propagation the result error vs the oracle stays small at
// every sampled instant, not just on average.
TEST_P(ProtocolPropertyTest, EagerErrorBoundedEveryStep) {
  if (std::get<1>(GetParam()) != SimMode::kMobiEyesEager) {
    GTEST_SKIP();
  }
  auto simulation = Simulation::Make(Config());
  ASSERT_TRUE(simulation.ok());
  Simulation& sim = **simulation;
  for (int round = 0; round < 8; ++round) {
    sim.Run(1);
    EXPECT_LT(sim.CurrentResultError(), 0.25) << "round " << round;
  }
}

// Message counters are internally consistent: broadcasts are a subset of
// downlinks, and per-object byte maps sum to the totals.
TEST_P(ProtocolPropertyTest, NetworkAccountingConsistent) {
  SimulationConfig config = Config();
  config.track_per_object_bytes = true;
  auto simulation = Simulation::Make(config);
  ASSERT_TRUE(simulation.ok());
  Simulation& sim = **simulation;
  sim.Run(6);
  const auto& stats = sim.network().stats();
  EXPECT_LE(stats.broadcast_messages, stats.downlink_messages);
  EXPECT_EQ(stats.total_messages(),
            stats.uplink_messages + stats.downlink_messages);
  uint64_t tx_total = 0;
  for (const auto& [oid, bytes] : stats.tx_bytes_per_object) {
    tx_total += bytes;
  }
  EXPECT_EQ(tx_total, stats.uplink_bytes);
  // Broadcast receptions imply received bytes were charged to objects.
  uint64_t rx_total = 0;
  for (const auto& [oid, bytes] : stats.rx_bytes_per_object) {
    rx_total += bytes;
  }
  if (stats.broadcast_receptions > 0) {
    EXPECT_GT(rx_total, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaAndMode, ProtocolPropertyTest,
    ::testing::Combine(::testing::Values(2.0, 5.0, 10.0),
                       ::testing::Values(SimMode::kMobiEyesEager,
                                         SimMode::kMobiEyesLazy)),
    [](const auto& info) {
      std::string mode = std::get<1>(info.param) == SimMode::kMobiEyesEager
                             ? "Eager"
                             : "Lazy";
      return "Alpha" +
             std::to_string(static_cast<int>(std::get<0>(info.param))) +
             mode;
    });

}  // namespace
}  // namespace mobieyes
