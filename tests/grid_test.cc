#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>
#include <utility>

#include "mobieyes/common/random.h"
#include "mobieyes/geo/grid.h"

namespace mobieyes::geo {
namespace {

Grid MakeGrid(double side = 100.0, double alpha = 10.0) {
  auto grid = Grid::Make(Rect{0, 0, side, side}, alpha);
  EXPECT_TRUE(grid.ok());
  return *grid;
}

// --- Construction -----------------------------------------------------------

TEST(GridTest, MakeRejectsBadArguments) {
  EXPECT_FALSE(Grid::Make(Rect{0, 0, 10, 10}, 0.0).ok());
  EXPECT_FALSE(Grid::Make(Rect{0, 0, 10, 10}, -1.0).ok());
  EXPECT_FALSE(Grid::Make(Rect{0, 0, 0, 10}, 1.0).ok());
}

TEST(GridTest, DimensionsUseCeiling) {
  Grid grid = MakeGrid(100.0, 10.0);
  EXPECT_EQ(grid.columns(), 10);
  EXPECT_EQ(grid.rows(), 10);
  EXPECT_EQ(grid.CellCount(), 100);

  // Non-divisible side: M = ceil(H / alpha) per the paper.
  auto ragged = Grid::Make(Rect{0, 0, 105, 95}, 10.0);
  ASSERT_TRUE(ragged.ok());
  EXPECT_EQ(ragged->columns(), 11);
  EXPECT_EQ(ragged->rows(), 10);
}

// --- Pmap (position -> cell) -----------------------------------------------

TEST(GridTest, CellOfMapsInteriorPoints) {
  Grid grid = MakeGrid();
  EXPECT_EQ(grid.CellOf(Point{5, 5}), (CellCoord{0, 0}));
  EXPECT_EQ(grid.CellOf(Point{15, 5}), (CellCoord{1, 0}));
  EXPECT_EQ(grid.CellOf(Point{95, 95}), (CellCoord{9, 9}));
}

TEST(GridTest, CellOfClampsBoundary) {
  Grid grid = MakeGrid();
  // The far boundary belongs to the last cell (clamped).
  EXPECT_EQ(grid.CellOf(Point{100, 100}), (CellCoord{9, 9}));
  EXPECT_EQ(grid.CellOf(Point{0, 0}), (CellCoord{0, 0}));
}

TEST(GridTest, CellOfOffsetUniverse) {
  auto grid = Grid::Make(Rect{-50, -50, 100, 100}, 10.0);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->CellOf(Point{-45, -45}), (CellCoord{0, 0}));
  EXPECT_EQ(grid->CellOf(Point{0, 0}), (CellCoord{5, 5}));
}

TEST(GridTest, CellRectRoundTripsWithCellOf) {
  Grid grid = MakeGrid();
  Rng rng(31);
  for (int trial = 0; trial < 1000; ++trial) {
    Point p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    CellCoord c = grid.CellOf(p);
    EXPECT_TRUE(grid.CellRect(c).Contains(p))
        << "point (" << p.x << "," << p.y << ") not in its own cell";
  }
}

TEST(GridTest, CellRectClipsAtRaggedEdge) {
  auto grid = Grid::Make(Rect{0, 0, 105, 100}, 10.0);
  ASSERT_TRUE(grid.ok());
  Rect last = grid->CellRect(CellCoord{10, 0});
  EXPECT_DOUBLE_EQ(last.lx, 100.0);
  EXPECT_DOUBLE_EQ(last.w, 5.0);  // clipped to the universe edge
}

// --- Bounding box & monitoring region (paper §2.3) --------------------------

TEST(GridTest, QueryBoundingBoxInflatesCellByRadius) {
  Grid grid = MakeGrid();
  Rect bb = grid.QueryBoundingBox(CellCoord{3, 4}, 2.5);
  EXPECT_DOUBLE_EQ(bb.lx, 27.5);
  EXPECT_DOUBLE_EQ(bb.ly, 37.5);
  EXPECT_DOUBLE_EQ(bb.w, 15.0);  // alpha + 2r
  EXPECT_DOUBLE_EQ(bb.h, 15.0);
}

TEST(GridTest, MonitoringRegionCoversNeighborCells) {
  Grid grid = MakeGrid();
  // Radius smaller than alpha: the 3x3 block around the focal cell.
  CellRange region = grid.MonitoringRegion(CellCoord{5, 5}, 2.0);
  EXPECT_EQ(region.i_lo, 4);
  EXPECT_EQ(region.i_hi, 6);
  EXPECT_EQ(region.j_lo, 4);
  EXPECT_EQ(region.j_hi, 6);
  EXPECT_EQ(region.CellCount(), 9);
}

TEST(GridTest, MonitoringRegionGrowsWithRadius) {
  Grid grid = MakeGrid();
  // Radius larger than alpha: 5x5 block.
  CellRange region = grid.MonitoringRegion(CellCoord{5, 5}, 12.0);
  EXPECT_EQ(region.CellCount(), 25);
}

TEST(GridTest, MonitoringRegionClampedAtBorder) {
  Grid grid = MakeGrid();
  CellRange region = grid.MonitoringRegion(CellCoord{0, 0}, 2.0);
  EXPECT_EQ(region.i_lo, 0);
  EXPECT_EQ(region.j_lo, 0);
  EXPECT_EQ(region.CellCount(), 4);  // 2x2 block in the corner
}

// Invariant from §2.3: wherever the focal object is inside its cell and
// whatever direction the circle extends, the circle stays inside the
// monitoring region.
TEST(GridTest, MonitoringRegionContainsAllReachableCirclePositions) {
  Grid grid = MakeGrid();
  Rng rng(37);
  for (int trial = 0; trial < 500; ++trial) {
    Point focal{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    double radius = rng.NextDouble(0.5, 15.0);
    CellCoord cell = grid.CellOf(focal);
    CellRange region = grid.MonitoringRegion(cell, radius);
    // Sample points on the circle boundary.
    for (int k = 0; k < 16; ++k) {
      double angle = k * std::numbers::pi / 8.0;
      Point edge{focal.x + radius * std::cos(angle),
                 focal.y + radius * std::sin(angle)};
      if (!grid.universe().Contains(edge)) continue;  // outside the UoD
      EXPECT_TRUE(region.Contains(grid.CellOf(edge)))
          << "circle edge escapes monitoring region";
    }
  }
}

// --- CellRange --------------------------------------------------------------

TEST(CellRangeTest, EmptyByDefault) {
  CellRange range;
  EXPECT_TRUE(range.empty());
  EXPECT_EQ(range.CellCount(), 0);
  EXPECT_FALSE(range.Contains(CellCoord{0, 0}));
}

TEST(CellRangeTest, ContainsAndCount) {
  CellRange range{2, 4, 3, 3};
  EXPECT_EQ(range.CellCount(), 3);
  EXPECT_TRUE(range.Contains(CellCoord{3, 3}));
  EXPECT_FALSE(range.Contains(CellCoord{3, 4}));
}

TEST(CellRangeTest, UnionAndIntersects) {
  CellRange a{0, 2, 0, 2};
  CellRange b{4, 5, 4, 5};
  EXPECT_FALSE(a.Intersects(b));
  CellRange u = CellRange::Union(a, b);
  EXPECT_TRUE(u.Contains(CellCoord{3, 3}));  // union is the bounding block
  EXPECT_TRUE(u.Intersects(a));
  EXPECT_TRUE(u.Intersects(b));
  EXPECT_EQ(CellRange::Union(a, CellRange{}).CellCount(), a.CellCount());
}

TEST(CellRangeTest, ForEachVisitsEveryCellOnce) {
  CellRange range{1, 3, 2, 4};
  std::set<std::pair<int32_t, int32_t>> seen;
  range.ForEach([&](int32_t i, int32_t j) { seen.insert({i, j}); });
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_TRUE(seen.contains({1, 2}));
  EXPECT_TRUE(seen.contains({3, 4}));
}

TEST(GridTest, CellsIntersectingDisjointRect) {
  Grid grid = MakeGrid();
  EXPECT_TRUE(grid.CellsIntersecting(Rect{200, 200, 10, 10}).empty());
}

// Parameterized sweep: the core grid invariants hold across cell sizes,
// including the paper's extreme settings alpha = 0.5 and alpha = 16.
class GridAlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GridAlphaSweepTest, PmapPartitionInvariants) {
  double alpha = GetParam();
  auto grid = Grid::Make(Rect{0, 0, 100, 100}, alpha);
  ASSERT_TRUE(grid.ok());
  Rng rng(83);
  for (int trial = 0; trial < 300; ++trial) {
    Point p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    CellCoord c = grid->CellOf(p);
    ASSERT_TRUE(grid->IsValid(c));
    ASSERT_TRUE(grid->CellRect(c).Contains(p));
  }
}

TEST_P(GridAlphaSweepTest, MonitoringRegionContainsCircleEverywhere) {
  double alpha = GetParam();
  auto grid = Grid::Make(Rect{0, 0, 100, 100}, alpha);
  ASSERT_TRUE(grid.ok());
  Rng rng(89);
  for (int trial = 0; trial < 200; ++trial) {
    Point focal{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    double radius = rng.NextDouble(0.2, 8.0);
    CellRange region = grid->MonitoringRegion(grid->CellOf(focal), radius);
    for (int k = 0; k < 8; ++k) {
      double angle = k * std::numbers::pi / 4.0;
      Point edge{focal.x + radius * std::cos(angle),
                 focal.y + radius * std::sin(angle)};
      if (!grid->universe().Contains(edge)) continue;
      ASSERT_TRUE(region.Contains(grid->CellOf(edge)))
          << "alpha " << alpha << " radius " << radius;
    }
  }
}

TEST_P(GridAlphaSweepTest, AnisotropicRegionMatchesPerAxisReach) {
  double alpha = GetParam();
  auto grid = Grid::Make(Rect{0, 0, 100, 100}, alpha);
  ASSERT_TRUE(grid.ok());
  CellCoord center = grid->CellOf(Point{50, 50});
  CellRange wide = grid->MonitoringRegion(center, 10.0, 0.5);
  CellRange tall = grid->MonitoringRegion(center, 0.5, 10.0);
  EXPECT_EQ(wide.i_hi - wide.i_lo, tall.j_hi - tall.j_lo);
  EXPECT_EQ(wide.j_hi - wide.j_lo, tall.i_hi - tall.i_lo);
  EXPECT_GE(wide.i_hi - wide.i_lo, wide.j_hi - wide.j_lo);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, GridAlphaSweepTest,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 16.0),
                         [](const auto& info) {
                           return "Alpha" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10));
                         });

TEST(GridTest, FlatIndexIsRowMajorBijection) {
  Grid grid = MakeGrid();
  std::set<int64_t> seen;
  for (int32_t j = 0; j < grid.rows(); ++j) {
    for (int32_t i = 0; i < grid.columns(); ++i) {
      seen.insert(grid.FlatIndex(CellCoord{i, j}));
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), grid.CellCount());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), grid.CellCount() - 1);
}

}  // namespace
}  // namespace mobieyes::geo
