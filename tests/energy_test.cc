#include <gtest/gtest.h>

#include "mobieyes/net/energy.h"

namespace mobieyes::net {
namespace {

TEST(EnergyTest, DefaultsMatchPaperConstants) {
  RadioEnergyModel radio;
  // Paper §5.3 footnote: transmitting costs ~80 uJ/bit, receiving ~5 uJ/bit.
  EXPECT_NEAR(radio.TxJoulesPerBit() * 1e6, 82.1, 0.5);
  EXPECT_NEAR(radio.RxJoulesPerBit() * 1e6, 4.3, 0.1);
  EXPECT_GT(radio.TxJoulesPerBit(), 10 * radio.RxJoulesPerBit());
}

TEST(EnergyTest, EnergyScalesLinearlyWithBytes) {
  RadioEnergyModel radio;
  double one = radio.EnergyJoules(100, 200);
  double two = radio.EnergyJoules(200, 400);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
  EXPECT_EQ(radio.EnergyJoules(0, 0), 0.0);
}

TEST(EnergyTest, TransmitDominatesSymmetricTraffic) {
  RadioEnergyModel radio;
  EXPECT_GT(radio.EnergyJoules(1000, 0), radio.EnergyJoules(0, 1000));
}

TEST(EnergyTest, AveragePowerDividesByWindow) {
  RadioEnergyModel radio;
  double energy = radio.EnergyJoules(5000, 5000);
  EXPECT_NEAR(radio.AveragePowerWatts(5000, 5000, 10.0), energy / 10.0,
              1e-12);
}

TEST(EnergyTest, CustomRadioParameters) {
  RadioEnergyModel radio;
  radio.amplifier_efficiency = 1.0;  // ideal amplifier
  double ideal = radio.TxJoulesPerBit();
  radio.amplifier_efficiency = 0.5;
  EXPECT_GT(radio.TxJoulesPerBit(), ideal);
}

}  // namespace
}  // namespace mobieyes::net
