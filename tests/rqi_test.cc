#include <gtest/gtest.h>

#include <algorithm>

#include "mobieyes/core/rqi.h"

namespace mobieyes::core {
namespace {

using geo::CellCoord;
using geo::CellRange;
using geo::Grid;
using geo::Rect;

Grid MakeGrid() {
  auto grid = Grid::Make(Rect{0, 0, 100, 100}, 10.0);
  EXPECT_TRUE(grid.ok());
  return *grid;
}

bool Contains(const std::vector<QueryId>& list, QueryId qid) {
  return std::find(list.begin(), list.end(), qid) != list.end();
}

TEST(RqiTest, AddRegistersOverWholeRegion) {
  Grid grid = MakeGrid();
  ReverseQueryIndex rqi(grid);
  CellRange region{2, 4, 3, 5};
  rqi.Add(7, region);
  region.ForEach([&](int32_t i, int32_t j) {
    EXPECT_TRUE(Contains(rqi.QueriesForCell(CellCoord{i, j}), 7));
  });
  EXPECT_FALSE(Contains(rqi.QueriesForCell(CellCoord{0, 0}), 7));
  EXPECT_FALSE(Contains(rqi.QueriesForCell(CellCoord{5, 3}), 7));
}

TEST(RqiTest, RemoveUnregistersEverywhere) {
  Grid grid = MakeGrid();
  ReverseQueryIndex rqi(grid);
  CellRange region{0, 2, 0, 2};
  rqi.Add(1, region);
  rqi.Remove(1, region);
  region.ForEach([&](int32_t i, int32_t j) {
    EXPECT_TRUE(rqi.QueriesForCell(CellCoord{i, j}).empty());
  });
}

TEST(RqiTest, OverlappingQueriesCoexist) {
  Grid grid = MakeGrid();
  ReverseQueryIndex rqi(grid);
  rqi.Add(1, CellRange{0, 3, 0, 3});
  rqi.Add(2, CellRange{2, 5, 2, 5});
  const auto& overlap = rqi.QueriesForCell(CellCoord{2, 2});
  EXPECT_TRUE(Contains(overlap, 1));
  EXPECT_TRUE(Contains(overlap, 2));
  rqi.Remove(1, CellRange{0, 3, 0, 3});
  EXPECT_FALSE(Contains(rqi.QueriesForCell(CellCoord{2, 2}), 1));
  EXPECT_TRUE(Contains(rqi.QueriesForCell(CellCoord{2, 2}), 2));
}

TEST(RqiTest, NewQueriesForMoveReturnsDifference) {
  Grid grid = MakeGrid();
  ReverseQueryIndex rqi(grid);
  rqi.Add(1, CellRange{0, 2, 0, 2});  // covers both cells below
  rqi.Add(2, CellRange{2, 4, 0, 2});  // covers only the new cell
  rqi.Add(3, CellRange{6, 8, 6, 8});  // covers neither
  std::vector<QueryId> fresh =
      rqi.NewQueriesForMove(CellCoord{1, 1}, CellCoord{3, 1});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], 2);
}

TEST(RqiTest, NewQueriesForMoveEmptyWhenNothingNew) {
  Grid grid = MakeGrid();
  ReverseQueryIndex rqi(grid);
  rqi.Add(1, CellRange{0, 5, 0, 5});
  EXPECT_TRUE(
      rqi.NewQueriesForMove(CellCoord{1, 1}, CellCoord{2, 2}).empty());
}

TEST(RqiTest, MonitoringRegionMoveSimulation) {
  // Simulates the server-side §3.5 flow: a query's region moves with its
  // focal object; the RQI must track exactly the new region.
  Grid grid = MakeGrid();
  ReverseQueryIndex rqi(grid);
  CellRange old_region = grid.MonitoringRegion(CellCoord{5, 5}, 3.0);
  rqi.Add(9, old_region);
  CellRange new_region = grid.MonitoringRegion(CellCoord{6, 5}, 3.0);
  rqi.Remove(9, old_region);
  rqi.Add(9, new_region);
  EXPECT_FALSE(Contains(rqi.QueriesForCell(CellCoord{4, 5}), 9));
  EXPECT_TRUE(Contains(rqi.QueriesForCell(CellCoord{7, 5}), 9));
}

}  // namespace
}  // namespace mobieyes::core
