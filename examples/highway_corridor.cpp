// Highway corridor watch: a patrol car monitors a long, thin rectangular
// corridor ahead of and behind itself (a shape a circle models poorly) for
// a 10-minute shift. Demonstrates two repository extensions together:
// rectangular query regions (§2.3 allows any closed shape) and time-bounded
// queries (the paper's MQs carry durations).
//
// Run: ./build/examples/highway_corridor

#include <cstdio>
#include <memory>

#include "mobieyes/core/client.h"
#include "mobieyes/core/server.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/network.h"
#include "mobieyes/sim/oracle.h"

using namespace mobieyes;  // NOLINT(build/namespaces)

int main() {
  geo::Rect universe{0, 0, 120, 40};  // a strip of country around a highway
  auto grid = geo::Grid::Make(universe, 10.0);
  auto layout = net::BaseStationLayout::Make(universe, 20.0);
  auto bmap = net::Bmap::Make(*grid, *layout);

  // Object 0: the patrol car, eastbound at 60 mph along y = 20.
  // Objects 1..8: traffic on and off the highway.
  std::vector<mobility::ObjectState> objects;
  auto add = [&objects](double x, double y, double vx, double vy) {
    mobility::ObjectState object;
    object.oid = static_cast<ObjectId>(objects.size());
    object.pos = {x, y};
    object.vel = {vx, vy};
    object.max_speed = 0.03;
    objects.push_back(object);
  };
  add(20, 20, 0.0167, 0.0);    // patrol car
  add(26, 20.5, 0.022, 0.0);   // car ahead, same lane area
  add(34, 19.5, 0.014, 0.0);   // slower truck ahead
  add(14, 20.2, 0.028, 0.0);   // fast car approaching from behind
  add(25, 32.0, 0.016, 0.0);   // parallel frontage road (off corridor)
  add(48, 20.0, -0.018, 0.0);  // oncoming traffic
  add(40, 6.0, 0.012, 0.003);  // rural road, far south
  add(42, 21.0, 0.015, 0.0);
  add(70, 19.0, -0.01, 0.0);

  auto world = mobility::World::Make(*grid, std::move(objects));
  net::WirelessNetwork network;
  network.set_coverage_query(
      [&](const geo::Circle& circle, const std::function<void(ObjectId)>& fn) {
        world->ForEachObjectInCircle(circle, fn);
      });
  core::MobiEyesOptions options;
  core::MobiEyesServer server(*grid, *layout, *bmap, network, options);
  network.set_server_handler([&](ObjectId from, const net::Message& message) {
    server.OnUplink(from, message);
  });
  std::vector<std::unique_ptr<core::MobiEyesClient>> clients;
  for (size_t oid = 0; oid < world->object_count(); ++oid) {
    clients.push_back(std::make_unique<core::MobiEyesClient>(
        *world, static_cast<ObjectId>(oid), network, options));
    core::MobiEyesClient* client = clients.back().get();
    network.RegisterClient(static_cast<ObjectId>(oid),
                           [client](const net::Message& message) {
                             client->OnDownlink(message);
                           });
  }

  // The corridor: 16 miles long, 3 miles wide, centered on the patrol car,
  // active for a 10-minute shift (600 seconds).
  geo::QueryRegion corridor = geo::QueryRegion::MakeRectangle(16.0, 3.0);
  auto qid = server.InstallQuery(0, corridor, /*filter_threshold=*/1.0,
                                 /*duration=*/600.0);
  if (!qid.ok()) {
    std::fprintf(stderr, "install: %s\n", qid.status().ToString().c_str());
    return 1;
  }
  std::printf("corridor watch installed: 16 x 3 miles around the patrol "
              "car, 10-minute shift\n\n");

  sim::ExactOracle oracle(*world);
  Rng rng(3);
  for (int step = 1; step <= 24; ++step) {  // 12 simulated minutes
    world->Step(30.0, 0, rng);
    server.AdvanceTime(world->now());
    for (auto& client : clients) client->OnTick();

    auto result = server.QueryResult(*qid);
    if (!result.ok()) {
      std::printf("t=%4.0fs  shift over — query expired and was "
                  "uninstalled everywhere\n",
                  world->now());
      break;
    }
    auto exact = oracle.Evaluate(0, corridor, 1.0);
    std::printf("t=%4.0fs  patrol at x=%5.1f  vehicles in corridor: %zu "
                "(oracle %zu)\n",
                world->now(), world->object(0).pos.x, result->size(),
                exact.size());
  }

  std::printf("\nwireless traffic: %llu uplink / %llu downlink messages\n",
              static_cast<unsigned long long>(
                  network.stats().uplink_messages),
              static_cast<unsigned long long>(
                  network.stats().downlink_messages));
  return 0;
}
