// Fleet geofencing: a logistics fleet where escort vehicles must stay within
// a convoy leader's radius. Demonstrates the safe-period optimization (§4.2)
// and query grouping (§4.1) on a hand-built deployment: several queries with
// different radii share the same focal object (the convoy leader).
//
// Run: ./build/examples/fleet_geofence

#include <cstdio>
#include <memory>

#include "mobieyes/core/client.h"
#include "mobieyes/core/server.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/network.h"

using namespace mobieyes;  // NOLINT(build/namespaces)

int main() {
  geo::Rect universe{0, 0, 200, 200};
  auto grid = geo::Grid::Make(universe, 20.0);
  auto layout = net::BaseStationLayout::Make(universe, 40.0);
  auto bmap = net::Bmap::Make(*grid, *layout);

  // Object 0: convoy leader heading east. Objects 1-4: escorts at various
  // distances. Objects 5-9: unrelated trucks.
  std::vector<mobility::ObjectState> objects;
  auto add = [&objects](double x, double y, double vx, double vy,
                        double max_speed) {
    mobility::ObjectState object;
    object.oid = static_cast<ObjectId>(objects.size());
    object.pos = {x, y};
    object.vel = {vx, vy};
    object.max_speed = max_speed;
    objects.push_back(object);
  };
  add(60, 100, 0.02, 0.0, 0.02);    // leader, steady 72 mph east
  add(62, 100, 0.02, 0.0, 0.025);   // escort in formation
  add(66, 104, 0.02, 0.0, 0.025);   // escort on the flank
  add(75, 100, 0.015, 0.0, 0.025);  // escort lagging
  add(58, 96, 0.02, 0.0, 0.025);    // escort trailing
  for (int k = 0; k < 5; ++k) {
    add(20.0 + 30.0 * k, 170.0, 0.01, -0.005, 0.02);  // unrelated traffic
  }

  auto world = mobility::World::Make(*grid, std::move(objects));
  net::WirelessNetwork network;
  network.set_coverage_query(
      [&](const geo::Circle& circle, const std::function<void(ObjectId)>& fn) {
        world->ForEachObjectInCircle(circle, fn);
      });

  core::MobiEyesOptions options;
  options.enable_safe_period = true;   // distant trucks skip evaluations
  options.enable_query_grouping = true;  // both rings share broadcasts
  core::MobiEyesServer server(*grid, *layout, *bmap, network, options);
  network.set_server_handler([&](ObjectId from, const net::Message& message) {
    server.OnUplink(from, message);
  });
  std::vector<std::unique_ptr<core::MobiEyesClient>> clients;
  for (size_t oid = 0; oid < world->object_count(); ++oid) {
    clients.push_back(std::make_unique<core::MobiEyesClient>(
        *world, static_cast<ObjectId>(oid), network, options));
    core::MobiEyesClient* client = clients.back().get();
    network.RegisterClient(static_cast<ObjectId>(oid),
                           [client](const net::Message& message) {
                             client->OnDownlink(message);
                           });
  }

  // Two concentric geofences bound to the leader: a 5-mile formation ring
  // and a 12-mile stragglers ring — groupable queries with one focal.
  auto inner = server.InstallQuery(0, 5.0, 1.0);
  auto outer = server.InstallQuery(0, 12.0, 1.0);
  if (!inner.ok() || !outer.ok()) {
    std::fprintf(stderr, "install failed\n");
    return 1;
  }

  Rng rng(2);
  for (int step = 1; step <= 10; ++step) {
    world->Step(30.0, 0, rng);
    for (auto& client : clients) client->OnTick();
    auto in_formation = server.QueryResult(*inner);
    auto in_range = server.QueryResult(*outer);
    std::printf("t=%4.0fs  leader x=%5.1f  formation ring: %zu  "
                "stragglers ring: %zu\n",
                world->now(), world->object(0).pos.x, in_formation->size(),
                in_range->size());
  }

  uint64_t evaluated = 0;
  uint64_t skipped = 0;
  for (const auto& client : clients) {
    evaluated += client->queries_evaluated();
    skipped += client->safe_period_skips();
  }
  std::printf("\nsafe-period effect: %llu evaluations performed, "
              "%llu skipped\n",
              static_cast<unsigned long long>(evaluated),
              static_cast<unsigned long long>(skipped));
  std::printf("wireless traffic: %llu uplink / %llu downlink messages\n",
              static_cast<unsigned long long>(
                  network.stats().uplink_messages),
              static_cast<unsigned long long>(
                  network.stats().downlink_messages));
  return 0;
}
