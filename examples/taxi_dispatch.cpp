// Taxi dispatch (the paper's MQ2): "give me the positions of customers who
// are looking for a taxi and are within 5 miles of my location". Each taxi
// installs a moving query bound to itself with a filter that matches only
// customers; the example uses the high-level Simulation harness and then
// inspects per-taxi results against the exact oracle.
//
// Run: ./build/examples/taxi_dispatch

#include <cstdio>

#include "mobieyes/sim/simulation.h"

using namespace mobieyes;  // NOLINT(build/namespaces)

int main() {
  // A city of 100 x 100 miles with 400 moving objects. Objects with
  // attr <= 0.3 play the role of "customers looking for a taxi" (the filter
  // predicate over object properties); the rest are other road users.
  sim::SimulationConfig config;
  config.mode = sim::SimMode::kMobiEyesEager;
  config.params.area_square_miles = 10000.0;
  config.params.alpha = 10.0;
  config.params.base_station_side = 20.0;
  config.params.num_objects = 400;
  config.params.num_queries = 0;  // we install the taxi queries ourselves
  config.params.velocity_changes_per_step = 40;
  config.params.seed = 7;

  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "%s\n", simulation.status().ToString().c_str());
    return 1;
  }
  sim::Simulation& sim = **simulation;

  // Eight taxis, ids 0..7, each asking for customers within 5 miles.
  const double kCustomerFilter = 0.3;
  std::vector<QueryId> taxi_queries;
  for (ObjectId taxi = 0; taxi < 8; ++taxi) {
    auto qid = sim.server()->InstallQuery(taxi, 5.0, kCustomerFilter);
    if (!qid.ok()) {
      std::fprintf(stderr, "install failed: %s\n",
                   qid.status().ToString().c_str());
      return 1;
    }
    taxi_queries.push_back(*qid);
  }

  // Drive for 20 minutes of simulated time (40 steps of 30 s).
  sim.Run(40);

  std::printf("taxi dispatch after %.0f minutes:\n",
              sim.world().now() / 60.0);
  double total_error = 0.0;
  for (ObjectId taxi = 0; taxi < 8; ++taxi) {
    auto reported = sim.server()->QueryResult(taxi_queries[taxi]);
    auto exact = sim.oracle().Evaluate(taxi, 5.0, kCustomerFilter);
    total_error += sim::ExactOracle::MissingFraction(exact, *reported);
    std::printf("  taxi %lld at (%5.1f, %5.1f): %2zu customers nearby"
                " (oracle: %2zu)\n",
                static_cast<long long>(taxi), sim.world().object(taxi).pos.x,
                sim.world().object(taxi).pos.y, reported->size(),
                exact.size());
  }
  std::printf("mean missing fraction vs oracle: %.3f\n", total_error / 8.0);

  const auto metrics = sim.metrics();
  std::printf("messages/second on the wireless medium: %.2f\n",
              metrics.MessagesPerSecond());
  std::printf("average queries monitored per object: %.3f\n",
              metrics.AverageLqtSize());
  return 0;
}
