// Quickstart: build a tiny MobiEyes deployment by hand, install one moving
// query, step the simulated world and watch the differentially maintained
// result change as objects move.
//
// Run: ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "mobieyes/core/client.h"
#include "mobieyes/core/server.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/network.h"

using namespace mobieyes;  // NOLINT(build/namespaces)

int main() {
  // 1. The universe of discourse: a 100 x 100 mile square gridded into
  //    10-mile cells, covered by base stations on a 20-mile lattice.
  geo::Rect universe{0, 0, 100, 100};
  auto grid = geo::Grid::Make(universe, /*alpha=*/10.0);
  auto layout = net::BaseStationLayout::Make(universe, /*side=*/20.0);
  auto bmap = net::Bmap::Make(*grid, *layout);
  if (!grid.ok() || !layout.ok() || !bmap.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // 2. Three moving objects: a taxi driver (the future query's focal
  //    object), a customer drifting toward it, and a bystander far away.
  std::vector<mobility::ObjectState> objects(3);
  objects[0].oid = 0;
  objects[0].pos = {50, 50};
  objects[0].max_speed = 0.02;
  objects[1].oid = 1;
  objects[1].pos = {58, 50};
  objects[1].vel = {-0.05, 0.0};
  objects[1].max_speed = 0.05;
  objects[2].oid = 2;
  objects[2].pos = {10, 90};
  objects[2].vel = {0.01, 0.0};
  objects[2].max_speed = 0.02;
  auto world = mobility::World::Make(*grid, std::move(objects));
  if (!world.ok()) {
    std::fprintf(stderr, "world: %s\n", world.status().ToString().c_str());
    return 1;
  }

  // 3. Wire the asymmetric wireless medium: uplinks to the server, and
  //    per-base-station broadcasts delivered by grid cell.
  net::WirelessNetwork network;
  network.set_coverage_query(
      [&](const geo::Circle& circle, const std::function<void(ObjectId)>& fn) {
        world->ForEachObjectInCircle(circle, fn);
      });

  core::MobiEyesOptions options;  // eager propagation, grouping on
  core::MobiEyesServer server(*grid, *layout, *bmap, network, options);
  network.set_server_handler([&](ObjectId from, const net::Message& message) {
    server.OnUplink(from, message);
  });

  std::vector<std::unique_ptr<core::MobiEyesClient>> clients;
  for (ObjectId oid = 0; oid < 3; ++oid) {
    clients.push_back(std::make_unique<core::MobiEyesClient>(
        *world, oid, network, options));
    core::MobiEyesClient* client = clients.back().get();
    network.RegisterClient(
        oid, [client](const net::Message& message) {
          client->OnDownlink(message);
        });
  }

  // 4. Install a moving query: "objects within 5 miles of object 0".
  auto qid = server.InstallQuery(/*focal_oid=*/0, /*radius=*/5.0,
                                 /*filter_threshold=*/1.0);
  if (!qid.ok()) {
    std::fprintf(stderr, "install: %s\n", qid.status().ToString().c_str());
    return 1;
  }
  std::printf("installed query %lld: circle of 5 miles around object 0\n",
              static_cast<long long>(*qid));

  // 5. Step the world; each client runs its own evaluation logic and only
  //    containment *changes* travel to the server.
  Rng rng(1);
  for (int step = 1; step <= 6; ++step) {
    world->Step(/*dt=*/30.0, /*velocity_changes=*/0, rng);
    for (auto& client : clients) client->OnTick();

    auto result = server.QueryResult(*qid);
    std::printf("t=%3.0fs  customer at x=%.1f  result={", world->now(),
                world->object(1).pos.x);
    bool first = true;
    for (ObjectId oid : *result) {
      std::printf("%s%lld", first ? "" : ", ", static_cast<long long>(oid));
      first = false;
    }
    std::printf("}\n");
  }

  const auto& stats = network.stats();
  std::printf(
      "\nwireless traffic: %llu uplink, %llu downlink messages "
      "(%llu broadcast)\n",
      static_cast<unsigned long long>(stats.uplink_messages),
      static_cast<unsigned long long>(stats.downlink_messages),
      static_cast<unsigned long long>(stats.broadcast_messages));
  return 0;
}
