// Battlefield monitoring (the paper's MQ1): "give me the number of friendly
// units within 5 miles radius around me during the next 2 hours". A marching
// column installs queries on its lead units; the example contrasts eager and
// lazy query propagation on the same scenario — the trade-off of §3.5.
//
// Run: ./build/examples/battlefield_monitor

#include <cstdio>

#include "mobieyes/sim/simulation.h"

using namespace mobieyes;  // NOLINT(build/namespaces)

namespace {

struct ScenarioResult {
  double error;
  uint64_t uplink_messages;
  uint64_t total_messages;
};

ScenarioResult RunScenario(sim::SimMode mode) {
  sim::SimulationConfig config;
  config.mode = mode;
  config.params.area_square_miles = 40000.0;  // 200 x 200 mile theater
  config.params.alpha = 8.0;
  config.params.base_station_side = 25.0;
  config.params.num_objects = 600;   // units in the field
  config.params.num_queries = 12;    // squad leaders with 5-mile awareness
  config.params.velocity_changes_per_step = 90;  // erratic maneuvers
  config.params.query_radius_means = {5.0};
  config.params.query_selectivity = 0.8;  // friendly-unit filter
  config.params.seed = 1944;
  config.measure_error = true;
  auto simulation = sim::Simulation::Make(config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "%s\n", simulation.status().ToString().c_str());
    return {};
  }
  (*simulation)->Run(240);  // 2 hours at 30-second steps
  sim::RunMetrics metrics = (*simulation)->metrics();
  return {metrics.AverageError(), metrics.network.uplink_messages,
          metrics.network.total_messages()};
}

}  // namespace

int main() {
  std::printf("2-hour battlefield watch, 600 units, 12 squad queries\n\n");
  ScenarioResult eager = RunScenario(sim::SimMode::kMobiEyesEager);
  ScenarioResult lazy = RunScenario(sim::SimMode::kMobiEyesLazy);

  std::printf("%-22s %-14s %-16s %s\n", "propagation", "avg error",
              "uplink msgs", "total msgs");
  std::printf("%-22s %-14.4f %-16llu %llu\n", "eager (EQP)", eager.error,
              static_cast<unsigned long long>(eager.uplink_messages),
              static_cast<unsigned long long>(eager.total_messages));
  std::printf("%-22s %-14.4f %-16llu %llu\n", "lazy (LQP)", lazy.error,
              static_cast<unsigned long long>(lazy.uplink_messages),
              static_cast<unsigned long long>(lazy.total_messages));

  if (lazy.uplink_messages < eager.uplink_messages) {
    std::printf("\nLQP saved %.1f%% of uplink traffic at %.2f%% extra "
                "result error — the §3.5 trade-off.\n",
                100.0 * (1.0 - static_cast<double>(lazy.uplink_messages) /
                                   static_cast<double>(eager.uplink_messages)),
                100.0 * (lazy.error - eager.error));
  }
  return 0;
}
