// mobieyes_sim: command-line driver for the MobiEyes simulator. Runs one
// query-processing scheme over a Table 1-style workload and prints the full
// metrics report (server load, messaging cost, LQT sizes, result error,
// per-object power), plus the analytic alpha-model prediction.
//
// Usage:
//   mobieyes_sim [--mode=eqp|lqp|object-index|query-index|naive|
//                        central-optimal]
//                [--objects=N] [--queries=N] [--nmo=N] [--alpha=F]
//                [--area=F] [--alen=F] [--steps=N] [--warmup=N] [--seed=N]
//                [--delta=F] [--radius-factor=F] [--selectivity=F]
//                [--safe-period] [--no-grouping] [--no-error] [--no-bytes]
//                [--hotspots] [--histogram] [--trace=PATH]
//                [--metrics-json=PATH] [--sample-stride=N]
//                [--heatmap=PATH] [--report=PATH]
//                [--drop-rate=F] [--delay-steps=N] [--delay-rate=F]
//                [--dup-rate=F] [--outage=P:D] [--disconnect=R:P:D]
//                [--fault-seed=N] [--harden]
//                [--server-crash=S:R] [--client-restart-rate=F]
//                [--checkpoint-stride=N]
//                [--shards=N] [--shard-threads=N]
//                [--shard-partition=rowband|hash]
//                [--rebalance=off|STRIDE:THRESHOLD:MAX_MOVES]
//
// The fault flags configure the net::FaultyNetwork (see
// src/mobieyes/net/fault_injection.h); --harden switches the MobiEyes
// protocol to the hardened variant (uplink acks + retries, soft-state
// leases, periodic reconciliation). The crash-recovery flags kill the
// server at step S and restore it from its checkpoint+WAL R steps later,
// cold-restart clients at the given per-step rate, and set the server
// checkpoint stride (DESIGN.md §9). The sharding flags split the server
// into grid-partitioned shards behind a routing coordinator (DESIGN.md
// §10); results and wireless traffic are identical for any shard count.
//
// --heatmap=PATH writes the per-cell heat maps (uplinks, RQI scan work,
// installs, residency) as deterministic JSON — byte-identical across
// shard/thread counts for the same seed. --report=PATH turns on every
// observability component and writes a single self-contained HTML report
// (sparklines, heat-map grids, latency tables; DESIGN.md §12).
//
// Unknown flags are an error (exit 2), so typos never silently run the
// default configuration.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "mobieyes/core/rebalance.h"
#include "mobieyes/net/backplane.h"
#include "mobieyes/net/energy.h"
#include "mobieyes/obs/report_html.h"
#include "mobieyes/obs/trace_recorder.h"
#include "mobieyes/sim/alpha_model.h"
#include "mobieyes/sim/simulation.h"

using namespace mobieyes;  // NOLINT(build/namespaces)

namespace {

struct CliOptions {
  sim::SimulationConfig config;
  int steps = 20;
  bool show_alpha_model = true;
  bool show_histogram = false;
  bool harden = false;
  double delay_rate = -1.0;  // <0: default to 0.2 when --delay-steps is set
  std::string trace_path;
  std::string metrics_path;
  std::string heatmap_path;
  std::string report_path;
};

// Writes `data` to `path`; prints an error and returns false on failure.
bool WriteFileOrComplain(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    return false;
  }
  std::fclose(f);
  return true;
}

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode=eqp|lqp|object-index|query-index|naive|"
               "central-optimal]\n"
               "          [--objects=N] [--queries=N] [--nmo=N] [--alpha=F]\n"
               "          [--area=F] [--alen=F] [--steps=N] [--warmup=N]\n"
               "          [--seed=N] [--delta=F] [--radius-factor=F]\n"
               "          [--selectivity=F] [--safe-period] [--no-grouping]\n"
               "          [--no-error] [--no-bytes] [--hotspots]\n"
               "          [--histogram]\n"
               "          [--trace=PATH] [--metrics-json=PATH]\n"
               "          [--sample-stride=N]\n"
               "          [--heatmap=PATH] [--report=PATH]\n"
               "          [--drop-rate=F] [--delay-steps=N] [--delay-rate=F]\n"
               "          [--dup-rate=F] [--outage=P:D] [--disconnect=R:P:D]\n"
               "          [--fault-seed=N] [--harden]\n"
               "          [--server-crash=S:R] [--client-restart-rate=F]\n"
               "          [--checkpoint-stride=N]\n"
               "          [--shards=N] [--shard-threads=N]\n"
               "          [--shard-partition=rowband|hash]\n"
               "          [--rebalance=off|STRIDE:THRESHOLD:MAX_MOVES]\n"
               "          [--shard-transport=inproc|process] [--shardd=PATH]\n"
               "          [--backplane-timeout-steps=N]\n"
               "          [--heartbeat-stride=N] [--shard-kill=S:K]\n"
               "          [--shard-authority] "
               "[--backplane-fault=drop=F,delay=F:N,trunc=F,flip=F,"
               "kill=S:K,seed=N]\n",
               argv0);
}

// Parses "--key=value" into key/value; returns false for non-options.
bool SplitFlag(const char* arg, std::string* key, std::string* value) {
  if (std::strncmp(arg, "--", 2) != 0) return false;
  const char* eq = std::strchr(arg, '=');
  if (eq == nullptr) {
    *key = arg + 2;
    value->clear();
  } else {
    key->assign(arg + 2, eq);
    value->assign(eq + 1);
  }
  return true;
}

bool ParseMode(const std::string& value, sim::SimMode* mode) {
  if (value == "eqp") *mode = sim::SimMode::kMobiEyesEager;
  else if (value == "lqp") *mode = sim::SimMode::kMobiEyesLazy;
  else if (value == "object-index") *mode = sim::SimMode::kObjectIndex;
  else if (value == "query-index") *mode = sim::SimMode::kQueryIndex;
  else if (value == "naive") *mode = sim::SimMode::kNaive;
  else if (value == "central-optimal") *mode = sim::SimMode::kCentralOptimal;
  else return false;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* cli) {
  cli->config.measure_error = true;
  cli->config.track_per_object_bytes = true;
  for (int k = 1; k < argc; ++k) {
    std::string key;
    std::string value;
    if (!SplitFlag(argv[k], &key, &value)) {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[k]);
      return false;
    }
    auto& params = cli->config.params;
    if (key == "mode") {
      if (!ParseMode(value, &cli->config.mode)) return false;
    } else if (key == "objects") {
      params.num_objects = std::atoi(value.c_str());
    } else if (key == "queries") {
      params.num_queries = std::atoi(value.c_str());
    } else if (key == "nmo") {
      params.velocity_changes_per_step = std::atoi(value.c_str());
    } else if (key == "alpha") {
      params.alpha = std::atof(value.c_str());
    } else if (key == "area") {
      params.area_square_miles = std::atof(value.c_str());
    } else if (key == "alen") {
      params.base_station_side = std::atof(value.c_str());
    } else if (key == "steps") {
      cli->steps = std::atoi(value.c_str());
    } else if (key == "warmup") {
      cli->config.warmup_steps = std::atoi(value.c_str());
    } else if (key == "seed") {
      params.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "delta") {
      params.dead_reckoning_threshold = std::atof(value.c_str());
    } else if (key == "radius-factor") {
      params.radius_factor = std::atof(value.c_str());
    } else if (key == "selectivity") {
      params.query_selectivity = std::atof(value.c_str());
    } else if (key == "safe-period") {
      cli->config.mobieyes.enable_safe_period = true;
    } else if (key == "no-grouping") {
      cli->config.mobieyes.enable_query_grouping = false;
    } else if (key == "no-error") {
      cli->config.measure_error = false;
    } else if (key == "no-bytes") {
      cli->config.track_per_object_bytes = false;
    } else if (key == "hotspots") {
      params.object_distribution = sim::ObjectDistribution::kHotspot;
    } else if (key == "histogram") {
      cli->show_histogram = true;
    } else if (key == "trace") {
      cli->trace_path = value;
      cli->config.obs.enable_trace = true;
    } else if (key == "metrics-json") {
      cli->metrics_path = value;
      cli->config.obs.enable_metrics = true;
      // Lifecycle latency tables ride inside the metrics report, matching
      // the bench harness's --metrics-json behavior.
      cli->config.obs.enable_lifecycle = true;
      if (cli->config.obs.sample_stride == 0) cli->config.obs.sample_stride = 1;
    } else if (key == "sample-stride") {
      cli->config.obs.sample_stride = std::atoi(value.c_str());
    } else if (key == "heatmap") {
      cli->heatmap_path = value;
      cli->config.obs.enable_heatmap = true;
    } else if (key == "report") {
      // One flag turns on everything the HTML report can render.
      cli->report_path = value;
      cli->config.obs.enable_metrics = true;
      cli->config.obs.enable_heatmap = true;
      cli->config.obs.enable_lifecycle = true;
      if (cli->config.obs.sample_stride == 0) cli->config.obs.sample_stride = 1;
    } else if (key == "drop-rate") {
      cli->config.faults.uplink_drop_rate = std::atof(value.c_str());
      cli->config.faults.downlink_drop_rate =
          cli->config.faults.uplink_drop_rate;
    } else if (key == "delay-steps") {
      cli->config.faults.max_delay_steps = std::atoi(value.c_str());
    } else if (key == "delay-rate") {
      cli->delay_rate = std::atof(value.c_str());
    } else if (key == "dup-rate") {
      cli->config.faults.duplicate_rate = std::atof(value.c_str());
    } else if (key == "outage") {
      if (std::sscanf(value.c_str(), "%d:%d",
                      &cli->config.faults.outage_period_steps,
                      &cli->config.faults.outage_duration_steps) != 2) {
        std::fprintf(stderr, "bad --outage value '%s' (want PERIOD:DURATION)\n",
                     value.c_str());
        return false;
      }
    } else if (key == "disconnect") {
      if (std::sscanf(value.c_str(), "%lf:%d:%d",
                      &cli->config.faults.disconnect_rate,
                      &cli->config.faults.disconnect_period_steps,
                      &cli->config.faults.disconnect_duration_steps) != 3) {
        std::fprintf(
            stderr, "bad --disconnect value '%s' (want RATE:PERIOD:DURATION)\n",
            value.c_str());
        return false;
      }
    } else if (key == "fault-seed") {
      cli->config.faults.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "server-crash") {
      long long crash_step = -1;
      int recovery_steps = -1;
      if (std::sscanf(value.c_str(), "%lld:%d", &crash_step,
                      &recovery_steps) != 2 ||
          crash_step < 0 || recovery_steps < 0) {
        std::fprintf(stderr,
                     "bad --server-crash value '%s' (want STEP:RECOVERY)\n",
                     value.c_str());
        return false;
      }
      cli->config.faults.server_crash_step = crash_step;
      cli->config.faults.server_recovery_steps = recovery_steps;
    } else if (key == "client-restart-rate") {
      cli->config.faults.client_restart_rate = std::atof(value.c_str());
    } else if (key == "checkpoint-stride") {
      cli->config.checkpoint_stride = std::atoi(value.c_str());
    } else if (key == "shards") {
      cli->config.mobieyes.sharding.num_shards = std::atoi(value.c_str());
      if (cli->config.mobieyes.sharding.num_shards < 1) {
        std::fprintf(stderr, "bad --shards value '%s'\n", value.c_str());
        return false;
      }
    } else if (key == "shard-threads") {
      cli->config.shard_threads = std::atoi(value.c_str());
      if (cli->config.shard_threads < 1) {
        std::fprintf(stderr, "bad --shard-threads value '%s'\n",
                     value.c_str());
        return false;
      }
    } else if (key == "shard-partition") {
      if (value == "rowband") {
        cli->config.mobieyes.sharding.partition =
            core::ShardPartition::kRowBand;
      } else if (value == "hash") {
        cli->config.mobieyes.sharding.partition = core::ShardPartition::kHash;
      } else {
        std::fprintf(stderr,
                     "bad --shard-partition value '%s' (want rowband|hash)\n",
                     value.c_str());
        return false;
      }
    } else if (key == "rebalance") {
      Status st = core::ParseRebalanceSpec(
          value, &cli->config.mobieyes.sharding);
      if (!st.ok()) {
        std::fprintf(stderr, "bad --rebalance value '%s': %s\n", value.c_str(),
                     st.ToString().c_str());
        return false;
      }
    } else if (key == "shard-transport") {
      if (value == "inproc") {
        cli->config.shard_transport =
            sim::SimulationConfig::ShardTransport::kInProcess;
      } else if (value == "process") {
        cli->config.shard_transport =
            sim::SimulationConfig::ShardTransport::kProcess;
      } else {
        std::fprintf(
            stderr,
            "bad --shard-transport value '%s' (want inproc|process)\n",
            value.c_str());
        return false;
      }
    } else if (key == "shardd") {
      cli->config.supervisor.shardd_path = value;
    } else if (key == "backplane-timeout-steps") {
      cli->config.supervisor.timeout_steps = std::atoi(value.c_str());
      if (cli->config.supervisor.timeout_steps < 1) {
        std::fprintf(stderr, "bad --backplane-timeout-steps value '%s'\n",
                     value.c_str());
        return false;
      }
    } else if (key == "heartbeat-stride") {
      cli->config.supervisor.heartbeat_stride = std::atoi(value.c_str());
      if (cli->config.supervisor.heartbeat_stride < 1) {
        std::fprintf(stderr, "bad --heartbeat-stride value '%s'\n",
                     value.c_str());
        return false;
      }
    } else if (key == "shard-authority") {
      cli->config.shard_authority = true;
    } else if (key == "backplane-fault") {
      Status st = net::ParseBackplaneFaultSpec(value,
                                               &cli->config.backplane_fault);
      if (!st.ok()) {
        std::fprintf(stderr, "bad --backplane-fault value '%s': %s\n",
                     value.c_str(), st.ToString().c_str());
        return false;
      }
    } else if (key == "shard-kill") {
      long long kill_step = -1;
      int kill_shard = -1;
      if (std::sscanf(value.c_str(), "%lld:%d", &kill_step, &kill_shard) !=
              2 ||
          kill_step < 0 || kill_shard < 0) {
        std::fprintf(stderr, "bad --shard-kill value '%s' (want STEP:SHARD)\n",
                     value.c_str());
        return false;
      }
      cli->config.shard_kill_step = kill_step;
      cli->config.shard_kill_index = kill_shard;
    } else if (key == "harden") {
      cli->harden = true;
    } else if (key == "help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (cli.config.faults.max_delay_steps > 0 && cli.delay_rate < 0.0) {
    cli.delay_rate = 0.2;  // a bare --delay-steps should delay something
  }
  if (cli.delay_rate >= 0.0) cli.config.faults.delay_rate = cli.delay_rate;
  if (cli.harden) {
    cli.config.mobieyes = core::HardenedOptions(cli.config.mobieyes,
                                                cli.config.params.time_step);
  }

  auto simulation = sim::Simulation::Make(cli.config);
  if (!simulation.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 simulation.status().ToString().c_str());
    return 1;
  }
  net::MessageHistogram histogram;
  if (cli.show_histogram) {
    (*simulation)->network().set_observer(
        [&histogram](net::Direction, int64_t, const net::Message& message) {
          histogram.Record(message);
        });
  }
  std::printf("mode=%s objects=%d queries=%d nmo=%d alpha=%.3g alen=%.3g "
              "area=%.4g seed=%llu\n",
              sim::SimModeName(cli.config.mode), cli.config.params.num_objects,
              cli.config.params.num_queries,
              cli.config.params.velocity_changes_per_step,
              cli.config.params.alpha, cli.config.params.base_station_side,
              cli.config.params.area_square_miles,
              static_cast<unsigned long long>(cli.config.params.seed));

  (*simulation)->Run(cli.steps);
  sim::RunMetrics metrics = (*simulation)->metrics();

  std::printf("\n-- run -------------------------------------------------\n");
  std::printf("steps                      %lld (%.0f simulated seconds)\n",
              static_cast<long long>(metrics.steps),
              metrics.simulated_seconds);
  std::printf("server load                %.6g s/step\n",
              metrics.ServerLoadPerStep());
  std::printf("\n-- wireless medium -------------------------------------\n");
  std::printf("messages/second            %.4g\n", metrics.MessagesPerSecond());
  std::printf("uplink messages/second     %.4g\n",
              metrics.UplinkMessagesPerSecond());
  std::printf("uplink messages            %llu (%llu bytes)\n",
              static_cast<unsigned long long>(metrics.network.uplink_messages),
              static_cast<unsigned long long>(metrics.network.uplink_bytes));
  std::printf("downlink messages          %llu (%llu bytes, %llu broadcast)\n",
              static_cast<unsigned long long>(
                  metrics.network.downlink_messages),
              static_cast<unsigned long long>(metrics.network.downlink_bytes),
              static_cast<unsigned long long>(
                  metrics.network.broadcast_messages));
  std::printf("broadcast receptions       %llu\n",
              static_cast<unsigned long long>(
                  metrics.network.broadcast_receptions));
  if (cli.config.track_per_object_bytes) {
    net::RadioEnergyModel radio;
    std::printf("per-object comm power      %.4g mW\n",
                metrics.AveragePowerMilliwatts(radio));
  }
  if (cli.config.mode == sim::SimMode::kMobiEyesEager ||
      cli.config.mode == sim::SimMode::kMobiEyesLazy) {
    std::printf("\n-- moving objects --------------------------------------\n");
    std::printf("average LQT size           %.4g queries/object\n",
                metrics.AverageLqtSize());
    std::printf("query evaluations          %llu (+%llu safe-period skips)\n",
                static_cast<unsigned long long>(metrics.queries_evaluated),
                static_cast<unsigned long long>(metrics.safe_period_skips));
    std::printf("client processing          %.6g s/step/object\n",
                metrics.ClientProcessingPerStep());
  }
  if (cli.config.measure_error) {
    std::printf("\n-- accuracy --------------------------------------------\n");
    std::printf("avg result error           %.4g (missing fraction)\n",
                metrics.AverageError());
    std::printf("avg spurious fraction      %.4g\n", metrics.AverageSpurious());
    std::printf("avg oracle agreement       %.4g (Jaccard)\n",
                metrics.AverageAgreement());
  }
  if (cli.config.faults.active()) {
    std::printf("\n-- injected faults (measured window) -------------------\n");
    std::printf("dropped                    %llu (%llu up, %llu down, "
                "%llu broadcast)\n",
                static_cast<unsigned long long>(
                    metrics.network.total_dropped()),
                static_cast<unsigned long long>(metrics.network.uplink_dropped),
                static_cast<unsigned long long>(
                    metrics.network.downlink_dropped),
                static_cast<unsigned long long>(
                    metrics.network.broadcast_dropped));
    std::printf("delayed                    %llu\n",
                static_cast<unsigned long long>(
                    metrics.network.delayed_messages));
    std::printf("duplicated                 %llu\n",
                static_cast<unsigned long long>(
                    metrics.network.duplicated_messages));
    std::printf("disconnect events          %llu\n",
                static_cast<unsigned long long>(
                    metrics.network.disconnect_events));
    std::printf("undeliverable downlinks    %llu\n",
                static_cast<unsigned long long>(
                    metrics.network.undeliverable_downlinks));
    std::printf("undeliverable (dead end)   %llu receiver-down, "
                "%llu server-down\n",
                static_cast<unsigned long long>(
                    metrics.network.undeliverable_by_reason[static_cast<
                        size_t>(net::NetworkStats::UndeliverableReason::
                                    kReceiverDisconnected)]),
                static_cast<unsigned long long>(
                    metrics.network.undeliverable_by_reason[static_cast<
                        size_t>(net::NetworkStats::UndeliverableReason::
                                    kServerDown)]));
  }
  {
    core::MobiEyesServer* server = (*simulation)->server();
    if (server != nullptr && server->num_shards() > 1) {
      const core::ShardRouter& router = server->router();
      std::printf(
          "\n-- server shards ---------------------------------------\n");
      std::printf("shards                     %d (%s partition)\n",
                  router.num_shards(),
                  router.shard_map().partition() ==
                          core::ShardPartition::kRowBand
                      ? "rowband"
                      : "hash");
      std::printf("step phase                 %.6g s total (%.6g s/step)\n",
                  metrics.server_step_seconds,
                  metrics.steps > 0 ? metrics.server_step_seconds /
                                          static_cast<double>(metrics.steps)
                                    : 0.0);
      std::printf("backplane messages         %llu (%llu bytes, "
                  "%llu handoffs)\n",
                  static_cast<unsigned long long>(
                      metrics.network.inter_shard_messages),
                  static_cast<unsigned long long>(
                      metrics.network.inter_shard_bytes),
                  static_cast<unsigned long long>(
                      metrics.network.inter_shard_handoffs));
      for (int s = 0; s < router.num_shards(); ++s) {
        const core::ServerShard& shard = router.shard(s);
        std::printf("shard %-2d                   %zu queries, %zu focals, "
                    "%llu uplinks, %llu in / %llu out handoffs\n",
                    s, shard.sqt().size(), shard.fot().size(),
                    static_cast<unsigned long long>(
                        shard.stats().uplinks_routed),
                    static_cast<unsigned long long>(shard.stats().handoffs_in),
                    static_cast<unsigned long long>(
                        shard.stats().handoffs_out));
      }
      if (cli.config.mobieyes.sharding.rebalance_enabled()) {
        std::printf(
            "\n-- online rebalancing ----------------------------------\n");
        std::printf("partition epoch            %llu\n",
                    static_cast<unsigned long long>(metrics.rebalance_epoch));
        std::printf("rebalance events           %llu (%llu cells moved)\n",
                    static_cast<unsigned long long>(metrics.rebalance_events),
                    static_cast<unsigned long long>(
                        metrics.rebalance_cells_moved));
        std::printf("migration volume           %llu focal handoffs, "
                    "%llu RQI row ids\n",
                    static_cast<unsigned long long>(
                        metrics.rebalance_focals_moved),
                    static_cast<unsigned long long>(
                        metrics.rebalance_rqi_ids_moved));
      }
    }
  }
  if (core::ShardSupervisor* supervisor = (*simulation)->supervisor()) {
    const core::SupervisorStats& bp = supervisor->stats();
    std::printf("\n-- shard backplane (process transport) -----------------\n");
    std::printf("daemons                    %d (%lld down now)\n",
                supervisor->num_peers(),
                static_cast<long long>(supervisor->down_shards()));
    std::printf("frames sent / received     %llu / %llu\n",
                static_cast<unsigned long long>(bp.frames_sent),
                static_cast<unsigned long long>(bp.frames_received));
    std::printf("bytes sent / received      %llu / %llu\n",
                static_cast<unsigned long long>(bp.bytes_sent),
                static_cast<unsigned long long>(bp.bytes_received));
    std::printf("batches / heartbeats       %llu / %llu\n",
                static_cast<unsigned long long>(bp.batches_sent),
                static_cast<unsigned long long>(bp.heartbeats_sent));
    std::printf("syncs / replayed frames    %llu / %llu\n",
                static_cast<unsigned long long>(bp.syncs_sent),
                static_cast<unsigned long long>(bp.replayed_frames));
    std::printf("mean RPC round trip        %.1f us over %llu acks\n",
                metrics.BackplaneRttMicros(),
                static_cast<unsigned long long>(bp.rtt_samples));
    std::printf("timeouts / digest misses   %llu / %llu\n",
                static_cast<unsigned long long>(bp.rpc_timeouts),
                static_cast<unsigned long long>(bp.digest_mismatches));
    std::printf("daemon restarts            %llu\n",
                static_cast<unsigned long long>(bp.restarts));
    std::printf("uplinks deferred/drained   %llu / %llu (%llu dropped)\n",
                static_cast<unsigned long long>(metrics.uplinks_deferred),
                static_cast<unsigned long long>(metrics.uplinks_drained),
                static_cast<unsigned long long>(metrics.uplinks_dropped));
    if (metrics.backplane_scans_remote + metrics.backplane_scans_local > 0 ||
        metrics.backplane_failovers > 0 || metrics.backplane_cutovers > 0) {
      std::printf("authority scans            %llu remote / %llu local\n",
                  static_cast<unsigned long long>(
                      metrics.backplane_scans_remote),
                  static_cast<unsigned long long>(
                      metrics.backplane_scans_local));
      std::printf("failovers / cutovers       %llu / %llu\n",
                  static_cast<unsigned long long>(
                      metrics.backplane_failovers),
                  static_cast<unsigned long long>(
                      metrics.backplane_cutovers));
      std::printf("mean scan round trip       %.1f us over %llu scans\n",
                  metrics.BackplaneScanRttMicros(),
                  static_cast<unsigned long long>(
                      metrics.backplane_scan_rtt_samples));
    }
    if (metrics.backplane_chaos_frames + metrics.backplane_chaos_kills > 0) {
      std::printf("chaos injections           %llu frames, %llu kills\n",
                  static_cast<unsigned long long>(
                      metrics.backplane_chaos_frames),
                  static_cast<unsigned long long>(
                      metrics.backplane_chaos_kills));
    }
  }
  if (metrics.server_crashes > 0 || metrics.client_restarts > 0 ||
      metrics.checkpoints_taken > 0) {
    std::printf("\n-- crash recovery --------------------------------------\n");
    std::printf("server crashes             %lld\n",
                static_cast<long long>(metrics.server_crashes));
    std::printf("client restarts            %lld\n",
                static_cast<long long>(metrics.client_restarts));
    std::printf("checkpoints taken          %lld\n",
                static_cast<long long>(metrics.checkpoints_taken));
    std::printf("WAL records replayed       %llu (%llu lost to overflow)\n",
                static_cast<unsigned long long>(metrics.wal_records_replayed),
                static_cast<unsigned long long>(metrics.wal_records_dropped));
  }
  std::printf("\n-- message breakdown (measured window) -----------------\n");
  for (size_t t = 0; t < net::kNumMessageTypes; ++t) {
    uint64_t count = metrics.network.messages_by_type[t];
    uint64_t dropped = metrics.network.dropped_by_type[t];
    if (count == 0 && dropped == 0) continue;
    std::printf("%-26s %8llu msgs  %6.2f%%  %8llu dropped\n",
                net::MessageTypeName(static_cast<net::MessageType>(t)),
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(metrics.network.total_messages()),
                static_cast<unsigned long long>(dropped));
  }
  if (cli.show_histogram) {
    std::printf("\n-- message mix (measured window) -----------------------\n");
    for (const auto& [type, row] : histogram.rows) {
      std::printf("%-26s %8llu msgs  %10llu bytes\n",
                  net::MessageTypeName(type),
                  static_cast<unsigned long long>(row.messages),
                  static_cast<unsigned long long>(row.bytes));
    }
  }
  if (cli.show_alpha_model &&
      (cli.config.mode == sim::SimMode::kMobiEyesEager ||
       cli.config.mode == sim::SimMode::kMobiEyesLazy)) {
    sim::AlphaCostModel model(cli.config.params);
    std::printf("\n-- analytic alpha model --------------------------------\n");
    std::printf("predicted msgs/second      %.4g at alpha=%.3g\n",
                model.MessagesPerSecond(cli.config.params.alpha),
                cli.config.params.alpha);
    double best = model.OptimalAlpha();
    std::printf("model-optimal alpha        %.3g (predicted %.4g msgs/s)\n",
                best, model.MessagesPerSecond(best));
  }
  if (!cli.trace_path.empty()) {
    const obs::TraceRecorder* trace = (*simulation)->trace_recorder();
    if (trace == nullptr ||
        !obs::TraceRecorder::WriteFile(cli.trace_path, trace->events())) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   cli.trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 trace->events().size(), cli.trace_path.c_str());
  }
  // Close any partially filled heat-map window before exporting: short runs
  // (steps not a multiple of heatmap_window) still get a residency snapshot
  // and folded totals.
  (*simulation)->FlushHeatmap();
  if (!cli.metrics_path.empty()) {
    std::string json = (*simulation)->ObservabilityJson();
    if (!WriteFileOrComplain(cli.metrics_path, json)) return 1;
    std::fprintf(stderr, "wrote metrics report to %s\n",
                 cli.metrics_path.c_str());
  }
  if (!cli.heatmap_path.empty()) {
    // Deterministic flavor (layout-dependent channels omitted): exports
    // from different --shards/--shard-threads runs of one seed byte-match.
    std::string json = (*simulation)->heatmap()->ToJson(false);
    if (!WriteFileOrComplain(cli.heatmap_path, json)) return 1;
    std::fprintf(stderr, "wrote heat-map export to %s\n",
                 cli.heatmap_path.c_str());
  }
  if (!cli.report_path.empty()) {
    std::string json = (*simulation)->ObservabilityJson();
    std::string error;
    std::unique_ptr<obs::JsonValue> root = obs::ParseJson(json, &error);
    if (root == nullptr) {
      std::fprintf(stderr, "internal error: observability JSON: %s\n",
                   error.c_str());
      return 1;
    }
    std::string title = std::string("mobieyes_sim ") +
                        sim::SimModeName(cli.config.mode) + " seed=" +
                        std::to_string(cli.config.params.seed);
    if (!WriteFileOrComplain(cli.report_path,
                             obs::RenderHtmlReport(*root, title))) {
      return 1;
    }
    std::fprintf(stderr, "wrote HTML report to %s\n", cli.report_path.c_str());
  }
  return 0;
}
