// mobieyes_report: renders an observability JSON export into a single
// self-contained HTML report — metric tables, histogram and StepSampler
// sparklines, heat-map grids and lifecycle latency tables, all inline CSS
// and SVG with no external dependencies (DESIGN.md §12).
//
// Accepts either a Simulation::ObservabilityJson object (mobieyes_sim
// --metrics-json / --report input) or a bench metrics file with per-cell
// reports ({"bench": ..., "cells": [{"label": ..., "report": {...}}]}),
// rendering one section per cell.
//
// Usage:
//   mobieyes_report INPUT.json OUTPUT.html [--title=TEXT]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "mobieyes/obs/report_html.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr, "usage: %s INPUT.json OUTPUT.html [--title=TEXT]\n",
               argv0);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string title;
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--title=", 8) == 0) {
      title = argv[k] + 8;
    } else if (std::strncmp(argv[k], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[k]);
      PrintUsage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = argv[k];
    } else if (output.empty()) {
      output = argv[k];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[k]);
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (input.empty() || output.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (title.empty()) title = input;

  std::string json;
  if (!ReadFile(input, &json)) {
    std::fprintf(stderr, "failed to read %s\n", input.c_str());
    return 1;
  }
  std::string error;
  std::unique_ptr<mobieyes::obs::JsonValue> root =
      mobieyes::obs::ParseJson(json, &error);
  if (root == nullptr) {
    std::fprintf(stderr, "%s: %s\n", input.c_str(), error.c_str());
    return 1;
  }
  std::string html = mobieyes::obs::RenderHtmlReport(*root, title);
  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(html.data(), 1, html.size(), f) != html.size()) {
    std::fprintf(stderr, "failed to write %s\n", output.c_str());
    if (f != nullptr) std::fclose(f);
    return 1;
  }
  std::fclose(f);
  std::fprintf(stderr, "wrote %zu bytes to %s\n", html.size(), output.c_str());
  return 0;
}
