// Shard replica daemon (DESIGN.md §13). Spawned by core::ShardSupervisor,
// one process per shard:
//
//   mobieyes_shardd --address=uds:/tmp/x/bp.sock --shard=2 [--seed=N]
//                   [--connect-timeout-ms=N] [--verbose]
//
// Connects to the supervisor's backplane, announces itself, then mirrors
// the shard: applies config/state-sync/step-batch frames and acks each with
// its state digest. Under --shard-authority (DESIGN.md §14) the daemon is
// the authoritative executor: it additionally answers kScanRequest frames
// with digest-stamped RQI rows that the router merges into the hot path.
// Exits 0 on a clean shutdown frame, nonzero when the supervisor stays
// unreachable.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mobieyes/core/shard_daemon.h"

int main(int argc, char** argv) {
  mobieyes::core::ShardDaemonOptions options;
  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    if (arg.rfind("--address=", 0) == 0) {
      options.address = arg.substr(10);
    } else if (arg.rfind("--shard=", 0) == 0) {
      options.shard_id = atoi(arg.c_str() + 8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--connect-timeout-ms=", 0) == 0) {
      options.connect_timeout_ms = atoi(arg.c_str() + 21);
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::fprintf(stderr, "mobieyes_shardd: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.address.empty()) {
    std::fprintf(stderr, "mobieyes_shardd: --address is required\n");
    return 2;
  }
  mobieyes::core::ShardDaemon daemon(options);
  return daemon.Run();
}
