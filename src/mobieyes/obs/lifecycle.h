#ifndef MOBIEYES_OBS_LIFECYCLE_H_
#define MOBIEYES_OBS_LIFECYCLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mobieyes::obs {

// Virtual-step latency tracking for protocol rounds: a message (or larger
// protocol exchange) is stamped at origination and resolved at its matching
// terminal event; the elapsed *simulation steps* land in a per-kind
// fixed-bound histogram. No wall clock is involved anywhere, so the export
// is deterministic by construction — the same seed produces the same
// latencies on any host, shard count or thread count.
//
// The matching discipline is built for lossy protocols:
//  * Stamp on an already-pending key keeps the original stamp and counts a
//    restamp (a retry extends the same round, it does not start a new one).
//  * ResolveIfPending is a no-op on an absent key — duplicate terminal
//    events (retransmitted acks, repeated result inserts) cannot inflate
//    anything.
//  * Drop cancels a pending stamp (query removed, pending-slot evicted,
//    client restarted) and counts it as cancelled.
//  * Stamps still pending at export are *counted* (the `pending` field),
//    never silently leaked.
//
// The handoff kind only fires when shards > 1 and depends on the
// partition; like HeatMap's handoffs channel it is flagged
// layout-dependent and omitted from deterministic exports.
class LifecycleTracker {
 public:
  enum Kind {
    kUplinkRoundTrip = 0,  // net uplink sent -> next downlink to the sender
    kUplinkAck,            // hardened client uplink -> matching server ack
    kInstallFirstResult,   // query installed -> first object enters result
    kHandoff,              // focal migration start -> ownership adopted
    kCrashRestore,         // server crash -> checkpoint+WAL restore done
    kCrashReconverge,      // server crash -> accuracy back above threshold
    kBackplaneRpc,         // backplane frame sent -> ack (drop on timeout)
    kNumKinds,
  };

  static const char* KindName(Kind kind);
  static bool KindLayoutDependent(Kind kind);

  LifecycleTracker();

  // The virtual clock; the simulation advances it once per step.
  void set_step(int64_t step) { step_ = step; }
  int64_t step() const { return step_; }

  // Opens a round for (kind, key) at the current step. Keeps the original
  // stamp if one is already pending.
  void Stamp(Kind kind, uint64_t key);

  // Closes the round if one is pending and records its step latency.
  // Returns false (and does nothing) when no stamp is pending.
  bool ResolveIfPending(Kind kind, uint64_t key);

  // Cancels a pending round without recording a latency.
  void Drop(Kind kind, uint64_t key);

  // Zeroes every histogram and counter and forgets pending stamps
  // (measurement restart after warmup).
  void Reset();

  uint64_t stamped(Kind kind) const { return kinds_[kind].stamped; }
  uint64_t resolved(Kind kind) const { return kinds_[kind].resolved; }
  uint64_t restamped(Kind kind) const { return kinds_[kind].restamped; }
  uint64_t cancelled(Kind kind) const { return kinds_[kind].cancelled; }
  uint64_t pending(Kind kind) const { return kinds_[kind].pending.size(); }
  // counts().size() == bounds().size() + 1 (overflow bucket last).
  const std::vector<int64_t>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts(Kind kind) const {
    return kinds_[kind].counts;
  }
  uint64_t latency_sum(Kind kind) const { return kinds_[kind].sum; }

  // {"step": N, "bounds": [...], "kinds": {name: {"stamped": n,
  //  "resolved": n, "restamped": n, "cancelled": n, "pending": n,
  //  "counts": [...], "sum": s}}} in fixed kind order. With
  // include_layout_dependent=false, layout-dependent kinds are omitted.
  std::string ToJson(bool include_layout_dependent = true) const;

 private:
  struct KindState {
    std::unordered_map<uint64_t, int64_t> pending;  // key -> stamp step
    std::vector<uint64_t> counts;
    uint64_t stamped = 0;
    uint64_t resolved = 0;
    uint64_t restamped = 0;
    uint64_t cancelled = 0;
    uint64_t sum = 0;  // sum of recorded step latencies
  };

  int64_t step_ = 0;
  std::vector<int64_t> bounds_;
  KindState kinds_[kNumKinds];
};

}  // namespace mobieyes::obs

#endif  // MOBIEYES_OBS_LIFECYCLE_H_
