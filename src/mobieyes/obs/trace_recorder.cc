#include "mobieyes/obs/trace_recorder.h"

#include <cstdio>
#include <utility>

namespace mobieyes::obs {

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') *out += '\\';
    *out += *s;
  }
}

}  // namespace

std::vector<TraceEvent> TraceRecorder::TakeEvents() {
  std::vector<TraceEvent> events = std::move(events_);
  events_.clear();
  return events;
}

void TraceRecorder::SetPid(int32_t pid) {
  pid_ = pid;
  for (TraceEvent& event : events_) event.pid = pid;
}

std::string TraceRecorder::ToJson(
    const std::vector<TraceEvent>& events,
    const std::vector<std::string>& process_names) {
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  for (size_t pid = 0; pid < process_names.size(); ++pid) {
    if (!first) json += ",";
    first = false;
    json += "\n{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
            std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": \"";
    AppendEscaped(&json, process_names[pid].c_str());
    json += "\"}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) json += ",";
    first = false;
    json += "\n{\"ph\": \"X\", \"name\": \"";
    AppendEscaped(&json, event.name);
    json += "\", \"cat\": \"";
    AppendEscaped(&json, event.cat);
    json += "\", \"ts\": " + std::to_string(event.ts_us) +
            ", \"dur\": " + std::to_string(event.dur_us) +
            ", \"pid\": " + std::to_string(event.pid) +
            ", \"tid\": " + std::to_string(event.tid) + "}";
  }
  json += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return json;
}

bool TraceRecorder::WriteFile(const std::string& path,
                              const std::vector<TraceEvent>& events,
                              const std::vector<std::string>& process_names) {
  std::string json = ToJson(events, process_names);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  return std::fclose(file) == 0 && written == json.size();
}

}  // namespace mobieyes::obs
