#include "mobieyes/obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>

namespace mobieyes::obs {

namespace {

// %.17g round-trips doubles exactly, so deterministic inputs produce
// byte-identical JSON across runs; integral values print without exponent.
void AppendDouble(std::string* out, double value) {
  char buffer[32];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  *out += buffer;
}

void AppendKey(std::string* out, const std::string& name) {
  *out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\": ";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // Bucket = first bound >= value; bounds are few (tens), and the common
  // observations land in the low buckets, so a linear scan beats binary
  // search on branch prediction.
  size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

std::vector<double> ExponentialBounds(double base, double growth, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = base;
  for (int k = 0; k < count; ++k) {
    bounds.push_back(bound);
    bound *= growth;
  }
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[name];
  if (!entry.instrument) entry.instrument = std::make_unique<Counter>();
  return entry.instrument.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Gauge>();
    entry.timing = timing;
  }
  return entry.instrument.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[name];
  if (!entry.instrument) {
    entry.instrument = std::make_unique<Histogram>(std::move(bounds));
    entry.timing = timing;
  }
  return entry.instrument.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.instrument->Reset();
  for (auto& [name, entry] : gauges_) entry.instrument->Reset();
  for (auto& [name, entry] : histograms_) entry.instrument->Reset();
}

std::string MetricsRegistry::ToJson(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (!first) json += ", ";
    first = false;
    AppendKey(&json, name);
    json += std::to_string(entry.instrument->value());
  }
  json += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    if (entry.timing && !include_timing) continue;
    if (!first) json += ", ";
    first = false;
    AppendKey(&json, name);
    AppendDouble(&json, entry.instrument->value());
  }
  json += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    if (entry.timing && !include_timing) continue;
    if (!first) json += ", ";
    first = false;
    AppendKey(&json, name);
    const Histogram& hist = *entry.instrument;
    json += "{\"bounds\": [";
    for (size_t k = 0; k < hist.bounds().size(); ++k) {
      if (k > 0) json += ", ";
      AppendDouble(&json, hist.bounds()[k]);
    }
    json += "], \"counts\": [";
    for (size_t k = 0; k < hist.counts().size(); ++k) {
      if (k > 0) json += ", ";
      json += std::to_string(hist.counts()[k]);
    }
    json += "], \"count\": " + std::to_string(hist.count()) + ", \"sum\": ";
    AppendDouble(&json, hist.sum());
    json += '}';
  }
  json += "}}";
  return json;
}

}  // namespace mobieyes::obs
