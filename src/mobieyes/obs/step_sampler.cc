#include "mobieyes/obs/step_sampler.h"

#include <cassert>
#include <cstdio>

namespace mobieyes::obs {

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  *out += buffer;
}

}  // namespace

StepSampler::StepSampler(std::vector<Column> columns, int stride,
                         size_t capacity)
    : columns_(std::move(columns)),
      stride_(stride),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void StepSampler::Record(int64_t step, const std::vector<double>& values) {
  assert(values.size() == columns_.size());
  Row& row = ring_[next_];
  row.step = step;
  row.values = values;
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++total_recorded_;
}

void StepSampler::Clear() {
  next_ = 0;
  size_ = 0;
  total_recorded_ = 0;
}

const StepSampler::Row& StepSampler::RowAt(size_t k) const {
  // When the ring wrapped, the oldest surviving row sits at next_.
  size_t start = size_ < capacity_ ? 0 : next_;
  return ring_[(start + k) % capacity_];
}

std::vector<StepSampler::Row> StepSampler::rows() const {
  std::vector<Row> out;
  out.reserve(size_);
  for (size_t k = 0; k < size_; ++k) out.push_back(RowAt(k));
  return out;
}

std::string StepSampler::ToJson(bool include_timing) const {
  // `dropped` counts rows the ring has overwritten, so long-run truncation
  // is visible in the export instead of silent.
  std::string json = "{\"stride\": " + std::to_string(stride_) +
                     ", \"total_recorded\": " +
                     std::to_string(total_recorded_) + ", \"dropped\": " +
                     std::to_string(total_recorded_ - size_) +
                     ", \"columns\": [";
  bool first = true;
  for (const Column& column : columns_) {
    if (column.timing && !include_timing) continue;
    if (!first) json += ", ";
    first = false;
    json += '"' + column.name + '"';
  }
  json += "], \"steps\": [";
  for (size_t k = 0; k < size_; ++k) {
    if (k > 0) json += ", ";
    json += std::to_string(RowAt(k).step);
  }
  json += "], \"series\": {";
  first = true;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].timing && !include_timing) continue;
    if (!first) json += ", ";
    first = false;
    json += '"' + columns_[c].name + "\": [";
    for (size_t k = 0; k < size_; ++k) {
      if (k > 0) json += ", ";
      AppendDouble(&json, RowAt(k).values[c]);
    }
    json += ']';
  }
  json += "}}";
  return json;
}

std::string StepSampler::ToCsv() const {
  std::string csv = "step";
  for (const Column& column : columns_) csv += ',' + column.name;
  csv += '\n';
  for (size_t k = 0; k < size_; ++k) {
    const Row& row = RowAt(k);
    csv += std::to_string(row.step);
    for (double value : row.values) {
      csv += ',';
      AppendDouble(&csv, value);
    }
    csv += '\n';
  }
  return csv;
}

}  // namespace mobieyes::obs
