#include "mobieyes/obs/lifecycle.h"

namespace mobieyes::obs {

const char* LifecycleTracker::KindName(Kind kind) {
  switch (kind) {
    case kUplinkRoundTrip:
      return "uplink_round_trip";
    case kUplinkAck:
      return "uplink_ack";
    case kInstallFirstResult:
      return "install_first_result";
    case kHandoff:
      return "handoff";
    case kCrashRestore:
      return "crash_restore";
    case kCrashReconverge:
      return "crash_reconverge";
    case kBackplaneRpc:
      return "backplane_rpc";
    default:
      return "unknown";
  }
}

bool LifecycleTracker::KindLayoutDependent(Kind kind) {
  // Backplane RPC rounds only exist with the process transport and resolve
  // at socket speed — real-deployment visibility, not simulation state.
  return kind == kHandoff || kind == kBackplaneRpc;
}

LifecycleTracker::LifecycleTracker()
    : bounds_{0, 1, 2, 4, 8, 16, 32, 64} {
  for (KindState& kind : kinds_) {
    kind.counts.assign(bounds_.size() + 1, 0);
  }
}

void LifecycleTracker::Stamp(Kind kind, uint64_t key) {
  KindState& state = kinds_[kind];
  auto [it, inserted] = state.pending.try_emplace(key, step_);
  if (inserted) {
    ++state.stamped;
  } else {
    ++state.restamped;  // retry of an open round; the original stamp wins
  }
}

bool LifecycleTracker::ResolveIfPending(Kind kind, uint64_t key) {
  KindState& state = kinds_[kind];
  auto it = state.pending.find(key);
  if (it == state.pending.end()) return false;
  const int64_t latency = step_ - it->second;
  state.pending.erase(it);
  ++state.resolved;
  state.sum += static_cast<uint64_t>(latency);
  size_t bucket = 0;
  while (bucket < bounds_.size() && latency > bounds_[bucket]) ++bucket;
  ++state.counts[bucket];
  return true;
}

void LifecycleTracker::Drop(Kind kind, uint64_t key) {
  KindState& state = kinds_[kind];
  if (state.pending.erase(key) > 0) ++state.cancelled;
}

void LifecycleTracker::Reset() {
  for (KindState& state : kinds_) {
    state.pending.clear();
    state.counts.assign(bounds_.size() + 1, 0);
    state.stamped = 0;
    state.resolved = 0;
    state.restamped = 0;
    state.cancelled = 0;
    state.sum = 0;
  }
}

std::string LifecycleTracker::ToJson(bool include_layout_dependent) const {
  std::string json = "{\"step\": " + std::to_string(step_) + ", \"bounds\": [";
  for (size_t k = 0; k < bounds_.size(); ++k) {
    if (k > 0) json += ", ";
    json += std::to_string(bounds_[k]);
  }
  json += "], \"kinds\": {";
  bool first = true;
  for (int k = 0; k < kNumKinds; ++k) {
    const auto kind = static_cast<Kind>(k);
    if (KindLayoutDependent(kind) && !include_layout_dependent) continue;
    const KindState& state = kinds_[k];
    if (!first) json += ", ";
    first = false;
    json += '"';
    json += KindName(kind);
    json += "\": {\"stamped\": " + std::to_string(state.stamped) +
            ", \"resolved\": " + std::to_string(state.resolved) +
            ", \"restamped\": " + std::to_string(state.restamped) +
            ", \"cancelled\": " + std::to_string(state.cancelled) +
            ", \"pending\": " + std::to_string(state.pending.size()) +
            ", \"counts\": [";
    for (size_t b = 0; b < state.counts.size(); ++b) {
      if (b > 0) json += ", ";
      json += std::to_string(state.counts[b]);
    }
    json += "], \"sum\": " + std::to_string(state.sum) + '}';
  }
  json += "}}";
  return json;
}

}  // namespace mobieyes::obs
