#include "mobieyes/obs/report_html.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mobieyes::obs {

namespace {

// ---------------------------------------------------------------------------
// JSON parsing

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<JsonValue> Parse() {
    auto value = std::make_unique<JsonValue>();
    if (!ParseValue(value.get())) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            pos_ += 4;  // non-ASCII escapes don't appear in our exports
            out->push_back('?');
            break;
          }
          default: return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    size_t consumed = 0;
    try {
      out->number = std::stod(text_.substr(pos_), &consumed);
    } catch (...) {
      return Fail("bad value");
    }
    if (consumed == 0) return Fail("bad value");
    out->kind = JsonValue::Kind::kNumber;
    pos_ += consumed;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// HTML rendering helpers

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatNumber(double value) {
  char buffer[32];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  }
  return buffer;
}

// An inline SVG polyline over `values`, scaled to fit; flat series render
// as a midline.
std::string Sparkline(const std::vector<double>& values) {
  constexpr double kWidth = 220.0;
  constexpr double kHeight = 36.0;
  if (values.empty()) return "<span class=\"empty\">(no samples)</span>";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::string points;
  for (size_t k = 0; k < values.size(); ++k) {
    const double x =
        values.size() > 1
            ? kWidth * static_cast<double>(k) /
                  static_cast<double>(values.size() - 1)
            : kWidth / 2.0;
    const double y = kHeight - 2.0 - (kHeight - 4.0) * (values[k] - lo) / span;
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.1f,%.1f ", x, y);
    points += buffer;
  }
  std::string svg = "<svg class=\"spark\" width=\"224\" height=\"40\" "
                    "viewBox=\"-2 -2 224 40\"><polyline points=\"" +
                    points + "\" fill=\"none\" stroke=\"#2b6cb0\" "
                    "stroke-width=\"1.5\"/></svg>";
  svg += "<span class=\"range\">" + FormatNumber(lo) + " … " +
         FormatNumber(hi) + "</span>";
  return svg;
}

void RenderCountersAndGauges(const JsonValue& metrics, std::string* html) {
  for (const char* group : {"counters", "gauges"}) {
    const JsonValue& table = metrics.At(group);
    if (table.object.empty()) continue;
    *html += "<details open><summary>" + std::string(group) + " (" +
             std::to_string(table.object.size()) +
             ")</summary><table><tr><th>name</th><th>value</th></tr>";
    for (const auto& [name, value] : table.object) {
      *html += "<tr><td>" + HtmlEscape(name) + "</td><td class=\"num\">" +
               FormatNumber(value.number) + "</td></tr>";
    }
    *html += "</table></details>";
  }
}

void RenderHistograms(const JsonValue& metrics, std::string* html) {
  const JsonValue& histograms = metrics.At("histograms");
  if (histograms.object.empty()) return;
  *html += "<details open><summary>histograms (" +
           std::to_string(histograms.object.size()) +
           ")</summary><table><tr><th>name</th><th>count</th><th>mean</th>"
           "<th>buckets</th></tr>";
  for (const auto& [name, hist] : histograms.object) {
    const double count = hist.At("count").number;
    const double sum = hist.At("sum").number;
    std::vector<double> counts;
    for (const JsonValue& c : hist.At("counts").array) {
      counts.push_back(c.number);
    }
    *html += "<tr><td>" + HtmlEscape(name) + "</td><td class=\"num\">" +
             FormatNumber(count) + "</td><td class=\"num\">" +
             FormatNumber(count > 0 ? sum / count : 0.0) + "</td><td>" +
             Sparkline(counts) + "</td></tr>";
  }
  *html += "</table></details>";
}

void RenderSeries(const JsonValue& series, std::string* html) {
  const JsonValue& columns = series.At("series");
  if (columns.object.empty()) return;
  *html += "<details open><summary>per-step series (" +
           std::to_string(columns.object.size()) +
           " columns)</summary><table><tr><th>column</th>"
           "<th>sparkline</th></tr>";
  for (const auto& [name, values] : columns.object) {
    std::vector<double> data;
    for (const JsonValue& v : values.array) data.push_back(v.number);
    *html += "<tr><td>" + HtmlEscape(name) + "</td><td>" + Sparkline(data) +
             "</td></tr>";
  }
  const double total = series.At("total_recorded").number;
  const double dropped = series.At("dropped").number;
  *html += "</table><p class=\"note\">" + FormatNumber(total) +
           " rows recorded, " + FormatNumber(dropped) +
           " overwritten by the ring buffer.</p></details>";
}

void RenderHeatmap(const JsonValue& heatmap, std::string* html) {
  const JsonValue& channels = heatmap.At("channels");
  if (channels.object.empty()) return;
  const int rows = static_cast<int>(heatmap.At("rows").number);
  const int cols = static_cast<int>(heatmap.At("cols").number);
  if (rows <= 0 || cols <= 0) return;
  *html += "<details open><summary>heat maps (" + std::to_string(cols) +
           "×" + std::to_string(rows) + " cells)</summary>";
  for (const auto& [name, channel] : channels.object) {
    const JsonValue& total = channel.At("total");
    const JsonValue& window = channel.At("window");
    const auto cells = static_cast<size_t>(rows) * static_cast<size_t>(cols);
    if (total.array.size() != cells) continue;
    std::vector<double> values(cells, 0.0);
    double max = 0.0;
    for (size_t k = 0; k < cells; ++k) {
      values[k] = total.array[k].number +
                  (window.array.size() == cells ? window.array[k].number : 0);
      max = std::max(max, values[k]);
    }
    *html += "<div class=\"hm\"><div class=\"hmname\">" + HtmlEscape(name) +
             " (max " + FormatNumber(max) +
             ")</div><div class=\"grid\" style=\"grid-template-columns: "
             "repeat(" +
             std::to_string(cols) + ", 7px)\">";
    for (int j = 0; j < rows; ++j) {
      for (int i = 0; i < cols; ++i) {
        const double v = values[static_cast<size_t>(j) * cols + i];
        const double a = max > 0 ? v / max : 0.0;
        char cell[96];
        std::snprintf(cell, sizeof(cell),
                      "<i style=\"background:rgba(192,42,42,%.3f)\" "
                      "title=\"(%d,%d)=%s\"></i>",
                      a, i, j, FormatNumber(v).c_str());
        *html += cell;
      }
    }
    *html += "</div></div>";
  }
  *html += "</details>";
}

void RenderLifecycle(const JsonValue& lifecycle, std::string* html) {
  const JsonValue& kinds = lifecycle.At("kinds");
  if (kinds.object.empty()) return;
  std::string bounds_label;
  for (const JsonValue& b : lifecycle.At("bounds").array) {
    if (!bounds_label.empty()) bounds_label += "/";
    bounds_label += FormatNumber(b.number);
  }
  *html += "<details open><summary>lifecycle latencies (virtual steps; "
           "buckets ≤" +
           bounds_label +
           "/overflow)</summary><table><tr><th>round</th><th>resolved</th>"
           "<th>mean steps</th><th>pending</th><th>restamped</th>"
           "<th>cancelled</th><th>latency buckets</th></tr>";
  for (const auto& [name, kind] : kinds.object) {
    const double resolved = kind.At("resolved").number;
    const double sum = kind.At("sum").number;
    std::vector<double> counts;
    for (const JsonValue& c : kind.At("counts").array) {
      counts.push_back(c.number);
    }
    *html += "<tr><td>" + HtmlEscape(name) + "</td><td class=\"num\">" +
             FormatNumber(resolved) + "</td><td class=\"num\">" +
             FormatNumber(resolved > 0 ? sum / resolved : 0.0) +
             "</td><td class=\"num\">" +
             FormatNumber(kind.At("pending").number) +
             "</td><td class=\"num\">" +
             FormatNumber(kind.At("restamped").number) +
             "</td><td class=\"num\">" +
             FormatNumber(kind.At("cancelled").number) + "</td><td>" +
             Sparkline(counts) + "</td></tr>";
  }
  *html += "</table></details>";
}

void RenderReport(const JsonValue& report, const std::string& label,
                  std::string* html) {
  *html += "<section><h2>" + HtmlEscape(label) + "</h2>";
  if (report.Has("mode")) {
    *html += "<p class=\"note\">mode " +
             HtmlEscape(report.At("mode").string) + ", " +
             FormatNumber(report.At("steps").number) +
             " measured steps.</p>";
  }
  RenderCountersAndGauges(report.At("metrics"), html);
  RenderHistograms(report.At("metrics"), html);
  RenderSeries(report.At("series"), html);
  RenderHeatmap(report.At("heatmap"), html);
  RenderLifecycle(report.At("lifecycle"), html);
  *html += "</section>";
}

}  // namespace

const JsonValue& JsonValue::At(const std::string& key) const {
  static const JsonValue kNullValue;
  if (kind != Kind::kObject) return kNullValue;
  auto it = object.find(key);
  return it == object.end() ? kNullValue : it->second;
}

std::unique_ptr<JsonValue> ParseJson(const std::string& text,
                                     std::string* error) {
  JsonParser parser(text);
  std::unique_ptr<JsonValue> value = parser.Parse();
  if (value == nullptr && error != nullptr) *error = parser.error();
  return value;
}

std::string RenderHtmlReport(const JsonValue& root, const std::string& title) {
  std::string html =
      "<!doctype html><html><head><meta charset=\"utf-8\"><title>" +
      HtmlEscape(title) +
      "</title><style>"
      "body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#1a202c}"
      "h1{font-size:20px}h2{font-size:16px;border-bottom:1px solid #cbd5e0;"
      "padding-bottom:4px}"
      "table{border-collapse:collapse;margin:8px 0}"
      "th,td{border:1px solid #e2e8f0;padding:2px 8px;text-align:left}"
      "td.num{text-align:right;font-variant-numeric:tabular-nums}"
      "details{margin:12px 0}summary{cursor:pointer;font-weight:600}"
      ".spark{vertical-align:middle}.range{color:#718096;font-size:12px;"
      "margin-left:6px}.note{color:#718096}.empty{color:#a0aec0}"
      ".hm{display:inline-block;vertical-align:top;margin:8px 16px 8px 0}"
      ".hmname{font-size:12px;color:#4a5568}"
      ".grid{display:grid;gap:0;border:1px solid #e2e8f0;width:max-content}"
      ".grid i{width:7px;height:7px;display:block}"
      "</style></head><body><h1>" +
      HtmlEscape(title) + "</h1>";
  if (root.Has("cells")) {
    for (const JsonValue& cell : root.At("cells").array) {
      RenderReport(cell.At("report"), cell.At("label").string, &html);
    }
  } else {
    RenderReport(root, "run", &html);
  }
  html += "</body></html>";
  return html;
}

}  // namespace mobieyes::obs
