#ifndef MOBIEYES_OBS_TRACE_RECORDER_H_
#define MOBIEYES_OBS_TRACE_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mobieyes::obs {

// One complete ("ph":"X") event in the Chrome trace-event format. `name`
// and `cat` must point at storage outliving the recorder — in practice
// string literals, which is what the TRACE_SPAN macro produces. Events are
// grouped by (pid, tid) tracks in the viewer; the sweep harness assigns one
// pid per sweep cell so a whole sweep loads as one multi-process trace.
struct TraceEvent {
  const char* name = "";
  const char* cat = "sim";
  uint64_t ts_us = 0;   // microseconds since the recorder's epoch
  uint64_t dur_us = 0;  // span duration in microseconds
  int32_t pid = 0;
  int32_t tid = 0;
};

// Collects scoped-span events for chrome://tracing / Perfetto. The recorder
// is thread-confined like the rest of a simulation cell: spans are appended
// by the owning thread with no synchronization, and the buffer is read back
// after the cell finished. Instrumented code holds a TraceRecorder* that is
// null when tracing is off, so the disabled cost of a TRACE_SPAN is one
// pointer test per scope.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(Clock::now()) { events_.reserve(4096); }

  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              epoch_)
            .count());
  }

  void AddComplete(const char* name, const char* cat, uint64_t ts_us,
                   uint64_t dur_us) {
    events_.push_back(TraceEvent{name, cat, ts_us, dur_us, pid_, 0});
  }

  // Like AddComplete but on an explicit tid track. The sharded server tags
  // per-shard spans with tid = shard id + 1 (tid 0 stays the main track);
  // workers only read NowMicros, the owning thread appends after joining.
  void AddCompleteOnTid(const char* name, const char* cat, uint64_t ts_us,
                        uint64_t dur_us, int32_t tid) {
    events_.push_back(TraceEvent{name, cat, ts_us, dur_us, pid_, tid});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> TakeEvents();
  void Clear() { events_.clear(); }

  // Process id stamped on subsequent events (sweep cells use their job
  // index); also retroactively restamps already-recorded events so a cell
  // can be tagged after it ran.
  void SetPid(int32_t pid);

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — the JSON object form
  // of the trace-event format, loadable by Perfetto and chrome://tracing.
  // `process_names` (optional, indexed by pid) adds process_name metadata
  // events so the viewer labels each cell's track.
  static std::string ToJson(const std::vector<TraceEvent>& events,
                            const std::vector<std::string>& process_names = {});
  std::string ToJson() const { return ToJson(events_); }

  // Writes ToJson to `path`; returns false on I/O failure.
  static bool WriteFile(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const std::vector<std::string>& process_names = {});

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  int32_t pid_ = 0;
};

// RAII span: records a complete event covering its scope. A null recorder
// makes construction and destruction no-ops (the runtime-disabled path).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* cat = "sim")
      : recorder_(recorder), name_(name), cat_(cat) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->AddComplete(name_, cat_, start_us_,
                             recorder_->NowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* cat_;
  uint64_t start_us_ = 0;
};

// Scoped span over the rest of the enclosing block:
//   TRACE_SPAN(trace_, "server.handle_cell_change");
// `recorder` is a TraceRecorder* that may be null (disabled).
#define MOBIEYES_TRACE_CONCAT_INNER(a, b) a##b
#define MOBIEYES_TRACE_CONCAT(a, b) MOBIEYES_TRACE_CONCAT_INNER(a, b)
#define TRACE_SPAN(recorder, name)                                    \
  ::mobieyes::obs::TraceSpan MOBIEYES_TRACE_CONCAT(trace_span_,       \
                                                   __LINE__)(recorder, name)

}  // namespace mobieyes::obs

#endif  // MOBIEYES_OBS_TRACE_RECORDER_H_
