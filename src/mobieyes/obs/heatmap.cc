#include "mobieyes/obs/heatmap.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace mobieyes::obs {

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  *out += buffer;
}

}  // namespace

const char* HeatMap::ChannelName(Channel channel) {
  switch (channel) {
    case kUplinks:
      return "uplinks";
    case kRqiScan:
      return "rqi_scan";
    case kInstalls:
      return "installs";
    case kHandoffs:
      return "handoffs";
    case kResidency:
      return "residency";
    default:
      return "unknown";
  }
}

bool HeatMap::ChannelLayoutDependent(Channel channel) {
  return channel == kHandoffs;
}

HeatMap::HeatMap(int32_t rows, int32_t cols) : rows_(rows), cols_(cols) {
  const auto cells = static_cast<size_t>(cell_count());
  for (int c = 0; c < kNumChannels; ++c) {
    window_[c].assign(cells, 0);
    total_[c].assign(cells, 0);
    decayed_[c].assign(cells, 0.0);
  }
}

void HeatMap::MergeWindowFrom(HeatMap& shard) {
  assert(shard.rows_ == rows_ && shard.cols_ == cols_);
  const size_t cells = window_[0].size();
  for (int c = 0; c < kNumChannels; ++c) {
    uint64_t* ours = window_[c].data();
    uint64_t* theirs = shard.window_[c].data();
    for (size_t k = 0; k < cells; ++k) {
      ours[k] += theirs[k];
      theirs[k] = 0;
    }
  }
}

void HeatMap::RollWindow(double decay) {
  const size_t cells = window_[0].size();
  for (int c = 0; c < kNumChannels; ++c) {
    uint64_t* window = window_[c].data();
    uint64_t* total = total_[c].data();
    double* decayed = decayed_[c].data();
    for (size_t k = 0; k < cells; ++k) {
      decayed[k] = decayed[k] * decay + static_cast<double>(window[k]);
      total[k] += window[k];
      window[k] = 0;
    }
  }
  ++rolls_;
}

void HeatMap::Reset() {
  for (int c = 0; c < kNumChannels; ++c) {
    std::fill(window_[c].begin(), window_[c].end(), 0);
    std::fill(total_[c].begin(), total_[c].end(), 0);
    std::fill(decayed_[c].begin(), decayed_[c].end(), 0.0);
  }
  rolls_ = 0;
}

uint64_t HeatMap::ChannelSum(Channel channel) const {
  uint64_t sum = 0;
  const size_t cells = window_[channel].size();
  for (size_t k = 0; k < cells; ++k) {
    sum += total_[channel][k] + window_[channel][k];
  }
  return sum;
}

std::string HeatMap::ToJson(bool include_layout_dependent) const {
  std::string json = "{\"rows\": " + std::to_string(rows_) +
                     ", \"cols\": " + std::to_string(cols_) +
                     ", \"rolls\": " + std::to_string(rolls_) +
                     ", \"channels\": {";
  bool first = true;
  for (int c = 0; c < kNumChannels; ++c) {
    const auto channel = static_cast<Channel>(c);
    if (ChannelLayoutDependent(channel) && !include_layout_dependent) {
      continue;
    }
    if (!first) json += ", ";
    first = false;
    json += '"';
    json += ChannelName(channel);
    json += "\": {\"total\": [";
    const size_t cells = total_[c].size();
    for (size_t k = 0; k < cells; ++k) {
      if (k > 0) json += ", ";
      json += std::to_string(total_[c][k]);
    }
    json += "], \"decayed\": [";
    for (size_t k = 0; k < cells; ++k) {
      if (k > 0) json += ", ";
      AppendDouble(&json, decayed_[c][k]);
    }
    json += "], \"window\": [";
    for (size_t k = 0; k < cells; ++k) {
      if (k > 0) json += ", ";
      json += std::to_string(window_[c][k]);
    }
    json += "]}";
  }
  json += "}}";
  return json;
}

std::string HeatMap::ToCsv() const {
  std::string csv = "channel,i,j,total,window,decayed\n";
  for (int c = 0; c < kNumChannels; ++c) {
    const auto channel = static_cast<Channel>(c);
    for (int32_t j = 0; j < rows_; ++j) {
      for (int32_t i = 0; i < cols_; ++i) {
        const size_t flat = Flat(i, j);
        if (total_[c][flat] == 0 && window_[c][flat] == 0 &&
            decayed_[c][flat] == 0.0) {
          continue;
        }
        csv += ChannelName(channel);
        csv += ',' + std::to_string(i) + ',' + std::to_string(j) + ',' +
               std::to_string(total_[c][flat]) + ',' +
               std::to_string(window_[c][flat]) + ',';
        AppendDouble(&csv, decayed_[c][flat]);
        csv += '\n';
      }
    }
  }
  return csv;
}

std::string HeatMap::ToAscii(Channel channel) const {
  uint64_t max = 0;
  const size_t cells = total_[channel].size();
  for (size_t k = 0; k < cells; ++k) {
    max = std::max(max, total_[channel][k] + window_[channel][k]);
  }
  std::string out;
  out.reserve(static_cast<size_t>(rows_) * (cols_ + 1));
  // Render with j increasing downward (row 0 on top) to match ToCsv order.
  for (int32_t j = 0; j < rows_; ++j) {
    for (int32_t i = 0; i < cols_; ++i) {
      const size_t flat = Flat(i, j);
      const uint64_t value = total_[channel][flat] + window_[channel][flat];
      if (value == 0) {
        out += '.';
      } else {
        // Scale 1..max onto digits 1..9; max itself always prints '9'.
        out += static_cast<char>('1' + (value * 8) / max);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace mobieyes::obs
