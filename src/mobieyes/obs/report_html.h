#ifndef MOBIEYES_OBS_REPORT_HTML_H_
#define MOBIEYES_OBS_REPORT_HTML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mobieyes::obs {

// A parsed JSON value — the offline half of the observability layer.
// Everything the layer exports is JSON built by hand (no library), so this
// is the matching strict reader: `tools/mobieyes_report` and the
// `mobieyes_sim --report` flag both parse real exports through this one
// code path, which keeps renderer and emitters honest with each other.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return kind == Kind::kObject && object.contains(key);
  }
  // Null-object sentinel lookup: missing keys return a kNull value, so
  // renderer code can chase optional paths without branching everywhere.
  const JsonValue& At(const std::string& key) const;
};

// Strict parse (objects, arrays, strings, numbers, literals; trailing junk
// is an error). Returns nullptr and sets *error on malformed input.
std::unique_ptr<JsonValue> ParseJson(const std::string& text,
                                     std::string* error);

// Renders one or more observability reports into a single self-contained
// HTML page: metrics tables, SVG sparklines for the StepSampler series,
// colored heat-map grids, and lifecycle latency tables. No external
// scripts, styles or fonts — the output opens from file:// anywhere.
//
// `root` is either a single Simulation::ObservabilityJson object or a
// bench metrics file of the form {"bench": name, "cells":
// [{"label": ..., "report": {...}}, ...]}; both shapes are handled.
std::string RenderHtmlReport(const JsonValue& root, const std::string& title);

}  // namespace mobieyes::obs

#endif  // MOBIEYES_OBS_REPORT_HTML_H_
