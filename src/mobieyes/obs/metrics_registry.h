#ifndef MOBIEYES_OBS_METRICS_REGISTRY_H_
#define MOBIEYES_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mobieyes::obs {

// Named instruments for the simulation hot paths. The design splits the two
// concerns that usually make metrics expensive:
//
//  * Updates are plain (non-atomic) integer/double writes through a handle
//    resolved once at wiring time. A simulation cell is single-threaded, so
//    the owning thread mutates its registry's instruments without any
//    synchronization — an increment is one add on a cached pointer.
//  * Registration and snapshotting are mutex-guarded, so a registry can be
//    built from several components and read back after the owning thread
//    quiesced (the parallel sweep reads each cell's registry only after the
//    cell's future resolved, which also publishes the writes).
//
// Instruments flagged `timing` carry wall-clock-derived values (histograms
// of per-step processing time). Deterministic exports (the sweep harness,
// the determinism tests) exclude them so two runs of the same seed produce
// byte-identical output regardless of host speed or thread count.

// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
// N buckets; one overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // counts().size() == bounds().size() + 1 (last entry is the overflow).
  const std::vector<uint64_t>& counts() const { return counts_; }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Exponential bucket bounds `base * growth^k` for k in [0, count), e.g.
// ExponentialBounds(10, 4, 6) -> {10, 40, 160, 640, 2560, 10240}.
std::vector<double> ExponentialBounds(double base, double growth, int count);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name; returned handles stay valid for the registry's
  // lifetime. `timing` marks wall-clock-derived instruments, excluded from
  // deterministic exports. Re-registering an existing name returns the
  // existing instrument (the first registration's bounds/flag win).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name, bool timing = false);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          bool timing = false);

  // Zeroes every instrument (registrations survive; handles stay valid).
  // Used when measurement starts after simulation warmup.
  void Reset();

  // Deterministically ordered (name-sorted) JSON object:
  //   {"counters": {...}, "gauges": {...}, "histograms": {name:
  //    {"bounds": [...], "counts": [...], "count": n, "sum": s}}}
  // With include_timing=false, timing-flagged instruments are omitted, so
  // the output depends only on the simulation seed.
  std::string ToJson(bool include_timing = true) const;

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    bool timing = false;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

}  // namespace mobieyes::obs

#endif  // MOBIEYES_OBS_METRICS_REGISTRY_H_
