#ifndef MOBIEYES_OBS_STEP_SAMPLER_H_
#define MOBIEYES_OBS_STEP_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mobieyes::obs {

// Per-step time series of a fixed set of columns, kept in a bounded ring
// buffer. The simulation records one row every `stride` measured steps;
// when more rows arrive than `capacity`, the oldest rows are overwritten,
// so a long run keeps the most recent window instead of growing unbounded.
//
// Columns flagged `timing` hold wall-clock-derived values (e.g. server
// microseconds this step); deterministic exports omit them, mirroring the
// MetricsRegistry convention.
class StepSampler {
 public:
  struct Column {
    std::string name;
    bool timing = false;
  };

  StepSampler(std::vector<Column> columns, int stride, size_t capacity);

  // True when `step` (0-based measured step index) is on the stride.
  bool ShouldSample(int64_t step) const {
    return stride_ > 0 && step % stride_ == 0;
  }

  // Appends one row; values.size() must equal columns().size().
  void Record(int64_t step, const std::vector<double>& values);

  void Clear();

  int stride() const { return stride_; }
  size_t capacity() const { return capacity_; }
  const std::vector<Column>& columns() const { return columns_; }
  // Rows currently held (<= capacity).
  size_t size() const { return size_; }
  // Rows ever recorded, including those the ring has since overwritten.
  uint64_t total_recorded() const { return total_recorded_; }

  struct Row {
    int64_t step = 0;
    std::vector<double> values;
  };

  // Rows in recording order, oldest surviving row first.
  std::vector<Row> rows() const;

  // {"stride": N, "total_recorded": N, "dropped": N, "columns": [...],
  //  "steps": [...], "series": {col: [...]}} — column-major so one series
  // plots directly; "dropped" is the number of rows the ring overwrote.
  // With include_timing=false, timing columns are omitted.
  std::string ToJson(bool include_timing = true) const;

  // Header line plus one line per row; timing columns always included (CSV
  // export is for interactive plotting, not determinism checks).
  std::string ToCsv() const;

 private:
  const Row& RowAt(size_t k) const;  // k-th oldest surviving row

  std::vector<Column> columns_;
  int stride_;
  size_t capacity_;
  std::vector<Row> ring_;
  size_t next_ = 0;  // ring slot the next Record writes
  size_t size_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace mobieyes::obs

#endif  // MOBIEYES_OBS_STEP_SAMPLER_H_
