#ifndef MOBIEYES_OBS_HEATMAP_H_
#define MOBIEYES_OBS_HEATMAP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mobieyes::obs {

// Dense per-grid-cell 2D accumulators for the spatial load channels the
// rebalancing work needs: where uplinks land, where RQI scans burn rows,
// where queries install, where handoffs fire, and where objects live.
//
// Determinism contract (the reason this class looks the way it does): the
// sharded server must export byte-identical heat maps for any shard or
// thread count. Floating-point decay is not associative across groupings,
// so per-shard maps accumulate *pure integer window counters* only —
// integer addition commutes, so merging the per-shard windows in fixed
// shard order 0..N-1 yields the same merged window for any partition. The
// decayed view lives exclusively on the single merged (global) map, where
// RollWindow applies `decayed = decayed * decay + window` at simulation-
// chosen window boundaries; since the merged integer windows are identical
// across layouts, the double sequence is too.
//
// The handoffs channel only exists when shards > 1 and its placement
// depends on the partition, so it is flagged layout-dependent and omitted
// from deterministic exports — the same convention MetricsRegistry uses
// for timing-flagged instruments.
class HeatMap {
 public:
  enum Channel {
    kUplinks = 0,    // uplink messages charged to the sender's cell
    kRqiScan,        // RQI rows visited by cell-change / reconcile scans
    kInstalls,       // query installs at the focal object's cell
    kHandoffs,       // cross-shard focal migrations (layout-dependent)
    kResidency,      // object population snapshots per cell
    kNumChannels,
  };

  static const char* ChannelName(Channel channel);
  // True for channels whose values depend on the shard partition and are
  // therefore excluded from deterministic exports.
  static bool ChannelLayoutDependent(Channel channel);

  // A rows x cols map; cell (i, j) follows geo::Grid conventions (i = column
  // in x, j = row in y, flat index j * cols + i).
  HeatMap(int32_t rows, int32_t cols);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t cell_count() const {
    return static_cast<int64_t>(rows_) * cols_;
  }
  uint64_t rolls() const { return rolls_; }

  void Add(Channel channel, int32_t i, int32_t j, uint64_t n = 1) {
    AddFlat(channel, static_cast<int64_t>(j) * cols_ + i, n);
  }
  void AddFlat(Channel channel, int64_t flat, uint64_t n = 1) {
    window_[channel][static_cast<size_t>(flat)] += n;
  }

  // Adds `shard`'s current window into ours and zeroes it. Call once per
  // shard in fixed shard order each step; integer addition makes the merged
  // result independent of how the charges were partitioned.
  void MergeWindowFrom(HeatMap& shard);

  // Closes the current window on a merged map: folds the window into the
  // exponentially decayed view and the all-time totals, then clears it.
  void RollWindow(double decay);

  // Zeroes every counter and the decayed view (measurement restart).
  void Reset();

  uint64_t window(Channel channel, int32_t i, int32_t j) const {
    return window_[channel][Flat(i, j)];
  }
  uint64_t total(Channel channel, int32_t i, int32_t j) const {
    return total_[channel][Flat(i, j)];
  }
  double decayed(Channel channel, int32_t i, int32_t j) const {
    return decayed_[channel][Flat(i, j)];
  }
  // Sum of the all-time totals plus the still-open window for one channel.
  uint64_t ChannelSum(Channel channel) const;

  // {"rows": R, "cols": C, "rolls": K, "channels": {name: {"total": [...],
  //  "decayed": [...], "window": [...]}}} — arrays are flat row-major.
  // With include_layout_dependent=false, layout-dependent channels are
  // omitted so the output is byte-identical across shard/thread counts.
  std::string ToJson(bool include_layout_dependent = true) const;

  // One line per non-empty (channel, cell): channel,i,j,total,window,decayed.
  std::string ToCsv() const;

  // A rows x cols character grid for one channel, brightest cell = '9',
  // empty = '.'; all-time totals plus the open window. For terminal output.
  std::string ToAscii(Channel channel) const;

 private:
  size_t Flat(int32_t i, int32_t j) const {
    return static_cast<size_t>(static_cast<int64_t>(j) * cols_ + i);
  }

  int32_t rows_;
  int32_t cols_;
  uint64_t rolls_ = 0;
  // Indexed [channel][flat cell]. window_ is the only state a per-shard map
  // uses; decayed_/total_ are populated by RollWindow on the merged map.
  std::vector<uint64_t> window_[kNumChannels];
  std::vector<uint64_t> total_[kNumChannels];
  std::vector<double> decayed_[kNumChannels];
};

}  // namespace mobieyes::obs

#endif  // MOBIEYES_OBS_HEATMAP_H_
