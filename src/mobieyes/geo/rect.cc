#include "mobieyes/geo/rect.h"

namespace mobieyes::geo {

Rect Rect::Union(const Rect& a, const Rect& b) {
  Miles lx = std::min(a.lx, b.lx);
  Miles ly = std::min(a.ly, b.ly);
  Miles hx = std::max(a.hx(), b.hx());
  Miles hy = std::max(a.hy(), b.hy());
  return Rect{lx, ly, hx - lx, hy - ly};
}

Rect Rect::FromCorners(const Point& a, const Point& b) {
  Miles lx = std::min(a.x, b.x);
  Miles ly = std::min(a.y, b.y);
  return Rect{lx, ly, std::max(a.x, b.x) - lx, std::max(a.y, b.y) - ly};
}

double IntersectionArea(const Rect& a, const Rect& b) {
  double w = std::min(a.hx(), b.hx()) - std::max(a.lx, b.lx);
  double h = std::min(a.hy(), b.hy()) - std::max(a.ly, b.ly);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

double Enlargement(const Rect& base, const Rect& extra) {
  return Rect::Union(base, extra).Area() - base.Area();
}

double MinDistance(const Rect& r, const Point& p) {
  double dx = std::max({r.lx - p.x, 0.0, p.x - r.hx()});
  double dy = std::max({r.ly - p.y, 0.0, p.y - r.hy()});
  return std::hypot(dx, dy);
}

}  // namespace mobieyes::geo
