#ifndef MOBIEYES_GEO_RECT_H_
#define MOBIEYES_GEO_RECT_H_

#include <algorithm>

#include "mobieyes/geo/point.h"

namespace mobieyes::geo {

// Axis-aligned rectangle Rect(lx, ly, w, h) = [lx, lx+w] x [ly, ly+h]
// (paper §2.2). Also used as the bounding-box type of the R*-tree.
struct Rect {
  Miles lx = 0.0;
  Miles ly = 0.0;
  Miles w = 0.0;
  Miles h = 0.0;

  Miles hx() const { return lx + w; }  // upper x bound
  Miles hy() const { return ly + h; }  // upper y bound

  double Area() const { return w * h; }
  // Perimeter / 2; the "margin" used by the R*-split heuristic.
  double Margin() const { return w + h; }
  Point Center() const { return Point{lx + w / 2.0, ly + h / 2.0}; }

  bool Contains(const Point& p) const {
    return p.x >= lx && p.x <= hx() && p.y >= ly && p.y <= hy();
  }

  bool Contains(const Rect& r) const {
    return r.lx >= lx && r.hx() <= hx() && r.ly >= ly && r.hy() <= hy();
  }

  bool Intersects(const Rect& r) const {
    return lx <= r.hx() && r.lx <= hx() && ly <= r.hy() && r.ly <= hy();
  }

  friend bool operator==(const Rect&, const Rect&) = default;

  // Smallest rectangle containing both a and b.
  static Rect Union(const Rect& a, const Rect& b);

  // Rectangle from corner points (min/max are taken per axis).
  static Rect FromCorners(const Point& a, const Point& b);
};

// Area of the intersection of a and b (0 when disjoint).
double IntersectionArea(const Rect& a, const Rect& b);

// Area increase needed for `base` to also cover `extra`.
double Enlargement(const Rect& base, const Rect& extra);

// Minimum distance from p to the rectangle (0 when inside).
double MinDistance(const Rect& r, const Point& p);

}  // namespace mobieyes::geo

#endif  // MOBIEYES_GEO_RECT_H_
