#include "mobieyes/geo/circle.h"

#include <algorithm>

namespace mobieyes::geo {

bool Circle::Intersects(const Rect& r) const {
  // Distance from the center to the closest point of the rectangle.
  double cx = std::clamp(center.x, r.lx, r.hx());
  double cy = std::clamp(center.y, r.ly, r.hy());
  double dx = center.x - cx;
  double dy = center.y - cy;
  return dx * dx + dy * dy <= radius * radius;
}

}  // namespace mobieyes::geo
