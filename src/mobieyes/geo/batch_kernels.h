#ifndef MOBIEYES_GEO_BATCH_KERNELS_H_
#define MOBIEYES_GEO_BATCH_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "mobieyes/geo/query_region.h"

namespace mobieyes::geo::kernels {

// Batched, branch-light containment kernels over the World's SoA arrays.
//
// The per-lane predicates below are the single definition of the
// containment arithmetic: the scalar protocol paths (client LQT monitoring
// checks) and the batched span kernels (oracle, coverage scans) both go
// through them, so a point classifies identically no matter which path
// tested it. The lane forms are bit-equivalent to Circle::Contains and
// QueryRegion::Contains: (a-b)^2 == (b-a)^2 exactly in IEEE arithmetic.
//
// The Collect* kernels evaluate one region against a whole cell span (a
// contiguous slice of the CSR index). They gather coordinates through the
// id array, keep the store unconditional, and advance the write cursor by
// the predicate — no data-dependent branch in the loop body, so the
// compiler can if-convert and vectorize the gather/compare.

// Point-in-circle, radius pre-squared.
inline bool CircleLane(double px, double py, double cx, double cy,
                       double radius_sq) {
  const double dx = px - cx;
  const double dy = py - cy;
  return dx * dx + dy * dy <= radius_sq;
}

// Point-in-rectangle, rectangle given by center and half extents.
inline bool RectLane(double px, double py, double cx, double cy,
                     double half_w, double half_h) {
  return std::abs(px - cx) <= half_w && std::abs(py - cy) <= half_h;
}

// Containment of (px, py) in `region` bound at (cx, cy) — the scalar entry
// point for protocol-layer checks, same predicate as the span kernels.
inline bool RegionLane(const QueryRegion& region, double cx, double cy,
                       double px, double py) {
  if (region.shape == QueryRegion::Shape::kCircle) {
    return CircleLane(px, py, cx, cy, region.radius * region.radius);
  }
  return RectLane(px, py, cx, cy, region.half_w, region.half_h);
}

// Writes each id of the span whose position lies inside the circle to
// `out`, which must have room for `count` lanes. Returns the number kept.
template <typename OutId>
inline size_t CollectCircle(const uint32_t* ids, size_t count,
                            const double* xs, const double* ys, double cx,
                            double cy, double radius_sq, OutId* out) {
  size_t m = 0;
  for (size_t k = 0; k < count; ++k) {
    const auto oid = static_cast<size_t>(ids[k]);
    out[m] = static_cast<OutId>(ids[k]);
    m += CircleLane(xs[oid], ys[oid], cx, cy, radius_sq) ? 1 : 0;
  }
  return m;
}

// Oracle kernel, circular region bound at (cx, cy): keeps ids inside the
// circle that pass the attribute filter and are not the focal object.
template <typename OutId>
inline size_t CollectQueryCircle(const uint32_t* ids, size_t count,
                                 const double* xs, const double* ys,
                                 const double* attrs, double cx, double cy,
                                 double radius_sq, double filter_threshold,
                                 uint32_t focal_oid, OutId* out) {
  size_t m = 0;
  for (size_t k = 0; k < count; ++k) {
    const auto oid = static_cast<size_t>(ids[k]);
    const bool hit = CircleLane(xs[oid], ys[oid], cx, cy, radius_sq) &&
                     attrs[oid] <= filter_threshold && ids[k] != focal_oid;
    out[m] = static_cast<OutId>(ids[k]);
    m += hit ? 1 : 0;
  }
  return m;
}

// Oracle kernel, rectangular region bound at (cx, cy). Applies the
// circumscribing-circle test *and* the exact rectangle test, mirroring the
// legacy two-stage scan (circle pre-filter, then shape refinement) so
// boundary points classify bit-identically.
template <typename OutId>
inline size_t CollectQueryRect(const uint32_t* ids, size_t count,
                               const double* xs, const double* ys,
                               const double* attrs, double cx, double cy,
                               double scan_radius_sq, double half_w,
                               double half_h, double filter_threshold,
                               uint32_t focal_oid, OutId* out) {
  size_t m = 0;
  for (size_t k = 0; k < count; ++k) {
    const auto oid = static_cast<size_t>(ids[k]);
    const bool hit =
        CircleLane(xs[oid], ys[oid], cx, cy, scan_radius_sq) &&
        RectLane(xs[oid], ys[oid], cx, cy, half_w, half_h) &&
        attrs[oid] <= filter_threshold && ids[k] != focal_oid;
    out[m] = static_cast<OutId>(ids[k]);
    m += hit ? 1 : 0;
  }
  return m;
}

}  // namespace mobieyes::geo::kernels

#endif  // MOBIEYES_GEO_BATCH_KERNELS_H_
