#ifndef MOBIEYES_GEO_CIRCLE_H_
#define MOBIEYES_GEO_CIRCLE_H_

#include "mobieyes/geo/point.h"
#include "mobieyes/geo/rect.h"

namespace mobieyes::geo {

// Circle(cx, cy, r) (paper §2.2). The query spatial region shape: its center
// is the binding point attached to the query's focal object.
struct Circle {
  Point center;
  Miles radius = 0.0;

  bool Contains(const Point& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }

  // Tight axis-aligned bounding box.
  Rect BoundingRect() const {
    return Rect{center.x - radius, center.y - radius, 2 * radius, 2 * radius};
  }

  bool Intersects(const Rect& r) const;

  friend bool operator==(const Circle&, const Circle&) = default;
};

}  // namespace mobieyes::geo

#endif  // MOBIEYES_GEO_CIRCLE_H_
