#ifndef MOBIEYES_GEO_GRID_H_
#define MOBIEYES_GEO_GRID_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/point.h"
#include "mobieyes/geo/rect.h"

namespace mobieyes::geo {

// Index of a grid cell. The paper's A_{i,j} is 1-based with ceiling mapping;
// we use the equivalent 0-based floor mapping (see DESIGN.md). i indexes the
// x-dimension (column), j the y-dimension (row).
struct CellCoord {
  int32_t i = 0;
  int32_t j = 0;

  friend bool operator==(const CellCoord&, const CellCoord&) = default;
};

struct CellCoordHash {
  size_t operator()(const CellCoord& c) const {
    return std::hash<int64_t>()((static_cast<int64_t>(c.i) << 32) ^
                                static_cast<uint32_t>(c.j));
  }
};

// An axis-aligned rectangular block of grid cells
// [i_lo..i_hi] x [j_lo..j_hi] (inclusive). Because a query's bounding box
// is a rectangle, its monitoring region — the union of cells intersecting
// the bounding box — is always such a block, so this is an exact (and
// compact) representation.
struct CellRange {
  int32_t i_lo = 0;
  int32_t i_hi = -1;  // empty by default (hi < lo)
  int32_t j_lo = 0;
  int32_t j_hi = -1;

  bool empty() const { return i_hi < i_lo || j_hi < j_lo; }
  int64_t CellCount() const {
    if (empty()) return 0;
    return static_cast<int64_t>(i_hi - i_lo + 1) *
           static_cast<int64_t>(j_hi - j_lo + 1);
  }

  bool Contains(const CellCoord& c) const {
    return c.i >= i_lo && c.i <= i_hi && c.j >= j_lo && c.j <= j_hi;
  }

  bool Intersects(const CellRange& other) const {
    return !empty() && !other.empty() && i_lo <= other.i_hi &&
           other.i_lo <= i_hi && j_lo <= other.j_hi && other.j_lo <= j_hi;
  }

  // Smallest range covering both (used for the old-union-new broadcast when
  // a focal object crosses cells, §3.5).
  static CellRange Union(const CellRange& a, const CellRange& b);

  // Invokes fn(i, j) for every cell in the range. Templated so the loop
  // body inlines — this drives the per-object hot loops in World.
  template <typename Visitor>
  void ForEach(const Visitor& fn) const {
    for (int32_t j = j_lo; j <= j_hi; ++j) {
      for (int32_t i = i_lo; i <= i_hi; ++i) {
        fn(i, j);
      }
    }
  }

  friend bool operator==(const CellRange&, const CellRange&) = default;
};

// The grid G(U, alpha) over the universe of discourse U (paper §2.2).
class Grid {
 public:
  // Creates a grid over `universe` with cell side `alpha`. Returns
  // InvalidArgument for non-positive alpha or an empty universe.
  static Result<Grid> Make(const Rect& universe, Miles alpha);

  const Rect& universe() const { return universe_; }
  Miles alpha() const { return alpha_; }
  int32_t columns() const { return columns_; }  // N = ceil(W / alpha)
  int32_t rows() const { return rows_; }        // M = ceil(H / alpha)
  int64_t CellCount() const {
    return static_cast<int64_t>(columns_) * rows_;
  }

  // Pmap: position -> current grid cell. Positions outside the universe are
  // clamped to the border cell (objects are reflected at the border by the
  // motion model, so this only matters for exact-boundary points). Inline:
  // World::Step calls this once per object per step.
  CellCoord CellOf(const Point& p) const {
    auto i = static_cast<int32_t>(std::floor((p.x - universe_.lx) / alpha_));
    auto j = static_cast<int32_t>(std::floor((p.y - universe_.ly) / alpha_));
    i = std::clamp(i, 0, columns_ - 1);
    j = std::clamp(j, 0, rows_ - 1);
    return CellCoord{i, j};
  }

  // The rectangle covered by cell (i, j), clipped to the universe edge cells.
  Rect CellRect(const CellCoord& c) const;

  bool IsValid(const CellCoord& c) const {
    return c.i >= 0 && c.i < columns_ && c.j >= 0 && c.j < rows_;
  }

  // bound_box(q): the area the query region can reach while its focal
  // object stays inside cell `focal_cell` (paper §2.3): the cell inflated
  // by the region's per-axis reach. The radius overloads are the circular
  // case used throughout the paper.
  Rect QueryBoundingBox(const CellCoord& focal_cell, Miles radius) const;
  Rect QueryBoundingBox(const CellCoord& focal_cell, Miles reach_x,
                        Miles reach_y) const;

  // mon_region(q): cells intersecting the bounding box, clamped to the grid.
  CellRange MonitoringRegion(const CellCoord& focal_cell, Miles radius) const;
  CellRange MonitoringRegion(const CellCoord& focal_cell, Miles reach_x,
                             Miles reach_y) const;

  // Cells intersecting an arbitrary rectangle, clamped to the grid.
  CellRange CellsIntersecting(const Rect& r) const;

  // Flat row-major index of a cell, for use as an array subscript.
  int64_t FlatIndex(const CellCoord& c) const {
    return static_cast<int64_t>(c.j) * columns_ + c.i;
  }

 private:
  Grid(const Rect& universe, Miles alpha, int32_t columns, int32_t rows)
      : universe_(universe), alpha_(alpha), columns_(columns), rows_(rows) {}

  Rect universe_;
  Miles alpha_;
  int32_t columns_;
  int32_t rows_;
};

}  // namespace mobieyes::geo

#endif  // MOBIEYES_GEO_GRID_H_
