#include "mobieyes/geo/grid.h"

#include <algorithm>
#include <cmath>

namespace mobieyes::geo {

CellRange CellRange::Union(const CellRange& a, const CellRange& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return CellRange{std::min(a.i_lo, b.i_lo), std::max(a.i_hi, b.i_hi),
                   std::min(a.j_lo, b.j_lo), std::max(a.j_hi, b.j_hi)};
}

Result<Grid> Grid::Make(const Rect& universe, Miles alpha) {
  if (alpha <= 0.0) {
    return Status::InvalidArgument("grid cell side alpha must be positive");
  }
  if (universe.w <= 0.0 || universe.h <= 0.0) {
    return Status::InvalidArgument("universe of discourse must be non-empty");
  }
  auto columns = static_cast<int32_t>(std::ceil(universe.w / alpha));
  auto rows = static_cast<int32_t>(std::ceil(universe.h / alpha));
  return Grid(universe, alpha, columns, rows);
}

Rect Grid::CellRect(const CellCoord& c) const {
  Miles lx = universe_.lx + c.i * alpha_;
  Miles ly = universe_.ly + c.j * alpha_;
  Miles w = std::min(alpha_, universe_.hx() - lx);
  Miles h = std::min(alpha_, universe_.hy() - ly);
  return Rect{lx, ly, w, h};
}

Rect Grid::QueryBoundingBox(const CellCoord& focal_cell, Miles radius) const {
  return QueryBoundingBox(focal_cell, radius, radius);
}

Rect Grid::QueryBoundingBox(const CellCoord& focal_cell, Miles reach_x,
                            Miles reach_y) const {
  Rect cell = CellRect(focal_cell);
  return Rect{cell.lx - reach_x, cell.ly - reach_y, cell.w + 2 * reach_x,
              cell.h + 2 * reach_y};
}

CellRange Grid::MonitoringRegion(const CellCoord& focal_cell,
                                 Miles radius) const {
  return CellsIntersecting(QueryBoundingBox(focal_cell, radius));
}

CellRange Grid::MonitoringRegion(const CellCoord& focal_cell, Miles reach_x,
                                 Miles reach_y) const {
  return CellsIntersecting(QueryBoundingBox(focal_cell, reach_x, reach_y));
}

CellRange Grid::CellsIntersecting(const Rect& r) const {
  if (!r.Intersects(universe_)) return CellRange{};
  auto i_lo = static_cast<int32_t>(std::floor((r.lx - universe_.lx) / alpha_));
  auto j_lo = static_cast<int32_t>(std::floor((r.ly - universe_.ly) / alpha_));
  // Upper bounds are inclusive: a rectangle whose edge exactly touches a cell
  // boundary intersects the neighboring cell as well (closed rectangles).
  auto i_hi = static_cast<int32_t>(
      std::floor((r.hx() - universe_.lx) / alpha_));
  auto j_hi = static_cast<int32_t>(
      std::floor((r.hy() - universe_.ly) / alpha_));
  return CellRange{std::clamp(i_lo, 0, columns_ - 1),
                   std::clamp(i_hi, 0, columns_ - 1),
                   std::clamp(j_lo, 0, rows_ - 1),
                   std::clamp(j_hi, 0, rows_ - 1)};
}

}  // namespace mobieyes::geo
