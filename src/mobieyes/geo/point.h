#ifndef MOBIEYES_GEO_POINT_H_
#define MOBIEYES_GEO_POINT_H_

#include <cmath>

#include "mobieyes/common/units.h"

namespace mobieyes::geo {

// A 2D point in the universe of discourse, in miles.
struct Point {
  Miles x = 0.0;
  Miles y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

// A 2D vector. Used for velocity (miles/second) and displacements.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  double Norm() const { return std::hypot(x, y); }

  friend bool operator==(const Vec2&, const Vec2&) = default;
};

inline Point operator+(const Point& p, const Vec2& v) {
  return Point{p.x + v.x, p.y + v.y};
}

inline Vec2 operator-(const Point& a, const Point& b) {
  return Vec2{a.x - b.x, a.y - b.y};
}

inline Vec2 operator*(const Vec2& v, double s) {
  return Vec2{v.x * s, v.y * s};
}

inline Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline Vec2 operator+(const Vec2& a, const Vec2& b) {
  return Vec2{a.x + b.x, a.y + b.y};
}

inline double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace mobieyes::geo

#endif  // MOBIEYES_GEO_POINT_H_
