#ifndef MOBIEYES_GEO_QUERY_REGION_H_
#define MOBIEYES_GEO_QUERY_REGION_H_

#include <algorithm>
#include <cmath>

#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/point.h"
#include "mobieyes/geo/rect.h"

namespace mobieyes::geo {

// The spatial region of a moving query (paper §2.3): a closed shape with a
// cheap point-containment test, bound to the focal object through a binding
// point. Circles bind at their center; rectangles at their center point.
// The paper develops the protocol for circles "without loss of generality";
// this type carries the generalization through the whole stack.
struct QueryRegion {
  enum class Shape { kCircle, kRectangle };

  Shape shape = Shape::kCircle;
  Miles radius = 0.0;  // circle
  Miles half_w = 0.0;  // rectangle half extents
  Miles half_h = 0.0;

  static QueryRegion MakeCircle(Miles radius) {
    QueryRegion region;
    region.shape = Shape::kCircle;
    region.radius = radius;
    return region;
  }

  static QueryRegion MakeRectangle(Miles width, Miles height) {
    QueryRegion region;
    region.shape = Shape::kRectangle;
    region.half_w = width / 2.0;
    region.half_h = height / 2.0;
    return region;
  }

  bool valid() const {
    return shape == Shape::kCircle ? radius > 0.0
                                   : half_w > 0.0 && half_h > 0.0;
  }

  // Containment of p when the region is bound at `center`.
  bool Contains(const Point& center, const Point& p) const {
    if (shape == Shape::kCircle) {
      return Circle{center, radius}.Contains(p);
    }
    return std::abs(p.x - center.x) <= half_w &&
           std::abs(p.y - center.y) <= half_h;
  }

  // Per-axis reach from the binding point: how far the region extends in x
  // and in y. Drives the query bounding box / monitoring region (§2.3).
  Miles ReachX() const {
    return shape == Shape::kCircle ? radius : half_w;
  }
  Miles ReachY() const {
    return shape == Shape::kCircle ? radius : half_h;
  }

  // Circumscribing radius: no point of the region is further than this from
  // the binding point. Upper-bounds the safe-period distance (§4.2) and
  // orders groupable queries for short-circuit evaluation (§4.1).
  Miles MaxReach() const {
    return shape == Shape::kCircle ? radius : std::hypot(half_w, half_h);
  }

  friend bool operator==(const QueryRegion&, const QueryRegion&) = default;
};

}  // namespace mobieyes::geo

#endif  // MOBIEYES_GEO_QUERY_REGION_H_
