#ifndef MOBIEYES_COMMON_STOPWATCH_H_
#define MOBIEYES_COMMON_STOPWATCH_H_

#include <chrono>

namespace mobieyes {

// Accumulating monotonic stopwatch; used to measure "server load" and
// "per-object processing load" (wall time spent inside processing logic per
// simulation step), mirroring the paper's §5.2 metric.
class Stopwatch {
 public:
  void Start() { start_ = Clock::now(); }

  // Stops the current interval and adds it to the accumulated total.
  void Stop() {
    total_ += std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double total_seconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  double total_ = 0.0;
};

// Reentrancy-safe accumulating timer: only the outermost Enter/Exit pair
// starts and stops the clock, so synchronous message deliveries that loop
// back into an already-timed component are not double counted. Pause/Resume
// exclude nested foreign work (e.g. message delivery into other components)
// from the measurement.
class ReentrantTimer {
 public:
  void Enter() {
    bool was = running();
    ++enter_depth_;
    Sync(was);
  }
  void Exit() {
    bool was = running();
    --enter_depth_;
    Sync(was);
  }
  void Pause() {
    bool was = running();
    ++pause_depth_;
    Sync(was);
  }
  void Resume() {
    bool was = running();
    --pause_depth_;
    Sync(was);
  }

  double total_seconds() const { return watch_.total_seconds(); }
  void Reset() { watch_.Reset(); }

 private:
  bool running() const { return enter_depth_ > 0 && pause_depth_ == 0; }
  void Sync(bool was_running) {
    bool now = running();
    if (now && !was_running) watch_.Start();
    if (!now && was_running) watch_.Stop();
  }

  Stopwatch watch_;
  int enter_depth_ = 0;
  int pause_depth_ = 0;
};

// RAII guard excluding a scope from a ReentrantTimer's measurement.
class TimerPause {
 public:
  explicit TimerPause(ReentrantTimer& timer) : timer_(timer) {
    timer_.Pause();
  }
  ~TimerPause() { timer_.Resume(); }

  TimerPause(const TimerPause&) = delete;
  TimerPause& operator=(const TimerPause&) = delete;

 private:
  ReentrantTimer& timer_;
};

// RAII guard for ReentrantTimer.
class TimedSection {
 public:
  explicit TimedSection(ReentrantTimer& timer) : timer_(timer) {
    timer_.Enter();
  }
  ~TimedSection() { timer_.Exit(); }

  TimedSection(const TimedSection&) = delete;
  TimedSection& operator=(const TimedSection&) = delete;

 private:
  ReentrantTimer& timer_;
};

// RAII guard that accumulates the scope's duration into a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) : watch_(watch) { watch_.Start(); }
  ~ScopedTimer() { watch_.Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace mobieyes

#endif  // MOBIEYES_COMMON_STOPWATCH_H_
