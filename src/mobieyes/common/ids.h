#ifndef MOBIEYES_COMMON_IDS_H_
#define MOBIEYES_COMMON_IDS_H_

#include <cstdint>

namespace mobieyes {

// Identifier types shared across layers. Objects and queries use distinct
// 64-bit id spaces; base stations are small and indexed densely.
using ObjectId = int64_t;
using QueryId = int64_t;
using BaseStationId = int32_t;

inline constexpr ObjectId kInvalidObjectId = -1;
inline constexpr QueryId kInvalidQueryId = -1;
inline constexpr BaseStationId kInvalidBaseStationId = -1;

}  // namespace mobieyes

#endif  // MOBIEYES_COMMON_IDS_H_
