#ifndef MOBIEYES_COMMON_STATUS_H_
#define MOBIEYES_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace mobieyes {

// Error handling follows the Arrow/RocksDB convention: fallible operations
// return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
};

// A Status carries a code and, for non-OK statuses, a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Modeled after
// arrow::Result; kept minimal on purpose.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors arrow::Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  // Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define MOBIEYES_RETURN_NOT_OK(expr)          \
  do {                                        \
    ::mobieyes::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace mobieyes

#endif  // MOBIEYES_COMMON_STATUS_H_
