#ifndef MOBIEYES_COMMON_UNITS_H_
#define MOBIEYES_COMMON_UNITS_H_

#include <cstdint>

namespace mobieyes {

// The simulation works in miles and seconds. Speeds from Table 1 are given
// in miles/hour; convert at the workload boundary and keep miles/second
// internally so `pos += vel * dt_seconds` needs no further conversion.

using Seconds = double;
using Miles = double;

constexpr double MphToMilesPerSecond(double mph) { return mph / 3600.0; }
constexpr double MilesPerSecondToMph(double mps) { return mps * 3600.0; }

// Simulation timestamps are integral step counts plus the step length, so
// equality comparisons on "when was this recorded" are exact.
using StepCount = int64_t;

}  // namespace mobieyes

#endif  // MOBIEYES_COMMON_UNITS_H_
