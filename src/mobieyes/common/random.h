#ifndef MOBIEYES_COMMON_RANDOM_H_
#define MOBIEYES_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mobieyes {

// Deterministic xoshiro256++ PRNG. The simulation must be reproducible from
// a single seed across platforms, so we avoid std::mt19937/std::*_distribution
// (whose outputs are not portable across standard library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, n). Precondition: n > 0.
  uint64_t NextUint64(uint64_t n);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller (deterministic given the stream).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // True with probability p.
  bool NextBernoulli(double p);

  // Forks an independent deterministic stream (used to give each simulation
  // component its own stream so adding a component does not perturb others).
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf sampler over ranks {0, .., n-1}: P(k) proportional to 1/(k+1)^theta.
// Table 1 assigns query radii and object max speeds with a zipf(0.8)
// distribution over short preference lists.
class ZipfSampler {
 public:
  ZipfSampler(int n, double theta);

  // Draws a rank in [0, n).
  int Sample(Rng& rng) const;

  // Probability mass of rank k.
  double pmf(int k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace mobieyes

#endif  // MOBIEYES_COMMON_RANDOM_H_
