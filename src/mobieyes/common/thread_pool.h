#ifndef MOBIEYES_COMMON_THREAD_POOL_H_
#define MOBIEYES_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mobieyes {

// Fixed-size worker pool. Tasks are plain callables; Submit returns a future
// carrying the callable's result (or its exception). The pool never shares
// mutable state between tasks — callers own their data and any partitioning.
//
// With `threads <= 1` the pool runs every task inline on the calling thread
// (no workers are spawned), so a single code path serves both the serial and
// the parallel configuration and `--threads=1` is genuinely serial.
class ThreadPool {
 public:
  // Number of concurrent hardware threads, at least 1.
  static int HardwareThreads();

  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker count; 0 means inline execution.
  int thread_count() const { return static_cast<int>(workers_.size()); }

  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  // Invokes fn(index) for every index in [begin, end), fanned across the
  // pool in contiguous chunks, and blocks until all complete. If any
  // invocation throws, one of the thrown exceptions is rethrown on the
  // calling thread (after every index has been dispatched and joined).
  template <typename Fn>
  void ParallelFor(int64_t begin, int64_t end, const Fn& fn) {
    if (begin >= end) return;
    const int64_t count = end - begin;
    const int64_t lanes =
        std::min<int64_t>(count, std::max(thread_count(), 1));
    if (lanes <= 1) {
      for (int64_t index = begin; index < end; ++index) fn(index);
      return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<size_t>(lanes));
    const int64_t chunk = (count + lanes - 1) / lanes;
    for (int64_t lo = begin; lo < end; lo += chunk) {
      const int64_t hi = std::min(lo + chunk, end);
      pending.push_back(Submit([&fn, lo, hi] {
        for (int64_t index = lo; index < hi; ++index) fn(index);
      }));
    }
    std::exception_ptr first_error;
    for (auto& future : pending) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mobieyes

#endif  // MOBIEYES_COMMON_THREAD_POOL_H_
