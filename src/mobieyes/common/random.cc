#include "mobieyes/common/random.h"

#include <cmath>
#include <numbers>

namespace mobieyes {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used for seeding the xoshiro state from a single word.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; we draw u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

ZipfSampler::ZipfSampler(int n, double theta) {
  cdf_.reserve(n);
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_.push_back(total);
  }
  for (auto& c : cdf_) c /= total;
}

int ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  for (size_t k = 0; k < cdf_.size(); ++k) {
    if (u <= cdf_[k]) return static_cast<int>(k);
  }
  return static_cast<int>(cdf_.size()) - 1;
}

double ZipfSampler::pmf(int k) const {
  if (k < 0 || k >= static_cast<int>(cdf_.size())) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace mobieyes
