#include "mobieyes/common/thread_pool.h"

namespace mobieyes {

int ThreadPool::HardwareThreads() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(static_cast<size_t>(threads));
  for (int k = 0; k < threads; ++k) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

}  // namespace mobieyes
