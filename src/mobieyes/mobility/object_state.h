#ifndef MOBIEYES_MOBILITY_OBJECT_STATE_H_
#define MOBIEYES_MOBILITY_OBJECT_STATE_H_

#include "mobieyes/common/ids.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/geo/point.h"

namespace mobieyes::mobility {

// Ground-truth state of one moving object: the paper's
// <oid, pos, vel, {props}> quadruple (§2.2) plus the per-object maximum
// speed used by the motion model and the safe-period optimization.
struct ObjectState {
  ObjectId oid = kInvalidObjectId;
  geo::Point pos;
  geo::Vec2 vel;           // miles/second
  double max_speed = 0.0;  // miles/second
  // Object property used by query filters: uniform in [0, 1). A filter with
  // threshold t selects this object iff attr <= t (selectivity t).
  double attr = 0.0;
  // Current grid cell; maintained by the World as the object moves.
  geo::CellCoord cell;
};

}  // namespace mobieyes::mobility

#endif  // MOBIEYES_MOBILITY_OBJECT_STATE_H_
