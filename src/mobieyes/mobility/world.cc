#include "mobieyes/mobility/world.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "mobieyes/mobility/motion_model.h"

namespace mobieyes::mobility {

namespace {

// Smallest double b with (b - lo) / alpha >= index. Starts from the real
// boundary and ulp-steps to the exact float threshold; division by a
// positive alpha is monotone, so the threshold is well defined and the
// predicate "b <= x" reproduces floor((x - lo) / alpha) >= index exactly.
double LowerBoundary(double lo, double alpha, int32_t index) {
  const double target = static_cast<double>(index);
  double b = lo + alpha * target;
  while ((b - lo) / alpha < target) {
    b = std::nextafter(b, std::numeric_limits<double>::infinity());
  }
  for (;;) {
    const double prev =
        std::nextafter(b, -std::numeric_limits<double>::infinity());
    if ((prev - lo) / alpha >= target) {
      b = prev;
    } else {
      break;
    }
  }
  return b;
}

// Boundaries for all `count` cells along one axis, with ±inf sentinels so
// the walk in Step clamps at the grid edge exactly like Grid::CellOf.
std::vector<double> AxisBounds(double lo, double alpha, int32_t count) {
  std::vector<double> bounds(static_cast<size_t>(count) + 1);
  bounds.front() = -std::numeric_limits<double>::infinity();
  bounds.back() = std::numeric_limits<double>::infinity();
  for (int32_t k = 1; k < count; ++k) {
    bounds[static_cast<size_t>(k)] = LowerBoundary(lo, alpha, k);
  }
  return bounds;
}

}  // namespace

Result<World> World::Make(const geo::Grid& grid,
                          std::vector<ObjectState> objects) {
  for (size_t k = 0; k < objects.size(); ++k) {
    if (objects[k].oid != static_cast<ObjectId>(k)) {
      return Status::InvalidArgument("object ids must be dense 0..n-1");
    }
    if (!grid.universe().Contains(objects[k].pos)) {
      return Status::InvalidArgument("object outside universe of discourse");
    }
  }
  return World(grid, objects);
}

World::World(const geo::Grid& grid, const std::vector<ObjectState>& objects)
    : grid_(&grid) {
  const size_t n = objects.size();
  const auto cells = static_cast<size_t>(grid.CellCount());
  x_.resize(n);
  y_.resize(n);
  vx_.resize(n);
  vy_.resize(n);
  max_speed_.resize(n);
  attr_.resize(n);
  cell_i_.resize(n);
  cell_j_.resize(n);
  cell_start_.assign(cells + 1, 0);
  cell_items_.resize(n);
  cell_count_.assign(cells, 0);
  scatter_cursor_.resize(cells);
  velocity_pick_buffer_.resize(n);
  col_bound_ =
      AxisBounds(grid.universe().lx, grid.alpha(), grid.columns());
  row_bound_ = AxisBounds(grid.universe().ly, grid.alpha(), grid.rows());
  for (size_t k = 0; k < n; ++k) {
    const ObjectState& object = objects[k];
    x_[k] = object.pos.x;
    y_[k] = object.pos.y;
    vx_[k] = object.vel.x;
    vy_[k] = object.vel.y;
    max_speed_[k] = object.max_speed;
    attr_[k] = object.attr;
    const geo::CellCoord c = grid_->CellOf(object.pos);
    cell_i_[k] = c.i;
    cell_j_[k] = c.j;
    ++cell_count_[static_cast<size_t>(grid.FlatIndex(c))];
  }
  std::iota(velocity_pick_buffer_.begin(), velocity_pick_buffer_.end(),
            ObjectId{0});
  RebuildSpans();
}

void World::RebuildSpans() {
  // Counting scatter over the maintained per-cell populations: prefix-sum,
  // then one oid-order pass. cell_count_ is kept current by the ctor, the
  // Step loop and SetObjectState (branchless ±`changed` updates against an
  // L1-resident array), so no counting pass over the objects is needed.
  const size_t cells = cell_count_.size();
  const size_t n = cell_i_.size();
  const int64_t columns = grid_->columns();
  uint32_t run = 0;
  for (size_t c = 0; c < cells; ++c) {
    cell_start_[c] = run;
    scatter_cursor_[c] = run;
    run += cell_count_[c];
  }
  cell_start_[cells] = run;
  for (size_t oid = 0; oid < n; ++oid) {
    const auto flat = static_cast<size_t>(
        static_cast<int64_t>(cell_j_[oid]) * columns + cell_i_[oid]);
    cell_items_[scatter_cursor_[flat]++] = static_cast<uint32_t>(oid);
  }
}

void World::Step(Seconds dt, int velocity_changes, Rng& rng) {
  // Draw `velocity_changes` distinct objects with a partial Fisher-Yates
  // shuffle over the persistent identity buffer: the first `changes` slots
  // become a uniform random sample without replacement.
  //
  // The loop is software-pipelined: the rng draws (pick index, angle, unit
  // speed — all register-only, in exactly the historical order) run `kDepth`
  // iterations ahead of the scattered max_speed_/vx_/vy_ accesses, which
  // are prefetched when the pick resolves and applied when they reach the
  // back of the ring. At millions of objects every one of those accesses is
  // a DRAM miss, and without the pipeline each iteration serializes two
  // dependent misses (pick slot, then velocity row); overlapping them is
  // worth ~2x on this phase. ApplyPolar is bit-equivalent to the eager
  // DrawVelocity (see motion_model.h), and FY picks are distinct, so the
  // deferred stores cannot race a later pick of the same object.
  const auto n = static_cast<uint64_t>(x_.size());
  const auto changes = static_cast<uint64_t>(
      std::min<int64_t>(velocity_changes, static_cast<int64_t>(n)));
  constexpr uint64_t kDepth = 8;
  struct PendingDraw {
    size_t oid;
    double angle;
    double unit_speed;
  };
  PendingDraw ring[kDepth];
  for (uint64_t k = 0; k < changes; ++k) {
    const uint64_t pick = k + rng.NextUint64(n - k);
    double angle;
    double unit_speed;
    RandomVelocityModel::DrawPolar(rng, angle, unit_speed);
    std::swap(velocity_pick_buffer_[k], velocity_pick_buffer_[pick]);
    const auto oid = static_cast<size_t>(velocity_pick_buffer_[k]);
    __builtin_prefetch(&max_speed_[oid]);
    __builtin_prefetch(&vx_[oid], 1);
    __builtin_prefetch(&vy_[oid], 1);
    if (k >= kDepth) {
      const PendingDraw& d = ring[k % kDepth];
      RandomVelocityModel::ApplyPolar(max_speed_[d.oid], d.angle,
                                      d.unit_speed, vx_[d.oid], vy_[d.oid]);
    }
    ring[k % kDepth] = PendingDraw{oid, angle, unit_speed};
  }
  for (uint64_t k = changes < kDepth ? 0 : changes - kDepth; k < changes;
       ++k) {
    const PendingDraw& d = ring[k % kDepth];
    RandomVelocityModel::ApplyPolar(max_speed_[d.oid], d.angle, d.unit_speed,
                                    vx_[d.oid], vy_[d.oid]);
  }

  // Advance every object over the SoA arrays. Cell reassignment uses the
  // precomputed boundary arrays instead of CellOf's two divisions: one
  // branchless ±1 index step per axis covers any same- or adjacent-cell
  // outcome (objects rarely move further than one cell per step), and a
  // never-predicted walk loop handles larger jumps exactly. Everything in
  // the loop is unconditional — migration is tallied with a flag add, not
  // a branch — because the ~25-40% per-object migration branch this
  // replaces was the loop's dominant cost (mispredicts plus random counter
  // traffic). The result is bit-equivalent to Grid::CellOf per object.
  const geo::Rect& universe = grid_->universe();
  const int64_t columns = grid_->columns();
  const double* col_bound = col_bound_.data();
  const double* row_bound = row_bound_.data();
  size_t migrations = 0;
  for (size_t oid = 0; oid < n; ++oid) {
    RandomVelocityModel::AdvanceComponents(x_[oid], y_[oid], vx_[oid],
                                           vy_[oid], dt, universe);
    const double px = x_[oid];
    const double py = y_[oid];
    int32_t ci = cell_i_[oid];
    int32_t cj = cell_j_[oid];
    const int64_t old_flat = static_cast<int64_t>(cj) * columns + ci;
    ci += static_cast<int32_t>(px >= col_bound[ci + 1]) -
          static_cast<int32_t>(px < col_bound[ci]);
    cj += static_cast<int32_t>(py >= row_bound[cj + 1]) -
          static_cast<int32_t>(py < row_bound[cj]);
    if (px < col_bound[ci] || px >= col_bound[ci + 1]) [[unlikely]] {
      while (px < col_bound[ci]) --ci;
      while (px >= col_bound[ci + 1]) ++ci;
    }
    if (py < row_bound[cj] || py >= row_bound[cj + 1]) [[unlikely]] {
      while (py < row_bound[cj]) --cj;
      while (py >= row_bound[cj + 1]) ++cj;
    }
    cell_i_[oid] = ci;
    cell_j_[oid] = cj;
    const int64_t new_flat = static_cast<int64_t>(cj) * columns + ci;
    const auto changed = static_cast<uint32_t>(new_flat != old_flat);
    // Keep per-cell populations current without a branch: the two updates
    // cancel when the object stayed put, and cell_count_ is small enough
    // to live in L1 so the random accesses are cheap.
    cell_count_[static_cast<size_t>(old_flat)] -= changed;
    cell_count_[static_cast<size_t>(new_flat)] += changed;
    migrations += changed;
  }
  if (migrations != 0) RebuildSpans();

  now_ += dt;
  ++step_count_;
}

void World::SetObjectState(ObjectId oid, const geo::Point& pos,
                           const geo::Vec2& vel) {
  const auto k = static_cast<size_t>(oid);
  x_[k] = pos.x;
  y_[k] = pos.y;
  vx_[k] = vel.x;
  vy_[k] = vel.y;
  const geo::CellCoord c = grid_->CellOf(pos);
  if (c.i != cell_i_[k] || c.j != cell_j_[k]) {
    --cell_count_[static_cast<size_t>(
        grid_->FlatIndex(geo::CellCoord{cell_i_[k], cell_j_[k]}))];
    cell_i_[k] = c.i;
    cell_j_[k] = c.j;
    ++cell_count_[static_cast<size_t>(grid_->FlatIndex(c))];
    RebuildSpans();
  }
}

}  // namespace mobieyes::mobility
