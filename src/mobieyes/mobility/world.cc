#include "mobieyes/mobility/world.h"

#include <numeric>
#include <utility>

#include "mobieyes/mobility/motion_model.h"

namespace mobieyes::mobility {

Result<World> World::Make(const geo::Grid& grid,
                          std::vector<ObjectState> objects) {
  for (size_t k = 0; k < objects.size(); ++k) {
    if (objects[k].oid != static_cast<ObjectId>(k)) {
      return Status::InvalidArgument("object ids must be dense 0..n-1");
    }
    if (!grid.universe().Contains(objects[k].pos)) {
      return Status::InvalidArgument("object outside universe of discourse");
    }
  }
  return World(grid, std::move(objects));
}

World::World(const geo::Grid& grid, std::vector<ObjectState> objects)
    : grid_(&grid),
      objects_(std::move(objects)),
      cell_objects_(grid.CellCount()),
      slot_in_cell_(objects_.size()),
      velocity_pick_buffer_(objects_.size()) {
  for (auto& object : objects_) {
    object.cell = grid_->CellOf(object.pos);
    auto& list = cell_objects_[grid_->FlatIndex(object.cell)];
    slot_in_cell_[object.oid] = static_cast<uint32_t>(list.size());
    list.push_back(object.oid);
  }
  std::iota(velocity_pick_buffer_.begin(), velocity_pick_buffer_.end(),
            ObjectId{0});
}

void World::MigrateCell(ObjectState& object, const geo::CellCoord& new_cell) {
  auto& old_list = cell_objects_[grid_->FlatIndex(object.cell)];
  const uint32_t slot = slot_in_cell_[object.oid];
  ObjectId moved = old_list.back();
  old_list[slot] = moved;
  slot_in_cell_[moved] = slot;
  old_list.pop_back();
  auto& new_list = cell_objects_[grid_->FlatIndex(new_cell)];
  slot_in_cell_[object.oid] = static_cast<uint32_t>(new_list.size());
  new_list.push_back(object.oid);
  object.cell = new_cell;
}

void World::Step(Seconds dt, int velocity_changes, Rng& rng) {
  // Draw `velocity_changes` distinct objects with a partial Fisher-Yates
  // shuffle over the persistent identity buffer: the first `changes` slots
  // become a uniform random sample without replacement.
  const auto n = static_cast<uint64_t>(objects_.size());
  const auto changes = static_cast<uint64_t>(
      std::min<int64_t>(velocity_changes, static_cast<int64_t>(n)));
  for (uint64_t k = 0; k < changes; ++k) {
    uint64_t pick = k + rng.NextUint64(n - k);
    std::swap(velocity_pick_buffer_[k], velocity_pick_buffer_[pick]);
    RandomVelocityModel::RandomizeVelocity(objects_[velocity_pick_buffer_[k]],
                                           rng);
  }

  for (auto& object : objects_) {
    RandomVelocityModel::Advance(object, dt, grid_->universe());
    geo::CellCoord new_cell = grid_->CellOf(object.pos);
    if (!(new_cell == object.cell)) MigrateCell(object, new_cell);
  }

  now_ += dt;
  ++step_count_;
}

void World::SetObjectState(ObjectId oid, const geo::Point& pos,
                           const geo::Vec2& vel) {
  ObjectState& object = objects_[static_cast<size_t>(oid)];
  object.vel = vel;
  object.pos = pos;
  geo::CellCoord new_cell = grid_->CellOf(pos);
  if (!(new_cell == object.cell)) MigrateCell(object, new_cell);
}

}  // namespace mobieyes::mobility
