#include "mobieyes/mobility/world.h"

#include <algorithm>
#include <unordered_set>

#include "mobieyes/mobility/motion_model.h"

namespace mobieyes::mobility {

Result<World> World::Make(const geo::Grid& grid,
                          std::vector<ObjectState> objects) {
  for (size_t k = 0; k < objects.size(); ++k) {
    if (objects[k].oid != static_cast<ObjectId>(k)) {
      return Status::InvalidArgument("object ids must be dense 0..n-1");
    }
    if (!grid.universe().Contains(objects[k].pos)) {
      return Status::InvalidArgument("object outside universe of discourse");
    }
  }
  return World(grid, std::move(objects));
}

World::World(const geo::Grid& grid, std::vector<ObjectState> objects)
    : grid_(&grid),
      objects_(std::move(objects)),
      cell_objects_(grid.CellCount()) {
  for (auto& object : objects_) {
    object.cell = grid_->CellOf(object.pos);
    cell_objects_[grid_->FlatIndex(object.cell)].push_back(object.oid);
  }
}

void World::Step(Seconds dt, int velocity_changes, Rng& rng) {
  // Pick `velocity_changes` distinct objects to re-draw their velocity.
  int n = static_cast<int>(objects_.size());
  int changes = std::min(velocity_changes, n);
  std::unordered_set<ObjectId> chosen;
  chosen.reserve(changes);
  while (static_cast<int>(chosen.size()) < changes) {
    chosen.insert(static_cast<ObjectId>(rng.NextUint64(n)));
  }
  for (ObjectId oid : chosen) {
    RandomVelocityModel::RandomizeVelocity(objects_[oid], rng);
  }

  for (auto& object : objects_) {
    RandomVelocityModel::Advance(object, dt, grid_->universe());
    geo::CellCoord new_cell = grid_->CellOf(object.pos);
    if (!(new_cell == object.cell)) {
      auto& old_list = cell_objects_[grid_->FlatIndex(object.cell)];
      old_list.erase(std::find(old_list.begin(), old_list.end(), object.oid));
      cell_objects_[grid_->FlatIndex(new_cell)].push_back(object.oid);
      object.cell = new_cell;
    }
  }

  now_ += dt;
  ++step_count_;
}

void World::ForEachObjectInCircle(
    const geo::Circle& circle, const std::function<void(ObjectId)>& fn) const {
  geo::CellRange cells = grid_->CellsIntersecting(circle.BoundingRect());
  cells.ForEach([&](int32_t i, int32_t j) {
    for (ObjectId oid : cell_objects_[grid_->FlatIndex(geo::CellCoord{i, j})]) {
      if (circle.Contains(objects_[oid].pos)) fn(oid);
    }
  });
}

void World::ForEachObjectUnderCoverage(
    const geo::Circle& circle, const std::function<void(ObjectId)>& fn) const {
  geo::CellRange cells = grid_->CellsIntersecting(circle.BoundingRect());
  cells.ForEach([&](int32_t i, int32_t j) {
    geo::CellCoord c{i, j};
    if (!circle.Intersects(grid_->CellRect(c))) return;
    for (ObjectId oid : cell_objects_[grid_->FlatIndex(c)]) fn(oid);
  });
}

void World::ForEachObjectInCell(const geo::CellCoord& c,
                                const std::function<void(ObjectId)>& fn) const {
  if (!grid_->IsValid(c)) return;
  for (ObjectId oid : cell_objects_[grid_->FlatIndex(c)]) fn(oid);
}

void World::SetObjectState(ObjectId oid, const geo::Point& pos,
                           const geo::Vec2& vel) {
  ObjectState& object = objects_[static_cast<size_t>(oid)];
  object.vel = vel;
  object.pos = pos;
  geo::CellCoord new_cell = grid_->CellOf(pos);
  if (!(new_cell == object.cell)) {
    auto& old_list = cell_objects_[grid_->FlatIndex(object.cell)];
    old_list.erase(std::find(old_list.begin(), old_list.end(), object.oid));
    cell_objects_[grid_->FlatIndex(new_cell)].push_back(object.oid);
    object.cell = new_cell;
  }
}

}  // namespace mobieyes::mobility
