#ifndef MOBIEYES_MOBILITY_WORLD_H_
#define MOBIEYES_MOBILITY_WORLD_H_

#include <cstdint>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/object_state.h"

namespace mobieyes::mobility {

// Ground truth of the simulation: owns every object's true state, advances
// it by the §5.1 motion model, and maintains a grid-cell spatial index used
// both for broadcast delivery (which objects are under a base station) and
// for the exact-result oracle.
//
// Object state is stored as structure-of-arrays (x/y/vx/vy/max_speed/attr
// as separate dense arrays indexed by oid) so the per-step advance loop and
// the containment kernels stream contiguous doubles instead of striding
// through ObjectState structs. `ObjectState` remains the protocol layer's
// view: object() materializes one on demand.
//
// The spatial index is CSR-style: one flat `cell_items_` array of object
// ids partitioned into contiguous per-cell spans by `cell_start_` offsets
// (row-major by flat cell index). Because FlatIndex is row-major, the cells
// of one grid row inside any CellRange occupy one contiguous slice of
// cell_items_, so range scans touch one span per row instead of one list
// per cell. The index is rebuilt with a counting scatter (prefix sum over
// incrementally maintained per-cell counts, then one sequential scatter
// pass) only on steps where at least one object changed cells. Spans are
// always in canonical (cell, then
// ascending oid) order — a history-free ordering that makes the index
// state a pure function of current positions.
//
// The visitor methods take the callable as a template parameter so the
// per-object dispatch inlines; they sit on every mode's per-step hot path
// (broadcast delivery, oracle evaluation) where a std::function per object
// is measurable.
//
// ObjectIds are dense: objects are created with oid == index.
class World {
 public:
  // Takes ownership of initial object states. Objects must have dense ids
  // 0..n-1 and positions inside the grid universe.
  static Result<World> Make(const geo::Grid& grid,
                            std::vector<ObjectState> objects);

  const geo::Grid& grid() const { return *grid_; }
  size_t object_count() const { return x_.size(); }

  // Materializes the protocol-layer view of one object from the SoA state.
  // Returns by value; callers binding `const ObjectState&` get the usual
  // temporary lifetime extension.
  ObjectState object(ObjectId oid) const {
    const auto k = static_cast<size_t>(oid);
    ObjectState object;
    object.oid = oid;
    object.pos = geo::Point{x_[k], y_[k]};
    object.vel = geo::Vec2{vx_[k], vy_[k]};
    object.max_speed = max_speed_[k];
    object.attr = attr_[k];
    object.cell = cell(oid);
    return object;
  }

  // Field accessors for callers that need one component (cheaper than
  // materializing a full ObjectState).
  geo::Point position(ObjectId oid) const {
    const auto k = static_cast<size_t>(oid);
    return geo::Point{x_[k], y_[k]};
  }
  geo::Vec2 velocity(ObjectId oid) const {
    const auto k = static_cast<size_t>(oid);
    return geo::Vec2{vx_[k], vy_[k]};
  }
  double max_speed(ObjectId oid) const {
    return max_speed_[static_cast<size_t>(oid)];
  }
  double attr(ObjectId oid) const { return attr_[static_cast<size_t>(oid)]; }
  geo::CellCoord cell(ObjectId oid) const {
    const auto k = static_cast<size_t>(oid);
    return geo::CellCoord{cell_i_[k], cell_j_[k]};
  }

  // Raw SoA arrays, indexed by oid. The batched containment kernels
  // (geo/batch_kernels.h) gather through these.
  const double* xs() const { return x_.data(); }
  const double* ys() const { return y_.data(); }
  const double* attrs() const { return attr_.data(); }

  // Span-index internals, exposed for the kernels and the span-invariant
  // tests: cell_span_items() is the oid array, cell_span_offsets()[f] ..
  // cell_span_offsets()[f + 1] the slice holding flat cell f's objects.
  const std::vector<uint32_t>& cell_span_offsets() const {
    return cell_start_;
  }
  const std::vector<uint32_t>& cell_span_items() const { return cell_items_; }

  Seconds now() const { return now_; }
  StepCount step_count() const { return step_count_; }

  // Advances the simulation by dt: re-draws the velocity of
  // `velocity_changes` distinct random objects (the Table 1 `nmo`
  // parameter), then moves every object and refreshes the cell index.
  void Step(Seconds dt, int velocity_changes, Rng& rng);

  // Invokes fn for every object whose true position lies inside the circle.
  template <typename Visitor>
  void ForEachObjectInCircle(const geo::Circle& circle,
                             const Visitor& fn) const {
    const geo::CellRange cells =
        grid_->CellsIntersecting(circle.BoundingRect());
    const int64_t columns = grid_->columns();
    for (int32_t j = cells.j_lo; j <= cells.j_hi; ++j) {
      const int64_t row = static_cast<int64_t>(j) * columns;
      const uint32_t begin = cell_start_[row + cells.i_lo];
      const uint32_t end = cell_start_[row + cells.i_hi + 1];
      for (uint32_t k = begin; k < end; ++k) {
        const auto oid = static_cast<size_t>(cell_items_[k]);
        if (circle.Contains(geo::Point{x_[oid], y_[oid]})) {
          fn(static_cast<ObjectId>(oid));
        }
      }
    }
  }

  // Invokes fn for every object whose *current grid cell* intersects the
  // circle — a cell-granular alternative to ForEachObjectInCircle that
  // over-approximates a coverage area at grid resolution. Broadcast
  // delivery uses the exact point-in-circle rule; this variant exists for
  // cell-level analyses and tests. Empty cells skip the circle-rectangle
  // test: two adjacent span offsets decide emptiness, which is what keeps
  // sparse small worlds at parity with a brute scan.
  template <typename Visitor>
  void ForEachObjectUnderCoverage(const geo::Circle& circle,
                                  const Visitor& fn) const {
    const geo::CellRange cells =
        grid_->CellsIntersecting(circle.BoundingRect());
    const int64_t columns = grid_->columns();
    for (int32_t j = cells.j_lo; j <= cells.j_hi; ++j) {
      const int64_t row = static_cast<int64_t>(j) * columns;
      for (int32_t i = cells.i_lo; i <= cells.i_hi; ++i) {
        const uint32_t begin = cell_start_[row + i];
        const uint32_t end = cell_start_[row + i + 1];
        if (begin == end) continue;
        if (!circle.Intersects(grid_->CellRect(geo::CellCoord{i, j}))) {
          continue;
        }
        for (uint32_t k = begin; k < end; ++k) {
          fn(static_cast<ObjectId>(cell_items_[k]));
        }
      }
    }
  }

  // Invokes fn for every object currently in grid cell c.
  template <typename Visitor>
  void ForEachObjectInCell(const geo::CellCoord& c, const Visitor& fn) const {
    if (!grid_->IsValid(c)) return;
    const int64_t flat = grid_->FlatIndex(c);
    const uint32_t begin = cell_start_[flat];
    const uint32_t end = cell_start_[flat + 1];
    for (uint32_t k = begin; k < end; ++k) {
      fn(static_cast<ObjectId>(cell_items_[k]));
    }
  }

  // Invokes fn(ids, count) once per grid row of `cells` with the contiguous
  // slice of the span index covering that row — the batched-kernel entry
  // point. Row-major flat indexing makes adjacent cells of one row a single
  // contiguous range of cell_span_items().
  template <typename Visitor>
  void ForEachRowSpan(const geo::CellRange& cells, const Visitor& fn) const {
    const int64_t columns = grid_->columns();
    for (int32_t j = cells.j_lo; j <= cells.j_hi; ++j) {
      const int64_t row = static_cast<int64_t>(j) * columns;
      const uint32_t begin = cell_start_[row + cells.i_lo];
      const uint32_t end = cell_start_[row + cells.i_hi + 1];
      if (begin != end) {
        fn(&cell_items_[begin], static_cast<size_t>(end - begin));
      }
    }
  }

  // Test/setup hook: overwrite an object's kinematics and reindex it.
  void SetObjectState(ObjectId oid, const geo::Point& pos,
                      const geo::Vec2& vel);

 private:
  World(const geo::Grid& grid, const std::vector<ObjectState>& objects);

  // Rebuilds cell_start_/cell_items_ from the maintained cell_count_ with
  // a prefix sum plus one oid-order scatter pass, which yields the
  // canonical (cell, ascending oid) span order.
  void RebuildSpans();

  const geo::Grid* grid_;
  // Object state, structure-of-arrays, indexed by oid.
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> vx_;
  std::vector<double> vy_;
  std::vector<double> max_speed_;
  std::vector<double> attr_;
  // Each object's current cell, split by axis (fed to the boundary check
  // below without the modulo/divide a flat index would need).
  std::vector<int32_t> cell_i_;
  std::vector<int32_t> cell_j_;
  // Exact cell boundaries per column/row, with ±inf sentinels at the grid
  // edges: col_bound_[i] is the smallest double x with
  // (x - universe.lx) / alpha >= i, so "x in [col_bound_[i],
  // col_bound_[i+1])" is bit-equivalent to Grid::CellOf returning column i
  // (division by a positive constant is monotone in IEEE arithmetic, and
  // the sentinels reproduce CellOf's edge clamp). Step's hot loop tests
  // these four bounds instead of paying CellOf's two divisions per object.
  std::vector<double> col_bound_;
  std::vector<double> row_bound_;
  // CSR spatial index: cell_items_ holds all oids grouped by cell;
  // cell_start_ (size CellCount() + 1) delimits each cell's span.
  std::vector<uint32_t> cell_start_;
  std::vector<uint32_t> cell_items_;
  // Per-cell populations, maintained incrementally by the ctor, Step and
  // SetObjectState so RebuildSpans can prefix-sum without a counting pass;
  // scatter_cursor_ is RebuildSpans' write-cursor scratch (persistent to
  // avoid per-step allocation).
  std::vector<uint32_t> cell_count_;
  std::vector<uint32_t> scatter_cursor_;
  // Persistent identity permutation buffer for Step's partial Fisher-Yates
  // draw of velocity-changing objects (no per-step allocation, and distinct
  // picks cost O(velocity_changes) even when it approaches object_count).
  std::vector<ObjectId> velocity_pick_buffer_;
  Seconds now_ = 0.0;
  StepCount step_count_ = 0;
};

}  // namespace mobieyes::mobility

#endif  // MOBIEYES_MOBILITY_WORLD_H_
