#ifndef MOBIEYES_MOBILITY_WORLD_H_
#define MOBIEYES_MOBILITY_WORLD_H_

#include <cstdint>
#include <vector>

#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/object_state.h"

namespace mobieyes::mobility {

// Ground truth of the simulation: owns every object's true state, advances
// it by the §5.1 motion model, and maintains a grid-cell spatial index used
// both for broadcast delivery (which objects are under a base station) and
// for the exact-result oracle.
//
// The visitor methods take the callable as a template parameter so the
// per-object dispatch inlines; they sit on every mode's per-step hot path
// (broadcast delivery, oracle evaluation) where a std::function per object
// is measurable.
//
// ObjectIds are dense: objects are created with oid == index.
class World {
 public:
  // Takes ownership of initial object states. Objects must have dense ids
  // 0..n-1 and positions inside the grid universe.
  static Result<World> Make(const geo::Grid& grid,
                            std::vector<ObjectState> objects);

  const geo::Grid& grid() const { return *grid_; }
  size_t object_count() const { return objects_.size(); }
  const ObjectState& object(ObjectId oid) const {
    return objects_[static_cast<size_t>(oid)];
  }
  const std::vector<ObjectState>& objects() const { return objects_; }

  Seconds now() const { return now_; }
  StepCount step_count() const { return step_count_; }

  // Advances the simulation by dt: re-draws the velocity of
  // `velocity_changes` distinct random objects (the Table 1 `nmo`
  // parameter), then moves every object and refreshes the cell index.
  void Step(Seconds dt, int velocity_changes, Rng& rng);

  // Invokes fn for every object whose true position lies inside the circle.
  template <typename Visitor>
  void ForEachObjectInCircle(const geo::Circle& circle,
                             const Visitor& fn) const {
    geo::CellRange cells = grid_->CellsIntersecting(circle.BoundingRect());
    cells.ForEach([&](int32_t i, int32_t j) {
      for (ObjectId oid :
           cell_objects_[grid_->FlatIndex(geo::CellCoord{i, j})]) {
        if (circle.Contains(objects_[oid].pos)) fn(oid);
      }
    });
  }

  // Invokes fn for every object whose *current grid cell* intersects the
  // circle — a cell-granular alternative to ForEachObjectInCircle that
  // over-approximates a coverage area at grid resolution. Broadcast
  // delivery uses the exact point-in-circle rule; this variant exists for
  // cell-level analyses and tests.
  template <typename Visitor>
  void ForEachObjectUnderCoverage(const geo::Circle& circle,
                                  const Visitor& fn) const {
    geo::CellRange cells = grid_->CellsIntersecting(circle.BoundingRect());
    cells.ForEach([&](int32_t i, int32_t j) {
      geo::CellCoord c{i, j};
      if (!circle.Intersects(grid_->CellRect(c))) return;
      for (ObjectId oid : cell_objects_[grid_->FlatIndex(c)]) fn(oid);
    });
  }

  // Invokes fn for every object currently in grid cell c.
  template <typename Visitor>
  void ForEachObjectInCell(const geo::CellCoord& c, const Visitor& fn) const {
    if (!grid_->IsValid(c)) return;
    for (ObjectId oid : cell_objects_[grid_->FlatIndex(c)]) fn(oid);
  }

  // Test/setup hook: overwrite an object's kinematics and reindex it.
  void SetObjectState(ObjectId oid, const geo::Point& pos,
                      const geo::Vec2& vel);

 private:
  World(const geo::Grid& grid, std::vector<ObjectState> objects);

  // Moves the object into `new_cell`, maintaining the per-cell lists with a
  // swap-remove (O(1) via the object's slot index instead of a linear scan
  // of the source cell's population).
  void MigrateCell(ObjectState& object, const geo::CellCoord& new_cell);

  const geo::Grid* grid_;
  std::vector<ObjectState> objects_;
  // Per-cell object lists, row-major by flat cell index.
  std::vector<std::vector<ObjectId>> cell_objects_;
  // slot_in_cell_[oid] == position of oid inside its cell's list.
  std::vector<uint32_t> slot_in_cell_;
  // Persistent identity permutation buffer for Step's partial Fisher-Yates
  // draw of velocity-changing objects (no per-step allocation, and distinct
  // picks cost O(velocity_changes) even when it approaches object_count).
  std::vector<ObjectId> velocity_pick_buffer_;
  Seconds now_ = 0.0;
  StepCount step_count_ = 0;
};

}  // namespace mobieyes::mobility

#endif  // MOBIEYES_MOBILITY_WORLD_H_
