#ifndef MOBIEYES_MOBILITY_MOTION_MODEL_H_
#define MOBIEYES_MOBILITY_MOTION_MODEL_H_

#include "mobieyes/common/random.h"
#include "mobieyes/geo/rect.h"
#include "mobieyes/mobility/object_state.h"

namespace mobieyes::mobility {

// The movement model of §5.1: each time step a randomly chosen subset of
// objects re-draws a uniformly random direction and a speed uniform in
// [0, max_speed]; all other objects keep their velocity vector. Objects
// reflect off the universe border so they stay inside the UoD.
class RandomVelocityModel {
 public:
  // Assigns a fresh random normalized direction and speed to `object`.
  static void RandomizeVelocity(ObjectState& object, Rng& rng);

  // Advances the object's position by dt seconds, reflecting at the
  // universe border (velocity component flips on reflection).
  static void Advance(ObjectState& object, Seconds dt,
                      const geo::Rect& universe);
};

}  // namespace mobieyes::mobility

#endif  // MOBIEYES_MOBILITY_MOTION_MODEL_H_
