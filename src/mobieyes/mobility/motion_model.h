#ifndef MOBIEYES_MOBILITY_MOTION_MODEL_H_
#define MOBIEYES_MOBILITY_MOTION_MODEL_H_

#include <cmath>
#include <numbers>

#include "mobieyes/common/random.h"
#include "mobieyes/geo/rect.h"
#include "mobieyes/mobility/object_state.h"

namespace mobieyes::mobility {

// The movement model of §5.1: each time step a randomly chosen subset of
// objects re-draws a uniformly random direction and a speed uniform in
// [0, max_speed]; all other objects keep their velocity vector. Objects
// reflect off the universe border so they stay inside the UoD.
//
// The component-wise cores below are the single definition of the model's
// arithmetic. World::Step runs them over its structure-of-arrays state and
// the ObjectState entry points delegate to them, so both paths produce
// bit-identical positions and velocities (the AoS-vs-SoA equivalence test
// pins this).
class RandomVelocityModel {
 public:
  // The velocity redraw is split into an rng phase and an apply phase so
  // World::Step can software-pipeline its redraw loop: DrawPolar touches
  // only the rng (registers), ApplyPolar only memory, and the two can be
  // separated by several loop iterations without reordering the stream.
  //
  // Consumes exactly two rng values (angle, then unit speed). The unit
  // draw is bit-equivalent to the historical NextDouble(0, max_speed):
  // that computed 0 + (max_speed - 0) * NextDouble(), which is exactly
  // max_speed * NextDouble() for any non-negative product, so deferring
  // the multiply into ApplyPolar changes no bits.
  static void DrawPolar(Rng& rng, double& angle, double& unit_speed) {
    angle = rng.NextDouble(0.0, 2.0 * std::numbers::pi);
    unit_speed = rng.NextDouble();
  }

  // Converts a drawn (angle, unit speed) pair into velocity components.
  static void ApplyPolar(double max_speed, double angle, double unit_speed,
                         double& vx, double& vy) {
    const double speed = max_speed * unit_speed;
    vx = speed * std::cos(angle);
    vy = speed * std::sin(angle);
  }

  // Draws a fresh direction/speed pair. Consumes exactly two rng values
  // (angle, then speed) — callers rely on this draw order for determinism.
  static void DrawVelocity(double max_speed, Rng& rng, double& vx,
                           double& vy) {
    double angle;
    double unit_speed;
    DrawPolar(rng, angle, unit_speed);
    ApplyPolar(max_speed, angle, unit_speed, vx, vy);
  }

  // Advances one position by dt seconds, reflecting at the universe border
  // (the velocity component flips on reflection).
  static void AdvanceComponents(double& x, double& y, double& vx, double& vy,
                                Seconds dt, const geo::Rect& universe) {
    double px = x + vx * dt;
    double py = y + vy * dt;
    // Fast path: almost every advance stays inside the universe, and the
    // reflection loop below is a no-op for it. One combined (non-short-
    // circuit, hence single-branch) test keeps the common case free of the
    // loop's four compare-and-branch pairs.
    if (!(static_cast<int>(px < universe.lx) |
          static_cast<int>(px > universe.hx()) |
          static_cast<int>(py < universe.ly) |
          static_cast<int>(py > universe.hy()))) [[likely]] {
      x = px;
      y = py;
      return;
    }
    // Reflect at each border. Displacements per step are small relative to
    // the universe, but loop defensively for extreme parameterizations.
    for (int guard = 0; guard < 64; ++guard) {
      bool reflected = false;
      if (px < universe.lx) {
        px = 2 * universe.lx - px;
        vx = -vx;
        reflected = true;
      } else if (px > universe.hx()) {
        px = 2 * universe.hx() - px;
        vx = -vx;
        reflected = true;
      }
      if (py < universe.ly) {
        py = 2 * universe.ly - py;
        vy = -vy;
        reflected = true;
      } else if (py > universe.hy()) {
        py = 2 * universe.hy() - py;
        vy = -vy;
        reflected = true;
      }
      if (!reflected) break;
    }
    x = px;
    y = py;
  }

  // Assigns a fresh random normalized direction and speed to `object`.
  static void RandomizeVelocity(ObjectState& object, Rng& rng);

  // Advances the object's position by dt seconds, reflecting at the
  // universe border (velocity component flips on reflection).
  static void Advance(ObjectState& object, Seconds dt,
                      const geo::Rect& universe);
};

}  // namespace mobieyes::mobility

#endif  // MOBIEYES_MOBILITY_MOTION_MODEL_H_
