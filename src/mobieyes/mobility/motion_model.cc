#include "mobieyes/mobility/motion_model.h"

#include <cmath>
#include <numbers>

namespace mobieyes::mobility {

void RandomVelocityModel::RandomizeVelocity(ObjectState& object, Rng& rng) {
  double angle = rng.NextDouble(0.0, 2.0 * std::numbers::pi);
  double speed = rng.NextDouble(0.0, object.max_speed);
  object.vel = geo::Vec2{speed * std::cos(angle), speed * std::sin(angle)};
}

void RandomVelocityModel::Advance(ObjectState& object, Seconds dt,
                                  const geo::Rect& universe) {
  geo::Point p = object.pos + object.vel * dt;
  // Reflect at each border. Displacements per step are small relative to
  // the universe, but loop defensively for extreme parameterizations.
  for (int guard = 0; guard < 64; ++guard) {
    bool reflected = false;
    if (p.x < universe.lx) {
      p.x = 2 * universe.lx - p.x;
      object.vel.x = -object.vel.x;
      reflected = true;
    } else if (p.x > universe.hx()) {
      p.x = 2 * universe.hx() - p.x;
      object.vel.x = -object.vel.x;
      reflected = true;
    }
    if (p.y < universe.ly) {
      p.y = 2 * universe.ly - p.y;
      object.vel.y = -object.vel.y;
      reflected = true;
    } else if (p.y > universe.hy()) {
      p.y = 2 * universe.hy() - p.y;
      object.vel.y = -object.vel.y;
      reflected = true;
    }
    if (!reflected) break;
  }
  object.pos = p;
}

}  // namespace mobieyes::mobility
