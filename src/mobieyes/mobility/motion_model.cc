#include "mobieyes/mobility/motion_model.h"

namespace mobieyes::mobility {

void RandomVelocityModel::RandomizeVelocity(ObjectState& object, Rng& rng) {
  DrawVelocity(object.max_speed, rng, object.vel.x, object.vel.y);
}

void RandomVelocityModel::Advance(ObjectState& object, Seconds dt,
                                  const geo::Rect& universe) {
  AdvanceComponents(object.pos.x, object.pos.y, object.vel.x, object.vel.y,
                    dt, universe);
}

}  // namespace mobieyes::mobility
