#include "mobieyes/baseline/object_index.h"

namespace mobieyes::baseline {

namespace {

geo::Rect PointRect(const geo::Point& p) {
  return geo::Rect{p.x, p.y, 0.0, 0.0};
}

}  // namespace

ObjectIndexProcessor::ObjectIndexProcessor(
    std::vector<double> attrs, const std::vector<geo::Point>& initial_positions)
    : attrs_(std::move(attrs)), positions_(initial_positions) {
  for (size_t oid = 0; oid < positions_.size(); ++oid) {
    index_.Insert(PointRect(positions_[oid]), oid);
  }
}

void ObjectIndexProcessor::AddQuery(const CentralQuery& query) {
  queries_.push_back(query);
  results_[query.qid];
}

void ObjectIndexProcessor::OnPositionReport(ObjectId oid,
                                            const geo::Point& pos) {
  TimedSection timed(load_timer_);
  auto index = static_cast<size_t>(oid);
  // Delete + insert: the R*-tree has no in-place move.
  (void)index_.Update(PointRect(positions_[index]), PointRect(pos), oid);
  positions_[index] = pos;
}

void ObjectIndexProcessor::EvaluateAllQueries() {
  TimedSection timed(load_timer_);
  for (const CentralQuery& query : queries_) {
    geo::Circle region{positions_[static_cast<size_t>(query.focal_oid)],
                       query.radius};
    std::unordered_set<ObjectId>& result = results_[query.qid];
    result.clear();
    index_.VisitIntersects(
        region.BoundingRect(), [&](const geo::Rect& rect, uint64_t oid) {
          geo::Point pos{rect.lx, rect.ly};
          if (static_cast<ObjectId>(oid) != query.focal_oid &&
              region.Contains(pos) &&
              attrs_[oid] <= query.filter_threshold) {
            result.insert(static_cast<ObjectId>(oid));
          }
          return true;
        });
  }
}

const std::unordered_set<ObjectId>* ObjectIndexProcessor::QueryResult(
    QueryId qid) const {
  auto it = results_.find(qid);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace mobieyes::baseline
