#ifndef MOBIEYES_BASELINE_CENTRAL_MESSAGING_H_
#define MOBIEYES_BASELINE_CENTRAL_MESSAGING_H_

#include <vector>

#include "mobieyes/common/units.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"

namespace mobieyes::baseline {

// The "naive" centralized reporting scheme (paper §5.3): every object whose
// position changed sends its position to the server each time step.
class NaiveTracker {
 public:
  NaiveTracker(const mobility::World& world, net::WirelessNetwork& network)
      : world_(&world), network_(&network) {}

  // Run once per time step after the world advanced.
  void OnTick();

 private:
  const mobility::World* world_;
  net::WirelessNetwork* network_;
};

// The "central optimal" reporting scheme (paper §5.3): every object applies
// dead reckoning against the velocity vector it last relayed and reports a
// new vector only when its true position drifts more than Δ from the
// prediction — the minimum information a centralized approach needs without
// trajectory assumptions.
class CentralOptimalTracker {
 public:
  CentralOptimalTracker(const mobility::World& world,
                        net::WirelessNetwork& network,
                        Miles dead_reckoning_threshold);

  // Run once per time step after the world advanced.
  void OnTick();

 private:
  const mobility::World* world_;
  net::WirelessNetwork* network_;
  Miles threshold_;
  std::vector<net::FocalState> last_relayed_;  // per object
};

}  // namespace mobieyes::baseline

#endif  // MOBIEYES_BASELINE_CENTRAL_MESSAGING_H_
