#ifndef MOBIEYES_BASELINE_OBJECT_INDEX_H_
#define MOBIEYES_BASELINE_OBJECT_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/stopwatch.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/point.h"
#include "mobieyes/rtree/rstar_tree.h"

namespace mobieyes::baseline {

// A continuous query as seen by the centralized baselines: the spatial
// region is a circle of `radius` around the focal object's last reported
// position, filtered on target-object properties.
struct CentralQuery {
  QueryId qid = kInvalidQueryId;
  ObjectId focal_oid = kInvalidObjectId;
  Miles radius = 0.0;
  double filter_threshold = 1.0;
};

// Centralized "indexing objects" baseline (paper §5.2): an R*-tree is built
// over object positions and updated as position reports arrive; every time
// step all queries are evaluated against the index from scratch. The main
// cost is the high index update rate.
class ObjectIndexProcessor {
 public:
  // `attrs[oid]` is the filter property of each object; `initial_positions`
  // seeds the index. Queries may be added later via AddQuery.
  ObjectIndexProcessor(std::vector<double> attrs,
                       const std::vector<geo::Point>& initial_positions);

  void AddQuery(const CentralQuery& query);

  // Handles one position report: updates the spatial index.
  void OnPositionReport(ObjectId oid, const geo::Point& pos);

  // Periodic evaluation of all queries against the object index.
  void EvaluateAllQueries();

  const std::unordered_set<ObjectId>* QueryResult(QueryId qid) const;

  // Accumulated server-side processing time ("server load").
  double load_seconds() const { return load_timer_.total_seconds(); }
  void ResetLoadTimer() { load_timer_.Reset(); }

  const rtree::RStarTree& index() const { return index_; }

 private:
  std::vector<double> attrs_;
  std::vector<geo::Point> positions_;  // last reported position per object
  rtree::RStarTree index_;             // point rectangles keyed by oid
  std::vector<CentralQuery> queries_;
  std::unordered_map<QueryId, std::unordered_set<ObjectId>> results_;
  ReentrantTimer load_timer_;
};

}  // namespace mobieyes::baseline

#endif  // MOBIEYES_BASELINE_OBJECT_INDEX_H_
