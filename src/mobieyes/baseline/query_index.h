#ifndef MOBIEYES_BASELINE_QUERY_INDEX_H_
#define MOBIEYES_BASELINE_QUERY_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobieyes/baseline/object_index.h"
#include "mobieyes/common/stopwatch.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/rtree/rstar_tree.h"

namespace mobieyes::baseline {

// Centralized "indexing queries" baseline (paper §5.2): an R*-tree is built
// over the queries' spatial regions (bounding boxes of the circles around
// each focal object's last reported position). Arriving object positions
// are run through the query index and results are updated differentially;
// the main cost is updating the index when focal objects move.
class QueryIndexProcessor {
 public:
  QueryIndexProcessor(std::vector<double> attrs,
                      const std::vector<geo::Point>& initial_positions);

  void AddQuery(const CentralQuery& query);

  // Handles one position report: moves the regions of queries bound to this
  // object (if it is focal) and differentially updates the results this
  // object contributes to.
  void OnPositionReport(ObjectId oid, const geo::Point& pos);

  const std::unordered_set<ObjectId>* QueryResult(QueryId qid) const;

  double load_seconds() const { return load_timer_.total_seconds(); }
  void ResetLoadTimer() { load_timer_.Reset(); }

  const rtree::RStarTree& index() const { return index_; }

 private:
  geo::Circle RegionOf(const CentralQuery& query) const;

  std::vector<double> attrs_;
  std::vector<geo::Point> positions_;
  rtree::RStarTree index_;  // query circle bounding boxes keyed by qid
  std::unordered_map<QueryId, CentralQuery> queries_;
  // Queries bound to a given focal object.
  std::unordered_map<ObjectId, std::vector<QueryId>> focal_queries_;
  std::unordered_map<QueryId, std::unordered_set<ObjectId>> results_;
  // Queries currently counting each object as a target (for differential
  // maintenance).
  std::unordered_map<ObjectId, std::unordered_set<QueryId>> memberships_;
  ReentrantTimer load_timer_;
};

}  // namespace mobieyes::baseline

#endif  // MOBIEYES_BASELINE_QUERY_INDEX_H_
