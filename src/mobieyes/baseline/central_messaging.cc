#include "mobieyes/baseline/central_messaging.h"

namespace mobieyes::baseline {

void NaiveTracker::OnTick() {
  const size_t n = world_->object_count();
  for (size_t k = 0; k < n; ++k) {
    const auto oid = static_cast<ObjectId>(k);
    const geo::Vec2 vel = world_->velocity(oid);
    // Position changed iff the object moved during the last step.
    if (vel.x != 0.0 || vel.y != 0.0) {
      network_->SendUplink(oid, net::MakeMessage(net::PositionReport{
                                    oid, world_->position(oid)}));
    }
  }
}

CentralOptimalTracker::CentralOptimalTracker(const mobility::World& world,
                                             net::WirelessNetwork& network,
                                             Miles dead_reckoning_threshold)
    : world_(&world),
      network_(&network),
      threshold_(dead_reckoning_threshold) {
  last_relayed_.reserve(world.object_count());
  for (size_t k = 0; k < world.object_count(); ++k) {
    const auto oid = static_cast<ObjectId>(k);
    last_relayed_.push_back(net::FocalState{world.position(oid),
                                            world.velocity(oid), world.now()});
  }
}

void CentralOptimalTracker::OnTick() {
  Seconds now = world_->now();
  const size_t n = world_->object_count();
  for (size_t k = 0; k < n; ++k) {
    const auto oid = static_cast<ObjectId>(k);
    const geo::Point pos = world_->position(oid);
    net::FocalState& relayed = last_relayed_[oid];
    geo::Point predicted = relayed.PredictPosition(now);
    if (geo::Distance(pos, predicted) > threshold_) {
      relayed = net::FocalState{pos, world_->velocity(oid), now};
      network_->SendUplink(oid, net::MakeMessage(net::VelocityChangeReport{
                                    oid, relayed}));
    }
  }
}

}  // namespace mobieyes::baseline
