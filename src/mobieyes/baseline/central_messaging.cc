#include "mobieyes/baseline/central_messaging.h"

namespace mobieyes::baseline {

void NaiveTracker::OnTick() {
  for (const auto& object : world_->objects()) {
    // Position changed iff the object moved during the last step.
    if (object.vel.x != 0.0 || object.vel.y != 0.0) {
      network_->SendUplink(object.oid,
                           net::MakeMessage(net::PositionReport{
                               object.oid, object.pos}));
    }
  }
}

CentralOptimalTracker::CentralOptimalTracker(const mobility::World& world,
                                             net::WirelessNetwork& network,
                                             Miles dead_reckoning_threshold)
    : world_(&world),
      network_(&network),
      threshold_(dead_reckoning_threshold) {
  last_relayed_.reserve(world.object_count());
  for (const auto& object : world.objects()) {
    last_relayed_.push_back(
        net::FocalState{object.pos, object.vel, world.now()});
  }
}

void CentralOptimalTracker::OnTick() {
  Seconds now = world_->now();
  for (const auto& object : world_->objects()) {
    net::FocalState& relayed = last_relayed_[object.oid];
    geo::Point predicted = relayed.PredictPosition(now);
    if (geo::Distance(object.pos, predicted) > threshold_) {
      relayed = net::FocalState{object.pos, object.vel, now};
      network_->SendUplink(object.oid,
                           net::MakeMessage(net::VelocityChangeReport{
                               object.oid, relayed}));
    }
  }
}

}  // namespace mobieyes::baseline
