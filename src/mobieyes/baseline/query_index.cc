#include "mobieyes/baseline/query_index.h"

namespace mobieyes::baseline {

QueryIndexProcessor::QueryIndexProcessor(
    std::vector<double> attrs, const std::vector<geo::Point>& initial_positions)
    : attrs_(std::move(attrs)), positions_(initial_positions) {}

geo::Circle QueryIndexProcessor::RegionOf(const CentralQuery& query) const {
  return geo::Circle{positions_[static_cast<size_t>(query.focal_oid)],
                     query.radius};
}

void QueryIndexProcessor::AddQuery(const CentralQuery& query) {
  queries_[query.qid] = query;
  focal_queries_[query.focal_oid].push_back(query.qid);
  results_[query.qid];
  index_.Insert(RegionOf(query).BoundingRect(), query.qid);
}

void QueryIndexProcessor::OnPositionReport(ObjectId oid,
                                           const geo::Point& pos) {
  TimedSection timed(load_timer_);
  auto object_index = static_cast<size_t>(oid);
  geo::Point old_pos = positions_[object_index];

  // 1. If this object is a focal object, move its queries' index regions.
  auto focal_it = focal_queries_.find(oid);
  if (focal_it != focal_queries_.end()) {
    for (QueryId qid : focal_it->second) {
      const CentralQuery& query = queries_.at(qid);
      geo::Rect old_rect =
          geo::Circle{old_pos, query.radius}.BoundingRect();
      geo::Rect new_rect = geo::Circle{pos, query.radius}.BoundingRect();
      (void)index_.Update(old_rect, new_rect, qid);
    }
  }
  positions_[object_index] = pos;

  // 2. Differential result maintenance: queries this object now contributes
  // to, against the ones it contributed to before.
  std::unordered_set<QueryId>& member_of = memberships_[oid];
  std::unordered_set<QueryId> now_in;
  index_.VisitIntersects(
      geo::Rect{pos.x, pos.y, 0.0, 0.0},
      [&](const geo::Rect&, uint64_t raw_qid) {
        auto qid = static_cast<QueryId>(raw_qid);
        const CentralQuery& query = queries_.at(qid);
        if (query.focal_oid != oid && RegionOf(query).Contains(pos) &&
            attrs_[object_index] <= query.filter_threshold) {
          now_in.insert(qid);
        }
        return true;
      });
  for (QueryId qid : member_of) {
    if (!now_in.contains(qid)) results_[qid].erase(oid);
  }
  for (QueryId qid : now_in) {
    if (!member_of.contains(qid)) results_[qid].insert(oid);
  }
  member_of = std::move(now_in);
}

const std::unordered_set<ObjectId>* QueryIndexProcessor::QueryResult(
    QueryId qid) const {
  auto it = results_.find(qid);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace mobieyes::baseline
