#include "mobieyes/sim/oracle.h"

#include "mobieyes/geo/circle.h"

namespace mobieyes::sim {

std::unordered_set<ObjectId> ExactOracle::Evaluate(
    ObjectId focal_oid, Miles radius, double filter_threshold) const {
  return Evaluate(focal_oid, geo::QueryRegion::MakeCircle(radius),
                  filter_threshold);
}

std::unordered_set<ObjectId> ExactOracle::Evaluate(
    ObjectId focal_oid, const geo::QueryRegion& region,
    double filter_threshold) const {
  std::unordered_set<ObjectId> result;
  const mobility::ObjectState& focal = world_->object(focal_oid);
  // Scan the circumscribing circle and refine with the exact shape test.
  geo::Circle scan{focal.pos, region.MaxReach()};
  world_->ForEachObjectInCircle(scan, [&](ObjectId oid) {
    if (oid != focal_oid && world_->object(oid).attr <= filter_threshold &&
        region.Contains(focal.pos, world_->object(oid).pos)) {
      result.insert(oid);
    }
  });
  return result;
}

double ExactOracle::MissingFraction(
    const std::unordered_set<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  if (exact.empty()) return 0.0;
  size_t missing = 0;
  for (ObjectId oid : exact) {
    if (!reported.contains(oid)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(exact.size());
}

}  // namespace mobieyes::sim
