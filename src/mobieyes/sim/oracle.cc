#include "mobieyes/sim/oracle.h"

#include "mobieyes/geo/batch_kernels.h"
#include "mobieyes/geo/circle.h"

namespace mobieyes::sim {
namespace {

// Runs the shape-appropriate span kernel, appending matches to *out.
void CollectSpan(const uint32_t* ids, size_t count, const double* xs,
                 const double* ys, const double* attrs, double cx, double cy,
                 double scan_r2, const geo::QueryRegion& region,
                 double filter_threshold, uint32_t focal_oid,
                 std::vector<ObjectId>* out) {
  const size_t base = out->size();
  out->resize(base + count);
  ObjectId* dst = out->data() + base;
  size_t m;
  if (region.shape == geo::QueryRegion::Shape::kCircle) {
    m = geo::kernels::CollectQueryCircle(ids, count, xs, ys, attrs, cx, cy,
                                         scan_r2, filter_threshold, focal_oid,
                                         dst);
  } else {
    m = geo::kernels::CollectQueryRect(ids, count, xs, ys, attrs, cx, cy,
                                       scan_r2, region.half_w, region.half_h,
                                       filter_threshold, focal_oid, dst);
  }
  out->resize(base + m);
}

}  // namespace

std::unordered_set<ObjectId> ExactOracle::Evaluate(
    ObjectId focal_oid, Miles radius, double filter_threshold) const {
  return Evaluate(focal_oid, geo::QueryRegion::MakeCircle(radius),
                  filter_threshold);
}

std::unordered_set<ObjectId> ExactOracle::Evaluate(
    ObjectId focal_oid, const geo::QueryRegion& region,
    double filter_threshold) const {
  std::vector<ObjectId> matches;
  EvaluateInto(focal_oid, region, filter_threshold, &matches);
  return std::unordered_set<ObjectId>(matches.begin(), matches.end());
}

void ExactOracle::EvaluateInto(ObjectId focal_oid,
                               const geo::QueryRegion& region,
                               double filter_threshold,
                               std::vector<ObjectId>* out) const {
  out->clear();
  const geo::Point focal = world_->position(focal_oid);
  // Scan the circumscribing circle and refine with the exact shape test,
  // one batched kernel call per contiguous row span.
  const geo::Circle scan{focal, region.MaxReach()};
  const geo::CellRange cells =
      world_->grid().CellsIntersecting(scan.BoundingRect());
  const double scan_r2 = scan.radius * scan.radius;
  const double* xs = world_->xs();
  const double* ys = world_->ys();
  const double* attrs = world_->attrs();
  const auto focal32 = static_cast<uint32_t>(focal_oid);
  world_->ForEachRowSpan(cells, [&](const uint32_t* ids, size_t count) {
    CollectSpan(ids, count, xs, ys, attrs, focal.x, focal.y, scan_r2, region,
                filter_threshold, focal32, out);
  });
}

void ExactOracle::EvaluateAllInto(
    const std::vector<BatchQuery>& queries,
    std::vector<std::vector<ObjectId>>* results) {
  const size_t nq = queries.size();
  const geo::Grid& grid = world_->grid();
  const auto cells = static_cast<size_t>(grid.CellCount());
  const int64_t columns = grid.columns();
  results->resize(nq);
  batch_cx_.resize(nq);
  batch_cy_.resize(nq);
  batch_scan_r2_.resize(nq);
  batch_range_.resize(nq);
  cell_query_start_.assign(cells + 1, 0);
  cell_query_cursor_.resize(cells);

  // Pass 1: derive each query's scan parameters and count, per cell, how
  // many queries touch it.
  for (size_t q = 0; q < nq; ++q) {
    (*results)[q].clear();
    const geo::Point focal = world_->position(queries[q].focal_oid);
    const geo::Circle scan{focal, queries[q].region.MaxReach()};
    batch_cx_[q] = focal.x;
    batch_cy_[q] = focal.y;
    batch_scan_r2_[q] = scan.radius * scan.radius;
    batch_range_[q] = grid.CellsIntersecting(scan.BoundingRect());
    batch_range_[q].ForEach([&](int32_t i, int32_t j) {
      ++cell_query_start_[static_cast<int64_t>(j) * columns + i + 1];
    });
  }
  for (size_t c = 0; c < cells; ++c) {
    cell_query_start_[c + 1] += cell_query_start_[c];
    cell_query_cursor_[c] = cell_query_start_[c];
  }
  cell_query_items_.resize(cell_query_start_[cells]);
  // Pass 2: scatter the cell -> query adjacency in ascending query order.
  for (size_t q = 0; q < nq; ++q) {
    batch_range_[q].ForEach([&](int32_t i, int32_t j) {
      cell_query_items_[cell_query_cursor_[static_cast<int64_t>(j) * columns +
                                           i]++] = static_cast<uint32_t>(q);
    });
  }

  // Pass 3: stream each populated cell's object span once, evaluating it
  // against every query whose scan area includes the cell. Flat cell
  // indices ascend, so each query's result accumulates in the same order a
  // per-query row scan would produce.
  const std::vector<uint32_t>& span_offsets = world_->cell_span_offsets();
  const std::vector<uint32_t>& span_items = world_->cell_span_items();
  const double* xs = world_->xs();
  const double* ys = world_->ys();
  const double* attrs = world_->attrs();
  for (size_t c = 0; c < cells; ++c) {
    const uint32_t span_begin = span_offsets[c];
    const uint32_t span_end = span_offsets[c + 1];
    if (span_begin == span_end) continue;
    const uint32_t* ids = &span_items[span_begin];
    const size_t count = span_end - span_begin;
    for (uint32_t a = cell_query_start_[c]; a < cell_query_start_[c + 1];
         ++a) {
      const uint32_t q = cell_query_items_[a];
      CollectSpan(ids, count, xs, ys, attrs, batch_cx_[q], batch_cy_[q],
                  batch_scan_r2_[q], queries[q].region,
                  queries[q].filter_threshold,
                  static_cast<uint32_t>(queries[q].focal_oid),
                  &(*results)[q]);
    }
  }
}

double ExactOracle::MissingFraction(
    const std::unordered_set<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  if (exact.empty()) return 0.0;
  size_t missing = 0;
  for (ObjectId oid : exact) {
    if (!reported.contains(oid)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(exact.size());
}

double ExactOracle::MissingFraction(
    const std::vector<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  if (exact.empty()) return 0.0;
  size_t missing = 0;
  for (ObjectId oid : exact) {
    if (!reported.contains(oid)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(exact.size());
}

ExactOracle::AccuracyStats ExactOracle::Compare(
    const std::vector<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  size_t intersection = 0;
  for (ObjectId oid : exact) {
    if (reported.contains(oid)) ++intersection;
  }
  AccuracyStats stats;
  if (!exact.empty()) {
    stats.missing = static_cast<double>(exact.size() - intersection) /
                    static_cast<double>(exact.size());
  }
  if (!reported.empty()) {
    stats.spurious = static_cast<double>(reported.size() - intersection) /
                     static_cast<double>(reported.size());
  }
  size_t unioned = exact.size() + reported.size() - intersection;
  stats.agreement = unioned == 0
                        ? 1.0
                        : static_cast<double>(intersection) /
                              static_cast<double>(unioned);
  return stats;
}

}  // namespace mobieyes::sim
