#include "mobieyes/sim/oracle.h"

#include "mobieyes/geo/circle.h"

namespace mobieyes::sim {

std::unordered_set<ObjectId> ExactOracle::Evaluate(
    ObjectId focal_oid, Miles radius, double filter_threshold) const {
  return Evaluate(focal_oid, geo::QueryRegion::MakeCircle(radius),
                  filter_threshold);
}

std::unordered_set<ObjectId> ExactOracle::Evaluate(
    ObjectId focal_oid, const geo::QueryRegion& region,
    double filter_threshold) const {
  std::vector<ObjectId> matches;
  EvaluateInto(focal_oid, region, filter_threshold, &matches);
  return std::unordered_set<ObjectId>(matches.begin(), matches.end());
}

void ExactOracle::EvaluateInto(ObjectId focal_oid,
                               const geo::QueryRegion& region,
                               double filter_threshold,
                               std::vector<ObjectId>* out) const {
  out->clear();
  const mobility::ObjectState& focal = world_->object(focal_oid);
  // Scan the circumscribing circle and refine with the exact shape test.
  geo::Circle scan{focal.pos, region.MaxReach()};
  world_->ForEachObjectInCircle(scan, [&](ObjectId oid) {
    if (oid != focal_oid && world_->object(oid).attr <= filter_threshold &&
        region.Contains(focal.pos, world_->object(oid).pos)) {
      out->push_back(oid);
    }
  });
}

double ExactOracle::MissingFraction(
    const std::unordered_set<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  if (exact.empty()) return 0.0;
  size_t missing = 0;
  for (ObjectId oid : exact) {
    if (!reported.contains(oid)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(exact.size());
}

double ExactOracle::MissingFraction(
    const std::vector<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  if (exact.empty()) return 0.0;
  size_t missing = 0;
  for (ObjectId oid : exact) {
    if (!reported.contains(oid)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(exact.size());
}

ExactOracle::AccuracyStats ExactOracle::Compare(
    const std::vector<ObjectId>& exact,
    const std::unordered_set<ObjectId>& reported) {
  size_t intersection = 0;
  for (ObjectId oid : exact) {
    if (reported.contains(oid)) ++intersection;
  }
  AccuracyStats stats;
  if (!exact.empty()) {
    stats.missing = static_cast<double>(exact.size() - intersection) /
                    static_cast<double>(exact.size());
  }
  if (!reported.empty()) {
    stats.spurious = static_cast<double>(reported.size() - intersection) /
                     static_cast<double>(reported.size());
  }
  size_t unioned = exact.size() + reported.size() - intersection;
  stats.agreement = unioned == 0
                        ? 1.0
                        : static_cast<double>(intersection) /
                              static_cast<double>(unioned);
  return stats;
}

}  // namespace mobieyes::sim
