#include "mobieyes/sim/simulation.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace mobieyes::sim {

const char* SimModeName(SimMode mode) {
  switch (mode) {
    case SimMode::kMobiEyesEager:
      return "MobiEyes-EQP";
    case SimMode::kMobiEyesLazy:
      return "MobiEyes-LQP";
    case SimMode::kObjectIndex:
      return "ObjectIndex";
    case SimMode::kQueryIndex:
      return "QueryIndex";
    case SimMode::kNaive:
      return "Naive";
    case SimMode::kCentralOptimal:
      return "CentralOptimal";
  }
  return "Unknown";
}

namespace {

bool IsMobiEyesMode(SimMode mode) {
  return mode == SimMode::kMobiEyesEager || mode == SimMode::kMobiEyesLazy;
}

}  // namespace

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)), rng_(config_.params.seed) {}

Result<std::unique_ptr<Simulation>> Simulation::Make(SimulationConfig config) {
  MOBIEYES_RETURN_NOT_OK(config.params.Validate());
  auto simulation = std::unique_ptr<Simulation>(new Simulation(config));
  MOBIEYES_RETURN_NOT_OK(simulation->Setup());
  return simulation;
}

Status Simulation::Setup() {
  const SimulationParams& params = config_.params;

  SetupObservability();

  auto grid = geo::Grid::Make(params.universe(), params.alpha);
  MOBIEYES_RETURN_NOT_OK(grid.status());
  grid_ = std::make_unique<geo::Grid>(std::move(grid).value());
  if (config_.obs.enable_heatmap) {
    // Deferred from SetupObservability: the raster needs the grid extents.
    heatmap_ =
        std::make_unique<obs::HeatMap>(grid_->rows(), grid_->columns());
  }

  Workload workload = GenerateWorkload(params, rng_);
  query_specs_ = workload.queries;

  auto world = mobility::World::Make(*grid_, std::move(workload.objects));
  MOBIEYES_RETURN_NOT_OK(world.status());
  world_ = std::make_unique<mobility::World>(std::move(world).value());
  oracle_ = std::make_unique<ExactOracle>(*world_);

  if (config_.faults.active()) {
    auto faulty = std::make_unique<net::FaultyNetwork>(config_.faults);
    faulty_ = faulty.get();
    network_ = std::move(faulty);
  } else {
    network_ = std::make_unique<net::WirelessNetwork>();
  }
  network_->set_track_per_object_bytes(config_.track_per_object_bytes);
  if (registry_) network_->AttachMetrics(registry_.get());
  if (lifecycle_) network_->set_lifecycle(lifecycle_.get());
  network_->set_coverage_query(
      [this](const geo::Circle& circle,
             const std::function<void(ObjectId)>& fn) {
        world_->ForEachObjectInCircle(circle, fn);
      });

  if (IsMobiEyesMode(config_.mode)) {
    auto layout =
        net::BaseStationLayout::Make(params.universe(),
                                     params.base_station_side);
    MOBIEYES_RETURN_NOT_OK(layout.status());
    layout_ =
        std::make_unique<net::BaseStationLayout>(std::move(layout).value());
    auto bmap = net::Bmap::Make(*grid_, *layout_);
    MOBIEYES_RETURN_NOT_OK(bmap.status());
    bmap_ = std::make_unique<net::Bmap>(std::move(bmap).value());

    core::MobiEyesOptions options = config_.mobieyes;
    options.propagation = config_.mode == SimMode::kMobiEyesLazy
                              ? core::PropagationMode::kLazy
                              : core::PropagationMode::kEager;
    options.dead_reckoning_threshold = params.dead_reckoning_threshold;

    resolved_mobieyes_ = options;
    server_ = std::make_unique<core::MobiEyesServer>(*grid_, *layout_, *bmap_,
                                                     *network_, options);
    server_->set_trace_recorder(trace_.get());
    if (heatmap_) {
      server_->EnableHeatmaps(grid_->rows(), grid_->columns());
    }
    if (lifecycle_) server_->set_lifecycle(lifecycle_.get());
    if (config_.shard_threads > 1 && server_->num_shards() > 1) {
      shard_pool_ = std::make_unique<ThreadPool>(config_.shard_threads);
      server_->set_thread_pool(shard_pool_.get());
    }
    network_->set_server_handler(
        [this](ObjectId from, const net::Message& message) {
          // server_ is null while the process is crashed; the fault layer
          // swallows uplinks then, so this guard is only a backstop.
          if (server_) server_->OnUplink(from, message);
        });

    clients_.reserve(world_->object_count());
    for (size_t oid = 0; oid < world_->object_count(); ++oid) {
      clients_.push_back(std::make_unique<core::MobiEyesClient>(
          *world_, static_cast<ObjectId>(oid), *network_, options));
      core::MobiEyesClient* client = clients_.back().get();
      client->set_trace_recorder(trace_.get());
      if (lifecycle_) client->set_lifecycle(lifecycle_.get());
      network_->RegisterClient(
          static_cast<ObjectId>(oid),
          [client](const net::Message& message) {
            client->OnDownlink(message);
          });
    }

    for (const QuerySpec& spec : query_specs_) {
      auto qid = server_->InstallQuery(spec.focal_oid, spec.region,
                                       spec.filter_threshold);
      MOBIEYES_RETURN_NOT_OK(qid.status());
      installed_qids_.push_back(*qid);
    }

    // Durable storage: attach the store and take the baseline checkpoint
    // before any (possibly faulted) traffic, so a crash always has an image
    // to restore from even at stride 0.
    if (config_.checkpoint_stride > 0 ||
        config_.faults.server_crash_step >= 0) {
      snapshot_store_.wal_limit = config_.wal_limit;
      server_->set_durable_store(&snapshot_store_);
      server_->Checkpoint();
    }

    // Process transport: spawn one daemon per shard and complete the
    // config+sync handshake before any traffic. Attached after the install
    // storm above, so the initial sync images already hold every query —
    // the replicas start exactly where the authoritative shards are.
    if (config_.shard_transport ==
            SimulationConfig::ShardTransport::kProcess &&
        server_->num_shards() > 1) {
      core::SupervisorOptions opts = config_.supervisor;
      if (opts.seed == 1) opts.seed = params.seed;
      opts.authority = config_.shard_authority;
      opts.fault = config_.backplane_fault;
      if (opts.fault.seed == 1) opts.fault.seed = params.seed;
      supervisor_ = std::make_unique<core::ShardSupervisor>(opts);
      if (lifecycle_) supervisor_->set_lifecycle(lifecycle_.get());
      supervisor_->AttachRouter(&server_->router());
      MOBIEYES_RETURN_NOT_OK(supervisor_->Start());
    }
  } else {
    std::vector<double> attrs;
    std::vector<geo::Point> positions;
    attrs.reserve(world_->object_count());
    positions.reserve(world_->object_count());
    for (size_t oid = 0; oid < world_->object_count(); ++oid) {
      attrs.push_back(world_->attr(static_cast<ObjectId>(oid)));
      positions.push_back(world_->position(static_cast<ObjectId>(oid)));
    }

    switch (config_.mode) {
      case SimMode::kObjectIndex:
        object_index_ = std::make_unique<baseline::ObjectIndexProcessor>(
            attrs, positions);
        network_->set_server_handler(
            [this](ObjectId from, const net::Message& message) {
              if (message.type == net::MessageType::kPositionReport) {
                const auto& report =
                    std::get<net::PositionReport>(message.payload);
                object_index_->OnPositionReport(from, report.pos);
              }
            });
        naive_ = std::make_unique<baseline::NaiveTracker>(*world_, *network_);
        break;
      case SimMode::kQueryIndex:
        query_index_ = std::make_unique<baseline::QueryIndexProcessor>(
            attrs, positions);
        network_->set_server_handler(
            [this](ObjectId from, const net::Message& message) {
              if (message.type == net::MessageType::kPositionReport) {
                const auto& report =
                    std::get<net::PositionReport>(message.payload);
                query_index_->OnPositionReport(from, report.pos);
              }
            });
        naive_ = std::make_unique<baseline::NaiveTracker>(*world_, *network_);
        break;
      case SimMode::kNaive:
        naive_ = std::make_unique<baseline::NaiveTracker>(*world_, *network_);
        break;
      case SimMode::kCentralOptimal:
        central_optimal_ = std::make_unique<baseline::CentralOptimalTracker>(
            *world_, *network_, params.dead_reckoning_threshold);
        break;
      default:
        return Status::Internal("unhandled simulation mode");
    }

    for (size_t k = 0; k < query_specs_.size(); ++k) {
      const QuerySpec& spec = query_specs_[k];
      if (spec.region.shape != geo::QueryRegion::Shape::kCircle) {
        return Status::InvalidArgument(
            "centralized baseline modes support circular queries only");
      }
      baseline::CentralQuery query{static_cast<QueryId>(k), spec.focal_oid,
                                   spec.region.radius,
                                   spec.filter_threshold};
      if (object_index_) object_index_->AddQuery(query);
      if (query_index_) query_index_->AddQuery(query);
      installed_qids_.push_back(query.qid);
    }
  }

  for (int k = 0; k < config_.warmup_steps; ++k) {
    StepOnce();
  }
  ResetMeasurement();
  return Status::OK();
}

void Simulation::SetupObservability() {
  const ObservabilityOptions& obs = config_.obs;
  if (obs.enable_metrics) {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    lqt_hist_ = registry_->GetHistogram(
        "client.lqt_size", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
    server_step_us_hist_ = registry_->GetHistogram(
        "server.step_micros", obs::ExponentialBounds(1.0, 4.0, 12),
        /*timing=*/true);
    client_step_us_hist_ = registry_->GetHistogram(
        "client.step_micros", obs::ExponentialBounds(1.0, 4.0, 12),
        /*timing=*/true);
  }
  if (obs.enable_trace) {
    trace_ = std::make_unique<obs::TraceRecorder>();
  }
  if (obs.enable_lifecycle) {
    lifecycle_ = std::make_unique<obs::LifecycleTracker>();
  }
  // enable_heatmap is handled in Setup once the grid exists.
  if (obs.sample_stride > 0) {
    sampler_ = std::make_unique<obs::StepSampler>(
        std::vector<obs::StepSampler::Column>{
            {"uplink_msgs", false},
            {"downlink_msgs", false},
            {"broadcast_msgs", false},
            {"installs", false},
            {"lqt_size", false},
            {"safe_period_skips", false},
            {"server_us", true},
            {"client_us", true},
        },
        obs.sample_stride, obs.sample_capacity);
  }
}

void Simulation::ResetMeasurement() {
  metrics_ = RunMetrics{};
  metrics_.objects = static_cast<int64_t>(world_->object_count());
  network_->ResetStats();
  if (server_) server_->ResetLoadTimer();
  for (auto& client : clients_) client->ResetCounters();
  if (object_index_) object_index_->ResetLoadTimer();
  if (query_index_) query_index_->ResetLoadTimer();
  // Metrics cover the measured window, like RunMetrics; the trace is *not*
  // cleared — setup and warmup transients (EQP install storms) are exactly
  // what it exists to show.
  if (registry_) registry_->Reset();
  if (sampler_) sampler_->Clear();
  if (heatmap_) {
    heatmap_->Reset();
    heatmap_pending_steps_ = 0;
    // Setup/warmup charges still sitting unmerged in the per-shard windows
    // must not bleed into the first measured window.
    if (server_) {
      for (int s = 0; s < server_->num_shards(); ++s) {
        if (obs::HeatMap* shard_map = server_->shard_heatmap(s)) {
          shard_map->Reset();
        }
      }
    }
  }
  if (lifecycle_) lifecycle_->Reset();
  cursor_ = StepCursor{};
}

void Simulation::Run(int steps) {
  const bool observing = registry_ != nullptr || sampler_ != nullptr;
  for (int k = 0; k < steps; ++k) {
    // The lifecycle clock ticks on measured steps (0-based): a round
    // stamped and resolved within one step has latency 0.
    if (lifecycle_) lifecycle_->set_step(metrics_.steps);
    StepOnce();
    ++metrics_.steps;
    metrics_.simulated_seconds += config_.params.time_step;
    if (IsMobiEyesMode(config_.mode)) {
      for (const auto& client : clients_) {
        metrics_.lqt_size_sum += client->lqt_size();
      }
    }
    if (config_.measure_error) {
      ExactOracle::AccuracyStats accuracy = CurrentAccuracy();
      metrics_.error_sum += accuracy.missing;
      metrics_.spurious_sum += accuracy.spurious;
      metrics_.agreement_sum += accuracy.agreement;
      ++metrics_.error_samples;
      // Reconvergence after a crash: the first step where the reported
      // results agree with the oracle again closes the open round.
      if (lifecycle_ && accuracy.agreement >= 0.95) {
        lifecycle_->ResolveIfPending(obs::LifecycleTracker::kCrashReconverge,
                                     0);
      }
    }
    if (heatmap_) RecordHeatmap(metrics_.steps - 1);
    if (observing) RecordStepObservations(metrics_.steps - 1);
  }
}

void Simulation::RecordHeatmap(int64_t step) {
  // Fixed shard order 0..N-1: integer window counters make the merged map
  // identical for any partition of the same charges.
  if (server_) {
    for (int s = 0; s < server_->num_shards(); ++s) {
      if (obs::HeatMap* shard_map = server_->shard_heatmap(s)) {
        heatmap_->MergeWindowFrom(*shard_map);
      }
    }
  }
  ++heatmap_pending_steps_;
  const int window = config_.obs.heatmap_window > 0
                         ? config_.obs.heatmap_window
                         : 1;
  if ((step + 1) % window != 0) return;
  RollHeatmapWindow();
}

void Simulation::RollHeatmapWindow() {
  // Residency snapshot straight from the world's CSR span index: cell f
  // holds offsets[f+1] - offsets[f] objects right now. Recorded once per
  // window (a population snapshot, not per-step flow).
  const std::vector<uint32_t>& offsets = world_->cell_span_offsets();
  for (size_t f = 0; f + 1 < offsets.size(); ++f) {
    uint64_t count = offsets[f + 1] - offsets[f];
    if (count > 0) {
      heatmap_->AddFlat(obs::HeatMap::kResidency, static_cast<int64_t>(f),
                        count);
    }
  }
  heatmap_->RollWindow(config_.obs.heatmap_decay);
  heatmap_pending_steps_ = 0;
}

void Simulation::FlushHeatmap() {
  if (heatmap_ == nullptr || heatmap_pending_steps_ == 0) return;
  RollHeatmapWindow();
}

void Simulation::RecordStepObservations(int64_t step) {
  const net::NetworkStats& stats = network_->stats();

  // Per-step deltas of the cumulative run counters.
  uint64_t broadcast = stats.broadcast_messages - cursor_.broadcast;
  uint64_t uplink = stats.uplink_messages - cursor_.uplink;
  uint64_t downlink =
      stats.downlink_messages - cursor_.downlink - broadcast;  // one-to-one
  auto type_count = [&stats](net::MessageType type) {
    return stats.messages_by_type[static_cast<size_t>(type)];
  };
  uint64_t installs_total =
      type_count(net::MessageType::kQueryInstallBroadcast) +
      type_count(net::MessageType::kQueryUpdateBroadcast) +
      type_count(net::MessageType::kNewQueriesNotification);
  uint64_t installs = installs_total - cursor_.installs;

  double server_seconds = 0.0;
  if (server_) server_seconds = server_->load_seconds();
  if (object_index_) server_seconds = object_index_->load_seconds();
  if (query_index_) server_seconds = query_index_->load_seconds();
  double server_us = (server_seconds - cursor_.server_seconds) * 1e6;

  uint64_t lqt_total = 0;
  uint64_t skips_total = 0;
  double client_seconds = 0.0;
  for (const auto& client : clients_) {
    size_t lqt_size = client->lqt_size();
    lqt_total += lqt_size;
    skips_total += client->safe_period_skips();
    client_seconds += client->processing_seconds();
    if (lqt_hist_ != nullptr) {
      lqt_hist_->Observe(static_cast<double>(lqt_size));
    }
  }
  uint64_t skips = skips_total - cursor_.skips;
  double client_us = (client_seconds - cursor_.client_seconds) * 1e6;

  if (server_step_us_hist_ != nullptr) {
    server_step_us_hist_->Observe(server_us);
    client_step_us_hist_->Observe(client_us);
  }
  if (sampler_ != nullptr && sampler_->ShouldSample(step)) {
    sampler_->Record(step, {static_cast<double>(uplink),
                            static_cast<double>(downlink),
                            static_cast<double>(broadcast),
                            static_cast<double>(installs),
                            static_cast<double>(lqt_total),
                            static_cast<double>(skips), server_us,
                            client_us});
  }

  // Per-shard operational gauges (timing-flagged: their values depend on the
  // shard layout, and deterministic exports must be identical across
  // --shards). Names are shard_id-tagged, e.g. "shard.02.uplinks".
  if (registry_ != nullptr && server_ != nullptr &&
      server_->num_shards() > 1) {
    const core::ShardRouter& router = server_->router();
    for (int s = 0; s < router.num_shards(); ++s) {
      const core::ServerShard& shard = router.shard(s);
      char tag[24];
      std::snprintf(tag, sizeof(tag), "shard.%02d.", s);
      std::string prefix(tag);
      registry_->GetGauge(prefix + "uplinks", /*timing=*/true)
          ->Set(static_cast<double>(shard.stats().uplinks_routed));
      registry_->GetGauge(prefix + "handoffs_in", /*timing=*/true)
          ->Set(static_cast<double>(shard.stats().handoffs_in));
      registry_->GetGauge(prefix + "handoffs_out", /*timing=*/true)
          ->Set(static_cast<double>(shard.stats().handoffs_out));
      registry_->GetGauge(prefix + "queries", /*timing=*/true)
          ->Set(static_cast<double>(shard.sqt().size()));
    }
    // Imbalance gauges: the scheduler-facing scalars a rebalancer would
    // watch, derived from the same per-shard numbers. step_cost ratios use
    // the cumulative per-shard step-phase wall time; uplink share is the
    // hottest shard's fraction of all routed uplinks. Timing-flagged like
    // the per-shard gauges (values depend on the layout and the clock).
    uint64_t uplinks_total = 0;
    uint64_t uplinks_max = 0;
    uint64_t step_us_total = 0;
    uint64_t step_us_max = 0;
    for (int s = 0; s < router.num_shards(); ++s) {
      const core::ServerShard::Stats& stats = router.shard(s).stats();
      uplinks_total += stats.uplinks_routed;
      uplinks_max = std::max(uplinks_max, stats.uplinks_routed);
      step_us_total += stats.step_micros;
      step_us_max = std::max(step_us_max, stats.step_micros);
    }
    const double n_shards = static_cast<double>(router.num_shards());
    const double mean_step_us =
        static_cast<double>(step_us_total) / n_shards;
    registry_->GetGauge("shard.imbalance.step_cost_max_over_mean",
                        /*timing=*/true)
        ->Set(mean_step_us > 0.0
                  ? static_cast<double>(step_us_max) / mean_step_us
                  : 1.0);
    registry_->GetGauge("shard.imbalance.max_uplink_share", /*timing=*/true)
        ->Set(uplinks_total > 0
                  ? static_cast<double>(uplinks_max) /
                        static_cast<double>(uplinks_total)
                  : 1.0 / n_shards);
    // Rebalance instruments (DESIGN.md §15), registered only when online
    // rebalancing is on — runs with --rebalance=off keep their deterministic
    // exports byte-identical. The values themselves are deterministic at a
    // fixed shard count (the planner's inputs are layout-invariant), so
    // they are NOT timing-flagged: the epoch gauge annotates the HTML
    // report timeline and the counters feed the migration-volume tables.
    if (config_.mobieyes.sharding.rebalance_enabled()) {
      const core::ShardRouter::RebalanceStats& rb = router.rebalance_stats();
      registry_->GetGauge("rebalance.epoch", /*timing=*/false)
          ->Set(static_cast<double>(router.shard_map().epoch()));
      registry_->GetGauge("rebalance.events", /*timing=*/false)
          ->Set(static_cast<double>(rb.events));
      registry_->GetGauge("rebalance.cells_moved", /*timing=*/false)
          ->Set(static_cast<double>(rb.cells_moved));
      registry_->GetGauge("rebalance.focals_moved", /*timing=*/false)
          ->Set(static_cast<double>(rb.focals_moved));
      registry_->GetGauge("rebalance.rqi_ids_moved", /*timing=*/false)
          ->Set(static_cast<double>(rb.rqi_ids_moved));
    }
  }

  // Process-transport backplane gauges: per-peer send-queue depth plus the
  // degraded-shard count. Timing-flagged like the per-shard gauges — socket
  // buffering depends on the host, never on the workload seed.
  if (registry_ != nullptr && supervisor_ != nullptr) {
    for (int s = 0; s < supervisor_->num_peers(); ++s) {
      char tag[32];
      std::snprintf(tag, sizeof(tag), "backplane.%02d.", s);
      registry_->GetGauge(std::string(tag) + "queue_depth", /*timing=*/true)
          ->Set(static_cast<double>(supervisor_->queue_bytes(s)));
    }
    registry_->GetGauge("backplane.down_shards", /*timing=*/true)
        ->Set(static_cast<double>(supervisor_->down_shards()));
    const core::SupervisorStats& sstats = supervisor_->stats();
    registry_->GetGauge("backplane.failovers", /*timing=*/true)
        ->Set(static_cast<double>(sstats.failovers));
    registry_->GetGauge("backplane.chaos_injections", /*timing=*/true)
        ->Set(static_cast<double>(sstats.chaos_frames + sstats.chaos_kills));
  }

  cursor_.uplink = stats.uplink_messages;
  cursor_.downlink = stats.downlink_messages;
  cursor_.broadcast = stats.broadcast_messages;
  cursor_.installs = installs_total;
  cursor_.skips = skips_total;
  cursor_.server_seconds = server_seconds;
  cursor_.client_seconds = client_seconds;
}

void Simulation::StepOnce() {
  obs::TraceRecorder* trace = trace_.get();
  TRACE_SPAN(trace, "sim.step");
  {
    TRACE_SPAN(trace, "world.step");
    world_->Step(config_.params.time_step,
                 config_.params.velocity_changes_per_step, rng_);
  }
  const int64_t step = sim_step_;
  // Process-death events fire at the start of the step, before any traffic:
  // a crash kills the server for [crash_step, crash_step + recovery_steps);
  // recovery_steps == 0 restores it immediately, so no traffic is lost to
  // downtime (the zero-downtime recovery-equivalence case).
  if (IsMobiEyesMode(config_.mode) &&
      config_.faults.server_crash_step >= 0) {
    if (step == config_.faults.server_crash_step) CrashServer();
    if (server_down_ && step >= server_restore_step_) RestoreServer();
  }
  // Advance the fault clock before the protocol acts: deferred deliveries
  // due this step flush here, and this step's disconnect windows take
  // effect for everything the protocol sends below.
  if (faulty_ != nullptr) faulty_->AdvanceStep(step);
  ++sim_step_;
  switch (config_.mode) {
    case SimMode::kMobiEyesEager:
    case SimMode::kMobiEyesLazy:
      if (supervisor_) {
        // Daemon fault event fires at the start of the step, like a server
        // crash: the shard degrades before any of this step's traffic.
        if (step == config_.shard_kill_step) {
          supervisor_->KillShard(config_.shard_kill_index);
        }
        // Degraded-mode drain: uplinks parked while a shard daemon was down
        // re-dispatch as soon as every shard is available again, ahead of
        // this step's fresh traffic.
        if (server_ && supervisor_->AllAvailable()) {
          server_->router().DrainDeferredUplinks();
        }
      }
      if (server_) server_->AdvanceTime(world_->now());
      // Cold client restarts happen between protocol turns: the device
      // reboots, loses its volatile state, and immediately reconciles.
      if (faulty_ != nullptr &&
          (config_.faults.client_restart_rate > 0.0 ||
           config_.faults.forced_restart_oid != kInvalidObjectId)) {
        for (auto& client : clients_) {
          if (faulty_->ShouldRestartClient(client->oid(), step)) {
            client->Reset();
            ++metrics_.client_restarts;
          }
        }
      }
      for (auto& client : clients_) client->OnTick();
      // Rebalance turn (DESIGN.md §15): with the step's uplinks dispatched
      // and before the checkpoint or the backplane pump, so migration ops
      // ride this step's coalesced batches and a checkpoint taken below
      // already carries the advanced epoch.
      if (server_) server_->router().MaybeRebalance(step);
      // Periodic checkpoint with the step's state settled.
      if (server_ && config_.checkpoint_stride > 0 &&
          (step + 1) % config_.checkpoint_stride == 0) {
        server_->Checkpoint();
        ++metrics_.checkpoints_taken;
      }
      // Backplane turn: flush this step's coalesced batches, read acks,
      // enforce deadlines, respawn dead daemons. Skipped while the server
      // itself is crashed (no authoritative state to mirror); the restore
      // path resyncs every replica. Right after the pump no ops are
      // pending, which is the invariant CaptureSyncAll needs — a sync
      // image plus replayed later batches must not double-apply.
      if (supervisor_ && server_) {
        supervisor_->PumpStep(step);
        if (config_.checkpoint_stride > 0 &&
            (step + 1) % config_.checkpoint_stride == 0) {
          supervisor_->CaptureSyncAll();
        }
      }
      break;
    case SimMode::kObjectIndex:
      naive_->OnTick();  // position stream into the index
      object_index_->EvaluateAllQueries();
      break;
    case SimMode::kQueryIndex:
      naive_->OnTick();  // differential evaluation happens per report
      break;
    case SimMode::kNaive:
      naive_->OnTick();
      break;
    case SimMode::kCentralOptimal:
      central_optimal_->OnTick();
      break;
  }
}

void Simulation::CrashServer() {
  // The process dies with all its in-memory state; only snapshot_store_
  // (stable storage) survives. The fault layer swallows uplinks while the
  // handler below finds server_ null.
  server_.reset();
  server_down_ = true;
  if (faulty_ != nullptr) faulty_->set_server_down(true);
  server_restore_step_ =
      config_.faults.server_crash_step + config_.faults.server_recovery_steps;
  ++metrics_.server_crashes;
  if (lifecycle_) {
    // Two rounds open at the moment of death: until the restore completes,
    // and until the reported results agree with the oracle again (resolved
    // in Run's accuracy pass; stays pending — counted — when measure_error
    // is off or agreement never recovers).
    lifecycle_->Stamp(obs::LifecycleTracker::kCrashRestore, 0);
    lifecycle_->Stamp(obs::LifecycleTracker::kCrashReconverge, 0);
  }
}

void Simulation::RestoreServer() {
  // Account overflow before Checkpoint() below resets the store's counter.
  metrics_.wal_records_dropped += snapshot_store_.wal_dropped;
  server_ = std::make_unique<core::MobiEyesServer>(
      *grid_, *layout_, *bmap_, *network_, resolved_mobieyes_);
  server_->set_trace_recorder(trace_.get());
  if (shard_pool_) server_->set_thread_pool(shard_pool_.get());
  // Re-wire the observability taps the dead process owned. Fresh (empty)
  // per-shard heat maps: the global map already holds everything merged
  // through the last completed step, and replay suppresses new charges.
  if (heatmap_) {
    server_->EnableHeatmaps(grid_->rows(), grid_->columns());
  }
  if (lifecycle_) server_->set_lifecycle(lifecycle_.get());
  size_t replayed = 0;
  Status status = server_->Restore(snapshot_store_, &replayed);
  // The store is this process's own serialization; a decode failure here is
  // a bug the recovery tests exist to catch. The server then starts cold
  // and the soft-state machinery rebuilds what it can.
  (void)status;
  metrics_.wal_records_replayed += replayed;
  server_->set_durable_store(&snapshot_store_);
  // A recovering server checkpoints before serving, collapsing the replayed
  // WAL into a fresh baseline image.
  server_->Checkpoint();
  ++metrics_.checkpoints_taken;
  server_down_ = false;
  if (faulty_ != nullptr) faulty_->set_server_down(false);
  server_restore_step_ = -1;
  if (lifecycle_) {
    lifecycle_->ResolveIfPending(obs::LifecycleTracker::kCrashRestore, 0);
  }
  if (supervisor_) {
    // The daemons outlived the server process; point the supervisor at the
    // rebuilt router and force a full resync of every replica against the
    // restored state.
    supervisor_->AttachRouter(&server_->router());
    supervisor_->OnServerRestored();
  }
}

RunMetrics Simulation::metrics() const {
  RunMetrics snapshot = metrics_;
  snapshot.network += network_->stats();
  if (server_) {
    snapshot.server_seconds = server_->load_seconds();
    snapshot.server_step_seconds = server_->step_seconds();
    for (int s = 0; s < server_->num_shards(); ++s) {
      double shard_seconds =
          static_cast<double>(server_->router().shard(s).stats().step_micros) *
          1e-6;
      snapshot.server_step_shard_seconds += shard_seconds;
      if (shard_seconds > snapshot.server_step_max_shard_seconds) {
        snapshot.server_step_max_shard_seconds = shard_seconds;
      }
    }
    // Coordinator-backplane traffic lives in the router, not the wireless
    // network; surface it through the same stats struct (it is excluded
    // from total_messages(), so the wireless figures are unaffected).
    const core::ShardRouter::BackplaneStats& backplane =
        server_->router().backplane();
    snapshot.network.inter_shard_messages = backplane.messages;
    snapshot.network.inter_shard_bytes = backplane.bytes;
    snapshot.network.inter_shard_handoffs = backplane.handoffs;
    const core::ShardRouter::TransportStats& transport =
        server_->router().transport_stats();
    snapshot.uplinks_deferred = transport.uplinks_deferred;
    snapshot.uplinks_drained = transport.uplinks_drained;
    snapshot.uplinks_dropped = transport.uplinks_dropped;
    const core::ShardRouter::RebalanceStats& rb =
        server_->router().rebalance_stats();
    snapshot.rebalance_events = rb.events;
    snapshot.rebalance_cells_moved = rb.cells_moved;
    snapshot.rebalance_focals_moved = rb.focals_moved;
    snapshot.rebalance_rqi_ids_moved = rb.rqi_ids_moved;
    snapshot.rebalance_epoch = server_->router().shard_map().epoch();
  }
  if (supervisor_) {
    const core::SupervisorStats& bp = supervisor_->stats();
    snapshot.backplane_frames_sent = bp.frames_sent;
    snapshot.backplane_frames_received = bp.frames_received;
    snapshot.backplane_bytes_sent = bp.bytes_sent;
    snapshot.backplane_bytes_received = bp.bytes_received;
    snapshot.backplane_rpc_timeouts = bp.rpc_timeouts;
    snapshot.backplane_digest_mismatches = bp.digest_mismatches;
    snapshot.backplane_replayed_frames = bp.replayed_frames;
    snapshot.backplane_rtt_micros = bp.rtt_micros_total;
    snapshot.backplane_rtt_samples = bp.rtt_samples;
    snapshot.backplane_scans_remote = bp.scans_remote;
    snapshot.backplane_scans_local = bp.scans_local;
    snapshot.backplane_failovers = bp.failovers;
    snapshot.backplane_cutovers = bp.cutovers;
    snapshot.backplane_scan_rtt_micros = bp.scan_rtt_micros_total;
    snapshot.backplane_scan_rtt_samples = bp.scan_rtt_samples;
    snapshot.backplane_chaos_frames = bp.chaos_frames;
    snapshot.backplane_chaos_kills = bp.chaos_kills;
    snapshot.shard_restarts = static_cast<int64_t>(bp.restarts);
  }
  if (object_index_) snapshot.server_seconds = object_index_->load_seconds();
  if (query_index_) snapshot.server_seconds = query_index_->load_seconds();
  for (const auto& client : clients_) {
    snapshot.client_processing_seconds += client->processing_seconds();
    snapshot.queries_evaluated += client->queries_evaluated();
    snapshot.safe_period_skips += client->safe_period_skips();
  }
  return snapshot;
}

const std::unordered_set<ObjectId>* Simulation::ReportedResult(
    size_t k) const {
  QueryId qid = installed_qids_[k];
  if (server_) {
    const core::MobiEyesServer::SqtEntry* entry = server_->FindQuery(qid);
    return entry == nullptr ? nullptr : &entry->result;
  }
  if (object_index_) return object_index_->QueryResult(qid);
  if (query_index_) return query_index_->QueryResult(qid);
  return nullptr;
}

double Simulation::CurrentResultError() const {
  return CurrentAccuracy().missing;
}

ExactOracle::AccuracyStats Simulation::CurrentAccuracy() const {
  ExactOracle::AccuracyStats mean;
  if (installed_qids_.empty()) return mean;
  TRACE_SPAN(trace_.get(), "oracle.evaluate");
  mean.agreement = 0.0;
  static const std::unordered_set<ObjectId> kEmpty;
  // One cell-major batch pass computes every query's exact result: each
  // populated cell span is streamed once against all queries touching it,
  // instead of re-walking the index per query.
  if (oracle_batch_.size() != installed_qids_.size()) {
    oracle_batch_.resize(installed_qids_.size());
    for (size_t k = 0; k < installed_qids_.size(); ++k) {
      const QuerySpec& spec = query_specs_[k];
      oracle_batch_[k] =
          ExactOracle::BatchQuery{spec.focal_oid, spec.region,
                                  spec.filter_threshold};
    }
  }
  oracle_->EvaluateAllInto(oracle_batch_, &oracle_batch_results_);
  for (size_t k = 0; k < installed_qids_.size(); ++k) {
    const std::unordered_set<ObjectId>* reported = ReportedResult(k);
    ExactOracle::AccuracyStats stats = ExactOracle::Compare(
        oracle_batch_results_[k], reported ? *reported : kEmpty);
    mean.missing += stats.missing;
    mean.spurious += stats.spurious;
    mean.agreement += stats.agreement;
  }
  double n = static_cast<double>(installed_qids_.size());
  mean.missing /= n;
  mean.spurious /= n;
  mean.agreement /= n;
  return mean;
}

std::string Simulation::ObservabilityJson(bool include_timing) const {
  std::string json = "{\"mode\": \"";
  json += SimModeName(config_.mode);
  json += "\", \"steps\": " + std::to_string(metrics_.steps) +
          ", \"network\": ";
  json += net::NetworkStatsJson(network_->stats());
  json += ", \"metrics\": ";
  json += registry_ ? registry_->ToJson(include_timing) : "{}";
  json += ", \"series\": ";
  json += sampler_ ? sampler_->ToJson(include_timing) : "{}";
  // Layout-dependent channels/kinds follow the timing flag: deterministic
  // exports must be identical across shard and thread counts.
  json += ", \"heatmap\": ";
  json += heatmap_ ? heatmap_->ToJson(include_timing) : "{}";
  json += ", \"lifecycle\": ";
  json += lifecycle_ ? lifecycle_->ToJson(include_timing) : "{}";
  json += '}';
  return json;
}

}  // namespace mobieyes::sim
