#include "mobieyes/sim/simulation.h"

#include <utility>

namespace mobieyes::sim {

const char* SimModeName(SimMode mode) {
  switch (mode) {
    case SimMode::kMobiEyesEager:
      return "MobiEyes-EQP";
    case SimMode::kMobiEyesLazy:
      return "MobiEyes-LQP";
    case SimMode::kObjectIndex:
      return "ObjectIndex";
    case SimMode::kQueryIndex:
      return "QueryIndex";
    case SimMode::kNaive:
      return "Naive";
    case SimMode::kCentralOptimal:
      return "CentralOptimal";
  }
  return "Unknown";
}

namespace {

bool IsMobiEyesMode(SimMode mode) {
  return mode == SimMode::kMobiEyesEager || mode == SimMode::kMobiEyesLazy;
}

}  // namespace

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)), rng_(config_.params.seed) {}

Result<std::unique_ptr<Simulation>> Simulation::Make(SimulationConfig config) {
  MOBIEYES_RETURN_NOT_OK(config.params.Validate());
  auto simulation = std::unique_ptr<Simulation>(new Simulation(config));
  MOBIEYES_RETURN_NOT_OK(simulation->Setup());
  return simulation;
}

Status Simulation::Setup() {
  const SimulationParams& params = config_.params;

  auto grid = geo::Grid::Make(params.universe(), params.alpha);
  MOBIEYES_RETURN_NOT_OK(grid.status());
  grid_ = std::make_unique<geo::Grid>(std::move(grid).value());

  Workload workload = GenerateWorkload(params, rng_);
  query_specs_ = workload.queries;

  auto world = mobility::World::Make(*grid_, std::move(workload.objects));
  MOBIEYES_RETURN_NOT_OK(world.status());
  world_ = std::make_unique<mobility::World>(std::move(world).value());
  oracle_ = std::make_unique<ExactOracle>(*world_);

  network_ = std::make_unique<net::WirelessNetwork>();
  network_->set_track_per_object_bytes(config_.track_per_object_bytes);
  network_->set_coverage_query(
      [this](const geo::Circle& circle,
             const std::function<void(ObjectId)>& fn) {
        world_->ForEachObjectInCircle(circle, fn);
      });

  if (IsMobiEyesMode(config_.mode)) {
    auto layout =
        net::BaseStationLayout::Make(params.universe(),
                                     params.base_station_side);
    MOBIEYES_RETURN_NOT_OK(layout.status());
    layout_ =
        std::make_unique<net::BaseStationLayout>(std::move(layout).value());
    auto bmap = net::Bmap::Make(*grid_, *layout_);
    MOBIEYES_RETURN_NOT_OK(bmap.status());
    bmap_ = std::make_unique<net::Bmap>(std::move(bmap).value());

    core::MobiEyesOptions options = config_.mobieyes;
    options.propagation = config_.mode == SimMode::kMobiEyesLazy
                              ? core::PropagationMode::kLazy
                              : core::PropagationMode::kEager;
    options.dead_reckoning_threshold = params.dead_reckoning_threshold;

    server_ = std::make_unique<core::MobiEyesServer>(*grid_, *layout_, *bmap_,
                                                     *network_, options);
    network_->set_server_handler(
        [this](ObjectId from, const net::Message& message) {
          server_->OnUplink(from, message);
        });

    clients_.reserve(world_->object_count());
    for (size_t oid = 0; oid < world_->object_count(); ++oid) {
      clients_.push_back(std::make_unique<core::MobiEyesClient>(
          *world_, static_cast<ObjectId>(oid), *network_, options));
      core::MobiEyesClient* client = clients_.back().get();
      network_->RegisterClient(
          static_cast<ObjectId>(oid),
          [client](const net::Message& message) {
            client->OnDownlink(message);
          });
    }

    for (const QuerySpec& spec : query_specs_) {
      auto qid = server_->InstallQuery(spec.focal_oid, spec.region,
                                       spec.filter_threshold);
      MOBIEYES_RETURN_NOT_OK(qid.status());
      installed_qids_.push_back(*qid);
    }
  } else {
    std::vector<double> attrs;
    std::vector<geo::Point> positions;
    attrs.reserve(world_->object_count());
    positions.reserve(world_->object_count());
    for (const auto& object : world_->objects()) {
      attrs.push_back(object.attr);
      positions.push_back(object.pos);
    }

    switch (config_.mode) {
      case SimMode::kObjectIndex:
        object_index_ = std::make_unique<baseline::ObjectIndexProcessor>(
            attrs, positions);
        network_->set_server_handler(
            [this](ObjectId from, const net::Message& message) {
              if (message.type == net::MessageType::kPositionReport) {
                const auto& report =
                    std::get<net::PositionReport>(message.payload);
                object_index_->OnPositionReport(from, report.pos);
              }
            });
        naive_ = std::make_unique<baseline::NaiveTracker>(*world_, *network_);
        break;
      case SimMode::kQueryIndex:
        query_index_ = std::make_unique<baseline::QueryIndexProcessor>(
            attrs, positions);
        network_->set_server_handler(
            [this](ObjectId from, const net::Message& message) {
              if (message.type == net::MessageType::kPositionReport) {
                const auto& report =
                    std::get<net::PositionReport>(message.payload);
                query_index_->OnPositionReport(from, report.pos);
              }
            });
        naive_ = std::make_unique<baseline::NaiveTracker>(*world_, *network_);
        break;
      case SimMode::kNaive:
        naive_ = std::make_unique<baseline::NaiveTracker>(*world_, *network_);
        break;
      case SimMode::kCentralOptimal:
        central_optimal_ = std::make_unique<baseline::CentralOptimalTracker>(
            *world_, *network_, params.dead_reckoning_threshold);
        break;
      default:
        return Status::Internal("unhandled simulation mode");
    }

    for (size_t k = 0; k < query_specs_.size(); ++k) {
      const QuerySpec& spec = query_specs_[k];
      if (spec.region.shape != geo::QueryRegion::Shape::kCircle) {
        return Status::InvalidArgument(
            "centralized baseline modes support circular queries only");
      }
      baseline::CentralQuery query{static_cast<QueryId>(k), spec.focal_oid,
                                   spec.region.radius,
                                   spec.filter_threshold};
      if (object_index_) object_index_->AddQuery(query);
      if (query_index_) query_index_->AddQuery(query);
      installed_qids_.push_back(query.qid);
    }
  }

  for (int k = 0; k < config_.warmup_steps; ++k) {
    StepOnce();
  }
  ResetMeasurement();
  return Status::OK();
}

void Simulation::ResetMeasurement() {
  metrics_ = RunMetrics{};
  metrics_.objects = static_cast<int64_t>(world_->object_count());
  network_->ResetStats();
  if (server_) server_->ResetLoadTimer();
  for (auto& client : clients_) client->ResetCounters();
  if (object_index_) object_index_->ResetLoadTimer();
  if (query_index_) query_index_->ResetLoadTimer();
}

void Simulation::Run(int steps) {
  for (int k = 0; k < steps; ++k) {
    StepOnce();
    ++metrics_.steps;
    metrics_.simulated_seconds += config_.params.time_step;
    if (IsMobiEyesMode(config_.mode)) {
      for (const auto& client : clients_) {
        metrics_.lqt_size_sum += client->lqt_size();
      }
    }
    if (config_.measure_error) {
      metrics_.error_sum += CurrentResultError();
      ++metrics_.error_samples;
    }
  }
}

void Simulation::StepOnce() {
  world_->Step(config_.params.time_step,
               config_.params.velocity_changes_per_step, rng_);
  switch (config_.mode) {
    case SimMode::kMobiEyesEager:
    case SimMode::kMobiEyesLazy:
      server_->AdvanceTime(world_->now());
      for (auto& client : clients_) client->OnTick();
      break;
    case SimMode::kObjectIndex:
      naive_->OnTick();  // position stream into the index
      object_index_->EvaluateAllQueries();
      break;
    case SimMode::kQueryIndex:
      naive_->OnTick();  // differential evaluation happens per report
      break;
    case SimMode::kNaive:
      naive_->OnTick();
      break;
    case SimMode::kCentralOptimal:
      central_optimal_->OnTick();
      break;
  }
}

RunMetrics Simulation::metrics() const {
  RunMetrics snapshot = metrics_;
  snapshot.network = network_->stats();
  if (server_) snapshot.server_seconds = server_->load_seconds();
  if (object_index_) snapshot.server_seconds = object_index_->load_seconds();
  if (query_index_) snapshot.server_seconds = query_index_->load_seconds();
  for (const auto& client : clients_) {
    snapshot.client_processing_seconds += client->processing_seconds();
    snapshot.queries_evaluated += client->queries_evaluated();
    snapshot.safe_period_skips += client->safe_period_skips();
  }
  return snapshot;
}

const std::unordered_set<ObjectId>* Simulation::ReportedResult(
    size_t k) const {
  QueryId qid = installed_qids_[k];
  if (server_) {
    const core::MobiEyesServer::SqtEntry* entry = server_->FindQuery(qid);
    return entry == nullptr ? nullptr : &entry->result;
  }
  if (object_index_) return object_index_->QueryResult(qid);
  if (query_index_) return query_index_->QueryResult(qid);
  return nullptr;
}

double Simulation::CurrentResultError() const {
  if (installed_qids_.empty()) return 0.0;
  double total = 0.0;
  static const std::unordered_set<ObjectId> kEmpty;
  for (size_t k = 0; k < installed_qids_.size(); ++k) {
    const QuerySpec& spec = query_specs_[k];
    oracle_->EvaluateInto(spec.focal_oid, spec.region, spec.filter_threshold,
                          &oracle_scratch_);
    const std::unordered_set<ObjectId>* reported = ReportedResult(k);
    total += ExactOracle::MissingFraction(oracle_scratch_,
                                          reported ? *reported : kEmpty);
  }
  return total / static_cast<double>(installed_qids_.size());
}

}  // namespace mobieyes::sim
