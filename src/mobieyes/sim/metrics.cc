#include "mobieyes/sim/metrics.h"

namespace mobieyes::sim {

double RunMetrics::AveragePowerMilliwatts(
    const net::RadioEnergyModel& radio) const {
  if (objects <= 0 || simulated_seconds <= 0.0) return 0.0;
  // Total radio energy across the fleet over the measured window; note that
  // broadcast receptions charge every covered object (already folded into
  // rx_bytes_per_object by the network).
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
  for (const auto& [oid, bytes] : network.tx_bytes_per_object) {
    tx_bytes += bytes;
  }
  for (const auto& [oid, bytes] : network.rx_bytes_per_object) {
    rx_bytes += bytes;
  }
  double joules = radio.EnergyJoules(tx_bytes, rx_bytes);
  return joules / simulated_seconds / static_cast<double>(objects) * 1000.0;
}

}  // namespace mobieyes::sim
