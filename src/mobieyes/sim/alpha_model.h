#ifndef MOBIEYES_SIM_ALPHA_MODEL_H_
#define MOBIEYES_SIM_ALPHA_MODEL_H_

#include "mobieyes/common/units.h"
#include "mobieyes/sim/workload.h"

namespace mobieyes::sim {

// Analytic model of the MobiEyes (eager propagation) messaging cost as a
// function of the grid cell size alpha. The paper states that "the optimal
// value of the alpha parameter can be derived analytically using a simple
// model" but omits it for space (§5.3); this is a reconstruction.
//
// Cost components (messages per second over the whole system):
//  * Cell-change uplinks: every object crosses cell borders at rate
//    ~ (4 v / pi) / alpha for mean speed v (mean number of side crossings
//    of a square lattice per unit path length), so smaller alpha means more
//    reports — the left, falling-in-alpha branch of the U-shape.
//  * New-query downlinks answering those crossings (eager propagation).
//  * Velocity-change uplinks from focal objects (alpha independent).
//  * Velocity-change / cell-change broadcasts: one per covering base
//    station of the monitoring region, whose side grows like
//    2*alpha + 2*r, so larger alpha means more and wider broadcasts — the
//    right, rising branch of the U-shape.
//  * Result-change uplinks from target flips (alpha independent).
//
// The model is deliberately simple: it predicts the U-shape and the
// location of the minimum, not absolute message counts.
class AlphaCostModel {
 public:
  explicit AlphaCostModel(const SimulationParams& params);

  // Mean object speed in miles/second implied by the workload model: zipf
  // over the max-speed list, then uniform in [0, max].
  double mean_speed() const { return mean_speed_; }

  // Mean query radius in miles (zipf over the radius means, times the
  // radius factor).
  double mean_radius() const { return mean_radius_; }

  // Expected number of distinct focal objects among nmq uniform picks.
  double expected_distinct_focals() const { return distinct_focals_; }

  // Expected grid-cell crossings per object per time step at cell size
  // alpha (capped at 1: at most one cell-change report is sent per step).
  double CellCrossingsPerObjectPerStep(Miles alpha) const;

  // Expected number of base stations needed to cover one monitoring region.
  double BroadcastsPerRegionEvent(Miles alpha) const;

  // Predicted uplink / downlink / total messages per second.
  double UplinkPerSecond(Miles alpha) const;
  double DownlinkPerSecond(Miles alpha) const;
  double MessagesPerSecond(Miles alpha) const;

  // Minimizes MessagesPerSecond over [lo, hi] by golden-section search
  // (the cost is unimodal in alpha).
  Miles OptimalAlpha(Miles lo = 0.5, Miles hi = 16.0) const;

 private:
  SimulationParams params_;
  double mean_speed_;
  double mean_radius_;
  double distinct_focals_;
};

}  // namespace mobieyes::sim

#endif  // MOBIEYES_SIM_ALPHA_MODEL_H_
