#ifndef MOBIEYES_SIM_SIMULATION_H_
#define MOBIEYES_SIM_SIMULATION_H_

#include <memory>
#include <vector>

#include "mobieyes/baseline/central_messaging.h"
#include "mobieyes/baseline/object_index.h"
#include "mobieyes/baseline/query_index.h"
#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/thread_pool.h"
#include "mobieyes/core/client.h"
#include "mobieyes/core/options.h"
#include "mobieyes/core/server.h"
#include "mobieyes/core/shard_supervisor.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/fault_injection.h"
#include "mobieyes/net/network.h"
#include "mobieyes/obs/heatmap.h"
#include "mobieyes/obs/lifecycle.h"
#include "mobieyes/obs/metrics_registry.h"
#include "mobieyes/obs/step_sampler.h"
#include "mobieyes/obs/trace_recorder.h"
#include "mobieyes/sim/metrics.h"
#include "mobieyes/sim/oracle.h"
#include "mobieyes/sim/workload.h"

namespace mobieyes::sim {

// Which query processing scheme a simulation run exercises. The same seeded
// workload drives every mode, so runs are directly comparable.
enum class SimMode {
  kMobiEyesEager,    // MobiEyes with eager query propagation
  kMobiEyesLazy,     // MobiEyes with lazy query propagation (LQP)
  kObjectIndex,      // centralized R*-tree over object positions
  kQueryIndex,       // centralized R*-tree over query regions
  kNaive,            // messaging model: positions uplinked every step
  kCentralOptimal,   // messaging model: dead-reckoned velocity uplinks
};

const char* SimModeName(SimMode mode);

// Observability toggles for one simulation cell. Everything here is owned
// by the cell (thread-confined) so parallel sweep cells never share
// instruments; with every toggle off (the default), the only per-step cost
// is a handful of null-pointer tests.
struct ObservabilityOptions {
  // Per-MessageType/per-direction counters, byte/LQT-size histograms, and
  // per-step server/client processing-time histograms in a MetricsRegistry.
  bool enable_metrics = false;
  // Chrome-trace scoped spans (server handlers, client LQT evaluation,
  // world step, oracle evaluation). The trace covers setup and warmup too,
  // so installation storms stay visible.
  bool enable_trace = false;
  // Record a per-step sample every `sample_stride` measured steps into a
  // ring buffer of `sample_capacity` rows; 0 disables the sampler.
  int sample_stride = 0;
  size_t sample_capacity = 4096;
  // Per-grid-cell heat maps (uplinks, RQI scan work, installs, handoffs,
  // object residency; MobiEyes modes only). Per-shard windows merge into
  // one global map each step; every heatmap_window steps the window is
  // folded into an exponentially decayed view with factor heatmap_decay.
  bool enable_heatmap = false;
  int heatmap_window = 16;
  double heatmap_decay = 0.5;
  // Virtual-step protocol-round latencies (uplink round trips, client ack
  // rounds, install->first-result, handoffs, crash recovery), measured on
  // the simulation's step clock — no wall time, so exports stay
  // deterministic.
  bool enable_lifecycle = false;

  bool any_enabled() const {
    return enable_metrics || enable_trace || sample_stride > 0 ||
           enable_heatmap || enable_lifecycle;
  }
};

struct SimulationConfig {
  SimulationParams params;
  SimMode mode = SimMode::kMobiEyesEager;
  // Optimization toggles for the MobiEyes modes; `propagation` is forced to
  // match `mode`.
  core::MobiEyesOptions mobieyes;
  // Compare reported results against the oracle every step (Fig. 2). Adds
  // oracle evaluation cost; off by default.
  bool measure_error = false;
  // Maintain per-object byte counters for the energy model (Fig. 9).
  bool track_per_object_bytes = false;
  // Steps run before measurement starts; stats reset afterwards.
  int warmup_steps = 2;
  ObservabilityOptions obs;
  // Fault injection (net::FaultyNetwork). An inactive plan (the default)
  // instantiates the plain WirelessNetwork, so fault-free runs pay nothing
  // beyond virtual dispatch. Faults start with the first step (setup-time
  // installation is unfaulted) and apply to warmup steps too.
  net::FaultPlan faults;
  // Crash recovery (MobiEyes modes): with checkpoint_stride > 0 the server
  // snapshots its state into a durable store every checkpoint_stride steps
  // (plus once at the end of setup). A planned server crash
  // (faults.server_crash_step) restores from that store; the store is also
  // attached — with a baseline checkpoint — whenever a crash is planned,
  // even at stride 0. wal_limit bounds the uplink log between checkpoints:
  // once full, newer uplinks go unlogged and the restored state is stale.
  int checkpoint_stride = 0;
  size_t wal_limit = 4096;
  // Worker threads for the server's per-shard step phase (expiry/lease
  // scans, checkpoint encoding). Only meaningful with
  // mobieyes.sharding.num_shards > 1; 1 (the default) steps shards inline.
  // Orthogonal to the sweep harness's cell-level --threads parallelism.
  int shard_threads = 1;
  // Shard transport (MobiEyes modes with num_shards > 1). kInProcess (the
  // default) keeps shards as in-memory state containers — the existing
  // byte-identical path. kProcess additionally runs one daemon process per
  // shard (core::ShardSupervisor over a framed socket backplane, DESIGN.md
  // §13); the router stays authoritative, so fault-free deterministic
  // exports are byte-identical to the in-process transport.
  enum class ShardTransport { kInProcess, kProcess };
  ShardTransport shard_transport = ShardTransport::kInProcess;
  // Process-transport tuning (address, heartbeat stride, RPC deadline,
  // respawn backoff, daemon binary path); kProcess only.
  core::SupervisorOptions supervisor;
  // Authority mode (kProcess only, DESIGN.md §14): daemons execute the RQI
  // scans and the router merges their digest-verified results; the local
  // shards become the warm failover mirror. Both paths serve identical
  // bytes, so deterministic exports stay byte-identical to in-process —
  // even across failovers. Sets supervisor.authority.
  bool shard_authority = false;
  // Seeded backplane chaos (kProcess only): frame drops/delays/truncations
  // /bit-flips plus scheduled SIGKILLs. Sets supervisor.fault.
  net::BackplaneFaultPlan backplane_fault;
  // Fault event (kProcess only): SIGKILL the shard_kill_index daemon at sim
  // step shard_kill_step (counted like faults.server_crash_step: warmup
  // steps included; -1 disables). The shard runs degraded until the
  // supervisor respawns and resyncs it.
  int64_t shard_kill_step = -1;
  int shard_kill_index = 0;
};

// One end-to-end simulation: a seeded workload, the mobility world, the
// wireless substrate, and the query processing scheme under test. Build
// with Make(), then Run() measured steps and read metrics().
class Simulation {
 public:
  static Result<std::unique_ptr<Simulation>> Make(SimulationConfig config);

  // Advances `steps` measured time steps.
  void Run(int steps);

  // Metrics accumulated since the end of warmup (finalized snapshot).
  RunMetrics metrics() const;

  // Mean over installed queries of the current result's missing fraction
  // vs the oracle (Fig. 2 error metric at this instant).
  double CurrentResultError() const;

  // Mean over installed queries of missing/spurious/agreement vs the oracle
  // at this instant (the accuracy-under-loss metrics).
  ExactOracle::AccuracyStats CurrentAccuracy() const;

  // --- Component access (tests, benches, examples) --------------------------

  const SimulationConfig& config() const { return config_; }
  const geo::Grid& grid() const { return *grid_; }
  mobility::World& world() { return *world_; }
  net::WirelessNetwork& network() { return *network_; }
  // Null unless config.faults is active.
  net::FaultyNetwork* faulty_network() { return faulty_; }
  const ExactOracle& oracle() const { return *oracle_; }
  // Null unless running a MobiEyes mode.
  core::MobiEyesServer* server() { return server_.get(); }
  // Null unless config.shard_transport == kProcess with a multi-shard
  // server.
  core::ShardSupervisor* supervisor() { return supervisor_.get(); }
  core::MobiEyesClient* client(ObjectId oid) {
    return clients_.empty() ? nullptr
                            : clients_[static_cast<size_t>(oid)].get();
  }
  baseline::ObjectIndexProcessor* object_index() {
    return object_index_.get();
  }
  baseline::QueryIndexProcessor* query_index() { return query_index_.get(); }
  const std::vector<QueryId>& installed_queries() const {
    return installed_qids_;
  }
  const std::vector<QuerySpec>& query_specs() const { return query_specs_; }

  // --- Observability --------------------------------------------------------

  // Null unless the matching ObservabilityOptions toggle is on.
  obs::MetricsRegistry* metrics_registry() { return registry_.get(); }
  obs::TraceRecorder* trace_recorder() { return trace_.get(); }
  obs::StepSampler* step_sampler() { return sampler_.get(); }
  // The global (merged) heat map and the shared lifecycle tracker.
  obs::HeatMap* heatmap() { return heatmap_.get(); }
  const obs::HeatMap* heatmap() const { return heatmap_.get(); }
  // Close a partially filled heat-map window: take the residency snapshot
  // and fold the window into totals, exactly as a heatmap_window boundary
  // would. No-op when the last run ended on a boundary (or no heat map is
  // on), so exports never double-roll. Call before exporting a run whose
  // length is not a multiple of heatmap_window.
  void FlushHeatmap();
  obs::LifecycleTracker* lifecycle() { return lifecycle_.get(); }
  const obs::LifecycleTracker* lifecycle() const { return lifecycle_.get(); }

  // JSON report combining the registry and the per-step time series:
  //   {"mode": ..., "steps": N, "metrics": {...}, "series": {...}}
  // With include_timing=false, wall-clock-derived instruments and columns
  // are omitted and the output depends only on the workload seed — the form
  // the sweep harness persists so parallel sweeps stay deterministic.
  // Returns "{}" sections for disabled components.
  std::string ObservabilityJson(bool include_timing = true) const;

 private:
  explicit Simulation(SimulationConfig config);

  Status Setup();
  void SetupObservability();
  void StepOnce();
  void ResetMeasurement();
  // Process-death events (crash recovery): kill the server at its planned
  // crash step, restore it from the durable store when the recovery window
  // elapses, and cold-restart clients the fault plan selects.
  void CrashServer();
  void RestoreServer();
  // Feeds per-step histograms and the sampler after measured step `step`
  // (0-based); called only when some observability component is on.
  void RecordStepObservations(int64_t step);
  // Merges the per-shard heat-map windows into the global map (fixed shard
  // order) after measured step `step`, and at window boundaries snapshots
  // object residency and rolls the decayed view.
  void RecordHeatmap(int64_t step);
  // Window-boundary work shared by RecordHeatmap and FlushHeatmap: the
  // residency snapshot plus RollWindow, clearing the pending-step count.
  void RollHeatmapWindow();
  // Reported result of installed query k under the current mode.
  const std::unordered_set<ObjectId>* ReportedResult(size_t k) const;

  SimulationConfig config_;
  Rng rng_;

  std::unique_ptr<geo::Grid> grid_;
  std::unique_ptr<mobility::World> world_;
  std::unique_ptr<net::BaseStationLayout> layout_;
  std::unique_ptr<net::Bmap> bmap_;
  std::unique_ptr<net::WirelessNetwork> network_;
  net::FaultyNetwork* faulty_ = nullptr;  // alias of network_ when faulted
  int64_t sim_step_ = 0;  // fault clock: counts every step incl. warmup
  std::unique_ptr<ExactOracle> oracle_;

  // MobiEyes deployment (modes kMobiEyesEager / kMobiEyesLazy). The shard
  // pool (null unless config.shard_threads > 1 with a multi-shard server) is
  // declared before server_ so the server never outlives its worker pool.
  // Likewise the supervisor (null unless shard_transport == kProcess with a
  // multi-shard server): its daemons outlive any one server incarnation —
  // a crash/restore re-attaches the new router and forces a full resync.
  std::unique_ptr<ThreadPool> shard_pool_;
  std::unique_ptr<core::ShardSupervisor> supervisor_;
  std::unique_ptr<core::MobiEyesServer> server_;
  std::vector<std::unique_ptr<core::MobiEyesClient>> clients_;
  // Resolved MobiEyes options (propagation/threshold applied), kept so a
  // post-crash replacement server is constructed identically.
  core::MobiEyesOptions resolved_mobieyes_;
  // Stable storage for the server (outlives the server process by design).
  core::Snapshot snapshot_store_;
  bool server_down_ = false;
  int64_t server_restore_step_ = -1;

  // Centralized baselines.
  std::unique_ptr<baseline::ObjectIndexProcessor> object_index_;
  std::unique_ptr<baseline::QueryIndexProcessor> query_index_;
  std::unique_ptr<baseline::NaiveTracker> naive_;
  std::unique_ptr<baseline::CentralOptimalTracker> central_optimal_;

  std::vector<QuerySpec> query_specs_;
  std::vector<QueryId> installed_qids_;

  // Batch-oracle inputs/outputs for CurrentAccuracy, reused across steps so
  // the per-step error measurement does not allocate per query.
  mutable std::vector<ExactOracle::BatchQuery> oracle_batch_;
  mutable std::vector<std::vector<ObjectId>> oracle_batch_results_;

  RunMetrics metrics_;

  // Observability (all null when the corresponding toggle is off).
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::StepSampler> sampler_;
  // Global merged heat map (created once the grid exists) and the lifecycle
  // tracker shared by network, clients and server.
  std::unique_ptr<obs::HeatMap> heatmap_;
  int64_t heatmap_pending_steps_ = 0;  // steps merged since the last roll
  std::unique_ptr<obs::LifecycleTracker> lifecycle_;
  // Pre-resolved per-step histograms (owned by registry_).
  obs::Histogram* lqt_hist_ = nullptr;
  obs::Histogram* server_step_us_hist_ = nullptr;
  obs::Histogram* client_step_us_hist_ = nullptr;
  // Previous-step totals for per-step deltas of cumulative quantities.
  struct StepCursor {
    uint64_t uplink = 0;
    uint64_t downlink = 0;
    uint64_t broadcast = 0;
    uint64_t installs = 0;
    uint64_t skips = 0;
    double server_seconds = 0.0;
    double client_seconds = 0.0;
  };
  StepCursor cursor_;
};

}  // namespace mobieyes::sim

#endif  // MOBIEYES_SIM_SIMULATION_H_
