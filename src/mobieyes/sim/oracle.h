#ifndef MOBIEYES_SIM_ORACLE_H_
#define MOBIEYES_SIM_ORACLE_H_

#include <unordered_set>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/geo/query_region.h"
#include "mobieyes/mobility/world.h"

namespace mobieyes::sim {

// Ground-truth query evaluator: computes the exact current result of a
// moving query from the world's true object positions. Used to validate the
// distributed protocol and to measure the result error of lazy query
// propagation (Fig. 2).
//
// Evaluation runs through the batched span kernels (geo/batch_kernels.h):
// each grid row the scan area touches is one contiguous slice of the
// world's cell-span index, streamed through a branch-light gather/compare
// loop instead of a per-object callback.
class ExactOracle {
 public:
  explicit ExactOracle(const mobility::World& world) : world_(&world) {}

  // Objects strictly other than the focal object that lie within `radius`
  // of the focal object's true position and satisfy the filter.
  std::unordered_set<ObjectId> Evaluate(ObjectId focal_oid, Miles radius,
                                        double filter_threshold) const;

  // General-shape variant: the region is bound at the focal object's true
  // position.
  std::unordered_set<ObjectId> Evaluate(ObjectId focal_oid,
                                        const geo::QueryRegion& region,
                                        double filter_threshold) const;

  // Allocation-free variant for per-step measurement loops: clears *out and
  // fills it with the exact result. The cell index visits each object at
  // most once, so the output needs no dedup and a caller-owned vector can be
  // reused across queries and steps (Fig. 2 measures every query every
  // step; a fresh hash set per query dominated the measurement cost).
  // Results are in (flat cell, ascending oid) scan order.
  void EvaluateInto(ObjectId focal_oid, const geo::QueryRegion& region,
                    double filter_threshold,
                    std::vector<ObjectId>* out) const;

  // One query of a cell-major batch evaluation.
  struct BatchQuery {
    ObjectId focal_oid = kInvalidObjectId;
    geo::QueryRegion region;
    double filter_threshold = 0.0;
  };

  // Evaluates every query of the batch in one cell-major pass: queries are
  // grouped by the grid cells their scan area intersects, then each
  // populated cell's span is streamed once against all queries touching it.
  // (*results)[q] receives query q's exact result in the same (flat cell,
  // ascending oid) order EvaluateInto produces — flat cell indices ascend
  // in both scan orders, so the batch is a drop-in replacement. Reuses
  // internal scratch and the caller's result vectors; steady-state this
  // allocates nothing.
  void EvaluateAllInto(const std::vector<BatchQuery>& queries,
                       std::vector<std::vector<ObjectId>>* results);

  // Fraction of the exact result that `reported` misses (paper's Fig. 2
  // error metric: missing ids divided by correct result size). Zero when
  // the exact result is empty.
  static double MissingFraction(
      const std::unordered_set<ObjectId>& exact,
      const std::unordered_set<ObjectId>& reported);

  // Same metric over an EvaluateInto result.
  static double MissingFraction(
      const std::vector<ObjectId>& exact,
      const std::unordered_set<ObjectId>& reported);

  // Full comparison of a reported result against the exact one, for the
  // accuracy-under-loss evaluation: the Fig. 2 missing fraction, the dual
  // spurious fraction (reported ids that are wrong, over the reported
  // size), and the Jaccard agreement |exact ∩ reported| / |exact ∪
  // reported| (1 when both sides are empty). One pass over `exact`.
  struct AccuracyStats {
    double missing = 0.0;
    double spurious = 0.0;
    double agreement = 1.0;
  };
  static AccuracyStats Compare(const std::vector<ObjectId>& exact,
                               const std::unordered_set<ObjectId>& reported);

 private:
  const mobility::World* world_;

  // Scratch for EvaluateAllInto (per-query parameters and the cell-to-query
  // CSR adjacency), reused across calls.
  std::vector<double> batch_cx_;
  std::vector<double> batch_cy_;
  std::vector<double> batch_scan_r2_;
  std::vector<geo::CellRange> batch_range_;
  std::vector<uint32_t> cell_query_start_;
  std::vector<uint32_t> cell_query_cursor_;
  std::vector<uint32_t> cell_query_items_;
};

}  // namespace mobieyes::sim

#endif  // MOBIEYES_SIM_ORACLE_H_
