#ifndef MOBIEYES_SIM_ORACLE_H_
#define MOBIEYES_SIM_ORACLE_H_

#include <unordered_set>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/query_region.h"
#include "mobieyes/mobility/world.h"

namespace mobieyes::sim {

// Ground-truth query evaluator: computes the exact current result of a
// moving query from the world's true object positions. Used to validate the
// distributed protocol and to measure the result error of lazy query
// propagation (Fig. 2).
class ExactOracle {
 public:
  explicit ExactOracle(const mobility::World& world) : world_(&world) {}

  // Objects strictly other than the focal object that lie within `radius`
  // of the focal object's true position and satisfy the filter.
  std::unordered_set<ObjectId> Evaluate(ObjectId focal_oid, Miles radius,
                                        double filter_threshold) const;

  // General-shape variant: the region is bound at the focal object's true
  // position.
  std::unordered_set<ObjectId> Evaluate(ObjectId focal_oid,
                                        const geo::QueryRegion& region,
                                        double filter_threshold) const;

  // Allocation-free variant for per-step measurement loops: clears *out and
  // fills it with the exact result. The cell index visits each object at
  // most once, so the output needs no dedup and a caller-owned vector can be
  // reused across queries and steps (Fig. 2 measures every query every
  // step; a fresh hash set per query dominated the measurement cost).
  void EvaluateInto(ObjectId focal_oid, const geo::QueryRegion& region,
                    double filter_threshold,
                    std::vector<ObjectId>* out) const;

  // Fraction of the exact result that `reported` misses (paper's Fig. 2
  // error metric: missing ids divided by correct result size). Zero when
  // the exact result is empty.
  static double MissingFraction(
      const std::unordered_set<ObjectId>& exact,
      const std::unordered_set<ObjectId>& reported);

  // Same metric over an EvaluateInto result.
  static double MissingFraction(
      const std::vector<ObjectId>& exact,
      const std::unordered_set<ObjectId>& reported);

  // Full comparison of a reported result against the exact one, for the
  // accuracy-under-loss evaluation: the Fig. 2 missing fraction, the dual
  // spurious fraction (reported ids that are wrong, over the reported
  // size), and the Jaccard agreement |exact ∩ reported| / |exact ∪
  // reported| (1 when both sides are empty). One pass over `exact`.
  struct AccuracyStats {
    double missing = 0.0;
    double spurious = 0.0;
    double agreement = 1.0;
  };
  static AccuracyStats Compare(const std::vector<ObjectId>& exact,
                               const std::unordered_set<ObjectId>& reported);

 private:
  const mobility::World* world_;
};

}  // namespace mobieyes::sim

#endif  // MOBIEYES_SIM_ORACLE_H_
