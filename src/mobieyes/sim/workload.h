#ifndef MOBIEYES_SIM_WORKLOAD_H_
#define MOBIEYES_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/random.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/query_region.h"
#include "mobieyes/geo/rect.h"
#include "mobieyes/mobility/object_state.h"

namespace mobieyes::sim {

// Spatial distribution of the initial object positions. The paper uses a
// uniform population; the hotspot variant concentrates objects around a few
// gaussian city-like centers to study skew.
enum class ObjectDistribution {
  kUniform,
  kHotspot,
};

// Simulation parameters, defaults per Table 1 of the paper.
struct SimulationParams {
  Seconds time_step = 30.0;                // ts
  Miles alpha = 5.0;                       // grid cell side length
  int num_objects = 10000;                 // no
  int num_queries = 1000;                  // nmq
  int velocity_changes_per_step = 1000;    // nmo
  double area_square_miles = 100000.0;     // area of consideration
  Miles base_station_side = 10.0;          // alen
  double query_selectivity = 0.75;         // qselect
  // Query radius means in miles, most common first; radii are drawn as
  // Normal(mean, mean/5) with the mean picked zipf(zipf_theta) from this
  // list, then scaled by radius_factor (the Fig. 12 sweep knob).
  std::vector<Miles> query_radius_means = {3.0, 2.0, 1.0, 4.0, 5.0};
  double radius_factor = 1.0;
  // Object maximum speeds in miles/hour, most common first, zipf-assigned.
  std::vector<double> max_speeds_mph = {100.0, 50.0, 150.0, 200.0, 250.0};
  double zipf_theta = 0.8;
  // Dead-reckoning threshold Δ in miles (not specified in the paper; see
  // DESIGN.md).
  Miles dead_reckoning_threshold = 0.2;
  // Fraction of queries generated with rectangular regions instead of the
  // paper's circles (extension; a rectangle with the same area as the drawn
  // circle, with aspect ratio uniform in [0.5, 2]). Centralized baseline
  // modes only support circles, so keep this 0 when comparing against them.
  double rect_query_fraction = 0.0;
  // Spatial skew (extension; the paper's experiments are uniform).
  ObjectDistribution object_distribution = ObjectDistribution::kUniform;
  int num_hotspots = 5;
  // Hotspot standard deviation as a fraction of the universe side, and the
  // fraction of the population placed in hotspots (the rest is uniform).
  double hotspot_sigma_fraction = 0.05;
  double hotspot_weight = 0.8;
  uint64_t seed = 42;

  // Square universe of discourse implied by `area_square_miles`.
  Miles side() const;
  geo::Rect universe() const;

  // Sanity checks; returns InvalidArgument describing the first problem.
  Status Validate() const;
};

// A moving query to be installed: the paper's (oid, region, filter) triple.
struct QuerySpec {
  ObjectId focal_oid = kInvalidObjectId;
  geo::QueryRegion region;
  double filter_threshold = 1.0;
};

// A generated scenario: initial object states plus the queries to install.
struct Workload {
  std::vector<mobility::ObjectState> objects;
  std::vector<QuerySpec> queries;
};

// Draws a workload per §5.1: uniform initial positions, zipf(0.8) maximum
// speeds from the Table 1 list, uniform filter attributes, uniform focal
// objects, zipf(0.8) radius means with Normal(mean, mean/5) radii.
Workload GenerateWorkload(const SimulationParams& params, Rng& rng);

}  // namespace mobieyes::sim

#endif  // MOBIEYES_SIM_WORKLOAD_H_
