#include "mobieyes/sim/workload.h"

#include <algorithm>
#include <cmath>

#include "mobieyes/mobility/motion_model.h"

namespace mobieyes::sim {

Miles SimulationParams::side() const { return std::sqrt(area_square_miles); }

geo::Rect SimulationParams::universe() const {
  return geo::Rect{0.0, 0.0, side(), side()};
}

Status SimulationParams::Validate() const {
  if (time_step <= 0.0) {
    return Status::InvalidArgument("time_step must be positive");
  }
  if (alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (num_objects <= 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  if (num_queries < 0) {
    return Status::InvalidArgument("num_queries must be non-negative");
  }
  if (velocity_changes_per_step < 0) {
    return Status::InvalidArgument(
        "velocity_changes_per_step must be non-negative");
  }
  if (area_square_miles <= 0.0) {
    return Status::InvalidArgument("area must be positive");
  }
  if (base_station_side <= 0.0) {
    return Status::InvalidArgument("base_station_side must be positive");
  }
  if (query_selectivity < 0.0 || query_selectivity > 1.0) {
    return Status::InvalidArgument("query_selectivity must be in [0, 1]");
  }
  if (query_radius_means.empty() || max_speeds_mph.empty()) {
    return Status::InvalidArgument("radius/speed lists must be non-empty");
  }
  if (radius_factor <= 0.0) {
    return Status::InvalidArgument("radius_factor must be positive");
  }
  if (dead_reckoning_threshold <= 0.0) {
    return Status::InvalidArgument(
        "dead_reckoning_threshold must be positive");
  }
  if (rect_query_fraction < 0.0 || rect_query_fraction > 1.0) {
    return Status::InvalidArgument("rect_query_fraction must be in [0, 1]");
  }
  if (object_distribution == ObjectDistribution::kHotspot) {
    if (num_hotspots <= 0) {
      return Status::InvalidArgument("num_hotspots must be positive");
    }
    if (hotspot_sigma_fraction <= 0.0) {
      return Status::InvalidArgument("hotspot sigma must be positive");
    }
    if (hotspot_weight < 0.0 || hotspot_weight > 1.0) {
      return Status::InvalidArgument("hotspot_weight must be in [0, 1]");
    }
  }
  return Status::OK();
}

Workload GenerateWorkload(const SimulationParams& params, Rng& rng) {
  Workload workload;
  geo::Rect universe = params.universe();

  ZipfSampler speed_sampler(static_cast<int>(params.max_speeds_mph.size()),
                            params.zipf_theta);

  // Hotspot centers (only used for the skewed distribution).
  std::vector<geo::Point> hotspots;
  if (params.object_distribution == ObjectDistribution::kHotspot) {
    hotspots.reserve(params.num_hotspots);
    for (int k = 0; k < params.num_hotspots; ++k) {
      hotspots.push_back(
          geo::Point{rng.NextDouble(universe.lx, universe.hx()),
                     rng.NextDouble(universe.ly, universe.hy())});
    }
  }
  Miles sigma = params.hotspot_sigma_fraction * params.side();
  auto draw_position = [&]() {
    if (params.object_distribution == ObjectDistribution::kHotspot &&
        rng.NextBernoulli(params.hotspot_weight)) {
      const geo::Point& center =
          hotspots[rng.NextUint64(hotspots.size())];
      geo::Point p{rng.NextGaussian(center.x, sigma),
                   rng.NextGaussian(center.y, sigma)};
      p.x = std::clamp(p.x, universe.lx, universe.hx());
      p.y = std::clamp(p.y, universe.ly, universe.hy());
      return p;
    }
    return geo::Point{rng.NextDouble(universe.lx, universe.hx()),
                      rng.NextDouble(universe.ly, universe.hy())};
  };

  workload.objects.reserve(params.num_objects);
  for (int k = 0; k < params.num_objects; ++k) {
    mobility::ObjectState object;
    object.oid = k;
    object.pos = draw_position();
    object.max_speed = MphToMilesPerSecond(
        params.max_speeds_mph[speed_sampler.Sample(rng)]);
    object.attr = rng.NextDouble();
    mobility::RandomVelocityModel::RandomizeVelocity(object, rng);
    workload.objects.push_back(object);
  }

  ZipfSampler radius_sampler(
      static_cast<int>(params.query_radius_means.size()), params.zipf_theta);
  workload.queries.reserve(params.num_queries);
  for (int k = 0; k < params.num_queries; ++k) {
    QuerySpec spec;
    spec.focal_oid =
        static_cast<ObjectId>(rng.NextUint64(params.num_objects));
    Miles mean = params.query_radius_means[radius_sampler.Sample(rng)];
    Miles drawn = rng.NextGaussian(mean, mean / 5.0);
    // Keep radii physically meaningful; the Normal tail can dip below zero.
    Miles radius = std::max(0.1, drawn) * params.radius_factor;
    if (rng.NextBernoulli(params.rect_query_fraction)) {
      // Equal-area rectangle with a random aspect ratio in [0.5, 2].
      double area = std::numbers::pi * radius * radius;
      double aspect = rng.NextDouble(0.5, 2.0);
      double height = std::sqrt(area / aspect);
      spec.region = geo::QueryRegion::MakeRectangle(aspect * height, height);
    } else {
      spec.region = geo::QueryRegion::MakeCircle(radius);
    }
    spec.filter_threshold = params.query_selectivity;
    workload.queries.push_back(spec);
  }
  return workload;
}

}  // namespace mobieyes::sim
