#include "mobieyes/sim/alpha_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mobieyes/common/random.h"

namespace mobieyes::sim {

AlphaCostModel::AlphaCostModel(const SimulationParams& params)
    : params_(params) {
  // Mean speed: zipf-weighted mean of the speed caps, halved because each
  // re-draw picks a speed uniform in [0, cap].
  ZipfSampler speed_zipf(static_cast<int>(params.max_speeds_mph.size()),
                         params.zipf_theta);
  double mean_cap_mph = 0.0;
  for (size_t k = 0; k < params.max_speeds_mph.size(); ++k) {
    mean_cap_mph += speed_zipf.pmf(static_cast<int>(k)) *
                    params.max_speeds_mph[k];
  }
  mean_speed_ = MphToMilesPerSecond(mean_cap_mph) / 2.0;

  ZipfSampler radius_zipf(static_cast<int>(params.query_radius_means.size()),
                          params.zipf_theta);
  mean_radius_ = 0.0;
  for (size_t k = 0; k < params.query_radius_means.size(); ++k) {
    mean_radius_ += radius_zipf.pmf(static_cast<int>(k)) *
                    params.query_radius_means[k];
  }
  mean_radius_ *= params.radius_factor;

  // E[distinct] for nmq uniform draws from no objects.
  double no = params.num_objects;
  distinct_focals_ =
      no * (1.0 - std::pow(1.0 - 1.0 / no, params.num_queries));
}

double AlphaCostModel::CellCrossingsPerObjectPerStep(Miles alpha) const {
  // A segment of length v*ts in a uniformly random direction crosses the
  // lines of a square lattice with spacing alpha (4 / pi) * length / alpha
  // times in expectation. One report is sent per step at most.
  double path = mean_speed_ * params_.time_step;
  double crossings = (4.0 / std::numbers::pi) * path / alpha;
  return std::min(1.0, crossings);
}

double AlphaCostModel::BroadcastsPerRegionEvent(Miles alpha) const {
  // Monitoring region side: the focal cell plus the cells reached by the
  // bounding box inflation (alpha + 2r rounded up to whole cells).
  double cells_per_side = std::ceil((alpha + 2.0 * mean_radius_) / alpha) + 1.0;
  double side = cells_per_side * alpha;
  // Stations on a lattice of spacing alen whose coverage circle intersects
  // the region: roughly one per alen along each axis plus the border ones.
  double per_axis = side / params_.base_station_side + 1.0;
  return per_axis * per_axis;
}

double AlphaCostModel::UplinkPerSecond(Miles alpha) const {
  double ts = params_.time_step;
  double no = params_.num_objects;
  double crossings = CellCrossingsPerObjectPerStep(alpha) * no / ts;

  // Velocity-change reports: a focal object re-drawn this step almost
  // surely drifts beyond the dead-reckoning threshold.
  double focal_fraction = distinct_focals_ / no;
  double velocity_reports =
      params_.velocity_changes_per_step * focal_fraction / ts;

  // Result flips: flux of objects across query boundaries. The mean normal
  // velocity component across a fixed line is v/pi, so the crossing rate of
  // one circular boundary is density * perimeter * v / pi.
  double density =
      params_.num_objects / params_.area_square_miles;
  double flips = params_.num_queries * density *
                 (2.0 * std::numbers::pi * mean_radius_) * mean_speed_ /
                 std::numbers::pi * params_.query_selectivity;

  return crossings + velocity_reports + flips;
}

double AlphaCostModel::DownlinkPerSecond(Miles alpha) const {
  double ts = params_.time_step;
  double no = params_.num_objects;
  double focal_fraction = distinct_focals_ / no;
  double queries_per_focal =
      params_.num_queries / std::max(1.0, distinct_focals_);

  // Broadcast-triggering events per second: focal velocity changes and
  // focal cell crossings, each fanning out one broadcast per covering
  // station per (grouped) query region.
  double focal_events =
      (params_.velocity_changes_per_step * focal_fraction +
       CellCrossingsPerObjectPerStep(alpha) * distinct_focals_) /
      ts;
  double broadcasts = focal_events * BroadcastsPerRegionEvent(alpha);
  (void)queries_per_focal;  // grouping folds same-region queries together

  // One-to-one new-query responses to non-focal cell crossings: sent only
  // when the destination cell intersects some monitoring region the object
  // was not already in. Approximate by the fraction of the universe covered
  // by monitoring-region boundary bands.
  double region_side =
      (std::ceil((alpha + 2.0 * mean_radius_) / alpha) + 1.0) * alpha;
  double covered_fraction = std::min(
      1.0, params_.num_queries * region_side * region_side /
               params_.area_square_miles);
  double crossings_per_second =
      CellCrossingsPerObjectPerStep(alpha) * no / ts;
  double new_query_responses = crossings_per_second * covered_fraction;

  return broadcasts + new_query_responses;
}

double AlphaCostModel::MessagesPerSecond(Miles alpha) const {
  return UplinkPerSecond(alpha) + DownlinkPerSecond(alpha);
}

Miles AlphaCostModel::OptimalAlpha(Miles lo, Miles hi) const {
  // Golden-section search; the modeled cost is unimodal in alpha.
  constexpr double kGolden = 0.61803398874989484820;
  double a = lo;
  double b = hi;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = MessagesPerSecond(x1);
  double f2 = MessagesPerSecond(x2);
  for (int iter = 0; iter < 80 && (b - a) > 1e-6; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = MessagesPerSecond(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = MessagesPerSecond(x2);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace mobieyes::sim
