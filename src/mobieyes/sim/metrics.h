#ifndef MOBIEYES_SIM_METRICS_H_
#define MOBIEYES_SIM_METRICS_H_

#include <cstdint>

#include "mobieyes/common/units.h"
#include "mobieyes/net/energy.h"
#include "mobieyes/net/network.h"

namespace mobieyes::sim {

// Aggregated measurements of one simulation run, accumulated over the
// measured (post-warmup) steps. Derived accessors produce exactly the
// quantities plotted in the paper's figures.
struct RunMetrics {
  int64_t steps = 0;
  Seconds simulated_seconds = 0.0;

  // Wall time spent in server-side logic (Figs. 1, 3).
  double server_seconds = 0.0;
  // Subset of server_seconds spent in the step phase (expiry/lease scans,
  // checkpoint encoding) — the work that parallelizes across server shards
  // and that the shard bench compares across --shards (DESIGN.md §10).
  double server_step_seconds = 0.0;
  // Per-shard split of server_step_seconds: the summed time of all shard
  // bodies (the parallelizable portion) and the largest single-shard share
  // (the critical path). step - sum + max estimates a perfectly parallel
  // step, which is how the shard bench reports speedup independently of
  // how many hardware threads the measuring machine has.
  double server_step_shard_seconds = 0.0;
  double server_step_max_shard_seconds = 0.0;

  // Network totals for the measured window (Figs. 4-8).
  net::NetworkStats network;

  // Sum over steps of the LQT size summed over all objects, and the object
  // count (Figs. 10-12 plot the per-object per-step average).
  uint64_t lqt_size_sum = 0;
  int64_t objects = 0;

  // Sum over steps of the per-query mean result error vs the oracle, and
  // the number of sampled steps (Fig. 2). Under fault injection the missing
  // fraction alone hides spurious members (stale flips never retracted), so
  // the dual spurious fraction and the Jaccard agreement are accumulated
  // over the same samples.
  double error_sum = 0.0;
  double spurious_sum = 0.0;
  double agreement_sum = 0.0;
  int64_t error_samples = 0;

  // Moving-object processing (Fig. 13).
  double client_processing_seconds = 0.0;
  uint64_t queries_evaluated = 0;
  uint64_t safe_period_skips = 0;

  // Crash-recovery events within the measured window (DESIGN.md §9).
  int64_t server_crashes = 0;
  int64_t client_restarts = 0;
  int64_t checkpoints_taken = 0;
  uint64_t wal_records_replayed = 0;
  // Records lost to WAL overflow at restore time: non-zero means the
  // restored state was stale and leases/reconciliation had to close the gap.
  uint64_t wal_records_dropped = 0;

  // Process-transport backplane (DESIGN.md §13). All zero under the
  // in-process transport. RTT fields are wall-clock measurements and, like
  // server_seconds, never feed deterministic exports.
  uint64_t backplane_frames_sent = 0;
  uint64_t backplane_frames_received = 0;
  uint64_t backplane_bytes_sent = 0;
  uint64_t backplane_bytes_received = 0;
  uint64_t backplane_rpc_timeouts = 0;
  uint64_t backplane_digest_mismatches = 0;
  uint64_t backplane_replayed_frames = 0;
  uint64_t backplane_rtt_micros = 0;
  uint64_t backplane_rtt_samples = 0;
  // Authority mode (DESIGN.md §14): scans answered by a daemon vs served
  // by the warm local mirror, authority handoffs in both directions, and
  // the blocking-scan round trip.
  uint64_t backplane_scans_remote = 0;
  uint64_t backplane_scans_local = 0;
  uint64_t backplane_failovers = 0;
  uint64_t backplane_cutovers = 0;
  uint64_t backplane_scan_rtt_micros = 0;
  uint64_t backplane_scan_rtt_samples = 0;
  // Chaos layer: injected frame faults and scheduled SIGKILLs.
  uint64_t backplane_chaos_frames = 0;
  uint64_t backplane_chaos_kills = 0;
  // Online rebalancing (DESIGN.md §15). All zero with --rebalance=off.
  // Deterministic at a fixed shard count: counts planner decisions and the
  // migration volume they drove, never wall clock.
  uint64_t rebalance_events = 0;
  uint64_t rebalance_cells_moved = 0;
  uint64_t rebalance_focals_moved = 0;
  uint64_t rebalance_rqi_ids_moved = 0;
  uint64_t rebalance_epoch = 0;  // partition epoch at the end of the run
  int64_t shard_restarts = 0;
  // Degraded-mode accounting while a shard daemon was down: uplinks parked
  // for the dead ingress shard, re-dispatched on rejoin, or lost to the
  // bounded queue.
  uint64_t uplinks_deferred = 0;
  uint64_t uplinks_drained = 0;
  uint64_t uplinks_dropped = 0;

  // --- Derived figures ------------------------------------------------------

  double MessagesPerSecond() const {
    return simulated_seconds > 0.0
               ? static_cast<double>(network.total_messages()) /
                     simulated_seconds
               : 0.0;
  }

  double UplinkMessagesPerSecond() const {
    return simulated_seconds > 0.0
               ? static_cast<double>(network.uplink_messages) /
                     simulated_seconds
               : 0.0;
  }

  double ServerLoadPerStep() const {
    return steps > 0 ? server_seconds / static_cast<double>(steps) : 0.0;
  }

  double AverageLqtSize() const {
    return steps > 0 && objects > 0
               ? static_cast<double>(lqt_size_sum) /
                     (static_cast<double>(steps) *
                      static_cast<double>(objects))
               : 0.0;
  }

  double AverageError() const {
    return error_samples > 0 ? error_sum / static_cast<double>(error_samples)
                             : 0.0;
  }

  double AverageSpurious() const {
    return error_samples > 0
               ? spurious_sum / static_cast<double>(error_samples)
               : 0.0;
  }

  // Mean oracle agreement; 1.0 when no samples were taken (nothing known to
  // disagree).
  double AverageAgreement() const {
    return error_samples > 0
               ? agreement_sum / static_cast<double>(error_samples)
               : 1.0;
  }

  // Backplane figures for the shard-sweep table: mean RPC round trip in
  // microseconds, and frames/bytes shipped per measured step.
  double BackplaneRttMicros() const {
    return backplane_rtt_samples > 0
               ? static_cast<double>(backplane_rtt_micros) /
                     static_cast<double>(backplane_rtt_samples)
               : 0.0;
  }

  // Mean blocking-scan round trip in authority mode, in microseconds.
  double BackplaneScanRttMicros() const {
    return backplane_scan_rtt_samples > 0
               ? static_cast<double>(backplane_scan_rtt_micros) /
                     static_cast<double>(backplane_scan_rtt_samples)
               : 0.0;
  }

  double BackplaneFramesPerStep() const {
    return steps > 0 ? static_cast<double>(backplane_frames_sent) /
                           static_cast<double>(steps)
                     : 0.0;
  }

  double BackplaneBytesPerStep() const {
    return steps > 0 ? static_cast<double>(backplane_bytes_sent) /
                           static_cast<double>(steps)
                     : 0.0;
  }

  // Per object per step, in seconds (Fig. 13).
  double ClientProcessingPerStep() const {
    return steps > 0 && objects > 0
               ? client_processing_seconds / (static_cast<double>(steps) *
                                              static_cast<double>(objects))
               : 0.0;
  }

  // Average per-object communication power in milliwatts (Fig. 9).
  double AveragePowerMilliwatts(const net::RadioEnergyModel& radio) const;
};

}  // namespace mobieyes::sim

#endif  // MOBIEYES_SIM_METRICS_H_
