#include "mobieyes/net/energy.h"

// RadioEnergyModel is header-only; this translation unit pins the header's
// compilation into the library.
