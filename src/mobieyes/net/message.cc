#include "mobieyes/net/message.h"

namespace mobieyes::net {

namespace {

// Maps a payload alternative to its MessageType tag.
struct TypeOf {
  MessageType operator()(const QueryInstallRequest&) const {
    return MessageType::kQueryInstallRequest;
  }
  MessageType operator()(const PositionReport&) const {
    return MessageType::kPositionReport;
  }
  MessageType operator()(const PositionVelocityReport&) const {
    return MessageType::kPositionVelocityReport;
  }
  MessageType operator()(const VelocityChangeReport&) const {
    return MessageType::kVelocityChangeReport;
  }
  MessageType operator()(const CellChangeReport&) const {
    return MessageType::kCellChangeReport;
  }
  MessageType operator()(const ResultBitmapReport&) const {
    return MessageType::kResultBitmapReport;
  }
  MessageType operator()(const FocalNotification&) const {
    return MessageType::kFocalNotification;
  }
  MessageType operator()(const PositionVelocityRequest&) const {
    return MessageType::kPositionVelocityRequest;
  }
  MessageType operator()(const QueryInstallBroadcast&) const {
    return MessageType::kQueryInstallBroadcast;
  }
  MessageType operator()(const VelocityChangeBroadcast&) const {
    return MessageType::kVelocityChangeBroadcast;
  }
  MessageType operator()(const QueryUpdateBroadcast&) const {
    return MessageType::kQueryUpdateBroadcast;
  }
  MessageType operator()(const QueryRemoveBroadcast&) const {
    return MessageType::kQueryRemoveBroadcast;
  }
  MessageType operator()(const NewQueriesNotification&) const {
    return MessageType::kNewQueriesNotification;
  }
  MessageType operator()(const UplinkAck&) const {
    return MessageType::kUplinkAck;
  }
  MessageType operator()(const LqtReconcileRequest&) const {
    return MessageType::kLqtReconcileRequest;
  }
  MessageType operator()(const ShardHandoff&) const {
    return MessageType::kShardHandoff;
  }
};

struct BodySize {
  size_t operator()(const QueryInstallRequest&) const {
    return kIdBytes + kRegionBytes + kScalarBytes;
  }
  size_t operator()(const PositionReport&) const {
    return kIdBytes + kPointBytes;
  }
  size_t operator()(const PositionVelocityReport&) const {
    return kIdBytes + kFocalStateBytes + kScalarBytes;
  }
  size_t operator()(const VelocityChangeReport&) const {
    return kIdBytes + kFocalStateBytes;
  }
  size_t operator()(const CellChangeReport&) const {
    return kIdBytes + 2 * kCellBytes;
  }
  size_t operator()(const ResultBitmapReport& r) const {
    // One bit of bitmap per query, rounded up to whole bytes (§4.1).
    return kIdBytes + r.qids.size() * kIdBytes + (r.qids.size() + 7) / 8;
  }
  size_t operator()(const FocalNotification&) const { return 2 * kIdBytes; }
  size_t operator()(const PositionVelocityRequest&) const { return kIdBytes; }
  size_t operator()(const QueryInstallBroadcast& b) const {
    return b.queries.size() * kQueryInfoBytes;
  }
  size_t operator()(const VelocityChangeBroadcast& b) const {
    size_t base = kIdBytes + kFocalStateBytes;
    if (b.carries_query_info) {
      // Kinematics are already carried once; the lazy expansion adds the
      // per-query static part (ids, radius, filter, region, max speed).
      base += b.queries.size() * (kQueryInfoBytes - kFocalStateBytes);
    }
    return base;
  }
  size_t operator()(const QueryUpdateBroadcast& b) const {
    return b.queries.size() * kQueryInfoBytes;
  }
  size_t operator()(const QueryRemoveBroadcast& b) const {
    return b.qids.size() * kIdBytes;
  }
  size_t operator()(const NewQueriesNotification& n) const {
    return kIdBytes + n.queries.size() * kQueryInfoBytes;
  }
  size_t operator()(const UplinkAck&) const { return kIdBytes + kSeqBytes; }
  size_t operator()(const LqtReconcileRequest& r) const {
    // oid, cell, a u16 target count, then both id lists.
    return kIdBytes + kCellBytes + 2 +
           (r.known_qids.size() + r.target_qids.size()) * kIdBytes;
  }
  size_t operator()(const ShardHandoff& h) const {
    // Shard pair, FOT row, then each migrated SQT row with its result ids
    // behind a u32 count.
    size_t size = 2 * kSeqBytes + kIdBytes + kFocalStateBytes + kScalarBytes +
                  kCellBytes;
    for (const ShardQueryState& q : h.queries) {
      size += 2 * kIdBytes + kRegionBytes + kScalarBytes + kCellBytes +
              kCellRangeBytes + 2 * kTimeBytes + 4 +
              q.result.size() * kIdBytes;
    }
    return size;
  }
};

}  // namespace

Message MakeMessage(MessagePayload payload) {
  MessageType type = std::visit(TypeOf{}, payload);
  return Message{type, std::move(payload)};
}

size_t WireSizeBytes(const Message& message) {
  return kHeaderBytes + std::visit(BodySize{}, message.payload);
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kQueryInstallRequest:
      return "QueryInstallRequest";
    case MessageType::kPositionReport:
      return "PositionReport";
    case MessageType::kPositionVelocityReport:
      return "PositionVelocityReport";
    case MessageType::kVelocityChangeReport:
      return "VelocityChangeReport";
    case MessageType::kCellChangeReport:
      return "CellChangeReport";
    case MessageType::kResultBitmapReport:
      return "ResultBitmapReport";
    case MessageType::kFocalNotification:
      return "FocalNotification";
    case MessageType::kPositionVelocityRequest:
      return "PositionVelocityRequest";
    case MessageType::kQueryInstallBroadcast:
      return "QueryInstallBroadcast";
    case MessageType::kVelocityChangeBroadcast:
      return "VelocityChangeBroadcast";
    case MessageType::kQueryUpdateBroadcast:
      return "QueryUpdateBroadcast";
    case MessageType::kQueryRemoveBroadcast:
      return "QueryRemoveBroadcast";
    case MessageType::kNewQueriesNotification:
      return "NewQueriesNotification";
    case MessageType::kUplinkAck:
      return "UplinkAck";
    case MessageType::kLqtReconcileRequest:
      return "LqtReconcileRequest";
    case MessageType::kShardHandoff:
      return "ShardHandoff";
  }
  return "Unknown";
}

}  // namespace mobieyes::net
