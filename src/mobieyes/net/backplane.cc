#include "mobieyes/net/backplane.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace mobieyes::net {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Backplane fds must not leak into spawned shard daemons.
void SetCloExec(int fd) { fcntl(fd, F_SETFD, FD_CLOEXEC); }

// Splits "uds:/path" / "tcp:host:port" into scheme + rest. Returns false
// on an unknown scheme.
bool ParseAddress(const std::string& address, bool* is_uds,
                  std::string* rest) {
  if (address.rfind("uds:", 0) == 0) {
    *is_uds = true;
    *rest = address.substr(4);
    return true;
  }
  if (address.rfind("tcp:", 0) == 0) {
    *is_uds = false;
    *rest = address.substr(4);
    return true;
  }
  return false;
}

Status FillSockaddr(bool is_uds, const std::string& rest,
                    sockaddr_storage* storage, socklen_t* len) {
  memset(storage, 0, sizeof(*storage));
  if (is_uds) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    if (rest.size() + 1 > sizeof(sun->sun_path)) {
      return Status::InvalidArgument("backplane: UDS path too long: " + rest);
    }
    sun->sun_family = AF_UNIX;
    memcpy(sun->sun_path, rest.c_str(), rest.size() + 1);
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  rest.size() + 1);
    return Status::OK();
  }
  size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("backplane: tcp address needs host:port");
  }
  std::string host = rest.substr(0, colon);
  int port = atoi(rest.c_str() + colon + 1);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("backplane: bad tcp port in " + rest);
  }
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("backplane: bad tcp host in " + rest);
  }
  *len = sizeof(sockaddr_in);
  return Status::OK();
}

}  // namespace

Backplane::~Backplane() { Close(); }

void Backplane::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  if (!uds_path_.empty()) {
    unlink(uds_path_.c_str());
    uds_path_.clear();
  }
}

Status Backplane::Listen(const std::string& address) {
  Close();
  bool is_uds = false;
  std::string rest;
  if (!ParseAddress(address, &is_uds, &rest)) {
    return Status::InvalidArgument("backplane: unknown address scheme: " +
                                   address);
  }
  sockaddr_storage storage;
  socklen_t len = 0;
  Status st = FillSockaddr(is_uds, rest, &storage, &len);
  if (!st.ok()) return st;

  if (is_uds) unlink(rest.c_str());  // stale socket from a dead run
  int fd = socket(is_uds ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("backplane: socket() failed");
  if (!is_uds) {
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    close(fd);
    return Status::Internal("backplane: bind(" + address +
                            ") failed: " + strerror(errno));
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return Status::Internal("backplane: listen failed");
  }
  if (!SetNonBlocking(fd)) {
    close(fd);
    return Status::Internal("backplane: fcntl failed");
  }
  SetCloExec(fd);
  fd_ = fd;
  if (is_uds) {
    uds_path_ = rest;
    bound_address_ = address;
  } else {
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    char buf[64];
    snprintf(buf, sizeof(buf), "tcp:%s:%d", inet_ntoa(bound.sin_addr),
             static_cast<int>(ntohs(bound.sin_port)));
    bound_address_ = buf;
  }
  return Status::OK();
}

int Backplane::Accept() {
  if (fd_ < 0) return -1;
  int peer = accept(fd_, nullptr, nullptr);
  if (peer >= 0) SetCloExec(peer);
  return peer;
}

Status BackplaneConnect(const std::string& address, int timeout_ms,
                        int retry_sleep_ms, int* fd_out) {
  bool is_uds = false;
  std::string rest;
  if (!ParseAddress(address, &is_uds, &rest)) {
    return Status::InvalidArgument("backplane: unknown address scheme: " +
                                   address);
  }
  sockaddr_storage storage;
  socklen_t len = 0;
  Status st = FillSockaddr(is_uds, rest, &storage, &len);
  if (!st.ok()) return st;

  int waited = 0;
  for (;;) {
    int fd = socket(is_uds ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("backplane: socket() failed");
    if (connect(fd, reinterpret_cast<sockaddr*>(&storage), len) == 0) {
      SetCloExec(fd);
      if (!is_uds) {
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      *fd_out = fd;
      return Status::OK();
    }
    close(fd);
    if (waited >= timeout_ms) {
      return Status::Internal("backplane: connect(" + address +
                              ") timed out: " + strerror(errno));
    }
    int sleep_ms = retry_sleep_ms > 0 ? retry_sleep_ms : 10;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    waited += sleep_ms;
  }
}

PeerLink::~PeerLink() { Close(); }

void PeerLink::Adopt(int fd) {
  Close();
  SetNonBlocking(fd);
  fd_ = fd;
  send_buf_.clear();
  send_pos_ = 0;
}

void PeerLink::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool PeerLink::Send(const Frame& frame, size_t max_queue_bytes) {
  if (fd_ < 0) {
    ++stats_.send_drops;
    return false;
  }
  if (queued_bytes() > max_queue_bytes) {
    Flush();
    if (queued_bytes() > max_queue_bytes) {
      ++stats_.send_drops;
      return false;
    }
  }
  EncodeFrame(frame, &send_buf_);
  ++stats_.frames_sent;
  return Flush();
}

bool PeerLink::SendBytes(const uint8_t* data, size_t size,
                         size_t max_queue_bytes) {
  if (fd_ < 0) {
    ++stats_.send_drops;
    return false;
  }
  if (queued_bytes() > max_queue_bytes) {
    Flush();
    if (queued_bytes() > max_queue_bytes) {
      ++stats_.send_drops;
      return false;
    }
  }
  send_buf_.insert(send_buf_.end(), data, data + size);
  ++stats_.frames_sent;
  return Flush();
}

bool PeerLink::Flush() {
  if (fd_ < 0) return false;
  while (send_pos_ < send_buf_.size()) {
    // MSG_NOSIGNAL: a peer killed mid-write must surface as EPIPE, not
    // SIGPIPE the whole router process.
    ssize_t n = send(fd_, send_buf_.data() + send_pos_,
                     send_buf_.size() - send_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      send_pos_ += static_cast<size_t>(n);
      stats_.bytes_sent += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;
  }
  if (send_pos_ == send_buf_.size() && !send_buf_.empty()) {
    send_buf_.clear();
    send_pos_ = 0;
  }
  return true;
}

bool PeerLink::Receive(std::vector<Frame>* out) {
  if (fd_ < 0) return false;
  size_t before = out->size();
  uint8_t buf[16384];
  for (;;) {
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(n);
      decoder_.Feed(buf, static_cast<size_t>(n), out);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // n == 0: EOF — the peer process is gone.
    Close();
    stats_.frames_received += out->size() - before;
    return false;
  }
  stats_.frames_received += out->size() - before;
  return true;
}

namespace {

// Parses "key=value" with a double value; rejects rates outside [0, 1].
Status ParseRate(const std::string& field, const std::string& value,
                 double* out) {
  char* end = nullptr;
  double v = strtod(value.c_str(), &end);
  if (end == value.c_str() || (end != nullptr && *end != '\0') || v < 0.0 ||
      v > 1.0) {
    return Status::InvalidArgument("backplane fault: bad rate in " + field);
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Status ParseBackplaneFaultSpec(const std::string& spec,
                               BackplaneFaultPlan* plan) {
  *plan = BackplaneFaultPlan{};
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string field = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("backplane fault: expected key=value: " +
                                     field);
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    Status st = Status::OK();
    if (key == "drop") {
      st = ParseRate(field, value, &plan->drop_rate);
    } else if (key == "trunc") {
      st = ParseRate(field, value, &plan->truncate_rate);
    } else if (key == "flip") {
      st = ParseRate(field, value, &plan->flip_rate);
    } else if (key == "delay") {
      // delay=RATE or delay=RATE:MAX_STEPS
      size_t colon = value.find(':');
      st = ParseRate(field, value.substr(0, colon), &plan->delay_rate);
      if (st.ok() && colon != std::string::npos) {
        int steps = atoi(value.c_str() + colon + 1);
        if (steps < 1) {
          return Status::InvalidArgument(
              "backplane fault: delay steps must be >= 1: " + field);
        }
        plan->max_delay_steps = steps;
      }
    } else if (key == "kill") {
      size_t colon = value.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument(
            "backplane fault: kill needs STEP:SHARD: " + field);
      }
      int64_t step = atoll(value.c_str());
      int shard = atoi(value.c_str() + colon + 1);
      if (step < 0 || shard < 0) {
        return Status::InvalidArgument("backplane fault: bad kill in " +
                                       field);
      }
      plan->kills.emplace_back(step, shard);
    } else if (key == "seed") {
      plan->seed = static_cast<uint64_t>(atoll(value.c_str()));
    } else {
      return Status::InvalidArgument("backplane fault: unknown key: " + key);
    }
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void PollReadable(const std::vector<int>& fds, int timeout_ms,
                  std::vector<int>* ready) {
  ready->clear();
  std::vector<pollfd> pfds;
  std::vector<int> index;
  pfds.reserve(fds.size());
  for (size_t k = 0; k < fds.size(); ++k) {
    if (fds[k] < 0) continue;
    pfds.push_back(pollfd{fds[k], POLLIN, 0});
    index.push_back(static_cast<int>(k));
  }
  if (pfds.empty()) return;
  int n = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (n <= 0) return;
  for (size_t k = 0; k < pfds.size(); ++k) {
    if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
      ready->push_back(index[k]);
    }
  }
}

}  // namespace mobieyes::net
