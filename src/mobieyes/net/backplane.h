#ifndef MOBIEYES_NET_BACKPLANE_H_
#define MOBIEYES_NET_BACKPLANE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/net/framing.h"

namespace mobieyes::net {

// Real inter-process transport for the shard backplane (DESIGN.md §13):
// a listener plus per-peer framed links over Unix-domain or TCP sockets.
// Addresses are "uds:/path/to.sock" or "tcp:host:port" (port 0 binds an
// ephemeral port; bound_address() reports the resolved one).
//
// The supervisor side is fully non-blocking: sends queue into a bounded
// per-peer buffer flushed opportunistically, reads drain whatever the
// kernel has. Blocking behavior (the daemon side) is a connect option.

// Listening endpoint. Owns the fd and, for UDS, unlinks the socket file on
// close.
class Backplane {
 public:
  Backplane() = default;
  ~Backplane();
  Backplane(const Backplane&) = delete;
  Backplane& operator=(const Backplane&) = delete;

  Status Listen(const std::string& address);
  // Address a peer can connect to; for "tcp:host:0" the bound port is
  // substituted in.
  const std::string& bound_address() const { return bound_address_; }
  int fd() const { return fd_; }
  // Accepts one pending connection without blocking; -1 when none.
  int Accept();
  void Close();

 private:
  int fd_ = -1;
  std::string bound_address_;
  std::string uds_path_;  // non-empty: unlink on Close
};

// Connects to `address`. Blocking variant waits up to `timeout_ms` for the
// listener to exist (connection refused retries inside, with the caller's
// sleep policy applied between attempts via retry_sleep_ms). Returns the
// connected fd through *fd_out.
Status BackplaneConnect(const std::string& address, int timeout_ms,
                        int retry_sleep_ms, int* fd_out);

// One connected peer: framed, non-blocking, with a bounded send queue.
class PeerLink {
 public:
  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    // Frames refused because the bounded send queue was full — the peer is
    // stalled or dead; the caller decides whether that is fatal.
    uint64_t send_drops = 0;
  };

  PeerLink() = default;
  ~PeerLink();
  PeerLink(const PeerLink&) = delete;
  PeerLink& operator=(const PeerLink&) = delete;

  // Takes ownership of a connected fd and switches it to non-blocking.
  void Adopt(int fd);
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Queues one frame (encoded into the send buffer) and attempts a flush.
  // Returns false — dropping the frame — when the queue already holds
  // `max_queue_bytes` unsent bytes.
  bool Send(const Frame& frame, size_t max_queue_bytes);
  // Queues pre-encoded wire bytes verbatim — the chaos layer's injection
  // point, where a frame's encoding may have been flipped or truncated.
  // Same queue bound and flush behavior as Send(); counts one frame sent.
  bool SendBytes(const uint8_t* data, size_t size, size_t max_queue_bytes);
  // Writes as much queued output as the socket accepts. Returns false on a
  // fatal socket error (the link is closed).
  bool Flush();
  size_t queued_bytes() const { return send_buf_.size() - send_pos_; }

  // Drains readable bytes into the frame decoder, appending complete
  // frames to *out. Returns false on EOF or a fatal error (link closed).
  bool Receive(std::vector<Frame>* out);

  const Stats& stats() const { return stats_; }
  const FrameDecoder& decoder() const { return decoder_; }

 private:
  int fd_ = -1;
  std::vector<uint8_t> send_buf_;
  size_t send_pos_ = 0;
  FrameDecoder decoder_;
  Stats stats_;
};

// poll(2) wrapper: waits up to timeout_ms for readability on any of `fds`
// (entries < 0 are skipped). Returns the indexes of readable/hung-up fds.
void PollReadable(const std::vector<int>& fds, int timeout_ms,
                  std::vector<int>* ready);

// --- Backplane chaos plan (DESIGN.md §14) -----------------------------------
//
// Seeded fault injection between the router and its shard daemons. The
// supervisor applies the plan to every outbound frame (after the initial
// start handshake) and fires the scheduled SIGKILLs at step boundaries, so
// a chaos run is reproducible from the plan alone.

struct BackplaneFaultPlan {
  double drop_rate = 0.0;      // frame silently discarded
  double delay_rate = 0.0;     // frame held for 1..max_delay_steps steps
  int max_delay_steps = 2;
  double truncate_rate = 0.0;  // frame's wire bytes cut short
  double flip_rate = 0.0;      // one random bit flipped in the wire bytes
  // Scheduled daemon SIGKILLs: (virtual step, shard index).
  std::vector<std::pair<int64_t, int>> kills;
  uint64_t seed = 1;

  bool active() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || truncate_rate > 0.0 ||
           flip_rate > 0.0 || !kills.empty();
  }
};

// Parses a chaos spec of comma-separated fields into *plan:
//   drop=F | delay=F[:STEPS] | trunc=F | flip=F | kill=STEP:SHARD | seed=N
// e.g. "drop=0.02,flip=0.01,kill=12:1,kill=20:0,seed=7". kill= repeats.
Status ParseBackplaneFaultSpec(const std::string& spec,
                               BackplaneFaultPlan* plan);

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_BACKPLANE_H_
