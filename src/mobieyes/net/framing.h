#ifndef MOBIEYES_NET_FRAMING_H_
#define MOBIEYES_NET_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mobieyes/common/status.h"

namespace mobieyes::net {

// Length-prefixed framing for the shard backplane (DESIGN.md §13-14). A
// frame carries one batch of backplane work between the router process and a
// shard daemon; its payload is opaque bytes encoded with ByteWriter (state
// syncs, per-step op batches, scan results) or MessageCodec (embedded
// handoff messages).
//
// Wire layout, little-endian, 24-byte header (version 2):
//
//   magic u32 ("MoBF") | version u8 | kind u8 | shard u8 | flags u8 |
//   step i64 | payload_len u32 | payload_crc u32 | payload bytes
//
// payload_crc is FNV-1a-32 over the payload bytes, so chaos-injected
// corruption (bit flips, truncation splices) is rejected at decode instead
// of reaching ApplyStepBatch. Version 1 frames (no version byte, u16 flags,
// no checksum) are rejected as bad_version garbage.
//
// The decoder below is incremental and hostile-input safe: partial frames
// buffer across reads, an impossible header (bad magic, wrong version,
// unknown kind, oversized length) never allocates the claimed length, and
// the stream resynchronizes by scanning forward for the next magic.

enum class FrameKind : uint8_t {
  kHello = 0,         // daemon -> supervisor, after connect
  kConfig = 1,        // supervisor -> daemon: grid + shard map parameters
  kStateSync = 2,     // supervisor -> daemon: full shard state image
  kStateSyncAck = 3,  // daemon -> supervisor: state digest after load
  kStepBatch = 4,     // supervisor -> daemon: coalesced per-step ops
  kStepAck = 5,       // daemon -> supervisor: state digest after apply
  kHeartbeat = 6,     // supervisor -> daemon: liveness probe
  kHeartbeatAck = 7,  // daemon -> supervisor
  kShutdown = 8,      // supervisor -> daemon: clean exit request
  kScanRequest = 9,   // supervisor -> daemon: RQI row read for one cell
  kScanResult = 10,   // daemon -> supervisor: qids monitoring that cell
  kNumFrameKinds = 11,
};

const char* FrameKindName(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kHeartbeat;
  uint8_t shard = 0;
  uint8_t flags = 0;
  int64_t step = 0;
  std::vector<uint8_t> payload;
};

inline constexpr uint32_t kFrameMagic = 0x4d6f4246;  // "MoBF"
inline constexpr uint8_t kFrameVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 24;
// A state sync of a large shard is a few MiB; anything past this cap is a
// corrupt or hostile length prefix, not a real frame.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

// FNV-1a-32 over the payload, the frame checksum. Cheap, portable, and
// strong enough to catch single-bit flips and truncation splices.
uint32_t FramePayloadChecksum(const uint8_t* data, size_t size);

// Appends the encoded frame to *out (existing contents kept, so a batch of
// frames can share one send buffer).
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

// Incremental frame decoder over a byte stream. Feed() consumes every input
// byte: complete frames land in *out, a trailing partial frame is buffered
// for the next call, and malformed headers are skipped byte-by-byte until
// the next magic (counted, never fatal — a TCP stream must survive a
// desynchronized peer).
class FrameDecoder {
 public:
  struct Stats {
    uint64_t frames = 0;        // complete frames decoded
    uint64_t bytes = 0;         // payload + header bytes of those frames
    uint64_t resync_bytes = 0;  // garbage skipped hunting for magic
    uint64_t oversized = 0;     // headers rejected for impossible length
    uint64_t bad_kind = 0;      // headers rejected for unknown kind
    uint64_t bad_version = 0;   // headers rejected for wrong frame version
    uint64_t checksum_mismatch = 0;  // full frames rejected for bad crc
  };

  void Feed(const uint8_t* data, size_t size, std::vector<Frame>* out);

  // Bytes buffered waiting for the rest of a frame (or more garbage).
  size_t pending_bytes() const { return buffer_.size() - consumed_; }
  const Stats& stats() const { return stats_; }

 private:
  // Drops `n` consumed bytes from the front (lazily compacted).
  void Consume(size_t n);

  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  Stats stats_;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_FRAMING_H_
