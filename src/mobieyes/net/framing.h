#ifndef MOBIEYES_NET_FRAMING_H_
#define MOBIEYES_NET_FRAMING_H_

#include <cstdint>
#include <vector>

#include "mobieyes/common/status.h"

namespace mobieyes::net {

// Length-prefixed framing for the shard backplane (DESIGN.md §13). A frame
// carries one batch of backplane work between the router process and a
// shard daemon; its payload is opaque bytes encoded with ByteWriter (state
// syncs, per-step op batches) or MessageCodec (embedded handoff messages).
//
// Wire layout, little-endian, 20-byte header:
//
//   magic u32 ("MoBF") | kind u8 | shard u8 | flags u16 |
//   step i64 | payload_len u32 | payload bytes
//
// The decoder below is incremental and hostile-input safe: partial frames
// buffer across reads, an impossible header (bad magic, unknown kind,
// oversized length) never allocates the claimed length, and the stream
// resynchronizes by scanning forward for the next magic.

enum class FrameKind : uint8_t {
  kHello = 0,         // daemon -> supervisor, after connect
  kConfig = 1,        // supervisor -> daemon: grid + shard map parameters
  kStateSync = 2,     // supervisor -> daemon: full shard state image
  kStateSyncAck = 3,  // daemon -> supervisor: state digest after load
  kStepBatch = 4,     // supervisor -> daemon: coalesced per-step ops
  kStepAck = 5,       // daemon -> supervisor: state digest after apply
  kHeartbeat = 6,     // supervisor -> daemon: liveness probe
  kHeartbeatAck = 7,  // daemon -> supervisor
  kShutdown = 8,      // supervisor -> daemon: clean exit request
  kNumFrameKinds = 9,
};

const char* FrameKindName(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kHeartbeat;
  uint8_t shard = 0;
  uint16_t flags = 0;
  int64_t step = 0;
  std::vector<uint8_t> payload;
};

inline constexpr uint32_t kFrameMagic = 0x4d6f4246;  // "MoBF"
inline constexpr size_t kFrameHeaderBytes = 20;
// A state sync of a large shard is a few MiB; anything past this cap is a
// corrupt or hostile length prefix, not a real frame.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

// Appends the encoded frame to *out (existing contents kept, so a batch of
// frames can share one send buffer).
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

// Incremental frame decoder over a byte stream. Feed() consumes every input
// byte: complete frames land in *out, a trailing partial frame is buffered
// for the next call, and malformed headers are skipped byte-by-byte until
// the next magic (counted, never fatal — a TCP stream must survive a
// desynchronized peer).
class FrameDecoder {
 public:
  struct Stats {
    uint64_t frames = 0;            // complete frames decoded
    uint64_t bytes = 0;             // payload + header bytes of those frames
    uint64_t resync_bytes = 0;      // garbage skipped hunting for magic
    uint64_t oversized = 0;         // headers rejected for impossible length
    uint64_t bad_kind = 0;          // headers rejected for unknown kind
  };

  void Feed(const uint8_t* data, size_t size, std::vector<Frame>* out);

  // Bytes buffered waiting for the rest of a frame (or more garbage).
  size_t pending_bytes() const { return buffer_.size() - consumed_; }
  const Stats& stats() const { return stats_; }

 private:
  // Drops `n` consumed bytes from the front (lazily compacted).
  void Consume(size_t n);

  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  Stats stats_;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_FRAMING_H_
