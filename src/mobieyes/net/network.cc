#include "mobieyes/net/network.h"

namespace mobieyes::net {

void WirelessNetwork::SendUplink(ObjectId from, Message message) {
  if (observer_) observer_(Direction::kUplink, from, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.uplink_messages;
  stats_.uplink_bytes += bytes;
  if (track_per_object_bytes_) {
    stats_.tx_bytes_per_object[from] += bytes;
  }
  if (server_handler_) server_handler_(from, message);
}

void WirelessNetwork::SendDownlinkTo(ObjectId to, Message message) {
  if (observer_) observer_(Direction::kDownlink, to, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.downlink_messages;
  stats_.downlink_bytes += bytes;
  if (track_per_object_bytes_) {
    stats_.rx_bytes_per_object[to] += bytes;
  }
  auto it = clients_.find(to);
  if (it != clients_.end()) it->second(message);
}

void WirelessNetwork::Broadcast(const BaseStation& station, Message message) {
  if (observer_) observer_(Direction::kBroadcast, station.id, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.downlink_messages;
  ++stats_.broadcast_messages;
  stats_.downlink_bytes += bytes;
  if (!coverage_query_) return;
  // Collect receivers first: handlers may re-enter the network (e.g. an
  // object replying with an uplink), and must not observe a partially
  // delivered broadcast.
  std::vector<ObjectId> receivers;
  coverage_query_(station.coverage,
                  [&receivers](ObjectId oid) { receivers.push_back(oid); });
  stats_.broadcast_receptions += receivers.size();
  if (track_per_object_bytes_) {
    for (ObjectId oid : receivers) {
      stats_.rx_bytes_per_object[oid] += bytes;
    }
  }
  for (ObjectId oid : receivers) {
    auto it = clients_.find(oid);
    if (it != clients_.end()) it->second(message);
  }
}

}  // namespace mobieyes::net
