#include "mobieyes/net/network.h"

#include "mobieyes/obs/metrics_registry.h"

namespace mobieyes::net {

NetworkStats& NetworkStats::operator+=(const NetworkStats& other) {
  uplink_messages += other.uplink_messages;
  downlink_messages += other.downlink_messages;
  broadcast_messages += other.broadcast_messages;
  uplink_bytes += other.uplink_bytes;
  downlink_bytes += other.downlink_bytes;
  broadcast_receptions += other.broadcast_receptions;
  for (size_t k = 0; k < kNumMessageTypes; ++k) {
    messages_by_type[k] += other.messages_by_type[k];
  }
  for (const auto& [oid, bytes] : other.tx_bytes_per_object) {
    tx_bytes_per_object[oid] += bytes;
  }
  for (const auto& [oid, bytes] : other.rx_bytes_per_object) {
    rx_bytes_per_object[oid] += bytes;
  }
  return *this;
}

void WirelessNetwork::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = WireMetrics{};
    metrics_attached_ = false;
    return;
  }
  static constexpr const char* kDirectionNames[3] = {"uplink", "downlink",
                                                     "broadcast"};
  for (size_t d = 0; d < 3; ++d) {
    for (size_t t = 0; t < kNumMessageTypes; ++t) {
      metrics_.msgs[d][t] = registry->GetCounter(
          std::string("net.msgs.") + kDirectionNames[d] + "." +
          MessageTypeName(static_cast<MessageType>(t)));
    }
  }
  metrics_.bytes = registry->GetHistogram(
      "net.message_bytes", obs::ExponentialBounds(32.0, 2.0, 12));
  metrics_.broadcast_receptions =
      registry->GetCounter("net.broadcast_receptions");
  metrics_attached_ = true;
}

void WirelessNetwork::RecordMetrics(Direction direction,
                                    const Message& message, size_t bytes) {
  metrics_.msgs[static_cast<size_t>(direction)]
              [static_cast<size_t>(message.type)]
                  ->Increment();
  metrics_.bytes->Observe(static_cast<double>(bytes));
}

void WirelessNetwork::SendUplink(ObjectId from, Message message) {
  if (observer_) observer_(Direction::kUplink, from, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.uplink_messages;
  stats_.uplink_bytes += bytes;
  ++stats_.messages_by_type[static_cast<size_t>(message.type)];
  if (metrics_attached_) RecordMetrics(Direction::kUplink, message, bytes);
  if (track_per_object_bytes_) {
    stats_.tx_bytes_per_object[from] += bytes;
  }
  if (server_handler_) server_handler_(from, message);
}

void WirelessNetwork::SendDownlinkTo(ObjectId to, Message message) {
  if (observer_) observer_(Direction::kDownlink, to, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.downlink_messages;
  stats_.downlink_bytes += bytes;
  ++stats_.messages_by_type[static_cast<size_t>(message.type)];
  if (metrics_attached_) RecordMetrics(Direction::kDownlink, message, bytes);
  if (track_per_object_bytes_) {
    stats_.rx_bytes_per_object[to] += bytes;
  }
  auto it = clients_.find(to);
  if (it != clients_.end()) it->second(message);
}

void WirelessNetwork::Broadcast(const BaseStation& station, Message message) {
  if (observer_) observer_(Direction::kBroadcast, station.id, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.downlink_messages;
  ++stats_.broadcast_messages;
  stats_.downlink_bytes += bytes;
  ++stats_.messages_by_type[static_cast<size_t>(message.type)];
  if (metrics_attached_) RecordMetrics(Direction::kBroadcast, message, bytes);
  if (!coverage_query_) return;
  // Collect receivers first: handlers may re-enter the network (e.g. an
  // object replying with an uplink), and must not observe a partially
  // delivered broadcast.
  std::vector<ObjectId> receivers;
  coverage_query_(station.coverage,
                  [&receivers](ObjectId oid) { receivers.push_back(oid); });
  stats_.broadcast_receptions += receivers.size();
  if (metrics_attached_) {
    metrics_.broadcast_receptions->Increment(receivers.size());
  }
  if (track_per_object_bytes_) {
    for (ObjectId oid : receivers) {
      stats_.rx_bytes_per_object[oid] += bytes;
    }
  }
  for (ObjectId oid : receivers) {
    auto it = clients_.find(oid);
    if (it != clients_.end()) it->second(message);
  }
}

}  // namespace mobieyes::net
