#include "mobieyes/net/network.h"

#include "mobieyes/obs/lifecycle.h"
#include "mobieyes/obs/metrics_registry.h"

namespace mobieyes::net {

NetworkStats& NetworkStats::operator+=(const NetworkStats& other) {
  uplink_messages += other.uplink_messages;
  downlink_messages += other.downlink_messages;
  broadcast_messages += other.broadcast_messages;
  uplink_bytes += other.uplink_bytes;
  downlink_bytes += other.downlink_bytes;
  broadcast_receptions += other.broadcast_receptions;
  undeliverable_downlinks += other.undeliverable_downlinks;
  for (size_t k = 0; k < kNumUndeliverableReasons; ++k) {
    undeliverable_by_reason[k] += other.undeliverable_by_reason[k];
  }
  uplink_dropped += other.uplink_dropped;
  downlink_dropped += other.downlink_dropped;
  broadcast_dropped += other.broadcast_dropped;
  delayed_messages += other.delayed_messages;
  duplicated_messages += other.duplicated_messages;
  disconnect_events += other.disconnect_events;
  inter_shard_messages += other.inter_shard_messages;
  inter_shard_bytes += other.inter_shard_bytes;
  inter_shard_handoffs += other.inter_shard_handoffs;
  for (size_t k = 0; k < kNumMessageTypes; ++k) {
    messages_by_type[k] += other.messages_by_type[k];
    dropped_by_type[k] += other.dropped_by_type[k];
  }
  for (const auto& [oid, bytes] : other.tx_bytes_per_object) {
    tx_bytes_per_object[oid] += bytes;
  }
  for (const auto& [oid, bytes] : other.rx_bytes_per_object) {
    rx_bytes_per_object[oid] += bytes;
  }
  return *this;
}

void WirelessNetwork::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = WireMetrics{};
    metrics_attached_ = false;
    return;
  }
  static constexpr const char* kDirectionNames[3] = {"uplink", "downlink",
                                                     "broadcast"};
  // Only wireless types get eager counters: server-internal types (shard
  // handoffs) never reach the medium, and registering their zero counters
  // would perturb the deterministic metrics export by shard count.
  for (size_t d = 0; d < 3; ++d) {
    for (size_t t = 0; t < kNumWirelessMessageTypes; ++t) {
      metrics_.msgs[d][t] = registry->GetCounter(
          std::string("net.msgs.") + kDirectionNames[d] + "." +
          MessageTypeName(static_cast<MessageType>(t)));
    }
  }
  metrics_.bytes = registry->GetHistogram(
      "net.message_bytes", obs::ExponentialBounds(32.0, 2.0, 12));
  metrics_.broadcast_receptions =
      registry->GetCounter("net.broadcast_receptions");
  metrics_.undeliverable = registry->GetCounter("net.undeliverable_downlinks");
  metrics_attached_ = true;
}

std::string NetworkStatsJson(const NetworkStats& stats) {
  auto field = [](const char* name, uint64_t value) {
    return "\"" + std::string(name) + "\": " + std::to_string(value);
  };
  std::string json = "{";
  json += field("uplink_messages", stats.uplink_messages) + ", ";
  json += field("downlink_messages", stats.downlink_messages) + ", ";
  json += field("broadcast_messages", stats.broadcast_messages) + ", ";
  json += field("uplink_bytes", stats.uplink_bytes) + ", ";
  json += field("downlink_bytes", stats.downlink_bytes) + ", ";
  json += field("broadcast_receptions", stats.broadcast_receptions) + ", ";
  json += field("undeliverable_downlinks", stats.undeliverable_downlinks) +
          ", ";
  json += field("uplink_dropped", stats.uplink_dropped) + ", ";
  json += field("downlink_dropped", stats.downlink_dropped) + ", ";
  json += field("broadcast_dropped", stats.broadcast_dropped) + ", ";
  json += field("delayed_messages", stats.delayed_messages) + ", ";
  json += field("duplicated_messages", stats.duplicated_messages) + ", ";
  json += field("disconnect_events", stats.disconnect_events) + ", ";
  using Reason = NetworkStats::UndeliverableReason;
  auto reason = [&](Reason which) {
    return stats.undeliverable_by_reason[static_cast<size_t>(which)];
  };
  json += "\"undeliverable_by_reason\": {";
  json += field("no_handler", reason(Reason::kNoHandler)) + ", ";
  json += field("receiver_disconnected",
                reason(Reason::kReceiverDisconnected)) + ", ";
  json += field("server_down", reason(Reason::kServerDown));
  json += "}}";
  return json;
}

void WirelessNetwork::RecordMetrics(Direction direction,
                                    const Message& message, size_t bytes) {
  // Server-internal types have no eager counter (see AttachMetrics); they
  // never reach the medium, but guard anyway rather than chase a null.
  if (static_cast<size_t>(message.type) >= kNumWirelessMessageTypes) return;
  metrics_.msgs[static_cast<size_t>(direction)]
              [static_cast<size_t>(message.type)]
                  ->Increment();
  metrics_.bytes->Observe(static_cast<double>(bytes));
}

void WirelessNetwork::SendUplink(ObjectId from, Message message) {
  if (observer_) observer_(Direction::kUplink, from, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.uplink_messages;
  stats_.uplink_bytes += bytes;
  ++stats_.messages_by_type[static_cast<size_t>(message.type)];
  if (metrics_attached_) RecordMetrics(Direction::kUplink, message, bytes);
  if (lifecycle_ != nullptr) {
    // A retry while the round is open keeps the original stamp (counted as
    // a restamp), so the measured round trip starts at the first attempt
    // that reached the medium.
    lifecycle_->Stamp(obs::LifecycleTracker::kUplinkRoundTrip, from);
  }
  if (track_per_object_bytes_) {
    stats_.tx_bytes_per_object[from] += bytes;
  }
  if (server_handler_) server_handler_(from, message);
}

bool WirelessNetwork::SendDownlinkTo(ObjectId to, Message message) {
  if (observer_) observer_(Direction::kDownlink, to, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.downlink_messages;
  stats_.downlink_bytes += bytes;
  ++stats_.messages_by_type[static_cast<size_t>(message.type)];
  if (metrics_attached_) RecordMetrics(Direction::kDownlink, message, bytes);
  if (lifecycle_ != nullptr) {
    // The server addressing the object closes its open uplink round; a
    // downlink with no open round is a no-op here, not an error.
    lifecycle_->ResolveIfPending(obs::LifecycleTracker::kUplinkRoundTrip, to);
  }
  if (track_per_object_bytes_) {
    stats_.rx_bytes_per_object[to] += bytes;
  }
  auto it = clients_.find(to);
  if (it == clients_.end()) {
    // The transmission happened (counted above) but nobody decodes it: an
    // observable routing failure rather than a silent no-op.
    ++stats_.undeliverable_downlinks;
    ++stats_.undeliverable_by_reason[static_cast<size_t>(
        NetworkStats::UndeliverableReason::kNoHandler)];
    if (metrics_attached_) metrics_.undeliverable->Increment();
    return false;
  }
  it->second(message);
  return true;
}

void WirelessNetwork::Broadcast(const BaseStation& station, Message message) {
  if (observer_) observer_(Direction::kBroadcast, station.id, message);
  size_t bytes = WireSizeBytes(message);
  ++stats_.downlink_messages;
  ++stats_.broadcast_messages;
  stats_.downlink_bytes += bytes;
  ++stats_.messages_by_type[static_cast<size_t>(message.type)];
  if (metrics_attached_) RecordMetrics(Direction::kBroadcast, message, bytes);
  if (!coverage_query_) return;
  // Collect receivers first: handlers may re-enter the network (e.g. an
  // object replying with an uplink), and must not observe a partially
  // delivered broadcast. The list lives in a depth-indexed pool so nested
  // broadcasts get their own vector without per-call allocation.
  if (broadcast_depth_ == receiver_pool_.size()) receiver_pool_.emplace_back();
  std::vector<ObjectId>& receivers = receiver_pool_[broadcast_depth_];
  ++broadcast_depth_;
  receivers.clear();
  coverage_query_(station.coverage,
                  [&receivers](ObjectId oid) { receivers.push_back(oid); });
  stats_.broadcast_receptions += receivers.size();
  if (metrics_attached_) {
    metrics_.broadcast_receptions->Increment(receivers.size());
  }
  if (track_per_object_bytes_) {
    for (ObjectId oid : receivers) {
      stats_.rx_bytes_per_object[oid] += bytes;
    }
  }
  for (ObjectId oid : receivers) {
    auto it = clients_.find(oid);
    if (it != clients_.end()) it->second(message);
  }
  --broadcast_depth_;
}

}  // namespace mobieyes::net
