#ifndef MOBIEYES_NET_FAULT_INJECTION_H_
#define MOBIEYES_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/random.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/network.h"

namespace mobieyes::net {

// Deterministic description of the faults injected into one run. All rates
// are probabilities per message (or per window for disconnects); a
// default-constructed plan injects nothing. The same seed always produces
// the same fault sequence for the same message sequence, so faulty runs are
// exactly as reproducible as fault-free ones.
struct FaultPlan {
  uint64_t seed = 0xFA17ULL;

  // Per-direction probability that a message is silently lost. The downlink
  // rate applies to one-to-one downlinks and to whole broadcasts alike.
  double uplink_drop_rate = 0.0;
  double downlink_drop_rate = 0.0;

  // Probability that a surviving message is deferred by a uniform
  // 1..max_delay_steps simulation steps instead of delivered inline.
  // Deferred messages are flushed by AdvanceStep in due order. Both fields
  // must be positive for delays to occur.
  double delay_rate = 0.0;
  int max_delay_steps = 0;

  // Probability that a surviving message is delivered twice (the second
  // copy counts as its own transmission on the medium).
  double duplicate_rate = 0.0;

  // Base-station outage windows: every outage_period_steps each station
  // goes dark for outage_duration_steps, at a per-station offset derived
  // from the seed so outages are staggered across stations. Broadcasts from
  // a dark station are lost whole. 0 disables outages.
  int outage_period_steps = 0;
  int outage_duration_steps = 0;

  // Object disconnect windows: in every span of disconnect_period_steps an
  // object is, with probability disconnect_rate, unreachable for
  // disconnect_duration_steps (uplinks from it and downlinks/broadcast
  // receptions to it are lost). Decisions are stateless hashes of
  // (seed, oid, window), so they do not perturb the message-level fault
  // stream. 0 period disables disconnects.
  double disconnect_rate = 0.0;
  int disconnect_period_steps = 0;
  int disconnect_duration_steps = 0;

  // Test knob: force exactly one object offline for the half-open step
  // window [forced_disconnect_from, forced_disconnect_until). Lets protocol
  // tests stage a deterministic disconnect/reconnect without probabilistic
  // draws.
  ObjectId forced_disconnect_oid = kInvalidObjectId;
  int64_t forced_disconnect_from = 0;
  int64_t forced_disconnect_until = 0;

  // --- Process-death events (crash recovery, DESIGN.md §9) -----------------

  // Server crash: the mediator process dies at the start of step
  // server_crash_step and is restored from its durable snapshot
  // server_recovery_steps later (0 = restored within the same step, before
  // any of that step's traffic — the zero-downtime case used by the
  // byte-identity recovery tests). While the server is down, uplinks —
  // including deferred ones coming due — are undeliverable, not "dropped":
  // the link worked, the endpoint was dead. -1 disables the crash.
  int64_t server_crash_step = -1;
  int server_recovery_steps = 0;

  // Client restarts: with probability client_restart_rate an object
  // cold-restarts at any given step, losing its volatile state (LQT,
  // pending uplinks, hasMQ). Decisions are stateless hashes of
  // (seed, oid, step) so they do not perturb the message-level fault
  // stream. The forced pair restarts exactly one object at one step for
  // deterministic tests.
  double client_restart_rate = 0.0;
  ObjectId forced_restart_oid = kInvalidObjectId;
  int64_t forced_restart_step = -1;

  // True when any fault can occur. An inactive plan makes FaultyNetwork
  // behave bit-for-bit like the plain WirelessNetwork: no RNG is consumed
  // and nothing is deferred, so a --drop-rate 0 run is byte-identical to a
  // fault-free one.
  bool active() const {
    return uplink_drop_rate > 0.0 || downlink_drop_rate > 0.0 ||
           (delay_rate > 0.0 && max_delay_steps > 0) ||
           duplicate_rate > 0.0 ||
           (outage_period_steps > 0 && outage_duration_steps > 0) ||
           (disconnect_rate > 0.0 && disconnect_period_steps > 0 &&
            disconnect_duration_steps > 0) ||
           forced_disconnect_oid != kInvalidObjectId ||
           server_crash_step >= 0 || client_restart_rate > 0.0 ||
           forced_restart_oid != kInvalidObjectId;
  }
};

// WirelessNetwork that injects the faults described by a FaultPlan between
// senders and receivers: drops, bounded delays, duplicates, base-station
// outages and object disconnects. Every fault outcome is recorded in
// NetworkStats (and, when attached, the metrics registry), so accuracy
// degradation can always be correlated with the loss that caused it.
//
// The simulation clock drives the wrapper through AdvanceStep: messages
// sent before the first AdvanceStep call (query installation during setup)
// pass through unfaulted, and deferred deliveries flush when their due step
// is reached. Within one step, delivery is synchronous exactly like the
// base class.
class FaultyNetwork : public WirelessNetwork {
 public:
  explicit FaultyNetwork(FaultPlan plan)
      : plan_(plan), rng_(plan.seed ^ 0x9E3779B97F4A7C15ULL) {}

  const FaultPlan& plan() const { return plan_; }

  // Advances the fault clock to `step` (monotone), flushes deferred
  // deliveries that have come due, and accounts disconnect transitions.
  // Call once per simulation step, after the world advanced.
  void AdvanceStep(int64_t step);

  int64_t current_step() const { return step_; }

  // Whether `oid` is inside a disconnect window at `step` (stateless; the
  // same inputs always agree).
  bool IsDisconnected(ObjectId oid, int64_t step) const;

  // Whether station `sid` is inside an outage window at `step`.
  bool InOutage(BaseStationId sid, int64_t step) const;

  // Whether `oid` cold-restarts at `step` (stateless hash, plus the forced
  // test pair). The simulation polls this each step and calls
  // Client::Reset() on hits.
  bool ShouldRestartClient(ObjectId oid, int64_t step) const;

  // The simulation flips this while the server process is down; uplinks
  // (live or deferred coming due) are then recorded as undeliverable with
  // reason kServerDown instead of reaching the dead handler.
  void set_server_down(bool down) { server_down_ = down; }
  bool server_down() const { return server_down_; }

  // Wraps the query so broadcasts skip disconnected objects.
  void set_coverage_query(CoverageQuery query) override;

  void SendUplink(ObjectId from, Message message) override;
  bool SendDownlinkTo(ObjectId to, Message message) override;
  void Broadcast(const BaseStation& station, Message message) override;

  // Registers the base instruments plus fault counters ("net.fault.*").
  void AttachMetrics(obs::MetricsRegistry* registry) override;

 private:
  enum class Kind { kUplink, kDownlink, kBroadcast };

  struct Deferred {
    int64_t due_step = 0;
    Kind kind = Kind::kUplink;
    ObjectId party = kInvalidObjectId;  // sender (uplink) / recipient
    BaseStation station;                // kBroadcast only
    Message message;
  };

  bool FaultsApply() const { return step_ >= 0 && plan_.active(); }
  void RecordDrop(Kind kind, const Message& message);
  void RecordUndeliverable(NetworkStats::UndeliverableReason reason);
  // Draws the delay decision; when delayed, enqueues `copies` deliveries of
  // the message and returns true.
  bool MaybeDefer(Kind kind, ObjectId party, const BaseStation* station,
                  const Message& message, int copies);
  void DeliverDeferred(Deferred& entry);
  void AccountDisconnectTransitions(int64_t step);

  FaultPlan plan_;
  Rng rng_;
  int64_t step_ = -1;  // faults apply once AdvanceStep has run
  bool server_down_ = false;
  std::deque<Deferred> deferred_;

  // Registered object ids in deterministic (sorted) order, for the per-step
  // disconnect-transition scan; rebuilt when registrations change.
  std::vector<ObjectId> client_order_;

  struct FaultMetrics {
    obs::Counter* dropped = nullptr;
    obs::Counter* delayed = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* disconnects = nullptr;
    obs::Counter* dead_endpoint = nullptr;
  };
  FaultMetrics fault_metrics_;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_FAULT_INJECTION_H_
