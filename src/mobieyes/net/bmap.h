#ifndef MOBIEYES_NET_BMAP_H_
#define MOBIEYES_NET_BMAP_H_

#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/base_station.h"

namespace mobieyes::net {

// Bmap: grid cell -> set of base stations covering it (paper §2.2). Also
// provides the "minimal set of base stations covering a monitoring region"
// used for query installation and focal-change broadcasts (§3.3).
class Bmap {
 public:
  // Precomputes station sets for every grid cell. Returns Internal if some
  // cell is covered by no station (the layout must cover the universe).
  static Result<Bmap> Make(const geo::Grid& grid,
                           const BaseStationLayout& layout);

  // Stations whose coverage circle intersects cell c.
  const std::vector<BaseStationId>& StationsForCell(
      const geo::CellCoord& c) const;

  // Stations that jointly cover the full *area* of `region`, so that every
  // object inside it receives a broadcast sent through them: the stations
  // whose own lattice square overlaps the region with positive area. Each
  // coverage circle circumscribes its lattice square, so the union of the
  // selected circles covers the region; the count scales with region area /
  // station area, which is the mechanism behind Figs. 4 and 8.
  std::vector<BaseStationId> MinimalCover(const geo::CellRange& region) const;

 private:
  Bmap(const geo::Grid* grid, const BaseStationLayout* layout,
       std::vector<std::vector<BaseStationId>> cells)
      : grid_(grid), layout_(layout), cells_(std::move(cells)) {}

  const geo::Grid* grid_;
  const BaseStationLayout* layout_;
  // Row-major per-cell station lists.
  std::vector<std::vector<BaseStationId>> cells_;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_BMAP_H_
