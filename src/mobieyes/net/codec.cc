#include "mobieyes/net/codec.h"

#include <cstring>

namespace mobieyes::net {

namespace {

// --- Little-endian primitive writers/readers --------------------------------

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }

  void Point(const geo::Point& p) {
    F64(p.x);
    F64(p.y);
  }
  void Vec(const geo::Vec2& v) {
    F64(v.x);
    F64(v.y);
  }
  void Cell(const geo::CellCoord& c) {
    I32(c.i);
    I32(c.j);
  }
  void Range(const geo::CellRange& r) {
    I32(r.i_lo);
    I32(r.i_hi);
    I32(r.j_lo);
    I32(r.j_hi);
  }
  void State(const FocalState& s) {
    Point(s.pos);
    Vec(s.vel);
    F64(s.tm);
  }
  void Region(const geo::QueryRegion& region) {
    U8(region.shape == geo::QueryRegion::Shape::kCircle ? 0 : 1);
    if (region.shape == geo::QueryRegion::Shape::kCircle) {
      F64(region.radius);
      F64(0.0);
    } else {
      F64(region.half_w);
      F64(region.half_h);
    }
  }
  void Info(const QueryInfo& info) {
    I64(info.qid);
    I64(info.focal_oid);
    State(info.focal);
    Region(info.region);
    F64(info.filter_threshold);
    Range(info.mon_region);
    F64(info.focal_max_speed);
  }
  // The static (kinematics-free) part of a QueryInfo, used by the lazy
  // velocity-change expansion where the focal state is carried once.
  void InfoStatic(const QueryInfo& info) {
    I64(info.qid);
    I64(info.focal_oid);
    Region(info.region);
    F64(info.filter_threshold);
    Range(info.mon_region);
    F64(info.focal_max_speed);
  }

 private:
  void Raw(const void* data, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + n);
  }

  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint16_t v = 0;
    Raw(&v, 2);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, 8);
    return v;
  }

  geo::Point Point() {
    geo::Point p;
    p.x = F64();
    p.y = F64();
    return p;
  }
  geo::Vec2 Vec() {
    geo::Vec2 v;
    v.x = F64();
    v.y = F64();
    return v;
  }
  geo::CellCoord Cell() {
    geo::CellCoord c;
    c.i = I32();
    c.j = I32();
    return c;
  }
  geo::CellRange Range() {
    geo::CellRange r;
    r.i_lo = I32();
    r.i_hi = I32();
    r.j_lo = I32();
    r.j_hi = I32();
    return r;
  }
  FocalState State() {
    FocalState s;
    s.pos = Point();
    s.vel = Vec();
    s.tm = F64();
    return s;
  }
  geo::QueryRegion Region() {
    uint8_t shape = U8();
    double a = F64();
    double b = F64();
    if (shape == 0) {
      return geo::QueryRegion::MakeCircle(a);
    }
    return geo::QueryRegion::MakeRectangle(2.0 * a, 2.0 * b);
  }
  QueryInfo Info() {
    QueryInfo info;
    info.qid = I64();
    info.focal_oid = I64();
    info.focal = State();
    info.region = Region();
    info.filter_threshold = F64();
    info.mon_region = Range();
    info.focal_max_speed = F64();
    return info;
  }
  QueryInfo InfoStatic() {
    QueryInfo info;
    info.qid = I64();
    info.focal_oid = I64();
    info.region = Region();
    info.filter_threshold = F64();
    info.mon_region = Range();
    info.focal_max_speed = F64();
    return info;
  }

 private:
  void Raw(void* out, size_t n) {
    if (pos_ + n > size_) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

struct EncodeBody {
  Writer& w;
  uint16_t count = 0;  // element count lifted into the header
  uint8_t flags = 0;

  void operator()(const QueryInstallRequest& p) {
    w.I64(p.oid);
    w.Region(p.region);
    w.F64(p.filter_threshold);
  }
  void operator()(const PositionReport& p) {
    w.I64(p.oid);
    w.Point(p.pos);
  }
  void operator()(const PositionVelocityReport& p) {
    w.I64(p.oid);
    w.State(p.state);
    w.F64(p.max_speed);
  }
  void operator()(const VelocityChangeReport& p) {
    w.I64(p.oid);
    w.State(p.state);
  }
  void operator()(const CellChangeReport& p) {
    w.I64(p.oid);
    w.Cell(p.prev_cell);
    w.Cell(p.new_cell);
  }
  void operator()(const ResultBitmapReport& p) {
    count = static_cast<uint16_t>(p.qids.size());
    w.I64(p.oid);
    for (QueryId qid : p.qids) w.I64(qid);
    // ceil(n/8) bitmap bytes, little-endian bit order.
    for (size_t byte = 0; byte < (p.qids.size() + 7) / 8; ++byte) {
      w.U8(static_cast<uint8_t>(p.bitmap >> (8 * byte)));
    }
  }
  void operator()(const FocalNotification& p) {
    w.I64(p.oid);
    w.I64(p.qid);
  }
  void operator()(const PositionVelocityRequest& p) { w.I64(p.oid); }
  void operator()(const QueryInstallBroadcast& p) {
    count = static_cast<uint16_t>(p.queries.size());
    for (const QueryInfo& info : p.queries) w.Info(info);
  }
  void operator()(const VelocityChangeBroadcast& p) {
    count = static_cast<uint16_t>(p.queries.size());
    flags = p.carries_query_info ? 1 : 0;
    w.I64(p.focal_oid);
    w.State(p.state);
    if (p.carries_query_info) {
      for (const QueryInfo& info : p.queries) w.InfoStatic(info);
    }
  }
  void operator()(const QueryUpdateBroadcast& p) {
    count = static_cast<uint16_t>(p.queries.size());
    for (const QueryInfo& info : p.queries) w.Info(info);
  }
  void operator()(const QueryRemoveBroadcast& p) {
    count = static_cast<uint16_t>(p.qids.size());
    for (QueryId qid : p.qids) w.I64(qid);
  }
  void operator()(const NewQueriesNotification& p) {
    count = static_cast<uint16_t>(p.queries.size());
    w.I64(p.oid);
    for (const QueryInfo& info : p.queries) w.Info(info);
  }
  void operator()(const UplinkAck& p) {
    w.I64(p.oid);
    w.U32(p.seq);
  }
  void operator()(const LqtReconcileRequest& p) {
    // Header count carries the known list; the target subset's length rides
    // in the body as a u16 (it never exceeds the known list).
    count = static_cast<uint16_t>(p.known_qids.size());
    w.I64(p.oid);
    w.Cell(p.cell);
    w.U16(static_cast<uint16_t>(p.target_qids.size()));
    for (QueryId qid : p.target_qids) w.I64(qid);
    for (QueryId qid : p.known_qids) w.I64(qid);
  }
};

}  // namespace

std::vector<uint8_t> MessageCodec::Encode(const Message& message) {
  // Body first so the header can carry count/flags and the body length.
  std::vector<uint8_t> body;
  Writer body_writer(&body);
  EncodeBody encoder{body_writer};
  std::visit(encoder, message.payload);

  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + body.size());
  Writer header(&out);
  header.U32(kMagic);
  header.U8(static_cast<uint8_t>(message.type));
  header.U8(encoder.flags);
  header.U16(encoder.count);
  header.U64(static_cast<uint64_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<Message> MessageCodec::Decode(const std::vector<uint8_t>& buffer) {
  Reader r(buffer.data(), buffer.size());
  if (buffer.size() < kHeaderBytes) {
    return Status::InvalidArgument("buffer shorter than header");
  }
  if (r.U32() != kMagic) {
    return Status::InvalidArgument("bad magic number");
  }
  uint8_t raw_type = r.U8();
  uint8_t flags = r.U8();
  uint16_t count = r.U16();
  uint64_t body_size = r.U64();
  if (body_size != buffer.size() - kHeaderBytes) {
    return Status::InvalidArgument("body length mismatch");
  }
  if (raw_type > static_cast<uint8_t>(MessageType::kLqtReconcileRequest)) {
    return Status::InvalidArgument("unknown message type");
  }
  auto type = static_cast<MessageType>(raw_type);

  MessagePayload payload;
  switch (type) {
    case MessageType::kQueryInstallRequest: {
      QueryInstallRequest p;
      p.oid = r.I64();
      p.region = r.Region();
      p.filter_threshold = r.F64();
      payload = p;
      break;
    }
    case MessageType::kPositionReport: {
      PositionReport p;
      p.oid = r.I64();
      p.pos = r.Point();
      payload = p;
      break;
    }
    case MessageType::kPositionVelocityReport: {
      PositionVelocityReport p;
      p.oid = r.I64();
      p.state = r.State();
      p.max_speed = r.F64();
      payload = p;
      break;
    }
    case MessageType::kVelocityChangeReport: {
      VelocityChangeReport p;
      p.oid = r.I64();
      p.state = r.State();
      payload = p;
      break;
    }
    case MessageType::kCellChangeReport: {
      CellChangeReport p;
      p.oid = r.I64();
      p.prev_cell = r.Cell();
      p.new_cell = r.Cell();
      payload = p;
      break;
    }
    case MessageType::kResultBitmapReport: {
      ResultBitmapReport p;
      p.oid = r.I64();
      for (uint16_t k = 0; k < count; ++k) p.qids.push_back(r.I64());
      for (size_t byte = 0; byte < (count + 7u) / 8u; ++byte) {
        p.bitmap |= static_cast<uint64_t>(r.U8()) << (8 * byte);
      }
      payload = p;
      break;
    }
    case MessageType::kFocalNotification: {
      FocalNotification p;
      p.oid = r.I64();
      p.qid = r.I64();
      payload = p;
      break;
    }
    case MessageType::kPositionVelocityRequest: {
      PositionVelocityRequest p;
      p.oid = r.I64();
      payload = p;
      break;
    }
    case MessageType::kQueryInstallBroadcast: {
      QueryInstallBroadcast p;
      for (uint16_t k = 0; k < count; ++k) p.queries.push_back(r.Info());
      payload = p;
      break;
    }
    case MessageType::kVelocityChangeBroadcast: {
      VelocityChangeBroadcast p;
      p.focal_oid = r.I64();
      p.state = r.State();
      p.carries_query_info = (flags & 1) != 0;
      if (p.carries_query_info) {
        for (uint16_t k = 0; k < count; ++k) {
          QueryInfo info = r.InfoStatic();
          info.focal = p.state;  // shared kinematics
          p.queries.push_back(info);
        }
      }
      payload = p;
      break;
    }
    case MessageType::kQueryUpdateBroadcast: {
      QueryUpdateBroadcast p;
      for (uint16_t k = 0; k < count; ++k) p.queries.push_back(r.Info());
      payload = p;
      break;
    }
    case MessageType::kQueryRemoveBroadcast: {
      QueryRemoveBroadcast p;
      for (uint16_t k = 0; k < count; ++k) p.qids.push_back(r.I64());
      payload = p;
      break;
    }
    case MessageType::kNewQueriesNotification: {
      NewQueriesNotification p;
      p.oid = r.I64();
      for (uint16_t k = 0; k < count; ++k) p.queries.push_back(r.Info());
      payload = p;
      break;
    }
    case MessageType::kUplinkAck: {
      UplinkAck p;
      p.oid = r.I64();
      p.seq = r.U32();
      payload = p;
      break;
    }
    case MessageType::kLqtReconcileRequest: {
      LqtReconcileRequest p;
      p.oid = r.I64();
      p.cell = r.Cell();
      uint16_t targets = r.U16();
      if (targets > count) {
        return Status::InvalidArgument("target count exceeds known count");
      }
      for (uint16_t k = 0; k < targets; ++k) p.target_qids.push_back(r.I64());
      for (uint16_t k = 0; k < count; ++k) p.known_qids.push_back(r.I64());
      payload = p;
      break;
    }
  }
  if (!r.ok()) {
    return Status::InvalidArgument("truncated message body");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after body");
  }
  return Message{type, std::move(payload)};
}

}  // namespace mobieyes::net
