#include "mobieyes/net/codec.h"

#include <algorithm>

namespace mobieyes::net {

namespace {

struct EncodeBody {
  ByteWriter& w;
  uint16_t count = 0;  // element count lifted into the header
  uint8_t flags = 0;

  void operator()(const QueryInstallRequest& p) {
    w.I64(p.oid);
    w.Region(p.region);
    w.F64(p.filter_threshold);
  }
  void operator()(const PositionReport& p) {
    w.I64(p.oid);
    w.Point(p.pos);
  }
  void operator()(const PositionVelocityReport& p) {
    w.I64(p.oid);
    w.State(p.state);
    w.F64(p.max_speed);
  }
  void operator()(const VelocityChangeReport& p) {
    w.I64(p.oid);
    w.State(p.state);
  }
  void operator()(const CellChangeReport& p) {
    w.I64(p.oid);
    w.Cell(p.prev_cell);
    w.Cell(p.new_cell);
  }
  void operator()(const ResultBitmapReport& p) {
    count = static_cast<uint16_t>(p.qids.size());
    w.I64(p.oid);
    for (QueryId qid : p.qids) w.I64(qid);
    // ceil(n/8) bitmap bytes, little-endian bit order.
    for (size_t byte = 0; byte < (p.qids.size() + 7) / 8; ++byte) {
      w.U8(static_cast<uint8_t>(p.bitmap >> (8 * byte)));
    }
  }
  void operator()(const FocalNotification& p) {
    w.I64(p.oid);
    w.I64(p.qid);
  }
  void operator()(const PositionVelocityRequest& p) { w.I64(p.oid); }
  void operator()(const QueryInstallBroadcast& p) {
    count = static_cast<uint16_t>(p.queries.size());
    for (const QueryInfo& info : p.queries) w.Info(info);
  }
  void operator()(const VelocityChangeBroadcast& p) {
    count = static_cast<uint16_t>(p.queries.size());
    flags = p.carries_query_info ? 1 : 0;
    w.I64(p.focal_oid);
    w.State(p.state);
    if (p.carries_query_info) {
      for (const QueryInfo& info : p.queries) w.InfoStatic(info);
    }
  }
  void operator()(const QueryUpdateBroadcast& p) {
    count = static_cast<uint16_t>(p.queries.size());
    for (const QueryInfo& info : p.queries) w.Info(info);
  }
  void operator()(const QueryRemoveBroadcast& p) {
    count = static_cast<uint16_t>(p.qids.size());
    for (QueryId qid : p.qids) w.I64(qid);
  }
  void operator()(const NewQueriesNotification& p) {
    count = static_cast<uint16_t>(p.queries.size());
    w.I64(p.oid);
    for (const QueryInfo& info : p.queries) w.Info(info);
  }
  void operator()(const UplinkAck& p) {
    w.I64(p.oid);
    w.U32(p.seq);
  }
  void operator()(const LqtReconcileRequest& p) {
    // Header count carries the known list; the target subset's length rides
    // in the body as a u16 (it never exceeds the known list).
    count = static_cast<uint16_t>(p.known_qids.size());
    flags = p.cold_start ? 1 : 0;
    w.I64(p.oid);
    w.Cell(p.cell);
    w.U16(static_cast<uint16_t>(p.target_qids.size()));
    for (QueryId qid : p.target_qids) w.I64(qid);
    for (QueryId qid : p.known_qids) w.I64(qid);
  }
  void operator()(const ShardHandoff& p) {
    count = static_cast<uint16_t>(p.queries.size());
    w.I32(p.from_shard);
    w.I32(p.to_shard);
    w.I64(p.oid);
    w.State(p.state);
    w.F64(p.max_speed);
    w.Cell(p.cell);
    for (const ShardQueryState& q : p.queries) {
      w.I64(q.qid);
      w.I64(q.focal_oid);
      w.Region(q.region);
      w.F64(q.filter_threshold);
      w.Cell(q.curr_cell);
      w.Range(q.mon_region);
      w.F64(q.expires_at);
      w.F64(q.lease_renew_at);
      // In-memory order comes from a hash set; sort a copy so the encoded
      // bytes are deterministic.
      std::vector<ObjectId> result = q.result;
      std::sort(result.begin(), result.end());
      w.U32(static_cast<uint32_t>(result.size()));
      for (ObjectId oid : result) w.I64(oid);
    }
  }
};

}  // namespace

std::vector<uint8_t> MessageCodec::Encode(const Message& message) {
  std::vector<uint8_t> scratch;
  std::vector<uint8_t> out;
  EncodeInto(message, &scratch, &out);
  return out;
}

void MessageCodec::EncodeInto(const Message& message,
                              std::vector<uint8_t>* scratch,
                              std::vector<uint8_t>* out) {
  // Body first so the header can carry count/flags and the body length.
  std::vector<uint8_t>& body = *scratch;
  body.clear();
  ByteWriter body_writer(&body);
  EncodeBody encoder{body_writer};
  std::visit(encoder, message.payload);

  out->clear();
  out->reserve(kHeaderBytes + body.size());
  ByteWriter header(out);
  header.U32(kMagic);
  header.U8(static_cast<uint8_t>(message.type));
  header.U8(encoder.flags);
  header.U16(encoder.count);
  header.U64(static_cast<uint64_t>(body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

Result<Message> MessageCodec::Decode(const std::vector<uint8_t>& buffer) {
  ByteReader r(buffer.data(), buffer.size());
  if (buffer.size() < kHeaderBytes) {
    return Status::InvalidArgument("buffer shorter than header");
  }
  if (r.U32() != kMagic) {
    return Status::InvalidArgument("bad magic number");
  }
  uint8_t raw_type = r.U8();
  uint8_t flags = r.U8();
  uint16_t count = r.U16();
  uint64_t body_size = r.U64();
  if (body_size != buffer.size() - kHeaderBytes) {
    return Status::InvalidArgument("body length mismatch");
  }
  if (raw_type > static_cast<uint8_t>(MessageType::kShardHandoff)) {
    return Status::InvalidArgument("unknown message type");
  }
  auto type = static_cast<MessageType>(raw_type);

  // Count loops below stop as soon as the reader fails, so a header lying
  // about its element count cannot force large garbage allocations.
  MessagePayload payload;
  switch (type) {
    case MessageType::kQueryInstallRequest: {
      QueryInstallRequest p;
      p.oid = r.I64();
      p.region = r.Region();
      p.filter_threshold = r.F64();
      payload = p;
      break;
    }
    case MessageType::kPositionReport: {
      PositionReport p;
      p.oid = r.I64();
      p.pos = r.Point();
      payload = p;
      break;
    }
    case MessageType::kPositionVelocityReport: {
      PositionVelocityReport p;
      p.oid = r.I64();
      p.state = r.State();
      p.max_speed = r.F64();
      payload = p;
      break;
    }
    case MessageType::kVelocityChangeReport: {
      VelocityChangeReport p;
      p.oid = r.I64();
      p.state = r.State();
      payload = p;
      break;
    }
    case MessageType::kCellChangeReport: {
      CellChangeReport p;
      p.oid = r.I64();
      p.prev_cell = r.Cell();
      p.new_cell = r.Cell();
      payload = p;
      break;
    }
    case MessageType::kResultBitmapReport: {
      // Encode truncates to 64 queries (the bitmap capacity); a larger
      // count would shift past the uint64 below — reject it outright.
      if (count > 64) {
        return Status::InvalidArgument("bitmap report exceeds 64 queries");
      }
      ResultBitmapReport p;
      p.oid = r.I64();
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        p.qids.push_back(r.I64());
      }
      for (size_t byte = 0; byte < (count + 7u) / 8u && r.ok(); ++byte) {
        p.bitmap |= static_cast<uint64_t>(r.U8()) << (8 * byte);
      }
      payload = p;
      break;
    }
    case MessageType::kFocalNotification: {
      FocalNotification p;
      p.oid = r.I64();
      p.qid = r.I64();
      payload = p;
      break;
    }
    case MessageType::kPositionVelocityRequest: {
      PositionVelocityRequest p;
      p.oid = r.I64();
      payload = p;
      break;
    }
    case MessageType::kQueryInstallBroadcast: {
      QueryInstallBroadcast p;
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        p.queries.push_back(r.Info());
      }
      payload = p;
      break;
    }
    case MessageType::kVelocityChangeBroadcast: {
      VelocityChangeBroadcast p;
      p.focal_oid = r.I64();
      p.state = r.State();
      p.carries_query_info = (flags & 1) != 0;
      if (p.carries_query_info) {
        for (uint16_t k = 0; k < count && r.ok(); ++k) {
          QueryInfo info = r.InfoStatic();
          info.focal = p.state;  // shared kinematics
          p.queries.push_back(info);
        }
      }
      payload = p;
      break;
    }
    case MessageType::kQueryUpdateBroadcast: {
      QueryUpdateBroadcast p;
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        p.queries.push_back(r.Info());
      }
      payload = p;
      break;
    }
    case MessageType::kQueryRemoveBroadcast: {
      QueryRemoveBroadcast p;
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        p.qids.push_back(r.I64());
      }
      payload = p;
      break;
    }
    case MessageType::kNewQueriesNotification: {
      NewQueriesNotification p;
      p.oid = r.I64();
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        p.queries.push_back(r.Info());
      }
      payload = p;
      break;
    }
    case MessageType::kUplinkAck: {
      UplinkAck p;
      p.oid = r.I64();
      p.seq = r.U32();
      payload = p;
      break;
    }
    case MessageType::kLqtReconcileRequest: {
      LqtReconcileRequest p;
      p.cold_start = (flags & 1) != 0;
      p.oid = r.I64();
      p.cell = r.Cell();
      uint16_t targets = r.U16();
      if (targets > count) {
        return Status::InvalidArgument("target count exceeds known count");
      }
      for (uint16_t k = 0; k < targets && r.ok(); ++k) {
        p.target_qids.push_back(r.I64());
      }
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        p.known_qids.push_back(r.I64());
      }
      payload = p;
      break;
    }
    case MessageType::kShardHandoff: {
      ShardHandoff p;
      p.from_shard = r.I32();
      p.to_shard = r.I32();
      p.oid = r.I64();
      p.state = r.State();
      p.max_speed = r.F64();
      p.cell = r.Cell();
      for (uint16_t k = 0; k < count && r.ok(); ++k) {
        ShardQueryState q;
        q.qid = r.I64();
        q.focal_oid = r.I64();
        q.region = r.Region();
        q.filter_threshold = r.F64();
        q.curr_cell = r.Cell();
        q.mon_region = r.Range();
        q.expires_at = r.F64();
        q.lease_renew_at = r.F64();
        uint32_t results = r.U32();
        // A result id costs kIdBytes on the wire; cap the loop by the bytes
        // actually present so a lying count cannot balloon the allocation.
        if (results > r.remaining() / kIdBytes) {
          return Status::InvalidArgument("result count exceeds body");
        }
        for (uint32_t m = 0; m < results && r.ok(); ++m) {
          q.result.push_back(r.I64());
        }
        p.queries.push_back(std::move(q));
      }
      payload = std::move(p);
      break;
    }
  }
  if (!r.ok()) {
    return Status::InvalidArgument("truncated or malformed message body");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after body");
  }
  return Message{type, std::move(payload)};
}

}  // namespace mobieyes::net
