#ifndef MOBIEYES_NET_BASE_STATION_H_
#define MOBIEYES_NET_BASE_STATION_H_

#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/status.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/geo/rect.h"

namespace mobieyes::net {

// A base station with a circular coverage area (paper §2.2). A station can
// broadcast to every object inside its coverage circle; an object can send
// uplink traffic when inside at least one station's coverage.
struct BaseStation {
  BaseStationId id = kInvalidBaseStationId;
  geo::Circle coverage;
};

// Lays out base stations on a square lattice with spacing `side` ("base
// station side length", Table 1). Each station's coverage circle
// circumscribes its side x side lattice square (radius side/sqrt(2)), so the
// lattice covers the whole universe of discourse as §2.2 requires.
class BaseStationLayout {
 public:
  // Returns InvalidArgument for non-positive side or empty universe.
  static Result<BaseStationLayout> Make(const geo::Rect& universe,
                                        Miles side);

  const std::vector<BaseStation>& stations() const { return stations_; }
  const BaseStation& station(BaseStationId id) const {
    return stations_[static_cast<size_t>(id)];
  }
  Miles side() const { return side_; }
  int columns() const { return columns_; }
  int rows() const { return rows_; }
  const geo::Rect& universe() const { return universe_; }

  // The side x side lattice square owned by a station; its coverage circle
  // circumscribes (fully covers) exactly this square, which is what makes
  // square-based region covers sound (see Bmap::MinimalCover).
  geo::Rect LatticeSquare(BaseStationId id) const {
    int i = id % columns_;
    int j = id / columns_;
    return geo::Rect{universe_.lx + i * side_, universe_.ly + j * side_,
                     side_, side_};
  }

 private:
  BaseStationLayout(std::vector<BaseStation> stations, Miles side,
                    int columns, int rows, const geo::Rect& universe)
      : stations_(std::move(stations)),
        side_(side),
        columns_(columns),
        rows_(rows),
        universe_(universe) {}

  std::vector<BaseStation> stations_;
  Miles side_;
  int columns_;
  int rows_;
  geo::Rect universe_;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_BASE_STATION_H_
