#include "mobieyes/net/base_station.h"

#include <cmath>
#include <numbers>

namespace mobieyes::net {

Result<BaseStationLayout> BaseStationLayout::Make(const geo::Rect& universe,
                                                  Miles side) {
  if (side <= 0.0) {
    return Status::InvalidArgument("base station side must be positive");
  }
  if (universe.w <= 0.0 || universe.h <= 0.0) {
    return Status::InvalidArgument("universe of discourse must be non-empty");
  }
  auto columns = static_cast<int>(std::ceil(universe.w / side));
  auto rows = static_cast<int>(std::ceil(universe.h / side));
  // Circumscribing radius of the side x side lattice square, padded by a
  // sub-micrometer relative margin so the closed square — corners
  // included — stays inside the circle under floating-point rounding (a
  // corner point
  // is exactly at distance side/sqrt(2), where 1-ulp rounding of the radius
  // would otherwise drop it out of coverage).
  Miles radius = side / std::numbers::sqrt2 * (1.0 + 1e-9);
  std::vector<BaseStation> stations;
  stations.reserve(static_cast<size_t>(columns) * rows);
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < columns; ++i) {
      BaseStation station;
      station.id = static_cast<BaseStationId>(stations.size());
      station.coverage = geo::Circle{
          geo::Point{universe.lx + (i + 0.5) * side,
                     universe.ly + (j + 0.5) * side},
          radius};
      stations.push_back(station);
    }
  }
  return BaseStationLayout(std::move(stations), side, columns, rows,
                           universe);
}

}  // namespace mobieyes::net
