#ifndef MOBIEYES_NET_MESSAGE_H_
#define MOBIEYES_NET_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <variant>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/units.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/geo/point.h"
#include "mobieyes/geo/query_region.h"

namespace mobieyes::net {

// ---------------------------------------------------------------------------
// Payloads. These mirror the information flows of §3 of the paper. Uplink
// messages go from a moving object to the server; downlink messages go from
// the server to one object (one-to-one) or to all objects under a base
// station (broadcast).
// ---------------------------------------------------------------------------

// Kinematic state sample of an object, recorded object-side at time tm.
struct FocalState {
  geo::Point pos;
  geo::Vec2 vel;  // miles/second
  Seconds tm = 0.0;

  // Dead-reckoned position at time `now` (paper §3.6).
  geo::Point PredictPosition(Seconds now) const {
    return pos + vel * (now - tm);
  }
};

// Everything an object needs to install one query into its LQT.
struct QueryInfo {
  QueryId qid = kInvalidQueryId;
  ObjectId focal_oid = kInvalidObjectId;
  FocalState focal;
  geo::QueryRegion region;
  // Filter: a target object with property attr satisfies the filter iff
  // attr <= filter_threshold (selectivity = threshold for uniform attr).
  double filter_threshold = 1.0;
  geo::CellRange mon_region;
  // Upper bound on the focal object's speed (miles/second), for the safe
  // period optimization (§4.2).
  double focal_max_speed = 0.0;
};

// --- Uplink payloads --------------------------------------------------------

// A user on a mobile device poses a new query bound to itself.
struct QueryInstallRequest {
  ObjectId oid = kInvalidObjectId;
  geo::QueryRegion region;
  double filter_threshold = 1.0;
};

// Plain position sample, used by the centralized "naive" baseline where
// every object reports its position to the server each time step (§5.3).
struct PositionReport {
  ObjectId oid = kInvalidObjectId;
  geo::Point pos;
};

// Response to a PositionVelocityRequest during installation (§3.3 step 3).
struct PositionVelocityReport {
  ObjectId oid = kInvalidObjectId;
  FocalState state;
  double max_speed = 0.0;
};

// Focal object's significant velocity-vector change (dead reckoning, §3.4).
struct VelocityChangeReport {
  ObjectId oid = kInvalidObjectId;
  FocalState state;
};

// Object moved to a new grid cell (§3.5).
struct CellChangeReport {
  ObjectId oid = kInvalidObjectId;
  geo::CellCoord prev_cell;
  geo::CellCoord new_cell;
};

// Differential result update: bit k of `bitmap` is the new containment
// status for qids[k]. Grouped queries (§4.1) share one report; ungrouped
// queries send a report with a single qid.
struct ResultBitmapReport {
  ObjectId oid = kInvalidObjectId;
  std::vector<QueryId> qids;
  uint64_t bitmap = 0;
};

// --- Downlink payloads ------------------------------------------------------

// Tells the focal object that a query is now bound to it (sets hasMQ).
struct FocalNotification {
  ObjectId oid = kInvalidObjectId;
  QueryId qid = kInvalidQueryId;
};

// Server asks an object for its current kinematics (§3.3 step 3).
struct PositionVelocityRequest {
  ObjectId oid = kInvalidObjectId;
};

// Broadcast installing new queries over their monitoring regions.
struct QueryInstallBroadcast {
  std::vector<QueryInfo> queries;
};

// Broadcast relaying a focal object's velocity change to the monitoring
// regions of its queries. Under eager propagation the receivers already hold
// the queries and only kinematics are carried; under lazy propagation (§3.5)
// the broadcast is expanded with full query info so newly-arrived objects
// can install the queries they missed.
struct VelocityChangeBroadcast {
  ObjectId focal_oid = kInvalidObjectId;
  FocalState state;
  bool carries_query_info = false;  // lazy propagation expansion
  std::vector<QueryInfo> queries;   // only when carries_query_info
};

// Broadcast after a focal object crossed into a new grid cell, sent to the
// union of the old and new monitoring regions (§3.5): receivers install,
// update, or drop the queries depending on their own cell.
struct QueryUpdateBroadcast {
  std::vector<QueryInfo> queries;
};

// Broadcast removing deleted queries.
struct QueryRemoveBroadcast {
  std::vector<QueryId> qids;
};

// One-to-one response under eager propagation: the queries an object must
// newly install after changing its grid cell (§3.5).
struct NewQueriesNotification {
  ObjectId oid = kInvalidObjectId;
  std::vector<QueryInfo> queries;
};

// One-to-one acknowledgement of a tracked uplink (protocol hardening): the
// server echoes the sequence number carried in the uplink's envelope so the
// sender can stop retransmitting it.
struct UplinkAck {
  ObjectId oid = kInvalidObjectId;
  uint32_t seq = 0;
};

// --- Reconciliation (protocol hardening) ------------------------------------

// Periodic uplink letting the server diff an object's LQT against the RQI:
// the object reports its current cell, every query id it holds, and the
// subset it currently considers itself a target of. The server answers with
// a one-to-one NewQueriesNotification for missing queries and a one-to-one
// QueryRemoveBroadcast payload for stale ones, and resynchronizes its result
// membership for the reported queries — this is what lets an object that was
// disconnected (and missed installs, updates and removals) rebuild its LQT.
struct LqtReconcileRequest {
  ObjectId oid = kInvalidObjectId;
  geo::CellCoord cell;
  std::vector<QueryId> known_qids;
  std::vector<QueryId> target_qids;  // subset of known_qids
  // Set by a client that just cold-restarted (Client::Reset): its previous
  // containment state is gone, so the server must clear the object from all
  // result sets (stale memberships cannot be trusted) and re-assert hasMQ
  // if the object is focal. Carried in the header flags byte — no body
  // bytes, so WireSizeBytes is unchanged.
  bool cold_start = false;
};

// --- Inter-shard backplane (DESIGN.md §10) ----------------------------------

// One hosted query's full SQT row, as carried by a shard handoff. Mirrors
// core SqtEntry field for field; the result set travels as a plain id list.
struct ShardQueryState {
  QueryId qid = kInvalidQueryId;
  ObjectId focal_oid = kInvalidObjectId;
  geo::QueryRegion region;
  double filter_threshold = 1.0;
  geo::CellCoord curr_cell;
  geo::CellRange mon_region;
  Seconds expires_at = std::numeric_limits<Seconds>::infinity();
  Seconds lease_renew_at = std::numeric_limits<Seconds>::infinity();
  // Current result membership. Order is unspecified in memory (it is drained
  // from a hash set); the codec sorts on encode so wire bytes are
  // deterministic.
  std::vector<ObjectId> result;
};

// Server-internal handoff migrating a focal object — its FOT row and every
// query bound to it — from one shard to the cell's new owner when the focal
// crosses a partition boundary. Never traverses the wireless network:
// the ShardRouter delivers it on the coordinator backplane, where it is
// accounted in NetworkStats::inter_shard_* using this wire encoding's size.
struct ShardHandoff {
  int32_t from_shard = 0;
  int32_t to_shard = 0;
  ObjectId oid = kInvalidObjectId;
  FocalState state;
  double max_speed = 0.0;
  geo::CellCoord cell;
  std::vector<ShardQueryState> queries;  // in FOT binding order
};

// ---------------------------------------------------------------------------
// Message envelope
// ---------------------------------------------------------------------------

enum class MessageType {
  kQueryInstallRequest,
  kPositionReport,
  kPositionVelocityReport,
  kVelocityChangeReport,
  kCellChangeReport,
  kResultBitmapReport,
  kFocalNotification,
  kPositionVelocityRequest,
  kQueryInstallBroadcast,
  kVelocityChangeBroadcast,
  kQueryUpdateBroadcast,
  kQueryRemoveBroadcast,
  kNewQueriesNotification,
  kUplinkAck,
  kLqtReconcileRequest,
  // Server-internal (coordinator backplane) — never sent over the air.
  kShardHandoff,
};

// Number of types that can traverse the wireless network. Per-type wireless
// instrumentation (WirelessNetwork::AttachMetrics) sizes to this so the
// deterministic metrics export is identical whatever the shard count.
inline constexpr size_t kNumWirelessMessageTypes =
    static_cast<size_t>(MessageType::kLqtReconcileRequest) + 1;

// Number of MessageType alternatives; used to size per-type counter arrays.
inline constexpr size_t kNumMessageTypes =
    static_cast<size_t>(MessageType::kShardHandoff) + 1;

using MessagePayload =
    std::variant<QueryInstallRequest, PositionReport, PositionVelocityReport,
                 VelocityChangeReport, CellChangeReport, ResultBitmapReport,
                 FocalNotification, PositionVelocityRequest,
                 QueryInstallBroadcast, VelocityChangeBroadcast,
                 QueryUpdateBroadcast, QueryRemoveBroadcast,
                 NewQueriesNotification, UplinkAck, LqtReconcileRequest,
                 ShardHandoff>;

struct Message {
  MessageType type;
  MessagePayload payload;
  // Link-layer sequence number, like the src/dst addresses part of the
  // notional header rather than the payload. Non-zero marks a tracked uplink
  // the server must acknowledge with an UplinkAck echoing this value; zero
  // (the default) is fire-and-forget, the paper's base protocol.
  uint32_t seq = 0;
};

// Convenience constructor deducing `type` from the payload alternative.
Message MakeMessage(MessagePayload payload);

// --- Wire sizes -------------------------------------------------------------
// On-air size model used for the byte/energy accounting of Fig. 9. Field
// sizes follow a plain fixed-width binary encoding.

inline constexpr size_t kHeaderBytes = 16;   // src, dst, type, length
inline constexpr size_t kIdBytes = 8;        // object / query id
inline constexpr size_t kPointBytes = 16;    // two doubles
inline constexpr size_t kVecBytes = 16;      // two doubles
inline constexpr size_t kTimeBytes = 8;      // timestamp
inline constexpr size_t kCellBytes = 8;      // two int32 cell indices
inline constexpr size_t kSeqBytes = 4;       // ack sequence number
inline constexpr size_t kCellRangeBytes = 16;  // four int32 bounds
inline constexpr size_t kScalarBytes = 8;    // threshold / speed
inline constexpr size_t kRegionBytes = 1 + 2 * kScalarBytes;  // shape + extents
inline constexpr size_t kFocalStateBytes = kPointBytes + kVecBytes + kTimeBytes;
inline constexpr size_t kQueryInfoBytes = kIdBytes * 2 + kFocalStateBytes +
                                          kRegionBytes + kScalarBytes * 2 +
                                          kCellRangeBytes;

// Total on-air bytes for a message, including the header.
size_t WireSizeBytes(const Message& message);

// Human-readable message type name (diagnostics and tests).
const char* MessageTypeName(MessageType type);

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_MESSAGE_H_
