#ifndef MOBIEYES_NET_CODEC_H_
#define MOBIEYES_NET_CODEC_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/net/message.h"

namespace mobieyes::net {

// --- Little-endian primitive writers/readers --------------------------------
// Shared by the wire codec below and by the server checkpoint format
// (core::Snapshot), so both speak the same fixed-width binary dialect.

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }

  void Point(const geo::Point& p) {
    F64(p.x);
    F64(p.y);
  }
  void Vec(const geo::Vec2& v) {
    F64(v.x);
    F64(v.y);
  }
  void Cell(const geo::CellCoord& c) {
    I32(c.i);
    I32(c.j);
  }
  void Range(const geo::CellRange& r) {
    I32(r.i_lo);
    I32(r.i_hi);
    I32(r.j_lo);
    I32(r.j_hi);
  }
  void State(const FocalState& s) {
    Point(s.pos);
    Vec(s.vel);
    F64(s.tm);
  }
  void Region(const geo::QueryRegion& region) {
    U8(region.shape == geo::QueryRegion::Shape::kCircle ? 0 : 1);
    if (region.shape == geo::QueryRegion::Shape::kCircle) {
      F64(region.radius);
      F64(0.0);
    } else {
      F64(region.half_w);
      F64(region.half_h);
    }
  }
  void Info(const QueryInfo& info) {
    I64(info.qid);
    I64(info.focal_oid);
    State(info.focal);
    Region(info.region);
    F64(info.filter_threshold);
    Range(info.mon_region);
    F64(info.focal_max_speed);
  }
  // The static (kinematics-free) part of a QueryInfo, used by the lazy
  // velocity-change expansion where the focal state is carried once.
  void InfoStatic(const QueryInfo& info) {
    I64(info.qid);
    I64(info.focal_oid);
    Region(info.region);
    F64(info.filter_threshold);
    Range(info.mon_region);
    F64(info.focal_max_speed);
  }

 private:
  void Raw(const void* data, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + n);
  }

  std::vector<uint8_t>* out_;
};

// Bounds-checked reader: every primitive read past the end (or through a
// malformed tag) trips the sticky failure flag and yields zeros, so decode
// paths can read a whole struct and check ok() once — no partial reads ever
// touch uninitialized memory, and corruption can never assert or index out
// of range.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  // Marks the stream corrupt (bad enum tag, impossible count...); all
  // subsequent reads return zeros.
  void Fail() { ok_ = false; }
  // Advances past `n` bytes the caller consumed out-of-band (bulk copies).
  void Skip(size_t n) {
    if (!ok_ || pos_ + n > size_) {
      ok_ = false;
      return;
    }
    pos_ += n;
  }

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint16_t v = 0;
    Raw(&v, 2);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, 8);
    return v;
  }

  geo::Point Point() {
    geo::Point p;
    p.x = F64();
    p.y = F64();
    return p;
  }
  geo::Vec2 Vec() {
    geo::Vec2 v;
    v.x = F64();
    v.y = F64();
    return v;
  }
  geo::CellCoord Cell() {
    geo::CellCoord c;
    c.i = I32();
    c.j = I32();
    return c;
  }
  geo::CellRange Range() {
    geo::CellRange r;
    r.i_lo = I32();
    r.i_hi = I32();
    r.j_lo = I32();
    r.j_hi = I32();
    return r;
  }
  FocalState State() {
    FocalState s;
    s.pos = Point();
    s.vel = Vec();
    s.tm = F64();
    return s;
  }
  geo::QueryRegion Region() {
    uint8_t shape = U8();
    double a = F64();
    double b = F64();
    if (shape == 0) {
      return geo::QueryRegion::MakeCircle(a);
    }
    if (shape == 1) {
      return geo::QueryRegion::MakeRectangle(2.0 * a, 2.0 * b);
    }
    // Unknown shape tag: corrupt stream, not a rectangle-by-default.
    Fail();
    return geo::QueryRegion::MakeCircle(1.0);
  }
  QueryInfo Info() {
    QueryInfo info;
    info.qid = I64();
    info.focal_oid = I64();
    info.focal = State();
    info.region = Region();
    info.filter_threshold = F64();
    info.mon_region = Range();
    info.focal_max_speed = F64();
    return info;
  }
  QueryInfo InfoStatic() {
    QueryInfo info;
    info.qid = I64();
    info.focal_oid = I64();
    info.region = Region();
    info.filter_threshold = F64();
    info.mon_region = Range();
    info.focal_max_speed = F64();
    return info;
  }

 private:
  void Raw(void* out, size_t n) {
    if (!ok_ || pos_ + n > size_) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Binary wire codec for the MobiEyes protocol. The simulation itself passes
// Message objects in memory for speed, but a real deployment (and the
// byte-accounting model in message.h) needs a concrete encoding. The format
// is little-endian with fixed-width fields:
//
//   header (16 bytes): magic u32 | type u8 | flags u8 | count u16 | body u64
//   body: payload fields in declaration order, using the field sizes
//         documented in message.h (ids i64, scalars f64, points 2xf64,
//         cells 2xi32, cell ranges 4xi32).
//
// Encode output length equals WireSizeBytes(message) exactly; a test pins
// this so the energy model (Fig. 9) cannot drift from the real encoding.
class MessageCodec {
 public:
  static constexpr uint32_t kMagic = 0x4d6f4559;  // "MoEY"

  // Serializes a message. Never fails: all payloads are encodable (bitmap
  // reports are truncated to 64 queries by construction).
  static std::vector<uint8_t> Encode(const Message& message);

  // Encode variant that reuses caller-owned buffers: *out receives the
  // encoded message (cleared first, capacity kept) and *scratch holds the
  // body while the header is assembled. Batched encode loops (WAL
  // serialization, checkpoint chunking) call this so steady-state encoding
  // allocates nothing once the buffers have warmed up.
  static void EncodeInto(const Message& message, std::vector<uint8_t>* scratch,
                         std::vector<uint8_t>* out);

  // Parses a buffer produced by Encode. Returns InvalidArgument on a bad
  // magic number, unknown type, truncated buffer, trailing bytes, or any
  // malformed tag/count inside the body (unknown region shape, bitmap
  // count past the 64-query capacity, inconsistent list lengths). Decoding
  // never asserts on hostile bytes.
  static Result<Message> Decode(const std::vector<uint8_t>& buffer);
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_CODEC_H_
