#ifndef MOBIEYES_NET_CODEC_H_
#define MOBIEYES_NET_CODEC_H_

#include <cstdint>
#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/net/message.h"

namespace mobieyes::net {

// Binary wire codec for the MobiEyes protocol. The simulation itself passes
// Message objects in memory for speed, but a real deployment (and the
// byte-accounting model in message.h) needs a concrete encoding. The format
// is little-endian with fixed-width fields:
//
//   header (16 bytes): magic u32 | type u8 | flags u8 | count u16 | body u64
//   body: payload fields in declaration order, using the field sizes
//         documented in message.h (ids i64, scalars f64, points 2xf64,
//         cells 2xi32, cell ranges 4xi32).
//
// Encode output length equals WireSizeBytes(message) exactly; a test pins
// this so the energy model (Fig. 9) cannot drift from the real encoding.
class MessageCodec {
 public:
  static constexpr uint32_t kMagic = 0x4d6f4559;  // "MoEY"

  // Serializes a message. Never fails: all payloads are encodable (bitmap
  // reports are truncated to 64 queries by construction).
  static std::vector<uint8_t> Encode(const Message& message);

  // Parses a buffer produced by Encode. Returns InvalidArgument on a bad
  // magic number, unknown type, truncated buffer, or trailing bytes.
  static Result<Message> Decode(const std::vector<uint8_t>& buffer);
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_CODEC_H_
