#include "mobieyes/net/framing.h"

#include <cstring>

#include "mobieyes/net/codec.h"

namespace mobieyes::net {

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello:
      return "hello";
    case FrameKind::kConfig:
      return "config";
    case FrameKind::kStateSync:
      return "state_sync";
    case FrameKind::kStateSyncAck:
      return "state_sync_ack";
    case FrameKind::kStepBatch:
      return "step_batch";
    case FrameKind::kStepAck:
      return "step_ack";
    case FrameKind::kHeartbeat:
      return "heartbeat";
    case FrameKind::kHeartbeatAck:
      return "heartbeat_ack";
    case FrameKind::kShutdown:
      return "shutdown";
    case FrameKind::kScanRequest:
      return "scan_request";
    case FrameKind::kScanResult:
      return "scan_result";
    case FrameKind::kNumFrameKinds:
      break;
  }
  return "unknown";
}

uint32_t FramePayloadChecksum(const uint8_t* data, size_t size) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.U32(kFrameMagic);
  w.U8(kFrameVersion);
  w.U8(static_cast<uint8_t>(frame.kind));
  w.U8(frame.shard);
  w.U8(frame.flags);
  w.I64(frame.step);
  w.U32(static_cast<uint32_t>(frame.payload.size()));
  w.U32(FramePayloadChecksum(frame.payload.data(), frame.payload.size()));
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

void FrameDecoder::Consume(size_t n) {
  consumed_ += n;
  // Compact only once the dead prefix dominates, so a long run of small
  // frames does not memmove per frame.
  if (consumed_ >= 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

void FrameDecoder::Feed(const uint8_t* data, size_t size,
                        std::vector<Frame>* out) {
  buffer_.insert(buffer_.end(), data, data + size);
  for (;;) {
    const uint8_t* base = buffer_.data() + consumed_;
    size_t have = buffer_.size() - consumed_;
    if (have < kFrameHeaderBytes) return;

    uint32_t magic;
    std::memcpy(&magic, base, 4);
    if (magic != kFrameMagic) {
      // Resync: skip one byte and hunt for the next magic. memchr on the
      // first magic byte keeps the scan linear, not quadratic.
      const auto* hit = static_cast<const uint8_t*>(
          std::memchr(base + 1, static_cast<uint8_t>(kFrameMagic & 0xff),
                      have - 1));
      size_t skip = hit ? static_cast<size_t>(hit - base) : have;
      stats_.resync_bytes += skip;
      Consume(skip);
      continue;
    }

    ByteReader r(base, have);
    r.U32();  // magic, checked above
    uint8_t version = r.U8();
    uint8_t kind = r.U8();
    uint8_t shard = r.U8();
    uint8_t flags = r.U8();
    int64_t step = r.I64();
    uint32_t payload_len = r.U32();
    uint32_t payload_crc = r.U32();

    // A magic match with an impossible header is still garbage: drop the
    // first magic byte and resync, rather than waiting forever for 4 GiB
    // that will never arrive.
    bool bad_version = version != kFrameVersion;
    bool bad_kind = kind >= static_cast<uint8_t>(FrameKind::kNumFrameKinds);
    bool oversized = payload_len > kMaxFramePayload;
    if (bad_version || bad_kind || oversized) {
      if (bad_version) ++stats_.bad_version;
      if (bad_kind) ++stats_.bad_kind;
      if (oversized) ++stats_.oversized;
      stats_.resync_bytes += 1;
      Consume(1);
      continue;
    }

    if (have < kFrameHeaderBytes + payload_len) return;  // partial frame

    // Verify the payload checksum only once the whole frame is buffered. A
    // mismatch means a flipped or spliced payload; resync one byte forward
    // so a real frame whose header was swallowed by a truncated predecessor
    // can still be recovered.
    if (FramePayloadChecksum(base + kFrameHeaderBytes, payload_len) !=
        payload_crc) {
      ++stats_.checksum_mismatch;
      stats_.resync_bytes += 1;
      Consume(1);
      continue;
    }

    Frame frame;
    frame.kind = static_cast<FrameKind>(kind);
    frame.shard = shard;
    frame.flags = flags;
    frame.step = step;
    frame.payload.assign(base + kFrameHeaderBytes,
                         base + kFrameHeaderBytes + payload_len);
    out->push_back(std::move(frame));
    ++stats_.frames;
    stats_.bytes += kFrameHeaderBytes + payload_len;
    Consume(kFrameHeaderBytes + payload_len);
  }
}

}  // namespace mobieyes::net
