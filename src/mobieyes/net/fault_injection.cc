#include "mobieyes/net/fault_injection.h"

#include <algorithm>
#include <utility>

#include "mobieyes/obs/metrics_registry.h"

namespace mobieyes::net {

namespace {

// SplitMix64 finalizer: stateless decisions (disconnect and outage windows)
// hash their inputs instead of consuming the sequential RNG stream, so the
// message-level fault stream is independent of how many objects exist.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t Mix3(uint64_t a, uint64_t b, uint64_t c) {
  return Mix(a ^ Mix(b ^ Mix(c)));
}

// Uniform in [0, 1) from a hash value.
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultyNetwork::IsDisconnected(ObjectId oid, int64_t step) const {
  if (step < 0) return false;
  if (oid == plan_.forced_disconnect_oid &&
      step >= plan_.forced_disconnect_from &&
      step < plan_.forced_disconnect_until) {
    return true;
  }
  if (plan_.disconnect_rate <= 0.0 || plan_.disconnect_period_steps <= 0 ||
      plan_.disconnect_duration_steps <= 0) {
    return false;
  }
  const int64_t period = plan_.disconnect_period_steps;
  const int64_t duration =
      std::min<int64_t>(plan_.disconnect_duration_steps, period);
  const int64_t window = step / period;
  uint64_t h = Mix3(plan_.seed, static_cast<uint64_t>(oid) + 1,
                    static_cast<uint64_t>(window));
  if (HashToUnit(h) >= plan_.disconnect_rate) return false;
  // The window's disconnect span starts at a hashed offset so disconnects
  // are not aligned across objects or windows.
  const int64_t slack = period - duration;
  const int64_t offset =
      slack > 0
          ? static_cast<int64_t>(Mix(h) % static_cast<uint64_t>(slack + 1))
          : 0;
  const int64_t phase = step - window * period;
  return phase >= offset && phase < offset + duration;
}

bool FaultyNetwork::InOutage(BaseStationId sid, int64_t step) const {
  if (step < 0 || plan_.outage_period_steps <= 0 ||
      plan_.outage_duration_steps <= 0) {
    return false;
  }
  const int64_t period = plan_.outage_period_steps;
  const int64_t duration =
      std::min<int64_t>(plan_.outage_duration_steps, period);
  const int64_t offset = static_cast<int64_t>(
      Mix3(plan_.seed, 0xBA5Eu, static_cast<uint64_t>(sid) + 1) %
      static_cast<uint64_t>(period));
  const int64_t phase = (step + offset) % period;
  return phase < duration;
}

bool FaultyNetwork::ShouldRestartClient(ObjectId oid, int64_t step) const {
  if (step < 0) return false;
  if (oid == plan_.forced_restart_oid && step == plan_.forced_restart_step) {
    return true;
  }
  if (plan_.client_restart_rate <= 0.0) return false;
  uint64_t h = Mix3(plan_.seed ^ 0xC11E57A7ULL,
                    static_cast<uint64_t>(oid) + 1,
                    static_cast<uint64_t>(step));
  return HashToUnit(h) < plan_.client_restart_rate;
}

void FaultyNetwork::set_coverage_query(CoverageQuery query) {
  WirelessNetwork::set_coverage_query(
      [this, query = std::move(query)](
          const geo::Circle& circle,
          const std::function<void(ObjectId)>& fn) {
        if (!FaultsApply()) {
          query(circle, fn);
          return;
        }
        query(circle, [this, &fn](ObjectId oid) {
          if (!IsDisconnected(oid, step_)) fn(oid);
        });
      });
}

void FaultyNetwork::RecordDrop(Kind kind, const Message& message) {
  switch (kind) {
    case Kind::kUplink:
      ++stats_.uplink_dropped;
      break;
    case Kind::kDownlink:
      ++stats_.downlink_dropped;
      break;
    case Kind::kBroadcast:
      ++stats_.broadcast_dropped;
      break;
  }
  ++stats_.dropped_by_type[static_cast<size_t>(message.type)];
  if (fault_metrics_.dropped != nullptr) fault_metrics_.dropped->Increment();
}

void FaultyNetwork::RecordUndeliverable(
    NetworkStats::UndeliverableReason reason) {
  ++stats_.undeliverable_by_reason[static_cast<size_t>(reason)];
  if (fault_metrics_.dead_endpoint != nullptr) {
    fault_metrics_.dead_endpoint->Increment();
  }
}

bool FaultyNetwork::MaybeDefer(Kind kind, ObjectId party,
                               const BaseStation* station,
                               const Message& message, int copies) {
  if (plan_.delay_rate <= 0.0 || plan_.max_delay_steps <= 0) return false;
  if (!rng_.NextBernoulli(plan_.delay_rate)) return false;
  int64_t delay = 1 + static_cast<int64_t>(rng_.NextUint64(
                          static_cast<uint64_t>(plan_.max_delay_steps)));
  stats_.delayed_messages += static_cast<uint64_t>(copies);
  if (fault_metrics_.delayed != nullptr) {
    fault_metrics_.delayed->Increment(static_cast<uint64_t>(copies));
  }
  for (int k = 0; k < copies; ++k) {
    Deferred entry;
    entry.due_step = step_ + delay;
    entry.kind = kind;
    entry.party = party;
    if (station != nullptr) entry.station = *station;
    entry.message = message;
    deferred_.push_back(std::move(entry));
  }
  return true;
}

void FaultyNetwork::SendUplink(ObjectId from, Message message) {
  if (!FaultsApply()) {
    WirelessNetwork::SendUplink(from, std::move(message));
    return;
  }
  if (IsDisconnected(from, step_)) {
    RecordDrop(Kind::kUplink, message);
    return;
  }
  if (server_down_) {
    // The message left the device but the mediator process is dead: the
    // link did its job, so this is undeliverable, not a link drop.
    RecordUndeliverable(NetworkStats::UndeliverableReason::kServerDown);
    return;
  }
  if (plan_.uplink_drop_rate > 0.0 &&
      rng_.NextBernoulli(plan_.uplink_drop_rate)) {
    RecordDrop(Kind::kUplink, message);
    return;
  }
  int copies = 1;
  if (plan_.duplicate_rate > 0.0 &&
      rng_.NextBernoulli(plan_.duplicate_rate)) {
    copies = 2;
    ++stats_.duplicated_messages;
    if (fault_metrics_.duplicated != nullptr) {
      fault_metrics_.duplicated->Increment();
    }
  }
  if (MaybeDefer(Kind::kUplink, from, nullptr, message, copies)) return;
  for (int k = 1; k < copies; ++k) {
    WirelessNetwork::SendUplink(from, message);
  }
  WirelessNetwork::SendUplink(from, std::move(message));
}

bool FaultyNetwork::SendDownlinkTo(ObjectId to, Message message) {
  if (!FaultsApply()) {
    return WirelessNetwork::SendDownlinkTo(to, std::move(message));
  }
  if (IsDisconnected(to, step_)) {
    // Dead endpoint, healthy link: accounted apart from injected drops.
    RecordUndeliverable(
        NetworkStats::UndeliverableReason::kReceiverDisconnected);
    return false;
  }
  if (plan_.downlink_drop_rate > 0.0 &&
      rng_.NextBernoulli(plan_.downlink_drop_rate)) {
    RecordDrop(Kind::kDownlink, message);
    return false;
  }
  int copies = 1;
  if (plan_.duplicate_rate > 0.0 &&
      rng_.NextBernoulli(plan_.duplicate_rate)) {
    copies = 2;
    ++stats_.duplicated_messages;
    if (fault_metrics_.duplicated != nullptr) {
      fault_metrics_.duplicated->Increment();
    }
  }
  if (MaybeDefer(Kind::kDownlink, to, nullptr, message, copies)) {
    return true;  // transmitted; delivery is in flight
  }
  for (int k = 1; k < copies; ++k) {
    WirelessNetwork::SendDownlinkTo(to, message);
  }
  return WirelessNetwork::SendDownlinkTo(to, std::move(message));
}

void FaultyNetwork::Broadcast(const BaseStation& station, Message message) {
  if (!FaultsApply()) {
    WirelessNetwork::Broadcast(station, std::move(message));
    return;
  }
  if (InOutage(station.id, step_)) {
    RecordDrop(Kind::kBroadcast, message);
    return;
  }
  if (plan_.downlink_drop_rate > 0.0 &&
      rng_.NextBernoulli(plan_.downlink_drop_rate)) {
    RecordDrop(Kind::kBroadcast, message);
    return;
  }
  int copies = 1;
  if (plan_.duplicate_rate > 0.0 &&
      rng_.NextBernoulli(plan_.duplicate_rate)) {
    copies = 2;
    ++stats_.duplicated_messages;
    if (fault_metrics_.duplicated != nullptr) {
      fault_metrics_.duplicated->Increment();
    }
  }
  if (MaybeDefer(Kind::kBroadcast, kInvalidObjectId, &station, message,
                 copies)) {
    return;
  }
  for (int k = 1; k < copies; ++k) {
    WirelessNetwork::Broadcast(station, message);
  }
  WirelessNetwork::Broadcast(station, std::move(message));
}

void FaultyNetwork::DeliverDeferred(Deferred& entry) {
  switch (entry.kind) {
    case Kind::kUplink:
      // The server may have crashed while the message was in flight.
      if (server_down_) {
        RecordUndeliverable(NetworkStats::UndeliverableReason::kServerDown);
        break;
      }
      WirelessNetwork::SendUplink(entry.party, std::move(entry.message));
      break;
    case Kind::kDownlink:
      // The recipient may have disconnected while the message was in
      // flight; the endpoint is dead, so the delivery is undeliverable.
      if (IsDisconnected(entry.party, step_)) {
        RecordUndeliverable(
            NetworkStats::UndeliverableReason::kReceiverDisconnected);
        break;
      }
      WirelessNetwork::SendDownlinkTo(entry.party, std::move(entry.message));
      break;
    case Kind::kBroadcast:
      WirelessNetwork::Broadcast(entry.station, std::move(entry.message));
      break;
  }
}

void FaultyNetwork::AccountDisconnectTransitions(int64_t step) {
  const bool probabilistic = plan_.disconnect_rate > 0.0 &&
                             plan_.disconnect_period_steps > 0 &&
                             plan_.disconnect_duration_steps > 0;
  if (!probabilistic && plan_.forced_disconnect_oid == kInvalidObjectId) {
    return;
  }
  if (client_order_.size() != clients_.size()) {
    client_order_.clear();
    client_order_.reserve(clients_.size());
    for (const auto& [oid, handler] : clients_) client_order_.push_back(oid);
    std::sort(client_order_.begin(), client_order_.end());
  }
  for (ObjectId oid : client_order_) {
    if (IsDisconnected(oid, step) && !IsDisconnected(oid, step - 1)) {
      ++stats_.disconnect_events;
      if (fault_metrics_.disconnects != nullptr) {
        fault_metrics_.disconnects->Increment();
      }
    }
  }
}

void FaultyNetwork::AdvanceStep(int64_t step) {
  if (!plan_.active()) {
    step_ = step;
    return;
  }
  AccountDisconnectTransitions(step);
  step_ = step;
  if (deferred_.empty()) return;
  // Flush in insertion order; deliveries may re-enter the network and defer
  // further messages, which land in deferred_ for a later step.
  std::deque<Deferred> pending;
  pending.swap(deferred_);
  while (!pending.empty()) {
    Deferred entry = std::move(pending.front());
    pending.pop_front();
    if (entry.due_step <= step_) {
      DeliverDeferred(entry);
    } else {
      deferred_.push_back(std::move(entry));
    }
  }
}

void FaultyNetwork::AttachMetrics(obs::MetricsRegistry* registry) {
  WirelessNetwork::AttachMetrics(registry);
  if (registry == nullptr) {
    fault_metrics_ = FaultMetrics{};
    return;
  }
  fault_metrics_.dropped = registry->GetCounter("net.fault.dropped");
  fault_metrics_.delayed = registry->GetCounter("net.fault.delayed");
  fault_metrics_.duplicated = registry->GetCounter("net.fault.duplicated");
  fault_metrics_.disconnects = registry->GetCounter("net.fault.disconnects");
  fault_metrics_.dead_endpoint =
      registry->GetCounter("net.fault.dead_endpoint");
}

}  // namespace mobieyes::net
