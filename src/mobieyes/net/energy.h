#ifndef MOBIEYES_NET_ENERGY_H_
#define MOBIEYES_NET_ENERGY_H_

#include <cstdint>

namespace mobieyes::net {

// GPRS-style radio energy model from §5.3 of the paper: the transmit path
// is transmitter electronics plus a transmit amplifier; the receive path is
// receiver electronics. With the default constants this yields roughly
// 82 uJ/bit transmitted and 4.3 uJ/bit received (the paper's ~80 / ~5).
struct RadioEnergyModel {
  double tx_electronics_watts = 0.150;  // 150 mW
  double rx_electronics_watts = 0.120;  // 120 mW
  double amplifier_watts = 0.300;       // 300 mW output
  double amplifier_efficiency = 0.30;   // 30% efficient -> draws 1 W
  double uplink_bits_per_second = 14000.0;    // 14 kbps GPRS uplink
  double downlink_bits_per_second = 28000.0;  // 28 kbps GPRS downlink

  double TxJoulesPerBit() const {
    return (tx_electronics_watts + amplifier_watts / amplifier_efficiency) /
           uplink_bits_per_second;
  }

  double RxJoulesPerBit() const {
    return rx_electronics_watts / downlink_bits_per_second;
  }

  // Total radio energy for a byte budget.
  double EnergyJoules(uint64_t tx_bytes, uint64_t rx_bytes) const {
    return TxJoulesPerBit() * 8.0 * static_cast<double>(tx_bytes) +
           RxJoulesPerBit() * 8.0 * static_cast<double>(rx_bytes);
  }

  // Average communication power over a time window, in watts.
  double AveragePowerWatts(uint64_t tx_bytes, uint64_t rx_bytes,
                           double window_seconds) const {
    return EnergyJoules(tx_bytes, rx_bytes) / window_seconds;
  }
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_ENERGY_H_
