#ifndef MOBIEYES_NET_NETWORK_H_
#define MOBIEYES_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/message.h"

namespace mobieyes::obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace mobieyes::obs

namespace mobieyes::net {

// Aggregate traffic statistics for one simulation run. "Messages sent on
// the wireless medium" counts one per uplink transmission, one per
// one-to-one downlink, and one per base-station broadcast (paper §5.3).
struct NetworkStats {
  uint64_t uplink_messages = 0;
  uint64_t downlink_messages = 0;
  uint64_t broadcast_messages = 0;  // subset of downlink_messages
  uint64_t uplink_bytes = 0;
  uint64_t downlink_bytes = 0;
  // Broadcast receptions across all objects (an object in the coverage area
  // of a broadcasting station receives the message whether or not it is
  // relevant — the effect driving Fig. 9).
  uint64_t broadcast_receptions = 0;

  // Transmissions on the medium by MessageType (all directions); summing
  // this array always equals total_messages().
  std::array<uint64_t, kNumMessageTypes> messages_by_type{};

  uint64_t total_messages() const {
    return uplink_messages + downlink_messages;
  }

  // Per-object radio byte counters (indexed by ObjectId), for the energy
  // model of Fig. 9.
  std::unordered_map<ObjectId, uint64_t> tx_bytes_per_object;
  std::unordered_map<ObjectId, uint64_t> rx_bytes_per_object;

  // Field-wise merge. The single maintained merge point for these stats:
  // any code combining runs (metrics snapshots, sweep aggregation) must use
  // this instead of summing individual fields, so newly added counters are
  // never silently dropped.
  NetworkStats& operator+=(const NetworkStats& other);
};

// Direction of a transmission on the medium, as seen by the observer tap.
enum class Direction {
  kUplink,      // object -> server
  kDownlink,    // server -> one object
  kBroadcast,   // server -> base station coverage area
};

// Per-message-type traffic counters; fill via WirelessNetwork's observer to
// analyze which protocol messages dominate a workload.
struct MessageHistogram {
  struct Row {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<MessageType, Row> rows;

  void Record(const Message& message) {
    Row& row = rows[message.type];
    ++row.messages;
    row.bytes += WireSizeBytes(message);
  }

  uint64_t TotalMessages() const {
    uint64_t total = 0;
    for (const auto& [type, row] : rows) total += row.messages;
    return total;
  }
};

// Simulated asymmetric wireless medium (paper §2.2): objects can send
// uplink messages to the server; the server can send one-to-one downlink
// messages and per-base-station broadcasts. Delivery is synchronous — a
// handler runs before the send call returns — which matches the paper's
// per-time-step semantics and lets installation round trips complete inline.
class WirelessNetwork {
 public:
  using ServerHandler = std::function<void(ObjectId from, const Message&)>;
  using ClientHandler = std::function<void(const Message&)>;
  // Enumerates the ids of all objects currently inside a circle (provided
  // by the mobility layer; used to deliver broadcasts).
  using CoverageQuery =
      std::function<void(const geo::Circle&, const std::function<void(ObjectId)>&)>;

  void set_server_handler(ServerHandler handler) {
    server_handler_ = std::move(handler);
  }
  void RegisterClient(ObjectId oid, ClientHandler handler) {
    clients_[oid] = std::move(handler);
  }
  void set_coverage_query(CoverageQuery query) {
    coverage_query_ = std::move(query);
  }

  // Observer tap: invoked once per transmission on the medium (before
  // delivery), with the direction and the party addressed (the sender for
  // uplinks, the recipient for one-to-one downlinks, the base station id
  // for broadcasts). Used for tracing and per-type histograms.
  using Observer =
      std::function<void(Direction, int64_t party, const Message&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // Object -> server.
  void SendUplink(ObjectId from, Message message);

  // Server -> one object (routed through the base station serving it; one
  // downlink message on the medium).
  void SendDownlinkTo(ObjectId to, Message message);

  // Server -> all objects under `station` (one downlink message on the
  // medium; every covered object receives and decodes it).
  void Broadcast(const BaseStation& station, Message message);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // When false (default true), per-object byte maps are not maintained;
  // useful for large sweeps that only need message counts.
  void set_track_per_object_bytes(bool enabled) {
    track_per_object_bytes_ = enabled;
  }

  // Registers per-direction × per-MessageType counters and a message-bytes
  // histogram in `registry` (names "net.msgs.<direction>.<Type>",
  // "net.message_bytes") and records every delivery into them. Handles are
  // resolved once here, so the per-send cost is two pointer increments.
  // Pass nullptr to detach. The registry must outlive the network.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  // Pre-resolved registry handles, indexed [direction][type].
  struct WireMetrics {
    std::array<std::array<obs::Counter*, kNumMessageTypes>, 3> msgs{};
    obs::Histogram* bytes = nullptr;
    obs::Counter* broadcast_receptions = nullptr;
  };

  void RecordMetrics(Direction direction, const Message& message,
                     size_t bytes);

  ServerHandler server_handler_;
  std::unordered_map<ObjectId, ClientHandler> clients_;
  CoverageQuery coverage_query_;
  Observer observer_;
  NetworkStats stats_;
  bool track_per_object_bytes_ = true;
  WireMetrics metrics_;
  bool metrics_attached_ = false;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_NETWORK_H_
