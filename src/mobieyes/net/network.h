#ifndef MOBIEYES_NET_NETWORK_H_
#define MOBIEYES_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/geo/circle.h"
#include "mobieyes/net/base_station.h"
#include "mobieyes/net/message.h"

namespace mobieyes::obs {
class MetricsRegistry;
class Counter;
class Histogram;
class LifecycleTracker;
}  // namespace mobieyes::obs

namespace mobieyes::net {

// Aggregate traffic statistics for one simulation run. "Messages sent on
// the wireless medium" counts one per uplink transmission, one per
// one-to-one downlink, and one per base-station broadcast (paper §5.3).
struct NetworkStats {
  uint64_t uplink_messages = 0;
  uint64_t downlink_messages = 0;
  uint64_t broadcast_messages = 0;  // subset of downlink_messages
  uint64_t uplink_bytes = 0;
  uint64_t downlink_bytes = 0;
  // Broadcast receptions across all objects (an object in the coverage area
  // of a broadcasting station receives the message whether or not it is
  // relevant — the effect driving Fig. 9).
  uint64_t broadcast_receptions = 0;

  // One-to-one downlinks addressed to an object with no registered client
  // handler. The message was transmitted (it is counted above) but nobody
  // decoded it — a routing failure distinct from an injected fault.
  uint64_t undeliverable_downlinks = 0;

  // Why a message could not be delivered because its *endpoint* was dead,
  // as opposed to the link being lossy. Dead-endpoint losses are accounted
  // here and never folded into dropped_by_type / the *_dropped counters, so
  // "how lossy was the link" and "how long were processes down" stay
  // separable in every report.
  enum class UndeliverableReason {
    kNoHandler = 0,             // mirror of undeliverable_downlinks
    kReceiverDisconnected = 1,  // one-to-one downlink to a disconnected object
    kServerDown = 2,            // uplink while the server process is crashed
  };
  static constexpr size_t kNumUndeliverableReasons = 3;
  std::array<uint64_t, kNumUndeliverableReasons> undeliverable_by_reason{};

  // --- Fault-injection outcomes (FaultyNetwork; always zero on the plain
  // network). Dropped messages never reached the medium and are *not*
  // included in the delivered counters above, so total_messages() remains
  // the count of successful transmissions.
  uint64_t uplink_dropped = 0;
  uint64_t downlink_dropped = 0;   // one-to-one only
  uint64_t broadcast_dropped = 0;  // whole broadcasts lost at the station
  uint64_t delayed_messages = 0;
  uint64_t duplicated_messages = 0;
  uint64_t disconnect_events = 0;  // objects entering a disconnect window

  // --- Inter-shard backplane (DESIGN.md §10; always zero with one shard).
  // Coordinator-to-shard traffic of the partitioned server: ownership
  // handoffs plus cross-shard reads/updates. This is server-internal
  // bandwidth — it never rides the wireless medium, so it is excluded from
  // total_messages() and from the per-type wireless counters above.
  uint64_t inter_shard_messages = 0;
  uint64_t inter_shard_bytes = 0;
  uint64_t inter_shard_handoffs = 0;  // subset of inter_shard_messages

  // Transmissions on the medium by MessageType (all directions); summing
  // this array always equals total_messages().
  std::array<uint64_t, kNumMessageTypes> messages_by_type{};

  // Fault-dropped messages by MessageType (all directions).
  std::array<uint64_t, kNumMessageTypes> dropped_by_type{};

  uint64_t total_dropped() const {
    return uplink_dropped + downlink_dropped + broadcast_dropped;
  }

  uint64_t total_undeliverable() const {
    uint64_t total = 0;
    for (uint64_t count : undeliverable_by_reason) total += count;
    return total;
  }

  uint64_t total_messages() const {
    return uplink_messages + downlink_messages;
  }

  // Per-object radio byte counters (indexed by ObjectId), for the energy
  // model of Fig. 9.
  std::unordered_map<ObjectId, uint64_t> tx_bytes_per_object;
  std::unordered_map<ObjectId, uint64_t> rx_bytes_per_object;

  // Field-wise merge. The single maintained merge point for these stats:
  // any code combining runs (metrics snapshots, sweep aggregation) must use
  // this instead of summing individual fields, so newly added counters are
  // never silently dropped.
  NetworkStats& operator+=(const NetworkStats& other);
};

// Compact JSON object of the counting (wall-clock-free) NetworkStats fields,
// embedded in Simulation::ObservabilityJson. Deterministic for a given seed.
std::string NetworkStatsJson(const NetworkStats& stats);

// Direction of a transmission on the medium, as seen by the observer tap.
enum class Direction {
  kUplink,      // object -> server
  kDownlink,    // server -> one object
  kBroadcast,   // server -> base station coverage area
};

// Per-message-type traffic counters; fill via WirelessNetwork's observer to
// analyze which protocol messages dominate a workload.
struct MessageHistogram {
  struct Row {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<MessageType, Row> rows;

  void Record(const Message& message) {
    Row& row = rows[message.type];
    ++row.messages;
    row.bytes += WireSizeBytes(message);
  }

  uint64_t TotalMessages() const {
    uint64_t total = 0;
    for (const auto& [type, row] : rows) total += row.messages;
    return total;
  }
};

// Simulated asymmetric wireless medium (paper §2.2): objects can send
// uplink messages to the server; the server can send one-to-one downlink
// messages and per-base-station broadcasts. Delivery is synchronous — a
// handler runs before the send call returns — which matches the paper's
// per-time-step semantics and lets installation round trips complete inline.
//
// The send entry points are virtual so a fault-injection wrapper
// (net::FaultyNetwork) can intercede; the fault-free simulation still
// instantiates this class directly, so the only cost it pays for the hook
// is the virtual dispatch itself.
class WirelessNetwork {
 public:
  virtual ~WirelessNetwork() = default;
  using ServerHandler = std::function<void(ObjectId from, const Message&)>;
  using ClientHandler = std::function<void(const Message&)>;
  // Enumerates the ids of all objects currently inside a circle (provided
  // by the mobility layer; used to deliver broadcasts).
  using CoverageQuery = std::function<void(
      const geo::Circle&, const std::function<void(ObjectId)>&)>;

  void set_server_handler(ServerHandler handler) {
    server_handler_ = std::move(handler);
  }
  void RegisterClient(ObjectId oid, ClientHandler handler) {
    clients_[oid] = std::move(handler);
  }
  // Virtual so FaultyNetwork can wrap the query with a disconnected-object
  // filter before broadcasts consult it.
  virtual void set_coverage_query(CoverageQuery query) {
    coverage_query_ = std::move(query);
  }

  // Observer tap: invoked once per transmission on the medium (before
  // delivery), with the direction and the party addressed (the sender for
  // uplinks, the recipient for one-to-one downlinks, the base station id
  // for broadcasts). Used for tracing and per-type histograms.
  using Observer =
      std::function<void(Direction, int64_t party, const Message&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // Object -> server.
  virtual void SendUplink(ObjectId from, Message message);

  // Server -> one object (routed through the base station serving it; one
  // downlink message on the medium). Returns false when the message could
  // not be delivered — no client handler is registered for `to` (recorded in
  // stats().undeliverable_downlinks) or a fault wrapper dropped it.
  virtual bool SendDownlinkTo(ObjectId to, Message message);

  // Server -> all objects under `station` (one downlink message on the
  // medium; every covered object receives and decodes it).
  virtual void Broadcast(const BaseStation& station, Message message);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // When false (default true), per-object byte maps are not maintained;
  // useful for large sweeps that only need message counts.
  void set_track_per_object_bytes(bool enabled) {
    track_per_object_bytes_ = enabled;
  }

  // Registers per-direction × per-MessageType counters and a message-bytes
  // histogram in `registry` (names "net.msgs.<direction>.<Type>",
  // "net.message_bytes") and records every delivery into them. Handles are
  // resolved once here, so the per-send cost is two pointer increments.
  // Pass nullptr to detach. The registry must outlive the network.
  virtual void AttachMetrics(obs::MetricsRegistry* registry);

  // Lifecycle round-trip tap: each uplink transmission stamps an
  // uplink_round_trip round for the sender; the next one-to-one downlink
  // addressed to that object resolves it. nullptr (the default) disables
  // the tap at the cost of one pointer test per send. The tracker must
  // outlive the network.
  void set_lifecycle(obs::LifecycleTracker* lifecycle) {
    lifecycle_ = lifecycle;
  }

 protected:
  // Pre-resolved registry handles, indexed [direction][type].
  struct WireMetrics {
    std::array<std::array<obs::Counter*, kNumMessageTypes>, 3> msgs{};
    obs::Histogram* bytes = nullptr;
    obs::Counter* broadcast_receptions = nullptr;
    obs::Counter* undeliverable = nullptr;
  };

  void RecordMetrics(Direction direction, const Message& message,
                     size_t bytes);

  ServerHandler server_handler_;
  std::unordered_map<ObjectId, ClientHandler> clients_;
  CoverageQuery coverage_query_;
  Observer observer_;
  NetworkStats stats_;
  bool track_per_object_bytes_ = true;
  WireMetrics metrics_;
  bool metrics_attached_ = false;
  obs::LifecycleTracker* lifecycle_ = nullptr;

  // Receiver scratch for Broadcast, pooled by nesting depth: a receiver's
  // handler may uplink a reply whose server-side processing triggers a
  // nested broadcast, which must not clobber the outer call's receiver
  // list. Each depth level keeps its vector across calls, so steady-state
  // broadcasts allocate nothing.
  std::vector<std::vector<ObjectId>> receiver_pool_;
  size_t broadcast_depth_ = 0;
};

}  // namespace mobieyes::net

#endif  // MOBIEYES_NET_NETWORK_H_
