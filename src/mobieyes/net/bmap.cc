#include "mobieyes/net/bmap.h"

#include <algorithm>
#include <cmath>

namespace mobieyes::net {

Result<Bmap> Bmap::Make(const geo::Grid& grid,
                        const BaseStationLayout& layout) {
  std::vector<std::vector<BaseStationId>> cells(grid.CellCount());
  for (int32_t j = 0; j < grid.rows(); ++j) {
    for (int32_t i = 0; i < grid.columns(); ++i) {
      geo::CellCoord c{i, j};
      geo::Rect cell_rect = grid.CellRect(c);
      auto& list = cells[grid.FlatIndex(c)];
      // Only stations whose lattice square is near the cell can intersect
      // it; restrict the scan using the station lattice geometry.
      for (const auto& station : layout.stations()) {
        if (station.coverage.Intersects(cell_rect)) {
          list.push_back(station.id);
        }
      }
      if (list.empty()) {
        return Status::Internal("grid cell not covered by any base station");
      }
    }
  }
  return Bmap(&grid, &layout, std::move(cells));
}

const std::vector<BaseStationId>& Bmap::StationsForCell(
    const geo::CellCoord& c) const {
  return cells_[grid_->FlatIndex(c)];
}

std::vector<BaseStationId> Bmap::MinimalCover(
    const geo::CellRange& region) const {
  std::vector<BaseStationId> cover;
  if (region.empty()) return cover;

  // Bounding rectangle of the region in miles.
  geo::Rect low = grid_->CellRect(geo::CellCoord{region.i_lo, region.j_lo});
  geo::Rect high = grid_->CellRect(geo::CellCoord{region.i_hi, region.j_hi});
  geo::Rect rect = geo::Rect::Union(low, high);

  // Stations whose lattice square overlaps the rectangle with positive
  // area. Zero-measure edge touches need no coverage of their own: a point
  // on a shared square edge lies inside the adjacent selected square's
  // circumscribing circle as well.
  Miles side = layout_->side();
  const geo::Rect& universe = layout_->universe();
  auto i_lo = static_cast<int>(std::floor((rect.lx - universe.lx) / side));
  auto j_lo = static_cast<int>(std::floor((rect.ly - universe.ly) / side));
  auto i_hi = static_cast<int>(std::ceil((rect.hx() - universe.lx) / side)) - 1;
  auto j_hi = static_cast<int>(std::ceil((rect.hy() - universe.ly) / side)) - 1;
  i_lo = std::max(i_lo, 0);
  j_lo = std::max(j_lo, 0);
  i_hi = std::min(i_hi, layout_->columns() - 1);
  j_hi = std::min(j_hi, layout_->rows() - 1);
  for (int j = j_lo; j <= j_hi; ++j) {
    for (int i = i_lo; i <= i_hi; ++i) {
      cover.push_back(static_cast<BaseStationId>(j * layout_->columns() + i));
    }
  }
  return cover;
}

}  // namespace mobieyes::net
