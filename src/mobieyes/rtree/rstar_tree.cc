#include "mobieyes/rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace mobieyes::rtree {

using geo::Point;
using geo::Rect;

// An entry is either a data entry (leaf nodes: rect + id) or a subtree entry
// (internal nodes: rect = child bounding box, child owned here).
struct RStarTree::Entry {
  Rect rect;
  uint64_t id = 0;
  std::unique_ptr<Node> child;
};

// Nodes at level 0 are leaves holding data entries; a node at level k > 0
// holds entries pointing to children at level k - 1.
struct RStarTree::Node {
  explicit Node(int level_in) : level(level_in) {}

  bool is_leaf() const { return level == 0; }

  int level;
  Node* parent = nullptr;
  std::vector<Entry> entries;
};

// Local aliases so the file-local helpers below can name the nested types.
using Entry = RStarTree::Entry;
using Node = RStarTree::Node;

namespace {

Rect ComputeRect(const std::vector<Entry>& entries) {
  Rect r = entries.front().rect;
  for (size_t k = 1; k < entries.size(); ++k) {
    r = Rect::Union(r, entries[k].rect);
  }
  return r;
}

// Margin sum over all distributions along one axis; used by ChooseSplitAxis.
// `sorted` must already be ordered along the candidate axis.
double AxisMarginSum(const std::vector<const Entry*>& sorted, int min_entries) {
  double margin_sum = 0.0;
  int total = static_cast<int>(sorted.size());
  for (int k = min_entries; k <= total - min_entries; ++k) {
    Rect left = sorted[0]->rect;
    for (int i = 1; i < k; ++i) left = Rect::Union(left, sorted[i]->rect);
    Rect right = sorted[k]->rect;
    for (int i = k + 1; i < total; ++i) {
      right = Rect::Union(right, sorted[i]->rect);
    }
    margin_sum += left.Margin() + right.Margin();
  }
  return margin_sum;
}

}  // namespace

RStarTree::RStarTree(Options options) : options_(options) {
  if (options_.max_entries < 4) options_.max_entries = 4;
  min_entries_ = std::max(2, static_cast<int>(options_.max_entries * 0.4));
  root_ = std::make_unique<Node>(0);
}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&&) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&&) noexcept = default;

int RStarTree::height() const { return root_->level + 1; }

void RStarTree::Insert(const Rect& rect, uint64_t id) {
  Entry entry;
  entry.rect = rect;
  entry.id = id;
  InsertEntry(std::move(entry), /*target_level=*/0);
  ++size_;
}

RStarTree::Node* RStarTree::ChooseSubtree(const Entry& entry,
                                          int target_level) const {
  Node* node = root_.get();
  while (node->level > target_level) {
    Entry* best = nullptr;
    if (node->level == 1) {
      // Children are leaves: minimize overlap enlargement, ties broken by
      // area enlargement then area (R*-tree CS2).
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = best_overlap;
      double best_area = best_overlap;
      for (auto& cand : node->entries) {
        Rect enlarged = Rect::Union(cand.rect, entry.rect);
        double overlap_delta = 0.0;
        for (const auto& other : node->entries) {
          if (&other == &cand) continue;
          overlap_delta += geo::IntersectionArea(enlarged, other.rect) -
                           geo::IntersectionArea(cand.rect, other.rect);
        }
        double enlarge = geo::Enlargement(cand.rect, entry.rect);
        double area = cand.rect.Area();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
          best = &cand;
        }
      }
    } else {
      // Minimize area enlargement, ties broken by area.
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = best_enlarge;
      for (auto& cand : node->entries) {
        double enlarge = geo::Enlargement(cand.rect, entry.rect);
        double area = cand.rect.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          best = &cand;
        }
      }
    }
    node = best->child.get();
  }
  return node;
}

void RStarTree::InsertEntry(Entry entry, int target_level) {
  Node* node = ChooseSubtree(entry, target_level);
  if (entry.child) entry.child->parent = node;
  node->entries.push_back(std::move(entry));
  AdjustRectsUpward(node);
  if (static_cast<int>(node->entries.size()) > options_.max_entries) {
    std::vector<bool> reinserted(root_->level + 1, false);
    OverflowTreatment(node, &reinserted);
  }
}

void RStarTree::OverflowTreatment(Node* node,
                                  std::vector<bool>* reinserted_on_level) {
  if (static_cast<size_t>(node->level) >= reinserted_on_level->size()) {
    reinserted_on_level->resize(node->level + 1, false);
  }
  if (node != root_.get() && !(*reinserted_on_level)[node->level]) {
    (*reinserted_on_level)[node->level] = true;
    Reinsert(node, reinserted_on_level);
  } else {
    SplitNode(node);
  }
}

void RStarTree::Reinsert(Node* node, std::vector<bool>* reinserted_on_level) {
  // Far reinsert: remove the p entries whose centers are furthest from the
  // node's bounding-box center and insert them again from the top.
  Rect node_rect = ComputeRect(node->entries);
  Point center = node_rect.Center();
  std::vector<size_t> order(node->entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return geo::SquaredDistance(node->entries[a].rect.Center(), center) >
           geo::SquaredDistance(node->entries[b].rect.Center(), center);
  });

  int p = std::max(1, static_cast<int>(std::lround(
                          options_.max_entries * options_.reinsert_fraction)));
  std::vector<Entry> removed;
  removed.reserve(p);
  std::vector<bool> take(node->entries.size(), false);
  for (int k = 0; k < p; ++k) take[order[k]] = true;
  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - p);
  for (size_t k = 0; k < node->entries.size(); ++k) {
    if (take[k]) {
      removed.push_back(std::move(node->entries[k]));
    } else {
      kept.push_back(std::move(node->entries[k]));
    }
  }
  node->entries = std::move(kept);
  AdjustRectsUpward(node);

  int target_level = node->level;
  for (auto& entry : removed) {
    Node* dest = ChooseSubtree(entry, target_level);
    if (entry.child) entry.child->parent = dest;
    dest->entries.push_back(std::move(entry));
    AdjustRectsUpward(dest);
    if (static_cast<int>(dest->entries.size()) > options_.max_entries) {
      OverflowTreatment(dest, reinserted_on_level);
    }
  }
}

void RStarTree::SplitNode(Node* node) {
  // --- ChooseSplitAxis: minimize the margin sum over all distributions.
  std::vector<const Entry*> by_x(node->entries.size());
  std::vector<const Entry*> by_y(node->entries.size());
  for (size_t k = 0; k < node->entries.size(); ++k) {
    by_x[k] = &node->entries[k];
    by_y[k] = &node->entries[k];
  }
  std::stable_sort(by_x.begin(), by_x.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->rect.lx != b->rect.lx) {
                       return a->rect.lx < b->rect.lx;
                     }
                     return a->rect.hx() < b->rect.hx();
                   });
  std::stable_sort(by_y.begin(), by_y.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->rect.ly != b->rect.ly) {
                       return a->rect.ly < b->rect.ly;
                     }
                     return a->rect.hy() < b->rect.hy();
                   });
  double margin_x = AxisMarginSum(by_x, min_entries_);
  double margin_y = AxisMarginSum(by_y, min_entries_);
  const std::vector<const Entry*>& sorted = margin_x <= margin_y ? by_x : by_y;

  // --- ChooseSplitIndex: minimize overlap, ties broken by total area.
  int total = static_cast<int>(sorted.size());
  int best_k = min_entries_;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = best_overlap;
  for (int k = min_entries_; k <= total - min_entries_; ++k) {
    Rect left = sorted[0]->rect;
    for (int i = 1; i < k; ++i) left = Rect::Union(left, sorted[i]->rect);
    Rect right = sorted[k]->rect;
    for (int i = k + 1; i < total; ++i) {
      right = Rect::Union(right, sorted[i]->rect);
    }
    double overlap = geo::IntersectionArea(left, right);
    double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // --- Materialize the two groups.
  auto sibling = std::make_unique<Node>(node->level);
  std::vector<Entry> first_group;
  first_group.reserve(best_k);
  // `sorted` holds pointers into node->entries; move via index mapping.
  std::vector<bool> to_sibling(node->entries.size(), false);
  for (int k = best_k; k < total; ++k) {
    to_sibling[sorted[k] - node->entries.data()] = true;
  }
  for (size_t k = 0; k < node->entries.size(); ++k) {
    Entry moved = std::move(node->entries[k]);
    if (to_sibling[k]) {
      if (moved.child) moved.child->parent = sibling.get();
      sibling->entries.push_back(std::move(moved));
    } else {
      first_group.push_back(std::move(moved));
    }
  }
  node->entries = std::move(first_group);

  Entry sibling_entry;
  sibling_entry.rect = ComputeRect(sibling->entries);
  sibling_entry.child = std::move(sibling);

  if (node == root_.get()) {
    // Grow the tree: new root with the old root and its sibling as children.
    auto new_root = std::make_unique<Node>(node->level + 1);
    Entry old_root_entry;
    old_root_entry.rect = ComputeRect(root_->entries);
    old_root_entry.child = std::move(root_);
    old_root_entry.child->parent = new_root.get();
    sibling_entry.child->parent = new_root.get();
    new_root->entries.push_back(std::move(old_root_entry));
    new_root->entries.push_back(std::move(sibling_entry));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling_entry.child->parent = parent;
  parent->entries.push_back(std::move(sibling_entry));
  AdjustRectsUpward(node);
  if (static_cast<int>(parent->entries.size()) > options_.max_entries) {
    // Propagate: a split at this level counts as the (only) overflow
    // treatment for the parent level within this insertion, per the R*-tree
    // rule that reinsertion applies once per level.
    std::vector<bool> reinserted(root_->level + 1, false);
    OverflowTreatment(parent, &reinserted);
  }
}

void RStarTree::AdjustRectsUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (auto& entry : parent->entries) {
      if (entry.child.get() == node) {
        entry.rect = ComputeRect(node->entries);
        break;
      }
    }
    node = parent;
  }
}

Status RStarTree::Delete(const Rect& rect, uint64_t id) {
  MOBIEYES_RETURN_NOT_OK(DeleteRec(rect, id));
  --size_;
  return Status::OK();
}

Status RStarTree::Update(const Rect& old_rect, const Rect& new_rect,
                         uint64_t id) {
  MOBIEYES_RETURN_NOT_OK(Delete(old_rect, id));
  Insert(new_rect, id);
  return Status::OK();
}

namespace {

// Finds the leaf holding the exact (rect, id) data entry. Pruning uses
// Intersects rather than Contains: node rectangles are stored as
// (origin, extent), so recomputing a parent's upper corner can round one
// ulp below a child's true upper corner and a Contains test would wrongly
// prune the subtree.
Node* FindLeaf(Node* node, const Rect& rect, uint64_t id, size_t* index_out) {
  if (node->is_leaf()) {
    for (size_t k = 0; k < node->entries.size(); ++k) {
      if (node->entries[k].id == id && node->entries[k].rect == rect) {
        *index_out = k;
        return node;
      }
    }
    return nullptr;
  }
  for (auto& entry : node->entries) {
    if (entry.rect.Intersects(rect)) {
      Node* found = FindLeaf(entry.child.get(), rect, id, index_out);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

// Unpruned fallback for the residual rounding case where even the
// intersection test misses (zero-extent entry exactly on a recomputed node
// boundary). Rare, so the full scan does not affect steady-state cost.
Node* FindLeafExhaustive(Node* node, const Rect& rect, uint64_t id,
                         size_t* index_out) {
  if (node->is_leaf()) {
    for (size_t k = 0; k < node->entries.size(); ++k) {
      if (node->entries[k].id == id && node->entries[k].rect == rect) {
        *index_out = k;
        return node;
      }
    }
    return nullptr;
  }
  for (auto& entry : node->entries) {
    Node* found = FindLeafExhaustive(entry.child.get(), rect, id, index_out);
    if (found != nullptr) return found;
  }
  return nullptr;
}

}  // namespace

Status RStarTree::DeleteRec(const Rect& rect, uint64_t id) {
  size_t index = 0;
  Node* leaf = FindLeaf(root_.get(), rect, id, &index);
  if (leaf == nullptr) {
    leaf = FindLeafExhaustive(root_.get(), rect, id, &index);
  }
  if (leaf == nullptr) {
    return Status::NotFound("rtree entry not found");
  }
  leaf->entries.erase(leaf->entries.begin() + index);
  CondenseTree(leaf);
  return Status::OK();
}

void RStarTree::CondenseTree(Node* leaf) {
  // Walk up; detach under-full nodes and collect their entries (tagged with
  // the level they must be re-inserted at).
  struct Orphan {
    Entry entry;
    int level;
  };
  std::vector<Orphan> orphans;

  Node* node = leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (static_cast<int>(node->entries.size()) < min_entries_) {
      int level = node->level;
      // Detach the node from its parent. Keep the node alive until its
      // entries have been moved out.
      std::unique_ptr<Node> detached;
      for (size_t k = 0; k < parent->entries.size(); ++k) {
        if (parent->entries[k].child.get() == node) {
          detached = std::move(parent->entries[k].child);
          parent->entries.erase(parent->entries.begin() + k);
          break;
        }
      }
      for (auto& entry : detached->entries) {
        orphans.push_back(Orphan{std::move(entry), level});
      }
    } else {
      // Tighten this node's bounding box in the parent.
      for (auto& entry : parent->entries) {
        if (entry.child.get() == node) {
          entry.rect = ComputeRect(node->entries);
          break;
        }
      }
    }
    node = parent;
  }

  // If everything below the root was orphaned, restart from a fresh leaf
  // (only data orphans can exist in that case when min_entries >= 2, but
  // guard generally: reinsertion handles any level once the root can host
  // it, so reinsert deepest levels first).
  if (root_->entries.empty() && root_->level > 0) {
    root_ = std::make_unique<Node>(0);
  }
  std::stable_sort(orphans.begin(), orphans.end(),
                   [](const Orphan& a, const Orphan& b) {
                     return a.level > b.level;
                   });
  for (auto& orphan : orphans) {
    if (orphan.entry.child) {
      // Subtree orphan: reinsert whole subtree at its level.
      InsertEntry(std::move(orphan.entry), orphan.level);
    } else {
      InsertEntry(std::move(orphan.entry), 0);
    }
  }

  // Shrink the root while it is an internal node with a single child.
  while (root_->level > 0 && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries.front().child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
}

void RStarTree::SearchIntersects(const Rect& query,
                                 std::vector<uint64_t>* out) const {
  VisitIntersects(query, [out](const Rect&, uint64_t id) {
    out->push_back(id);
    return true;
  });
}

void RStarTree::SearchContainsPoint(const Point& p,
                                    std::vector<uint64_t>* out) const {
  Rect point_rect{p.x, p.y, 0.0, 0.0};
  VisitIntersects(point_rect, [out](const Rect&, uint64_t id) {
    out->push_back(id);
    return true;
  });
}

void RStarTree::SearchKNearest(const Point& p, int k,
                               std::vector<uint64_t>* out) const {
  if (k <= 0 || size_ == 0) return;
  // Best-first search over a min-heap of (distance, element); elements are
  // either internal nodes or data entries. Data entries popped from the
  // heap are final results because every unexplored element is at least as
  // far away.
  struct HeapItem {
    double distance;
    const Node* node;    // non-null for subtrees
    uint64_t id;         // valid when node == nullptr
    bool operator>(const HeapItem& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  heap.push(HeapItem{0.0, root_.get(), 0});
  int found = 0;
  while (!heap.empty() && found < k) {
    HeapItem item = heap.top();
    heap.pop();
    if (item.node == nullptr) {
      out->push_back(item.id);
      ++found;
      continue;
    }
    for (const auto& entry : item.node->entries) {
      double distance = geo::MinDistance(entry.rect, p);
      if (item.node->is_leaf()) {
        heap.push(HeapItem{distance, nullptr, entry.id});
      } else {
        heap.push(HeapItem{distance, entry.child.get(), 0});
      }
    }
  }
}

namespace {

bool VisitRec(const Node* node, const Rect& query,
              const std::function<bool(const Rect&, uint64_t)>& visitor) {
  for (const auto& entry : node->entries) {
    if (!entry.rect.Intersects(query)) continue;
    if (node->is_leaf()) {
      if (!visitor(entry.rect, entry.id)) return false;
    } else {
      if (!VisitRec(entry.child.get(), query, visitor)) return false;
    }
  }
  return true;
}

}  // namespace

void RStarTree::VisitIntersects(
    const Rect& query,
    const std::function<bool(const Rect&, uint64_t)>& visitor) const {
  VisitRec(root_.get(), query, visitor);
}

namespace {

Status CheckNode(const Node* node, const Node* parent, int root_level,
                 int min_entries, int max_entries, size_t* data_count) {
  if (node->parent != parent) {
    return Status::Internal("parent pointer mismatch");
  }
  bool is_root = parent == nullptr;
  int n = static_cast<int>(node->entries.size());
  if (!is_root && n < min_entries) {
    return Status::Internal("under-full node");
  }
  if (n > max_entries) {
    return Status::Internal("over-full node");
  }
  if (is_root && node->level != root_level) {
    return Status::Internal("root level mismatch");
  }
  for (const auto& entry : node->entries) {
    if (node->is_leaf()) {
      if (entry.child) return Status::Internal("leaf entry with child");
      ++*data_count;
    } else {
      if (!entry.child) return Status::Internal("internal entry without child");
      if (entry.child->level != node->level - 1) {
        return Status::Internal("child level mismatch");
      }
      if (!(entry.rect == ComputeRect(entry.child->entries))) {
        return Status::Internal("loose bounding box");
      }
      MOBIEYES_RETURN_NOT_OK(CheckNode(entry.child.get(), node, root_level,
                                       min_entries, max_entries, data_count));
    }
  }
  return Status::OK();
}

}  // namespace

Status RStarTree::CheckInvariants() const {
  size_t data_count = 0;
  MOBIEYES_RETURN_NOT_OK(CheckNode(root_.get(), nullptr, root_->level,
                                   min_entries_, options_.max_entries,
                                   &data_count));
  if (data_count != size_) {
    return Status::Internal("size mismatch");
  }
  return Status::OK();
}

}  // namespace mobieyes::rtree
