#ifndef MOBIEYES_RTREE_RSTAR_TREE_H_
#define MOBIEYES_RTREE_RSTAR_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/geo/point.h"
#include "mobieyes/geo/rect.h"

namespace mobieyes::rtree {

// An R*-tree over (rectangle, id) entries, after Beckmann, Kriegel,
// Schneider and Seeger (SIGMOD 1990) — the index the paper uses for both
// centralized baselines (§5.2). Implements ChooseSubtree with minimum
// overlap enlargement at the leaf level, the topological R*-split (axis by
// minimum margin sum, distribution by minimum overlap), forced reinsertion
// on first overflow per level, and delete with under-full node condensing.
//
// Not thread safe; the simulation drives it from a single thread.
class RStarTree {
 public:
  // Implementation node types; defined in the .cc file.
  struct Node;
  struct Entry;

  struct Options {
    // Maximum entries per node (M). Minimum is derived as max(2, M * 40%),
    // the fill factor recommended in the R*-tree paper.
    int max_entries = 16;
    // Fraction of entries reinserted on forced reinsert (p = 30% in the
    // paper).
    double reinsert_fraction = 0.3;
  };

  RStarTree() : RStarTree(Options{}) {}
  explicit RStarTree(Options options);
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;

  // Inserts an entry. Duplicate (rect, id) pairs are allowed and stored
  // independently.
  void Insert(const geo::Rect& rect, uint64_t id);

  // Removes one entry matching (rect, id) exactly. NotFound when absent.
  Status Delete(const geo::Rect& rect, uint64_t id);

  // Convenience for moving data: Delete(old) + Insert(new) as one call.
  Status Update(const geo::Rect& old_rect, const geo::Rect& new_rect,
                uint64_t id);

  // Appends ids of all entries whose rectangle intersects `query`.
  void SearchIntersects(const geo::Rect& query,
                        std::vector<uint64_t>* out) const;

  // Appends ids of all entries whose rectangle contains `p`.
  void SearchContainsPoint(const geo::Point& p,
                           std::vector<uint64_t>* out) const;

  // Appends the ids of the k entries whose rectangles are nearest to `p`
  // (by minimum rectangle distance; 0 when the point is inside), nearest
  // first. Best-first incremental search (Hjaltason & Samet). Returns fewer
  // than k when the tree is smaller.
  void SearchKNearest(const geo::Point& p, int k,
                      std::vector<uint64_t>* out) const;

  // Visits every (rect, id) entry whose rectangle intersects `query`;
  // return false from the visitor to stop early.
  void VisitIntersects(
      const geo::Rect& query,
      const std::function<bool(const geo::Rect&, uint64_t)>& visitor) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  // Structural self check for tests: node fill bounds, bounding-box
  // tightness, uniform leaf depth, and entry count.
  Status CheckInvariants() const;

 private:
  Node* ChooseSubtree(const Entry& entry, int target_level) const;
  void InsertEntry(Entry entry, int target_level);
  // Handles an overflowing node: forced reinsert on the first overflow at
  // this level during one top-level insertion, split otherwise.
  void OverflowTreatment(Node* node, std::vector<bool>* reinserted_on_level);
  void Reinsert(Node* node, std::vector<bool>* reinserted_on_level);
  void SplitNode(Node* node);
  void AdjustRectsUpward(Node* node);
  Status DeleteRec(const geo::Rect& rect, uint64_t id);
  void CondenseTree(Node* leaf);

  Options options_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace mobieyes::rtree

#endif  // MOBIEYES_RTREE_RSTAR_TREE_H_
