#include "mobieyes/core/rqi.h"

#include <algorithm>

namespace mobieyes::core {

void ReverseQueryIndex::Add(QueryId qid, const geo::CellRange& mon_region) {
  mon_region.ForEach([&](int32_t i, int32_t j) {
    cells_[grid_->FlatIndex(geo::CellCoord{i, j})].push_back(qid);
  });
}

void ReverseQueryIndex::Remove(QueryId qid, const geo::CellRange& mon_region) {
  mon_region.ForEach([&](int32_t i, int32_t j) {
    auto& list = cells_[grid_->FlatIndex(geo::CellCoord{i, j})];
    auto it = std::find(list.begin(), list.end(), qid);
    if (it != list.end()) list.erase(it);
  });
}

void ReverseQueryIndex::RemoveCell(QueryId qid, const geo::CellCoord& c) {
  auto& list = cells_[grid_->FlatIndex(c)];
  auto it = std::find(list.begin(), list.end(), qid);
  if (it != list.end()) list.erase(it);
}

std::vector<QueryId> ReverseQueryIndex::NewQueriesForMove(
    const geo::CellCoord& prev_cell, const geo::CellCoord& new_cell) const {
  std::vector<QueryId> scratch;
  std::vector<QueryId> result;
  RowDifferenceInto(QueriesForCell(new_cell), QueriesForCell(prev_cell),
                    &scratch, &result);
  return result;
}

void ReverseQueryIndex::RowDifferenceInto(const std::vector<QueryId>& new_row,
                                          const std::vector<QueryId>& prev_row,
                                          std::vector<QueryId>* scratch,
                                          std::vector<QueryId>* out) {
  out->clear();
  scratch->assign(prev_row.begin(), prev_row.end());
  std::sort(scratch->begin(), scratch->end());
  for (QueryId qid : new_row) {
    if (!std::binary_search(scratch->begin(), scratch->end(), qid)) {
      out->push_back(qid);
    }
  }
}

}  // namespace mobieyes::core
