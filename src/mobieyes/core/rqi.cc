#include "mobieyes/core/rqi.h"

#include <algorithm>

namespace mobieyes::core {

void ReverseQueryIndex::Add(QueryId qid, const geo::CellRange& mon_region) {
  mon_region.ForEach([&](int32_t i, int32_t j) {
    cells_[grid_->FlatIndex(geo::CellCoord{i, j})].push_back(qid);
  });
}

void ReverseQueryIndex::Remove(QueryId qid, const geo::CellRange& mon_region) {
  mon_region.ForEach([&](int32_t i, int32_t j) {
    auto& list = cells_[grid_->FlatIndex(geo::CellCoord{i, j})];
    auto it = std::find(list.begin(), list.end(), qid);
    if (it != list.end()) list.erase(it);
  });
}

void ReverseQueryIndex::RemoveCell(QueryId qid, const geo::CellCoord& c) {
  auto& list = cells_[grid_->FlatIndex(c)];
  auto it = std::find(list.begin(), list.end(), qid);
  if (it != list.end()) list.erase(it);
}

std::vector<QueryId> ReverseQueryIndex::NewQueriesForMove(
    const geo::CellCoord& prev_cell, const geo::CellCoord& new_cell) const {
  const auto& prev_list = QueriesForCell(prev_cell);
  std::vector<QueryId> result;
  for (QueryId qid : QueriesForCell(new_cell)) {
    if (std::find(prev_list.begin(), prev_list.end(), qid) ==
        prev_list.end()) {
      result.push_back(qid);
    }
  }
  return result;
}

}  // namespace mobieyes::core
