#ifndef MOBIEYES_CORE_SNAPSHOT_H_
#define MOBIEYES_CORE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/status.h"
#include "mobieyes/net/message.h"

namespace mobieyes::core {

// One write-ahead-log record: a state-mutating uplink exactly as it arrived
// at the server (sender + full envelope, including the reliable-uplink
// sequence number so replay passes through the same dedup path).
struct WalRecord {
  ObjectId from = kInvalidObjectId;
  net::Message message;
};

// Durable store of one MobiEyesServer: the last checkpoint image plus a
// bounded write-ahead log of the state-mutating uplinks accepted since. The
// store models the stable storage a real mediator would sync to — it is
// owned outside the server process (by the Simulation), so it survives a
// server crash and seeds Server::Restore() on the replacement instance.
//
// Recovery contract: decode(checkpoint) + replay(wal, in order) reproduces
// the server's pre-crash state exactly, as long as the WAL never overflowed.
// When more than `wal_limit` uplinks arrive between checkpoints, the log
// stops recording (keeping its consistent prefix) and counts the overflow;
// the restored state is then merely *stale*, and the soft-state machinery
// (leases + LQT reconciliation) closes the remaining gap.
class Snapshot {
 public:
  static constexpr uint32_t kMagic = 0x4d6f4353;  // "MoCS"
  static constexpr uint16_t kVersion = 1;

  // Serialized server image (empty until the first Server::Checkpoint()).
  std::vector<uint8_t> checkpoint;
  // Uplinks accepted after the checkpoint, in arrival order.
  std::vector<WalRecord> wal;
  size_t wal_limit = 4096;
  // Uplinks that arrived after the WAL filled and were not logged.
  uint64_t wal_dropped = 0;

  bool has_checkpoint() const { return !checkpoint.empty(); }

  // Logs one uplink, or counts it dropped once the WAL is full. Dropping
  // the *newest* records (rather than the oldest) keeps the log a replayable
  // prefix: replaying a log with a hole would apply newer state on top of a
  // gap and could resurrect already-superseded entries.
  void Append(ObjectId from, const net::Message& message);

  // Installs a fresh checkpoint image and truncates the WAL (the image
  // already reflects everything the log held).
  void Install(std::vector<uint8_t> image);

  // Serializes the whole store (image + WAL) to one buffer; WAL messages go
  // through the wire codec (net::MessageCodec), so the durable format and
  // the wire format cannot drift apart.
  std::vector<uint8_t> Serialize() const;

  // Parses a buffer produced by Serialize. Returns InvalidArgument on a bad
  // magic/version, truncation, or any malformed embedded message.
  static Result<Snapshot> Parse(const std::vector<uint8_t>& buffer);
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SNAPSHOT_H_
