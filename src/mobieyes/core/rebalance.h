#ifndef MOBIEYES_CORE_REBALANCE_H_
#define MOBIEYES_CORE_REBALANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobieyes/common/status.h"
#include "mobieyes/core/server_shard.h"

namespace mobieyes::core {

// Deterministic rebalance planner (DESIGN.md §15). Pure function of its
// arguments: `owners` is the current cell→shard assignment (one entry per
// flat cell index), `load` the step-synchronous per-cell uplink counts
// accumulated since the last planning point (layout-invariant — charged at
// the cell, not the shard, so the plan is identical across thread counts
// and transports). Returns a bounded move set, sorted by flat index, that
// shaves load off the hottest shard when its share exceeds `threshold`
// times the mean; an empty vector means the partition stays put.
//
// Greedy policy, chosen for determinism over optimality: while the hottest
// shard is above threshold and moves remain, move its hottest cell (ties:
// lowest flat index) to the coldest shard (ties: lowest shard id), but only
// when that strictly narrows the gap. A cell never moves twice in one plan.
std::vector<CellMove> PlanRebalance(const std::vector<int32_t>& owners,
                                    const std::vector<uint64_t>& load,
                                    int num_shards, double threshold,
                                    int max_moves);

// Parses a --rebalance flag value into the sharding options: "off" (or "")
// disables rebalancing (stride 0 — the byte-identical default path), and
// "STRIDE:THRESHOLD:MAX_MOVES" (e.g. "8:1.2:16") enables it with stride >= 1
// steps between planning points, threshold > 1.0, and max_moves >= 1 cell
// moves per rebalance. Shared by mobieyes_sim and the bench harness so
// every CLI accepts the same spelling.
Status ParseRebalanceSpec(const std::string& spec, ShardingOptions* sharding);

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_REBALANCE_H_
