#ifndef MOBIEYES_CORE_SHARD_ROUTER_H_
#define MOBIEYES_CORE_SHARD_ROUTER_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/stopwatch.h"
#include "mobieyes/common/thread_pool.h"
#include "mobieyes/common/units.h"
#include "mobieyes/core/options.h"
#include "mobieyes/core/server_shard.h"
#include "mobieyes/core/snapshot.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"
#include "mobieyes/obs/heatmap.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::obs {
class LifecycleTracker;
}  // namespace mobieyes::obs

namespace mobieyes::core {

class ShardTransport;

// Coordinator in front of N grid-partitioned ServerShards (DESIGN.md §10).
// The router owns the protocol: it dispatches every uplink serially in
// arrival order (the in-process network is synchronous, so responses land
// mid-tick and feed the same tick's client evaluations — reordering would
// change observable behavior), resolves which shard homes each FOT/SQT
// entry, migrates ownership with explicit ShardHandoff messages when a
// focal object crosses a partition boundary, and funnels every downlink
// through the wireless network in the exact order the monolith produced.
// What parallelizes across shards is the step phase: expiry scans, lease
// scans, and checkpoint-chunk encoding, all shard-local reads.
//
// Invariant (co-location): a focal object's FOT row and every SQT entry
// bound to it live on the shard owning the focal's current cell. RQI rows
// are keyed by cell and never migrate.
class ShardRouter {
 public:
  // Coordinator-side traffic of the sharded deployment; all zero with one
  // shard. Mirrored into NetworkStats::inter_shard_* by the simulation.
  struct BackplaneStats {
    uint64_t messages = 0;
    uint64_t bytes = 0;
    uint64_t handoffs = 0;  // subset of messages
  };

  // Online rebalancing volume (DESIGN.md §15); all zero with rebalancing
  // off. Deterministic at fixed shard count: every field counts planner
  // decisions, never wall clock.
  struct RebalanceStats {
    uint64_t events = 0;        // rebalances that moved at least one cell
    uint64_t cells_moved = 0;
    uint64_t focals_moved = 0;  // handoffs driven by cell reassignment
    uint64_t rqi_ids_moved = 0;  // query ids carried by moved RQI rows
  };

  ShardRouter(const geo::Grid& grid, const net::BaseStationLayout& layout,
              const net::Bmap& bmap, net::WirelessNetwork& network,
              MobiEyesOptions options);

  Result<QueryId> InstallQuery(ObjectId focal_oid,
                               const geo::QueryRegion& region,
                               double filter_threshold, Seconds duration);
  void AdvanceTime(Seconds now);
  Seconds now() const { return now_; }
  Status RemoveQuery(QueryId qid);
  void OnUplink(ObjectId from, const net::Message& message);

  // --- Introspection -------------------------------------------------------

  Result<std::unordered_set<ObjectId>> QueryResult(QueryId qid) const;
  const SqtEntry* FindQuery(QueryId qid) const;
  const FotEntry* FindFocal(ObjectId oid) const;
  size_t query_count() const { return qid_home_.size(); }

  // The RQI row of `cell`, read from the owning shard.
  const std::vector<QueryId>& QueriesForCell(const geo::CellCoord& cell) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const geo::Grid& grid() const { return *grid_; }
  const ShardMap& shard_map() const { return map_; }
  const ServerShard& shard(int k) const { return *shards_[k]; }
  // Home shard of a query / focal object; -1 if unknown.
  int ShardOfQuery(QueryId qid) const;
  int ShardOfFocal(ObjectId oid) const;
  const BackplaneStats& backplane() const { return backplane_; }
  const RebalanceStats& rebalance_stats() const { return rebalance_stats_; }

  // --- Online rebalancing (DESIGN.md §15) ----------------------------------
  //
  // Called once per simulation step, at the step boundary (after the tick's
  // uplinks, before the step's checkpoint and transport pump). Every
  // rebalance_stride steps it plans against the per-cell uplink-load window
  // accumulated since the last planning point and, when the plan is
  // non-empty, advances the partition epoch and migrates RQI rows and focal
  // ownership under the new assignment. No-op unless
  // options.sharding.rebalance_enabled().
  void MaybeRebalance(int64_t step);

  double load_seconds() const { return load_timer_.total_seconds(); }
  // Wall time of the parallelized step phase (expiry scan, lease scan,
  // checkpoint encode) — the quantity the shard bench compares across
  // shard counts.
  double step_seconds() const { return step_timer_.total_seconds(); }
  void ResetLoadTimer() {
    load_timer_.Reset();
    step_timer_.Reset();
    for (auto& shard : shards_) shard->stats().step_micros = 0;
  }

  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }
  // Pool for the per-shard step phase; null (default) runs shards inline.
  // The pool must outlive the router.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  // --- Heat maps & lifecycle (DESIGN.md §12) -------------------------------
  //
  // Creates one HeatMap per shard over a rows×cols cell raster. Every
  // charge is attributed to the shard owning the charged *cell* (not the
  // shard that happened to do the work), so summing the per-shard windows
  // in fixed shard order yields totals that are byte-identical across
  // shard counts. Charges are suppressed while replaying a WAL: the
  // pre-crash run already recorded that work.
  void EnableHeatmaps(int32_t rows, int32_t cols);
  // Per-shard map, or nullptr when heat maps are disabled or `k` is not a
  // shard index.
  obs::HeatMap* shard_heatmap(int k) {
    if (k < 0 || static_cast<size_t>(k) >= heatmaps_.size()) return nullptr;
    return heatmaps_[k].get();
  }

  // Lifecycle latency tap (install->first-result rounds keyed by qid,
  // handoff rounds keyed by oid); null (the default) disables it. The
  // tracker must outlive the router.
  void set_lifecycle(obs::LifecycleTracker* lifecycle) {
    lifecycle_ = lifecycle;
  }

  // --- Process transport (DESIGN.md §13) -----------------------------------
  //
  // When a transport is attached, every shard-state op is mirrored through
  // it (so out-of-process replicas track the authoritative shards) and
  // uplinks whose ingress shard's daemon is down are deferred instead of
  // dispatched — the degraded mode of a partial outage. Null (the default)
  // keeps the pure in-process behavior, byte for byte.

  struct TransportStats {
    uint64_t uplinks_deferred = 0;  // queued while the ingress shard was down
    uint64_t uplinks_dropped = 0;   // refused: deferral queue full
    uint64_t uplinks_drained = 0;   // re-dispatched after a rejoin
  };

  void set_transport(ShardTransport* transport) { transport_ = transport; }
  ShardTransport* transport() const { return transport_; }
  void set_max_deferred_uplinks(size_t n) { max_deferred_uplinks_ = n; }
  size_t deferred_uplinks() const { return deferred_.size(); }
  const TransportStats& transport_stats() const { return transport_stats_; }
  // Re-dispatches deferred uplinks, oldest first; an uplink whose ingress
  // shard is still down goes back on the queue.
  void DrainDeferredUplinks();

  // --- Crash recovery (DESIGN.md §9, §10) ----------------------------------

  void set_durable_store(Snapshot* store) { store_ = store; }
  Snapshot* durable_store() const { return store_; }
  void Checkpoint();
  Status Restore(const Snapshot& store, size_t* replayed);

 private:
  void HandleQueryInstallRequest(const net::QueryInstallRequest& request);
  void HandlePositionVelocityReport(const net::PositionVelocityReport& report);
  void HandleVelocityChange(const net::VelocityChangeReport& report);
  void HandleCellChange(const net::CellChangeReport& report);
  void HandleResultBitmap(const net::ResultBitmapReport& report);
  void HandleLqtReconcile(const net::LqtReconcileRequest& request);

  bool AckAndDedup(ObjectId from, uint32_t seq);
  void RenewLeases();

  // Shard that first receives an uplink: the one owning the reporting
  // object's cell (per the message's own cell evidence). Cross-shard work
  // relative to this ingress is what the backplane accounting charges.
  int IngressShard(const net::Message& message) const;

  // Mutable entry lookups through the home indexes.
  SqtEntry* MutableQuery(QueryId qid);
  FotEntry* MutableFocal(ObjectId oid);

  // Re-homes `oid` (and its bound queries) if its recorded cell moved into
  // another shard's partition, by delivering a ShardHandoff message.
  // Returns the (possibly new) home shard.
  int MigrateIfNeeded(ObjectId oid);

  // Applies a non-empty rebalance plan: advances the map epoch, moves the
  // affected RQI rows verbatim, and re-homes every focal object whose cell
  // changed owner through the ordinary kShardHandoff path.
  void ExecuteRebalance(const std::vector<CellMove>& moves);

  // RQI registration fanned out to every shard intersecting the region.
  void RqiAddAll(QueryId qid, const geo::CellRange& mon_region);
  void RqiRemoveAll(QueryId qid, const geo::CellRange& mon_region);

  // The RQI row for `cell`, read from its owning shard. In authority mode
  // (DESIGN.md §14) the transport executes the read on the shard's daemon
  // into *scratch; everywhere else — replica mode, WAL replay, same-step
  // failover — the warm local mirror answers. Both paths return identical
  // bytes, which is what keeps authority runs deterministic under chaos.
  const std::vector<QueryId>& RqiRow(const geo::CellCoord& cell,
                                     std::vector<QueryId>* scratch);

  // Charges one backplane message to reach `target_shard` from the current
  // ingress shard (free when local, single-shard, or replaying the WAL).
  void CountOp(int target_shard, size_t payload_bytes);

  // Adds `n` to `channel` at `cell` on the heat map of the shard owning
  // that cell. No-op when heat maps are disabled, while replaying a WAL,
  // or for n == 0.
  void ChargeHeat(obs::HeatMap::Channel channel, const geo::CellCoord& cell,
                  uint64_t n);
  // Cell evidence an uplink carries, for heat-map attribution; false for
  // messages with no resolvable cell (e.g. a bitmap report whose queries
  // are all gone).
  bool UplinkHeatCell(const net::Message& message, geo::CellCoord* cell) const;

  net::QueryInfo BuildQueryInfo(const ServerShard& home,
                                const SqtEntry& entry) const;
  void BroadcastToRegion(const geo::CellRange& region, net::Message message);
  void SendDownlink(ObjectId to, net::Message message);

  // Runs fn(shard_index) for every shard — on the pool when attached and
  // multi-shard, inline otherwise — and emits per-shard trace spans (tid =
  // shard id + 1) from the calling thread after joining. Const: it mutates
  // no router state (workers touch only their own shard's slice).
  template <typename Fn>
  void ForEachShard(const char* span_name, const Fn& fn) const;

  std::vector<uint8_t> EncodeImage() const;
  Status DecodeImage(const std::vector<uint8_t>& image);

  const geo::Grid* grid_;
  const net::BaseStationLayout* layout_;
  const net::Bmap* bmap_;
  net::WirelessNetwork* network_;
  MobiEyesOptions options_;

  ShardMap map_;
  std::vector<std::unique_ptr<ServerShard>> shards_;
  // Home indexes: which shard currently owns each entry. Queries are always
  // co-located with their focal object.
  std::unordered_map<ObjectId, int> focal_home_;
  std::unordered_map<QueryId, int> qid_home_;

  QueryId next_qid_ = 0;
  Seconds now_ = 0.0;

  // Recently seen uplink sequence numbers per object (at-most-once dedup
  // for the reliable-uplink hardening). A small ring suffices: a client
  // tracks at most 16 uplinks and retires them in rough FIFO order.
  struct SeenSeqs {
    std::array<uint32_t, 8> ring{};
    size_t next = 0;
  };
  std::unordered_map<ObjectId, SeenSeqs> seen_seqs_;
  // Keys of seen_seqs_, kept sorted incrementally (an object enters once,
  // on its first reliable uplink). Checkpoints write the dedup table in
  // ascending-oid order; maintaining the order here turns the encoder's
  // per-checkpoint key sort into a contiguous range walk that parallelizes
  // across shards.
  std::vector<ObjectId> seen_order_;

  Snapshot* store_ = nullptr;
  bool replaying_ = false;    // inside Restore's WAL replay: suppress sends
  bool dispatching_ = false;  // inside OnUplink: the WAL already has this

  int ctx_shard_ = 0;  // ingress shard of the uplink being dispatched
  BackplaneStats backplane_;
  RebalanceStats rebalance_stats_;
  // Per-cell uplink counts since the last planning point (sized to the grid
  // only when rebalancing is enabled). Charged at the cell an uplink names
  // — layout- and thread-invariant, like the heat maps — and zeroed after
  // every planning point, moved or not.
  std::vector<uint64_t> load_window_;
  // Scratch for MaybeRebalance's assignment snapshot.
  std::vector<int32_t> owners_scratch_;

  ShardTransport* transport_ = nullptr;
  size_t max_deferred_uplinks_ = 4096;
  // Uplinks awaiting a downed ingress shard, in arrival order.
  std::vector<std::pair<ObjectId, net::Message>> deferred_;
  TransportStats transport_stats_;

  // Per-step scratch, reused so the hot server phases allocate nothing at
  // steady state: the per-shard scan outputs and their merge vector
  // (AdvanceTime / RenewLeases), the RQI row-diff buffers
  // (HandleCellChange), and the reconcile expected/known sets
  // (HandleLqtReconcile). Dispatch is serial and none of the users can
  // re-enter itself through the synchronous network, so one copy suffices.
  std::vector<std::vector<QueryId>> scan_per_shard_;
  std::vector<QueryId> scan_merged_;
  std::vector<QueryId> diff_scratch_;
  std::vector<QueryId> diff_out_;
  std::vector<QueryId> reconcile_expected_;
  std::vector<QueryId> reconcile_known_;
  // Authority-scan result rows. Two slots: HandleCellChange holds the
  // previous cell's row across the new cell's read.
  std::vector<QueryId> scan_row_a_;
  std::vector<QueryId> scan_row_b_;

  ReentrantTimer load_timer_;
  ReentrantTimer step_timer_;
  ThreadPool* pool_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  // One heat map per shard (empty unless EnableHeatmaps was called).
  std::vector<std::unique_ptr<obs::HeatMap>> heatmaps_;
  obs::LifecycleTracker* lifecycle_ = nullptr;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SHARD_ROUTER_H_
