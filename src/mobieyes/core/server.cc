#include "mobieyes/core/server.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <tuple>

#include "mobieyes/net/codec.h"

namespace mobieyes::core {

namespace {

// Checkpoint image framing ("MoCI"), distinct from the store framing
// ("MoCS") and the wire framing ("MoEY") so a buffer can never be mistaken
// for the wrong layer.
constexpr uint32_t kImageMagic = 0x4d6f4349;
constexpr uint16_t kImageVersion = 1;

// Hash-map keys in deterministic order, so two checkpoints of identical
// logical state are byte-identical.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

using net::Message;
using net::QueryInfo;

MobiEyesServer::MobiEyesServer(const geo::Grid& grid,
                               const net::BaseStationLayout& layout,
                               const net::Bmap& bmap,
                               net::WirelessNetwork& network,
                               MobiEyesOptions options)
    : grid_(&grid),
      layout_(&layout),
      bmap_(&bmap),
      network_(&network),
      options_(options),
      rqi_(grid) {}

Result<QueryId> MobiEyesServer::InstallQuery(ObjectId focal_oid, Miles radius,
                                             double filter_threshold,
                                             Seconds duration) {
  if (radius <= 0.0) {
    return Status::InvalidArgument("query radius must be positive");
  }
  return InstallQuery(focal_oid, geo::QueryRegion::MakeCircle(radius),
                      filter_threshold, duration);
}

Result<QueryId> MobiEyesServer::InstallQuery(ObjectId focal_oid,
                                             const geo::QueryRegion& region,
                                             double filter_threshold,
                                             Seconds duration) {
  TimedSection timed(load_timer_);
  TRACE_SPAN(trace_, "server.install_query");
  if (!region.valid()) {
    return Status::InvalidArgument("query region must have positive extent");
  }
  if (duration <= 0.0) {
    return Status::InvalidArgument("query duration must be positive");
  }

  // Write-ahead for server-side installations: uplink-driven installs are
  // already logged by OnUplink (dispatching_), but an install through this
  // public API would otherwise be invisible to the WAL and vanish on
  // restore. The wire request carries no duration, so a finite-duration
  // query replayed from the WAL loses its expiry — checkpoints taken after
  // the install record the real deadline.
  if (store_ != nullptr && !replaying_ && !dispatching_) {
    store_->Append(focal_oid,
                   net::MakeMessage(net::QueryInstallRequest{
                       focal_oid, region, filter_threshold}));
  }

  // §3.3 step 3: if the focal object is unknown, request its kinematics.
  // Delivery is synchronous, so the PositionVelocityReport round trip
  // completes (and fills the FOT) before the call below returns. (During
  // WAL replay the round trip is suppressed; Restore pre-applies the logged
  // PositionVelocityReport instead.)
  if (!fot_.contains(focal_oid)) {
    SendDownlink(focal_oid,
                 net::MakeMessage(net::PositionVelocityRequest{focal_oid}));
    if (!fot_.contains(focal_oid)) {
      return Status::NotFound("focal object did not report its position");
    }
  }
  FotEntry& focal = fot_.at(focal_oid);

  // §3.3 step 4: create the SQT entry and index it in the RQI.
  QueryId qid = next_qid_++;
  SqtEntry entry;
  entry.qid = qid;
  entry.focal_oid = focal_oid;
  entry.region = region;
  entry.filter_threshold = filter_threshold;
  entry.curr_cell = focal.cell;
  entry.mon_region = grid_->MonitoringRegion(entry.curr_cell,
                                             region.ReachX(),
                                             region.ReachY());
  entry.expires_at =
      duration == kNeverExpires ? kNeverExpires : now_ + duration;
  if (options_.lease_duration > 0.0) {
    // Stagger the first renewal by query id so lease refreshes spread over
    // the period instead of bursting on one step.
    entry.lease_renew_at =
        now_ + options_.lease_duration *
                   (1.0 + static_cast<double>(qid % 8) / 8.0);
  }
  rqi_.Add(qid, entry.mon_region);
  focal.queries.push_back(qid);
  auto [it, inserted] = sqt_.emplace(qid, std::move(entry));
  (void)inserted;

  // Tell the focal object it now has a bound query (sets hasMQ), then
  // install the query on every object in the monitoring region through the
  // minimal set of covering base stations.
  SendDownlink(focal_oid,
               net::MakeMessage(net::FocalNotification{focal_oid, qid}));
  net::QueryInstallBroadcast broadcast;
  broadcast.queries.push_back(BuildQueryInfo(it->second));
  BroadcastToRegion(it->second.mon_region,
                    net::MakeMessage(std::move(broadcast)));
  return qid;
}

void MobiEyesServer::AdvanceTime(Seconds now) {
  TRACE_SPAN(trace_, "server.advance_time");
  now_ = now;
  std::vector<QueryId> expired;
  {
    TimedSection timed(load_timer_);
    for (const auto& [qid, entry] : sqt_) {
      if (entry.expires_at <= now) expired.push_back(qid);
    }
  }
  // Sorted so removal-broadcast order does not depend on hash-map layout —
  // a server restored from a checkpoint must behave exactly like one that
  // never crashed.
  std::sort(expired.begin(), expired.end());
  for (QueryId qid : expired) {
    (void)RemoveQuery(qid);
  }
  if (options_.lease_duration > 0.0) RenewLeases();
}

void MobiEyesServer::RenewLeases() {
  std::vector<QueryId> due;
  {
    TimedSection timed(load_timer_);
    for (const auto& [qid, entry] : sqt_) {
      if (entry.lease_renew_at <= now_) due.push_back(qid);
    }
  }
  // Sorted so the broadcast order (and hence any fault-injection draw
  // sequence downstream) is independent of hash-map iteration order.
  std::sort(due.begin(), due.end());
  for (QueryId qid : due) {
    SqtEntry& entry = sqt_.at(qid);
    entry.lease_renew_at = now_ + options_.lease_duration;
    // Re-assert hasMQ on the focal object (a lost FocalNotification would
    // otherwise silence its dead reckoning forever), then refresh the
    // monitoring region. QueryUpdateBroadcast is idempotent on receivers:
    // they install, update or drop based on their own cell.
    SendDownlink(entry.focal_oid,
                 net::MakeMessage(net::FocalNotification{entry.focal_oid,
                                                         qid}));
    net::QueryUpdateBroadcast broadcast;
    broadcast.queries.push_back(BuildQueryInfo(entry));
    BroadcastToRegion(entry.mon_region,
                      net::MakeMessage(std::move(broadcast)));
  }
}

Status MobiEyesServer::RemoveQuery(QueryId qid) {
  TimedSection timed(load_timer_);
  auto it = sqt_.find(qid);
  if (it == sqt_.end()) return Status::NotFound("unknown query id");
  SqtEntry entry = std::move(it->second);
  sqt_.erase(it);
  rqi_.Remove(qid, entry.mon_region);

  auto fot_it = fot_.find(entry.focal_oid);
  if (fot_it != fot_.end()) {
    auto& queries = fot_it->second.queries;
    queries.erase(std::find(queries.begin(), queries.end(), qid));
    if (queries.empty()) {
      // No query bound to this object anymore: clear its hasMQ flag (and
      // drop it from the FOT — nothing left to mediate for it).
      SendDownlink(entry.focal_oid,
                   net::MakeMessage(net::FocalNotification{
                       entry.focal_oid, kInvalidQueryId}));
      fot_.erase(fot_it);
    }
  }

  net::QueryRemoveBroadcast broadcast;
  broadcast.qids.push_back(qid);
  BroadcastToRegion(entry.mon_region, net::MakeMessage(std::move(broadcast)));
  return Status::OK();
}

void MobiEyesServer::OnUplink(ObjectId from, const Message& message) {
  TimedSection timed(load_timer_);
  // Write-ahead: log the uplink before any handler mutates state, so the
  // durable store always covers everything the in-memory state reflects.
  // Duplicates are logged too — replay routes them through the same dedup.
  if (store_ != nullptr && !replaying_) store_->Append(from, message);
  const bool outer_dispatch = dispatching_;
  dispatching_ = true;
  // A non-zero envelope seq marks a tracked uplink (reliable-uplink
  // hardening): acknowledge it and drop retransmissions of messages already
  // processed.
  if (message.seq != 0 && AckAndDedup(from, message.seq)) {
    dispatching_ = outer_dispatch;
    return;
  }
  switch (message.type) {
    case net::MessageType::kQueryInstallRequest: {
      TRACE_SPAN(trace_, "server.handle_query_install_request");
      HandleQueryInstallRequest(
          std::get<net::QueryInstallRequest>(message.payload));
      break;
    }
    case net::MessageType::kPositionVelocityReport: {
      TRACE_SPAN(trace_, "server.handle_position_velocity_report");
      HandlePositionVelocityReport(
          std::get<net::PositionVelocityReport>(message.payload));
      break;
    }
    case net::MessageType::kVelocityChangeReport: {
      TRACE_SPAN(trace_, "server.handle_velocity_change");
      HandleVelocityChange(
          std::get<net::VelocityChangeReport>(message.payload));
      break;
    }
    case net::MessageType::kCellChangeReport: {
      TRACE_SPAN(trace_, "server.handle_cell_change");
      HandleCellChange(std::get<net::CellChangeReport>(message.payload));
      break;
    }
    case net::MessageType::kResultBitmapReport: {
      TRACE_SPAN(trace_, "server.handle_result_bitmap");
      HandleResultBitmap(std::get<net::ResultBitmapReport>(message.payload));
      break;
    }
    case net::MessageType::kLqtReconcileRequest: {
      TRACE_SPAN(trace_, "server.handle_lqt_reconcile");
      HandleLqtReconcile(
          std::get<net::LqtReconcileRequest>(message.payload));
      break;
    }
    default:
      // Downlink-only types are never valid on the uplink; ignore.
      break;
  }
  dispatching_ = outer_dispatch;
}

bool MobiEyesServer::AckAndDedup(ObjectId from, uint32_t seq) {
  SeenSeqs& seen = seen_seqs_[from];
  bool duplicate = false;
  for (uint32_t s : seen.ring) {
    if (s == seq) {
      duplicate = true;
      break;
    }
  }
  if (!duplicate) {
    seen.ring[seen.next] = seq;
    seen.next = (seen.next + 1) % seen.ring.size();
  }
  // Always (re-)acknowledge: the previous ack may itself have been lost,
  // and only an ack stops the sender's retransmissions.
  SendDownlink(from, net::MakeMessage(net::UplinkAck{from, seq}));
  return duplicate;
}

void MobiEyesServer::HandleQueryInstallRequest(
    const net::QueryInstallRequest& request) {
  // A user poses a query from their mobile device; same path as a
  // server-side installation.
  (void)InstallQuery(request.oid, request.region, request.filter_threshold);
}

void MobiEyesServer::HandlePositionVelocityReport(
    const net::PositionVelocityReport& report) {
  FotEntry& entry = fot_[report.oid];
  entry.state = report.state;
  entry.max_speed = report.max_speed;
  entry.cell = grid_->CellOf(report.state.pos);
}

void MobiEyesServer::HandleVelocityChange(
    const net::VelocityChangeReport& report) {
  auto fot_it = fot_.find(report.oid);
  if (fot_it == fot_.end()) return;  // stale report from an unbound object
  FotEntry& focal = fot_it->second;
  // A delayed or retransmitted report can arrive after a newer one; relaying
  // the older vector would roll every monitoring region's prediction back.
  if (report.state.tm < focal.state.tm) return;
  focal.state = report.state;
  focal.cell = grid_->CellOf(report.state.pos);

  // §3.4: relay the new vector to the monitoring region of each query bound
  // to this focal object. Groupable queries sharing a monitoring region are
  // served by a single broadcast (§4.1); without grouping each query gets
  // its own broadcast as in the base protocol.
  const bool lazy = options_.propagation == PropagationMode::kLazy;
  if (options_.enable_query_grouping) {
    std::map<std::tuple<int32_t, int32_t, int32_t, int32_t>,
             std::vector<QueryId>>
        by_region;
    for (QueryId qid : focal.queries) {
      const SqtEntry& entry = sqt_.at(qid);
      by_region[{entry.mon_region.i_lo, entry.mon_region.i_hi,
                 entry.mon_region.j_lo, entry.mon_region.j_hi}]
          .push_back(qid);
    }
    for (const auto& [key, qids] : by_region) {
      geo::CellRange region{std::get<0>(key), std::get<1>(key),
                            std::get<2>(key), std::get<3>(key)};
      net::VelocityChangeBroadcast broadcast;
      broadcast.focal_oid = report.oid;
      broadcast.state = report.state;
      if (lazy) {
        broadcast.carries_query_info = true;
        for (QueryId qid : qids) {
          broadcast.queries.push_back(BuildQueryInfo(sqt_.at(qid)));
        }
      }
      BroadcastToRegion(region, net::MakeMessage(std::move(broadcast)));
    }
  } else {
    for (QueryId qid : focal.queries) {
      const SqtEntry& entry = sqt_.at(qid);
      net::VelocityChangeBroadcast broadcast;
      broadcast.focal_oid = report.oid;
      broadcast.state = report.state;
      if (lazy) {
        broadcast.carries_query_info = true;
        broadcast.queries.push_back(BuildQueryInfo(entry));
      }
      BroadcastToRegion(entry.mon_region,
                        net::MakeMessage(std::move(broadcast)));
    }
  }
}

void MobiEyesServer::HandleCellChange(const net::CellChangeReport& report) {
  // §3.5. For any reporting object under eager propagation, answer with the
  // queries that newly cover its destination cell.
  if (options_.propagation == PropagationMode::kEager) {
    std::vector<QueryId> new_qids =
        rqi_.NewQueriesForMove(report.prev_cell, report.new_cell);
    // The object never monitors its own queries.
    std::erase_if(new_qids, [&](QueryId qid) {
      return sqt_.at(qid).focal_oid == report.oid;
    });
    if (!new_qids.empty()) {
      net::NewQueriesNotification notification;
      notification.oid = report.oid;
      for (QueryId qid : new_qids) {
        notification.queries.push_back(BuildQueryInfo(sqt_.at(qid)));
      }
      SendDownlink(report.oid, net::MakeMessage(std::move(notification)));
    }
  }

  // Additional operations when the mover is a focal object: recompute each
  // bound query's monitoring region and notify the union of the old and new
  // regions.
  auto fot_it = fot_.find(report.oid);
  if (fot_it == fot_.end()) return;
  FotEntry& focal = fot_it->second;
  focal.cell = report.new_cell;

  // Group queries that share both old and new monitoring regions into one
  // broadcast (matching monitoring regions, §4.1).
  std::map<std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t, int32_t,
                      int32_t, int32_t>,
           std::vector<QueryId>>
      by_region_pair;
  for (QueryId qid : focal.queries) {
    SqtEntry& entry = sqt_.at(qid);
    geo::CellRange old_region = entry.mon_region;
    entry.curr_cell = report.new_cell;
    entry.mon_region = grid_->MonitoringRegion(
        report.new_cell, entry.region.ReachX(), entry.region.ReachY());
    rqi_.Remove(qid, old_region);
    rqi_.Add(qid, entry.mon_region);
    auto key = std::make_tuple(old_region.i_lo, old_region.i_hi,
                               old_region.j_lo, old_region.j_hi,
                               entry.mon_region.i_lo, entry.mon_region.i_hi,
                               entry.mon_region.j_lo, entry.mon_region.j_hi);
    if (options_.enable_query_grouping) {
      by_region_pair[key].push_back(qid);
    } else {
      net::QueryUpdateBroadcast broadcast;
      broadcast.queries.push_back(BuildQueryInfo(entry));
      BroadcastToRegion(geo::CellRange::Union(old_region, entry.mon_region),
                        net::MakeMessage(std::move(broadcast)));
    }
  }
  for (const auto& [key, qids] : by_region_pair) {
    geo::CellRange old_region{std::get<0>(key), std::get<1>(key),
                              std::get<2>(key), std::get<3>(key)};
    geo::CellRange new_region{std::get<4>(key), std::get<5>(key),
                              std::get<6>(key), std::get<7>(key)};
    net::QueryUpdateBroadcast broadcast;
    for (QueryId qid : qids) {
      broadcast.queries.push_back(BuildQueryInfo(sqt_.at(qid)));
    }
    BroadcastToRegion(geo::CellRange::Union(old_region, new_region),
                      net::MakeMessage(std::move(broadcast)));
  }
}

void MobiEyesServer::HandleResultBitmap(const net::ResultBitmapReport& report) {
  for (size_t k = 0; k < report.qids.size(); ++k) {
    auto it = sqt_.find(report.qids[k]);
    if (it == sqt_.end()) continue;
    bool is_target = (report.bitmap >> k) & 1;
    if (is_target) {
      it->second.result.insert(report.oid);
    } else {
      it->second.result.erase(report.oid);
    }
  }
}

void MobiEyesServer::HandleLqtReconcile(
    const net::LqtReconcileRequest& request) {
  if (request.cold_start) {
    // The object restarted and lost its containment state: every result
    // membership it previously reported is now unverifiable. Clear it
    // everywhere and let its fresh evaluations re-report the flips —
    // briefly missing beats spuriously present forever.
    for (auto& [qid, entry] : sqt_) entry.result.erase(request.oid);
    // A restarted focal object also lost hasMQ; without this repair it
    // would stop dead-reckoning for its queries until the next lease
    // renewal.
    auto fot_it = fot_.find(request.oid);
    if (fot_it != fot_.end() && !fot_it->second.queries.empty()) {
      SendDownlink(request.oid,
                   net::MakeMessage(net::FocalNotification{
                       request.oid, fot_it->second.queries.front()}));
    }
  }
  // Queries that should cover the object's current cell per the RQI. The
  // client re-checks filter and cell on install, so over-sending is safe.
  std::vector<QueryId> expected;
  for (QueryId qid : rqi_.QueriesForCell(request.cell)) {
    if (sqt_.at(qid).focal_oid != request.oid) expected.push_back(qid);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<QueryId> known = request.known_qids;
  std::sort(known.begin(), known.end());

  std::vector<QueryId> missing;
  std::set_difference(expected.begin(), expected.end(), known.begin(),
                      known.end(), std::back_inserter(missing));
  std::vector<QueryId> stale;
  std::set_difference(known.begin(), known.end(), expected.begin(),
                      expected.end(), std::back_inserter(stale));

  // Resynchronize result membership from the client's own view: what it
  // holds is the ground truth for its containment bits, and flips reported
  // while it was unreachable are lost for good.
  std::unordered_set<QueryId> targets(request.target_qids.begin(),
                                      request.target_qids.end());
  for (QueryId qid : request.known_qids) {
    auto it = sqt_.find(qid);
    if (it == sqt_.end()) continue;
    if (targets.contains(qid)) {
      it->second.result.insert(request.oid);
    } else {
      it->second.result.erase(request.oid);
    }
  }
  for (QueryId qid : stale) {
    auto it = sqt_.find(qid);
    if (it != sqt_.end()) it->second.result.erase(request.oid);
  }

  if (!missing.empty()) {
    net::NewQueriesNotification notification;
    notification.oid = request.oid;
    for (QueryId qid : missing) {
      notification.queries.push_back(BuildQueryInfo(sqt_.at(qid)));
    }
    SendDownlink(request.oid, net::MakeMessage(std::move(notification)));
  }
  if (!stale.empty()) {
    // One-to-one removal: only this object holds the stale entries.
    SendDownlink(request.oid,
                 net::MakeMessage(
                     net::QueryRemoveBroadcast{std::move(stale)}));
  }
}

QueryInfo MobiEyesServer::BuildQueryInfo(const SqtEntry& entry) const {
  QueryInfo info;
  info.qid = entry.qid;
  info.focal_oid = entry.focal_oid;
  const FotEntry& focal = fot_.at(entry.focal_oid);
  info.focal = focal.state;
  info.region = entry.region;
  info.filter_threshold = entry.filter_threshold;
  info.mon_region = entry.mon_region;
  info.focal_max_speed = focal.max_speed;
  return info;
}

void MobiEyesServer::SendDownlink(ObjectId to, Message message) {
  if (replaying_) return;  // the original delivery happened before the crash
  TimerPause pause(load_timer_);  // delivery is the medium's work, not ours
  network_->SendDownlinkTo(to, std::move(message));
}

void MobiEyesServer::BroadcastToRegion(const geo::CellRange& region,
                                       Message message) {
  if (replaying_) return;  // see SendDownlink
  std::vector<BaseStationId> cover = bmap_->MinimalCover(region);
  // Computing the cover is server work; the per-station delivery below is
  // the wireless medium's (and the receivers'), so exclude it from the
  // server-load measurement.
  TimerPause pause(load_timer_);
  for (BaseStationId sid : cover) {
    network_->Broadcast(layout_->station(sid), message);
  }
}

Result<std::unordered_set<ObjectId>> MobiEyesServer::QueryResult(
    QueryId qid) const {
  auto it = sqt_.find(qid);
  if (it == sqt_.end()) return Status::NotFound("unknown query id");
  return it->second.result;
}

const MobiEyesServer::SqtEntry* MobiEyesServer::FindQuery(QueryId qid) const {
  auto it = sqt_.find(qid);
  return it == sqt_.end() ? nullptr : &it->second;
}

const MobiEyesServer::FotEntry* MobiEyesServer::FindFocal(
    ObjectId oid) const {
  auto it = fot_.find(oid);
  return it == fot_.end() ? nullptr : &it->second;
}

void MobiEyesServer::Checkpoint() {
  if (store_ == nullptr) return;
  TimedSection timed(load_timer_);
  store_->Install(EncodeImage());
}

Status MobiEyesServer::Restore(const Snapshot& store, size_t* replayed) {
  if (store.has_checkpoint()) {
    MOBIEYES_RETURN_NOT_OK(DecodeImage(store.checkpoint));
  }
  // Replay the logged uplinks through the normal dispatch with all sends
  // suppressed: the originals were delivered before the crash, and replay
  // must reproduce state, not traffic.
  replaying_ = true;
  std::vector<bool> consumed(store.wal.size(), false);
  size_t applied = 0;
  for (size_t k = 0; k < store.wal.size(); ++k) {
    if (consumed[k]) continue;
    const WalRecord& record = store.wal[k];
    if (record.message.type == net::MessageType::kQueryInstallRequest) {
      // A live install for an unknown focal object did a synchronous
      // kinematics round trip whose PositionVelocityReport was logged
      // *after* the install (nested dispatch). Replay cannot do the round
      // trip, so apply that report first, in the position the live run
      // effectively applied it.
      const auto& request =
          std::get<net::QueryInstallRequest>(record.message.payload);
      if (!fot_.contains(request.oid)) {
        for (size_t j = k + 1; j < store.wal.size(); ++j) {
          const WalRecord& later = store.wal[j];
          if (consumed[j] ||
              later.message.type !=
                  net::MessageType::kPositionVelocityReport ||
              std::get<net::PositionVelocityReport>(later.message.payload)
                      .oid != request.oid) {
            continue;
          }
          OnUplink(later.from, later.message);
          consumed[j] = true;
          ++applied;
          break;
        }
      }
    }
    OnUplink(record.from, record.message);
    ++applied;
  }
  replaying_ = false;
  if (replayed != nullptr) *replayed = applied;
  return Status::OK();
}

std::vector<uint8_t> MobiEyesServer::EncodeImage() const {
  std::vector<uint8_t> out;
  net::ByteWriter w(&out);
  w.U32(kImageMagic);
  w.U16(kImageVersion);
  w.U16(0);  // reserved
  w.F64(now_);
  w.I64(next_qid_);

  w.U32(static_cast<uint32_t>(fot_.size()));
  for (ObjectId oid : SortedKeys(fot_)) {
    const FotEntry& entry = fot_.at(oid);
    w.I64(oid);
    w.State(entry.state);
    w.F64(entry.max_speed);
    w.Cell(entry.cell);
    // The bound-query list keeps its live order: broadcast order during
    // velocity relays follows it.
    w.U32(static_cast<uint32_t>(entry.queries.size()));
    for (QueryId qid : entry.queries) w.I64(qid);
  }

  w.U32(static_cast<uint32_t>(sqt_.size()));
  for (QueryId qid : SortedKeys(sqt_)) {
    const SqtEntry& entry = sqt_.at(qid);
    w.I64(entry.qid);
    w.I64(entry.focal_oid);
    w.Region(entry.region);
    w.F64(entry.filter_threshold);
    w.Cell(entry.curr_cell);
    w.Range(entry.mon_region);
    w.F64(entry.expires_at);
    w.F64(entry.lease_renew_at);
    std::vector<ObjectId> result(entry.result.begin(), entry.result.end());
    std::sort(result.begin(), result.end());
    w.U32(static_cast<uint32_t>(result.size()));
    for (ObjectId oid : result) w.I64(oid);
  }

  w.U32(static_cast<uint32_t>(seen_seqs_.size()));
  for (ObjectId oid : SortedKeys(seen_seqs_)) {
    const SeenSeqs& seen = seen_seqs_.at(oid);
    w.I64(oid);
    for (uint32_t seq : seen.ring) w.U32(seq);
    w.U8(static_cast<uint8_t>(seen.next));
  }
  return out;
}

Status MobiEyesServer::DecodeImage(const std::vector<uint8_t>& image) {
  net::ByteReader r(image.data(), image.size());
  if (r.U32() != kImageMagic) {
    return Status::InvalidArgument("checkpoint: bad magic number");
  }
  if (r.U16() != kImageVersion) {
    return Status::InvalidArgument("checkpoint: unsupported version");
  }
  r.U16();  // reserved

  fot_.clear();
  sqt_.clear();
  seen_seqs_.clear();
  rqi_ = ReverseQueryIndex(*grid_);

  now_ = r.F64();
  next_qid_ = r.I64();

  uint32_t fot_count = r.U32();
  for (uint32_t k = 0; k < fot_count && r.ok(); ++k) {
    ObjectId oid = r.I64();
    FotEntry entry;
    entry.state = r.State();
    entry.max_speed = r.F64();
    entry.cell = r.Cell();
    uint32_t num_queries = r.U32();
    for (uint32_t q = 0; q < num_queries && r.ok(); ++q) {
      entry.queries.push_back(r.I64());
    }
    if (r.ok()) fot_.emplace(oid, std::move(entry));
  }

  uint32_t sqt_count = r.U32();
  for (uint32_t k = 0; k < sqt_count && r.ok(); ++k) {
    SqtEntry entry;
    entry.qid = r.I64();
    entry.focal_oid = r.I64();
    entry.region = r.Region();
    entry.filter_threshold = r.F64();
    entry.curr_cell = r.Cell();
    entry.mon_region = r.Range();
    entry.expires_at = r.F64();
    entry.lease_renew_at = r.F64();
    uint32_t result_count = r.U32();
    for (uint32_t q = 0; q < result_count && r.ok(); ++q) {
      entry.result.insert(r.I64());
    }
    if (!r.ok()) break;
    // The monitoring region indexes straight into the RQI matrix; a corrupt
    // range would walk out of bounds, so reject it before Add.
    if (entry.mon_region.i_lo > entry.mon_region.i_hi ||
        entry.mon_region.j_lo > entry.mon_region.j_hi ||
        !grid_->IsValid({entry.mon_region.i_lo, entry.mon_region.j_lo}) ||
        !grid_->IsValid({entry.mon_region.i_hi, entry.mon_region.j_hi})) {
      return Status::InvalidArgument(
          "checkpoint: monitoring region outside the grid");
    }
    rqi_.Add(entry.qid, entry.mon_region);
    sqt_.emplace(entry.qid, std::move(entry));
  }

  uint32_t seen_count = r.U32();
  for (uint32_t k = 0; k < seen_count && r.ok(); ++k) {
    ObjectId oid = r.I64();
    SeenSeqs seen;
    for (size_t s = 0; s < seen.ring.size(); ++s) seen.ring[s] = r.U32();
    uint8_t next = r.U8();
    if (next >= seen.ring.size()) {
      return Status::InvalidArgument("checkpoint: dedup ring cursor range");
    }
    seen.next = next;
    if (r.ok()) seen_seqs_.emplace(oid, seen);
  }

  if (!r.ok() || r.remaining() != 0) {
    return Status::InvalidArgument("checkpoint: truncated or malformed image");
  }
  return Status::OK();
}

}  // namespace mobieyes::core
