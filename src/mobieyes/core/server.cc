#include "mobieyes/core/server.h"

namespace mobieyes::core {

Result<QueryId> MobiEyesServer::InstallQuery(ObjectId focal_oid, Miles radius,
                                             double filter_threshold,
                                             Seconds duration) {
  if (radius <= 0.0) {
    return Status::InvalidArgument("query radius must be positive");
  }
  return InstallQuery(focal_oid, geo::QueryRegion::MakeCircle(radius),
                      filter_threshold, duration);
}

}  // namespace mobieyes::core
