#ifndef MOBIEYES_CORE_CLIENT_H_
#define MOBIEYES_CORE_CLIENT_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/stopwatch.h"
#include "mobieyes/common/units.h"
#include "mobieyes/core/options.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/mobility/world.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::obs {
class LifecycleTracker;
}  // namespace mobieyes::obs

namespace mobieyes::core {

// The moving-object side of MobiEyes (paper §3): each object keeps a local
// query table (LQT) of the moving queries whose monitoring region covers
// its current grid cell, evaluates them each time step by dead-reckoning
// the focal object's position, and reports only containment *changes* to
// the server. Focal objects additionally run dead reckoning on their own
// trajectory and report significant velocity changes and cell crossings.
class MobiEyesClient {
 public:
  // LQT row (paper §3.2) plus the safe-period gate ptm (§4.2).
  struct LqtEntry {
    QueryId qid = kInvalidQueryId;
    ObjectId focal_oid = kInvalidObjectId;
    net::FocalState focal;
    geo::QueryRegion region;
    double filter_threshold = 1.0;
    geo::CellRange mon_region;
    double focal_max_speed = 0.0;
    bool is_target = false;
    Seconds ptm = 0.0;  // next evaluation due at this time or later
    // Soft-state lease (options.lease_duration > 0): the entry is dropped if
    // no server broadcast refreshes it before this time, so queries removed
    // while this object was unreachable cannot linger forever.
    Seconds lease_expires_at = std::numeric_limits<Seconds>::infinity();
  };

  // `world` provides this object's own ground-truth state (a real device
  // would read its GPS); `network` carries all communication. Both must
  // outlive the client.
  MobiEyesClient(const mobility::World& world, ObjectId oid,
                 net::WirelessNetwork& network, MobiEyesOptions options);

  // Network entry point for downlink traffic (one-to-one and broadcast);
  // wire this to WirelessNetwork::RegisterClient.
  void OnDownlink(const net::Message& message);

  // Per-time-step processing, run after the world advanced: cell-crossing
  // handling, focal dead reckoning, and periodic LQT evaluation.
  void OnTick();

  // Cold restart (crash recovery, DESIGN.md §9): drops all volatile
  // protocol state — the LQT, pending uplinks, hasMQ and the relayed-vector
  // memory — as a device reboot would, then (when reconciliation is
  // enabled) immediately sends a cold-start LqtReconcileRequest so the
  // server rebuilds the LQT through the PR 3 reconciliation path instead of
  // a re-broadcast storm. The uplink sequence counter restarts ISN-style
  // from the tick clock so the server's dedup ring cannot mistake the new
  // incarnation's uplinks for retransmissions of the old one's.
  void Reset();

  // --- Introspection --------------------------------------------------------

  ObjectId oid() const { return oid_; }
  bool has_mq() const { return has_mq_; }
  size_t lqt_size() const { return lqt_.size(); }
  const std::vector<LqtEntry>& lqt() const { return lqt_; }

  // Last containment status this object computed for a query, or nullopt
  // when the query is not in the LQT.
  std::optional<bool> IsTargetOf(QueryId qid) const;

  // Accumulated wall time spent evaluating the LQT (Fig. 13 metric).
  double processing_seconds() const { return eval_watch_.total_seconds(); }

  // Number of per-query evaluations actually performed (safe-period skips
  // excluded) and of evaluations skipped by the safe period.
  uint64_t queries_evaluated() const { return queries_evaluated_; }
  uint64_t safe_period_skips() const { return safe_period_skips_; }

  // Clears the measurement counters (used after simulation warmup).
  void ResetCounters() {
    eval_watch_.Reset();
    queries_evaluated_ = 0;
    safe_period_skips_ = 0;
  }

  // Scoped-span tracing of LQT evaluation; null (the default) disables it.
  // The recorder must outlive the client.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

  // Lifecycle latency tap (uplink_ack rounds keyed by (oid, seq)); null
  // (the default) disables it. The tracker must outlive the client.
  void set_lifecycle(obs::LifecycleTracker* lifecycle) {
    lifecycle_ = lifecycle;
  }

  // Tracked uplinks not yet acknowledged (reliable-uplink hardening).
  size_t pending_uplinks() const { return pending_.size(); }

 private:
  // One unacknowledged tracked uplink. Retransmissions regenerate the
  // payload from current client state (stored here is only what cannot be
  // re-derived), so a retry never reintroduces stale data.
  struct PendingUplink {
    uint32_t seq = 0;
    net::MessageType type = net::MessageType::kVelocityChangeReport;
    geo::CellCoord prev_cell;   // kCellChangeReport: origin of the move
    std::vector<QueryId> qids;  // kResultBitmapReport: covered queries
    int retries = 0;
    int64_t retry_at = 0;  // tick of the next retransmission
  };

  void HandleCellCrossing(const geo::CellCoord& new_cell);
  void EvaluateQueries();
  // Uplink send paths; with enable_reliable_uplink they stamp a sequence
  // number and track the message for ack/retry.
  void SendVelocityReport();
  void SendCellChangeReport(const geo::CellCoord& new_cell);
  void SendBitmapReport(net::ResultBitmapReport report);
  void TrackUplink(net::Message& message, PendingUplink entry);
  void RetryPendingUplinks();
  net::Message RebuildPending(const PendingUplink& pending);
  // Drops LQT entries whose lease lapsed (reporting containment flips).
  void ExpireLeases(Seconds now);
  // Periodic LQT/result reconciliation uplink, staggered by object id.
  void MaybeReconcile();
  void SendReconcile(bool cold_start);
  Seconds LeaseExpiry(Seconds now) const {
    return options_.lease_duration > 0.0
               ? now + 2.0 * options_.lease_duration
               : std::numeric_limits<Seconds>::infinity();
  }
  // Installs or refreshes a query if this object lies in its monitoring
  // region, satisfies the filter and is not the query's own focal object.
  void InstallIfApplicable(const net::QueryInfo& info);
  // Removes LQT entries at the given indices (sorted ascending), reporting
  // a containment flip to false for entries that were targets.
  void RemoveEntries(const std::vector<size_t>& indices);
  void SendFlipReports(const std::vector<size_t>& dirty_groups);
  LqtEntry* FindEntry(QueryId qid);
  // Insertion position keeping lqt_ sorted by (focal_oid, radius desc, qid).
  size_t InsertPosition(const LqtEntry& entry) const;

  const mobility::World* world_;
  ObjectId oid_;
  net::WirelessNetwork* network_;
  MobiEyesOptions options_;

  std::vector<LqtEntry> lqt_;
  bool has_mq_ = false;
  net::FocalState last_relayed_;  // what others believe about this object
  geo::CellCoord prev_cell_;

  // Reliable-uplink state (empty unless enable_reliable_uplink).
  std::vector<PendingUplink> pending_;
  uint32_t next_seq_ = 0;
  int64_t tick_ = 0;

  // EvaluateQueries scratch (flip bookkeeping), reused across ticks so the
  // per-tick LQT evaluation stays allocation-free at steady state.
  std::vector<size_t> scratch_dirty_groups_;
  std::vector<size_t> scratch_flipped_;

  // (oid, seq) lifecycle key for one tracked uplink's ack round.
  uint64_t AckKey(uint32_t seq) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(oid_)) << 32) | seq;
  }
  // Cancels the ack round of a tracked uplink being abandoned (superseded,
  // evicted, retry budget spent, or client restart).
  void DropAckRound(uint32_t seq);

  Stopwatch eval_watch_;
  uint64_t queries_evaluated_ = 0;
  uint64_t safe_period_skips_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::LifecycleTracker* lifecycle_ = nullptr;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_CLIENT_H_
