#ifndef MOBIEYES_CORE_SERVER_H_
#define MOBIEYES_CORE_SERVER_H_

#include <unordered_set>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/thread_pool.h"
#include "mobieyes/common/units.h"
#include "mobieyes/core/options.h"
#include "mobieyes/core/rqi.h"
#include "mobieyes/core/shard_router.h"
#include "mobieyes/core/snapshot.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::core {

// The MobiEyes server: a mediator between moving objects (paper §3). It
// tracks focal objects (FOT), hosted queries (SQT) and the reverse query
// index (RQI), and turns focal-object events into the minimal set of
// base-station broadcasts that keep the affected monitoring regions
// current. Query results are maintained differentially from the containment
// flips reported by the objects themselves.
//
// Internally the server is a ShardRouter in front of N grid-partitioned
// ServerShards (options.sharding; DESIGN.md §10). The default single shard
// is the monolith; more shards change nothing a client can observe — only
// how the server's own state and step-phase work are partitioned.
class MobiEyesServer {
 public:
  // The table-row types moved to server_shard.h with the sharding refactor;
  // aliased here so existing call sites keep compiling unchanged.
  using FotEntry = core::FotEntry;
  using SqtEntry = core::SqtEntry;

  static constexpr Seconds kNeverExpires = core::kNeverExpires;

  // `grid`, `layout`, `bmap` and `network` must outlive the server.
  MobiEyesServer(const geo::Grid& grid, const net::BaseStationLayout& layout,
                 const net::Bmap& bmap, net::WirelessNetwork& network,
                 MobiEyesOptions options)
      : router_(grid, layout, bmap, network, options) {}

  // Installs a moving query bound to `focal_oid` (paper §3.3). If the focal
  // object is not yet in the FOT its kinematics are requested over the
  // network (synchronous round trip). A finite `duration` (seconds from
  // now) makes the query self-expire on a later AdvanceTime. Returns the
  // assigned query id. The radius form installs the paper's circular
  // region; the QueryRegion form accepts any supported shape.
  Result<QueryId> InstallQuery(ObjectId focal_oid, Miles radius,
                               double filter_threshold,
                               Seconds duration = kNeverExpires);
  Result<QueryId> InstallQuery(ObjectId focal_oid,
                               const geo::QueryRegion& region,
                               double filter_threshold,
                               Seconds duration = kNeverExpires) {
    return router_.InstallQuery(focal_oid, region, filter_threshold, duration);
  }

  // Advances the server clock and removes queries whose lifetime has
  // elapsed (removal broadcasts included). Call once per time step.
  void AdvanceTime(Seconds now) { router_.AdvanceTime(now); }

  Seconds now() const { return router_.now(); }

  // Removes a query: clears server state and broadcasts the removal over
  // the query's monitoring region.
  Status RemoveQuery(QueryId qid) { return router_.RemoveQuery(qid); }

  // Network entry point for all uplink traffic; wire this to
  // WirelessNetwork::set_server_handler.
  void OnUplink(ObjectId from, const net::Message& message) {
    router_.OnUplink(from, message);
  }

  // --- Introspection (tests, oracle comparison, benches) -------------------

  // Current differentially-maintained result of a query.
  Result<std::unordered_set<ObjectId>> QueryResult(QueryId qid) const {
    return router_.QueryResult(qid);
  }

  const SqtEntry* FindQuery(QueryId qid) const {
    return router_.FindQuery(qid);
  }
  const FotEntry* FindFocal(ObjectId oid) const {
    return router_.FindFocal(oid);
  }
  size_t query_count() const { return router_.query_count(); }
  // Shard 0's RQI slice — the full index when running single-shard.
  const ReverseQueryIndex& rqi() const { return router_.shard(0).rqi(); }

  // The sharded deployment behind the facade.
  ShardRouter& router() { return router_; }
  const ShardRouter& router() const { return router_; }
  int num_shards() const { return router_.num_shards(); }

  // Accumulated wall time spent in server-side logic ("server load", §5.2).
  double load_seconds() const { return router_.load_seconds(); }
  // Wall time of the parallelizable step phase (expiry/lease scans and
  // checkpoint encoding); the shard bench's comparison quantity.
  double step_seconds() const { return router_.step_seconds(); }
  void ResetLoadTimer() { router_.ResetLoadTimer(); }

  // Scoped-span tracing of the uplink handlers; null (the default) disables
  // it. The recorder must outlive the server.
  void set_trace_recorder(obs::TraceRecorder* trace) {
    router_.set_trace_recorder(trace);
  }

  // Worker pool for the per-shard step phase; null (the default) runs the
  // shards inline. The pool must outlive the server.
  void set_thread_pool(ThreadPool* pool) { router_.set_thread_pool(pool); }

  // Per-cell heat maps, one per shard, charged to the shard owning each
  // charged cell (DESIGN.md §12). Merge the per-shard windows in shard
  // order for a layout-independent global map.
  void EnableHeatmaps(int32_t rows, int32_t cols) {
    router_.EnableHeatmaps(rows, cols);
  }
  obs::HeatMap* shard_heatmap(int k) { return router_.shard_heatmap(k); }

  // Lifecycle latency tap (install->first-result, handoff rounds); null
  // (the default) disables it. The tracker must outlive the server.
  void set_lifecycle(obs::LifecycleTracker* lifecycle) {
    router_.set_lifecycle(lifecycle);
  }

  // --- Crash recovery (DESIGN.md §9) ---------------------------------------

  // Attaches the durable store. While attached, every uplink reaching
  // OnUplink is logged write-ahead (before its handler mutates anything), so
  // checkpoint + WAL always covers the accepted traffic. Pass nullptr to
  // detach. The store must outlive the server — it is the part of the
  // mediator that survives a crash.
  void set_durable_store(Snapshot* store) { router_.set_durable_store(store); }
  Snapshot* durable_store() const { return router_.durable_store(); }

  // Serializes the full server state (FOT, SQT including monitoring regions,
  // result sets and lease deadlines, dedup rings, clock and id counter) into
  // the attached store's checkpoint image and truncates its WAL. No-op
  // without an attached store. The image layout is shard-count-independent:
  // shards encode sorted fragments that merge into one global sorted image.
  void Checkpoint() { router_.Checkpoint(); }

  // Rebuilds this (freshly constructed) server from `store`: decodes the
  // checkpoint image, re-derives the RQI from the SQT monitoring regions,
  // then replays the WAL through the normal uplink dispatch with every
  // network send suppressed — the originals were delivered before the
  // crash, so replay must mutate state without re-broadcasting. `replayed`
  // (optional) receives the number of WAL records applied. A store without
  // a checkpoint restores to a cold server plus whatever the WAL holds.
  // The restoring deployment may use a different shard count than the one
  // that wrote the store — entries re-home under the current shard map.
  Status Restore(const Snapshot& store, size_t* replayed = nullptr) {
    return router_.Restore(store, replayed);
  }

 private:
  ShardRouter router_;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SERVER_H_
