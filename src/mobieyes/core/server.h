#ifndef MOBIEYES_CORE_SERVER_H_
#define MOBIEYES_CORE_SERVER_H_

#include <array>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobieyes/common/ids.h"
#include "mobieyes/common/status.h"
#include "mobieyes/common/stopwatch.h"
#include "mobieyes/common/units.h"
#include "mobieyes/core/options.h"
#include "mobieyes/core/rqi.h"
#include "mobieyes/core/snapshot.h"
#include "mobieyes/geo/grid.h"
#include "mobieyes/net/bmap.h"
#include "mobieyes/net/message.h"
#include "mobieyes/net/network.h"
#include "mobieyes/obs/trace_recorder.h"

namespace mobieyes::core {

// The MobiEyes server: a mediator between moving objects (paper §3). It
// tracks focal objects (FOT), hosted queries (SQT) and the reverse query
// index (RQI), and turns focal-object events into the minimal set of
// base-station broadcasts that keep the affected monitoring regions
// current. Query results are maintained differentially from the containment
// flips reported by the objects themselves.
class MobiEyesServer {
 public:
  // FOT row (paper §3.2): last reported kinematics of a focal object plus
  // the queries bound to it.
  struct FotEntry {
    net::FocalState state;
    double max_speed = 0.0;  // miles/second, carried for safe periods
    // Last known grid cell, kept current by cell-change reports. The
    // recorded kinematics must stay untouched between velocity reports or
    // dead-reckoning predictions downstream would diverge.
    geo::CellCoord cell;
    std::vector<QueryId> queries;
  };

  // SQT row (paper §3.2) plus the expiry time: the paper's example queries
  // are time-bounded ("during next 2 hours"), so a query may carry a
  // duration after which the server uninstalls it everywhere.
  struct SqtEntry {
    QueryId qid = kInvalidQueryId;
    ObjectId focal_oid = kInvalidObjectId;
    geo::QueryRegion region;
    double filter_threshold = 1.0;
    geo::CellCoord curr_cell;
    geo::CellRange mon_region;
    Seconds expires_at = kNeverExpires;
    // Soft-state lease (options.lease_duration > 0): when the deadline
    // passes, the server re-broadcasts the query's monitoring-region state
    // so clients that missed the original install or update recover.
    Seconds lease_renew_at = std::numeric_limits<Seconds>::infinity();
    std::unordered_set<ObjectId> result;
  };

  static constexpr Seconds kNeverExpires =
      std::numeric_limits<Seconds>::infinity();

  // `grid`, `layout`, `bmap` and `network` must outlive the server.
  MobiEyesServer(const geo::Grid& grid, const net::BaseStationLayout& layout,
                 const net::Bmap& bmap, net::WirelessNetwork& network,
                 MobiEyesOptions options);

  // Installs a moving query bound to `focal_oid` (paper §3.3). If the focal
  // object is not yet in the FOT its kinematics are requested over the
  // network (synchronous round trip). A finite `duration` (seconds from
  // now) makes the query self-expire on a later AdvanceTime. Returns the
  // assigned query id. The radius form installs the paper's circular
  // region; the QueryRegion form accepts any supported shape.
  Result<QueryId> InstallQuery(ObjectId focal_oid, Miles radius,
                               double filter_threshold,
                               Seconds duration = kNeverExpires);
  Result<QueryId> InstallQuery(ObjectId focal_oid,
                               const geo::QueryRegion& region,
                               double filter_threshold,
                               Seconds duration = kNeverExpires);

  // Advances the server clock and removes queries whose lifetime has
  // elapsed (removal broadcasts included). Call once per time step.
  void AdvanceTime(Seconds now);

  Seconds now() const { return now_; }

  // Removes a query: clears server state and broadcasts the removal over
  // the query's monitoring region.
  Status RemoveQuery(QueryId qid);

  // Network entry point for all uplink traffic; wire this to
  // WirelessNetwork::set_server_handler.
  void OnUplink(ObjectId from, const net::Message& message);

  // --- Introspection (tests, oracle comparison, benches) -------------------

  // Current differentially-maintained result of a query.
  Result<std::unordered_set<ObjectId>> QueryResult(QueryId qid) const;

  const SqtEntry* FindQuery(QueryId qid) const;
  const FotEntry* FindFocal(ObjectId oid) const;
  size_t query_count() const { return sqt_.size(); }
  const ReverseQueryIndex& rqi() const { return rqi_; }

  // Accumulated wall time spent in server-side logic ("server load", §5.2).
  double load_seconds() const { return load_timer_.total_seconds(); }
  void ResetLoadTimer() { load_timer_.Reset(); }

  // Scoped-span tracing of the uplink handlers; null (the default) disables
  // it. The recorder must outlive the server.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

  // --- Crash recovery (DESIGN.md §9) ---------------------------------------

  // Attaches the durable store. While attached, every uplink reaching
  // OnUplink is logged write-ahead (before its handler mutates anything), so
  // checkpoint + WAL always covers the accepted traffic. Pass nullptr to
  // detach. The store must outlive the server — it is the part of the
  // mediator that survives a crash.
  void set_durable_store(Snapshot* store) { store_ = store; }
  Snapshot* durable_store() const { return store_; }

  // Serializes the full server state (FOT, SQT including monitoring regions,
  // result sets and lease deadlines, dedup rings, clock and id counter) into
  // the attached store's checkpoint image and truncates its WAL. No-op
  // without an attached store.
  void Checkpoint();

  // Rebuilds this (freshly constructed) server from `store`: decodes the
  // checkpoint image, re-derives the RQI from the SQT monitoring regions,
  // then replays the WAL through the normal uplink dispatch with every
  // network send suppressed — the originals were delivered before the
  // crash, so replay must mutate state without re-broadcasting. `replayed`
  // (optional) receives the number of WAL records applied. A store without
  // a checkpoint restores to a cold server plus whatever the WAL holds.
  Status Restore(const Snapshot& store, size_t* replayed = nullptr);

 private:
  void HandleQueryInstallRequest(const net::QueryInstallRequest& request);
  void HandlePositionVelocityReport(const net::PositionVelocityReport& report);
  void HandleVelocityChange(const net::VelocityChangeReport& report);
  void HandleCellChange(const net::CellChangeReport& report);
  void HandleResultBitmap(const net::ResultBitmapReport& report);
  void HandleLqtReconcile(const net::LqtReconcileRequest& request);

  // Acknowledges a tracked uplink and dedups retransmissions. Returns true
  // when the message was already processed and must be ignored.
  bool AckAndDedup(ObjectId from, uint32_t seq);

  // Re-broadcasts the state of queries whose lease lapsed (soft-state
  // refresh; options.lease_duration > 0).
  void RenewLeases();

  // Builds the installation payload for a query from FOT + SQT state.
  net::QueryInfo BuildQueryInfo(const SqtEntry& entry) const;

  // Sends `message` once per base station of the greedy minimal cover of
  // `region`.
  void BroadcastToRegion(const geo::CellRange& region, net::Message message);

  // One-to-one downlink funnel: every server-originated downlink goes
  // through here so WAL replay (replaying_) can suppress re-sends.
  void SendDownlink(ObjectId to, net::Message message);

  // Checkpoint image codec (little-endian, maps serialized in sorted key
  // order so images are deterministic regardless of hash-map layout).
  std::vector<uint8_t> EncodeImage() const;
  Status DecodeImage(const std::vector<uint8_t>& image);

  const geo::Grid* grid_;
  const net::BaseStationLayout* layout_;
  const net::Bmap* bmap_;
  net::WirelessNetwork* network_;
  MobiEyesOptions options_;

  std::unordered_map<ObjectId, FotEntry> fot_;
  std::unordered_map<QueryId, SqtEntry> sqt_;
  ReverseQueryIndex rqi_;
  QueryId next_qid_ = 0;
  Seconds now_ = 0.0;

  // Recently seen uplink sequence numbers per object (at-most-once dedup
  // for the reliable-uplink hardening). A small ring suffices: a client
  // tracks at most 16 uplinks and retires them in rough FIFO order.
  struct SeenSeqs {
    std::array<uint32_t, 8> ring{};
    size_t next = 0;
  };
  std::unordered_map<ObjectId, SeenSeqs> seen_seqs_;

  Snapshot* store_ = nullptr;
  bool replaying_ = false;   // inside Restore's WAL replay: suppress sends
  bool dispatching_ = false;  // inside OnUplink: the WAL already has this

  ReentrantTimer load_timer_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace mobieyes::core

#endif  // MOBIEYES_CORE_SERVER_H_
