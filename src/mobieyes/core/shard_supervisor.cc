#include "mobieyes/core/shard_supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "mobieyes/net/codec.h"
#include "mobieyes/obs/lifecycle.h"

namespace mobieyes::core {

namespace {

constexpr uint64_t kRpcTypeBatch = 0;
constexpr uint64_t kRpcTypeHeartbeat = 1;
constexpr uint64_t kRpcTypeSync = 2;
constexpr uint64_t kRpcTypeScan = 3;

bool Executable(const std::string& path) {
  return !path.empty() && access(path.c_str(), X_OK) == 0;
}

std::string SelfDir() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

}  // namespace

std::string ShardSupervisor::FindShardd(const std::string& override_path) {
  if (Executable(override_path)) return override_path;
  if (!override_path.empty()) return "";
  const char* env = getenv("MOBIEYES_SHARDD");
  if (env != nullptr && Executable(env)) return env;
  std::string dir = SelfDir();
  if (dir.empty()) return "";
  for (const char* rel : {"/mobieyes_shardd", "/../tools/mobieyes_shardd",
                          "/tools/mobieyes_shardd"}) {
    std::string candidate = dir + rel;
    if (Executable(candidate)) return candidate;
  }
  return "";
}

int64_t ShardSupervisor::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ShardSupervisor::ShardSupervisor(const SupervisorOptions& options)
    : options_(options),
      rng_(options.seed * 7919 + 17),
      chaos_rng_(options.fault.seed * 6364136223846793005ull + 1442695040888963407ull) {}

ShardSupervisor::~ShardSupervisor() { Shutdown(); }

void ShardSupervisor::AttachRouter(ShardRouter* router) {
  router_ = router;
  router_->set_transport(this);
  router_->set_max_deferred_uplinks(options_.max_deferred_uplinks);
  for (auto& peer : peers_) peer->mirror_digest_valid = false;
}

uint64_t ShardSupervisor::RpcKey(const Peer& peer,
                                 const PendingRpc& rpc) const {
  uint64_t type = rpc.is_sync        ? kRpcTypeSync
                  : rpc.is_heartbeat ? kRpcTypeHeartbeat
                  : rpc.is_scan      ? kRpcTypeScan
                                     : kRpcTypeBatch;
  return (static_cast<uint64_t>(rpc.step) << 10) |
         (static_cast<uint64_t>(peer.shard) << 2) | type;
}

Status ShardSupervisor::SpawnDaemon(Peer* peer) {
  std::string binary = FindShardd(options_.shardd_path);
  if (binary.empty()) {
    return Status::NotFound(
        "supervisor: mobieyes_shardd not found (set --shardd or "
        "$MOBIEYES_SHARDD)");
  }
  char shard_arg[32], seed_arg[48], timeout_arg[48];
  std::snprintf(shard_arg, sizeof(shard_arg), "--shard=%d", peer->shard);
  std::snprintf(seed_arg, sizeof(seed_arg), "--seed=%llu",
                static_cast<unsigned long long>(options_.seed));
  std::snprintf(timeout_arg, sizeof(timeout_arg),
                "--connect-timeout-ms=%d", options_.start_timeout_ms);
  std::string address_arg = "--address=" + backplane_.bound_address();

  pid_t pid = fork();
  if (pid < 0) return Status::Internal("supervisor: fork failed");
  if (pid == 0) {
    const char* argv[] = {binary.c_str(), address_arg.c_str(), shard_arg,
                          seed_arg,       timeout_arg,         nullptr};
    execv(binary.c_str(), const_cast<char* const*>(argv));
    _exit(127);
  }
  peer->pid = pid;
  if (started_) ++stats_.restarts;
  if (options_.verbose) {
    std::fprintf(stderr, "supervisor: spawned shard %d as pid %d\n",
                 peer->shard, static_cast<int>(pid));
  }
  return Status::OK();
}

Status ShardSupervisor::Start() {
  if (router_ == nullptr) {
    return Status::Internal("supervisor: AttachRouter before Start");
  }
  std::string address = options_.address;
  if (address.empty()) {
    char tmpl[] = "/tmp/mobieyes-bp.XXXXXX";
    char* dir = mkdtemp(tmpl);
    if (dir == nullptr) {
      return Status::Internal("supervisor: mkdtemp failed");
    }
    socket_dir_ = dir;
    address = "uds:" + socket_dir_ + "/bp.sock";
  }
  Status st = backplane_.Listen(address);
  if (!st.ok()) return st;

  peers_.clear();
  for (int s = 0; s < router_->num_shards(); ++s) {
    auto peer = std::make_unique<Peer>();
    peer->shard = s;
    peers_.push_back(std::move(peer));
  }
  for (auto& peer : peers_) {
    st = SpawnDaemon(peer.get());
    if (!st.ok()) {
      Shutdown();
      return st;
    }
  }
  int64_t deadline = NowMicros() + int64_t{1000} * options_.start_timeout_ms;
  while (!AllAvailable()) {
    AcceptNewConnections();
    ReceiveAll();
    if (AllAvailable()) break;
    if (NowMicros() > deadline) {
      Shutdown();
      return Status::Internal(
          "supervisor: shard daemons failed to join within the start "
          "timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  started_ = true;
  return Status::OK();
}

bool ShardSupervisor::ShardAvailable(int shard) const {
  if (!started_ || peers_.empty()) return true;
  // Authority mode never defers an uplink: a dead executor's scans are
  // served by the warm local mirror within the same step, so the shard is
  // always available to dispatch against.
  if (options_.authority) return true;
  if (shard < 0 || shard >= static_cast<int>(peers_.size())) return true;
  return peers_[shard]->up;
}

bool ShardSupervisor::AllAvailable() const {
  for (const auto& peer : peers_) {
    if (!peer->up) return false;
  }
  return !peers_.empty();
}

int64_t ShardSupervisor::down_shards() const {
  int64_t down = 0;
  for (const auto& peer : peers_) {
    if (!peer->up) ++down;
  }
  return down;
}

size_t ShardSupervisor::queue_bytes(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(peers_.size())) return 0;
  const Peer& peer = *peers_[shard];
  return peer.link != nullptr ? peer.link->queued_bytes() : 0;
}

void ShardSupervisor::OnRqiOp(bool add, int shard, QueryId qid,
                              const geo::CellRange& mon_region) {
  if (shard < 0 || shard >= static_cast<int>(peers_.size())) return;
  peers_[shard]->pending.RqiOp(add, qid, mon_region);
  peers_[shard]->mirror_digest_valid = false;
}

void ShardSupervisor::OnHandoff(int from_shard, int to_shard, ObjectId oid,
                                const net::Message& message) {
  if (from_shard >= 0 && from_shard < static_cast<int>(peers_.size())) {
    peers_[from_shard]->pending.Extract(oid);
    peers_[from_shard]->mirror_digest_valid = false;
  }
  if (to_shard >= 0 && to_shard < static_cast<int>(peers_.size())) {
    peers_[to_shard]->pending.Adopt(message);
    peers_[to_shard]->mirror_digest_valid = false;
  }
}

void ShardSupervisor::OnPartitionUpdate(uint64_t epoch,
                                        const std::vector<CellMove>& moves) {
  for (auto& peer : peers_) {
    peer->pending.PartitionUpdate(epoch, moves);
    // StateDigest covers owned cells only, so an epoch advance moves every
    // shard's digest, not just the two sides of each cell move.
    peer->mirror_digest_valid = false;
  }
}

void ShardSupervisor::OnRqiRowMove(int from_shard, int to_shard,
                                   const geo::CellCoord& cell,
                                   const std::vector<QueryId>& row) {
  if (from_shard >= 0 && from_shard < static_cast<int>(peers_.size())) {
    peers_[from_shard]->pending.RqiRowClear(cell);
    peers_[from_shard]->mirror_digest_valid = false;
  }
  if (to_shard >= 0 && to_shard < static_cast<int>(peers_.size())) {
    peers_[to_shard]->pending.RqiRowSet(cell, row);
    peers_[to_shard]->mirror_digest_valid = false;
  }
}

uint64_t ShardSupervisor::MirrorDigest(Peer* peer) {
  if (!peer->mirror_digest_valid) {
    peer->mirror_digest = router_->shard(peer->shard).StateDigest();
    peer->mirror_digest_valid = true;
  }
  return peer->mirror_digest;
}

void ShardSupervisor::CaptureSync(Peer* peer) {
  peer->sync_image.clear();
  const ServerShard& shard = router_->shard(peer->shard);
  shard.EncodeStateSync(&peer->sync_image);
  peer->sync_digest = MirrorDigest(peer);
  peer->sync_epoch = router_->shard_map().epoch();
  peer->sync_assignment.clear();
  if (peer->sync_epoch > 0) {
    router_->shard_map().AssignmentSnapshot(&peer->sync_assignment);
  }
  peer->frame_log.clear();
  peer->log_overflow = false;
}

void ShardSupervisor::CaptureSyncAll() {
  for (auto& peer : peers_) CaptureSync(peer.get());
}

void ShardSupervisor::OnServerRestored() {
  for (auto& peer : peers_) {
    // Discard ops built against the pre-restore state; the fresh sync
    // image below supersedes them.
    peer->pending.Finish();
    peer->need_sync = true;
    peer->mirror_digest_valid = false;
    // Scans must come from the restored state; authority returns after
    // the resync, at the next step boundary.
    RevokeAuthority(peer.get());
  }
  CaptureSyncAll();
}

int64_t ShardSupervisor::RespawnBackoffSteps(int attempts, int base_steps,
                                             int max_steps, Rng* rng) {
  int64_t base = std::max<int64_t>(1, base_steps);
  int64_t cap = std::max<int64_t>(base, max_steps);
  int64_t backoff = base << std::min(std::max(attempts, 1) - 1, 10);
  // Seeded jitter keeps a herd of dead shards from respawning in lockstep.
  backoff += static_cast<int64_t>(
      rng->NextUint64(static_cast<uint64_t>(base) + 1));
  return std::clamp(backoff, base, cap);
}

void ShardSupervisor::RevokeAuthority(Peer* peer) {
  if (peer->authoritative) {
    peer->authoritative = false;
    ++stats_.failovers;
    if (options_.verbose) {
      std::fprintf(stderr, "supervisor: shard %d failover to local mirror\n",
                   peer->shard);
    }
  }
}

void ShardSupervisor::GrantAuthority() {
  if (!options_.authority) return;
  for (auto& peer : peers_) {
    if (peer->authoritative || !peer->up || peer->need_sync ||
        !peer->rpcs.empty()) {
      continue;
    }
    peer->authoritative = true;
    ++stats_.cutovers;
    if (options_.verbose) {
      std::fprintf(stderr, "supervisor: shard %d authority cutover\n",
                   peer->shard);
    }
  }
}

void ShardSupervisor::MarkDown(Peer* peer, const char* reason) {
  if (options_.verbose && (peer->up || peer->link != nullptr)) {
    std::fprintf(stderr, "supervisor: shard %d down (%s)\n", peer->shard,
                 reason);
  }
  RevokeAuthority(peer);
  peer->up = false;
  peer->link.reset();
  peer->held.clear();
  for (const PendingRpc& rpc : peer->rpcs) {
    if (lifecycle_ != nullptr) {
      lifecycle_->Drop(obs::LifecycleTracker::kBackplaneRpc,
                       RpcKey(*peer, rpc));
    }
  }
  peer->rpcs.clear();
  if (peer->pid > 0) {
    // The process may still be alive (deadline miss, stalled socket):
    // finish the job so the respawn starts from a clean slate.
    kill(peer->pid, SIGKILL);
    waitpid(peer->pid, nullptr, 0);
    peer->pid = -1;
  }
  ++peer->respawn_attempts;
  peer->next_respawn_step =
      step_ + RespawnBackoffSteps(peer->respawn_attempts,
                                  options_.respawn_base_steps,
                                  options_.respawn_max_steps, &rng_);
}

void ShardSupervisor::KillShard(int shard) {
  if (shard < 0 || shard >= static_cast<int>(peers_.size())) return;
  Peer* peer = peers_[shard].get();
  // Already dead and awaiting respawn: don't double the backoff penalty.
  if (peer->pid <= 0 && peer->link == nullptr && !peer->up) return;
  if (peer->pid > 0) {
    kill(peer->pid, SIGKILL);
    waitpid(peer->pid, nullptr, 0);
    peer->pid = -1;
  }
  MarkDown(peer, "SIGKILL fault injection");
}

void ShardSupervisor::AcceptNewConnections() {
  for (;;) {
    int fd = backplane_.Accept();
    if (fd < 0) break;
    auto link = std::make_unique<net::PeerLink>();
    link->Adopt(fd);
    pending_links_.push_back(std::move(link));
  }
}

void ShardSupervisor::LogFrame(Peer* peer, const net::Frame& frame) {
  if (peer->log_overflow) return;
  if (peer->frame_log.size() >= options_.max_replay_frames) {
    // Past the replay budget a rejoin takes a fresh full sync instead.
    peer->frame_log.clear();
    peer->log_overflow = true;
    return;
  }
  LoggedFrame logged;
  logged.frame = frame;
  logged.digest = MirrorDigest(peer);
  logged.epoch = router_->shard_map().epoch();
  peer->frame_log.push_back(std::move(logged));
}

bool ShardSupervisor::SendFrame(Peer* peer, const net::Frame& frame) {
  if (peer->link == nullptr || !peer->link->connected()) return false;
  // Chaos only bites after the initial handshake (so a faulty plan cannot
  // starve Start() itself) and pauses during Quiesce (the settle phase has
  // no step clock to notice losses).
  if (!started_ || quiescing_ || !options_.fault.active()) {
    return peer->link->Send(frame, options_.max_queue_bytes);
  }
  const net::BackplaneFaultPlan& plan = options_.fault;
  if (chaos_rng_.NextDouble() < plan.drop_rate) {
    // Silently vanished: the RPC deadline is what notices, exactly like a
    // frame lost inside a real flaky transport.
    ++stats_.chaos_frames;
    return true;
  }
  std::vector<uint8_t> wire;
  net::EncodeFrame(frame, &wire);
  int64_t release_step = -1;
  if (chaos_rng_.NextDouble() < plan.delay_rate) {
    release_step = step_ + 1 +
                   static_cast<int64_t>(chaos_rng_.NextUint64(
                       static_cast<uint64_t>(plan.max_delay_steps)));
    ++stats_.chaos_frames;
  }
  if (chaos_rng_.NextDouble() < plan.truncate_rate && wire.size() > 1) {
    wire.resize(1 + chaos_rng_.NextUint64(wire.size() - 1));
    ++stats_.chaos_frames;
  }
  if (chaos_rng_.NextDouble() < plan.flip_rate && !wire.empty()) {
    size_t idx = static_cast<size_t>(chaos_rng_.NextUint64(wire.size()));
    wire[idx] ^= static_cast<uint8_t>(1u << chaos_rng_.NextUint64(8));
    ++stats_.chaos_frames;
  }
  if (release_step >= 0 || !peer->held.empty()) {
    // Held frames keep FIFO order: anything sent behind a delayed frame is
    // delayed at least as long.
    HeldFrame held;
    held.wire = std::move(wire);
    held.release_step =
        release_step >= 0 ? release_step : peer->held.back().release_step;
    if (!peer->held.empty()) {
      held.release_step =
          std::max(held.release_step, peer->held.back().release_step);
    }
    peer->held.push_back(std::move(held));
    return true;
  }
  return peer->link->SendBytes(wire.data(), wire.size(),
                               options_.max_queue_bytes);
}

void ShardSupervisor::ReleaseDelayed(Peer* peer, bool force) {
  while (!peer->held.empty() &&
         (force || peer->held.front().release_step <= step_)) {
    if (peer->link == nullptr || !peer->link->connected()) {
      peer->held.clear();
      return;
    }
    const HeldFrame& held = peer->held.front();
    peer->link->SendBytes(held.wire.data(), held.wire.size(),
                          options_.max_queue_bytes);
    peer->held.pop_front();
  }
}

void ShardSupervisor::SendSync(Peer* peer) {
  if (peer->link == nullptr || !peer->link->connected()) return;
  if (peer->sync_image.empty() || peer->log_overflow || peer->need_sync) {
    CaptureSync(peer);
    // Any coalesced-but-unsent ops are baked into the fresh image.
    peer->pending.Finish();
  }

  net::Frame config;
  config.kind = net::FrameKind::kConfig;
  config.shard = static_cast<uint8_t>(peer->shard);
  config.step = step_;
  ShardConfig shard_config;
  shard_config.universe = router_->grid().universe();
  shard_config.alpha = router_->grid().alpha();
  shard_config.sharding.num_shards = router_->shard_map().num_shards();
  shard_config.sharding.partition = router_->shard_map().partition();
  // Capture-time epoch, not the live one: the frame log replayed below
  // carries every partition update since the image was taken.
  shard_config.epoch = peer->sync_epoch;
  shard_config.owners = peer->sync_assignment;
  EncodeShardConfig(shard_config, &config.payload);

  net::Frame sync;
  sync.kind = net::FrameKind::kStateSync;
  sync.shard = static_cast<uint8_t>(peer->shard);
  sync.step = step_;
  sync.payload = peer->sync_image;

  if (!SendFrame(peer, config) || !SendFrame(peer, sync)) {
    ++stats_.send_drops;
    MarkDown(peer, "send failed during sync");
    return;
  }
  stats_.frames_sent += 2;
  stats_.bytes_sent += 2 * net::kFrameHeaderBytes + config.payload.size() +
                       sync.payload.size();
  ++stats_.syncs_sent;
  PendingRpc rpc;
  rpc.step = step_;
  rpc.expected_digest = peer->sync_digest;
  rpc.expected_epoch = peer->sync_epoch;
  rpc.is_sync = true;
  rpc.sent_micros = NowMicros();
  if (lifecycle_ != nullptr) {
    lifecycle_->Stamp(obs::LifecycleTracker::kBackplaneRpc,
                      RpcKey(*peer, rpc));
  }
  peer->rpcs.push_back(rpc);

  // Replay the buffered batches sent (or logged while down) since the
  // stored image was captured.
  for (const LoggedFrame& logged : peer->frame_log) {
    if (!SendFrame(peer, logged.frame)) {
      ++stats_.send_drops;
      MarkDown(peer, "send failed during replay");
      return;
    }
    ++stats_.frames_sent;
    stats_.bytes_sent +=
        net::kFrameHeaderBytes + logged.frame.payload.size();
    ++stats_.replayed_frames;
    PendingRpc replay_rpc;
    replay_rpc.step = step_;
    replay_rpc.expected_digest = logged.digest;
    replay_rpc.expected_epoch = logged.epoch;
    replay_rpc.sent_micros = NowMicros();
    peer->rpcs.push_back(replay_rpc);
  }
  peer->need_sync = false;
  peer->last_activity_step = step_;
}

bool ShardSupervisor::FlushPendingBatch(Peer* peer) {
  net::Frame frame;
  frame.kind = net::FrameKind::kStepBatch;
  frame.shard = static_cast<uint8_t>(peer->shard);
  frame.step = step_;
  frame.payload = peer->pending.Finish();
  // The authoritative shard already applied these ops, so its digest is
  // exactly where the replica must land after this frame.
  LogFrame(peer, frame);
  if (peer->link == nullptr || !peer->link->connected()) {
    return false;  // buffered for rejoin replay
  }
  PendingRpc rpc;
  rpc.step = step_;
  rpc.expected_digest = MirrorDigest(peer);
  rpc.expected_epoch = router_->shard_map().epoch();
  rpc.sent_micros = NowMicros();
  if (!SendFrame(peer, frame)) {
    ++stats_.send_drops;
    MarkDown(peer, "send queue full or closed");
    return false;
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += net::kFrameHeaderBytes + frame.payload.size();
  ++stats_.batches_sent;
  if (lifecycle_ != nullptr) {
    lifecycle_->Stamp(obs::LifecycleTracker::kBackplaneRpc,
                      RpcKey(*peer, rpc));
  }
  peer->rpcs.push_back(rpc);
  peer->last_activity_step = step_;
  return true;
}

void ShardSupervisor::SendBatchOrHeartbeat(Peer* peer) {
  bool connected = peer->link != nullptr && peer->link->connected();
  if (connected && peer->need_sync) {
    SendSync(peer);
    return;
  }
  if (!peer->pending.empty()) {
    FlushPendingBatch(peer);
    return;
  }
  if (connected && peer->up &&
      step_ - peer->last_activity_step >= options_.heartbeat_stride) {
    net::Frame frame;
    frame.kind = net::FrameKind::kHeartbeat;
    frame.shard = static_cast<uint8_t>(peer->shard);
    frame.step = step_;
    PendingRpc rpc;
    rpc.step = step_;
    rpc.is_heartbeat = true;
    rpc.sent_micros = NowMicros();
    if (!SendFrame(peer, frame)) {
      ++stats_.send_drops;
      MarkDown(peer, "heartbeat send failed");
      return;
    }
    stats_.frames_sent += 1;
    stats_.bytes_sent += net::kFrameHeaderBytes;
    ++stats_.heartbeats_sent;
    if (lifecycle_ != nullptr) {
      lifecycle_->Stamp(obs::LifecycleTracker::kBackplaneRpc,
                        RpcKey(*peer, rpc));
    }
    peer->rpcs.push_back(rpc);
    peer->last_activity_step = step_;
  }
}

void ShardSupervisor::HandlePeerFrame(Peer* peer, const net::Frame& frame) {
  ++stats_.frames_received;
  stats_.bytes_received += net::kFrameHeaderBytes + frame.payload.size();
  bool is_ack = frame.kind == net::FrameKind::kStateSyncAck ||
                frame.kind == net::FrameKind::kStepAck ||
                frame.kind == net::FrameKind::kHeartbeatAck;
  if (!is_ack) return;
  if (peer->rpcs.empty()) return;  // stale ack from a replaced connection

  PendingRpc rpc = peer->rpcs.front();
  peer->rpcs.pop_front();
  ++stats_.acks_received;
  int64_t rtt = NowMicros() - rpc.sent_micros;
  if (rtt > 0) {
    stats_.rtt_micros_total += static_cast<uint64_t>(rtt);
    ++stats_.rtt_samples;
  }
  if (lifecycle_ != nullptr) {
    lifecycle_->ResolveIfPending(obs::LifecycleTracker::kBackplaneRpc,
                                 RpcKey(*peer, rpc));
  }
  if (frame.kind == net::FrameKind::kHeartbeatAck) return;

  net::ByteReader r(frame.payload.data(), frame.payload.size());
  uint64_t digest = r.U64();
  if (frame.kind == net::FrameKind::kStepAck) r.U32();  // ops applied
  uint8_t ok = r.U8();
  // Optional epoch tail (absent while the replica sits at epoch 0). A
  // replica at the wrong partition epoch would pass digest checks only by
  // luck — treat a mismatch exactly like a digest divergence.
  uint64_t peer_epoch = 0;
  if (r.ok() && r.remaining() > 0) peer_epoch = r.U64();
  if (!r.ok() || r.remaining() != 0 || ok == 0 ||
      digest != rpc.expected_digest || peer_epoch != rpc.expected_epoch) {
    ++stats_.digest_mismatches;
    peer->need_sync = true;
    // A diverged replica must not keep answering scans.
    RevokeAuthority(peer);
    return;
  }
  if (rpc.is_sync || (!peer->up && peer->rpcs.empty())) {
    // Handshake complete: the replica proved it holds the authoritative
    // state (sync digest matched), so the shard leaves degraded mode.
    peer->up = true;
    peer->respawn_attempts = 0;
  }
}

bool ShardSupervisor::AuthorityScan(int shard, const geo::CellCoord& cell,
                                    std::vector<QueryId>* out) {
  if (!options_.authority || !started_) return false;
  if (shard < 0 || shard >= static_cast<int>(peers_.size())) return false;
  Peer* peer = peers_[shard].get();
  if (!peer->authoritative || !peer->up || peer->need_sync ||
      peer->link == nullptr || !peer->link->connected()) {
    ++stats_.scans_local;
    return false;
  }

  // Ship the shard's coalesced ops first: the daemon must observe every
  // mutation this dispatch already applied to the mirror before it answers
  // the row read (RQI rows mutate mid-step, and later uplinks read them).
  if (!peer->pending.empty() && !FlushPendingBatch(peer)) {
    ++stats_.scans_local;
    return false;
  }

  net::Frame req;
  req.kind = net::FrameKind::kScanRequest;
  req.shard = static_cast<uint8_t>(peer->shard);
  req.step = step_;
  net::ByteWriter w(&req.payload);
  w.I32(cell.i);
  w.I32(cell.j);
  // Stamp the partition epoch the answer must come from (tail omitted at
  // epoch 0, keeping the pre-epoch wire bytes). A daemon at another epoch
  // — or one that lost this cell to a rebalance — refuses, and the scan
  // fails over to the local mirror below.
  const uint64_t live_epoch = router_->shard_map().epoch();
  if (live_epoch > 0) w.U64(live_epoch);
  PendingRpc scan_rpc;
  scan_rpc.step = step_;
  scan_rpc.is_scan = true;
  scan_rpc.sent_micros = NowMicros();
  if (!SendFrame(peer, req)) {
    ++stats_.send_drops;
    MarkDown(peer, "send failed during scan");
    ++stats_.scans_local;
    return false;
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += net::kFrameHeaderBytes + req.payload.size();
  peer->rpcs.push_back(scan_rpc);
  peer->last_activity_step = step_;

  // Blocking wait, wall-bounded. The socket is FIFO and the daemon answers
  // in arrival order, so acks of everything sent before the scan drain
  // first; a SIGKILLed daemon surfaces as a fast EOF, and the deadline
  // only pays for a genuinely wedged one. Either way the scan fails over
  // to the local mirror before this step's dispatch continues.
  const int64_t deadline =
      scan_rpc.sent_micros + int64_t{1000} * options_.authority_timeout_ms;
  const uint64_t expected_digest = MirrorDigest(peer);
  bool got = false;
  bool ok = false;
  std::vector<net::Frame> frames;
  for (;;) {
    peer->link->Flush();
    frames.clear();
    bool alive = peer->link->Receive(&frames);
    for (const net::Frame& frame : frames) {
      if (frame.kind != net::FrameKind::kScanResult) {
        HandlePeerFrame(peer, frame);
        continue;
      }
      ++stats_.frames_received;
      stats_.bytes_received += net::kFrameHeaderBytes + frame.payload.size();
      // Unwind the RPC queue through the scan. Skipped entries mean the
      // daemon never saw those frames (chaos ate them) — the digest check
      // below decides whether its state is still trustworthy.
      while (!peer->rpcs.empty()) {
        PendingRpc rpc = peer->rpcs.front();
        peer->rpcs.pop_front();
        if (lifecycle_ != nullptr) {
          lifecycle_->Drop(obs::LifecycleTracker::kBackplaneRpc,
                           RpcKey(*peer, rpc));
        }
        if (rpc.is_scan) {
          int64_t rtt = NowMicros() - rpc.sent_micros;
          if (rtt > 0) {
            stats_.scan_rtt_micros_total += static_cast<uint64_t>(rtt);
            ++stats_.scan_rtt_samples;
          }
          break;
        }
      }
      net::ByteReader r(frame.payload.data(), frame.payload.size());
      uint8_t status = r.U8();
      uint64_t digest = r.U64();
      uint32_t count = r.U32();
      out->clear();
      for (uint32_t k = 0; r.ok() && k < count; ++k) {
        out->push_back(r.I64());
      }
      // The result is merged only when the daemon proves it answered from
      // the authoritative state: its digest must match the local mirror's.
      // This is what keeps authority runs byte-identical even when chaos
      // swallowed an earlier batch.
      ok = r.ok() && r.remaining() == 0 && status == 1 &&
           out->size() == count && digest == expected_digest;
      got = true;
    }
    if (got) break;
    if (!alive) {
      MarkDown(peer, "EOF during scan");
      ++stats_.scans_local;
      return false;
    }
    if (NowMicros() > deadline) {
      ++stats_.rpc_timeouts;
      MarkDown(peer, "scan deadline exceeded");
      ++stats_.scans_local;
      return false;
    }
    std::vector<int> ready;
    net::PollReadable({peer->link->fd()}, /*timeout_ms=*/1, &ready);
  }
  if (!ok) {
    ++stats_.digest_mismatches;
    peer->need_sync = true;
    RevokeAuthority(peer);
    ++stats_.scans_local;
    return false;
  }
  ++stats_.scans_remote;
  return true;
}

void ShardSupervisor::ReceiveAll() {
  // Pending connections: waiting for a kHello that names the shard.
  for (size_t k = 0; k < pending_links_.size();) {
    std::vector<net::Frame> frames;
    bool alive = pending_links_[k]->Receive(&frames);
    int hello_shard = -1;
    for (const net::Frame& frame : frames) {
      ++stats_.frames_received;
      stats_.bytes_received +=
          net::kFrameHeaderBytes + frame.payload.size();
      if (frame.kind == net::FrameKind::kHello) {
        hello_shard = frame.shard;
      }
    }
    if (hello_shard >= 0 && hello_shard < static_cast<int>(peers_.size()) &&
        alive) {
      Peer* peer = peers_[hello_shard].get();
      peer->link = std::move(pending_links_[k]);
      pending_links_.erase(pending_links_.begin() +
                           static_cast<ptrdiff_t>(k));
      // (Re)join handshake: config, stored sync image, buffered frames.
      SendSync(peer);
      continue;
    }
    // A hello from a socket that already hit EOF (the daemon died right
    // after introducing itself) must NOT be adopted: a dead link attached
    // to the peer has no further EOF to observe, so nothing would ever
    // mark the peer down again and RespawnDue would skip it forever.
    if (!alive) {
      pending_links_.erase(pending_links_.begin() +
                           static_cast<ptrdiff_t>(k));
      continue;
    }
    ++k;
  }

  for (auto& peer : peers_) {
    if (peer->link == nullptr) continue;
    if (!peer->link->connected()) {
      // A link can die outside Receive (failed send, adopted-then-closed
      // socket): reap it here or the peer wedges — ReceiveAll would skip
      // it and RespawnDue treats any attached link as a live daemon.
      MarkDown(peer.get(), "link lost outside receive");
      continue;
    }
    peer->link->Flush();
    std::vector<net::Frame> frames;
    bool alive = peer->link->Receive(&frames);
    for (const net::Frame& frame : frames) {
      HandlePeerFrame(peer.get(), frame);
    }
    if (!alive) MarkDown(peer.get(), "socket EOF");
  }
}

void ShardSupervisor::RespawnDue() {
  for (auto& peer : peers_) {
    if (peer->pid > 0 || peer->link != nullptr) continue;
    // Quiesce freezes the step clock, so backoff expressed in steps would
    // never elapse there — respawn immediately instead.
    if (!quiescing_ && step_ < peer->next_respawn_step) continue;
    Status st = SpawnDaemon(peer.get());
    if (!st.ok() && options_.verbose) {
      std::fprintf(stderr, "supervisor: respawn shard %d failed: %s\n",
                   peer->shard, st.ToString().c_str());
    }
  }
}

void ShardSupervisor::PumpStep(int64_t step) {
  step_ = step;
  // Scheduled chaos SIGKILLs fire at the step boundary.
  for (const auto& [kill_step, kill_shard] : options_.fault.kills) {
    if (kill_step == step) {
      ++stats_.chaos_kills;
      KillShard(kill_shard);
    }
  }
  AcceptNewConnections();
  ReceiveAll();
  // Clean cutover: a peer that drained last step's RPCs (and any resync)
  // takes scan authority from here on — never mid-step, so a rejoining
  // daemon cannot serve a partially-shipped step.
  GrantAuthority();

  for (auto& peer : peers_) {
    ReleaseDelayed(peer.get(), /*force=*/false);
    SendBatchOrHeartbeat(peer.get());
  }

  // Acks over a loopback socket normally land within the same pump; poll
  // briefly so the common case resolves without adding a step of lag.
  std::vector<int> fds;
  for (auto& peer : peers_) {
    fds.push_back(peer->link != nullptr ? peer->link->fd() : -1);
  }
  std::vector<int> ready;
  net::PollReadable(fds, /*timeout_ms=*/1, &ready);
  ReceiveAll();
  GrantAuthority();

  // Deadline enforcement: an unacked frame older than the timeout means
  // the daemon is dead or wedged — same remedy either way.
  for (auto& peer : peers_) {
    if (peer->rpcs.empty()) continue;
    if (step_ - peer->rpcs.front().step >= options_.timeout_steps) {
      ++stats_.rpc_timeouts;
      MarkDown(peer.get(), "RPC deadline exceeded");
    }
  }

  RespawnDue();
}

Status ShardSupervisor::Quiesce(int timeout_ms) {
  int64_t deadline = NowMicros() + int64_t{1000} * timeout_ms;
  quiescing_ = true;
  for (;;) {
    AcceptNewConnections();
    ReceiveAll();
    // The step clock is frozen here, so the virtual-step RPC deadline can
    // never fire — enforce it in wall time instead: a frame a chaos fault
    // swallowed right before the run ended must still get its peer marked
    // down, respawned and resynced.
    const int64_t rpc_wall_budget =
        int64_t{1000} * std::max(options_.authority_timeout_ms, 250);
    for (auto& peer : peers_) {
      if (peer->rpcs.empty()) continue;
      if (NowMicros() - peer->rpcs.front().sent_micros > rpc_wall_budget) {
        ++stats_.rpc_timeouts;
        MarkDown(peer.get(), "RPC wall deadline during quiesce");
      }
    }
    RespawnDue();
    // Quiesce no longer advances steps, so chaos-held frames would never
    // release on their own — flush them. Likewise nothing else drives
    // outbound traffic here: a rejoined peer still owing a resync or
    // holding coalesced ops needs SendBatchOrHeartbeat called for it, or
    // the settle condition below could never be met.
    for (auto& peer : peers_) {
      ReleaseDelayed(peer.get(), /*force=*/true);
      SendBatchOrHeartbeat(peer.get());
    }
    bool settled = true;
    for (auto& peer : peers_) {
      bool queued = peer->link != nullptr && peer->link->queued_bytes() > 0;
      if (!peer->up || !peer->rpcs.empty() || queued ||
          !peer->pending.empty() || peer->need_sync) {
        settled = false;
        break;
      }
    }
    if (settled) {
      quiescing_ = false;
      return Status::OK();
    }
    if (NowMicros() > deadline) {
      if (options_.verbose) {
        for (const auto& peer : peers_) {
          std::fprintf(
              stderr,
              "supervisor: quiesce wedge shard %d up=%d pid=%d link=%d "
              "rpcs=%zu pending=%d need_sync=%d held=%zu queued=%zu\n",
              peer->shard, peer->up ? 1 : 0, static_cast<int>(peer->pid),
              peer->link != nullptr ? 1 : 0, peer->rpcs.size(),
              peer->pending.empty() ? 0 : 1, peer->need_sync ? 1 : 0,
              peer->held.size(),
              peer->link != nullptr ? peer->link->queued_bytes() : 0);
        }
      }
      quiescing_ = false;
      return Status::Internal("supervisor: quiesce timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void ShardSupervisor::Shutdown() {
  for (auto& peer : peers_) {
    if (peer->link != nullptr && peer->link->connected()) {
      net::Frame bye;
      bye.kind = net::FrameKind::kShutdown;
      bye.shard = static_cast<uint8_t>(peer->shard);
      bye.step = step_;
      peer->link->Send(bye, options_.max_queue_bytes);
      peer->link->Flush();
    }
  }
  // Give daemons a moment to exit on the shutdown frame, then force it.
  for (auto& peer : peers_) {
    if (peer->pid <= 0) continue;
    bool reaped = false;
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (waitpid(peer->pid, nullptr, WNOHANG) == peer->pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!reaped) {
      kill(peer->pid, SIGKILL);
      waitpid(peer->pid, nullptr, 0);
    }
    peer->pid = -1;
  }
  for (auto& peer : peers_) {
    peer->link.reset();
    peer->up = false;
  }
  pending_links_.clear();
  backplane_.Close();
  if (!socket_dir_.empty()) {
    rmdir(socket_dir_.c_str());
    socket_dir_.clear();
  }
}

}  // namespace mobieyes::core
